// Streaming target/resolver generation: replays any AS's slice of the world
// from the campaign plan, without materializing anything else.
//
// Every random decision below the AS level — band, addresses, ACLs,
// forwarding, capture membership, passive history — is drawn from
// Rng::substream(plan.resolver_seed, as_id) (stale noise from
// plan.noise_seed), so AS i's resolver fleet and DITL entries are a pure
// function of (spec, i). A shard world therefore generates *only its own*
// ASes and still produces bit-identical campaign evidence to a fully
// materialized world: the stream visits the same per-AS substreams the full
// builder does, in the same order, just skipping out-of-shard ids.
//
// The stream yields one AsBatch at a time into reused scratch storage, so
// iterating a 12M-target world holds one AS's fleet in memory, not twelve
// million targets.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "ditl/plan.h"
#include "net/ip.h"
#include "resolver/recursive.h"
#include "sim/os_model.h"

namespace cd::ditl {

/// ACL shape of a closed resolver (the open ones have no ACL).
enum class AclKind : std::uint8_t {
  /// All of the AS's announced prefixes (also covers the "AS-wide plus peer
  /// prefix" managed-service style, whose ACL output is identical here).
  kAsWide,
  /// Only the resolver's own /24 (v4) and /64 (v6).
  kSubnetOnly,
};

/// Everything needed to materialize one resolver — or to account for it
/// without materializing anything. Plain data; reused via scratch vectors.
struct ResolverSpec {
  std::array<cd::net::IpAddr, 2> addrs;  // v4 first, optional v6 second
  std::uint8_t n_addrs = 0;
  bool has_v6 = false;
  int index = 0;  // position in the AS fleet ("r<asn>-<index>" label)

  // Band / fingerprint (Table 4 population structure).
  int band = 5;
  cd::sim::OsId os = cd::sim::OsId::kEmbeddedCpe;
  cd::resolver::DnsSoftware software = cd::resolver::DnsSoftware::kBind952To988;
  bool fp_visible = false;
  std::optional<std::uint16_t> fixed_port;

  // Behaviour.
  bool is_infra = false;  // the AS's resolver 0: upstream others forward to
  bool open = false;
  bool forwards = false;
  bool forward_public = false;  // forward upstream is a public DNS service
  std::uint8_t public_idx = 0;  // even index into World::public_dns_addrs
  bool forward_failover = false;  // forward-first with 0.8 forward_ratio
  AclKind acl_kind = AclKind::kAsWide;
  bool acl_private = false;  // ACL additionally admits RFC 1918 / ULA space
  bool qmin = false;
  cd::resolver::QminMode qmin_mode = cd::resolver::QminMode::kOff;

  // Seeds for the materialization-side RNGs (host jitter, port allocator,
  // resolver internals). Drawn from the AS substream so a streamed shard
  // builds the exact hosts the full builder would.
  std::uint64_t host_seed = 0;
  std::uint64_t alloc_seed = 0;
  std::uint64_t res_seed = 0;

  // Per-address DITL capture membership, v6 hitlist membership, and the
  // synthetic 18-months-earlier passive port history (§5.2.2).
  std::array<bool, 2> in_capture{};
  std::array<bool, 2> in_hitlist{};
  std::array<std::uint8_t, 2> n_old_ports{};
  std::array<std::array<std::uint16_t, 12>, 2> old_ports{};
};

/// One AS's generated slice: the resolver fleet plus the AS's stale DITL
/// noise (once-active resolver addresses, now dark). Pointers reference the
/// stream's scratch storage — valid until the next next() call.
struct AsBatch {
  std::size_t id = 0;  // dense plan index
  cd::sim::Asn asn = 0;
  const std::vector<ResolverSpec>* resolvers = nullptr;
  const std::vector<cd::net::IpAddr>* stale = nullptr;
  /// Live addresses that made it into the DITL capture (the base the AS's
  /// stale noise count scales from).
  std::size_t captured_live = 0;
};

class TargetStream {
 public:
  /// Streams the ASes of `plan` whose shard_of(asn, num_shards) == shard,
  /// in dense-id order. (0, 1) streams every AS. The plan must outlive the
  /// stream.
  explicit TargetStream(const CampaignPlan& plan, std::size_t shard = 0,
                        std::size_t num_shards = 1);

  /// Generates the next in-shard AS into scratch storage; nullptr at end.
  const AsBatch* next();

 private:
  void generate_as(std::size_t id);
  void generate_resolver(std::size_t id, int index, cd::Rng& rng);
  void generate_stale(std::size_t id);

  const CampaignPlan& plan_;
  std::size_t shard_;
  std::size_t num_shards_;
  std::size_t pos_ = 0;

  AsBatch batch_;
  std::vector<ResolverSpec> resolvers_;
  std::vector<cd::net::IpAddr> stale_;
  std::unordered_set<cd::net::IpAddr, cd::net::IpAddrHash> used_;
  bool infra_seen_ = false;
};

/// Aggregate counts of one shard's stream (0,1 = the whole world): what the
/// campaign-scale bench reports before deciding to materialize anything.
struct StreamCounts {
  std::uint64_t ases = 0;
  std::uint64_t resolvers = 0;
  std::uint64_t live_addrs = 0;
  std::uint64_t captured_live = 0;
  std::uint64_t stale = 0;
  /// Post-exclusion probe targets (captured live + stale; both are routed,
  /// non-special addresses by construction).
  std::uint64_t targets = 0;
};

[[nodiscard]] StreamCounts count_stream(const CampaignPlan& plan,
                                        std::size_t shard = 0,
                                        std::size_t num_shards = 1);

}  // namespace cd::ditl
