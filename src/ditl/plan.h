// The campaign plan: every per-AS decision of world generation, precomputed
// as flat arena-backed SoA columns indexed by dense AS id.
//
// World generation used to thread one sequential RNG through all edge ASes,
// so building AS i required replaying ASes 0..i-1 — the reason shard worlds
// had to materialize everything. The plan splits generation into two stages:
//
//   1. build_campaign_plan (this header): one cheap O(n_asns) pass drawing
//      each AS's shape — country, border policy, prefixes, fleet size — from
//      a *stateless* per-AS substream (Rng::substream(plan_seed, id)).
//      Address blocks are still assigned from sequential counters (the world
//      keeps its dense, collision-free numbering plan), which is fine: the
//      counters advance by amounts that depend only on each AS's own
//      substream, and the plan pass always visits every AS.
//   2. TargetStream (ditl/target_stream.h): per-AS resolver/target
//      generation from a second per-AS substream, replayable for any subset
//      of ASes — the property that lets a shard materialize only its own
//      slice of the world.
//
// Every column lives in one cd::Arena, so a paper-scale plan (~62k ASes) is
// a few contiguous slabs (~3 MB), not a graph of heap objects.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "ditl/world_spec.h"
#include "net/ip.h"
#include "sim/topology.h"
#include "util/arena.h"

namespace cd::ditl {

// Fixed AS numbering shared by the plan and the world builder.
inline constexpr cd::sim::Asn kInfraAsn = 64500;
inline constexpr cd::sim::Asn kVantageAsn = 64501;
inline constexpr cd::sim::Asn kPublicDnsAsnBase = 64510;
inline constexpr cd::sim::Asn kEdgeAsnBase = 100;
/// Number of simulated public DNS services (each dual-stack, so the world's
/// public_dns_addrs list holds twice this many addresses, v4 at even
/// indices).
inline constexpr std::size_t kNumPublicDns = 4;

/// Per-AS flag bits (CampaignPlan::flags).
enum AsFlag : std::uint8_t {
  kAsDsav = 1u << 0,
  kAsOsav = 1u << 1,
  kAsMartians = 1u << 2,
  kAsUrpfSubnet = 1u << 3,
  kAsIds = 1u << 4,
  kAsHasSecondV4 = 1u << 5,
  kAsHasV6 = 1u << 6,
};

/// SoA per-AS table. Column i describes edge AS kEdgeAsnBase + i. All spans
/// point into `arena`.
class CampaignPlan {
 public:
  WorldSpec spec;

  /// Seeds for the stateless per-AS substreams: the plan pass consumed
  /// substream(plan_seed, id); resolver generation (TargetStream) consumes
  /// substream(resolver_seed, id) and stale-noise generation
  /// substream(noise_seed, id).
  std::uint64_t plan_seed = 0;
  std::uint64_t resolver_seed = 0;
  std::uint64_t noise_seed = 0;

  std::span<std::uint8_t> flags;        // AsFlag bits
  std::span<std::uint8_t> n_resolvers;  // fleet size, 1..64
  std::span<std::uint16_t> country;     // index into spec.countries
  std::span<std::uint16_t> country2;    // second v4 prefix's country index
  std::span<cd::net::Prefix> v4a;       // first (or only) v4 prefix
  std::span<cd::net::Prefix> v4b;       // second v4 prefix (kAsHasSecondV4)
  std::span<cd::net::Prefix> v6;        // v6 prefix (kAsHasV6)

  [[nodiscard]] std::size_t size() const { return flags.size(); }
  [[nodiscard]] cd::sim::Asn asn_of(std::size_t id) const {
    return kEdgeAsnBase + static_cast<cd::sim::Asn>(id);
  }
  [[nodiscard]] cd::sim::FilterPolicy policy_of(std::size_t id) const {
    const std::uint8_t f = flags[id];
    return cd::sim::FilterPolicy{
        .osav = (f & kAsOsav) != 0,
        .dsav = (f & kAsDsav) != 0,
        .drop_inbound_martians = (f & kAsMartians) != 0,
        .drop_inbound_same_subnet = (f & kAsUrpfSubnet) != 0,
    };
  }
  /// The AS's announced v4 prefixes (1 or 2), as a span into the columns.
  [[nodiscard]] std::size_t v4_count(std::size_t id) const {
    return (flags[id] & kAsHasSecondV4) ? 2 : 1;
  }
  [[nodiscard]] const cd::net::Prefix& v4_prefix(std::size_t id,
                                                 std::size_t p) const {
    return p == 0 ? v4a[id] : v4b[id];
  }

  [[nodiscard]] std::size_t bytes() const { return arena_.bytes_allocated(); }

  /// The arena backing every column (exposed for allocation during build).
  [[nodiscard]] cd::Arena& arena() { return arena_; }

 private:
  cd::Arena arena_;
};

/// Builds the plan for `spec`. Deterministic: equal specs produce identical
/// plans. O(n_asns) time and memory, independent of resolver/target counts.
[[nodiscard]] std::unique_ptr<CampaignPlan> build_campaign_plan(
    const WorldSpec& spec);

/// Enumerates every announced IPv4 /24 of one campaign shard, in dense-id /
/// prefix order: the Closed Resolver cross-check modality's target universe
/// (scanner/crosscheck.h). Sharding follows scanner::shard_of on the owning
/// AS — the same partition the probe plane uses — so each /24 belongs to
/// exactly one shard and per-shard unions reproduce the serial enumeration.
/// IPv6 prefixes are skipped (the prefix scanner is a v4 /24 walk).
void for_each_prefix24(
    const CampaignPlan& plan, std::size_t shard_index, std::size_t num_shards,
    const std::function<void(cd::sim::Asn, const cd::net::Prefix&)>& fn);

/// Number of /24s for_each_prefix24 would visit (plan sizing / benches).
[[nodiscard]] std::uint64_t count_prefix24(const CampaignPlan& plan,
                                           std::size_t shard_index = 0,
                                           std::size_t num_shards = 1);

}  // namespace cd::ditl
