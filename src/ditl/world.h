// The generated world: a complete simulated Internet ready for scanning.
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/geo.h"
#include "analysis/passive.h"
#include "dns/zone.h"
#include "ditl/world_spec.h"
#include "resolver/auth.h"
#include "resolver/recursive.h"
#include "scanner/prober.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace cd::ditl {

/// Ground truth for one deployed resolver (for validating that the blind
/// analysis pipeline recovers what was planted).
struct ResolverTruth {
  cd::sim::OsId os = cd::sim::OsId::kEmbeddedCpe;
  cd::resolver::DnsSoftware software =
      cd::resolver::DnsSoftware::kBind9913To9160;
  bool open = false;
  bool forwards = false;
  bool qmin = false;
  int band = 0;  // index into the BandMix ordering (0=zero .. 5=full)
};

/// Owns every simulation object. Member order is destruction-order
/// sensitive: hosts detach from the network in their destructors, so the
/// network (and loop/topology) must be declared first.
struct World {
  WorldSpec spec;

  cd::sim::EventLoop loop;
  cd::sim::Topology topology;
  std::unique_ptr<cd::sim::Network> network;

  // Stable storage for hosts and customized OS profiles (deque: no moves).
  std::deque<cd::sim::OsProfile> os_profiles;
  std::deque<cd::sim::Host> hosts;

  std::vector<std::shared_ptr<cd::dns::Zone>> zones;
  std::vector<std::unique_ptr<cd::resolver::AuthServer>> auths;
  std::vector<std::unique_ptr<cd::resolver::RecursiveResolver>> resolvers;

  cd::resolver::RootHints hints;
  cd::analysis::GeoDb geo;

  cd::sim::Host* vantage = nullptr;
  /// Authoritative servers receiving experiment queries (base + subzones);
  /// the collector attaches to each.
  std::vector<cd::resolver::AuthServer*> experiment_auths;

  cd::dns::DnsName base_zone;
  std::string keyword;

  /// Raw DITL-style capture (resolver sources plus stale/special/unrouted
  /// noise), and the post-exclusion target list actually probed.
  std::vector<cd::net::IpAddr> ditl_raw;
  std::vector<cd::scanner::TargetInfo> targets;
  std::vector<cd::net::IpAddr> hitlist_v6;
  /// Synthetic 18-months-earlier capture: per-resolver historical source
  /// ports (the paper's 2018 DITL stand-in, §5.2.2).
  cd::analysis::PassiveCapture passive_capture;

  std::set<cd::sim::Asn> ids_asns;
  std::vector<cd::net::IpAddr> public_dns_addrs;

  // Ground truth for validation.
  std::unordered_map<cd::sim::Asn, bool> truth_dsav;  // true = deploys DSAV
  std::unordered_map<cd::net::IpAddr, ResolverTruth, cd::net::IpAddrHash>
      truth_resolvers;

  World() = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;
};

/// Builds a world from `spec`. Deterministic: equal specs (including seed)
/// produce identical worlds.
[[nodiscard]] std::unique_ptr<World> generate_world(const WorldSpec& spec);

}  // namespace cd::ditl
