// The generated world: a complete simulated Internet ready for scanning.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/geo.h"
#include "analysis/passive.h"
#include "dns/zone.h"
#include "ditl/world_spec.h"
#include "resolver/auth.h"
#include "resolver/recursive.h"
#include "scanner/prober.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace cd::ditl {

/// Ground truth for one deployed resolver (for validating that the blind
/// analysis pipeline recovers what was planted).
struct ResolverTruth {
  cd::sim::OsId os = cd::sim::OsId::kEmbeddedCpe;
  cd::resolver::DnsSoftware software =
      cd::resolver::DnsSoftware::kBind9913To9160;
  bool open = false;
  bool forwards = false;
  bool qmin = false;
  int band = 0;  // index into the BandMix ordering (0=zero .. 5=full)

  friend bool operator==(const ResolverTruth&, const ResolverTruth&) = default;
};

/// Flat SoA ground-truth table, sorted by address: one packed row per
/// resolver address instead of an unordered_map node per heavyweight entry
/// (a paper-scale world has ~1M rows). The lookup/iteration surface is
/// map-compatible — find()/count()/size()/range-for yielding
/// (address, truth) pairs — so analysis and test code reads it like the map
/// it replaced.
class ResolverTruthTable {
 public:
  struct value_type {
    cd::net::IpAddr first;
    ResolverTruth second;
  };

  class const_iterator {
   public:
    const_iterator() = default;
    const_iterator(const ResolverTruthTable* table, std::size_t idx)
        : table_(table), idx_(idx) {}

    const value_type& operator*() const {
      cache_.first = table_->addrs_[idx_];
      cache_.second = table_->truth_at(idx_);
      return cache_;
    }
    const value_type* operator->() const { return &**this; }
    const_iterator& operator++() {
      ++idx_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.idx_ == b.idx_;
    }

   private:
    const ResolverTruthTable* table_ = nullptr;
    std::size_t idx_ = 0;
    mutable value_type cache_;
  };

  void insert(const cd::net::IpAddr& addr, const ResolverTruth& truth) {
    addrs_.push_back(addr);
    os_.push_back(static_cast<std::uint8_t>(truth.os));
    software_.push_back(static_cast<std::uint8_t>(truth.software));
    band_.push_back(static_cast<std::uint8_t>(truth.band));
    bits_.push_back(static_cast<std::uint8_t>((truth.open ? 1 : 0) |
                                              (truth.forwards ? 2 : 0) |
                                              (truth.qmin ? 4 : 0)));
  }

  /// Sorts the rows by address (binary-search lookups require it). The
  /// world builder calls this once; addresses are unique by construction.
  void freeze();

  [[nodiscard]] std::size_t size() const { return addrs_.size(); }
  [[nodiscard]] bool empty() const { return addrs_.empty(); }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, addrs_.size()}; }
  [[nodiscard]] const_iterator find(const cd::net::IpAddr& addr) const;
  [[nodiscard]] std::size_t count(const cd::net::IpAddr& addr) const {
    return find(addr) == end() ? 0 : 1;
  }

  [[nodiscard]] ResolverTruth truth_at(std::size_t idx) const {
    ResolverTruth t;
    t.os = static_cast<cd::sim::OsId>(os_[idx]);
    t.software = static_cast<cd::resolver::DnsSoftware>(software_[idx]);
    t.band = band_[idx];
    t.open = (bits_[idx] & 1) != 0;
    t.forwards = (bits_[idx] & 2) != 0;
    t.qmin = (bits_[idx] & 4) != 0;
    return t;
  }

 private:
  std::vector<cd::net::IpAddr> addrs_;
  std::vector<std::uint8_t> os_;
  std::vector<std::uint8_t> software_;
  std::vector<std::uint8_t> band_;
  std::vector<std::uint8_t> bits_;  // open | forwards<<1 | qmin<<2
};

/// Owns every simulation object. Member order is destruction-order
/// sensitive: hosts detach from the network in their destructors, so the
/// network (and loop/topology) must be declared first.
struct World {
  WorldSpec spec;
  /// Shard scope this world was generated for: (0, 1) is the full world;
  /// anything else materializes only the edge ASes of that shard (topology,
  /// geo and the per-AS truth tables always cover every AS).
  std::size_t shard_index = 0;
  std::size_t num_shards = 1;

  cd::sim::EventLoop loop;
  cd::sim::Topology topology;
  std::unique_ptr<cd::sim::Network> network;

  // Stable storage for hosts and fingerprint-hidden OS profiles (deque: no
  // moves). Hidden profiles are interned per OS id, not copied per resolver.
  std::deque<cd::sim::OsProfile> os_profiles;
  std::deque<cd::sim::Host> hosts;

  std::vector<std::shared_ptr<cd::dns::Zone>> zones;
  std::vector<std::unique_ptr<cd::resolver::AuthServer>> auths;
  std::vector<std::unique_ptr<cd::resolver::RecursiveResolver>> resolvers;

  cd::resolver::RootHints hints;
  cd::analysis::GeoDb geo;

  cd::sim::Host* vantage = nullptr;
  /// Authoritative servers receiving experiment queries (base + subzones);
  /// the collector attaches to each.
  std::vector<cd::resolver::AuthServer*> experiment_auths;

  cd::dns::DnsName base_zone;
  std::string keyword;

  /// Raw DITL-style capture (resolver sources plus stale noise; a full
  /// world also carries the special/unrouted noise that pre-scan filtering
  /// drops), and the post-exclusion target list actually probed. A shard
  /// world's lists cover only its own ASes.
  std::vector<cd::net::IpAddr> ditl_raw;
  std::vector<cd::scanner::TargetInfo> targets;
  std::vector<cd::net::IpAddr> hitlist_v6;
  /// Synthetic 18-months-earlier capture: per-resolver historical source
  /// ports (the paper's 2018 DITL stand-in, §5.2.2).
  cd::analysis::PassiveCapture passive_capture;

  std::set<cd::sim::Asn> ids_asns;
  std::vector<cd::net::IpAddr> public_dns_addrs;

  // Ground truth for validation.
  std::unordered_map<cd::sim::Asn, bool> truth_dsav;  // true = deploys DSAV
  ResolverTruthTable truth_resolvers;

  World() = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;
};

/// Builds the full world for `spec`. Deterministic: equal specs (including
/// seed) produce identical worlds.
[[nodiscard]] std::unique_ptr<World> generate_world(const WorldSpec& spec);

/// Builds one shard's world from the target stream: shared infrastructure
/// (roots, public DNS, vantage) plus only the edge ASes with
/// shard_of(asn, num_shards) == shard materialize hosts, resolvers, truth
/// rows and targets. Topology, geo, truth_dsav and ids_asns always cover
/// every AS (routing, geolocation and the analyst need the full map; it is
/// O(n_asns), not O(targets)). Campaign behaviour is bit-identical to
/// running the same shard against a full world — no packet ever addresses
/// an out-of-shard edge host — which tests/test_campaign_stream.cpp pins.
/// (shard=0, num_shards=1) differs from generate_world(spec) only in
/// skipping the special/unrouted ditl_raw noise that target filtering drops
/// anyway.
[[nodiscard]] std::unique_ptr<World> generate_world(const WorldSpec& spec,
                                                    std::size_t shard,
                                                    std::size_t num_shards);

}  // namespace cd::ditl
