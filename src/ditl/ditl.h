// DITL-capture filtering (paper §3.1): turning a raw list of source
// addresses observed at the root servers into the probe target list.
#pragma once

#include <cstdint>
#include <vector>

#include "scanner/prober.h"
#include "sim/topology.h"

namespace cd::ditl {

struct DitlFilterStats {
  std::uint64_t raw = 0;
  std::uint64_t excluded_special = 0;   // IANA special-purpose addresses
  std::uint64_t excluded_unrouted = 0;  // no announced route (no other-prefix
                                        // sources can be derived)
  std::uint64_t accepted = 0;
};

/// Applies the paper's target exclusions: drop special-purpose addresses and
/// addresses with no covering announcement; annotate the rest with their
/// origin AS. Duplicate raw entries are kept (DITL de-duplication happens at
/// capture extraction, which our generator already does).
[[nodiscard]] std::vector<cd::scanner::TargetInfo> filter_ditl(
    const std::vector<cd::net::IpAddr>& raw, const cd::sim::Topology& topology,
    DitlFilterStats* stats = nullptr);

}  // namespace cd::ditl
