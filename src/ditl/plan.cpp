#include "ditl/plan.h"

#include <algorithm>

#include "net/special.h"
#include "scanner/prober.h"
#include "util/rng.h"

namespace cd::ditl {

using cd::net::IpAddr;
using cd::net::Prefix;

namespace {

/// Sequential edge address-block assignment: /16s from 20.0.0.0 upward,
/// skipping special-purpose space and the 11.0.0.0/8 block reserved as
/// never-announced noise; /22s carved 64 to a /16; v6 /32s from 2400::/8.
/// Counter state advances only by per-AS shape decisions, so the assignment
/// is a pure function of the plan's visit order (always all ASes, dense).
class BlockAllocator {
 public:
  Prefix next_v4_block16() {
    for (;;) {
      const std::uint32_t base = ((20u + v4_block_ / 256) << 24) |
                                 ((v4_block_ % 256) << 16);
      ++v4_block_;
      const Prefix p(IpAddr::v4(base), 16);
      if ((base >> 24) == 11) continue;
      if (cd::net::is_special_purpose(p.first()) ||
          cd::net::is_special_purpose(p.last())) {
        continue;
      }
      return p;
    }
  }

  Prefix next_v4_block22() {
    if (v4_sub_count_ == 0 || v4_sub_count_ >= 64) {
      v4_sub_parent_ = next_v4_block16();
      v4_sub_count_ = 0;
    }
    const Prefix p(v4_sub_parent_.base().offset_by(
                       static_cast<std::uint64_t>(v4_sub_count_) << 10),
                   22);
    ++v4_sub_count_;
    return p;
  }

  Prefix next_v6_block32() {
    const std::uint64_t hi =
        (static_cast<std::uint64_t>(0x24000000u + v6_block_)) << 32;
    ++v6_block_;
    return Prefix(IpAddr::v6(hi, 0), 32);
  }

 private:
  std::uint32_t v4_block_ = 0;
  Prefix v4_sub_parent_;
  int v4_sub_count_ = 0;
  std::uint32_t v6_block_ = 1;
};

std::uint16_t choose_country(const WorldSpec& spec, cd::Rng& rng) {
  double total = 0;
  for (const CountryWeight& cw : spec.countries) total += cw.as_share;
  double roll = rng.real() * total;
  for (std::size_t i = 0; i < spec.countries.size(); ++i) {
    if (roll < spec.countries[i].as_share) return static_cast<std::uint16_t>(i);
    roll -= spec.countries[i].as_share;
  }
  return static_cast<std::uint16_t>(spec.countries.size() - 1);
}

}  // namespace

std::unique_ptr<CampaignPlan> build_campaign_plan(const WorldSpec& spec) {
  auto plan = std::make_unique<CampaignPlan>();
  plan->spec = spec;

  // Seed derivation mirrors the generator's root-split discipline: distinct
  // stateless bases for the plan, resolver and noise passes so the three
  // per-AS streams never overlap.
  cd::Rng root(spec.seed);
  plan->plan_seed = root.split("plan").u64();
  plan->resolver_seed = root.split("resolvers").u64();
  plan->noise_seed = root.split("noise").u64();

  const std::size_t n = static_cast<std::size_t>(std::max(0, spec.n_asns));
  cd::Arena& arena = plan->arena();
  plan->flags = arena.alloc_array<std::uint8_t>(n);
  plan->n_resolvers = arena.alloc_array<std::uint8_t>(n);
  plan->country = arena.alloc_array<std::uint16_t>(n);
  plan->country2 = arena.alloc_array<std::uint16_t>(n);
  plan->v4a = arena.alloc_array<Prefix>(n);
  plan->v4b = arena.alloc_array<Prefix>(n);
  plan->v6 = arena.alloc_array<Prefix>(n);

  BlockAllocator blocks;
  for (std::size_t i = 0; i < n; ++i) {
    cd::Rng rng = cd::Rng::substream(plan->plan_seed, i);
    std::uint8_t flags = 0;

    const std::uint16_t country_idx = choose_country(spec, rng);
    const CountryWeight& country = spec.countries[country_idx];
    plan->country[i] = country_idx;
    plan->country2[i] = country_idx;

    const bool dsav = rng.chance(country.dsav_rate);
    if (dsav) flags |= kAsDsav;
    if (rng.chance(spec.osav_fraction)) flags |= kAsOsav;
    if (rng.chance(dsav ? spec.martian_fraction_with_dsav
                        : spec.martian_fraction_without_dsav)) {
      flags |= kAsMartians;
    }
    if (rng.chance(spec.urpf_subnet_fraction)) flags |= kAsUrpfSubnet;
    if (rng.chance(spec.ids_fraction)) flags |= kAsIds;

    // Prefixes: a minority of ASes are large (/16, exercising the 97-prefix
    // other-prefix cap); the rest announce one or two /22s.
    if (rng.chance(0.2)) {
      plan->v4a[i] = blocks.next_v4_block16();
    } else {
      plan->v4a[i] = blocks.next_v4_block22();
      if (rng.chance(0.3)) {
        plan->v4b[i] = blocks.next_v4_block22();
        flags |= kAsHasSecondV4;
      }
    }
    // A handful of two-prefix ASes geolocate the second prefix elsewhere
    // (multi-national operators).
    if ((flags & kAsHasSecondV4) && rng.chance(0.05)) {
      plan->country2[i] = choose_country(spec, rng);
    }

    if (rng.chance(spec.v6_as_fraction)) {
      plan->v6[i] = blocks.next_v6_block32();
      flags |= kAsHasV6;
    }

    // Resolver fleet size: geometric with country-weighted mean.
    const double mean =
        std::max(1.0, spec.resolvers_per_as_mean * country.resolver_density);
    int n_resolvers = 1;
    while (n_resolvers < 64 && rng.chance(1.0 - 1.0 / mean)) ++n_resolvers;
    plan->n_resolvers[i] = static_cast<std::uint8_t>(n_resolvers);

    plan->flags[i] = flags;
  }
  return plan;
}

void for_each_prefix24(
    const CampaignPlan& plan, std::size_t shard_index, std::size_t num_shards,
    const std::function<void(cd::sim::Asn, const Prefix&)>& fn) {
  for (std::size_t id = 0; id < plan.size(); ++id) {
    const cd::sim::Asn asn = plan.asn_of(id);
    if (cd::scanner::shard_of(asn, num_shards) != shard_index) continue;
    for (std::size_t p = 0; p < plan.v4_count(id); ++p) {
      const Prefix& announced = plan.v4_prefix(id, p);
      const std::uint64_t n24 = announced.count_subprefixes(24);
      for (std::uint64_t j = 0; j < n24; ++j) {
        fn(asn, Prefix(announced.nth(j << 8), 24));
      }
    }
  }
}

std::uint64_t count_prefix24(const CampaignPlan& plan, std::size_t shard_index,
                             std::size_t num_shards) {
  std::uint64_t n = 0;
  for (std::size_t id = 0; id < plan.size(); ++id) {
    if (cd::scanner::shard_of(plan.asn_of(id), num_shards) != shard_index) {
      continue;
    }
    for (std::size_t p = 0; p < plan.v4_count(id); ++p) {
      n += plan.v4_prefix(id, p).count_subprefixes(24);
    }
  }
  return n;
}

}  // namespace cd::ditl
