// World-generation parameters: every marginal the synthetic Internet is
// calibrated on, documented against the paper's reported aggregates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cd::ditl {

/// Relative weights of the resolver-population "bands" that produce Table 4's
/// source-port range distribution. Derived from the paper's Table 4 counts
/// (fractions of the 297,986 classified resolvers).
struct BandMix {
  double zero = 0.0128;      // fixed single port (3,810)
  double low = 0.0013;       // sequential / tiny pools, range 1-200 (244+144)
  double windows = 0.046;    // Windows DNS 2,500-port pool (13,692)
  double freebsd = 0.038;    // OS-default pool on FreeBSD (11,462)
  double linux = 0.300;      // OS-default pool on Linux (89,495)
  double full = 0.600;       // full unprivileged range (178,773)
};

struct CountryWeight {
  std::string country;
  double as_share = 0.0;        // share of ASes homed in this country
  double dsav_rate = 0.5;       // country-level DSAV deployment rate
  double resolver_density = 1;  // relative resolvers per AS
};

struct WorldSpec {
  std::uint64_t seed = 42;

  // --- scale ---------------------------------------------------------------
  int n_asns = 400;
  /// Mean of the (geometric) resolvers-per-AS distribution.
  double resolvers_per_as_mean = 5.0;
  /// Fraction of ASes that also announce IPv6 space.
  double v6_as_fraction = 0.35;
  /// Fraction of v6-capable ASes' resolvers that are dual-stack.
  double dual_stack_fraction = 0.75;

  // --- DITL capture noise (paper §3.1/§3.6.2) --------------------------------
  /// Stale capture entries (once-resolvers, now dark) per live target.
  double stale_per_live = 8.5;
  /// Special-purpose source addresses per live target (excluded pre-scan;
  /// the paper dropped ~4M of ~16M).
  double special_per_live = 0.35;
  /// Unrouted source addresses per live target.
  double unrouted_per_live = 0.05;
  /// Live resolvers missing from the capture (DITL is not comprehensive:
  /// not every root participates, caches absorb root queries).
  double capture_miss = 0.08;
  /// Additional capture miss for v6 addresses (dual-stack resolvers tend to
  /// reach the roots over v4, so their v6 addresses surface less often).
  double capture_miss_v6 = 0.45;
  /// Share of stale capture entries drawn from v6 space.
  double stale_v6_share = 0.22;

  // --- border policy marginals -----------------------------------------------
  /// Fraction of ASes deploying DSAV (paper: ~half of ASes lacked it).
  double dsav_fraction = 0.48;
  /// BCP 38 egress filtering deployment.
  double osav_fraction = 0.30;
  /// Inbound martian filtering, conditional on DSAV status (deployments
  /// correlate: networks that filter internal spoof usually drop martians).
  double martian_fraction_with_dsav = 0.90;
  double martian_fraction_without_dsav = 0.90;
  /// Last-hop uRPF subnet filtering at the border (drops same-/24 spoofs;
  /// the reason the paper's other-prefix category finds targets same-prefix
  /// cannot — 33% of reachable v4 addresses were other-prefix-exclusive).
  double urpf_subnet_fraction = 0.35;
  /// ASes running an IDS whose analyst replays logged probes (§3.6.3).
  double ids_fraction = 0.02;

  // --- resolver behaviour marginals -------------------------------------------
  /// Open resolvers (paper §5.1: 40% of reached resolvers were open).
  double open_fraction = 0.35;
  /// Forwarding to an upstream instead of iterating (paper §5.4: 47% of v4,
  /// 16% of v6 targets forwarded).
  double forward_fraction_v4 = 0.45;
  double forward_fraction_v6 = 0.15;
  /// Of forwarders, the share pointing at big public DNS services.
  double forward_to_public_dns = 0.30;
  /// QNAME-minimizing resolvers (paper §3.6.4: 0.16% of targeted IPs).
  double qmin_fraction = 0.0016;
  /// Of those, the share whose implementation halts on NXDOMAIN (strict
  /// RFC 8020 behaviour; the paper could not attribute 55% of qmin IPs).
  double qmin_strict_share = 0.55;

  // --- closed-resolver ACL scopes ----------------------------------------------
  /// ACL covers all of the AS's announced space.
  double acl_as_wide = 0.70;
  /// ACL covers only the resolver's own /24 (v4) or /64 (v6); remainder use
  /// an AS-wide ACL plus additional odd prefixes.
  double acl_subnet_only = 0.25;
  /// Probability a closed resolver's ACL additionally admits RFC 1918 / ULA
  /// clients (home/CPE style configurations).
  double acl_allows_private = 0.06;

  BandMix band_mix;

  /// Windows-band resolvers that are open (paper: 89% — the striking
  /// Windows DNS "default open" correlation).
  double windows_open_fraction = 0.89;
  /// Zero-band open share (paper: 1,566 of 3,810 = 41%).
  double zero_open_fraction = 0.41;
  /// Low-band open share (paper: 201 of 244 = 82%).
  double low_open_fraction = 0.82;

  // --- fingerprint visibility (what p0f can see; ~90% unknown overall) -------
  double fp_visible_zero_baidu = 0.20;     // §5.3.1: BaiduSpider share
  double fp_visible_zero_windows = 0.12;   // §5.3.1: Windows share
  double fp_visible_low_windows = 0.66;    // §5.3.1
  double fp_visible_windows_band = 0.89;   // Table 4: 12,118 / 13,692
  double fp_visible_linux_band = 0.008;    // Table 4: 677 / 89,495
  double fp_visible_freebsd_band = 0.03;
  double fp_visible_full_windows = 0.014;  // BIND-on-Windows, full range
  double fp_visible_full_linux = 0.036;

  // --- passive capture history (§5.2.2) -----------------------------------------
  /// Of today's fixed-port resolvers: share already fixed in the old capture
  /// (paper: 51%), share that regressed from randomized ports (paper: 25%);
  /// the remainder lack comparable passive data (paper: 24%).
  double passive_already_fixed = 0.51;
  double passive_regressed = 0.25;

  // --- IPv6 hitlist -------------------------------------------------------------
  /// Share of v6 resolver /64s appearing in the synthetic hitlist.
  double hitlist_coverage = 0.5;

  // --- experiment zone -----------------------------------------------------------
  std::string base_zone = "dns-lab.org";
  std::string keyword = "x1";
  /// Serve wildcard answers instead of NXDOMAIN (the paper's proposed fix
  /// for the QNAME-minimization blind spot; ablation knob).
  bool wildcard_answers = false;

  std::vector<CountryWeight> countries = default_countries();

  /// The ten countries of the paper's Table 1, with AS shares and DSAV rates
  /// shaped to its "Reachable" column (US low at 28%, Ukraine high at 63%),
  /// plus two small high-exposure countries for Table 2's flavour.
  [[nodiscard]] static std::vector<CountryWeight> default_countries();
};

/// A small world for unit/integration tests (seconds to generate and run).
[[nodiscard]] WorldSpec small_world_spec();

/// The bench default: large enough for stable shapes, small enough to run
/// all benches in minutes.
[[nodiscard]] WorldSpec bench_world_spec();

}  // namespace cd::ditl
