#include <algorithm>
#include <optional>

#include "ditl/world.h"

#include "ditl/ditl.h"
#include "net/special.h"
#include "util/error.h"

namespace cd::ditl {

using cd::dns::DnsName;
using cd::dns::RrType;
using cd::dns::SoaRdata;
using cd::dns::Zone;
using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::Prefix;
using cd::net::U128;
using cd::resolver::AuthConfig;
using cd::resolver::AuthServer;
using cd::resolver::DnsSoftware;
using cd::resolver::QminMode;
using cd::resolver::RecursiveResolver;
using cd::resolver::ResolverConfig;
using cd::sim::Asn;
using cd::sim::FilterPolicy;
using cd::sim::OsId;
using cd::sim::OsProfile;

namespace {

constexpr Asn kInfraAsn = 64500;
constexpr Asn kVantageAsn = 64501;
constexpr Asn kPublicDnsAsnBase = 64510;
constexpr Asn kEdgeAsnBase = 100;

/// One well-known public DNS service (the paper checks forwarding against
/// Cloudflare/Google/CenturyLink/OpenDNS/Quad9).
struct PublicDnsSpec {
  const char* name;
  const char* v4;
  const char* v4_prefix;
  const char* v6;
  const char* v6_prefix;
};

constexpr PublicDnsSpec kPublicDns[] = {
    {"cloudflare-like", "1.1.1.1", "1.1.1.0/24", "2606:4700::1111",
     "2606:4700::/32"},
    {"google-like", "8.8.8.8", "8.8.8.0/24", "2001:4860::8888",
     "2001:4860::/32"},
    {"quad9-like", "9.9.9.9", "9.9.9.0/24", "2620:fe::9", "2620:fe::/32"},
    {"opendns-like", "208.67.222.222", "208.67.222.0/24", "2620:119::222",
     "2620:119::/32"},
};

class WorldBuilder {
 public:
  explicit WorldBuilder(const WorldSpec& spec)
      : spec_(spec), rng_(spec.seed), w_(std::make_unique<World>()) {
    w_->spec = spec_;
  }

  std::unique_ptr<World> build() {
    w_->network = std::make_unique<cd::sim::Network>(w_->topology, w_->loop,
                                                     rng_.split("network"));
    w_->base_zone = DnsName::must_parse(spec_.base_zone);
    w_->keyword = spec_.keyword;
    build_infra();
    build_public_dns();
    build_vantage();
    build_edge_ases();
    build_noise();
    w_->targets = filter_ditl(w_->ditl_raw, w_->topology);
    return std::move(w_);
  }

 private:
  // --- helpers ---------------------------------------------------------------

  cd::sim::Host& add_host(Asn asn, const OsProfile& os,
                          std::vector<IpAddr> addrs, std::string label) {
    return w_->hosts.emplace_back(*w_->network, asn, os, std::move(addrs),
                                  rng_.split("host" + label), std::move(label));
  }

  /// Real OS profile, or a copy whose TCP fingerprint a middlebox hides from
  /// p0f (stack semantics — Table 6 acceptance, ephemeral range — unchanged).
  const OsProfile& os_for(OsId id, bool fp_visible) {
    if (fp_visible) return cd::sim::os_profile(id);
    OsProfile hidden = cd::sim::os_profile(id);
    hidden.name += " (fp-normalized)";
    hidden.fp = cd::sim::os_profile(OsId::kMiddleboxFronted).fp;
    return w_->os_profiles.emplace_back(std::move(hidden));
  }

  /// Next free /16 for an edge AS, skipping special-purpose space and the
  /// 11.0.0.0/8 block reserved as never-announced noise.
  Prefix next_v4_block16() {
    for (;;) {
      const std::uint32_t base = ((20u + v4_block_ / 256) << 24) |
                                 ((v4_block_ % 256) << 16);
      ++v4_block_;
      const Prefix p(IpAddr::v4(base), 16);
      if ((base >> 24) == 11) continue;
      if (cd::net::is_special_purpose(p.first()) ||
          cd::net::is_special_purpose(p.last())) {
        continue;
      }
      return p;
    }
  }

  Prefix next_v4_block22() {
    if (v4_sub_count_ == 0 || v4_sub_count_ >= 64) {
      v4_sub_parent_ = next_v4_block16();
      v4_sub_count_ = 0;
    }
    const Prefix p(v4_sub_parent_.base().offset_by(
                       static_cast<std::uint64_t>(v4_sub_count_) << 10),
                   22);
    ++v4_sub_count_;
    return p;
  }

  Prefix next_v6_block32() {
    const std::uint64_t hi =
        (static_cast<std::uint64_t>(0x24000000u + v6_block_)) << 32;
    ++v6_block_;
    return Prefix(IpAddr::v6(hi, 0), 32);
  }

  std::shared_ptr<Zone> make_zone(const std::string& origin,
                                  const std::string& rname) {
    SoaRdata soa;
    soa.mname = DnsName::must_parse("www." + spec_.base_zone);
    soa.rname = DnsName::must_parse(rname);
    soa.serial = 2019110601;
    soa.minimum = 300;
    auto zone = std::make_shared<Zone>(DnsName::must_parse(origin), soa);
    w_->zones.push_back(zone);
    return zone;
  }

  // --- infrastructure: roots, org TLD, experiment zones ----------------------

  void build_infra() {
    auto& as_info = w_->topology.add_as(
        kInfraAsn, FilterPolicy{.osav = true, .dsav = true,
                                .drop_inbound_martians = true});
    (void)as_info;
    w_->topology.announce(kInfraAsn, Prefix::must_parse("199.7.0.0/16"));
    w_->topology.announce(kInfraAsn, Prefix::must_parse("2620:4f::/32"));
    w_->geo.add(Prefix::must_parse("199.7.0.0/16"), "United States");
    w_->geo.add(Prefix::must_parse("2620:4f::/32"), "United States");

    const OsProfile& infra_os = cd::sim::os_profile(OsId::kUbuntu1904);
    const IpAddr root_a4 = IpAddr::must_parse("199.7.0.1");
    const IpAddr root_a6 = IpAddr::must_parse("2620:4f::1");
    const IpAddr root_b4 = IpAddr::must_parse("199.7.0.2");
    const IpAddr root_b6 = IpAddr::must_parse("2620:4f::2");
    const IpAddr org4 = IpAddr::must_parse("199.7.1.1");
    const IpAddr org6 = IpAddr::must_parse("2620:4f:1::1");
    const IpAddr ns1_4 = IpAddr::must_parse("199.7.2.1");
    const IpAddr ns1_6 = IpAddr::must_parse("2620:4f:2::1");
    const IpAddr nsv4 = IpAddr::must_parse("199.7.2.4");
    const IpAddr nsv6 = IpAddr::must_parse("2620:4f:2::6");

    auto& root_a = add_host(kInfraAsn, infra_os, {root_a4, root_a6}, "a.root");
    auto& root_b = add_host(kInfraAsn, infra_os, {root_b4, root_b6}, "b.root");
    auto& org_host = add_host(kInfraAsn, infra_os, {org4, org6}, "org-ns");
    auto& ns1 = add_host(kInfraAsn, infra_os, {ns1_4, ns1_6}, "ns1.dns-lab");
    auto& ns4_host = add_host(kInfraAsn, infra_os, {nsv4}, "nsv4.dns-lab");
    auto& ns6_host = add_host(kInfraAsn, infra_os, {nsv6}, "nsv6.dns-lab");

    const std::string base = spec_.base_zone;
    const std::string contact = "research." + base;

    // Root zone: self NS + org delegation with glue.
    auto root_zone = make_zone(".", contact);
    const DnsName root_ns_a = DnsName::must_parse("a.root-servers.cdnet");
    const DnsName root_ns_b = DnsName::must_parse("b.root-servers.cdnet");
    root_zone->add(cd::dns::make_ns(DnsName(), root_ns_a));
    root_zone->add(cd::dns::make_ns(DnsName(), root_ns_b));
    root_zone->add(cd::dns::make_a(root_ns_a, root_a4));
    root_zone->add(cd::dns::make_aaaa(root_ns_a, root_a6));
    root_zone->add(cd::dns::make_a(root_ns_b, root_b4));
    root_zone->add(cd::dns::make_aaaa(root_ns_b, root_b6));
    const DnsName org_ns = DnsName::must_parse("ns1.org-servers.cdnet");
    root_zone->add(cd::dns::make_ns(DnsName::must_parse("org"), org_ns));
    root_zone->add(cd::dns::make_a(org_ns, org4));
    root_zone->add(cd::dns::make_aaaa(org_ns, org6));

    // org zone: delegation to the experiment zone.
    auto org_zone = make_zone("org", contact);
    const DnsName ns1_name = DnsName::must_parse("ns1." + base);
    org_zone->add(cd::dns::make_ns(DnsName::must_parse(base), ns1_name));
    org_zone->add(cd::dns::make_a(ns1_name, ns1_4));
    org_zone->add(cd::dns::make_aaaa(ns1_name, ns1_6));

    // Experiment base zone. The tcp.<base> names are *not* delegated: ns1
    // itself answers them, truncating UDP to force DNS-over-TCP.
    auto base_zone = make_zone(base, contact);
    base_zone->add(cd::dns::make_ns(DnsName::must_parse(base), ns1_name));
    base_zone->add(cd::dns::make_a(ns1_name, ns1_4));
    base_zone->add(cd::dns::make_aaaa(ns1_name, ns1_6));
    // The project web host named by the SOA MNAME (opt-out info).
    base_zone->add(cd::dns::make_a(DnsName::must_parse("www." + base), ns1_4));
    const DnsName nsv4_name = DnsName::must_parse("nsv4." + base);
    const DnsName nsv6_name = DnsName::must_parse("nsv6." + base);
    base_zone->add(
        cd::dns::make_ns(DnsName::must_parse("v4." + base), nsv4_name));
    base_zone->add(cd::dns::make_a(nsv4_name, nsv4));  // v4-only glue
    base_zone->add(
        cd::dns::make_ns(DnsName::must_parse("v6." + base), nsv6_name));
    base_zone->add(cd::dns::make_aaaa(nsv6_name, nsv6));  // v6-only glue

    auto v4_zone = make_zone("v4." + base, contact);
    auto v6_zone = make_zone("v6." + base, contact);

    if (spec_.wildcard_answers) {
      // The paper's proposed improvement: synthesize answers so QNAME
      // minimization never hits NXDOMAIN and full query names always arrive.
      const std::string kw = spec_.keyword;
      base_zone->add(cd::dns::make_a(
          DnsName::must_parse("*." + kw + "." + base), ns1_4));
      base_zone->add(cd::dns::make_a(
          DnsName::must_parse("*." + kw + ".tcp." + base), ns1_4));
      v4_zone->add(cd::dns::make_a(
          DnsName::must_parse("*." + kw + ".v4." + base), nsv4));
      v6_zone->add(cd::dns::make_a(
          DnsName::must_parse("*." + kw + ".v6." + base), nsv4));
    }

    auto add_auth = [&](cd::sim::Host& host, AuthConfig config,
                        std::vector<std::shared_ptr<Zone>> zones,
                        bool experiment) {
      auto auth = std::make_unique<AuthServer>(host, std::move(config));
      for (auto& z : zones) auth->add_zone(std::move(z));
      if (experiment) w_->experiment_auths.push_back(auth.get());
      w_->auths.push_back(std::move(auth));
    };

    add_auth(root_a, {}, {root_zone}, false);
    add_auth(root_b, {}, {root_zone}, false);
    add_auth(org_host, {}, {org_zone}, false);
    AuthConfig ns1_config;
    ns1_config.truncate_suffixes.push_back(
        DnsName::must_parse("tcp." + base));
    add_auth(ns1, std::move(ns1_config), {base_zone}, true);
    add_auth(ns4_host, {}, {v4_zone}, true);
    add_auth(ns6_host, {}, {v6_zone}, true);

    w_->hints.servers = {root_a4, root_a6, root_b4, root_b6};
  }

  void build_public_dns() {
    int i = 0;
    for (const PublicDnsSpec& svc : kPublicDns) {
      const Asn asn = kPublicDnsAsnBase + static_cast<Asn>(i++);
      w_->topology.add_as(asn, FilterPolicy{.osav = true, .dsav = true,
                                            .drop_inbound_martians = true});
      w_->topology.announce(asn, Prefix::must_parse(svc.v4_prefix));
      w_->topology.announce(asn, Prefix::must_parse(svc.v6_prefix));
      w_->geo.add(Prefix::must_parse(svc.v4_prefix), "United States");
      w_->geo.add(Prefix::must_parse(svc.v6_prefix), "United States");

      const IpAddr v4 = IpAddr::must_parse(svc.v4);
      const IpAddr v6 = IpAddr::must_parse(svc.v6);
      auto& host = add_host(asn, cd::sim::os_profile(OsId::kUbuntu1904),
                            {v4, v6}, svc.name);
      ResolverConfig config;
      config.open = true;
      auto alloc = cd::resolver::make_default_allocator(
          DnsSoftware::kUnbound190, host.os(), rng_.split(svc.name));
      w_->resolvers.push_back(std::make_unique<RecursiveResolver>(
          host, std::move(config), w_->hints, std::move(alloc),
          rng_.split(std::string("pubres") + svc.name)));
      w_->public_dns_addrs.push_back(v4);
      w_->public_dns_addrs.push_back(v6);
    }
  }

  void build_vantage() {
    // The measurement network: crucially, no OSAV (paper §3.4).
    w_->topology.add_as(kVantageAsn, FilterPolicy{});
    w_->topology.announce(kVantageAsn, Prefix::must_parse("203.98.0.0/16"));
    w_->topology.announce(kVantageAsn, Prefix::must_parse("2620:5f::/32"));
    w_->geo.add(Prefix::must_parse("203.98.0.0/16"), "United States");
    w_->geo.add(Prefix::must_parse("2620:5f::/32"), "United States");
    w_->vantage =
        &add_host(kVantageAsn, cd::sim::os_profile(OsId::kUbuntu1904),
                  {IpAddr::must_parse("203.98.0.10"),
                   IpAddr::must_parse("2620:5f::10")},
                  "vantage");
  }

  // --- edge ASes with resolver fleets ------------------------------------------

  struct BandChoice {
    int band = 5;
    DnsSoftware software = DnsSoftware::kBind952To988;
    OsId os = OsId::kEmbeddedCpe;
    bool fp_visible = false;
    double open_p = 0.066;
    std::optional<std::uint16_t> fixed_port;  // zero band: the pinned port
  };

  BandChoice choose_band(cd::Rng& rng) {
    const BandMix& mix = spec_.band_mix;
    const double weights[6] = {mix.zero, mix.low,   mix.windows,
                               mix.freebsd, mix.linux, mix.full};
    double total = 0;
    for (const double wgt : weights) total += wgt;
    double roll = rng.real() * total;
    int band = 5;
    for (int i = 0; i < 6; ++i) {
      if (roll < weights[i]) {
        band = i;
        break;
      }
      roll -= weights[i];
    }

    BandChoice c;
    c.band = band;
    switch (band) {
      case 0: {  // zero source-port randomization
        const double fp_roll = rng.real();
        if (fp_roll < spec_.fp_visible_zero_baidu) {
          c.os = OsId::kBaiduLike;
          c.fp_visible = true;
        } else if (fp_roll <
                   spec_.fp_visible_zero_baidu + spec_.fp_visible_zero_windows) {
          c.os = OsId::kWin2003;
          c.fp_visible = true;
        } else {
          c.os = OsId::kEmbeddedCpe;
        }
        // Fixed-port mix per §5.2.1: 34% port 53 (BIND 8 defaults and
        // `query-source port 53` configs), 12% port 32768, 3.8% 32769, the
        // rest an arbitrary unprivileged port chosen at startup.
        const double port_roll = rng.real();
        if (port_roll < 0.34) {
          c.software = DnsSoftware::kBind8;
          c.fixed_port = 53;
        } else if (port_roll < 0.46) {
          c.software = DnsSoftware::kFixedMisconfig;
          c.fixed_port = 32768;
        } else if (port_roll < 0.498) {
          c.software = DnsSoftware::kFixedMisconfig;
          c.fixed_port = 32769;
        } else {
          c.software = c.os == OsId::kWin2003
                           ? DnsSoftware::kWindowsDns2003
                           : DnsSoftware::kFixedMisconfig;
          c.fixed_port =
              static_cast<std::uint16_t>(1024 + rng.uniform(64512));
        }
        c.open_p = spec_.zero_open_fraction;
        break;
      }
      case 1: {  // ineffective allocation, range 1-200
        c.software = rng.chance(0.65) ? DnsSoftware::kLegacySequential
                                      : DnsSoftware::kLegacySmallPool;
        if (rng.chance(spec_.fp_visible_low_windows)) {
          c.os = OsId::kWin2008;
          c.fp_visible = true;
        } else {
          c.os = OsId::kEmbeddedCpe;
        }
        c.open_p = spec_.low_open_fraction;
        break;
      }
      case 2: {  // Windows DNS 2008 R2+
        static constexpr OsId kWinModern[] = {OsId::kWin2008R2, OsId::kWin2012,
                                              OsId::kWin2012R2, OsId::kWin2016,
                                              OsId::kWin2019};
        c.os = kWinModern[rng.uniform(5)];
        c.software = DnsSoftware::kWindowsDns2008R2;
        c.fp_visible = rng.chance(spec_.fp_visible_windows_band);
        c.open_p = spec_.windows_open_fraction;
        break;
      }
      case 3: {  // FreeBSD OS-default pool
        static constexpr OsId kBsd[] = {OsId::kFreeBsd113, OsId::kFreeBsd120,
                                        OsId::kFreeBsd121};
        c.os = kBsd[rng.uniform(3)];
        c.software = DnsSoftware::kBind9913To9160;
        c.fp_visible = rng.chance(spec_.fp_visible_freebsd_band);
        c.open_p = 0.10;
        break;
      }
      case 4: {  // Linux OS-default pool
        static constexpr OsId kLinuxModern[] = {
            OsId::kUbuntu1604, OsId::kUbuntu1804, OsId::kUbuntu1904};
        static constexpr OsId kLinuxOld[] = {
            OsId::kUbuntu1004, OsId::kUbuntu1204, OsId::kUbuntu1404};
        // A tail of old kernels keeps the loopback-v6 acceptance path alive.
        c.os = rng.chance(0.10) ? kLinuxOld[rng.uniform(3)]
                                : kLinuxModern[rng.uniform(3)];
        c.software = DnsSoftware::kBind9913To9160;
        c.fp_visible = rng.chance(spec_.fp_visible_linux_band);
        c.open_p = 0.027;
        break;
      }
      default: {  // full unprivileged range
        static constexpr DnsSoftware kFull[] = {DnsSoftware::kBind952To988,
                                                DnsSoftware::kUnbound190,
                                                DnsSoftware::kPowerDns420};
        c.software = kFull[rng.uniform(3)];
        const double fp_roll = rng.real();
        if (fp_roll < spec_.fp_visible_full_windows) {
          // BIND on Windows Server: full unprivileged range (§5.3.2's noted
          // discrepancy) with a Windows fingerprint.
          c.os = OsId::kWin2016;
          c.fp_visible = true;
          c.software = DnsSoftware::kBind952To988;
        } else if (fp_roll <
                   spec_.fp_visible_full_windows + spec_.fp_visible_full_linux) {
          static constexpr OsId kLin[] = {OsId::kUbuntu1604, OsId::kUbuntu1804,
                                          OsId::kUbuntu1904};
          c.os = kLin[rng.uniform(3)];
          c.fp_visible = true;
        } else {
          const double os_roll = rng.real();
          if (os_roll < 0.5) {
            c.os = OsId::kEmbeddedCpe;
          } else if (os_roll < 0.8) {
            c.os = OsId::kUbuntu1804;
          } else {
            c.os = OsId::kFreeBsd121;
          }
          c.fp_visible = false;
        }
        c.open_p = 0.066;
        break;
      }
    }
    return c;
  }

  const CountryWeight& choose_country(cd::Rng& rng) {
    double total = 0;
    for (const CountryWeight& cw : spec_.countries) total += cw.as_share;
    double roll = rng.real() * total;
    for (const CountryWeight& cw : spec_.countries) {
      if (roll < cw.as_share) return cw;
      roll -= cw.as_share;
    }
    return spec_.countries.back();
  }

  void build_edge_ases() {
    cd::Rng rng = rng_.split("edge");
    for (int i = 0; i < spec_.n_asns; ++i) {
      build_one_as(kEdgeAsnBase + static_cast<Asn>(i), rng);
    }
  }

  void build_one_as(Asn asn, cd::Rng& rng) {
    const CountryWeight& country = choose_country(rng);

    FilterPolicy policy;
    policy.dsav = rng.chance(country.dsav_rate);
    policy.osav = rng.chance(spec_.osav_fraction);
    policy.drop_inbound_martians =
        rng.chance(policy.dsav ? spec_.martian_fraction_with_dsav
                               : spec_.martian_fraction_without_dsav);
    policy.drop_inbound_same_subnet = rng.chance(spec_.urpf_subnet_fraction);
    w_->topology.add_as(asn, policy);
    w_->truth_dsav[asn] = policy.dsav;
    if (rng.chance(spec_.ids_fraction)) w_->ids_asns.insert(asn);

    // Prefixes: a minority of ASes are large (/16, exercising the 97-prefix
    // other-prefix cap); the rest announce one or two /22s.
    std::vector<Prefix> v4_prefixes;
    if (rng.chance(0.2)) {
      v4_prefixes.push_back(next_v4_block16());
    } else {
      v4_prefixes.push_back(next_v4_block22());
      if (rng.chance(0.3)) v4_prefixes.push_back(next_v4_block22());
    }
    const bool multi_country = v4_prefixes.size() > 1 && rng.chance(0.05);
    for (std::size_t p = 0; p < v4_prefixes.size(); ++p) {
      w_->topology.announce(asn, v4_prefixes[p]);
      const CountryWeight& c2 =
          (multi_country && p > 0) ? choose_country(rng) : country;
      w_->geo.add(v4_prefixes[p], c2.country);
    }

    std::optional<Prefix> v6_prefix;
    if (rng.chance(spec_.v6_as_fraction)) {
      v6_prefix = next_v6_block32();
      w_->topology.announce(asn, *v6_prefix);
      w_->geo.add(*v6_prefix, country.country);
    }

    // Resolver fleet size: geometric with country-weighted mean.
    const double mean =
        std::max(1.0, spec_.resolvers_per_as_mean * country.resolver_density);
    int n_resolvers = 1;
    while (n_resolvers < 64 && rng.chance(1.0 - 1.0 / mean)) ++n_resolvers;

    for (int j = 0; j < n_resolvers; ++j) {
      build_one_resolver(asn, v4_prefixes, v6_prefix, j, rng);
    }
  }

  void build_one_resolver(Asn asn, const std::vector<Prefix>& v4_prefixes,
                          const std::optional<Prefix>& v6_prefix, int index,
                          cd::Rng& rng) {
    const BandChoice band = choose_band(rng);
    const OsProfile& os = os_for(band.os, band.fp_visible);

    // Addressing: spread resolvers across the AS's /24s; dual-stack where the
    // AS has v6 space.
    std::vector<IpAddr> addrs;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const Prefix& p = v4_prefixes[static_cast<std::size_t>(
          rng.uniform(v4_prefixes.size()))];
      const std::uint64_t n24 = p.count_subprefixes(24);
      const std::uint64_t sub = rng.uniform(n24);
      const std::uint64_t host = 10 + rng.uniform(200);
      const IpAddr addr = p.base().offset_by((sub << 8) + host);
      // Addresses must be unique: a collision would silently shadow an
      // existing host in the network's delivery map.
      if (w_->network->host_at(addr)) continue;
      addrs.push_back(addr);
      break;
    }
    if (addrs.empty()) return;  // AS address space exhausted; skip
    bool has_v6 = false;
    if (v6_prefix && rng.chance(spec_.dual_stack_fraction)) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::uint64_t sub64 = rng.uniform(4096);
        const U128 base = v6_prefix->base().bits() + (U128{sub64} << 64) +
                          U128{5 + rng.uniform(90)};
        const IpAddr addr = IpAddr::from_bits(IpFamily::kV6, base);
        if (w_->network->host_at(addr)) continue;
        addrs.push_back(addr);
        has_v6 = true;
        break;
      }
    }

    cd::sim::Host& host = add_host(asn, os, addrs,
                                   "r" + std::to_string(asn) + "-" +
                                       std::to_string(index));

    // Behaviour.
    ResolverConfig config;
    const bool is_infra = index == 0;  // each AS's resolver 0: the upstream
                                       // others may forward to
    bool forwards = false;
    if (!is_infra) {
      const double fwd_p = has_v6 ? spec_.forward_fraction_v6 * 1.3
                                  : spec_.forward_fraction_v4 * 1.45;
      forwards = rng.chance(std::min(0.95, fwd_p));
    }

    const double open_p = forwards ? 0.82 : band.open_p;
    config.open = rng.chance(open_p);
    if (!config.open) {
      // ACL scope.
      const double scope = rng.real();
      if (is_infra || scope < spec_.acl_as_wide) {
        for (const Prefix& p : v4_prefixes) config.acl.push_back(p);
        if (v6_prefix) config.acl.push_back(*v6_prefix);
      } else if (scope < spec_.acl_as_wide + spec_.acl_subnet_only) {
        config.acl.emplace_back(addrs[0], 24);
        if (addrs.size() > 1) config.acl.emplace_back(addrs[1], 64);
      } else {
        // AS-wide plus a peer prefix (managed-service style).
        for (const Prefix& p : v4_prefixes) config.acl.push_back(p);
        if (v6_prefix) config.acl.push_back(*v6_prefix);
      }
      if (rng.chance(spec_.acl_allows_private)) {
        config.acl.push_back(Prefix::must_parse("192.168.0.0/16"));
        config.acl.push_back(Prefix::must_parse("10.0.0.0/8"));
        config.acl.push_back(Prefix::must_parse("fc00::/7"));
      }
    }

    if (forwards) {
      if (rng.chance(spec_.forward_to_public_dns) || !as_infra_.count(asn)) {
        // Public service of a family we can reach.
        const IpAddr& up = w_->public_dns_addrs[static_cast<std::size_t>(
            rng.uniform(w_->public_dns_addrs.size()) & ~1ULL)];  // v4 entry
        config.forwarders.push_back(up);
        if (has_v6) {
          config.forwarders.push_back(
              w_->public_dns_addrs[1]);  // a v6 service address
        }
      } else {
        config.forwarders.push_back(as_infra_.at(asn));
      }
      // A few forwarders run forward-first failover and sometimes iterate
      // themselves (the paper's small "both direct and forwarded" class).
      if (rng.chance(0.05)) config.forward_ratio = 0.8;
    }

    bool qmin = false;
    if (rng.chance(spec_.qmin_fraction)) {
      qmin = true;
      config.qmin = rng.chance(spec_.qmin_strict_share) ? QminMode::kStrict
                                                        : QminMode::kRelaxed;
    }

    std::unique_ptr<cd::resolver::PortAllocator> alloc;
    if (band.fixed_port) {
      alloc = std::make_unique<cd::resolver::FixedPortAllocator>(
          *band.fixed_port);
    } else {
      alloc = cd::resolver::make_default_allocator(
          band.software, os, rng.split("alloc" + host.label()));
    }
    w_->resolvers.push_back(std::make_unique<RecursiveResolver>(
        host, std::move(config), w_->hints, std::move(alloc),
        rng.split("res" + host.label())));

    if (is_infra) as_infra_[asn] = addrs[0];

    // Capture + ground truth.
    for (const IpAddr& addr : addrs) {
      ResolverTruth truth;
      truth.os = band.os;
      truth.software = band.software;
      truth.open = w_->resolvers.back()->config().open;
      truth.forwards = forwards;
      truth.qmin = qmin;
      truth.band = band.band;
      w_->truth_resolvers.emplace(addr, truth);
      const double miss = addr.is_v6()
                              ? 1.0 - (1.0 - spec_.capture_miss) *
                                          (1.0 - spec_.capture_miss_v6)
                              : spec_.capture_miss;
      if (!rng.chance(miss)) {
        w_->ditl_raw.push_back(addr);
      }
      if (addr.is_v6() && rng.chance(spec_.hitlist_coverage)) {
        w_->hitlist_v6.push_back(addr);
      }
      build_passive_history(addr, band, rng);
    }
  }

  /// Synthesizes the resolver's 18-months-earlier port behaviour (§5.2.2).
  void build_passive_history(const IpAddr& addr, const BandChoice& band,
                             cd::Rng& rng) {
    std::vector<std::uint16_t> old_ports;
    if (band.band == 0) {
      // Today's fixed-port population: already-fixed / regressed /
      // insufficient, per the paper's 51/25/24 split.
      const double roll = rng.real();
      if (roll < spec_.passive_already_fixed) {
        old_ports.assign(12, band.fixed_port.value_or(53));
      } else if (roll < spec_.passive_already_fixed + spec_.passive_regressed) {
        for (int i = 0; i < 12; ++i) {
          old_ports.push_back(
              static_cast<std::uint16_t>(1024 + rng.uniform(64512)));
        }
      } else {
        // Insufficient: a few scattered queries that satisfy neither of the
        // paper's comparability conditions (or nothing at all).
        if (rng.chance(0.5)) {
          for (int i = 0; i < 3; ++i) {
            old_ports.push_back(
                static_cast<std::uint16_t>(1024 + rng.uniform(64512)));
          }
        }
      }
    } else {
      // Everyone else: ordinary randomized history when captured at all.
      if (rng.chance(0.76)) {
        for (int i = 0; i < 12; ++i) {
          old_ports.push_back(
              static_cast<std::uint16_t>(1024 + rng.uniform(64512)));
        }
      }
    }
    if (!old_ports.empty()) w_->passive_capture.emplace(addr, std::move(old_ports));
  }

  // --- DITL noise ---------------------------------------------------------------

  void build_noise() {
    cd::Rng rng = rng_.split("noise");
    const std::size_t live = w_->ditl_raw.size();
    const auto as_count =
        static_cast<std::uint64_t>(std::max(1, spec_.n_asns));

    const auto n_stale =
        static_cast<std::size_t>(static_cast<double>(live) * spec_.stale_per_live);
    std::size_t produced = 0;
    for (std::size_t attempt = 0; produced < n_stale && attempt < n_stale * 4;
         ++attempt) {
      // A once-active resolver address inside some edge AS, now dark.
      const Asn asn = kEdgeAsnBase + static_cast<Asn>(rng.uniform(as_count));
      const auto& prefixes =
          w_->topology.prefixes_of(asn, rng.chance(1.0 - spec_.stale_v6_share)
                                   ? IpFamily::kV4
                                   : IpFamily::kV6);
      if (prefixes.empty()) continue;  // AS without v6; redraw
      const Prefix& p = prefixes[static_cast<std::size_t>(
          rng.uniform(prefixes.size()))];
      IpAddr addr;
      if (p.family() == IpFamily::kV4) {
        addr = p.base().offset_by(
            (rng.uniform(p.count_subprefixes(24)) << 8) + 10 +
            rng.uniform(200));
      } else {
        addr = IpAddr::from_bits(
            IpFamily::kV6, p.base().bits() + (U128{rng.uniform(4096)} << 64) +
                               U128{5 + rng.uniform(90)});
      }
      if (w_->network->host_at(addr)) continue;  // accidentally live; skip
      w_->ditl_raw.push_back(addr);
      ++produced;
    }

    const auto n_special = static_cast<std::size_t>(
        static_cast<double>(live) * spec_.special_per_live);
    for (std::size_t i = 0; i < n_special; ++i) {
      static const char* kSpecialBases[] = {"10.0.0.0/8", "192.168.0.0/16",
                                            "172.16.0.0/12", "100.64.0.0/10"};
      const Prefix p = Prefix::must_parse(kSpecialBases[rng.uniform(4)]);
      w_->ditl_raw.push_back(p.base().offset_by(1 + rng.uniform(65000)));
    }

    const auto n_unrouted = static_cast<std::size_t>(
        static_cast<double>(live) * spec_.unrouted_per_live);
    for (std::size_t i = 0; i < n_unrouted; ++i) {
      // 11.0.0.0/8 is deliberately never announced in this world.
      w_->ditl_raw.push_back(
          IpAddr::v4((11u << 24) + static_cast<std::uint32_t>(
                                       rng.uniform(1u << 24))));
    }

    // Shuffle the capture so processing order carries no structure.
    rng.shuffle(w_->ditl_raw);
  }

  const WorldSpec spec_;
  cd::Rng rng_;
  std::unique_ptr<World> w_;
  std::uint32_t v4_block_ = 0;
  Prefix v4_sub_parent_;
  int v4_sub_count_ = 0;
  std::uint32_t v6_block_ = 1;
  std::unordered_map<Asn, IpAddr> as_infra_;
};

}  // namespace

std::vector<CountryWeight> WorldSpec::default_countries() {
  // AS shares follow Table 1's totals; DSAV deployment rates are shaped so
  // that "reachable AS" percentages land near the paper's column (roughly
  // reachable ~ (1 - dsav) * 0.9). Algeria and Morocco are small and dense
  // with low filtering, reproducing Table 2's top rows.
  return {
      {"United States", 0.310, 0.69, 1.0},
      {"Brazil", 0.120, 0.35, 1.0},
      {"Russia", 0.092, 0.35, 1.2},
      {"Germany", 0.046, 0.60, 1.0},
      {"United Kingdom", 0.042, 0.63, 1.0},
      {"Poland", 0.038, 0.42, 1.0},
      {"Ukraine", 0.032, 0.30, 1.2},
      {"India", 0.029, 0.54, 1.3},
      {"Australia", 0.029, 0.64, 1.0},
      {"Canada", 0.028, 0.60, 1.0},
      {"Algeria", 0.0008, 0.55, 6.0},
      {"Morocco", 0.0012, 0.52, 5.0},
      {"Eswatini", 0.0004, 0.20, 1.5},
      {"Belize", 0.0015, 0.58, 1.2},
      {"Other", 0.230, 0.48, 1.0},
  };
}

WorldSpec small_world_spec() {
  WorldSpec spec;
  spec.n_asns = 30;
  spec.resolvers_per_as_mean = 3.0;
  spec.stale_per_live = 1.0;
  spec.special_per_live = 0.2;
  spec.unrouted_per_live = 0.1;
  spec.qmin_fraction = 0.02;  // enough instances to exercise the code path
  spec.ids_fraction = 0.1;
  return spec;
}

WorldSpec bench_world_spec() {
  WorldSpec spec;
  spec.n_asns = 600;
  spec.resolvers_per_as_mean = 5.0;
  // Scaled up from the paper's 0.16% so the small fleet still contains a
  // measurable QNAME-minimizing population (documented deviation).
  spec.qmin_fraction = 0.005;
  // Oversample the rare port-behaviour bands so the zero and 1-200 rows of
  // Table 4 are statistically visible at this scale (documented deviation;
  // the paper's proportions are restored in the printed comparison).
  spec.band_mix.zero = 0.030;
  spec.band_mix.low = 0.012;
  return spec;
}

std::unique_ptr<World> generate_world(const WorldSpec& spec) {
  return WorldBuilder(spec).build();
}

}  // namespace cd::ditl
