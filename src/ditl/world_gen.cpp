#include <algorithm>
#include <map>
#include <optional>

#include "ditl/world.h"

#include "ditl/ditl.h"
#include "ditl/plan.h"
#include "ditl/target_stream.h"
#include "net/special.h"
#include "util/error.h"

namespace cd::ditl {

using cd::dns::DnsName;
using cd::dns::RrType;
using cd::dns::SoaRdata;
using cd::dns::Zone;
using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::Prefix;
using cd::net::U128;
using cd::resolver::AuthConfig;
using cd::resolver::AuthServer;
using cd::resolver::DnsSoftware;
using cd::resolver::QminMode;
using cd::resolver::RecursiveResolver;
using cd::resolver::ResolverConfig;
using cd::sim::Asn;
using cd::sim::FilterPolicy;
using cd::sim::OsId;
using cd::sim::OsProfile;

namespace {

/// One well-known public DNS service (the paper checks forwarding against
/// Cloudflare/Google/CenturyLink/OpenDNS/Quad9).
struct PublicDnsSpec {
  const char* name;
  const char* v4;
  const char* v4_prefix;
  const char* v6;
  const char* v6_prefix;
};

constexpr PublicDnsSpec kPublicDns[kNumPublicDns] = {
    {"cloudflare-like", "1.1.1.1", "1.1.1.0/24", "2606:4700::1111",
     "2606:4700::/32"},
    {"google-like", "8.8.8.8", "8.8.8.0/24", "2001:4860::8888",
     "2001:4860::/32"},
    {"quad9-like", "9.9.9.9", "9.9.9.0/24", "2620:fe::9", "2620:fe::/32"},
    {"opendns-like", "208.67.222.222", "208.67.222.0/24", "2620:119::222",
     "2620:119::/32"},
};

/// Builds a world — full, or one shard's streamed slice. Shared
/// infrastructure (roots, public DNS services, vantage) is built
/// identically in every mode from the root RNG; edge ASes come from the
/// campaign plan and the target stream, whose per-AS substreams make any
/// subset reproducible (see ditl/target_stream.h).
class WorldBuilder {
 public:
  WorldBuilder(const WorldSpec& spec, std::size_t shard,
               std::size_t num_shards, bool full)
      : spec_(spec),
        shard_(shard),
        num_shards_(full ? 1 : std::max<std::size_t>(1, num_shards)),
        full_(full),
        rng_(spec.seed),
        w_(std::make_unique<World>()) {
    w_->spec = spec_;
    w_->shard_index = full ? 0 : shard;
    w_->num_shards = num_shards_;
  }

  std::unique_ptr<World> build() {
    w_->network = std::make_unique<cd::sim::Network>(w_->topology, w_->loop,
                                                     rng_.split("network"));
    w_->base_zone = DnsName::must_parse(spec_.base_zone);
    w_->keyword = spec_.keyword;
    build_infra();
    build_public_dns();
    build_vantage();

    plan_ = build_campaign_plan(spec_);
    register_edge_ases();
    build_edge_fleets();
    if (full_) build_global_noise();
    w_->truth_resolvers.freeze();
    w_->targets = filter_ditl(w_->ditl_raw, w_->topology);
    return std::move(w_);
  }

 private:
  // --- helpers ---------------------------------------------------------------

  cd::sim::Host& add_host(Asn asn, const OsProfile& os,
                          std::vector<IpAddr> addrs, std::string label) {
    return w_->hosts.emplace_back(*w_->network, asn, os, std::move(addrs),
                                  rng_.split("host" + label), std::move(label));
  }

  /// Real OS profile, or an interned copy whose TCP fingerprint a middlebox
  /// hides from p0f (stack semantics — Table 6 acceptance, ephemeral range —
  /// unchanged). One hidden profile per OS id, not one per resolver.
  const OsProfile& os_for(OsId id, bool fp_visible) {
    if (fp_visible) return cd::sim::os_profile(id);
    const auto it = hidden_os_.find(id);
    if (it != hidden_os_.end()) return *it->second;
    OsProfile hidden = cd::sim::os_profile(id);
    hidden.name += " (fp-normalized)";
    hidden.fp = cd::sim::os_profile(OsId::kMiddleboxFronted).fp;
    const OsProfile& interned = w_->os_profiles.emplace_back(std::move(hidden));
    hidden_os_.emplace(id, &interned);
    return interned;
  }

  std::shared_ptr<Zone> make_zone(const std::string& origin,
                                  const std::string& rname) {
    SoaRdata soa;
    soa.mname = DnsName::must_parse("www." + spec_.base_zone);
    soa.rname = DnsName::must_parse(rname);
    soa.serial = 2019110601;
    soa.minimum = 300;
    auto zone = std::make_shared<Zone>(DnsName::must_parse(origin), soa);
    w_->zones.push_back(zone);
    return zone;
  }

  // --- infrastructure: roots, org TLD, experiment zones ----------------------

  void build_infra() {
    auto& as_info = w_->topology.add_as(
        kInfraAsn, FilterPolicy{.osav = true, .dsav = true,
                                .drop_inbound_martians = true});
    (void)as_info;
    w_->topology.announce(kInfraAsn, Prefix::must_parse("199.7.0.0/16"));
    w_->topology.announce(kInfraAsn, Prefix::must_parse("2620:4f::/32"));
    w_->geo.add(Prefix::must_parse("199.7.0.0/16"), "United States");
    w_->geo.add(Prefix::must_parse("2620:4f::/32"), "United States");

    const OsProfile& infra_os = cd::sim::os_profile(OsId::kUbuntu1904);
    const IpAddr root_a4 = IpAddr::must_parse("199.7.0.1");
    const IpAddr root_a6 = IpAddr::must_parse("2620:4f::1");
    const IpAddr root_b4 = IpAddr::must_parse("199.7.0.2");
    const IpAddr root_b6 = IpAddr::must_parse("2620:4f::2");
    const IpAddr org4 = IpAddr::must_parse("199.7.1.1");
    const IpAddr org6 = IpAddr::must_parse("2620:4f:1::1");
    const IpAddr ns1_4 = IpAddr::must_parse("199.7.2.1");
    const IpAddr ns1_6 = IpAddr::must_parse("2620:4f:2::1");
    const IpAddr nsv4 = IpAddr::must_parse("199.7.2.4");
    const IpAddr nsv6 = IpAddr::must_parse("2620:4f:2::6");

    auto& root_a = add_host(kInfraAsn, infra_os, {root_a4, root_a6}, "a.root");
    auto& root_b = add_host(kInfraAsn, infra_os, {root_b4, root_b6}, "b.root");
    auto& org_host = add_host(kInfraAsn, infra_os, {org4, org6}, "org-ns");
    auto& ns1 = add_host(kInfraAsn, infra_os, {ns1_4, ns1_6}, "ns1.dns-lab");
    auto& ns4_host = add_host(kInfraAsn, infra_os, {nsv4}, "nsv4.dns-lab");
    auto& ns6_host = add_host(kInfraAsn, infra_os, {nsv6}, "nsv6.dns-lab");

    const std::string base = spec_.base_zone;
    const std::string contact = "research." + base;

    // Root zone: self NS + org delegation with glue.
    auto root_zone = make_zone(".", contact);
    const DnsName root_ns_a = DnsName::must_parse("a.root-servers.cdnet");
    const DnsName root_ns_b = DnsName::must_parse("b.root-servers.cdnet");
    root_zone->add(cd::dns::make_ns(DnsName(), root_ns_a));
    root_zone->add(cd::dns::make_ns(DnsName(), root_ns_b));
    root_zone->add(cd::dns::make_a(root_ns_a, root_a4));
    root_zone->add(cd::dns::make_aaaa(root_ns_a, root_a6));
    root_zone->add(cd::dns::make_a(root_ns_b, root_b4));
    root_zone->add(cd::dns::make_aaaa(root_ns_b, root_b6));
    const DnsName org_ns = DnsName::must_parse("ns1.org-servers.cdnet");
    root_zone->add(cd::dns::make_ns(DnsName::must_parse("org"), org_ns));
    root_zone->add(cd::dns::make_a(org_ns, org4));
    root_zone->add(cd::dns::make_aaaa(org_ns, org6));

    // org zone: delegation to the experiment zone.
    auto org_zone = make_zone("org", contact);
    const DnsName ns1_name = DnsName::must_parse("ns1." + base);
    org_zone->add(cd::dns::make_ns(DnsName::must_parse(base), ns1_name));
    org_zone->add(cd::dns::make_a(ns1_name, ns1_4));
    org_zone->add(cd::dns::make_aaaa(ns1_name, ns1_6));

    // Experiment base zone. The tcp.<base> names are *not* delegated: ns1
    // itself answers them, truncating UDP to force DNS-over-TCP.
    auto base_zone = make_zone(base, contact);
    base_zone->add(cd::dns::make_ns(DnsName::must_parse(base), ns1_name));
    base_zone->add(cd::dns::make_a(ns1_name, ns1_4));
    base_zone->add(cd::dns::make_aaaa(ns1_name, ns1_6));
    // The project web host named by the SOA MNAME (opt-out info).
    base_zone->add(cd::dns::make_a(DnsName::must_parse("www." + base), ns1_4));
    const DnsName nsv4_name = DnsName::must_parse("nsv4." + base);
    const DnsName nsv6_name = DnsName::must_parse("nsv6." + base);
    base_zone->add(
        cd::dns::make_ns(DnsName::must_parse("v4." + base), nsv4_name));
    base_zone->add(cd::dns::make_a(nsv4_name, nsv4));  // v4-only glue
    base_zone->add(
        cd::dns::make_ns(DnsName::must_parse("v6." + base), nsv6_name));
    base_zone->add(cd::dns::make_aaaa(nsv6_name, nsv6));  // v6-only glue

    auto v4_zone = make_zone("v4." + base, contact);
    auto v6_zone = make_zone("v6." + base, contact);

    if (spec_.wildcard_answers) {
      // The paper's proposed improvement: synthesize answers so QNAME
      // minimization never hits NXDOMAIN and full query names always arrive.
      const std::string kw = spec_.keyword;
      base_zone->add(cd::dns::make_a(
          DnsName::must_parse("*." + kw + "." + base), ns1_4));
      base_zone->add(cd::dns::make_a(
          DnsName::must_parse("*." + kw + ".tcp." + base), ns1_4));
      v4_zone->add(cd::dns::make_a(
          DnsName::must_parse("*." + kw + ".v4." + base), nsv4));
      v6_zone->add(cd::dns::make_a(
          DnsName::must_parse("*." + kw + ".v6." + base), nsv4));
    }

    auto add_auth = [&](cd::sim::Host& host, AuthConfig config,
                        std::vector<std::shared_ptr<Zone>> zones,
                        bool experiment) {
      auto auth = std::make_unique<AuthServer>(host, std::move(config));
      for (auto& z : zones) auth->add_zone(std::move(z));
      if (experiment) w_->experiment_auths.push_back(auth.get());
      w_->auths.push_back(std::move(auth));
    };

    add_auth(root_a, {}, {root_zone}, false);
    add_auth(root_b, {}, {root_zone}, false);
    add_auth(org_host, {}, {org_zone}, false);
    AuthConfig ns1_config;
    ns1_config.truncate_suffixes.push_back(
        DnsName::must_parse("tcp." + base));
    add_auth(ns1, std::move(ns1_config), {base_zone}, true);
    add_auth(ns4_host, {}, {v4_zone}, true);
    add_auth(ns6_host, {}, {v6_zone}, true);

    w_->hints.servers = {root_a4, root_a6, root_b4, root_b6};
  }

  void build_public_dns() {
    int i = 0;
    for (const PublicDnsSpec& svc : kPublicDns) {
      const Asn asn = kPublicDnsAsnBase + static_cast<Asn>(i++);
      w_->topology.add_as(asn, FilterPolicy{.osav = true, .dsav = true,
                                            .drop_inbound_martians = true});
      w_->topology.announce(asn, Prefix::must_parse(svc.v4_prefix));
      w_->topology.announce(asn, Prefix::must_parse(svc.v6_prefix));
      w_->geo.add(Prefix::must_parse(svc.v4_prefix), "United States");
      w_->geo.add(Prefix::must_parse(svc.v6_prefix), "United States");

      const IpAddr v4 = IpAddr::must_parse(svc.v4);
      const IpAddr v6 = IpAddr::must_parse(svc.v6);
      auto& host = add_host(asn, cd::sim::os_profile(OsId::kUbuntu1904),
                            {v4, v6}, svc.name);
      ResolverConfig config;
      config.open = true;
      auto alloc = cd::resolver::make_default_allocator(
          DnsSoftware::kUnbound190, host.os(), rng_.split(svc.name));
      w_->resolvers.push_back(std::make_unique<RecursiveResolver>(
          host, std::move(config), w_->hints, std::move(alloc),
          rng_.split(std::string("pubres") + svc.name)));
      w_->public_dns_addrs.push_back(v4);
      w_->public_dns_addrs.push_back(v6);
    }
  }

  void build_vantage() {
    // The measurement network: crucially, no OSAV (paper §3.4).
    w_->topology.add_as(kVantageAsn, FilterPolicy{});
    w_->topology.announce(kVantageAsn, Prefix::must_parse("203.98.0.0/16"));
    w_->topology.announce(kVantageAsn, Prefix::must_parse("2620:5f::/32"));
    w_->geo.add(Prefix::must_parse("203.98.0.0/16"), "United States");
    w_->geo.add(Prefix::must_parse("2620:5f::/32"), "United States");
    w_->vantage =
        &add_host(kVantageAsn, cd::sim::os_profile(OsId::kUbuntu1904),
                  {IpAddr::must_parse("203.98.0.10"),
                   IpAddr::must_parse("2620:5f::10")},
                  "vantage");
  }

  // --- edge ASes from the campaign plan --------------------------------------

  /// Registers every edge AS's routing, policy, geo and AS-level truth —
  /// O(n_asns) — regardless of shard scope: routing tables, the source
  /// selector and the analyst need the full map even when only one shard's
  /// hosts materialize.
  void register_edge_ases() {
    for (std::size_t id = 0; id < plan_->size(); ++id) {
      const Asn asn = plan_->asn_of(id);
      const FilterPolicy policy = plan_->policy_of(id);
      w_->topology.add_as(asn, policy);
      w_->truth_dsav[asn] = policy.dsav;
      if (plan_->flags[id] & kAsIds) w_->ids_asns.insert(asn);

      w_->topology.announce(asn, plan_->v4a[id]);
      w_->geo.add(plan_->v4a[id],
                  spec_.countries[plan_->country[id]].country);
      if (plan_->flags[id] & kAsHasSecondV4) {
        w_->topology.announce(asn, plan_->v4b[id]);
        w_->geo.add(plan_->v4b[id],
                    spec_.countries[plan_->country2[id]].country);
      }
      if (plan_->flags[id] & kAsHasV6) {
        w_->topology.announce(asn, plan_->v6[id]);
        w_->geo.add(plan_->v6[id],
                    spec_.countries[plan_->country[id]].country);
      }
    }
  }

  /// Streams the in-scope ASes and materializes their resolver fleets,
  /// ground truth, DITL entries, hitlist and passive history.
  void build_edge_fleets() {
    TargetStream stream(*plan_, shard_, num_shards_);
    while (const AsBatch* batch = stream.next()) {
      const Asn asn = batch->asn;
      std::optional<IpAddr> as_infra;  // resolver 0's v4 address
      for (const ResolverSpec& r : *batch->resolvers) {
        materialize_resolver(batch->id, asn, r, as_infra);
      }
      for (const IpAddr& addr : *batch->stale) {
        w_->ditl_raw.push_back(addr);
      }
      captured_live_ += batch->captured_live;
    }
  }

  void materialize_resolver(std::size_t id, Asn asn, const ResolverSpec& r,
                            std::optional<IpAddr>& as_infra) {
    const OsProfile& os = os_for(r.os, r.fp_visible);
    std::vector<IpAddr> addrs(r.addrs.begin(), r.addrs.begin() + r.n_addrs);
    cd::sim::Host& host = w_->hosts.emplace_back(
        *w_->network, asn, os, addrs, cd::Rng(r.host_seed),
        "r" + std::to_string(asn) + "-" + std::to_string(r.index));

    ResolverConfig config;
    config.open = r.open;
    if (!r.open) {
      switch (r.acl_kind) {
        case AclKind::kAsWide:
          for (std::size_t p = 0; p < plan_->v4_count(id); ++p) {
            config.acl.push_back(plan_->v4_prefix(id, p));
          }
          if (plan_->flags[id] & kAsHasV6) config.acl.push_back(plan_->v6[id]);
          break;
        case AclKind::kSubnetOnly:
          config.acl.emplace_back(addrs[0], 24);
          if (addrs.size() > 1) config.acl.emplace_back(addrs[1], 64);
          break;
      }
      if (r.acl_private) {
        config.acl.push_back(Prefix::must_parse("192.168.0.0/16"));
        config.acl.push_back(Prefix::must_parse("10.0.0.0/8"));
        config.acl.push_back(Prefix::must_parse("fc00::/7"));
      }
    }

    if (r.forwards) {
      if (r.forward_public || !as_infra) {
        const IpAddr& up = w_->public_dns_addrs[r.public_idx];
        config.forwarders.push_back(up);
        if (r.has_v6) {
          config.forwarders.push_back(
              w_->public_dns_addrs[1]);  // a v6 service address
        }
      } else {
        config.forwarders.push_back(*as_infra);
      }
      if (r.forward_failover) config.forward_ratio = 0.8;
    }

    if (r.qmin) config.qmin = r.qmin_mode;

    std::unique_ptr<cd::resolver::PortAllocator> alloc;
    if (r.fixed_port) {
      alloc = std::make_unique<cd::resolver::FixedPortAllocator>(*r.fixed_port);
    } else {
      alloc = cd::resolver::make_default_allocator(r.software, os,
                                                   cd::Rng(r.alloc_seed));
    }
    w_->resolvers.push_back(std::make_unique<RecursiveResolver>(
        host, std::move(config), w_->hints, std::move(alloc),
        cd::Rng(r.res_seed)));

    if (r.is_infra) as_infra = r.addrs[0];

    // Capture + ground truth.
    for (std::size_t a = 0; a < r.n_addrs; ++a) {
      const IpAddr& addr = r.addrs[a];
      ResolverTruth truth;
      truth.os = r.os;
      truth.software = r.software;
      truth.open = r.open;
      truth.forwards = r.forwards;
      truth.qmin = r.qmin;
      truth.band = r.band;
      w_->truth_resolvers.insert(addr, truth);
      if (r.in_capture[a]) w_->ditl_raw.push_back(addr);
      if (r.in_hitlist[a]) w_->hitlist_v6.push_back(addr);
      if (r.n_old_ports[a] > 0) {
        w_->passive_capture.emplace(
            addr, std::vector<std::uint16_t>(
                      r.old_ports[a].begin(),
                      r.old_ports[a].begin() + r.n_old_ports[a]));
      }
    }
  }

  // --- global DITL noise (full worlds only) ----------------------------------

  /// Special-purpose and unrouted capture noise. Both classes are dropped
  /// by pre-scan filtering, so shard worlds skip them entirely; they only
  /// shape ditl_raw and the exclusion statistics of full worlds.
  void build_global_noise() {
    cd::Rng rng = rng_.split("noise");
    const std::size_t live = captured_live_;

    const auto n_special = static_cast<std::size_t>(
        static_cast<double>(live) * spec_.special_per_live);
    for (std::size_t i = 0; i < n_special; ++i) {
      static const char* kSpecialBases[] = {"10.0.0.0/8", "192.168.0.0/16",
                                            "172.16.0.0/12", "100.64.0.0/10"};
      const Prefix p = Prefix::must_parse(kSpecialBases[rng.uniform(4)]);
      w_->ditl_raw.push_back(p.base().offset_by(1 + rng.uniform(65000)));
    }

    const auto n_unrouted = static_cast<std::size_t>(
        static_cast<double>(live) * spec_.unrouted_per_live);
    for (std::size_t i = 0; i < n_unrouted; ++i) {
      // 11.0.0.0/8 is deliberately never announced in this world.
      w_->ditl_raw.push_back(
          IpAddr::v4((11u << 24) + static_cast<std::uint32_t>(
                                       rng.uniform(1u << 24))));
    }

    // Shuffle the capture so processing order carries no structure.
    rng.shuffle(w_->ditl_raw);
  }

  const WorldSpec spec_;
  std::size_t shard_;
  std::size_t num_shards_;
  bool full_;
  cd::Rng rng_;
  std::unique_ptr<World> w_;
  std::unique_ptr<CampaignPlan> plan_;
  std::map<OsId, const OsProfile*> hidden_os_;
  std::size_t captured_live_ = 0;
};

}  // namespace

void ResolverTruthTable::freeze() {
  std::vector<std::size_t> order(addrs_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return addrs_[a] < addrs_[b];
  });
  const auto apply = [&](auto& column) {
    auto sorted = column;
    for (std::size_t i = 0; i < order.size(); ++i) {
      sorted[i] = column[order[i]];
    }
    column = std::move(sorted);
  };
  apply(addrs_);
  apply(os_);
  apply(software_);
  apply(band_);
  apply(bits_);
}

ResolverTruthTable::const_iterator ResolverTruthTable::find(
    const cd::net::IpAddr& addr) const {
  const auto it = std::lower_bound(addrs_.begin(), addrs_.end(), addr);
  if (it == addrs_.end() || !(*it == addr)) return end();
  return {this, static_cast<std::size_t>(it - addrs_.begin())};
}

std::vector<CountryWeight> WorldSpec::default_countries() {
  // AS shares follow Table 1's totals; DSAV deployment rates are shaped so
  // that "reachable AS" percentages land near the paper's column (roughly
  // reachable ~ (1 - dsav) * 0.9). Algeria and Morocco are small and dense
  // with low filtering, reproducing Table 2's top rows.
  return {
      {"United States", 0.310, 0.69, 1.0},
      {"Brazil", 0.120, 0.35, 1.0},
      {"Russia", 0.092, 0.35, 1.2},
      {"Germany", 0.046, 0.60, 1.0},
      {"United Kingdom", 0.042, 0.63, 1.0},
      {"Poland", 0.038, 0.42, 1.0},
      {"Ukraine", 0.032, 0.30, 1.2},
      {"India", 0.029, 0.54, 1.3},
      {"Australia", 0.029, 0.64, 1.0},
      {"Canada", 0.028, 0.60, 1.0},
      {"Algeria", 0.0008, 0.55, 6.0},
      {"Morocco", 0.0012, 0.52, 5.0},
      {"Eswatini", 0.0004, 0.20, 1.5},
      {"Belize", 0.0015, 0.58, 1.2},
      {"Other", 0.230, 0.48, 1.0},
  };
}

WorldSpec small_world_spec() {
  WorldSpec spec;
  spec.n_asns = 30;
  spec.resolvers_per_as_mean = 3.0;
  spec.stale_per_live = 1.0;
  spec.special_per_live = 0.2;
  spec.unrouted_per_live = 0.1;
  spec.qmin_fraction = 0.02;  // enough instances to exercise the code path
  spec.ids_fraction = 0.1;
  return spec;
}

WorldSpec bench_world_spec() {
  WorldSpec spec;
  spec.n_asns = 600;
  spec.resolvers_per_as_mean = 5.0;
  // Scaled up from the paper's 0.16% so the small fleet still contains a
  // measurable QNAME-minimizing population (documented deviation).
  spec.qmin_fraction = 0.005;
  // Oversample the rare port-behaviour bands so the zero and 1-200 rows of
  // Table 4 are statistically visible at this scale (documented deviation;
  // the paper's proportions are restored in the printed comparison).
  spec.band_mix.zero = 0.030;
  spec.band_mix.low = 0.012;
  return spec;
}

std::unique_ptr<World> generate_world(const WorldSpec& spec) {
  return WorldBuilder(spec, 0, 1, /*full=*/true).build();
}

std::unique_ptr<World> generate_world(const WorldSpec& spec, std::size_t shard,
                                      std::size_t num_shards) {
  CD_ENSURE(num_shards > 0 && shard < num_shards,
            "generate_world: bad shard spec");
  return WorldBuilder(spec, shard, num_shards, /*full=*/false).build();
}

}  // namespace cd::ditl
