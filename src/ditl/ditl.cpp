#include "ditl/ditl.h"

#include "net/special.h"

namespace cd::ditl {

std::vector<cd::scanner::TargetInfo> filter_ditl(
    const std::vector<cd::net::IpAddr>& raw, const cd::sim::Topology& topology,
    DitlFilterStats* stats) {
  DitlFilterStats local;
  std::vector<cd::scanner::TargetInfo> out;
  out.reserve(raw.size());

  for (const cd::net::IpAddr& addr : raw) {
    ++local.raw;
    if (cd::net::is_special_purpose(addr)) {
      ++local.excluded_special;
      continue;
    }
    const auto asn = topology.asn_of(addr);
    if (!asn) {
      ++local.excluded_unrouted;
      continue;
    }
    ++local.accepted;
    out.push_back(cd::scanner::TargetInfo{addr, *asn});
  }
  if (stats) *stats = local;
  return out;
}

}  // namespace cd::ditl
