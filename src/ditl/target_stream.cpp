#include "ditl/target_stream.h"

#include <algorithm>

#include "scanner/prober.h"
#include "util/rng.h"

namespace cd::ditl {

using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::Prefix;
using cd::net::U128;
using cd::resolver::DnsSoftware;
using cd::resolver::QminMode;
using cd::sim::OsId;

namespace {

/// Band draw (Table 4 population structure): which port-behaviour band a
/// resolver belongs to, with the band's OS/software/fingerprint mix.
struct BandChoice {
  int band = 5;
  DnsSoftware software = DnsSoftware::kBind952To988;
  OsId os = OsId::kEmbeddedCpe;
  bool fp_visible = false;
  double open_p = 0.066;
  std::optional<std::uint16_t> fixed_port;  // zero band: the pinned port
};

BandChoice choose_band(const WorldSpec& spec, cd::Rng& rng) {
  const BandMix& mix = spec.band_mix;
  const double weights[6] = {mix.zero,    mix.low,   mix.windows,
                             mix.freebsd, mix.linux, mix.full};
  double total = 0;
  for (const double wgt : weights) total += wgt;
  double roll = rng.real() * total;
  int band = 5;
  for (int i = 0; i < 6; ++i) {
    if (roll < weights[i]) {
      band = i;
      break;
    }
    roll -= weights[i];
  }

  BandChoice c;
  c.band = band;
  switch (band) {
    case 0: {  // zero source-port randomization
      const double fp_roll = rng.real();
      if (fp_roll < spec.fp_visible_zero_baidu) {
        c.os = OsId::kBaiduLike;
        c.fp_visible = true;
      } else if (fp_roll <
                 spec.fp_visible_zero_baidu + spec.fp_visible_zero_windows) {
        c.os = OsId::kWin2003;
        c.fp_visible = true;
      } else {
        c.os = OsId::kEmbeddedCpe;
      }
      // Fixed-port mix per §5.2.1: 34% port 53 (BIND 8 defaults and
      // `query-source port 53` configs), 12% port 32768, 3.8% 32769, the
      // rest an arbitrary unprivileged port chosen at startup.
      const double port_roll = rng.real();
      if (port_roll < 0.34) {
        c.software = DnsSoftware::kBind8;
        c.fixed_port = 53;
      } else if (port_roll < 0.46) {
        c.software = DnsSoftware::kFixedMisconfig;
        c.fixed_port = 32768;
      } else if (port_roll < 0.498) {
        c.software = DnsSoftware::kFixedMisconfig;
        c.fixed_port = 32769;
      } else {
        c.software = c.os == OsId::kWin2003 ? DnsSoftware::kWindowsDns2003
                                            : DnsSoftware::kFixedMisconfig;
        c.fixed_port = static_cast<std::uint16_t>(1024 + rng.uniform(64512));
      }
      c.open_p = spec.zero_open_fraction;
      break;
    }
    case 1: {  // ineffective allocation, range 1-200
      c.software = rng.chance(0.65) ? DnsSoftware::kLegacySequential
                                    : DnsSoftware::kLegacySmallPool;
      if (rng.chance(spec.fp_visible_low_windows)) {
        c.os = OsId::kWin2008;
        c.fp_visible = true;
      } else {
        c.os = OsId::kEmbeddedCpe;
      }
      c.open_p = spec.low_open_fraction;
      break;
    }
    case 2: {  // Windows DNS 2008 R2+
      static constexpr OsId kWinModern[] = {OsId::kWin2008R2, OsId::kWin2012,
                                            OsId::kWin2012R2, OsId::kWin2016,
                                            OsId::kWin2019};
      c.os = kWinModern[rng.uniform(5)];
      c.software = DnsSoftware::kWindowsDns2008R2;
      c.fp_visible = rng.chance(spec.fp_visible_windows_band);
      c.open_p = spec.windows_open_fraction;
      break;
    }
    case 3: {  // FreeBSD OS-default pool
      static constexpr OsId kBsd[] = {OsId::kFreeBsd113, OsId::kFreeBsd120,
                                      OsId::kFreeBsd121};
      c.os = kBsd[rng.uniform(3)];
      c.software = DnsSoftware::kBind9913To9160;
      c.fp_visible = rng.chance(spec.fp_visible_freebsd_band);
      c.open_p = 0.10;
      break;
    }
    case 4: {  // Linux OS-default pool
      static constexpr OsId kLinuxModern[] = {
          OsId::kUbuntu1604, OsId::kUbuntu1804, OsId::kUbuntu1904};
      static constexpr OsId kLinuxOld[] = {
          OsId::kUbuntu1004, OsId::kUbuntu1204, OsId::kUbuntu1404};
      // A tail of old kernels keeps the loopback-v6 acceptance path alive.
      c.os = rng.chance(0.10) ? kLinuxOld[rng.uniform(3)]
                              : kLinuxModern[rng.uniform(3)];
      c.software = DnsSoftware::kBind9913To9160;
      c.fp_visible = rng.chance(spec.fp_visible_linux_band);
      c.open_p = 0.027;
      break;
    }
    default: {  // full unprivileged range
      static constexpr DnsSoftware kFull[] = {DnsSoftware::kBind952To988,
                                              DnsSoftware::kUnbound190,
                                              DnsSoftware::kPowerDns420};
      c.software = kFull[rng.uniform(3)];
      const double fp_roll = rng.real();
      if (fp_roll < spec.fp_visible_full_windows) {
        // BIND on Windows Server: full unprivileged range (§5.3.2's noted
        // discrepancy) with a Windows fingerprint.
        c.os = OsId::kWin2016;
        c.fp_visible = true;
        c.software = DnsSoftware::kBind952To988;
      } else if (fp_roll <
                 spec.fp_visible_full_windows + spec.fp_visible_full_linux) {
        static constexpr OsId kLin[] = {OsId::kUbuntu1604, OsId::kUbuntu1804,
                                        OsId::kUbuntu1904};
        c.os = kLin[rng.uniform(3)];
        c.fp_visible = true;
      } else {
        const double os_roll = rng.real();
        if (os_roll < 0.5) {
          c.os = OsId::kEmbeddedCpe;
        } else if (os_roll < 0.8) {
          c.os = OsId::kUbuntu1804;
        } else {
          c.os = OsId::kFreeBsd121;
        }
        c.fp_visible = false;
      }
      c.open_p = 0.066;
      break;
    }
  }
  return c;
}

/// Synthesizes the resolver's 18-months-earlier port behaviour (§5.2.2) into
/// the spec's inline arrays. Draws are always consumed, whether or not any
/// history survives, so the substream stays aligned.
void generate_passive_history(const WorldSpec& spec, const BandChoice& band,
                              cd::Rng& rng, std::uint8_t& n_out,
                              std::array<std::uint16_t, 12>& ports_out) {
  n_out = 0;
  if (band.band == 0) {
    // Today's fixed-port population: already-fixed / regressed /
    // insufficient, per the paper's 51/25/24 split.
    const double roll = rng.real();
    if (roll < spec.passive_already_fixed) {
      ports_out.fill(band.fixed_port.value_or(53));
      n_out = 12;
    } else if (roll < spec.passive_already_fixed + spec.passive_regressed) {
      for (int i = 0; i < 12; ++i) {
        ports_out[static_cast<std::size_t>(i)] =
            static_cast<std::uint16_t>(1024 + rng.uniform(64512));
      }
      n_out = 12;
    } else {
      // Insufficient: a few scattered queries that satisfy neither of the
      // paper's comparability conditions (or nothing at all).
      if (rng.chance(0.5)) {
        for (int i = 0; i < 3; ++i) {
          ports_out[static_cast<std::size_t>(i)] =
              static_cast<std::uint16_t>(1024 + rng.uniform(64512));
        }
        n_out = 3;
      }
    }
  } else {
    // Everyone else: ordinary randomized history when captured at all.
    if (rng.chance(0.76)) {
      for (int i = 0; i < 12; ++i) {
        ports_out[static_cast<std::size_t>(i)] =
            static_cast<std::uint16_t>(1024 + rng.uniform(64512));
      }
      n_out = 12;
    }
  }
}

}  // namespace

TargetStream::TargetStream(const CampaignPlan& plan, std::size_t shard,
                           std::size_t num_shards)
    : plan_(plan),
      shard_(shard),
      num_shards_(std::max<std::size_t>(1, num_shards)) {}

const AsBatch* TargetStream::next() {
  while (pos_ < plan_.size()) {
    const std::size_t id = pos_++;
    if (cd::scanner::shard_of(plan_.asn_of(id), num_shards_) != shard_) {
      continue;
    }
    generate_as(id);
    return &batch_;
  }
  return nullptr;
}

void TargetStream::generate_as(std::size_t id) {
  resolvers_.clear();
  stale_.clear();
  used_.clear();
  infra_seen_ = false;

  batch_.id = id;
  batch_.asn = plan_.asn_of(id);
  batch_.resolvers = &resolvers_;
  batch_.stale = &stale_;
  batch_.captured_live = 0;

  cd::Rng rng = cd::Rng::substream(plan_.resolver_seed, id);
  const int fleet = plan_.n_resolvers[id];
  for (int j = 0; j < fleet; ++j) generate_resolver(id, j, rng);

  for (const ResolverSpec& spec : resolvers_) {
    for (std::size_t a = 0; a < spec.n_addrs; ++a) {
      if (spec.in_capture[a]) ++batch_.captured_live;
    }
  }
  generate_stale(id);
}

void TargetStream::generate_resolver(std::size_t id, int index, cd::Rng& rng) {
  const WorldSpec& spec = plan_.spec;
  const BandChoice band = choose_band(spec, rng);

  // Addressing: spread resolvers across the AS's /24s; dual-stack where the
  // AS has v6 space. Addresses must be unique within the AS (prefix spaces
  // are disjoint across ASes): a collision would silently shadow an
  // existing host in the network's delivery map.
  ResolverSpec r;
  r.index = index;
  const std::size_t np = plan_.v4_count(id);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Prefix& p = plan_.v4_prefix(id, rng.uniform(np));
    const std::uint64_t n24 = p.count_subprefixes(24);
    const std::uint64_t sub = rng.uniform(n24);
    const std::uint64_t host = 10 + rng.uniform(200);
    const IpAddr addr = p.base().offset_by((sub << 8) + host);
    if (used_.count(addr)) continue;
    r.addrs[r.n_addrs++] = addr;
    break;
  }
  if (r.n_addrs == 0) return;  // AS address space exhausted; skip
  if ((plan_.flags[id] & kAsHasV6) && rng.chance(spec.dual_stack_fraction)) {
    const Prefix& p6 = plan_.v6[id];
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::uint64_t sub64 = rng.uniform(4096);
      const U128 base =
          p6.base().bits() + (U128{sub64} << 64) + U128{5 + rng.uniform(90)};
      const IpAddr addr = IpAddr::from_bits(IpFamily::kV6, base);
      if (used_.count(addr)) continue;
      r.addrs[r.n_addrs++] = addr;
      r.has_v6 = true;
      break;
    }
  }
  for (std::size_t a = 0; a < r.n_addrs; ++a) used_.insert(r.addrs[a]);

  r.band = band.band;
  r.os = band.os;
  r.software = band.software;
  r.fp_visible = band.fp_visible;
  r.fixed_port = band.fixed_port;
  r.host_seed = rng.u64();

  // Behaviour.
  r.is_infra = index == 0;  // each AS's resolver 0: the upstream others may
                            // forward to
  if (!r.is_infra) {
    const double fwd_p = r.has_v6 ? spec.forward_fraction_v6 * 1.3
                                  : spec.forward_fraction_v4 * 1.45;
    r.forwards = rng.chance(std::min(0.95, fwd_p));
  }

  const double open_p = r.forwards ? 0.82 : band.open_p;
  r.open = rng.chance(open_p);
  if (!r.open) {
    // ACL scope. The third branch (AS-wide plus a peer prefix,
    // managed-service style) produces the same ACL as AS-wide here.
    const double scope = rng.real();
    if (r.is_infra || scope < spec.acl_as_wide) {
      r.acl_kind = AclKind::kAsWide;
    } else if (scope < spec.acl_as_wide + spec.acl_subnet_only) {
      r.acl_kind = AclKind::kSubnetOnly;
    } else {
      r.acl_kind = AclKind::kAsWide;
    }
    r.acl_private = rng.chance(spec.acl_allows_private);
  }

  if (r.forwards) {
    r.forward_public =
        rng.chance(spec.forward_to_public_dns) || !infra_seen_;
    if (r.forward_public) {
      // Public service of a family we can reach (a v4 entry; v6-capable
      // resolvers also get the fixed v6 service address on materialization).
      r.public_idx = static_cast<std::uint8_t>(
          rng.uniform(2 * kNumPublicDns) & ~1ULL);
    }
    // A few forwarders run forward-first failover and sometimes iterate
    // themselves (the paper's small "both direct and forwarded" class).
    r.forward_failover = rng.chance(0.05);
  }

  if (rng.chance(spec.qmin_fraction)) {
    r.qmin = true;
    r.qmin_mode = rng.chance(spec.qmin_strict_share) ? QminMode::kStrict
                                                     : QminMode::kRelaxed;
  }

  r.alloc_seed = rng.u64();
  r.res_seed = rng.u64();

  if (r.is_infra) infra_seen_ = true;

  // Capture membership, hitlist and passive history per address.
  for (std::size_t a = 0; a < r.n_addrs; ++a) {
    const IpAddr& addr = r.addrs[a];
    const double miss = addr.is_v6()
                            ? 1.0 - (1.0 - spec.capture_miss) *
                                        (1.0 - spec.capture_miss_v6)
                            : spec.capture_miss;
    r.in_capture[a] = !rng.chance(miss);
    if (addr.is_v6() && rng.chance(spec.hitlist_coverage)) {
      r.in_hitlist[a] = true;
    }
    generate_passive_history(spec, band, rng, r.n_old_ports[a],
                             r.old_ports[a]);
  }

  resolvers_.push_back(r);
}

void TargetStream::generate_stale(std::size_t id) {
  const WorldSpec& spec = plan_.spec;
  cd::Rng rng = cd::Rng::substream(plan_.noise_seed, id);

  // Per-AS stale budget: the global stale_per_live ratio applied to this
  // AS's captured live addresses, with the fractional remainder resolved by
  // a Bernoulli draw so the expectation matches exactly.
  const double expected =
      static_cast<double>(batch_.captured_live) * spec.stale_per_live;
  std::size_t n_stale = static_cast<std::size_t>(expected);
  if (rng.chance(expected - static_cast<double>(n_stale))) ++n_stale;

  const bool has_v6 = (plan_.flags[id] & kAsHasV6) != 0;
  const std::size_t np = plan_.v4_count(id);
  std::size_t produced = 0;
  for (std::size_t attempt = 0; produced < n_stale && attempt < n_stale * 4;
       ++attempt) {
    // A once-active resolver address inside this AS, now dark.
    if (rng.chance(1.0 - spec.stale_v6_share)) {
      const Prefix& p = plan_.v4_prefix(id, rng.uniform(np));
      const IpAddr addr = p.base().offset_by(
          (rng.uniform(p.count_subprefixes(24)) << 8) + 10 +
          rng.uniform(200));
      if (used_.count(addr)) continue;  // accidentally live (or dup); skip
      used_.insert(addr);
      stale_.push_back(addr);
      ++produced;
    } else {
      if (!has_v6) continue;  // AS without v6; redraw
      const Prefix& p6 = plan_.v6[id];
      const IpAddr addr = IpAddr::from_bits(
          IpFamily::kV6, p6.base().bits() + (U128{rng.uniform(4096)} << 64) +
                             U128{5 + rng.uniform(90)});
      if (used_.count(addr)) continue;
      used_.insert(addr);
      stale_.push_back(addr);
      ++produced;
    }
  }
}

StreamCounts count_stream(const CampaignPlan& plan, std::size_t shard,
                          std::size_t num_shards) {
  StreamCounts counts;
  TargetStream stream(plan, shard, num_shards);
  while (const AsBatch* batch = stream.next()) {
    ++counts.ases;
    counts.resolvers += batch->resolvers->size();
    for (const ResolverSpec& r : *batch->resolvers) {
      counts.live_addrs += r.n_addrs;
    }
    counts.captured_live += batch->captured_live;
    counts.stale += batch->stale->size();
  }
  counts.targets = counts.captured_live + counts.stale;
  return counts;
}

}  // namespace cd::ditl
