// Authoritative DNS server bound to a simulated host.
//
// Serves one or more zones over UDP and TCP port 53, logs every query with
// transport metadata (including the client's TCP SYN for fingerprinting),
// and can force TC=1 on UDP responses for names under a configured suffix —
// the mechanism the paper uses to elicit DNS-over-TCP follow-ups.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "dns/zone.h"
#include "sim/host.h"

namespace cd::resolver {

struct AuthLogEntry {
  cd::sim::SimTime time = 0;
  cd::net::IpAddr client;
  std::uint16_t client_port = 0;
  cd::net::IpAddr server;  // which of our addresses was queried
  cd::dns::DnsName qname;
  cd::dns::RrType qtype = cd::dns::RrType::kA;
  /// The query's transaction id — what an attacker positioned to observe
  /// authoritative traffic (attack/poison.h scouting) learns per query.
  std::uint16_t id = 0;
  bool tcp = false;
  /// For TCP queries, the client's SYN packet (p0f raw material).
  std::optional<cd::net::Packet> syn;
};

struct AuthConfig {
  /// UDP queries for names under any of these suffixes are answered with
  /// TC=1 and no data, forcing the client to retry over TCP.
  std::vector<cd::dns::DnsName> truncate_suffixes;
  /// Keep at most this many log entries in memory (0 = unbounded).
  std::size_t max_log = 0;
  /// RFC 7766 §6.1 server-side idle window for persistent TCP sessions
  /// (0 = the network-wide Network::transport().idle_timeout). Ignored
  /// entirely while the persistent-transport knob is off.
  cd::sim::SimTime tcp_idle_timeout = 0;
};

class AuthServer {
 public:
  using Observer = std::function<void(const AuthLogEntry&)>;

  /// Binds UDP and TCP port 53 on `host`. The server must outlive the host's
  /// bound handlers (keep both alive for the whole simulation).
  AuthServer(cd::sim::Host& host, AuthConfig config = {});

  AuthServer(const AuthServer&) = delete;
  AuthServer& operator=(const AuthServer&) = delete;

  /// Adds a zone this server is authoritative for.
  void add_zone(std::shared_ptr<cd::dns::Zone> zone);

  /// Registers an observer invoked synchronously for each logged query.
  void add_observer(Observer observer);

  [[nodiscard]] const std::deque<AuthLogEntry>& log() const { return log_; }
  [[nodiscard]] std::uint64_t queries_served() const { return served_; }

  /// Computes the response for `query` (exposed for direct testing).
  [[nodiscard]] cd::dns::DnsMessage answer(const cd::dns::DnsMessage& query,
                                           bool tcp) const;

 private:
  void on_udp(const cd::net::Packet& packet);
  [[nodiscard]] cd::GatherBuf on_tcp(
      const cd::sim::TcpConnInfo& info, std::span<const std::uint8_t> request);
  void record(const cd::dns::DnsMessage& query, const cd::net::IpAddr& client,
              std::uint16_t client_port, const cd::net::IpAddr& server,
              bool tcp, const std::optional<cd::net::Packet>& syn);
  [[nodiscard]] const cd::dns::Zone* zone_for(
      const cd::dns::DnsName& qname) const;

  cd::sim::Host& host_;
  AuthConfig config_;
  std::vector<std::shared_ptr<cd::dns::Zone>> zones_;
  std::vector<Observer> observers_;
  std::deque<AuthLogEntry> log_;
  std::uint64_t served_ = 0;
};

/// Frames a DNS message for TCP transport (RFC 7766): the 2-byte length
/// prefix lives in the GatherBuf's inline header, chained in front of the
/// pooled message encoding — a zero-copy gather view (prefix span, body
/// span) that is never coalesced; the sim's TCP layer segments and
/// serializes it straight from the span pair. This is the one framing
/// implementation (the legacy copying `tcp_frame` was folded in).
[[nodiscard]] cd::GatherBuf tcp_frame_pooled(const cd::dns::DnsMessage& message);

/// Zero-copy view of the message behind the TCP length prefix; the returned
/// span borrows `framed`. Throws cd::ParseError on bad framing.
[[nodiscard]] std::span<const std::uint8_t> tcp_unframe_view(
    std::span<const std::uint8_t> framed);

/// Owning variant of tcp_unframe_view (copies the body out).
[[nodiscard]] std::vector<std::uint8_t> tcp_unframe(
    std::span<const std::uint8_t> framed);

}  // namespace cd::resolver
