// Source-port allocation strategies for outgoing DNS queries.
//
// These model the behaviours the paper catalogues in Table 5 and §5.2:
// modern software draws uniformly from a large pool; old or misconfigured
// software uses a single fixed port, a tiny pool, or a sequential counter —
// the vulnerable patterns the measurement detects.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cd::resolver {

/// Strategy interface: yields the UDP source port for each outgoing query.
class PortAllocator {
 public:
  virtual ~PortAllocator() = default;
  [[nodiscard]] virtual std::uint16_t next() = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Always the same port (BIND 8 / `query-source port N` misconfiguration /
/// Windows DNS pre-2008 R2, which picks one unprivileged port at startup).
class FixedPortAllocator final : public PortAllocator {
 public:
  explicit FixedPortAllocator(std::uint16_t port);
  [[nodiscard]] std::uint16_t next() override { return port_; }
  [[nodiscard]] std::string describe() const override;

 private:
  std::uint16_t port_;
};

/// Uniform over an explicit small set of ports (BIND 9.5.0: 8 ports chosen
/// at startup).
class SmallPoolAllocator final : public PortAllocator {
 public:
  SmallPoolAllocator(std::vector<std::uint16_t> ports, cd::Rng rng);
  [[nodiscard]] std::uint16_t next() override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const std::vector<std::uint16_t>& pool() const {
    return ports_;
  }

 private:
  std::vector<std::uint16_t> ports_;
  cd::Rng rng_;
};

/// Strictly increasing counter over [lo, hi], wrapping back to lo
/// (the §5.2.3 "ineffective allocation" pattern).
class SequentialAllocator final : public PortAllocator {
 public:
  SequentialAllocator(std::uint16_t lo, std::uint16_t hi, std::uint16_t start);
  [[nodiscard]] std::uint16_t next() override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::uint16_t lo_;
  std::uint16_t hi_;
  std::uint16_t current_;
};

/// Uniform over a contiguous inclusive range (OS default pools and the
/// 1024-65535 "full port range").
class UniformRangeAllocator final : public PortAllocator {
 public:
  UniformRangeAllocator(std::uint16_t lo, std::uint16_t hi, cd::Rng rng);
  [[nodiscard]] std::uint16_t next() override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::uint16_t lo() const { return lo_; }
  [[nodiscard]] std::uint16_t hi() const { return hi_; }

 private:
  std::uint16_t lo_;
  std::uint16_t hi_;
  cd::Rng rng_;
};

/// Windows DNS 2008 R2+: a 2,500-port contiguous pool inside the IANA range
/// [49152, 65535], positioned at startup; pools starting in the top 2,499
/// ports wrap around to the bottom of the IANA range (§5.3.2).
class WindowsPoolAllocator final : public PortAllocator {
 public:
  static constexpr std::uint16_t kIanaMin = 49152;
  static constexpr std::uint16_t kIanaMax = 65535;
  static constexpr std::uint32_t kPoolSize = 2500;

  explicit WindowsPoolAllocator(cd::Rng rng);
  /// Test hook: force the pool start.
  WindowsPoolAllocator(std::uint16_t start, cd::Rng rng);

  [[nodiscard]] std::uint16_t next() override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::uint16_t pool_start() const { return start_; }
  /// True if the pool wraps past kIanaMax into the bottom of the range.
  [[nodiscard]] bool wraps() const;

 private:
  std::uint16_t start_;
  cd::Rng rng_;
};

}  // namespace cd::resolver
