#include "resolver/auth.h"

#include <array>

#include "util/bytes.h"
#include "util/error.h"

namespace cd::resolver {

using cd::dns::DnsMessage;
using cd::dns::DnsName;
using cd::dns::LookupKind;
using cd::dns::Rcode;
using cd::net::Packet;

cd::GatherBuf tcp_frame_pooled(const DnsMessage& message) {
  // The message encodes into a pooled buffer of its own (compression
  // offsets stay message-relative), and the 2-byte prefix rides in the
  // GatherBuf's inline header — no coalescing copy, ever.
  cd::GatherBuf out(cd::dns::encode_pooled(message));
  CD_ENSURE(out.body.size() <= 0xFFFF, "tcp_frame: message too large");
  const std::array<std::uint8_t, 2> prefix{
      static_cast<std::uint8_t>(out.body.size() >> 8),
      static_cast<std::uint8_t>(out.body.size())};
  out.set_header(prefix);
  return out;
}

std::span<const std::uint8_t> tcp_unframe_view(
    std::span<const std::uint8_t> framed) {
  if (framed.size() < 2) throw cd::ParseError("tcp_unframe: short buffer");
  const std::size_t len = (static_cast<std::size_t>(framed[0]) << 8) | framed[1];
  if (framed.size() < 2 + len) throw cd::ParseError("tcp_unframe: truncated");
  return framed.subspan(2, len);
}

std::vector<std::uint8_t> tcp_unframe(std::span<const std::uint8_t> framed) {
  const auto body = tcp_unframe_view(framed);
  return {body.begin(), body.end()};
}

AuthServer::AuthServer(cd::sim::Host& host, AuthConfig config)
    : host_(host), config_(std::move(config)) {
  host_.bind_udp(53, [this](const Packet& pkt) { on_udp(pkt); });
  // One handler serves both lifecycles: with the persistent knob off each
  // connection carries one exchange (the reply retires it); with it on the
  // same handler answers every frame of a pipelined session, and the idle
  // window below bounds how long a quiet session is kept open.
  host_.tcp_listen_session(
      53,
      [this](const cd::sim::TcpConnInfo& info,
             std::span<const std::uint8_t> request,
             cd::sim::Host::TcpSessionReply reply) {
        reply(on_tcp(info, request));
      },
      config_.tcp_idle_timeout);
}

void AuthServer::add_zone(std::shared_ptr<cd::dns::Zone> zone) {
  zones_.push_back(std::move(zone));
}

void AuthServer::add_observer(Observer observer) {
  observers_.push_back(std::move(observer));
}

const cd::dns::Zone* AuthServer::zone_for(const DnsName& qname) const {
  const cd::dns::Zone* best = nullptr;
  for (const auto& zone : zones_) {
    if (qname.is_subdomain_of(zone->origin())) {
      if (!best || zone->origin().label_count() > best->origin().label_count()) {
        best = zone.get();
      }
    }
  }
  return best;
}

DnsMessage AuthServer::answer(const DnsMessage& query, bool tcp) const {
  if (query.questions.empty()) {
    return cd::dns::make_response(query, Rcode::kFormErr);
  }
  const DnsName& qname = query.qname();
  const cd::dns::RrType qtype = query.questions.front().qtype;

  if (!tcp) {
    for (const DnsName& suffix : config_.truncate_suffixes) {
      if (qname.is_subdomain_of(suffix)) {
        DnsMessage resp = cd::dns::make_response(query, Rcode::kNoError);
        resp.header.aa = true;
        resp.header.tc = true;
        return resp;
      }
    }
  }

  const cd::dns::Zone* zone = zone_for(qname);
  if (!zone) {
    return cd::dns::make_response(query, Rcode::kRefused);
  }

  const cd::dns::LookupResult result = zone->lookup(qname, qtype);
  DnsMessage resp = cd::dns::make_response(query, Rcode::kNoError);
  switch (result.kind) {
    case LookupKind::kAnswer:
      resp.header.aa = true;
      resp.answers = result.records;
      break;
    case LookupKind::kDelegation:
      resp.authorities = result.records;
      resp.additionals = result.glue;
      break;
    case LookupKind::kNoData:
      resp.header.aa = true;
      if (result.soa) resp.authorities.push_back(*result.soa);
      break;
    case LookupKind::kNxDomain:
      resp.header.aa = true;
      resp.header.rcode = Rcode::kNxDomain;
      if (result.soa) resp.authorities.push_back(*result.soa);
      break;
    case LookupKind::kNotInZone:
      resp.header.rcode = Rcode::kRefused;
      break;
  }
  return resp;
}

void AuthServer::record(const DnsMessage& query, const cd::net::IpAddr& client,
                        std::uint16_t client_port,
                        const cd::net::IpAddr& server, bool tcp,
                        const std::optional<Packet>& syn) {
  AuthLogEntry entry;
  entry.time = host_.network().loop().now();
  entry.client = client;
  entry.client_port = client_port;
  entry.server = server;
  entry.qname = query.qname();
  entry.qtype = query.questions.empty() ? cd::dns::RrType::kA
                                        : query.questions.front().qtype;
  entry.id = query.header.id;
  entry.tcp = tcp;
  entry.syn = syn;

  if (config_.max_log > 0 && log_.size() >= config_.max_log) log_.pop_front();
  log_.push_back(entry);
  ++served_;
  for (const Observer& obs : observers_) obs(log_.back());
}

void AuthServer::on_udp(const Packet& packet) {
  DnsMessage query;
  try {
    query = DnsMessage::decode(packet.payload);
  } catch (const cd::ParseError&) {
    return;  // garbage in, nothing out
  }
  if (query.header.qr) return;  // not a query

  record(query, packet.src, packet.src_port, packet.dst, /*tcp=*/false,
         std::nullopt);

  const DnsMessage resp = answer(query, /*tcp=*/false);
  host_.send_udp(packet.dst, 53, packet.src, packet.src_port,
                 cd::dns::encode_pooled(resp));
}

cd::GatherBuf AuthServer::on_tcp(
    const cd::sim::TcpConnInfo& info, std::span<const std::uint8_t> request) {
  DnsMessage query;
  try {
    query = DnsMessage::decode(tcp_unframe_view(request));
  } catch (const cd::ParseError&) {
    return {};
  }
  if (query.header.qr) return {};

  record(query, info.peer, info.peer_port, info.local, /*tcp=*/true, info.syn);

  const DnsMessage resp = answer(query, /*tcp=*/true);
  return tcp_frame_pooled(resp);
}

}  // namespace cd::resolver
