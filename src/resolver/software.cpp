#include "resolver/software.h"

#include "util/error.h"

namespace cd::resolver {
namespace {

std::vector<SoftwareProfile> build_profiles() {
  return {
      {DnsSoftware::kBind950, "BIND 9.5.0", QminMode::kOff},
      {DnsSoftware::kBind952To988, "BIND 9.5.2-9.8.8", QminMode::kOff},
      {DnsSoftware::kBind9913To9160, "BIND 9.9.13-9.16.0", QminMode::kOff},
      {DnsSoftware::kKnot321, "Knot Resolver 3.2.1", QminMode::kStrict},
      {DnsSoftware::kUnbound190, "Unbound 1.9.0", QminMode::kOff},
      {DnsSoftware::kPowerDns420, "PowerDNS Recursor 4.2.0", QminMode::kOff},
      {DnsSoftware::kWindowsDns2003, "Windows DNS 2003/2003 R2/2008",
       QminMode::kOff},
      {DnsSoftware::kWindowsDns2008R2, "Windows DNS 2008 R2-2019",
       QminMode::kOff},
      {DnsSoftware::kBind8, "BIND 8 (port 53)", QminMode::kOff},
      {DnsSoftware::kFixedMisconfig, "fixed-port misconfiguration",
       QminMode::kOff},
      {DnsSoftware::kLegacySequential, "legacy sequential allocator",
       QminMode::kOff},
      {DnsSoftware::kLegacySmallPool, "legacy small-pool allocator",
       QminMode::kOff},
  };
}

}  // namespace

const std::vector<SoftwareProfile>& all_software_profiles() {
  static const std::vector<SoftwareProfile> profiles = build_profiles();
  return profiles;
}

const SoftwareProfile& software_profile(DnsSoftware id) {
  for (const SoftwareProfile& p : all_software_profiles()) {
    if (p.id == id) return p;
  }
  throw cd::InvariantError("unknown DnsSoftware");
}

std::unique_ptr<PortAllocator> make_default_allocator(
    DnsSoftware id, const cd::sim::OsProfile& os, cd::Rng rng) {
  switch (id) {
    case DnsSoftware::kBind950: {
      // 8 unprivileged ports chosen at startup.
      std::vector<std::uint16_t> pool;
      for (int i = 0; i < 8; ++i) {
        pool.push_back(static_cast<std::uint16_t>(1024 + rng.uniform(64512)));
      }
      return std::make_unique<SmallPoolAllocator>(std::move(pool),
                                                  rng.split("draw"));
    }
    case DnsSoftware::kBind952To988:
    case DnsSoftware::kUnbound190:
    case DnsSoftware::kPowerDns420:
      return std::make_unique<UniformRangeAllocator>(1024, 65535, rng);
    case DnsSoftware::kBind9913To9160:
    case DnsSoftware::kKnot321:
      return std::make_unique<UniformRangeAllocator>(os.ephemeral_lo,
                                                     os.ephemeral_hi, rng);
    case DnsSoftware::kWindowsDns2003:
      return std::make_unique<FixedPortAllocator>(
          static_cast<std::uint16_t>(1024 + rng.uniform(64512)));
    case DnsSoftware::kWindowsDns2008R2:
      return std::make_unique<WindowsPoolAllocator>(rng);
    case DnsSoftware::kBind8:
      return std::make_unique<FixedPortAllocator>(53);
    case DnsSoftware::kFixedMisconfig: {
      // Deliberately pinned: historically port 53 or a low 32768+n value.
      static constexpr std::uint16_t kCommon[] = {53, 32768, 32769};
      if (rng.chance(0.5)) {
        return std::make_unique<FixedPortAllocator>(
            kCommon[rng.uniform(3)]);
      }
      return std::make_unique<FixedPortAllocator>(
          static_cast<std::uint16_t>(1024 + rng.uniform(64512)));
    }
    case DnsSoftware::kLegacySequential: {
      // Walk a span of up to ~200 ports in order, wrapping at the top.
      const std::uint16_t lo =
          static_cast<std::uint16_t>(1024 + rng.uniform(60000));
      const std::uint16_t hi =
          static_cast<std::uint16_t>(lo + 20 + rng.uniform(180));
      const std::uint16_t start =
          static_cast<std::uint16_t>(lo + rng.uniform(hi - lo + 1ULL));
      return std::make_unique<SequentialAllocator>(lo, hi, start);
    }
    case DnsSoftware::kLegacySmallPool: {
      // A handful of ports inside a narrow span.
      const std::uint16_t base =
          static_cast<std::uint16_t>(1024 + rng.uniform(60000));
      const std::size_t n = 3 + rng.uniform(5);
      std::vector<std::uint16_t> pool;
      for (std::size_t i = 0; i < n; ++i) {
        pool.push_back(static_cast<std::uint16_t>(base + rng.uniform(190)));
      }
      return std::make_unique<SmallPoolAllocator>(std::move(pool),
                                                  rng.split("draw"));
    }
  }
  throw cd::InvariantError("make_default_allocator: unknown DnsSoftware");
}

bool weak_txid(DnsSoftware id) {
  switch (id) {
    case DnsSoftware::kBind8:
    case DnsSoftware::kWindowsDns2003:
    case DnsSoftware::kLegacySequential:
    case DnsSoftware::kLegacySmallPool:
      return true;
    default:
      return false;
  }
}

std::string default_pool_description(DnsSoftware id) {
  switch (id) {
    case DnsSoftware::kBind950:
      return "8 ports, selected at startup";
    case DnsSoftware::kBind952To988:
    case DnsSoftware::kUnbound190:
    case DnsSoftware::kPowerDns420:
      return "1024-65535";
    case DnsSoftware::kBind9913To9160:
    case DnsSoftware::kKnot321:
      return "OS defaults";
    case DnsSoftware::kWindowsDns2003:
      return "1 port, > 1023, selected at startup";
    case DnsSoftware::kWindowsDns2008R2:
      return "2,500 contiguous ports (with wrapping), selected at startup";
    case DnsSoftware::kBind8:
      return "port 53 only";
    case DnsSoftware::kFixedMisconfig:
      return "1 port (query-source misconfiguration)";
    case DnsSoftware::kLegacySequential:
      return "sequential walk over <=200 ports";
    case DnsSoftware::kLegacySmallPool:
      return "3-7 ports within a <=200-port span";
  }
  return "?";
}

}  // namespace cd::resolver
