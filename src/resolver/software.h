// DNS software profiles: default port-pool behaviour (paper Table 5) and
// QNAME-minimization mode, per implementation and version group.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "resolver/port_alloc.h"
#include "sim/os_model.h"
#include "util/rng.h"

namespace cd::resolver {

enum class DnsSoftware : std::uint8_t {
  kBind950,           // 8 ports, selected at startup
  kBind952To988,      // 1024-65535
  kBind9913To9160,    // OS defaults
  kKnot321,           // OS defaults, QNAME minimization on by default
  kUnbound190,        // 1024-65535
  kPowerDns420,       // 1024-65535
  kWindowsDns2003,    // 1 port > 1023, selected at startup (also 2003 R2, 2008)
  kWindowsDns2008R2,  // 2,500 contiguous ports w/ wrapping (2008 R2 - 2019)
  kBind8,             // fixed port 53 (pre-8.1 default; also the classic
                      // `query-source port 53` misconfiguration)
  kFixedMisconfig,    // modern software pinned to one unprivileged port
  kLegacySequential,  // embedded stacks walking a small range in order
  kLegacySmallPool,   // embedded stacks drawing from a tiny random pool
};
constexpr int kDnsSoftwareCount = 12;

/// How the implementation minimizes query names (RFC 7816).
enum class QminMode : std::uint8_t {
  kOff,
  kStrict,   // NXDOMAIN while minimizing halts resolution (RFC 8020)
  kRelaxed,  // NXDOMAIN triggers a retry with the full query name
};

struct SoftwareProfile {
  DnsSoftware id = DnsSoftware::kBind9913To9160;
  std::string name;
  QminMode qmin = QminMode::kOff;
};

[[nodiscard]] const SoftwareProfile& software_profile(DnsSoftware id);
[[nodiscard]] const std::vector<SoftwareProfile>& all_software_profiles();

/// Builds the implementation's default source-port allocator as installed on
/// `os`. `rng` seeds startup-time randomness (fixed-port choice, pool
/// placement) and per-query draws.
[[nodiscard]] std::unique_ptr<PortAllocator> make_default_allocator(
    DnsSoftware id, const cd::sim::OsProfile& os, cd::Rng rng);

/// Human-readable description of the default pool (Table 5 rows).
[[nodiscard]] std::string default_pool_description(DnsSoftware id);

/// Source of DNS transaction ids for a recursive resolver's upstream
/// queries. The default (no source installed) is a full-entropy draw from
/// the resolver's RNG; the attack plane swaps in weak sources for the
/// profiles whose era shipped predictable TXIDs, so off-path injection races
/// (attack/poison.h) face the entropy the paper's classification implies.
class TxidSource {
 public:
  virtual ~TxidSource() = default;
  virtual std::uint16_t next() = 0;
};

/// Strictly increasing transaction ids wrapping at 2^16 — the classic
/// pre-randomization behaviour (BIND 8 era, early Windows DNS).
class SequentialTxidSource final : public TxidSource {
 public:
  explicit SequentialTxidSource(std::uint16_t start) : next_(start) {}
  std::uint16_t next() override { return next_++; }

 private:
  std::uint16_t next_ = 0;
};

/// Whether the profile's era shipped predictable transaction ids (the same
/// legacy group the paper's port classification flags). Such resolvers get a
/// SequentialTxidSource when the poisoning plane is enabled, so only the
/// ephemeral-port pool separates them from a successful injection.
[[nodiscard]] bool weak_txid(DnsSoftware id);

}  // namespace cd::resolver
