#include "resolver/recursive.h"

#include <algorithm>

#include "net/special.h"
#include "resolver/auth.h"  // tcp_frame_pooled / tcp_unframe_view
#include "util/bytes.h"
#include "util/error.h"

namespace cd::resolver {

using cd::dns::CacheHitKind;
using cd::dns::DnsMessage;
using cd::dns::DnsName;
using cd::dns::DnsRr;
using cd::dns::Rcode;
using cd::dns::RrType;
using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::Packet;

namespace {

std::uint64_t pending_key(std::uint16_t port, std::uint16_t txid) {
  return (static_cast<std::uint64_t>(port) << 16) | txid;
}

}  // namespace

RecursiveResolver::RecursiveResolver(cd::sim::Host& host,
                                     ResolverConfig config, RootHints hints,
                                     std::unique_ptr<PortAllocator> allocator,
                                     cd::Rng rng)
    : host_(host),
      config_(std::move(config)),
      hints_(std::move(hints)),
      allocator_(std::move(allocator)),
      rng_(rng),
      cache_(config_.cache) {
  CD_ENSURE(allocator_ != nullptr, "RecursiveResolver: null allocator");
  bound_ports_[53] = 1;  // service port is always bound
  host_.bind_udp(53, [this](const Packet& pkt) { dispatch_udp(pkt); });
  // RFC 7766: the resolver answers the same client queries over TCP-53.
  host_.tcp_listen_session(
      53, [this](const cd::sim::TcpConnInfo& info,
                 std::span<const std::uint8_t> framed,
                 cd::sim::Host::TcpSessionReply reply) {
        handle_tcp_client(info, framed, std::move(reply));
      });
}

void RecursiveResolver::handle_tcp_client(
    const cd::sim::TcpConnInfo& info, std::span<const std::uint8_t> framed,
    cd::sim::Host::TcpSessionReply reply) {
  ++stats_.client_queries;
  ++stats_.tcp_client_queries;
  DnsMessage query;
  try {
    query = DnsMessage::decode(tcp_unframe_view(framed));
  } catch (const cd::ParseError&) {
    reply({});  // garbage in, nothing out (the reply still settles the slot)
    return;
  }
  if (query.header.qr || query.questions.empty()) {
    reply({});
    return;
  }
  if (!acl_allows(info.peer)) {
    ++stats_.refused;
    if (config_.respond_refused) {
      reply(tcp_frame_pooled(cd::dns::make_response(query, Rcode::kRefused)));
    } else {
      reply({});  // the silent drop, TCP flavor: settle without a response
    }
    return;
  }
  const DnsMessage query_copy = query;
  resolve(query.qname(), query.questions.front().qtype,
          [this, query_copy, reply](Rcode rcode,
                                    const std::vector<DnsRr>& records) {
            DnsMessage resp = cd::dns::make_response(query_copy, rcode);
            resp.header.ra = true;
            resp.answers = records;
            reply(tcp_frame_pooled(resp));
          });
}

bool RecursiveResolver::acl_allows(const IpAddr& client) const {
  if (config_.open) return true;
  if (host_.has_address(client)) return true;       // self-sourced
  if (cd::net::is_loopback(client)) return true;    // local
  for (const auto& prefix : config_.acl) {
    if (prefix.contains(client)) return true;
  }
  return false;
}

void RecursiveResolver::bind_port(std::uint16_t port) {
  if (++bound_ports_[port] == 1) {
    host_.bind_udp(port, [this](const Packet& pkt) { dispatch_udp(pkt); });
  }
}

void RecursiveResolver::unbind_port(std::uint16_t port) {
  const auto it = bound_ports_.find(port);
  if (it == bound_ports_.end()) return;
  if (--it->second <= 0) {
    host_.unbind_udp(port);
    bound_ports_.erase(it);
  }
}

void RecursiveResolver::dispatch_udp(const Packet& packet) {
  DnsMessage msg;
  try {
    msg = DnsMessage::decode(packet.payload);
  } catch (const cd::ParseError&) {
    return;
  }
  if (msg.header.qr) {
    handle_upstream_response(packet, msg);
  } else if (packet.dst_port == 53) {
    handle_client_query(packet, msg);
  }
}

void RecursiveResolver::handle_client_query(const Packet& packet,
                                            const DnsMessage& query) {
  ++stats_.client_queries;
  if (query.questions.empty()) return;

  if (!acl_allows(packet.src)) {
    ++stats_.refused;
    if (config_.respond_refused) {
      DnsMessage resp = cd::dns::make_response(query, Rcode::kRefused);
      host_.send_udp(packet.dst, 53, packet.src, packet.src_port,
                     cd::dns::encode_pooled(resp));
    }
    return;
  }

  const IpAddr client = packet.src;
  const std::uint16_t client_port = packet.src_port;
  const IpAddr server_addr = packet.dst;
  const DnsMessage query_copy = query;

  resolve(query.qname(), query.questions.front().qtype,
          [this, client, client_port, server_addr, query_copy](
              Rcode rcode, const std::vector<DnsRr>& records) {
            DnsMessage resp = cd::dns::make_response(query_copy, rcode);
            resp.header.ra = true;
            resp.answers = records;
            host_.send_udp(server_addr, 53, client, client_port,
                           cd::dns::encode_pooled(resp));
          });
}

void RecursiveResolver::resolve(const DnsName& qname, RrType qtype,
                                ResolveCallback done) {
  resolve_internal(qname, qtype, std::move(done), 0);
}

void RecursiveResolver::resolve_internal(const DnsName& qname, RrType qtype,
                                         ResolveCallback done,
                                         int cname_depth) {
  const cd::sim::SimTime now = host_.network().loop().now();

  // Cache first.
  const auto hit = cache_.lookup(qname, qtype, now);
  switch (hit.kind) {
    case CacheHitKind::kPositive:
      ++stats_.cache_hits;
      ++stats_.answered;
      done(Rcode::kNoError, hit.records);
      return;
    case CacheHitKind::kNegativeName:
      ++stats_.cache_hits;
      ++stats_.nxdomain;
      done(Rcode::kNxDomain, {});
      return;
    case CacheHitKind::kNegativeType:
      ++stats_.cache_hits;
      ++stats_.answered;
      done(Rcode::kNoError, {});
      return;
    case CacheHitKind::kMiss:
      break;
  }

  auto task = std::make_shared<Task>();
  task->qname = qname;
  task->qtype = qtype;
  task->done = std::move(done);
  task->cname_depth = cname_depth;
  task->retries_left = config_.max_retries;

  if (!config_.forwarders.empty() && rng_.chance(config_.forward_ratio)) {
    task->forward_mode = true;
    task->servers = config_.forwarders;
    task->current_qname = qname;
    task->current_qtype = qtype;
    send_current_query(task);
    return;
  }

  task->qmin_active = config_.qmin != QminMode::kOff;
  seed_servers_from_cache(task);
  advance_qmin(task);
  send_current_query(task);
}

void RecursiveResolver::seed_servers_from_cache(const TaskPtr& task) {
  const cd::sim::SimTime now = host_.network().loop().now();
  // Deepest ancestor with a cached NS set whose addresses we also know.
  for (std::size_t n = task->qname.label_count(); n > 0; --n) {
    const DnsName zone = task->qname.suffix(n);
    const auto ns_hit = cache_.lookup(zone, RrType::kNs, now);
    if (ns_hit.kind != CacheHitKind::kPositive) continue;
    std::vector<IpAddr> servers;
    for (const DnsRr& rr : ns_hit.records) {
      const auto* rd = std::get_if<cd::dns::NsRdata>(&rr.rdata);
      if (!rd) continue;
      for (RrType t : {RrType::kA, RrType::kAaaa}) {
        const auto addr_hit = cache_.lookup(rd->nsdname, t, now);
        if (addr_hit.kind != CacheHitKind::kPositive) continue;
        for (const DnsRr& arr : addr_hit.records) {
          if (const auto* a = std::get_if<cd::dns::ARdata>(&arr.rdata)) {
            servers.push_back(a->addr);
          } else if (const auto* aaaa =
                         std::get_if<cd::dns::AaaaRdata>(&arr.rdata)) {
            servers.push_back(aaaa->addr);
          }
        }
      }
    }
    if (!servers.empty()) {
      task->servers = std::move(servers);
      task->zone_depth = n;
      return;
    }
  }
  task->servers = hints_.servers;
  task->zone_depth = 0;
}

void RecursiveResolver::advance_qmin(const TaskPtr& task) {
  if (!task->qmin_active) {
    task->current_qname = task->qname;
    task->current_qtype = task->qtype;
    return;
  }
  // Ask for one more label than the deepest zone we know servers for.
  const std::size_t next_labels =
      std::min(task->zone_depth + 1, task->qname.label_count());
  task->current_qname = task->qname.suffix(next_labels);
  if (task->current_qname == task->qname) {
    task->current_qtype = task->qtype;
    task->qmin_active = false;  // final step behaves like a normal query
  } else {
    task->current_qtype = RrType::kNs;
  }
}

std::optional<IpAddr> RecursiveResolver::pick_server(TaskPtr task) {
  // Next server (starting at server_idx) whose family we can speak.
  for (std::size_t i = task->server_idx; i < task->servers.size(); ++i) {
    const IpAddr& addr = task->servers[i];
    if (host_.address(addr.family())) {
      task->server_idx = i;
      return addr;
    }
  }
  return std::nullopt;
}

void RecursiveResolver::send_current_query(const TaskPtr& task) {
  if (task->finished) return;
  if (++task->steps > config_.max_steps) {
    finish(task, Rcode::kServFail, {});
    return;
  }

  const auto server = pick_server(task);
  if (!server) {
    finish(task, Rcode::kServFail, {});
    return;
  }
  const auto src = host_.address(server->family());
  CD_ENSURE(src.has_value(), "send_current_query: no source address");

  // Pick a transaction id / source port pair that is not already in flight.
  std::uint16_t txid = 0;
  std::uint16_t sport = 0;
  std::uint64_t key = 0;
  for (int attempt = 0; attempt < 32; ++attempt) {
    txid = txid_source_ ? txid_source_->next()
                        : static_cast<std::uint16_t>(rng_.u64());
    sport = allocator_->next();
    key = pending_key(sport, txid);
    if (!pending_.count(key)) break;
  }
  if (pending_.count(key)) {
    finish(task, Rcode::kServFail, {});
    return;
  }

  DnsMessage query = cd::dns::make_query(txid, task->current_qname,
                                         task->current_qtype,
                                         /*rd=*/task->forward_mode);

  bind_port(sport);
  PendingQuery pq;
  pq.task = task;
  pq.server = *server;
  pq.port = sport;
  pq.txid = txid;
  pq.qname = task->current_qname;
  pq.qtype = task->current_qtype;
  pq.timeout_event = host_.network().loop().schedule_in(
      config_.query_timeout, [this, key] { on_timeout(key); });
  pending_.emplace(key, std::move(pq));

  ++stats_.upstream_queries;
  host_.send_udp(*src, sport, *server, 53, cd::dns::encode_pooled(query));
}

void RecursiveResolver::on_timeout(std::uint64_t key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  TaskPtr task = it->second.task;
  unbind_port(it->second.port);
  pending_.erase(it);

  if (task->finished) return;
  if (task->retries_left > 0) {
    --task->retries_left;
    send_current_query(task);
    return;
  }
  next_server(task);
}

void RecursiveResolver::next_server(const TaskPtr& task) {
  ++task->server_idx;
  task->retries_left = config_.max_retries;
  if (task->server_idx >= task->servers.size()) {
    finish(task, Rcode::kServFail, {});
    return;
  }
  send_current_query(task);
}

void RecursiveResolver::handle_upstream_response(const Packet& packet,
                                                 const DnsMessage& response) {
  const std::uint64_t key = pending_key(packet.dst_port, response.header.id);
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  // Off-path answer hygiene: the response must come from the queried server
  // and echo back the question we asked (RFC 5452). A cache-poisoning attack
  // in the simulator has to beat port + txid + question, just like the real
  // thing.
  if (!(it->second.server == packet.src) || packet.src_port != 53) return;
  if (response.questions.empty() ||
      !(response.questions.front().qname == it->second.qname) ||
      response.questions.front().qtype != it->second.qtype) {
    return;
  }

  TaskPtr task = it->second.task;
  const IpAddr server = it->second.server;
  host_.network().loop().cancel(it->second.timeout_event);
  unbind_port(it->second.port);
  pending_.erase(it);

  process_response(task, response, server, /*was_tcp=*/false);
}

std::uint32_t RecursiveResolver::negative_ttl(const DnsMessage& msg) const {
  for (const DnsRr& rr : msg.authorities) {
    if (rr.type == RrType::kSoa) {
      const auto* soa = std::get_if<cd::dns::SoaRdata>(&rr.rdata);
      if (soa) return std::min(rr.ttl, soa->minimum);
    }
  }
  return 300;
}

void RecursiveResolver::retry_over_tcp(const TaskPtr& task,
                                       const IpAddr& server) {
  ++stats_.tcp_retries;
  const auto src = host_.address(server.family());
  if (!src) {
    next_server(task);
    return;
  }
  DnsMessage query =
      cd::dns::make_query(static_cast<std::uint16_t>(rng_.u64()),
                          task->current_qname, task->current_qtype,
                          /*rd=*/task->forward_mode);
  host_.tcp_query(
      *src, server, 53, tcp_frame_pooled(query),
      [this, task, server](std::optional<std::vector<std::uint8_t>> reply) {
        if (task->finished) return;
        if (!reply) {
          next_server(task);
          return;
        }
        DnsMessage msg;
        try {
          msg = DnsMessage::decode(tcp_unframe_view(*reply));
        } catch (const cd::ParseError&) {
          cd::BufferPool::release(std::move(*reply));
          next_server(task);
          return;
        }
        // The reassembled stream was decoded; recycle its buffer.
        cd::BufferPool::release(std::move(*reply));
        process_response(task, msg, server, /*was_tcp=*/true);
      });
}

void RecursiveResolver::process_response(const TaskPtr& task,
                                         const DnsMessage& msg,
                                         const IpAddr& server, bool was_tcp) {
  if (task->finished) return;
  const cd::sim::SimTime now = host_.network().loop().now();

  if (msg.header.tc && !was_tcp) {
    retry_over_tcp(task, server);
    return;
  }

  switch (msg.header.rcode) {
    case Rcode::kNxDomain: {
      cache_.insert_nxdomain(task->current_qname, negative_ttl(msg), now);
      const bool minimizing = task->current_qname != task->qname;
      if (minimizing && config_.qmin == QminMode::kRelaxed) {
        // Fall back to the full query name against the same servers.
        task->qmin_active = false;
        task->current_qname = task->qname;
        task->current_qtype = task->qtype;
        send_current_query(task);
        return;
      }
      // Strict minimization (or a genuine NXDOMAIN): nothing underneath.
      finish(task, Rcode::kNxDomain, {});
      return;
    }
    case Rcode::kNoError:
      break;
    default:
      // REFUSED / SERVFAIL / FORMERR and friends: lame server, move on.
      next_server(task);
      return;
  }

  if (!msg.answers.empty()) {
    handle_answer(task, msg);
    return;
  }

  // Delegation?
  bool has_ns = false;
  for (const DnsRr& rr : msg.authorities) {
    if (rr.type == RrType::kNs) {
      has_ns = true;
      break;
    }
  }
  if (has_ns && !task->forward_mode) {
    handle_delegation(task, msg);
    return;
  }

  // NODATA.
  cache_.insert_nodata(task->current_qname, task->current_qtype,
                       negative_ttl(msg), now);
  if (task->current_qname != task->qname) {
    // Minimizing: the intermediate name exists but has no NS here — the
    // current zone simply continues deeper. Ask one more label.
    task->zone_depth = task->current_qname.label_count();
    advance_qmin(task);
    task->server_idx = 0;
    task->retries_left = config_.max_retries;
    send_current_query(task);
    return;
  }
  finish(task, Rcode::kNoError, {});
}

void RecursiveResolver::handle_delegation(const TaskPtr& task,
                                          const DnsMessage& msg) {
  const cd::sim::SimTime now = host_.network().loop().now();

  DnsName cut;
  std::vector<DnsName> ns_names;
  std::vector<DnsRr> ns_rrs;
  for (const DnsRr& rr : msg.authorities) {
    if (rr.type != RrType::kNs) continue;
    cut = rr.name;
    const auto* rd = std::get_if<cd::dns::NsRdata>(&rr.rdata);
    if (rd) ns_names.push_back(rd->nsdname);
    ns_rrs.push_back(rr);
  }
  if (!ns_rrs.empty()) cache_.insert_positive(ns_rrs, now);

  // The referral must make progress: the cut has to be deeper than the zone
  // we just asked, and on the path to the query name.
  if (!task->qname.is_subdomain_of(cut) ||
      cut.label_count() <= task->zone_depth) {
    next_server(task);
    return;
  }

  // Gather glue for the delegated servers.
  std::vector<IpAddr> next_servers;
  auto add_addr = [&next_servers](const IpAddr& addr) {
    if (std::find(next_servers.begin(), next_servers.end(), addr) ==
        next_servers.end()) {
      next_servers.push_back(addr);
    }
  };
  for (const DnsRr& rr : msg.additionals) {
    const bool is_ns_target =
        std::find(ns_names.begin(), ns_names.end(), rr.name) != ns_names.end();
    if (!is_ns_target) continue;
    if (const auto* a = std::get_if<cd::dns::ARdata>(&rr.rdata)) {
      add_addr(a->addr);
      cache_.insert_positive({rr}, now);
    } else if (const auto* aaaa = std::get_if<cd::dns::AaaaRdata>(&rr.rdata)) {
      add_addr(aaaa->addr);
      cache_.insert_positive({rr}, now);
    }
  }
  // Glue may also already be cached.
  for (const DnsName& ns : ns_names) {
    for (RrType t : {RrType::kA, RrType::kAaaa}) {
      const auto hit = cache_.lookup(ns, t, now);
      if (hit.kind != CacheHitKind::kPositive) continue;
      for (const DnsRr& rr : hit.records) {
        if (const auto* a = std::get_if<cd::dns::ARdata>(&rr.rdata)) {
          add_addr(a->addr);
        } else if (const auto* aaaa =
                       std::get_if<cd::dns::AaaaRdata>(&rr.rdata)) {
          add_addr(aaaa->addr);
        }
      }
    }
  }

  if (next_servers.empty()) {
    // Glue-less delegation: resolve a nameserver address out of band.
    if (task->ns_fetch_depth >= config_.max_ns_fetch_depth ||
        ns_names.empty()) {
      finish(task, Rcode::kServFail, {});
      return;
    }
    ++task->ns_fetch_depth;
    const DnsName target = ns_names.front();
    const RrType want =
        host_.address(IpFamily::kV4) ? RrType::kA : RrType::kAaaa;
    resolve(target, want,
            [this, task, cut](Rcode rcode, const std::vector<DnsRr>& records) {
              if (task->finished) return;
              std::vector<IpAddr> servers;
              if (rcode == Rcode::kNoError) {
                for (const DnsRr& rr : records) {
                  if (const auto* a = std::get_if<cd::dns::ARdata>(&rr.rdata)) {
                    servers.push_back(a->addr);
                  } else if (const auto* aaaa =
                                 std::get_if<cd::dns::AaaaRdata>(&rr.rdata)) {
                    servers.push_back(aaaa->addr);
                  }
                }
              }
              if (servers.empty()) {
                finish(task, Rcode::kServFail, {});
                return;
              }
              task->servers = std::move(servers);
              task->server_idx = 0;
              task->retries_left = config_.max_retries;
              task->zone_depth = cut.label_count();
              advance_qmin(task);
              send_current_query(task);
            });
    return;
  }

  task->servers = std::move(next_servers);
  task->server_idx = 0;
  task->retries_left = config_.max_retries;
  task->zone_depth = cut.label_count();
  if (task->qmin_active || config_.qmin != QminMode::kOff) {
    // Recompute the minimized name for the deeper zone.
    if (config_.qmin != QminMode::kOff && task->current_qname != task->qname) {
      task->qmin_active = true;
    }
    advance_qmin(task);
  }
  send_current_query(task);
}

void RecursiveResolver::handle_answer(const TaskPtr& task,
                                      const DnsMessage& msg) {
  const cd::sim::SimTime now = host_.network().loop().now();

  if (task->current_qname != task->qname) {
    // Minimizing and the intermediate name answered (e.g. the same server is
    // authoritative for parent and child): note the zone and go deeper.
    std::vector<DnsRr> rrset;
    for (const DnsRr& rr : msg.answers) {
      if (rr.type == task->current_qtype && rr.name == task->current_qname) {
        rrset.push_back(rr);
      }
    }
    if (!rrset.empty()) cache_.insert_positive(rrset, now);
    task->zone_depth = task->current_qname.label_count();
    advance_qmin(task);
    task->server_idx = 0;
    task->retries_left = config_.max_retries;
    send_current_query(task);
    return;
  }

  // Split the answer into the RRset we asked for and any CNAMEs.
  std::vector<DnsRr> wanted;
  std::optional<DnsName> cname_target;
  for (const DnsRr& rr : msg.answers) {
    if (rr.type == task->qtype && rr.name == task->qname) {
      wanted.push_back(rr);
    } else if (rr.type == RrType::kCname && rr.name == task->qname) {
      const auto* rd = std::get_if<cd::dns::CnameRdata>(&rr.rdata);
      if (rd) cname_target = rd->target;
      task->cname_chain.push_back(rr);
      cache_.insert_positive({rr}, now);
    }
  }

  if (!wanted.empty()) {
    cache_.insert_positive(wanted, now);
    std::vector<DnsRr> full = task->cname_chain;
    full.insert(full.end(), wanted.begin(), wanted.end());
    finish(task, Rcode::kNoError, std::move(full));
    return;
  }

  if (cname_target && task->qtype != RrType::kCname) {
    if (++task->cname_depth > config_.max_cname_depth) {
      finish(task, Rcode::kServFail, {});
      return;
    }
    // Restart resolution at the CNAME target, keeping the chain and the
    // depth guard (a fresh depth would loop forever on CNAME cycles).
    std::vector<DnsRr> chain = task->cname_chain;
    const RrType qtype = task->qtype;
    const int depth = task->cname_depth;
    auto done = task->done;
    task->finished = true;  // retire the old task; continuation owns `done`
    resolve_internal(
        *cname_target, qtype,
        [done = std::move(done), chain = std::move(chain)](
            Rcode rcode, const std::vector<DnsRr>& records) mutable {
          std::vector<DnsRr> full = std::move(chain);
          full.insert(full.end(), records.begin(), records.end());
          done(rcode, full);
        },
        depth);
    return;
  }

  // Answer section had nothing usable; treat as NODATA.
  cache_.insert_nodata(task->qname, task->qtype, negative_ttl(msg), now);
  finish(task, Rcode::kNoError, {});
}

void RecursiveResolver::finish(const TaskPtr& task, Rcode rcode,
                               std::vector<DnsRr> records) {
  if (task->finished) return;
  task->finished = true;
  switch (rcode) {
    case Rcode::kNoError: ++stats_.answered; break;
    case Rcode::kNxDomain: ++stats_.nxdomain; break;
    default: ++stats_.servfail; break;
  }
  if (task->done) task->done(rcode, records);
}

}  // namespace cd::resolver
