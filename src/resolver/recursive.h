// A recursive DNS resolver running on a simulated host.
//
// This is a real protocol engine, not a lookup table: it serves clients on
// UDP port 53 subject to an ACL, resolves names iteratively from root hints
// (or through forwarders), caches positively and negatively (RFC 2308/8020),
// optionally minimizes query names (RFC 7816, strict or relaxed), retries on
// timeout, falls back to TCP on truncation, and draws its UDP source ports
// from a pluggable allocator — the behaviour the paper's measurement keys on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/cache.h"
#include "dns/message.h"
#include "net/ip.h"
#include "resolver/port_alloc.h"
#include "resolver/software.h"
#include "sim/host.h"

namespace cd::resolver {

/// Bootstrap addresses of the root DNS servers.
struct RootHints {
  std::vector<cd::net::IpAddr> servers;
};

struct ResolverConfig {
  /// Serve any client (an "open resolver"). When false, clients must match
  /// the ACL below; the resolver's own addresses and loopback are always
  /// allowed.
  bool open = false;
  std::vector<cd::net::Prefix> acl;
  /// Send a REFUSED response to denied clients (vs. silently dropping).
  bool respond_refused = true;

  QminMode qmin = QminMode::kOff;

  /// Forwarder mode: relay everything to these upstreams instead of
  /// iterating from the roots.
  std::vector<cd::net::IpAddr> forwarders;
  /// With forwarders configured, the fraction of resolutions sent through
  /// them; the remainder iterate from the roots (forward-first failover
  /// setups produce the paper's small "both direct and forwarded" class).
  double forward_ratio = 1.0;

  int max_retries = 2;  // per-server retransmissions
  cd::sim::SimTime query_timeout = 2 * cd::sim::kSecond;
  int max_steps = 48;       // upstream exchanges per resolution
  int max_cname_depth = 8;  // CNAME chain guard
  int max_ns_fetch_depth = 2;  // glue-less delegation sub-resolutions
  cd::dns::CacheConfig cache;
};

struct ResolverStats {
  std::uint64_t client_queries = 0;
  /// Client queries arriving over the TCP-53 service (RFC 7766 transport).
  std::uint64_t tcp_client_queries = 0;
  std::uint64_t refused = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t tcp_retries = 0;
  std::uint64_t answered = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t servfail = 0;
};

class RecursiveResolver {
 public:
  using ResolveCallback = std::function<void(
      cd::dns::Rcode, const std::vector<cd::dns::DnsRr>&)>;

  /// Binds UDP port 53 on `host`. `allocator` supplies source ports for
  /// upstream queries; pass make_default_allocator(...) for Table 5
  /// behaviour. The resolver must outlive the simulation.
  RecursiveResolver(cd::sim::Host& host, ResolverConfig config,
                    RootHints hints, std::unique_ptr<PortAllocator> allocator,
                    cd::Rng rng);

  RecursiveResolver(const RecursiveResolver&) = delete;
  RecursiveResolver& operator=(const RecursiveResolver&) = delete;

  /// Resolves independently of any client (used internally for client
  /// queries; exposed for tests and for stub-resolver-style use).
  void resolve(const cd::dns::DnsName& qname, cd::dns::RrType qtype,
               ResolveCallback done);

 private:
  /// Internal entry that threads the CNAME-chain depth through restarts.
  void resolve_internal(const cd::dns::DnsName& qname, cd::dns::RrType qtype,
                        ResolveCallback done, int cname_depth);

 public:

  /// True if a datagram claiming `client` as its source would be served.
  [[nodiscard]] bool acl_allows(const cd::net::IpAddr& client) const;

  [[nodiscard]] const ResolverStats& stats() const { return stats_; }
  [[nodiscard]] cd::dns::Cache& cache() { return cache_; }
  [[nodiscard]] cd::sim::Host& host() { return host_; }
  [[nodiscard]] const ResolverConfig& config() const { return config_; }

  /// Replaces the transaction-id generator for upstream queries. Default
  /// (none installed) is a full-entropy RNG draw; the attack plane installs
  /// weak sources for legacy profiles (see weak_txid()). Install before
  /// traffic flows — in-flight queries keep the ids they were sent with.
  void set_txid_source(std::unique_ptr<TxidSource> source) {
    txid_source_ = std::move(source);
  }

 private:
  struct Task;
  using TaskPtr = std::shared_ptr<Task>;

  struct Task {
    cd::dns::DnsName qname;
    cd::dns::RrType qtype = cd::dns::RrType::kA;
    ResolveCallback done;

    bool forward_mode = false;
    std::vector<cd::net::IpAddr> servers;
    std::size_t server_idx = 0;
    int retries_left = 0;

    // QNAME minimization: what we are currently asking.
    cd::dns::DnsName current_qname;
    cd::dns::RrType current_qtype = cd::dns::RrType::kA;
    std::size_t zone_depth = 0;  // labels of the deepest known zone
    bool qmin_active = false;

    int steps = 0;
    int cname_depth = 0;
    int ns_fetch_depth = 0;
    std::vector<cd::dns::DnsRr> cname_chain;
    bool finished = false;
  };

  struct PendingQuery {
    TaskPtr task;
    cd::net::IpAddr server;
    std::uint16_t port = 0;
    std::uint16_t txid = 0;
    // The question we asked, held so a response is only accepted when it
    // echoes it back (RFC 5452 §4.4 — the question-section check an off-path
    // injector must also guess).
    cd::dns::DnsName qname;
    cd::dns::RrType qtype = cd::dns::RrType::kA;
    cd::sim::EventId timeout_event = 0;
  };

  // --- plumbing ---
  void dispatch_udp(const cd::net::Packet& packet);
  void handle_client_query(const cd::net::Packet& packet,
                           const cd::dns::DnsMessage& query);
  /// TCP-53 client service (RFC 7766): one framed query in, one framed
  /// response out via `reply` — synchronously for ACL denials, after the
  /// (possibly multi-exchange) resolution otherwise. Serves both the
  /// one-shot and the persistent-session lifecycle.
  void handle_tcp_client(const cd::sim::TcpConnInfo& info,
                         std::span<const std::uint8_t> framed,
                         cd::sim::Host::TcpSessionReply reply);
  void handle_upstream_response(const cd::net::Packet& packet,
                                const cd::dns::DnsMessage& response);
  void bind_port(std::uint16_t port);
  void unbind_port(std::uint16_t port);

  // --- resolution engine ---
  /// Seeds task->servers/zone_depth from the deepest cached delegation on
  /// the path to the query name (falls back to the root hints).
  void seed_servers_from_cache(const TaskPtr& task);
  void advance_qmin(const TaskPtr& task);
  void send_current_query(const TaskPtr& task);
  void on_timeout(std::uint64_t pending_key);
  void next_server(const TaskPtr& task);
  void process_response(const TaskPtr& task, const cd::dns::DnsMessage& msg,
                        const cd::net::IpAddr& server, bool was_tcp);
  void handle_delegation(const TaskPtr& task, const cd::dns::DnsMessage& msg);
  void handle_answer(const TaskPtr& task, const cd::dns::DnsMessage& msg);
  void retry_over_tcp(const TaskPtr& task, const cd::net::IpAddr& server);
  void finish(const TaskPtr& task, cd::dns::Rcode rcode,
              std::vector<cd::dns::DnsRr> records);
  [[nodiscard]] std::optional<cd::net::IpAddr> pick_server(TaskPtr task);
  [[nodiscard]] std::uint32_t negative_ttl(
      const cd::dns::DnsMessage& msg) const;

  cd::sim::Host& host_;
  ResolverConfig config_;
  RootHints hints_;
  std::unique_ptr<PortAllocator> allocator_;
  std::unique_ptr<TxidSource> txid_source_;
  cd::Rng rng_;
  cd::dns::Cache cache_;
  ResolverStats stats_;

  std::unordered_map<std::uint64_t, PendingQuery> pending_;
  std::map<std::uint16_t, int> bound_ports_;
};

}  // namespace cd::resolver
