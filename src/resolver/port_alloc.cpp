#include "resolver/port_alloc.h"

#include "util/error.h"

namespace cd::resolver {

FixedPortAllocator::FixedPortAllocator(std::uint16_t port) : port_(port) {}

std::string FixedPortAllocator::describe() const {
  return "fixed:" + std::to_string(port_);
}

SmallPoolAllocator::SmallPoolAllocator(std::vector<std::uint16_t> ports,
                                       cd::Rng rng)
    : ports_(std::move(ports)), rng_(rng) {
  CD_ENSURE(!ports_.empty(), "SmallPoolAllocator: empty pool");
}

std::uint16_t SmallPoolAllocator::next() {
  return ports_[static_cast<std::size_t>(rng_.uniform(ports_.size()))];
}

std::string SmallPoolAllocator::describe() const {
  return "small-pool:" + std::to_string(ports_.size());
}

SequentialAllocator::SequentialAllocator(std::uint16_t lo, std::uint16_t hi,
                                         std::uint16_t start)
    : lo_(lo), hi_(hi), current_(start) {
  CD_ENSURE(lo <= hi, "SequentialAllocator: lo > hi");
  CD_ENSURE(start >= lo && start <= hi, "SequentialAllocator: start outside");
}

std::uint16_t SequentialAllocator::next() {
  const std::uint16_t port = current_;
  current_ = (current_ == hi_) ? lo_ : static_cast<std::uint16_t>(current_ + 1);
  return port;
}

std::string SequentialAllocator::describe() const {
  return "sequential:[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
}

UniformRangeAllocator::UniformRangeAllocator(std::uint16_t lo, std::uint16_t hi,
                                             cd::Rng rng)
    : lo_(lo), hi_(hi), rng_(rng) {
  CD_ENSURE(lo <= hi, "UniformRangeAllocator: lo > hi");
}

std::uint16_t UniformRangeAllocator::next() {
  const std::uint32_t span = static_cast<std::uint32_t>(hi_ - lo_) + 1;
  return static_cast<std::uint16_t>(lo_ + rng_.uniform(span));
}

std::string UniformRangeAllocator::describe() const {
  return "uniform:[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
}

WindowsPoolAllocator::WindowsPoolAllocator(cd::Rng rng)
    : start_(0), rng_(rng) {
  // Pool position is chosen at service startup, anywhere in the IANA range.
  const std::uint32_t span =
      static_cast<std::uint32_t>(kIanaMax - kIanaMin) + 1;
  start_ = static_cast<std::uint16_t>(kIanaMin + rng_.uniform(span));
}

WindowsPoolAllocator::WindowsPoolAllocator(std::uint16_t start, cd::Rng rng)
    : start_(start), rng_(rng) {
  CD_ENSURE(start >= kIanaMin, "WindowsPoolAllocator: start below IANA range");
}

bool WindowsPoolAllocator::wraps() const {
  return static_cast<std::uint32_t>(start_) + kPoolSize - 1 > kIanaMax;
}

std::uint16_t WindowsPoolAllocator::next() {
  const std::uint32_t offset = static_cast<std::uint32_t>(rng_.uniform(kPoolSize));
  std::uint32_t port = start_ + offset;
  if (port > kIanaMax) {
    port = kIanaMin + (port - kIanaMax - 1);
  }
  return static_cast<std::uint16_t>(port);
}

std::string WindowsPoolAllocator::describe() const {
  return "windows-pool:start=" + std::to_string(start_) +
         (wraps() ? " (wraps)" : "");
}

}  // namespace cd::resolver
