// Off-path DNS cache poisoning: the attacker plane.
//
// A SpoofInjector races legitimate authoritative answers at victim recursive
// resolvers, Kaminsky-style. Per victim and per round it (1) injects a
// trigger query for a fresh name under the anycast-delegated poison subzone
// — spoofed from a same-/24 neighbour for closed resolvers (so DSAV/uRPF
// deployment genuinely gates reachability), sent from the attacker's own
// address for open ones — then (2) fires a budgeted burst of forged
// responses guessing the resolver's (ephemeral port, TXID) pair from what
// earlier rounds' queries revealed at the anycast sites. Acceptance is
// decided entirely by the resolver's real validation path (source address +
// port + TXID + question match, resolver/recursive.cpp); a win plants a
// forged A record in the victim's dns::Cache with the attacker's TTL.
//
// Determinism: every per-victim decision draws from
// Rng::substream(seed, victim address), every packet's transit time is a
// pure function of the packet, and victims' chains share no state — so the
// realized outcome set is bit-identical across shard/stream/spill layouts
// (tests/test_attack_poisoning.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "dns/name.h"
#include "net/ip.h"
#include "resolver/auth.h"
#include "resolver/software.h"
#include "scanner/qname.h"
#include "sim/network.h"
#include "sim/os_model.h"
#include "util/rng.h"

namespace cd::resolver {
class RecursiveResolver;
}

namespace cd::attack {

struct PoisonConfig {
  /// Raced rounds per victim (round 0 is a warm round that only caches the
  /// delegation chain; rounds 1..rounds carry bursts).
  int rounds = 8;
  /// Forged responses per raced round — the attacker's per-window packet
  /// budget.
  std::uint32_t burst = 32;
  /// TTL carried by forged answers. Deliberately above dns::CacheConfig's
  /// default max_ttl so a successful injection exercises the clamp.
  std::uint32_t forged_ttl = 604800;
  /// First trigger fires at start_delay plus a per-victim stagger drawn
  /// uniformly from [0, start_window).
  cd::sim::SimTime start_delay = 200 * cd::sim::kMillisecond;
  cd::sim::SimTime start_window = 100 * cd::sim::kMillisecond;
  /// Gap between a victim's rounds. Must exceed the slowest full resolution
  /// (root -> org -> ns1 -> site is bounded by a handful of <=100ms RTTs),
  /// so round r's scouting observation always lands before round r+1's
  /// burst is computed.
  cd::sim::SimTime round_spacing = 800 * cd::sim::kMillisecond;
  /// Burst launch time relative to the trigger: attacker->victim transit
  /// applies equally to trigger and forgeries, so a small constant lead puts
  /// every forgery inside (upstream query sent, legitimate answer back) —
  /// the legitimate cross-AS round trip is >= 10ms while jitter stays under
  /// 0.5ms.
  cd::sim::SimTime burst_lead = 2 * cd::sim::kMillisecond;
  /// Number of anycast authoritative sites serving the poison subzone.
  int sites = 3;
  /// Deterministic per-victim sampling gate (1.0 = attack every enumerated
  /// victim). A pure function of the victim address, so any shard layout
  /// attacks the same set.
  double victim_fraction = 1.0;
};

/// One enumerated attack target (a non-forwarding recursive resolver).
struct VictimSpec {
  cd::net::IpAddr addr;
  cd::sim::Asn asn = 0;
  cd::resolver::DnsSoftware software =
      cd::resolver::DnsSoftware::kBind9913To9160;
  cd::sim::OsId os = cd::sim::OsId::kEmbeddedCpe;
  bool open = false;
};

/// Realized outcome for one victim.
struct PoisonRecord {
  cd::net::IpAddr victim;
  cd::sim::Asn asn = 0;
  cd::resolver::DnsSoftware software =
      cd::resolver::DnsSoftware::kBind9913To9160;
  cd::sim::OsId os = cd::sim::OsId::kEmbeddedCpe;
  bool open = false;
  /// At least one trigger traversed the borders and induced an upstream
  /// query we observed — the attack surface the paper's spoofing story
  /// gates: DSAV/uRPF ASes drop the spoofed trigger at the edge.
  bool reachable = false;
  bool success = false;
  std::uint32_t rounds = 0;         // raced rounds launched
  std::uint32_t success_round = 0;  // first round whose forgery was accepted
  /// Remaining TTL of the poisoned RRset at the deterministic post-campaign
  /// check time (clamped by the victim's cache from forged_ttl).
  std::uint32_t poisoned_ttl = 0;
  std::uint64_t triggers = 0;  // trigger queries injected
  std::uint64_t forged = 0;    // forged responses fired
  /// Scouted ephemeral ports in observation order (the attacker's — and the
  /// Beta-fit estimator's — raw material).
  std::vector<std::uint16_t> observed_ports;
};

/// Keyed by victim address; per-shard maps are disjoint (victims partition
/// by AS) and merge by insertion.
using PoisonRecords = std::map<cd::net::IpAddr, PoisonRecord>;

/// The off-path attacker. Construct once per experiment shard, register the
/// anycast site auth logs via observe_auth (AuthServer::add_observer), feed
/// victims with add_victim before the event loop drains, then finalize()
/// against the victims' caches.
class SpoofInjector {
 public:
  /// `attacker_asn` is the AS the attacker physically injects from (no
  /// egress filtering), `service_addr` the anycast service address forged
  /// responses claim as their source, `poisoned_addr` the address forged
  /// answers resolve to.
  SpoofInjector(cd::sim::Network& network, cd::sim::Asn attacker_asn,
                cd::net::IpAddr attacker_addr, cd::net::IpAddr service_addr,
                cd::net::IpAddr poisoned_addr, cd::scanner::QnameCodec codec,
                PoisonConfig config, std::uint64_t seed);

  SpoofInjector(const SpoofInjector&) = delete;
  SpoofInjector& operator=(const SpoofInjector&) = delete;

  /// Schedules the victim's whole trigger/burst chain on the event loop.
  /// Call before the loop drains.
  void add_victim(const VictimSpec& spec);

  /// Scouting: feed every anycast site's auth log through this (attach with
  /// AuthServer::add_observer). Stands in for an attacker observing queries
  /// for its own zone arrive at its own authoritative infrastructure — the
  /// (port, TXID) sequence is exactly what such an attacker learns. Entries
  /// whose client is not the victim itself (e.g. an analyst replay through a
  /// public resolver) are ignored: their timing depends on shared caches.
  void observe_auth(const cd::resolver::AuthLogEntry& entry);

  /// After the event loop drains: inspect each victim's cache for accepted
  /// forgeries (at a deterministic check time independent of loop end) and
  /// build the outcome records. `resolver_of` maps a victim address to its
  /// resolver, or null if the address was not materialized.
  void finalize(
      const std::function<cd::resolver::RecursiveResolver*(
          const cd::net::IpAddr&)>& resolver_of);

  [[nodiscard]] const PoisonRecords& records() const { return records_; }
  [[nodiscard]] std::uint64_t triggers_sent() const { return triggers_; }
  [[nodiscard]] std::uint64_t forged_sent() const { return forged_; }

  /// The apex of the anycast-delegated subzone attacks resolve under.
  [[nodiscard]] cd::dns::DnsName zone_apex() const {
    return codec_.zone_apex(cd::scanner::QueryMode::kPoison);
  }

 private:
  struct VictimState {
    VictimSpec spec;
    cd::Rng rng;
    /// One query name per round (index == round; round 0 warms the
    /// delegation chain).
    std::vector<cd::dns::DnsName> names;
    /// When each round's trigger was injected (-1 = not yet).
    std::vector<cd::sim::SimTime> trigger_send;
    /// Trigger-send-to-site-arrival delay of the most recent round whose
    /// final (fully-qualified) query we scouted; times the next burst.
    cd::sim::SimTime last_final_delta = -1;
    std::vector<std::uint16_t> ports;  // scouted, arrival order
    std::vector<std::uint16_t> txids;
    PoisonRecord rec;
  };

  /// What the scouted history predicts: an explicit candidate set (constant,
  /// sequential window, or small pool) or a uniform draw over the observed
  /// range.
  struct GuessModel {
    std::vector<std::uint16_t> exact;
    /// The values walk in small positive steps; exact holds the next window
    /// from `last`.
    bool sequential = false;
    std::uint16_t last = 0;
    std::uint16_t lo = 0;
    std::uint16_t hi = 0xFFFF;
    [[nodiscard]] bool is_exact() const { return !exact.empty(); }
    [[nodiscard]] std::uint64_t size() const {
      return is_exact() ? exact.size()
                        : static_cast<std::uint64_t>(hi - lo) + 1;
    }
    [[nodiscard]] std::uint16_t draw(cd::Rng& rng) const;
  };
  [[nodiscard]] static GuessModel fit_guess_model(
      const std::vector<std::uint16_t>& obs, std::uint32_t follow_window);

  void send_trigger(VictimState& state, int round);
  void send_burst(VictimState& state, int round);
  [[nodiscard]] static cd::net::IpAddr neighbor_of(const cd::net::IpAddr& v);

  cd::sim::Network& network_;
  cd::sim::Asn attacker_asn_;
  cd::net::IpAddr attacker_addr_;
  cd::net::IpAddr service_addr_;
  cd::net::IpAddr poisoned_addr_;
  cd::scanner::QnameCodec codec_;
  PoisonConfig config_;
  std::uint64_t seed_;

  std::map<cd::net::IpAddr, VictimState> victims_;
  PoisonRecords records_;
  std::uint64_t triggers_ = 0;
  std::uint64_t forged_ = 0;
};

}  // namespace cd::attack
