#include "attack/poison.h"

#include <algorithm>
#include <set>
#include <utility>

#include "dns/cache.h"
#include "dns/message.h"
#include "net/packet.h"
#include "resolver/recursive.h"
#include "util/error.h"

namespace cd::attack {

using cd::dns::DnsMessage;
using cd::dns::DnsName;
using cd::dns::DnsRr;
using cd::dns::RrType;
using cd::net::IpAddr;
using cd::net::Packet;
using cd::sim::SimTime;

namespace {

/// How many upstream queries ahead of the last observation the guess window
/// extends. Each resolution step consumes one port and one txid, so the
/// window bounds how much unrelated resolver activity (probe-plane
/// resolutions, QNAME-minimization steps) the attacker tolerates between
/// scouting and racing.
constexpr std::uint16_t kFollowWindow = 16;

}  // namespace

std::uint16_t SpoofInjector::GuessModel::draw(cd::Rng& rng) const {
  if (is_exact()) {
    return exact[static_cast<std::size_t>(rng.uniform(exact.size()))];
  }
  return static_cast<std::uint16_t>(
      lo + rng.uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

SpoofInjector::GuessModel SpoofInjector::fit_guess_model(
    const std::vector<std::uint16_t>& obs, std::uint32_t follow_window) {
  GuessModel m;
  if (obs.empty()) return m;  // full range: nothing learned

  // Constant: a fixed value (startup-selected port, pinned txid).
  if (std::all_of(obs.begin(), obs.end(),
                  [&](std::uint16_t v) { return v == obs.front(); })) {
    m.exact = {obs.front()};
    return m;
  }

  // Sequential: every consecutive delta is a small positive step (u16
  // arithmetic absorbs wraparound). Predict the next follow_window values.
  if (obs.size() >= 2) {
    bool sequential = true;
    for (std::size_t i = 1; i < obs.size(); ++i) {
      const auto d = static_cast<std::uint16_t>(obs[i] - obs[i - 1]);
      if (d == 0 || d > follow_window) {
        sequential = false;
        break;
      }
    }
    if (sequential) {
      m.sequential = true;
      m.last = obs.back();
      for (std::uint32_t k = 1; k <= follow_window; ++k) {
        m.exact.push_back(static_cast<std::uint16_t>(obs.back() + k));
      }
      return m;
    }
  }

  // Small pool: few distinct values recurring across enough draws.
  const std::set<std::uint16_t> distinct(obs.begin(), obs.end());
  if (obs.size() >= 3 && distinct.size() <= 8) {
    m.exact.assign(distinct.begin(), distinct.end());
    return m;
  }

  // Otherwise: uniform over the observed span (for strong randomizers this
  // approaches the allocator's true range as observations accumulate).
  m.lo = *std::min_element(obs.begin(), obs.end());
  m.hi = *std::max_element(obs.begin(), obs.end());
  return m;
}

SpoofInjector::SpoofInjector(cd::sim::Network& network,
                             cd::sim::Asn attacker_asn, IpAddr attacker_addr,
                             IpAddr service_addr, IpAddr poisoned_addr,
                             cd::scanner::QnameCodec codec, PoisonConfig config,
                             std::uint64_t seed)
    : network_(network),
      attacker_asn_(attacker_asn),
      attacker_addr_(attacker_addr),
      service_addr_(service_addr),
      poisoned_addr_(poisoned_addr),
      codec_(std::move(codec)),
      config_(config),
      seed_(seed) {
  CD_ENSURE(config_.rounds >= 1, "SpoofInjector: need at least one round");
  CD_ENSURE(config_.burst >= 1, "SpoofInjector: need a positive burst");
}

IpAddr SpoofInjector::neighbor_of(const IpAddr& v) {
  // A same-/24 (v4) or same-/64 (v6) neighbour: inside every closed
  // resolver's ACL and inside the uRPF-subnet drop zone — exactly the
  // spoofed source the paper's intrusion scenario uses.
  if (v.is_v4()) {
    std::uint32_t bits = (v.v4_bits() & ~0xFFu) | 7u;
    if (bits == v.v4_bits()) bits ^= 1u;
    return IpAddr::v4(bits);
  }
  std::uint64_t lo = (v.bits().lo & ~0xFFull) | 7ull;
  if (lo == v.bits().lo) lo ^= 1ull;
  return IpAddr::v6(v.bits().hi, lo);
}

void SpoofInjector::add_victim(const VictimSpec& spec) {
  if (victims_.count(spec.addr)) return;

  cd::Rng rng =
      cd::Rng::substream(seed_, cd::net::IpAddrHash{}(spec.addr));
  if (!rng.chance(config_.victim_fraction)) return;

  auto [it, inserted] = victims_.emplace(spec.addr, VictimState{});
  VictimState& state = it->second;
  state.spec = spec;
  state.rng = rng;
  state.rec.victim = spec.addr;
  state.rec.asn = spec.asn;
  state.rec.software = spec.software;
  state.rec.os = spec.os;
  state.rec.open = spec.open;

  // One fresh name per round; the ts field carries the round index so a
  // scouted query attributes back to the trigger that induced it.
  state.names.reserve(static_cast<std::size_t>(config_.rounds) + 1);
  for (int r = 0; r <= config_.rounds; ++r) {
    state.names.push_back(codec_.encode({static_cast<SimTime>(r), spec.addr,
                                         spec.addr, spec.asn,
                                         cd::scanner::QueryMode::kPoison}));
  }
  state.trigger_send.assign(state.names.size(), -1);

  const SimTime start =
      config_.start_delay +
      (config_.start_window > 0
           ? static_cast<SimTime>(state.rng.uniform(
                 static_cast<std::uint64_t>(config_.start_window)))
           : 0);
  auto& loop = network_.loop();
  for (int r = 0; r <= config_.rounds; ++r) {
    loop.schedule_in(start + static_cast<SimTime>(r) * config_.round_spacing,
                     [this, addr = spec.addr, r] {
                       auto vit = victims_.find(addr);
                       if (vit != victims_.end()) send_trigger(vit->second, r);
                     });
  }
}

void SpoofInjector::send_trigger(VictimState& state, int round) {
  auto& loop = network_.loop();
  const SimTime now = loop.now();
  state.trigger_send[static_cast<std::size_t>(round)] = now;

  const IpAddr& victim = state.spec.addr;
  // Open resolvers are triggered honestly from the attacker's own address;
  // closed ones need a spoofed in-ACL neighbour, which the victim AS's
  // DSAV/uRPF border (if deployed) drops — tying poisoning exposure to the
  // paper's spoofing story.
  const IpAddr src =
      state.spec.open ? attacker_addr_ : neighbor_of(victim);
  const auto sport = static_cast<std::uint16_t>(
      1024 + state.rng.uniform(60000));

  DnsMessage query = cd::dns::make_query(
      static_cast<std::uint16_t>(state.rng.u64()),
      state.names[static_cast<std::size_t>(round)], RrType::kA, /*rd=*/true);
  network_.send(
      cd::net::make_udp(src, sport, victim, 53, cd::dns::encode_pooled(query)),
      attacker_asn_);
  ++triggers_;
  ++state.rec.triggers;

  // Round 0 is pure scouting (it also warms the victim's delegation chain);
  // later rounds race. The burst is timed so the forged packets reach the
  // victim just after its final upstream query for this round's name reaches
  // our site: last_final_delta is the trigger-to-site-arrival delay measured
  // on the previous round, and the attacker discounts its own transit using
  // the same AS-pair metric the network charges. Until a final query has
  // been scouted there is nothing to time against, so no burst fires.
  if (round == 0 || state.last_final_delta < 0) return;
  SimTime delay = state.last_final_delta -
                  cd::sim::Network::pair_base_latency(attacker_asn_,
                                                      state.spec.asn) +
                  config_.burst_lead;
  if (delay < 0) delay = 0;
  loop.schedule_in(delay, [this, addr = state.spec.addr, round] {
    auto vit = victims_.find(addr);
    if (vit != victims_.end()) send_burst(vit->second, round);
  });
}

void SpoofInjector::send_burst(VictimState& state, int round) {
  if (state.ports.empty() || state.txids.empty()) return;
  ++state.rec.rounds;

  const GuessModel pm = fit_guess_model(state.ports, kFollowWindow);
  const GuessModel tm = fit_guess_model(state.txids, kFollowWindow);

  std::vector<std::pair<std::uint16_t, std::uint16_t>> shots;
  if (pm.sequential && tm.sequential) {
    // Lockstep: every upstream query consumes exactly one port and one txid,
    // so sequential allocators advance in step — guess pairs, not the
    // cartesian product.
    for (std::uint16_t k = 1; k <= kFollowWindow; ++k) {
      shots.emplace_back(static_cast<std::uint16_t>(pm.last + k),
                         static_cast<std::uint16_t>(tm.last + k));
    }
  } else if (pm.is_exact() && tm.is_exact() &&
             pm.size() * tm.size() <= config_.burst) {
    for (std::uint16_t p : pm.exact) {
      for (std::uint16_t t : tm.exact) shots.emplace_back(p, t);
    }
  } else {
    shots.reserve(config_.burst);
    for (std::uint32_t i = 0; i < config_.burst; ++i) {
      shots.emplace_back(pm.draw(state.rng), tm.draw(state.rng));
    }
  }

  const DnsName& name = state.names[static_cast<std::size_t>(round)];
  for (const auto& [port, txid] : shots) {
    DnsMessage fake = cd::dns::make_response(
        cd::dns::make_query(txid, name, RrType::kA, /*rd=*/false),
        cd::dns::Rcode::kNoError);
    fake.header.aa = true;
    fake.answers.push_back(
        cd::dns::make_a(name, poisoned_addr_, config_.forged_ttl));
    network_.send(cd::net::make_udp(service_addr_, 53, state.spec.addr, port,
                                    cd::dns::encode_pooled(fake)),
                  attacker_asn_);
    ++forged_;
    ++state.rec.forged;
  }
}

void SpoofInjector::observe_auth(const cd::resolver::AuthLogEntry& entry) {
  if (entry.tcp) return;
  // Only the victim's own queries are scouting signal. Third parties reach
  // the poison zone too (an analyst replaying a logged trigger resolves it
  // through a public resolver), and their timing depends on shared caches —
  // folding them in would make the guess history layout-dependent.
  const auto it = victims_.find(entry.client);
  if (it == victims_.end()) return;
  const cd::scanner::QnameCodec::Decoded decoded = codec_.decode(entry.qname);
  if (decoded.mode != cd::scanner::QueryMode::kPoison) return;

  VictimState& state = it->second;
  state.rec.reachable = true;
  state.ports.push_back(entry.client_port);
  state.txids.push_back(entry.id);
  state.rec.observed_ports.push_back(entry.client_port);

  // The fully-qualified query is the round's final step; its arrival time
  // calibrates the next round's burst.
  if (decoded.full() && decoded.ts) {
    const auto r = static_cast<std::size_t>(*decoded.ts);
    if (r < state.trigger_send.size() && state.trigger_send[r] >= 0) {
      state.last_final_delta = entry.time - state.trigger_send[r];
    }
  }
}

void SpoofInjector::finalize(
    const std::function<cd::resolver::RecursiveResolver*(const IpAddr&)>&
        resolver_of) {
  // A fixed check time, derived only from the config: the event loop's final
  // timestamp depends on unrelated traffic (and thus on shard layout), so
  // TTL decay must not be measured against it.
  const SimTime check_time =
      config_.start_delay + config_.start_window +
      static_cast<SimTime>(config_.rounds + 1) * config_.round_spacing +
      cd::sim::kSecond;

  for (auto& [addr, state] : victims_) {
    if (cd::resolver::RecursiveResolver* res = resolver_of(addr)) {
      for (int r = 1; r <= config_.rounds && !state.rec.success; ++r) {
        const auto hit =
            res->cache().lookup(state.names[static_cast<std::size_t>(r)],
                                RrType::kA, check_time);
        if (hit.kind != cd::dns::CacheHitKind::kPositive) continue;
        for (const DnsRr& rr : hit.records) {
          const auto* a = std::get_if<cd::dns::ARdata>(&rr.rdata);
          if (a && a->addr == poisoned_addr_) {
            state.rec.success = true;
            state.rec.success_round = static_cast<std::uint32_t>(r);
            state.rec.poisoned_ttl = rr.ttl;
            break;
          }
        }
      }
    }
    records_.emplace(addr, std::move(state.rec));
  }
}

}  // namespace cd::attack
