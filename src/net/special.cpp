#include "net/special.h"

namespace cd::net {
namespace {

std::vector<Prefix> make_v4_registry() {
  // RFC 6890 IPv4 special-purpose registry (plus multicast and class E).
  const char* kEntries[] = {
      "0.0.0.0/8",          // "this network"
      "10.0.0.0/8",         // private
      "100.64.0.0/10",      // shared address space (CGN)
      "127.0.0.0/8",        // loopback
      "169.254.0.0/16",     // link local
      "172.16.0.0/12",      // private
      "192.0.0.0/24",       // IETF protocol assignments
      "192.0.2.0/24",       // TEST-NET-1
      "192.88.99.0/24",     // 6to4 relay anycast
      "192.168.0.0/16",     // private
      "198.18.0.0/15",      // benchmarking
      "198.51.100.0/24",    // TEST-NET-2
      "203.0.113.0/24",     // TEST-NET-3
      "224.0.0.0/4",        // multicast
      "240.0.0.0/4",        // reserved (includes 255.255.255.255)
  };
  std::vector<Prefix> out;
  for (const char* e : kEntries) out.push_back(Prefix::must_parse(e));
  return out;
}

std::vector<Prefix> make_v6_registry() {
  const char* kEntries[] = {
      "::/128",            // unspecified
      "::1/128",           // loopback
      "::ffff:0:0/96",     // IPv4-mapped
      "64:ff9b::/96",      // IPv4-IPv6 translation
      "100::/64",          // discard-only
      "2001::/32",         // TEREDO
      "2001:2::/48",       // benchmarking
      "2001:db8::/32",     // documentation
      "2001:10::/28",      // ORCHID
      "2002::/16",         // 6to4
      "fc00::/7",          // unique-local
      "fe80::/10",         // link-local
      "ff00::/8",          // multicast
  };
  std::vector<Prefix> out;
  for (const char* e : kEntries) out.push_back(Prefix::must_parse(e));
  return out;
}

}  // namespace

const std::vector<Prefix>& special_purpose_registry(IpFamily family) {
  static const std::vector<Prefix> v4 = make_v4_registry();
  static const std::vector<Prefix> v6 = make_v6_registry();
  return family == IpFamily::kV4 ? v4 : v6;
}

bool is_special_purpose(const IpAddr& addr) {
  for (const Prefix& p : special_purpose_registry(addr.family())) {
    if (p.contains(addr)) return true;
  }
  return false;
}

bool is_private_v4(const IpAddr& addr) {
  static const Prefix k10 = Prefix::must_parse("10.0.0.0/8");
  static const Prefix k172 = Prefix::must_parse("172.16.0.0/12");
  static const Prefix k192 = Prefix::must_parse("192.168.0.0/16");
  return addr.is_v4() &&
         (k10.contains(addr) || k172.contains(addr) || k192.contains(addr));
}

bool is_unique_local_v6(const IpAddr& addr) {
  static const Prefix kUla = Prefix::must_parse("fc00::/7");
  return addr.is_v6() && kUla.contains(addr);
}

bool is_loopback(const IpAddr& addr) {
  if (addr.is_v4()) {
    static const Prefix kLoop = Prefix::must_parse("127.0.0.0/8");
    return kLoop.contains(addr);
  }
  return addr == IpAddr::must_parse("::1");
}

bool is_unroutable(const IpAddr& addr) {
  return is_special_purpose(addr);
}

}  // namespace cd::net
