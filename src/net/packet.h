// Structured packets carried by the simulator, with real wire encoding.
//
// The simulator moves `Packet` values between hosts; `serialize()`/`parse()`
// produce and consume genuine IPv4/IPv6+UDP/TCP wire bytes so that header
// behaviour (checksums, TTL decrement, fingerprint fields) is real and not
// just pretend metadata.
#pragma once

#include <cstdint>
#include <vector>

#include "net/headers.h"
#include "net/ip.h"

namespace cd::net {

/// One IP datagram/segment. For TCP, `tcp` holds flags/seq/window/options;
/// for UDP those fields are ignored.
struct Packet {
  IpAddr src;
  IpAddr dst;
  IpProto proto = IpProto::kUdp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = 64;  // hop limit for v6

  // TCP-only metadata (fingerprint-relevant fields included).
  TcpFlags tcp_flags;
  std::uint32_t tcp_seq = 0;
  std::uint32_t tcp_ack = 0;
  std::uint16_t tcp_window = 0;
  std::vector<TcpOption> tcp_options;

  std::vector<std::uint8_t> payload;

  [[nodiscard]] bool is_v4() const { return src.is_v4(); }

  /// Appends the full wire bytes (IP header + (UDP|TCP) header + payload)
  /// through `w`. Requires src/dst in the same family.
  void serialize_into(cd::ByteWriter& w) const;

  /// Same, but the L4 payload is the given span chain instead of `payload`
  /// (which is ignored): a segment can be serialized straight from a
  /// scatter-gather stream slice — framing header + pooled body — with one
  /// combined copy+checksum pass and no coalesced intermediate.
  void serialize_into(cd::ByteWriter& w,
                      const cd::ConstSpans& payload_chain) const;

  /// serialize_into() into a buffer drawn from the thread-local
  /// cd::BufferPool (shim over the writer form).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Inverse of serialize(); throws cd::ParseError on malformed input.
  [[nodiscard]] static Packet parse(std::span<const std::uint8_t> wire);
};

/// Convenience constructor for a UDP datagram.
[[nodiscard]] Packet make_udp(const IpAddr& src, std::uint16_t src_port,
                              const IpAddr& dst, std::uint16_t dst_port,
                              std::vector<std::uint8_t> payload,
                              std::uint8_t ttl = 64);

/// Convenience constructor for a TCP segment.
[[nodiscard]] Packet make_tcp(const IpAddr& src, std::uint16_t src_port,
                              const IpAddr& dst, std::uint16_t dst_port,
                              TcpFlags flags,
                              std::vector<std::uint8_t> payload = {},
                              std::uint8_t ttl = 64);

}  // namespace cd::net
