#include "net/checksum.h"

namespace cd::net {

void Checksum::add(std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint32_t>(data[i]) << 8;
  }
}

void Checksum::add_written(const cd::ByteWriter& w, std::size_t from) {
  add(w.written(from));
}

void Checksum::add_stream(std::span<const std::uint8_t> data) {
  if (pending_ >= 0 && !data.empty()) {
    sum_ += (static_cast<std::uint32_t>(pending_) << 8) | data[0];
    pending_ = -1;
    data = data.subspan(1);
  }
  if (data.size() % 2 != 0) {
    pending_ = data.back();
    data = data.first(data.size() - 1);
  }
  add(data);
}

void Checksum::add_stream(const cd::ConstSpans& chain) {
  for (std::size_t i = 0; i < chain.count(); ++i) add_stream(chain[i]);
}

void Checksum::add_word(std::uint16_t word) {
  sum_ += word;
}

std::uint16_t Checksum::finish() const {
  std::uint64_t s = sum_;
  if (pending_ >= 0) s += static_cast<std::uint32_t>(pending_) << 8;
  while (s >> 16) s = (s & 0xFFFF) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  Checksum c;
  c.add(data);
  return c.finish();
}

}  // namespace cd::net
