#include "net/checksum.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace cd::net {
namespace detail {
namespace {

#if defined(__x86_64__)

bool have_avx2() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
}

/// Sum of the little-endian 32-bit dwords of `bytes` (a multiple of 32)
/// starting at `p`, widened into 64-bit lanes so nothing can wrap. Because
/// 2^16 = 1 (mod 0xFFFF), the dword sum is congruent to the 16-bit word sum
/// — the fold doesn't care that we added pairs of words at once.
__attribute__((target("avx2"))) std::uint64_t le_dword_sum_avx2(
    const std::uint8_t* p, std::size_t bytes) {
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  for (std::size_t i = 0; i < bytes; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    acc_lo = _mm256_add_epi64(acc_lo,
                              _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v)));
    acc_hi = _mm256_add_epi64(
        acc_hi, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1)));
  }
  const __m256i acc = _mm256_add_epi64(acc_lo, acc_hi);
  alignas(32) std::uint64_t lane[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), acc);
  return lane[0] + lane[1] + lane[2] + lane[3];
}

#endif  // __x86_64__

}  // namespace

std::uint64_t be_word_sum_scalar(std::span<const std::uint8_t> data) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  return sum;
}

std::uint64_t be_word_sum(std::span<const std::uint8_t> data) {
  const std::size_t even = data.size() & ~std::size_t{1};
#if defined(__x86_64__)
  if (even >= 64 && have_avx2()) {
    const std::size_t vec = even & ~std::size_t{31};
    // The vector path sums native (little-endian) words; ones'-complement
    // sums are byte-order independent, so byte-swapping the folded value
    // converts it to the big-endian word sum's fold class (RFC 1071 §1B).
    const std::uint16_t le_fold = fold16(le_dword_sum_avx2(data.data(), vec));
    const auto be_fold = static_cast<std::uint16_t>(
        (le_fold << 8) | (le_fold >> 8));
    return be_fold + be_word_sum_scalar(data.subspan(vec, even - vec));
  }
#endif
  return be_word_sum_scalar(data.first(even));
}

}  // namespace detail

void Checksum::add(std::span<const std::uint8_t> data) {
  sum_ += detail::be_word_sum(data);
  if (data.size() % 2 != 0) {
    sum_ += static_cast<std::uint32_t>(data.back()) << 8;
  }
}

void Checksum::add_written(const cd::ByteWriter& w, std::size_t from) {
  add(w.written(from));
}

void Checksum::add_stream(std::span<const std::uint8_t> data) {
  if (pending_ >= 0 && !data.empty()) {
    sum_ += (static_cast<std::uint32_t>(pending_) << 8) | data[0];
    pending_ = -1;
    data = data.subspan(1);
  }
  if (data.size() % 2 != 0) {
    pending_ = data.back();
    data = data.first(data.size() - 1);
  }
  add(data);
}

void Checksum::add_stream(const cd::ConstSpans& chain) {
  for (std::size_t i = 0; i < chain.count(); ++i) add_stream(chain[i]);
}

void Checksum::add_word(std::uint16_t word) {
  sum_ += word;
}

std::uint16_t Checksum::finish() const {
  std::uint64_t s = sum_;
  if (pending_ >= 0) s += static_cast<std::uint32_t>(pending_) << 8;
  return static_cast<std::uint16_t>(~detail::fold16(s) & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  Checksum c;
  c.add(data);
  return c.finish();
}

}  // namespace cd::net
