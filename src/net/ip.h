// IP address and prefix types (IPv4 and IPv6 unified).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/u128.h"

namespace cd::net {

enum class IpFamily : std::uint8_t { kV4, kV6 };

/// An IPv4 or IPv6 address. IPv4 addresses are stored in the low 32 bits of
/// the 128-bit value, with the family tag kept separately (an IPv4 address is
/// never equal to its v4-mapped IPv6 form).
class IpAddr {
 public:
  /// Default-constructs IPv4 0.0.0.0.
  constexpr IpAddr() = default;

  [[nodiscard]] static constexpr IpAddr v4(std::uint32_t bits) {
    return IpAddr(IpFamily::kV4, U128{0, bits});
  }
  [[nodiscard]] static constexpr IpAddr v4(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return v4((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d});
  }
  [[nodiscard]] static constexpr IpAddr v6(std::uint64_t hi, std::uint64_t lo) {
    return IpAddr(IpFamily::kV6, U128{hi, lo});
  }
  [[nodiscard]] static constexpr IpAddr from_bits(IpFamily fam, U128 bits) {
    return IpAddr(fam, bits);
  }

  /// Parses dotted-quad IPv4 or RFC 4291 IPv6 (including "::" compression and
  /// trailing dotted-quad). Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<IpAddr> parse(std::string_view s);

  /// Like parse() but throws cd::ParseError; for literals known to be valid.
  [[nodiscard]] static IpAddr must_parse(std::string_view s);

  [[nodiscard]] constexpr IpFamily family() const { return family_; }
  [[nodiscard]] constexpr bool is_v4() const {
    return family_ == IpFamily::kV4;
  }
  [[nodiscard]] constexpr bool is_v6() const {
    return family_ == IpFamily::kV6;
  }
  [[nodiscard]] constexpr U128 bits() const { return bits_; }
  [[nodiscard]] constexpr std::uint32_t v4_bits() const {
    return static_cast<std::uint32_t>(bits_.lo);
  }
  /// Address width in bits: 32 or 128.
  [[nodiscard]] constexpr int width() const { return is_v4() ? 32 : 128; }

  /// Canonical text form. IPv6 uses lowercase hex with longest-run "::"
  /// compression per RFC 5952.
  [[nodiscard]] std::string to_string() const;

  /// 16-byte (v6) or 4-byte (v4) network-order representation.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  /// Address at `offset` above this one (wraps within family width).
  [[nodiscard]] IpAddr offset_by(std::uint64_t offset) const;

  friend constexpr bool operator==(const IpAddr&, const IpAddr&) = default;
  friend constexpr bool operator<(const IpAddr& a, const IpAddr& b) {
    if (a.family_ != b.family_) return a.family_ < b.family_;
    return a.bits_ < b.bits_;
  }

 private:
  constexpr IpAddr(IpFamily fam, U128 bits) : family_(fam), bits_(bits) {}

  IpFamily family_ = IpFamily::kV4;
  U128 bits_{};
};

struct IpAddrHash {
  std::size_t operator()(const IpAddr& a) const noexcept {
    return U128Hash{}(a.bits()) ^ (a.is_v6() ? 0x9E3779B9u : 0u);
  }
};

/// A CIDR prefix: base address (host bits zeroed) plus prefix length.
class Prefix {
 public:
  Prefix() = default;

  /// Constructs with host bits masked off. Throws on invalid length.
  Prefix(IpAddr base, int length);

  /// Parses "a.b.c.d/len" or "v6::/len". Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view s);
  [[nodiscard]] static Prefix must_parse(std::string_view s);

  [[nodiscard]] IpAddr base() const { return base_; }
  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] IpFamily family() const { return base_.family(); }

  [[nodiscard]] bool contains(const IpAddr& addr) const;
  [[nodiscard]] bool contains(const Prefix& other) const;

  /// First and last addresses covered.
  [[nodiscard]] IpAddr first() const { return base_; }
  [[nodiscard]] IpAddr last() const;

  /// The `index`-th address in the prefix (index 0 == base). Caller must keep
  /// index within the prefix size.
  [[nodiscard]] IpAddr nth(std::uint64_t index) const;

  /// Number of addresses, saturating at UINT64_MAX for huge v6 prefixes.
  [[nodiscard]] std::uint64_t size_clamped() const;

  /// Splits into subprefixes of `sublen` (>= length()). Capped at `max_out`
  /// results to keep huge prefixes tractable; returns them in address order.
  [[nodiscard]] std::vector<Prefix> subdivide(int sublen,
                                              std::size_t max_out) const;

  /// Number of /sublen subprefixes, saturating at UINT64_MAX.
  [[nodiscard]] std::uint64_t count_subprefixes(int sublen) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;
  friend bool operator<(const Prefix& a, const Prefix& b) {
    if (a.base_ != b.base_) return a.base_ < b.base_;
    return a.length_ < b.length_;
  }

 private:
  IpAddr base_{};
  int length_ = 0;
};

struct PrefixHash {
  std::size_t operator()(const Prefix& p) const noexcept {
    return IpAddrHash{}(p.base()) * 31 + static_cast<std::size_t>(p.length());
  }
};

}  // namespace cd::net
