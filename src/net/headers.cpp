#include "net/headers.h"

#include "net/checksum.h"
#include "util/error.h"

namespace cd::net {
namespace {

// Pseudo-header contribution for UDP/TCP checksums (v4 and v6 forms).
void add_pseudo_header(Checksum& sum, const IpAddr& src, const IpAddr& dst,
                       IpProto proto, std::size_t l4_length) {
  const auto sb = src.to_bytes();
  const auto db = dst.to_bytes();
  sum.add(sb);
  sum.add(db);
  if (src.is_v4()) {
    sum.add_word(static_cast<std::uint16_t>(proto));
    sum.add_word(static_cast<std::uint16_t>(l4_length));
  } else {
    // v6 pseudo-header uses 32-bit length and next-header fields.
    sum.add_word(static_cast<std::uint16_t>(l4_length >> 16));
    sum.add_word(static_cast<std::uint16_t>(l4_length));
    sum.add_word(0);
    sum.add_word(static_cast<std::uint16_t>(proto));
  }
}

}  // namespace

void Ipv4Header::serialize_into(cd::ByteWriter& w) const {
  CD_ENSURE(src.is_v4() && dst.is_v4(), "Ipv4Header: non-v4 address");
  const std::size_t start = w.size();
  w.u8(0x45);  // version 4, IHL 5
  w.u8(tos);
  w.u16(total_length);
  w.u16(identification);
  w.u16(dont_fragment ? 0x4000 : 0x0000);
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  const std::size_t cks = w.reserve_u16();
  w.u32(src.v4_bits());
  w.u32(dst.v4_bits());
  w.patch_u16(cks, internet_checksum(w.written(start)));
}

std::vector<std::uint8_t> Ipv4Header::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  cd::ByteWriter w(out);
  serialize_into(w);
  return out;
}

Ipv4Header Ipv4Header::parse(cd::ByteReader& r) {
  if (r.remaining() < kSize) throw ParseError("Ipv4Header: short buffer");
  const auto data = r.bytes(kSize);
  if ((data[0] >> 4) != 4) throw ParseError("Ipv4Header: not version 4");
  if ((data[0] & 0x0F) != 5) throw ParseError("Ipv4Header: options unsupported");
  if (internet_checksum(data) != 0) {
    throw ParseError("Ipv4Header: bad checksum");
  }
  cd::ByteReader h(data, "Ipv4Header");
  h.skip(1);  // version/IHL, validated above
  Ipv4Header out;
  out.tos = h.u8();
  out.total_length = h.u16();
  out.identification = h.u16();
  out.dont_fragment = (h.u16() & 0x4000) != 0;
  out.ttl = h.u8();
  out.protocol = static_cast<IpProto>(h.u8());
  h.skip(2);  // checksum, validated above
  out.src = IpAddr::v4(h.u32());
  out.dst = IpAddr::v4(h.u32());
  return out;
}

Ipv4Header Ipv4Header::parse(std::span<const std::uint8_t> data) {
  cd::ByteReader r(data, "Ipv4Header");
  return parse(r);
}

void Ipv6Header::serialize_into(cd::ByteWriter& w) const {
  CD_ENSURE(src.is_v6() && dst.is_v6(), "Ipv6Header: non-v6 address");
  w.u32((0x6u << 28) | (static_cast<std::uint32_t>(traffic_class) << 20) |
        (flow_label & 0xFFFFF));
  w.u16(payload_length);
  w.u8(static_cast<std::uint8_t>(next_header));
  w.u8(hop_limit);
  w.bytes(src.to_bytes());
  w.bytes(dst.to_bytes());
}

std::vector<std::uint8_t> Ipv6Header::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  cd::ByteWriter w(out);
  serialize_into(w);
  return out;
}

Ipv6Header Ipv6Header::parse(cd::ByteReader& r) {
  if (r.remaining() < kSize) throw ParseError("Ipv6Header: short buffer");
  cd::ByteReader h(r.bytes(kSize), "Ipv6Header");
  const std::uint32_t first = h.u32();
  if ((first >> 28) != 6) throw ParseError("Ipv6Header: not version 6");
  Ipv6Header out;
  out.traffic_class = static_cast<std::uint8_t>(first >> 20);
  out.flow_label = first & 0xFFFFF;
  out.payload_length = h.u16();
  out.next_header = static_cast<IpProto>(h.u8());
  out.hop_limit = h.u8();
  // Sequence the four reads explicitly: chaining them inside one expression
  // would leave their order unspecified.
  const auto u64be = [&h] {
    const std::uint64_t hi = h.u32();
    const std::uint64_t lo = h.u32();
    return (hi << 32) | lo;
  };
  const std::uint64_t src_hi = u64be();
  const std::uint64_t src_lo = u64be();
  out.src = IpAddr::v6(src_hi, src_lo);
  const std::uint64_t dst_hi = u64be();
  const std::uint64_t dst_lo = u64be();
  out.dst = IpAddr::v6(dst_hi, dst_lo);
  return out;
}

Ipv6Header Ipv6Header::parse(std::span<const std::uint8_t> data) {
  cd::ByteReader r(data, "Ipv6Header");
  return parse(r);
}

void UdpHeader::serialize_into(cd::ByteWriter& w, const IpAddr& src,
                               const IpAddr& dst,
                               const cd::ConstSpans& payload) const {
  const std::size_t start = w.size();
  w.u16(src_port);
  w.u16(dst_port);
  const std::uint16_t len =
      length ? length
             : static_cast<std::uint16_t>(kSize + payload.size_bytes());
  w.u16(len);
  const std::size_t cks = w.reserve_u16();

  Checksum sum;
  add_pseudo_header(sum, src, dst, IpProto::kUdp, len);
  sum.add(w.written(start));  // 8-byte header; checksum field still zero
  // Single pass over the payload chain: each span is appended to the wire
  // buffer and folded into the checksum once, never coalesced first.
  for (std::size_t i = 0; i < payload.count(); ++i) {
    w.bytes(payload[i]);
    sum.add_stream(payload[i]);
  }
  std::uint16_t cs = sum.finish();
  if (cs == 0) cs = 0xFFFF;  // RFC 768: zero transmitted as all-ones
  w.patch_u16(cks, cs);
}

std::vector<std::uint8_t> UdpHeader::serialize(
    const IpAddr& src, const IpAddr& dst,
    std::span<const std::uint8_t> payload) const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize + payload.size());
  cd::ByteWriter w(out);
  serialize_into(w, src, dst, payload);
  return out;
}

UdpHeader UdpHeader::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) throw ParseError("UdpHeader: short buffer");
  cd::ByteReader r(data, "UdpHeader");
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  if (h.length < kSize || h.length > data.size()) {
    throw ParseError("UdpHeader: bad length");
  }
  return h;
}

std::size_t TcpHeader::size() const {
  std::size_t opt_bytes = 0;
  for (const TcpOption& o : options) {
    switch (o.kind) {
      case TcpOptionKind::kEol:
      case TcpOptionKind::kNop:
        opt_bytes += 1;
        break;
      case TcpOptionKind::kMss:
        opt_bytes += 4;
        break;
      case TcpOptionKind::kWindowScale:
        opt_bytes += 3;
        break;
      case TcpOptionKind::kSackPermitted:
        opt_bytes += 2;
        break;
      case TcpOptionKind::kTimestamp:
        opt_bytes += 10;
        break;
    }
  }
  // Options padded to a 4-byte boundary.
  return 20 + ((opt_bytes + 3) / 4) * 4;
}

void TcpHeader::serialize_into(cd::ByteWriter& w, const IpAddr& src,
                               const IpAddr& dst,
                               const cd::ConstSpans& payload) const {
  const std::size_t start = w.size();
  const std::size_t hdr_size = size();
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  const std::uint8_t data_offset = static_cast<std::uint8_t>(hdr_size / 4);
  w.u8(static_cast<std::uint8_t>(data_offset << 4));
  std::uint8_t flag_bits = 0;
  if (flags.fin) flag_bits |= 0x01;
  if (flags.syn) flag_bits |= 0x02;
  if (flags.rst) flag_bits |= 0x04;
  if (flags.psh) flag_bits |= 0x08;
  if (flags.ack) flag_bits |= 0x10;
  w.u8(flag_bits);
  w.u16(window);
  const std::size_t cks = w.reserve_u16();
  w.u16(0);  // urgent pointer

  for (const TcpOption& o : options) {
    switch (o.kind) {
      case TcpOptionKind::kEol:
        w.u8(0);
        break;
      case TcpOptionKind::kNop:
        w.u8(1);
        break;
      case TcpOptionKind::kMss:
        w.u8(2);
        w.u8(4);
        w.u16(static_cast<std::uint16_t>(o.value));
        break;
      case TcpOptionKind::kWindowScale:
        w.u8(3);
        w.u8(3);
        w.u8(static_cast<std::uint8_t>(o.value));
        break;
      case TcpOptionKind::kSackPermitted:
        w.u8(4);
        w.u8(2);
        break;
      case TcpOptionKind::kTimestamp:
        w.u8(8);
        w.u8(10);
        w.u32(o.value);
        w.u32(0);  // echo reply
        break;
    }
  }
  w.fill(hdr_size - (w.size() - start));  // EOL padding

  Checksum sum;
  add_pseudo_header(sum, src, dst, IpProto::kTcp,
                    hdr_size + payload.size_bytes());
  sum.add(w.written(start));  // header + options; checksum field still zero
  for (std::size_t i = 0; i < payload.count(); ++i) {
    w.bytes(payload[i]);
    sum.add_stream(payload[i]);
  }
  w.patch_u16(cks, sum.finish());
}

std::vector<std::uint8_t> TcpHeader::serialize(
    const IpAddr& src, const IpAddr& dst,
    std::span<const std::uint8_t> payload) const {
  std::vector<std::uint8_t> out;
  out.reserve(size() + payload.size());
  cd::ByteWriter w(out);
  serialize_into(w, src, dst, payload);
  return out;
}

TcpHeader TcpHeader::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 20) throw ParseError("TcpHeader: short buffer");
  cd::ByteReader r(data, "TcpHeader");
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::size_t hdr_size = static_cast<std::size_t>(r.u8() >> 4) * 4;
  if (hdr_size < 20 || hdr_size > data.size()) {
    throw ParseError("TcpHeader: bad data offset");
  }
  const std::uint8_t flag_bits = r.u8();
  h.flags.fin = flag_bits & 0x01;
  h.flags.syn = flag_bits & 0x02;
  h.flags.rst = flag_bits & 0x04;
  h.flags.psh = flag_bits & 0x08;
  h.flags.ack = flag_bits & 0x10;
  h.window = r.u16();
  r.skip(4);  // checksum + urgent pointer

  while (r.pos() < hdr_size) {
    const std::uint8_t kind = r.u8();
    if (kind == 0) break;  // EOL
    if (kind == 1) {
      h.options.push_back({TcpOptionKind::kNop, 0});
      continue;
    }
    if (r.pos() >= hdr_size) throw ParseError("TcpHeader: truncated option");
    const std::uint8_t len = r.u8();
    // `len` counts the kind and length octets themselves.
    if (len < 2 || r.pos() - 2 + len > hdr_size) {
      throw ParseError("TcpHeader: bad option length");
    }
    cd::ByteReader opt(r.bytes(len - 2), "TcpHeader");
    switch (static_cast<TcpOptionKind>(kind)) {
      case TcpOptionKind::kMss:
        if (len != 4) throw ParseError("TcpHeader: bad MSS option");
        h.options.push_back({TcpOptionKind::kMss, opt.u16()});
        break;
      case TcpOptionKind::kWindowScale:
        if (len != 3) throw ParseError("TcpHeader: bad WS option");
        h.options.push_back({TcpOptionKind::kWindowScale, opt.u8()});
        break;
      case TcpOptionKind::kSackPermitted:
        if (len != 2) throw ParseError("TcpHeader: bad SACK option");
        h.options.push_back({TcpOptionKind::kSackPermitted, 0});
        break;
      case TcpOptionKind::kTimestamp:
        if (len != 10) throw ParseError("TcpHeader: bad TS option");
        h.options.push_back({TcpOptionKind::kTimestamp, opt.u32()});
        break;
      default:
        // Unknown option: skip (not part of our fingerprint alphabet).
        break;
    }
  }
  return h;
}

}  // namespace cd::net
