#include "net/headers.h"

#include "net/checksum.h"
#include "util/error.h"

namespace cd::net {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> d, std::size_t off) {
  return static_cast<std::uint16_t>((d[off] << 8) | d[off + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> d, std::size_t off) {
  return (static_cast<std::uint32_t>(get_u16(d, off)) << 16) |
         get_u16(d, off + 2);
}

// Pseudo-header contribution for UDP/TCP checksums (v4 and v6 forms).
void add_pseudo_header(Checksum& sum, const IpAddr& src, const IpAddr& dst,
                       IpProto proto, std::size_t l4_length) {
  const auto sb = src.to_bytes();
  const auto db = dst.to_bytes();
  sum.add(sb);
  sum.add(db);
  if (src.is_v4()) {
    sum.add_word(static_cast<std::uint16_t>(proto));
    sum.add_word(static_cast<std::uint16_t>(l4_length));
  } else {
    // v6 pseudo-header uses 32-bit length and next-header fields.
    sum.add_word(static_cast<std::uint16_t>(l4_length >> 16));
    sum.add_word(static_cast<std::uint16_t>(l4_length));
    sum.add_word(0);
    sum.add_word(static_cast<std::uint16_t>(proto));
  }
}

}  // namespace

std::vector<std::uint8_t> Ipv4Header::serialize() const {
  CD_ENSURE(src.is_v4() && dst.is_v4(), "Ipv4Header: non-v4 address");
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(tos);
  put_u16(out, total_length);
  put_u16(out, identification);
  put_u16(out, dont_fragment ? 0x4000 : 0x0000);
  out.push_back(ttl);
  out.push_back(static_cast<std::uint8_t>(protocol));
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, src.v4_bits());
  put_u32(out, dst.v4_bits());
  const std::uint16_t sum = internet_checksum(out);
  out[10] = static_cast<std::uint8_t>(sum >> 8);
  out[11] = static_cast<std::uint8_t>(sum);
  return out;
}

Ipv4Header Ipv4Header::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) throw ParseError("Ipv4Header: short buffer");
  if ((data[0] >> 4) != 4) throw ParseError("Ipv4Header: not version 4");
  if ((data[0] & 0x0F) != 5) throw ParseError("Ipv4Header: options unsupported");
  if (internet_checksum(data.subspan(0, kSize)) != 0) {
    throw ParseError("Ipv4Header: bad checksum");
  }
  Ipv4Header h;
  h.tos = data[1];
  h.total_length = get_u16(data, 2);
  h.identification = get_u16(data, 4);
  h.dont_fragment = (get_u16(data, 6) & 0x4000) != 0;
  h.ttl = data[8];
  h.protocol = static_cast<IpProto>(data[9]);
  h.src = IpAddr::v4(get_u32(data, 12));
  h.dst = IpAddr::v4(get_u32(data, 16));
  return h;
}

std::vector<std::uint8_t> Ipv6Header::serialize() const {
  CD_ENSURE(src.is_v6() && dst.is_v6(), "Ipv6Header: non-v6 address");
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  put_u32(out, (0x6u << 28) | (static_cast<std::uint32_t>(traffic_class) << 20) |
                   (flow_label & 0xFFFFF));
  put_u16(out, payload_length);
  out.push_back(static_cast<std::uint8_t>(next_header));
  out.push_back(hop_limit);
  for (std::uint8_t b : src.to_bytes()) out.push_back(b);
  for (std::uint8_t b : dst.to_bytes()) out.push_back(b);
  return out;
}

Ipv6Header Ipv6Header::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) throw ParseError("Ipv6Header: short buffer");
  const std::uint32_t first = get_u32(data, 0);
  if ((first >> 28) != 6) throw ParseError("Ipv6Header: not version 6");
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>(first >> 20);
  h.flow_label = first & 0xFFFFF;
  h.payload_length = get_u16(data, 4);
  h.next_header = static_cast<IpProto>(data[6]);
  h.hop_limit = data[7];
  h.src = IpAddr::v6(
      (static_cast<std::uint64_t>(get_u32(data, 8)) << 32) | get_u32(data, 12),
      (static_cast<std::uint64_t>(get_u32(data, 16)) << 32) | get_u32(data, 20));
  h.dst = IpAddr::v6(
      (static_cast<std::uint64_t>(get_u32(data, 24)) << 32) | get_u32(data, 28),
      (static_cast<std::uint64_t>(get_u32(data, 32)) << 32) | get_u32(data, 36));
  return h;
}

std::vector<std::uint8_t> UdpHeader::serialize(
    const IpAddr& src, const IpAddr& dst,
    std::span<const std::uint8_t> payload) const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize + payload.size());
  put_u16(out, src_port);
  put_u16(out, dst_port);
  const std::uint16_t len =
      length ? length : static_cast<std::uint16_t>(kSize + payload.size());
  put_u16(out, len);
  put_u16(out, 0);  // checksum placeholder
  out.insert(out.end(), payload.begin(), payload.end());

  Checksum sum;
  add_pseudo_header(sum, src, dst, IpProto::kUdp, len);
  sum.add(out);
  std::uint16_t cs = sum.finish();
  if (cs == 0) cs = 0xFFFF;  // RFC 768: zero transmitted as all-ones
  out[6] = static_cast<std::uint8_t>(cs >> 8);
  out[7] = static_cast<std::uint8_t>(cs);
  return out;
}

UdpHeader UdpHeader::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) throw ParseError("UdpHeader: short buffer");
  UdpHeader h;
  h.src_port = get_u16(data, 0);
  h.dst_port = get_u16(data, 2);
  h.length = get_u16(data, 4);
  if (h.length < kSize || h.length > data.size()) {
    throw ParseError("UdpHeader: bad length");
  }
  return h;
}

std::size_t TcpHeader::size() const {
  std::size_t opt_bytes = 0;
  for (const TcpOption& o : options) {
    switch (o.kind) {
      case TcpOptionKind::kEol:
      case TcpOptionKind::kNop:
        opt_bytes += 1;
        break;
      case TcpOptionKind::kMss:
        opt_bytes += 4;
        break;
      case TcpOptionKind::kWindowScale:
        opt_bytes += 3;
        break;
      case TcpOptionKind::kSackPermitted:
        opt_bytes += 2;
        break;
      case TcpOptionKind::kTimestamp:
        opt_bytes += 10;
        break;
    }
  }
  // Options padded to a 4-byte boundary.
  return 20 + ((opt_bytes + 3) / 4) * 4;
}

std::vector<std::uint8_t> TcpHeader::serialize(
    const IpAddr& src, const IpAddr& dst,
    std::span<const std::uint8_t> payload) const {
  std::vector<std::uint8_t> out;
  const std::size_t hdr_size = size();
  out.reserve(hdr_size + payload.size());
  put_u16(out, src_port);
  put_u16(out, dst_port);
  put_u32(out, seq);
  put_u32(out, ack);
  const std::uint8_t data_offset = static_cast<std::uint8_t>(hdr_size / 4);
  out.push_back(static_cast<std::uint8_t>(data_offset << 4));
  std::uint8_t flag_bits = 0;
  if (flags.fin) flag_bits |= 0x01;
  if (flags.syn) flag_bits |= 0x02;
  if (flags.rst) flag_bits |= 0x04;
  if (flags.psh) flag_bits |= 0x08;
  if (flags.ack) flag_bits |= 0x10;
  out.push_back(flag_bits);
  put_u16(out, window);
  put_u16(out, 0);  // checksum placeholder
  put_u16(out, 0);  // urgent pointer

  for (const TcpOption& o : options) {
    switch (o.kind) {
      case TcpOptionKind::kEol:
        out.push_back(0);
        break;
      case TcpOptionKind::kNop:
        out.push_back(1);
        break;
      case TcpOptionKind::kMss:
        out.push_back(2);
        out.push_back(4);
        put_u16(out, static_cast<std::uint16_t>(o.value));
        break;
      case TcpOptionKind::kWindowScale:
        out.push_back(3);
        out.push_back(3);
        out.push_back(static_cast<std::uint8_t>(o.value));
        break;
      case TcpOptionKind::kSackPermitted:
        out.push_back(4);
        out.push_back(2);
        break;
      case TcpOptionKind::kTimestamp:
        out.push_back(8);
        out.push_back(10);
        put_u32(out, o.value);
        put_u32(out, 0);  // echo reply
        break;
    }
  }
  while (out.size() < hdr_size) out.push_back(0);  // EOL padding
  out.insert(out.end(), payload.begin(), payload.end());

  Checksum sum;
  add_pseudo_header(sum, src, dst, IpProto::kTcp, out.size());
  sum.add(out);
  const std::uint16_t cs = sum.finish();
  out[16] = static_cast<std::uint8_t>(cs >> 8);
  out[17] = static_cast<std::uint8_t>(cs);
  return out;
}

TcpHeader TcpHeader::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 20) throw ParseError("TcpHeader: short buffer");
  TcpHeader h;
  h.src_port = get_u16(data, 0);
  h.dst_port = get_u16(data, 2);
  h.seq = get_u32(data, 4);
  h.ack = get_u32(data, 8);
  const std::size_t hdr_size = static_cast<std::size_t>(data[12] >> 4) * 4;
  if (hdr_size < 20 || hdr_size > data.size()) {
    throw ParseError("TcpHeader: bad data offset");
  }
  const std::uint8_t flag_bits = data[13];
  h.flags.fin = flag_bits & 0x01;
  h.flags.syn = flag_bits & 0x02;
  h.flags.rst = flag_bits & 0x04;
  h.flags.psh = flag_bits & 0x08;
  h.flags.ack = flag_bits & 0x10;
  h.window = get_u16(data, 14);

  std::size_t off = 20;
  while (off < hdr_size) {
    const std::uint8_t kind = data[off];
    if (kind == 0) break;  // EOL
    if (kind == 1) {
      h.options.push_back({TcpOptionKind::kNop, 0});
      ++off;
      continue;
    }
    if (off + 1 >= hdr_size) throw ParseError("TcpHeader: truncated option");
    const std::uint8_t len = data[off + 1];
    if (len < 2 || off + len > hdr_size) {
      throw ParseError("TcpHeader: bad option length");
    }
    switch (static_cast<TcpOptionKind>(kind)) {
      case TcpOptionKind::kMss:
        if (len != 4) throw ParseError("TcpHeader: bad MSS option");
        h.options.push_back({TcpOptionKind::kMss, get_u16(data, off + 2)});
        break;
      case TcpOptionKind::kWindowScale:
        if (len != 3) throw ParseError("TcpHeader: bad WS option");
        h.options.push_back({TcpOptionKind::kWindowScale, data[off + 2]});
        break;
      case TcpOptionKind::kSackPermitted:
        if (len != 2) throw ParseError("TcpHeader: bad SACK option");
        h.options.push_back({TcpOptionKind::kSackPermitted, 0});
        break;
      case TcpOptionKind::kTimestamp:
        if (len != 10) throw ParseError("TcpHeader: bad TS option");
        h.options.push_back({TcpOptionKind::kTimestamp, get_u32(data, off + 2)});
        break;
      default:
        // Unknown option: skip (not part of our fingerprint alphabet).
        break;
    }
    off += len;
  }
  return h;
}

}  // namespace cd::net
