// Internet checksum (RFC 1071) used by IPv4/UDP/TCP headers.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace cd::net {

namespace detail {

/// Sum of the big-endian 16-bit words in the even-length prefix of `data`
/// (a trailing odd byte is ignored — callers pad it). Reference scalar loop.
[[nodiscard]] std::uint64_t be_word_sum_scalar(
    std::span<const std::uint8_t> data);

/// Same contract as be_word_sum_scalar, but routed through the widest SIMD
/// path the CPU supports (AVX2 on x86-64) for large spans. The returned
/// 64-bit value may differ from the scalar sum, but is always congruent to
/// it mod 0xFFFF and zero exactly when it is zero — i.e. fold16() of both
/// agrees, which is all the ones'-complement checksum observes.
[[nodiscard]] std::uint64_t be_word_sum(std::span<const std::uint8_t> data);

/// RFC 1071 fold of a 64-bit partial sum to 16 bits (result in [0, 0xFFFF];
/// 0 only for a zero sum).
[[nodiscard]] constexpr std::uint16_t fold16(std::uint64_t s) {
  while ((s >> 16) != 0) s = (s & 0xFFFF) + (s >> 16);
  return static_cast<std::uint16_t>(s);
}

}  // namespace detail

/// Incremental ones'-complement sum accumulator. Fold with finish().
class Checksum {
 public:
  /// Adds bytes; an odd trailing byte is padded as the high octet of a word.
  void add(std::span<const std::uint8_t> data);

  /// Adds bytes that CONTINUE a logical stream split across spans: an odd
  /// trailing byte is held pending and paired with the first byte of the
  /// next add_stream() call, so summing a span chain piecewise equals
  /// summing its concatenation. finish() pads any dangling pending byte.
  /// Do not interleave with add()/add_word() while a byte is pending.
  void add_stream(std::span<const std::uint8_t> data);

  /// Adds every span of a chain via add_stream (single logical pass).
  void add_stream(const cd::ConstSpans& chain);

  /// Adds the region written through `w` starting at writer-relative `from`
  /// (the ByteWriter's checksummable-region view).
  void add_written(const cd::ByteWriter& w, std::size_t from = 0);

  /// Adds one 16-bit word in host order.
  void add_word(std::uint16_t word);

  /// Final folded ones'-complement checksum (pads a pending stream byte).
  [[nodiscard]] std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
  std::int16_t pending_ = -1;  // high octet awaiting its pair, or -1
};

/// One-shot checksum over a buffer.
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data);

}  // namespace cd::net
