#include "net/packet.h"

#include "util/error.h"

namespace cd::net {

void Packet::serialize_into(cd::ByteWriter& w) const {
  serialize_into(w, cd::ConstSpans(payload));
}

void Packet::serialize_into(cd::ByteWriter& w,
                            const cd::ConstSpans& payload_chain) const {
  CD_ENSURE(src.family() == dst.family(), "Packet: mixed address families");

  // The IP header carries the L4 length, so compute it up front and write
  // straight through — no intermediate L4 buffer.
  std::size_t l4_size;
  TcpHeader tcp;
  if (proto == IpProto::kUdp) {
    l4_size = UdpHeader::kSize + payload_chain.size_bytes();
  } else {
    tcp.src_port = src_port;
    tcp.dst_port = dst_port;
    tcp.seq = tcp_seq;
    tcp.ack = tcp_ack;
    tcp.flags = tcp_flags;
    tcp.window = tcp_window;
    tcp.options = tcp_options;
    l4_size = tcp.size() + payload_chain.size_bytes();
  }

  if (is_v4()) {
    Ipv4Header ip;
    ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + l4_size);
    ip.ttl = ttl;
    ip.protocol = proto;
    ip.src = src;
    ip.dst = dst;
    w.reserve(w.size() + Ipv4Header::kSize + l4_size);
    ip.serialize_into(w);
  } else {
    Ipv6Header ip;
    ip.payload_length = static_cast<std::uint16_t>(l4_size);
    ip.next_header = proto;
    ip.hop_limit = ttl;
    ip.src = src;
    ip.dst = dst;
    w.reserve(w.size() + Ipv6Header::kSize + l4_size);
    ip.serialize_into(w);
  }

  if (proto == IpProto::kUdp) {
    UdpHeader udp;
    udp.src_port = src_port;
    udp.dst_port = dst_port;
    udp.serialize_into(w, src, dst, payload_chain);
  } else {
    tcp.serialize_into(w, src, dst, payload_chain);
  }
}

std::vector<std::uint8_t> Packet::serialize() const {
  std::vector<std::uint8_t> out = cd::BufferPool::acquire();
  cd::ByteWriter w(out);
  serialize_into(w);
  return out;
}

Packet Packet::parse(std::span<const std::uint8_t> wire) {
  if (wire.empty()) throw ParseError("Packet: empty buffer");
  cd::ByteReader r(wire, "Packet");
  Packet p;
  std::span<const std::uint8_t> l4;
  const int version = wire[0] >> 4;
  if (version == 4) {
    const Ipv4Header ip = Ipv4Header::parse(r);
    if (ip.total_length < Ipv4Header::kSize ||
        ip.total_length > wire.size()) {
      throw ParseError("Packet: truncated v4 datagram");
    }
    p.src = ip.src;
    p.dst = ip.dst;
    p.proto = ip.protocol;
    p.ttl = ip.ttl;
    l4 = r.bytes(ip.total_length - Ipv4Header::kSize);
  } else if (version == 6) {
    const Ipv6Header ip = Ipv6Header::parse(r);
    if (Ipv6Header::kSize + ip.payload_length > wire.size()) {
      throw ParseError("Packet: truncated v6 datagram");
    }
    p.src = ip.src;
    p.dst = ip.dst;
    p.proto = ip.next_header;
    p.ttl = ip.hop_limit;
    l4 = r.bytes(ip.payload_length);
  } else {
    throw ParseError("Packet: unknown IP version");
  }

  if (p.proto == IpProto::kUdp) {
    const UdpHeader udp = UdpHeader::parse(l4);
    p.src_port = udp.src_port;
    p.dst_port = udp.dst_port;
    p.payload.assign(l4.begin() + UdpHeader::kSize,
                     l4.begin() + udp.length);
  } else if (p.proto == IpProto::kTcp) {
    const TcpHeader tcp = TcpHeader::parse(l4);
    p.src_port = tcp.src_port;
    p.dst_port = tcp.dst_port;
    p.tcp_seq = tcp.seq;
    p.tcp_ack = tcp.ack;
    p.tcp_flags = tcp.flags;
    p.tcp_window = tcp.window;
    p.tcp_options = tcp.options;
    // Use the on-wire data offset, not tcp.size(): parsing drops unknown
    // options, so the reconstructed size could disagree with the original.
    const std::size_t hdr = static_cast<std::size_t>(l4[12] >> 4) * 4;
    p.payload.assign(l4.begin() + static_cast<std::ptrdiff_t>(hdr), l4.end());
  } else {
    throw ParseError("Packet: unsupported protocol");
  }
  return p;
}

Packet make_udp(const IpAddr& src, std::uint16_t src_port, const IpAddr& dst,
                std::uint16_t dst_port, std::vector<std::uint8_t> payload,
                std::uint8_t ttl) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.proto = IpProto::kUdp;
  p.src_port = src_port;
  p.dst_port = dst_port;
  p.ttl = ttl;
  p.payload = std::move(payload);
  return p;
}

Packet make_tcp(const IpAddr& src, std::uint16_t src_port, const IpAddr& dst,
                std::uint16_t dst_port, TcpFlags flags,
                std::vector<std::uint8_t> payload, std::uint8_t ttl) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.proto = IpProto::kTcp;
  p.src_port = src_port;
  p.dst_port = dst_port;
  p.tcp_flags = flags;
  p.ttl = ttl;
  p.payload = std::move(payload);
  return p;
}

}  // namespace cd::net
