// Minimal unsigned 128-bit integer for IPv6 address arithmetic.
#pragma once

#include <cstdint>
#include <functional>

namespace cd::net {

/// Unsigned 128-bit value with just enough arithmetic for address math:
/// add/sub, shifts, bitwise ops, and comparisons. Stored big-half/low-half.
struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr U128() = default;
  constexpr U128(std::uint64_t hi_, std::uint64_t lo_) : hi(hi_), lo(lo_) {}
  constexpr explicit U128(std::uint64_t v) : hi(0), lo(v) {}

  friend constexpr bool operator==(const U128&, const U128&) = default;

  friend constexpr bool operator<(const U128& a, const U128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
  friend constexpr bool operator>(const U128& a, const U128& b) { return b < a; }
  friend constexpr bool operator<=(const U128& a, const U128& b) {
    return !(b < a);
  }
  friend constexpr bool operator>=(const U128& a, const U128& b) {
    return !(a < b);
  }

  friend constexpr U128 operator+(const U128& a, const U128& b) {
    U128 r;
    r.lo = a.lo + b.lo;
    r.hi = a.hi + b.hi + (r.lo < a.lo ? 1 : 0);
    return r;
  }
  friend constexpr U128 operator-(const U128& a, const U128& b) {
    U128 r;
    r.lo = a.lo - b.lo;
    r.hi = a.hi - b.hi - (a.lo < b.lo ? 1 : 0);
    return r;
  }
  friend constexpr U128 operator&(const U128& a, const U128& b) {
    return {a.hi & b.hi, a.lo & b.lo};
  }
  friend constexpr U128 operator|(const U128& a, const U128& b) {
    return {a.hi | b.hi, a.lo | b.lo};
  }
  friend constexpr U128 operator^(const U128& a, const U128& b) {
    return {a.hi ^ b.hi, a.lo ^ b.lo};
  }
  friend constexpr U128 operator~(const U128& a) { return {~a.hi, ~a.lo}; }

  friend constexpr U128 operator<<(const U128& a, int n) {
    if (n == 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {a.lo << (n - 64), 0};
    return {(a.hi << n) | (a.lo >> (64 - n)), a.lo << n};
  }
  friend constexpr U128 operator>>(const U128& a, int n) {
    if (n == 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {0, a.hi >> (n - 64)};
    return {a.hi >> n, (a.lo >> n) | (a.hi << (64 - n))};
  }
};

/// A /len network mask as a U128 (high `len` bits set).
constexpr U128 mask128(int len) {
  if (len <= 0) return {};
  if (len >= 128) return {~0ULL, ~0ULL};
  return ~(U128{~0ULL, ~0ULL} >> len);
}

struct U128Hash {
  std::size_t operator()(const U128& v) const noexcept {
    // 64-bit mix of the two halves.
    std::uint64_t x = v.hi * 0x9E3779B97F4A7C15ULL ^ v.lo;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace cd::net
