// Special-purpose IP address registries (RFC 6890 and friends).
//
// The paper excludes ~4M DITL source addresses designated "special purpose"
// by IANA; this module reproduces that exclusion logic.
#pragma once

#include <string_view>
#include <vector>

#include "net/ip.h"

namespace cd::net {

/// True if `addr` falls in any IANA special-purpose registry entry
/// (private, loopback, link-local, documentation, multicast, reserved, ...).
[[nodiscard]] bool is_special_purpose(const IpAddr& addr);

/// RFC 1918 (v4) private space.
[[nodiscard]] bool is_private_v4(const IpAddr& addr);

/// RFC 4193 unique-local (fc00::/7).
[[nodiscard]] bool is_unique_local_v6(const IpAddr& addr);

/// 127.0.0.0/8 or ::1.
[[nodiscard]] bool is_loopback(const IpAddr& addr);

/// True if the address could never appear in the public routing table
/// (special purpose, loopback, multicast, unspecified).
[[nodiscard]] bool is_unroutable(const IpAddr& addr);

/// The registry entries for a family, for enumeration in tests/docs.
[[nodiscard]] const std::vector<Prefix>& special_purpose_registry(
    IpFamily family);

}  // namespace cd::net
