// Wire-format IP/UDP/TCP headers with serialization and parsing.
//
// These carry the fields p0f-style OS fingerprinting depends on (TTL,
// window size, MSS, option ordering), and are exercised end-to-end by the
// packet layer and the fingerprinting analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ip.h"
#include "util/bytes.h"

namespace cd::net {

enum class IpProto : std::uint8_t { kTcp = 6, kUdp = 17 };

/// IPv4 header (no options support; IHL always 5).
struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  IpAddr src;
  IpAddr dst;

  static constexpr std::size_t kSize = 20;

  /// Appends the header (with a correct checksum) to `w`.
  void serialize_into(cd::ByteWriter& w) const;

  /// Serializes with a correct header checksum.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Consumes kSize bytes from `r`, verifying the checksum; throws
  /// cd::ParseError on bad input.
  [[nodiscard]] static Ipv4Header parse(cd::ByteReader& r);
  [[nodiscard]] static Ipv4Header parse(std::span<const std::uint8_t> data);
};

/// IPv6 fixed header (no extension headers).
struct Ipv6Header {
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;
  std::uint16_t payload_length = 0;
  IpProto next_header = IpProto::kUdp;
  std::uint8_t hop_limit = 64;
  IpAddr src;
  IpAddr dst;

  static constexpr std::size_t kSize = 40;

  void serialize_into(cd::ByteWriter& w) const;
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Ipv6Header parse(cd::ByteReader& r);
  [[nodiscard]] static Ipv6Header parse(std::span<const std::uint8_t> data);
};

/// UDP header; checksum computed over the pseudo-header + payload.
struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload

  static constexpr std::size_t kSize = 8;

  /// Appends header + payload with the pseudo-header checksum filled in.
  /// The chain overload gathers a scatter payload (e.g. length prefix +
  /// pooled body) in one pass: each span is appended and checksummed once,
  /// with no coalescing copy beforehand.
  void serialize_into(cd::ByteWriter& w, const IpAddr& src, const IpAddr& dst,
                      const cd::ConstSpans& payload) const;
  void serialize_into(cd::ByteWriter& w, const IpAddr& src, const IpAddr& dst,
                      std::span<const std::uint8_t> payload) const {
    serialize_into(w, src, dst, cd::ConstSpans(payload));
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      const IpAddr& src, const IpAddr& dst,
      std::span<const std::uint8_t> payload) const;
  [[nodiscard]] static UdpHeader parse(std::span<const std::uint8_t> data);
};

/// TCP option kinds relevant to OS fingerprinting.
enum class TcpOptionKind : std::uint8_t {
  kEol = 0,
  kNop = 1,
  kMss = 2,
  kWindowScale = 3,
  kSackPermitted = 4,
  kTimestamp = 8,
};

struct TcpOption {
  TcpOptionKind kind = TcpOptionKind::kNop;
  // Meaning depends on kind: MSS value, window-scale shift, or TS value.
  std::uint32_t value = 0;

  friend bool operator==(const TcpOption&, const TcpOption&) = default;
};

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

/// TCP header with the option list serialized in declaration order (option
/// ordering is a fingerprinting signal, so round-tripping preserves it).
struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;
  std::vector<TcpOption> options;

  [[nodiscard]] std::size_t size() const;

  /// Appends header + payload with the pseudo-header checksum filled in.
  /// The chain overload gathers a scatter payload in one pass (see
  /// UdpHeader::serialize_into).
  void serialize_into(cd::ByteWriter& w, const IpAddr& src, const IpAddr& dst,
                      const cd::ConstSpans& payload) const;
  void serialize_into(cd::ByteWriter& w, const IpAddr& src, const IpAddr& dst,
                      std::span<const std::uint8_t> payload) const {
    serialize_into(w, src, dst, cd::ConstSpans(payload));
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      const IpAddr& src, const IpAddr& dst,
      std::span<const std::uint8_t> payload) const;
  [[nodiscard]] static TcpHeader parse(std::span<const std::uint8_t> data);
};

}  // namespace cd::net
