#include "net/ip.h"

#include <algorithm>
#include <cstdio>

#include "util/error.h"
#include "util/str.h"

namespace cd::net {
namespace {

std::optional<std::uint32_t> parse_v4_bits(std::string_view s) {
  const auto parts = cd::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t bits = 0;
  for (const auto& p : parts) {
    if (p.empty() || p.size() > 3) return std::nullopt;
    const auto v = cd::parse_u64(p);
    if (!v || *v > 255) return std::nullopt;
    // Reject leading zeros ("01") which are ambiguous (octal in some stacks).
    if (p.size() > 1 && p[0] == '0') return std::nullopt;
    bits = (bits << 8) | static_cast<std::uint32_t>(*v);
  }
  return bits;
}

std::optional<U128> parse_v6_bits(std::string_view s) {
  // Split on "::" first (at most one occurrence allowed).
  const std::size_t dc = s.find("::");
  std::string_view head = s, tail;
  bool compressed = false;
  if (dc != std::string_view::npos) {
    if (s.find("::", dc + 1) != std::string_view::npos) return std::nullopt;
    compressed = true;
    head = s.substr(0, dc);
    tail = s.substr(dc + 2);
  }

  auto parse_groups =
      [](std::string_view part) -> std::optional<std::vector<std::uint16_t>> {
    std::vector<std::uint16_t> groups;
    if (part.empty()) return groups;
    const auto pieces = cd::split(part, ':');
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      const std::string& g = pieces[i];
      if (g.empty()) return std::nullopt;
      if (g.find('.') != std::string::npos) {
        // Embedded dotted-quad: only legal as the final piece.
        if (i + 1 != pieces.size()) return std::nullopt;
        const auto v4 = parse_v4_bits(g);
        if (!v4) return std::nullopt;
        groups.push_back(static_cast<std::uint16_t>(*v4 >> 16));
        groups.push_back(static_cast<std::uint16_t>(*v4 & 0xFFFF));
        continue;
      }
      if (g.size() > 4) return std::nullopt;
      const auto v = cd::parse_hex_u64(g);
      if (!v) return std::nullopt;
      groups.push_back(static_cast<std::uint16_t>(*v));
    }
    return groups;
  };

  const auto head_groups = parse_groups(head);
  if (!head_groups) return std::nullopt;
  std::vector<std::uint16_t> groups = *head_groups;
  if (compressed) {
    const auto tail_groups = parse_groups(tail);
    if (!tail_groups) return std::nullopt;
    const std::size_t fill = 8 - groups.size() - tail_groups->size();
    if (groups.size() + tail_groups->size() >= 8) return std::nullopt;
    groups.insert(groups.end(), fill, 0);
    groups.insert(groups.end(), tail_groups->begin(), tail_groups->end());
  }
  if (groups.size() != 8) return std::nullopt;

  U128 bits;
  for (int i = 0; i < 4; ++i) {
    bits.hi = (bits.hi << 16) | groups[static_cast<std::size_t>(i)];
  }
  for (int i = 4; i < 8; ++i) {
    bits.lo = (bits.lo << 16) | groups[static_cast<std::size_t>(i)];
  }
  return bits;
}

}  // namespace

std::optional<IpAddr> IpAddr::parse(std::string_view s) {
  if (s.find(':') != std::string_view::npos) {
    const auto bits = parse_v6_bits(s);
    if (!bits) return std::nullopt;
    return IpAddr::v6(bits->hi, bits->lo);
  }
  const auto bits = parse_v4_bits(s);
  if (!bits) return std::nullopt;
  return IpAddr::v4(*bits);
}

IpAddr IpAddr::must_parse(std::string_view s) {
  const auto a = parse(s);
  if (!a) throw ParseError("bad IP address: " + std::string(s));
  return *a;
}

std::string IpAddr::to_string() const {
  if (is_v4()) {
    const std::uint32_t b = v4_bits();
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (b >> 24) & 0xFF,
                  (b >> 16) & 0xFF, (b >> 8) & 0xFF, b & 0xFF);
    return buf;
  }
  std::uint16_t groups[8];
  for (int i = 0; i < 4; ++i) {
    groups[i] = static_cast<std::uint16_t>(bits_.hi >> (48 - 16 * i));
    groups[4 + i] = static_cast<std::uint16_t>(bits_.lo >> (48 - 16 * i));
  }
  // RFC 5952: compress the longest run (>= 2) of zero groups; first on tie.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
  }
  return out;
}

std::vector<std::uint8_t> IpAddr::to_bytes() const {
  std::vector<std::uint8_t> out;
  if (is_v4()) {
    const std::uint32_t b = v4_bits();
    out = {static_cast<std::uint8_t>(b >> 24), static_cast<std::uint8_t>(b >> 16),
           static_cast<std::uint8_t>(b >> 8), static_cast<std::uint8_t>(b)};
  } else {
    out.reserve(16);
    for (int i = 7; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(bits_.hi >> (8 * i)));
    }
    for (int i = 7; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(bits_.lo >> (8 * i)));
    }
  }
  return out;
}

IpAddr IpAddr::offset_by(std::uint64_t offset) const {
  if (is_v4()) {
    return IpAddr::v4(v4_bits() + static_cast<std::uint32_t>(offset));
  }
  const U128 sum = bits_ + U128{offset};
  return IpAddr::v6(sum.hi, sum.lo);
}

Prefix::Prefix(IpAddr base, int length) : length_(length) {
  CD_ENSURE(length >= 0 && length <= base.width(), "bad prefix length");
  const int shift = base.width() - length;
  U128 masked = base.bits();
  if (shift > 0) {
    masked = (masked >> shift) << shift;
  }
  base_ = IpAddr::from_bits(base.family(), masked);
}

std::optional<Prefix> Prefix::parse(std::string_view s) {
  const std::size_t slash = s.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IpAddr::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len = cd::parse_u64(s.substr(slash + 1));
  if (!len || static_cast<int>(*len) > addr->width()) return std::nullopt;
  return Prefix(*addr, static_cast<int>(*len));
}

Prefix Prefix::must_parse(std::string_view s) {
  const auto p = parse(s);
  if (!p) throw ParseError("bad prefix: " + std::string(s));
  return *p;
}

bool Prefix::contains(const IpAddr& addr) const {
  if (addr.family() != base_.family()) return false;
  const int shift = base_.width() - length_;
  if (shift >= base_.width()) return true;  // /0 contains everything
  return (addr.bits() >> shift) == (base_.bits() >> shift);
}

bool Prefix::contains(const Prefix& other) const {
  return other.length() >= length_ && contains(other.base());
}

IpAddr Prefix::last() const {
  const int shift = base_.width() - length_;
  U128 host_mask{};
  if (shift > 0) host_mask = ~((U128{~0ULL, ~0ULL} >> shift) << shift);
  if (shift >= 128) host_mask = U128{~0ULL, ~0ULL};
  U128 bits = base_.bits() | host_mask;
  if (base_.is_v4()) bits.lo &= 0xFFFFFFFFULL;
  return IpAddr::from_bits(base_.family(), bits);
}

IpAddr Prefix::nth(std::uint64_t index) const {
  return base_.offset_by(index);
}

std::uint64_t Prefix::size_clamped() const {
  const int host_bits = base_.width() - length_;
  if (host_bits >= 64) return UINT64_MAX;
  return 1ULL << host_bits;
}

std::vector<Prefix> Prefix::subdivide(int sublen, std::size_t max_out) const {
  CD_ENSURE(sublen >= length_ && sublen <= base_.width(),
            "subdivide: bad sublen");
  std::vector<Prefix> out;
  const int host_bits_per_sub = base_.width() - sublen;
  const std::uint64_t count = count_subprefixes(sublen);
  const std::uint64_t n = std::min<std::uint64_t>(count, max_out);
  U128 step = U128{1} << host_bits_per_sub;
  U128 cur = base_.bits();
  for (std::uint64_t i = 0; i < n; ++i) {
    out.emplace_back(IpAddr::from_bits(base_.family(), cur), sublen);
    cur = cur + step;
  }
  return out;
}

std::uint64_t Prefix::count_subprefixes(int sublen) const {
  const int diff = sublen - length_;
  if (diff < 0) return 0;
  if (diff >= 64) return UINT64_MAX;
  return 1ULL << diff;
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace cd::net
