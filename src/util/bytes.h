// Unified zero-copy wire codec: a bounds-checked cursor pair
// (ByteReader/ByteWriter) shared by every layer that touches wire bytes
// (net/headers, net/packet, dns/name, dns/message, util/pcap), plus a
// thread-local BufferPool that recycles vector capacity across packets.
// Network byte order (u16/u32) is the default; the *le variants serve
// little-endian file formats (pcap).
//
// Invariants:
//  - All ByteReader failures throw cd::ParseError; it never over-reads.
//  - ByteWriter only appends to (and patches within) the region written
//    since its construction, so nested writers over one buffer are safe
//    (e.g. a TCP length-prefix writer wrapping a DNS message writer).
//  - BufferPool free-lists are thread-local: under the sharded runner each
//    worker thread recycles its own buffers, no locks, no cross-shard
//    coupling (see DESIGN.md §5.8).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace cd {

/// Bounds-checked big-endian reading cursor over a borrowed byte span.
/// `what` names the protocol layer in ParseError messages.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data,
                      const char* what = "ByteReader")
      : data_(data), what_(what) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  /// The whole underlying span (for formats with intra-message pointers,
  /// e.g. DNS name compression).
  [[nodiscard]] std::span<const std::uint8_t> whole() const { return data_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    const auto v = static_cast<std::uint16_t>((data_[pos_] << 8) |
                                              data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }

  std::uint16_t u16le() {
    need(2);
    const auto v = static_cast<std::uint16_t>(data_[pos_] |
                                              (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32le() {
    const std::uint32_t lo = u16le();
    return lo | (static_cast<std::uint32_t>(u16le()) << 16);
  }

  std::uint64_t u64le() {
    const std::uint64_t lo = u32le();
    return lo | (static_cast<std::uint64_t>(u32le()) << 32);
  }

  /// Consumes and returns the next `n` bytes as a subspan (zero-copy).
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  void skip(std::size_t n) { need(n), pos_ += n; }

  [[nodiscard]] std::uint8_t peek_u8() const {
    need(1);
    return data_[pos_];
  }

  /// Absolute reposition within the span (bounds-checked).
  void seek(std::size_t pos) {
    if (pos > data_.size()) fail("seek out of bounds");
    pos_ = pos;
  }

  [[noreturn]] void fail(std::string_view msg) const {
    throw ParseError(std::string(what_) + ": " + std::string(msg));
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) fail("truncated input");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  const char* what_;
};

/// A short chain of constant byte spans viewed as one logical buffer —
/// the scatter-gather primitive behind streaming TCP framing. Wire payloads
/// are at most a short framing header plus a message body (two links);
/// the fixed inline capacity leaves headroom without ever allocating.
/// Empty spans are dropped on add(), so count() only covers real bytes.
class ConstSpans {
 public:
  static constexpr std::size_t kMaxSpans = 4;

  ConstSpans() = default;
  /*implicit*/ ConstSpans(std::span<const std::uint8_t> s) { add(s); }
  /*implicit*/ ConstSpans(const std::vector<std::uint8_t>& v)
      : ConstSpans(std::span<const std::uint8_t>(v)) {}

  void add(std::span<const std::uint8_t> s) {
    if (s.empty()) return;
    CD_ENSURE(count_ < kMaxSpans, "ConstSpans: chain overflow");
    spans_[count_++] = s;
    total_ += s.size();
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::size_t size_bytes() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> operator[](std::size_t i) const {
    return spans_[i];
  }

  /// The sub-chain covering logical bytes [offset, offset+len) — the TCP
  /// segmentation primitive: slicing a stream never copies payload bytes.
  /// Requires offset+len <= size_bytes().
  [[nodiscard]] ConstSpans subchain(std::size_t offset, std::size_t len) const {
    CD_ENSURE(offset + len <= total_, "ConstSpans: subchain out of range");
    ConstSpans out;
    for (std::size_t i = 0; i < count_ && len > 0; ++i) {
      const std::span<const std::uint8_t> s = spans_[i];
      if (offset >= s.size()) {
        offset -= s.size();
        continue;
      }
      const std::size_t n = std::min(len, s.size() - offset);
      out.add(s.subspan(offset, n));
      offset = 0;
      len -= n;
    }
    return out;
  }

  /// Appends the chain's bytes to `out` — the single gather copy a consumer
  /// that needs linear bytes pays, and the only place bytes are copied.
  void append_to(std::vector<std::uint8_t>& out) const {
    out.reserve(out.size() + total_);
    for (std::size_t i = 0; i < count_; ++i) {
      out.insert(out.end(), spans_[i].begin(), spans_[i].end());
    }
  }

 private:
  std::array<std::span<const std::uint8_t>, kMaxSpans> spans_{};
  std::size_t count_ = 0;
  std::size_t total_ = 0;
};

/// Big-endian appending cursor over a caller-owned vector. All offsets
/// (size(), patch positions, written()) are relative to the buffer length
/// at construction, so a writer constructed mid-buffer behaves as if its
/// message started at offset zero — which is exactly what DNS name
/// compression needs when a message is framed inside a larger buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out)
      : out_(out), base_(out.size()) {}

  /// Writer with an explicit base: offsets are relative to `base` even if
  /// `out` already holds bytes past it (used to continue an existing
  /// message, e.g. appending more compressed names to a partial encoding).
  ByteWriter(std::vector<std::uint8_t>& out, std::size_t base)
      : out_(out), base_(base) {}

  /// Bytes written through this writer (== current message length).
  [[nodiscard]] std::size_t size() const { return out_.size() - base_; }

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }

  void u16le(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32le(std::uint32_t v) {
    u16le(static_cast<std::uint16_t>(v));
    u16le(static_cast<std::uint16_t>(v >> 16));
  }

  void u64le(std::uint64_t v) {
    u32le(static_cast<std::uint32_t>(v));
    u32le(static_cast<std::uint32_t>(v >> 32));
  }

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  void text(std::string_view s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void fill(std::size_t n, std::uint8_t value = 0) {
    out_.insert(out_.end(), n, value);
  }

  /// Gather-writes a span chain (one reserve, then per-span appends).
  void gather(const ConstSpans& chain) {
    reserve(size() + chain.size_bytes());
    for (std::size_t i = 0; i < chain.count(); ++i) bytes(chain[i]);
  }

  /// Writes a u16 placeholder and returns its writer-relative position for a
  /// later patch_u16 (checksum / length / RDLENGTH backfill).
  [[nodiscard]] std::size_t reserve_u16() {
    const std::size_t pos = size();
    u16(0);
    return pos;
  }

  void patch_u16(std::size_t pos, std::uint16_t v) {
    out_[base_ + pos] = static_cast<std::uint8_t>(v >> 8);
    out_[base_ + pos + 1] = static_cast<std::uint8_t>(v);
  }

  /// The checksummable region written through this writer, from
  /// writer-relative `from` to the current end.
  [[nodiscard]] std::span<const std::uint8_t> written(std::size_t from = 0)
      const {
    return std::span<const std::uint8_t>(out_).subspan(base_ + from);
  }

  void reserve(std::size_t n) { out_.reserve(base_ + n); }

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t base_;
};

/// An owned scatter-gather payload: a short inline framing header (e.g. the
/// 2-byte DNS-over-TCP length prefix) chained in front of a (typically
/// pooled) body buffer. spans() views both without copying; the single
/// gather copy happens where the bytes hit the wire. Implicitly
/// constructible from a plain vector so linear-payload call sites keep
/// working unchanged.
struct GatherBuf {
  static constexpr std::size_t kMaxHeader = 4;

  std::array<std::uint8_t, kMaxHeader> header{};
  std::uint8_t header_len = 0;
  std::vector<std::uint8_t> body;

  GatherBuf() = default;
  /*implicit*/ GatherBuf(std::vector<std::uint8_t> b) : body(std::move(b)) {}

  void set_header(std::span<const std::uint8_t> h) {
    CD_ENSURE(h.size() <= kMaxHeader, "GatherBuf: header too long");
    std::copy(h.begin(), h.end(), header.begin());
    header_len = static_cast<std::uint8_t>(h.size());
  }

  [[nodiscard]] std::size_t size() const { return header_len + body.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// A borrowed view of the full logical payload; valid while *this lives
  /// unmodified.
  [[nodiscard]] ConstSpans spans() const {
    ConstSpans chain(std::span<const std::uint8_t>(header.data(), header_len));
    chain.add(body);
    return chain;
  }

  /// The gather copy: the full payload as one linear vector.
  [[nodiscard]] std::vector<std::uint8_t> to_vector() const {
    std::vector<std::uint8_t> out;
    spans().append_to(out);
    return out;
  }
};

/// Thread-local recycling pool for wire buffers. acquire() returns an empty
/// vector that usually still owns a previous packet's capacity; release()
/// hands capacity back. Each thread has its own free list (no locks), which
/// is safe under the sharded runner: a shard's event loop runs entirely on
/// one worker thread, so a buffer is acquired and released on the same
/// thread that owns the pool.
class BufferPool {
 public:
  /// An empty buffer, with recycled capacity when available.
  [[nodiscard]] static std::vector<std::uint8_t> acquire();

  /// Returns a buffer's capacity to this thread's pool. Oversized buffers
  /// and overflow beyond the pool cap are simply freed.
  static void release(std::vector<std::uint8_t>&& buf);

  /// Buffers currently idle in this thread's pool (introspection/tests).
  [[nodiscard]] static std::size_t idle_count();
};

}  // namespace cd
