// Minimal CSV writing for bench data dumps.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace cd {

/// Writes RFC 4180-style CSV: fields containing commas, quotes, or newlines
/// are quoted, embedded quotes doubled.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws cd::Error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);

  /// Returns the escaped form of one field (exposed for testing).
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
};

}  // namespace cd
