#include "util/table.h"

#include <algorithm>

namespace cd {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {}

void TextTable::set_align(std::size_t col, Align align) {
  if (col < aligns_.size()) aligns_[col] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_rule() {
  rows_.push_back(Row{{}, true});
}

std::string TextTable::to_string() const {
  const std::size_t ncols = headers_.size();
  std::vector<std::size_t> widths(ncols);
  for (std::size_t c = 0; c < ncols; ++c) widths[c] = headers_[c].size();
  for (const Row& r : rows_) {
    if (r.rule) continue;
    for (std::size_t c = 0; c < ncols; ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  auto pad = [&](const std::string& s, std::size_t c) {
    std::string out;
    const std::size_t fill = widths[c] - s.size();
    if (aligns_[c] == Align::kRight) out.append(fill, ' ');
    out += s;
    if (aligns_[c] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  auto rule_line = [&] {
    std::string out;
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) out += "-+-";
      out.append(widths[c], '-');
    }
    out += '\n';
    return out;
  };

  std::string out;
  for (std::size_t c = 0; c < ncols; ++c) {
    if (c) out += " | ";
    out += pad(headers_[c], c);
  }
  out += '\n';
  out += rule_line();
  for (const Row& r : rows_) {
    if (r.rule) {
      out += rule_line();
      continue;
    }
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) out += " | ";
      out += pad(r.cells[c], c);
    }
    out += '\n';
  }
  return out;
}

}  // namespace cd
