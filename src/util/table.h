// Plain-text table rendering for bench/report output.
#pragma once

#include <string>
#include <vector>

namespace cd {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders an aligned monospace table with a
/// header rule, suitable for terminal output that mirrors the paper's tables.
class TextTable {
 public:
  /// `headers` fixes the column count; extra cells in rows are dropped,
  /// missing cells render empty.
  explicit TextTable(std::vector<std::string> headers);

  /// Set per-column alignment (defaults to left).
  void set_align(std::size_t col, Align align);

  void add_row(std::vector<std::string> cells);

  /// A horizontal separator row.
  void add_rule();

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace cd
