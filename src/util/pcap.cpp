#include "util/pcap.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "util/bytes.h"
#include "util/error.h"

namespace cd::pcap {

namespace {

// Other well-known pcap magics we recognize only to reject with a precise
// message: byte-swapped classic, and nanosecond-resolution (both orders).
constexpr std::uint32_t kMagicMicrosSwapped = 0xD4B2C3A1;
constexpr std::uint32_t kMagicNanos = 0xA1B23C4D;
constexpr std::uint32_t kMagicNanosSwapped = 0x4D3CB2A1;

std::uint32_t checked_ts_sec(std::int64_t time_us) {
  CD_ENSURE(time_us >= 0, "pcap: negative capture timestamp");
  const std::int64_t sec = time_us / 1'000'000;
  CD_ENSURE(sec <= 0xFFFFFFFF, "pcap: capture timestamp overflows ts_sec");
  return static_cast<std::uint32_t>(sec);
}

}  // namespace

std::vector<std::uint8_t> Capture::to_pcap() const {
  CD_ENSURE(snaplen > 0, "pcap: snaplen must be positive");
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.reserve(kFileHeaderSize + records.size() * (kRecordHeaderSize + 64));
  w.u32le(kMagicMicros);
  w.u16le(kVersionMajor);
  w.u16le(kVersionMinor);
  w.u32le(0);  // thiszone: sim time is already "UTC"
  w.u32le(0);  // sigfigs: zero per the spec
  w.u32le(snaplen);
  w.u32le(linktype);
  for (const PcapRecord& rec : records) {
    const std::uint32_t incl =
        static_cast<std::uint32_t>(std::min<std::size_t>(rec.bytes.size(),
                                                         snaplen));
    w.u32le(checked_ts_sec(rec.time_us));
    w.u32le(static_cast<std::uint32_t>(rec.time_us % 1'000'000));
    w.u32le(incl);
    w.u32le(std::max(rec.orig_len, incl));
    w.bytes(std::span(rec.bytes).first(incl));
  }
  return out;
}

std::vector<std::uint8_t> Capture::to_index() const {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.reserve(kIndexHeaderSize + records.size() * kIndexEntrySize);
  w.u32le(kIndexMagic);
  w.u32le(static_cast<std::uint32_t>(records.size()));
  for (const PcapRecord& rec : records) {
    w.u64le(static_cast<std::uint64_t>(rec.time_us));
    w.u32le(std::max(rec.orig_len,
                     static_cast<std::uint32_t>(rec.bytes.size())));
    w.u8(rec.annotation);
  }
  return out;
}

Capture parse_pcap(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes, "pcap");
  const std::uint32_t magic = r.u32le();
  if (magic != kMagicMicros) {
    if (magic == kMagicMicrosSwapped || magic == kMagicNanosSwapped) {
      r.fail("byte-swapped capture (unsupported)");
    }
    if (magic == kMagicNanos) {
      r.fail("nanosecond-resolution capture (unsupported)");
    }
    r.fail("bad magic");
  }
  const std::uint16_t major = r.u16le();
  const std::uint16_t minor = r.u16le();
  if (major != kVersionMajor || minor != kVersionMinor) {
    r.fail("unsupported version");
  }
  r.skip(8);  // thiszone + sigfigs: ignored on read
  Capture capture;
  capture.snaplen = r.u32le();
  if (capture.snaplen == 0) r.fail("snaplen 0");
  capture.linktype = r.u32le();

  while (!r.done()) {
    PcapRecord rec;
    const std::uint32_t ts_sec = r.u32le();
    const std::uint32_t ts_usec = r.u32le();
    if (ts_usec >= 1'000'000) r.fail("ts_usec out of range");
    rec.time_us = static_cast<std::int64_t>(ts_sec) * 1'000'000 + ts_usec;
    const std::uint32_t incl_len = r.u32le();
    rec.orig_len = r.u32le();
    if (incl_len > capture.snaplen) r.fail("record length beyond snaplen");
    if (incl_len > rec.orig_len) r.fail("incl_len exceeds orig_len");
    if (incl_len > r.remaining()) r.fail("record length past end of file");
    const auto body = r.bytes(incl_len);
    rec.bytes.assign(body.begin(), body.end());
    capture.records.push_back(std::move(rec));
  }
  return capture;
}

namespace {

struct IndexEntry {
  std::int64_t time_us;
  std::uint32_t orig_len;
  std::uint8_t annotation;
};

std::vector<IndexEntry> parse_index(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes, "pcap-index");
  if (r.u32le() != kIndexMagic) r.fail("bad magic");
  const std::uint32_t count = r.u32le();
  // The index is exact-length by construction: trailing garbage is as
  // suspect as truncation.
  if (r.remaining() != static_cast<std::uint64_t>(count) * kIndexEntrySize) {
    r.fail("size inconsistent with record count");
  }
  std::vector<IndexEntry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    IndexEntry e;
    e.time_us = static_cast<std::int64_t>(r.u64le());
    e.orig_len = r.u32le();
    e.annotation = r.u8();
    entries.push_back(e);
  }
  return entries;
}

}  // namespace

Capture Capture::parse(std::span<const std::uint8_t> pcap_bytes,
                       std::span<const std::uint8_t> index_bytes) {
  Capture capture = parse_pcap(pcap_bytes);
  if (capture.linktype != kLinktypeRaw) {
    throw ParseError("pcap: capture is not LINKTYPE_RAW");
  }
  const std::vector<IndexEntry> entries = parse_index(index_bytes);
  if (entries.size() != capture.records.size()) {
    throw ParseError("pcap: record count disagrees with index (truncated?)");
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    PcapRecord& rec = capture.records[i];
    if (entries[i].time_us != rec.time_us ||
        entries[i].orig_len != rec.orig_len) {
      throw ParseError("pcap: index entry disagrees with record");
    }
    rec.annotation = entries[i].annotation;
  }
  return capture;
}

void canonicalize(Capture& capture) {
  std::sort(capture.records.begin(), capture.records.end(),
            [](const PcapRecord& a, const PcapRecord& b) {
              return std::tie(a.time_us, a.annotation, a.orig_len, a.bytes) <
                     std::tie(b.time_us, b.annotation, b.orig_len, b.bytes);
            });
}

Capture merge_captures(std::vector<Capture> parts) {
  Capture merged;
  bool first = true;
  for (Capture& part : parts) {
    if (first) {
      merged.snaplen = part.snaplen;
      merged.linktype = part.linktype;
      first = false;
    } else {
      CD_ENSURE(part.snaplen == merged.snaplen,
                "merge_captures: snaplen mismatch between shards");
      CD_ENSURE(part.linktype == merged.linktype,
                "merge_captures: linktype mismatch between shards");
    }
    merged.records.insert(merged.records.end(),
                          std::make_move_iterator(part.records.begin()),
                          std::make_move_iterator(part.records.end()));
  }
  canonicalize(merged);
  return merged;
}

void write_file(const std::string& path,
                std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw Error("pcap: cannot open " + path + " for writing");
  const std::size_t n =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = (n == bytes.size()) && std::fclose(f) == 0;
  if (!ok) throw Error("pcap: short write to " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw Error("pcap: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool ok = !std::ferror(f);
  std::fclose(f);
  if (!ok) throw Error("pcap: read error on " + path);
  return bytes;
}

void write_capture(const Capture& capture, const std::string& path) {
  write_file(path, capture.to_pcap());
  write_file(path + ".idx", capture.to_index());
}

}  // namespace cd::pcap
