#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace cd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ rotl(b, 32) ^ 0x9E3779B97F4A7C15ULL);
}

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t n) {
  CD_ENSURE(n > 0, "Rng::uniform(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  CD_ENSURE(lo <= hi, "Rng::range lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(u64());  // full 64-bit span
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::real() {
  return static_cast<double>(u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

double Rng::gaussian(double mean, double stddev) {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += real();
  return mean + (sum - 6.0) * stddev;
}

Rng Rng::split(std::uint64_t tag) {
  // Mix current state with the tag through SplitMix64 to derive a child seed.
  std::uint64_t x = s_[0] ^ rotl(tag, 32) ^ u64();
  return Rng(splitmix64(x));
}

Rng Rng::split(std::string_view tag) {
  return split(stable_hash(tag));
}

Rng Rng::substream(std::uint64_t seed, std::uint64_t index) {
  return Rng(hash_combine(seed, index));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  if (k >= n) return idx;
  // Partial Fisher-Yates: first k positions become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(uniform(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace cd
