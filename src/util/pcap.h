// Wire-level packet capture: a standard little-endian pcap file writer and
// a bounds-checked reader, plus the simulator's capture container.
//
// Format choices (DESIGN.md §5.9):
//  - Classic pcap (magic 0xA1B2C3D4, version 2.4), microsecond timestamps —
//    SimTime is already a microsecond count, so the capture clock is the sim
//    clock verbatim: ts_sec = t / 1e6, ts_usec = t % 1e6, epoch = experiment
//    start. Captures from equal seeds are byte-identical.
//  - LINKTYPE_RAW (101): records hold the packet's genuine IPv4/IPv6 wire
//    bytes (`Packet::serialize_into` output) with no synthetic link-layer
//    framing, so tcpdump/wireshark/p0f read the files directly.
//  - A sidecar index ("CDX1", little-endian) carries what pcap cannot: the
//    record count and a per-record annotation byte (the sim's DropReason).
//    Cross-validating pcap against index makes truncation detectable at
//    *every* byte: pcap alone cannot reject a file cut at a record boundary
//    (the format has no record count), the pair can.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cd::pcap {

inline constexpr std::uint32_t kMagicMicros = 0xA1B2C3D4;
inline constexpr std::uint16_t kVersionMajor = 2;
inline constexpr std::uint16_t kVersionMinor = 4;
inline constexpr std::uint32_t kLinktypeRaw = 101;  // raw IPv4/IPv6
inline constexpr std::uint32_t kDefaultSnaplen = 65535;
inline constexpr std::size_t kFileHeaderSize = 24;
inline constexpr std::size_t kRecordHeaderSize = 16;

inline constexpr std::uint32_t kIndexMagic = 0x31584443;  // "CDX1" LE
inline constexpr std::size_t kIndexHeaderSize = 8;
inline constexpr std::size_t kIndexEntrySize = 13;

/// One captured packet. `bytes` holds the captured (possibly snapped) wire
/// bytes; `orig_len` the packet's full on-the-wire length; `annotation` the
/// sidecar byte (a sim::DropReason — 0 means delivered).
struct PcapRecord {
  std::int64_t time_us = 0;
  std::uint32_t orig_len = 0;
  std::uint8_t annotation = 0;
  std::vector<std::uint8_t> bytes;

  friend bool operator==(const PcapRecord&, const PcapRecord&) = default;
};

/// An in-memory capture: what a Network tap accumulates and what the pcap +
/// index pair serializes. `linktype` is kLinktypeRaw for captures we write;
/// parse_pcap preserves whatever the file says.
struct Capture {
  std::uint32_t snaplen = kDefaultSnaplen;
  std::uint32_t linktype = kLinktypeRaw;
  std::vector<PcapRecord> records;

  /// Serializes the standard pcap file (header + records, little-endian,
  /// microsecond timestamps, records snapped to `snaplen`).
  [[nodiscard]] std::vector<std::uint8_t> to_pcap() const;

  /// Serializes the sidecar index (record count + per-record annotations).
  [[nodiscard]] std::vector<std::uint8_t> to_index() const;

  /// Strict inverse of to_pcap()/to_index(): parses both, cross-validates
  /// record count, timestamps and original lengths, and requires
  /// LINKTYPE_RAW. Throws cd::ParseError on any inconsistency — including a
  /// pcap truncated at a record boundary, which the index count exposes.
  [[nodiscard]] static Capture parse(std::span<const std::uint8_t> pcap_bytes,
                                     std::span<const std::uint8_t> index_bytes);

  friend bool operator==(const Capture&, const Capture&) = default;
};

/// Parses a standalone pcap file (no sidecar): bounds-checked, rejects bad
/// magic (including byte-swapped and nanosecond captures — unsupported),
/// snaplen 0, record lengths past EOF or beyond snaplen, and incl_len >
/// orig_len. Annotations come back 0. Accepts any linktype.
[[nodiscard]] Capture parse_pcap(std::span<const std::uint8_t> bytes);

/// Canonical record order: (time, annotation, orig_len, bytes). Identical
/// keys mean identical records, so the sorted byte serialization is unique
/// for a given record multiset — the property that makes serial and sharded
/// captures comparable byte-for-byte.
void canonicalize(Capture& capture);

/// Merges per-shard captures (taken in deterministic shard order) into one
/// canonical capture. All parts must agree on snaplen and linktype.
[[nodiscard]] Capture merge_captures(std::vector<Capture> parts);

// --- file I/O (the one subsystem that touches the filesystem) ---------------

/// Writes `bytes` to `path`, throwing cd::Error on failure.
void write_file(const std::string& path, std::span<const std::uint8_t> bytes);

/// Reads the whole file at `path`, throwing cd::Error on failure.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

/// Writes `capture` as `path` (pcap) plus `path + ".idx"` (sidecar index).
void write_capture(const Capture& capture, const std::string& path);

}  // namespace cd::pcap
