// Process memory accounting from /proc/self/status.
//
// The sharded campaign runner and the campaign-scale bench report peak RSS
// so the bounded-memory claim — shard count, not world size, bounds memory —
// is measurable. VmHWM is a process-lifetime high-water mark: it only ever
// grows, so "peak RSS of phase X" readings taken after earlier larger
// phases report the earlier peak.
#pragma once

#include <cstddef>

namespace cd {

/// Peak resident set size (VmHWM) in KiB; 0 when /proc is unavailable.
[[nodiscard]] std::size_t peak_rss_kb();

/// Current resident set size (VmRSS) in KiB; 0 when /proc is unavailable.
[[nodiscard]] std::size_t current_rss_kb();

/// Reads one "Field: N kB"-style line from a /proc status-format file and
/// returns N; 0 when the file is missing or the field absent. The parse the
/// two accessors above use, parameterized on the path so tests can feed it
/// crafted snapshots.
[[nodiscard]] std::size_t status_file_field_kb(const char* path,
                                               const char* field);

}  // namespace cd
