// Small string helpers used across modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cd {

/// Split `s` on every occurrence of `sep`; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Join pieces with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Parse an unsigned decimal integer; nullopt on any non-digit or overflow.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Parse hex (no 0x prefix); nullopt on invalid input or overflow.
[[nodiscard]] std::optional<std::uint64_t> parse_hex_u64(std::string_view s);

/// Format `value` as fixed-width zero-padded lowercase hex.
[[nodiscard]] std::string to_hex(std::uint64_t value, int width);

/// Human-friendly "12,345" formatting of a non-negative integer.
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// "12.3%" style percent of a ratio; `digits` decimal places.
[[nodiscard]] std::string percent(double numer, double denom, int digits = 1);

}  // namespace cd
