// Error handling primitives shared across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace cd {

/// Base class for all errors raised by the closeddoors library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when wire-format parsing fails (truncated/malformed input).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when a caller violates an API precondition.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

}  // namespace cd

/// Throws cd::InvariantError with location info when `cond` is false.
#define CD_ENSURE(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw ::cd::InvariantError(std::string(__FILE__) + ":" +            \
                                 std::to_string(__LINE__) + ": " + (msg)); \
    }                                                                     \
  } while (0)
