#include "util/rss.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cd {

std::size_t status_file_field_kb(const char* path, const char* field) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::size_t value = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      value = std::strtoull(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
}

std::size_t peak_rss_kb() {
  return status_file_field_kb("/proc/self/status", "VmHWM");
}

std::size_t current_rss_kb() {
  return status_file_field_kb("/proc/self/status", "VmRSS");
}

}  // namespace cd
