#include "util/rss.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cd {

namespace {

/// Reads one "Vm*: N kB" line from /proc/self/status.
std::size_t status_field_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::size_t value = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      value = std::strtoull(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

std::size_t peak_rss_kb() { return status_field_kb("VmHWM"); }

std::size_t current_rss_kb() { return status_field_kb("VmRSS"); }

}  // namespace cd
