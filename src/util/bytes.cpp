#include "util/bytes.h"

#include <utility>

namespace cd {
namespace {

// Keep a bounded number of idle buffers per thread, and refuse to hoard
// unusually large ones (a 64 KiB cap comfortably covers a max-size DNS
// message inside a full IP packet). The idle cap is sized to a full
// same-tick delivery burst — batched delivery releases every payload of a
// burst before the next one acquires — so steady-state bursts recycle
// instead of round-tripping through the allocator.
constexpr std::size_t kMaxIdle = 1024;
constexpr std::size_t kMaxPooledCapacity = 64 * 1024;

std::vector<std::vector<std::uint8_t>>& pool() {
  thread_local std::vector<std::vector<std::uint8_t>> idle;
  return idle;
}

}  // namespace

std::vector<std::uint8_t> BufferPool::acquire() {
  auto& idle = pool();
  if (idle.empty()) return {};
  std::vector<std::uint8_t> buf = std::move(idle.back());
  idle.pop_back();
  buf.clear();
  return buf;
}

void BufferPool::release(std::vector<std::uint8_t>&& buf) {
  auto& idle = pool();
  if (buf.capacity() == 0 || buf.capacity() > kMaxPooledCapacity ||
      idle.size() >= kMaxIdle) {
    return;  // let it free normally
  }
  idle.push_back(std::move(buf));
}

std::size_t BufferPool::idle_count() {
  return pool().size();
}

}  // namespace cd
