// Bump-pointer arena for flat SoA tables.
//
// The campaign plan (ditl/plan.h) keeps per-AS state as parallel columns
// indexed by dense AS id. Allocating every column out of one arena keeps the
// whole plan in a handful of large contiguous blocks — no per-column heap
// churn, no destructor walks — so a 62k-AS plan is a few memcpy-friendly
// slabs instead of tens of thousands of small allocations (cf. the node
// arena in tdns's dns-storage).
//
// Only trivially destructible element types are allowed: the arena frees
// memory wholesale and never runs destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace cd {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = std::size_t{1} << 20)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocates a value-initialized array of `n` elements, suitably aligned.
  /// The span stays valid for the arena's lifetime; elements are never
  /// destroyed individually.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (n == 0) return {};
    void* p = alloc_bytes(n * sizeof(T), alignof(T));
    // Value-initialize so padding and flag columns start zeroed.
    T* first = new (p) T[n]();
    return {first, n};
  }

  /// Total bytes handed out (excludes block slack).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }

  /// Frees every block and returns the arena to its freshly-constructed
  /// state. Invalidates every span alloc_array ever returned — strictly for
  /// scratch-arena reuse between independent passes, never while a consumer
  /// of the old columns is alive.
  void reset() {
    blocks_.clear();
    current_size_ = 0;
    used_ = 0;
    allocated_ = 0;
  }

 private:
  void* alloc_bytes(std::size_t size, std::size_t align) {
    std::size_t offset = (used_ + align - 1) & ~(align - 1);
    if (blocks_.empty() || offset + size > current_size_) {
      const std::size_t want = size + align > block_bytes_ ? size + align
                                                           : block_bytes_;
      blocks_.push_back(std::make_unique<std::byte[]>(want));
      current_size_ = want;
      used_ = 0;
      offset = 0;
      void* raw = blocks_.back().get();
      // Re-align within the fresh block (operator new[] guarantees only
      // fundamental alignment).
      std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(raw);
      const std::uintptr_t aligned = (addr + align - 1) & ~(align - 1);
      offset = static_cast<std::size_t>(aligned - addr);
    }
    void* p = blocks_.back().get() + offset;
    used_ = offset + size;
    allocated_ += size;
    return p;
  }

  std::size_t block_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::size_t current_size_ = 0;  // capacity of blocks_.back()
  std::size_t used_ = 0;          // bytes consumed in blocks_.back()
  std::size_t allocated_ = 0;
};

}  // namespace cd
