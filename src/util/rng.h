// Deterministic, splittable random number generation.
//
// All randomness in the library flows from a single seeded root Rng, split
// per subsystem, so any experiment is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace cd {

/// SplitMix64 finalizer: a stateless, high-quality 64-bit mixing function.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Combines two 64-bit values into a well-mixed third. Not commutative.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// FNV-1a over bytes. Stable across platforms and standard libraries
/// (unlike std::hash), so hash-derived random substreams reproduce
/// everywhere.
[[nodiscard]] std::uint64_t stable_hash(std::string_view s);

/// xoshiro256** PRNG with SplitMix64 seeding. Not cryptographic; chosen for
/// speed, quality, and a tiny state that is cheap to split.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t u64();

  /// Uniform in [0, n). Requires n > 0. Uses rejection sampling, unbiased.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double real();

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Approximately Gaussian via sum of uniforms (Irwin-Hall, n=12).
  [[nodiscard]] double gaussian(double mean, double stddev);

  /// Derive an independent child generator. The tag decorrelates children
  /// split from the same parent state.
  [[nodiscard]] Rng split(std::uint64_t tag);
  [[nodiscard]] Rng split(std::string_view tag);

  /// Child stream derived purely from (seed, index), with no parent state:
  /// unlike split(), the result depends only on the arguments, never on how
  /// many values were drawn before. This is how sharded runs derive
  /// substreams — indexed by a stable identity (shard index, AS, target),
  /// never by thread — so the stream an entity sees is independent of
  /// execution interleaving.
  [[nodiscard]] static Rng substream(std::uint64_t seed, std::uint64_t index);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly pick an element. Requires non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    CD_ENSURE(!v.empty(), "Rng::pick on empty vector");
    return v[static_cast<std::size_t>(uniform(v.size()))];
  }

  /// Sample k distinct indices from [0, n) (k may exceed n; then all n).
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace cd
