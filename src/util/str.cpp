#include "util/str.h"

#include <cctype>
#include <cstdio>

namespace cd {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

std::optional<std::uint64_t> parse_hex_u64(std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

std::string to_hex(std::uint64_t value, int width) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (int i = width - 1; i >= 0; --i) {
    out += kDigits[(value >> (4 * i)) & 0xF];
  }
  return out;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string percent(double numer, double denom, int digits) {
  if (denom == 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, 100.0 * numer / denom);
  return buf;
}

}  // namespace cd
