// End-to-end experiment orchestration: the paper's whole pipeline on a
// generated world — probe campaign, follow-ups, collection — in one call.
//
// This is the library's primary entry point:
//
//   auto world = cd::ditl::generate_world(cd::ditl::bench_world_spec());
//   cd::core::Experiment experiment(*world, {});
//   const cd::core::ExperimentResults& results = experiment.run();
//   auto summary = cd::analysis::summarize_dsav(results.records,
//                                               world->targets);
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "analysis/classify.h"
#include "attack/poison.h"
#include "ditl/world.h"
#include "scanner/analyst.h"
#include "scanner/collector.h"
#include "scanner/crosscheck.h"
#include "scanner/followup.h"
#include "scanner/prober.h"
#include "util/pcap.h"

namespace cd::core {

/// Wire-capture knobs for a campaign (ExperimentConfig::capture). The tap is
/// installed on the world's network for the duration of the run; the
/// resulting canonical capture lands in ExperimentResults::capture.
struct CaptureSpec {
  /// Record border/stack drops (annotated with their DropReason in the
  /// sidecar index), not just delivered packets.
  bool include_drops = true;
  /// Capture only the scanner's probe plane: packets physically originating
  /// in the vantage AS. This is the shard-invariant portion of the traffic
  /// (probe schedule and latency jitter are pure functions of stable
  /// identities), so probe-plane captures are byte-identical between serial
  /// and sharded runs; full captures additionally contain resolver traffic
  /// whose timing depends on shared-cache warmness, which sharding
  /// legitimately perturbs.
  bool probes_only = false;
  std::uint32_t snaplen = cd::pcap::kDefaultSnaplen;
};

struct ExperimentConfig {
  cd::scanner::ProbeConfig probe;
  cd::scanner::CollectorConfig collector;
  cd::scanner::FollowupConfig followup;
  /// When set, simulate IDS analysts replaying logged probes (§3.6.3).
  std::optional<cd::scanner::AnalystConfig> analyst;
  /// When set, run the Closed Resolver cross-check campaign (the per-/24
  /// prefix scanner, scanner/crosscheck.h) alongside the probe plane: both
  /// planes are scheduled before the single event-loop drain, so every
  /// cross-check start time stays a pure function of (seed, prefix) and the
  /// shard-differential digests hold for both planes at once. Off by
  /// default: the extra traffic legitimately perturbs timing-sensitive
  /// main-plane evidence (follow-up ports, analyst replays), so golden
  /// tables are pinned with the cross-check off.
  std::optional<cd::scanner::CrossCheckConfig> crosscheck;
  /// When set, export the campaign's wire traffic as a pcap capture.
  std::optional<CaptureSpec> capture;
  /// When set, run the off-path cache-poisoning attacker plane
  /// (attack/poison.h): an anycast-delegated subzone is grafted onto the
  /// experiment base zone, legacy resolver profiles get weak transaction-id
  /// sources (resolver::weak_txid), and a SpoofInjector races every
  /// non-forwarding resolver in this shard's target slice. Victims partition
  /// by AS exactly like targets, so per-shard poison records are disjoint
  /// and the realized outcome set is identical for any shard/stream/spill
  /// layout (tests/test_attack_poisoning.cpp). Off by default: the attack
  /// plane's traffic (and the weak txid swap) legitimately changes
  /// timing-sensitive evidence, so golden tables are pinned with it off.
  std::optional<cd::attack::PoisonConfig> poison;
  /// Run the §3.5 follow-up batteries on first hits. Disabled by the
  /// wire-equivalence tests: follow-up *timing* keys off first-hit arrival,
  /// which shared-cache warmness (and therefore sharding) perturbs.
  bool followups = true;
  /// Safety valve for the event loop (per shard).
  std::uint64_t max_events = 400'000'000;
  /// Coalesce same-tick deliveries per destination host into one drain
  /// event (sim::Network::set_batched_delivery). Semantically invisible —
  /// results_digest, capture_digest and exported pcaps are byte-identical
  /// either way (tests/test_sim_batched.cpp) — so this stays on; the off
  /// switch exists for the differential harness and for bisecting.
  bool batched_delivery = true;
  /// Stream DNS-over-TCP exchanges as MSS-capped segments
  /// (sim::Network::set_tcp_single_buffer is the off switch). Off sends
  /// each stream as one unsegmented payload — the pre-streaming baseline
  /// the TCP differential tests (tests/test_sim_tcp.cpp) prove
  /// reassembly-identical results against. Scan evidence is invariant
  /// either way (results_digest omits timestamps and per-segment wire
  /// artifacts), so this stays on.
  bool tcp_segmentation = true;
  /// Run each shard's event loop on the hierarchical timing wheel
  /// (sim::EventEngine::kWheel) instead of the retired priority-queue
  /// oracle. Both engines are observably identical — execution order,
  /// results_digest, capture_digest and exported pcaps are byte-for-byte
  /// the same (tests/test_sim_event_core.cpp) — so this stays on; the off
  /// switch exists for the differential harness and for bisecting.
  bool wheel_event_core = true;

  // --- persistent transports (sim::TransportOptions) ------------------------
  /// RFC 7766 persistent DNS-over-TCP: connections opened by Host::tcp_query
  /// survive completed exchanges, pipeline up to `max_pipeline` in-flight
  /// framed messages (responses matched by DNS message ID, out-of-order
  /// supported), and are idle-closed server-side after `idle_timeout`. Off —
  /// the default — is the one-shot dial-per-exchange baseline: results and
  /// capture digests are bit-identical to pre-transport builds
  /// (tests/test_transport.cpp pins this).
  bool persistent_tcp = false;
  /// In-flight messages per session before tcp_query queues (RFC 7766
  /// §6.2.1.1 pipelining window).
  int max_pipeline = 8;
  /// Server-side idle window before a persistent session is FIN-closed
  /// (RFC 7766 §6.1), driven deterministically through the timing wheel.
  cd::sim::SimTime idle_timeout = 10 * cd::sim::kSecond;
  /// DoT-style sessions: each dial additionally pays a fixed hello
  /// handshake (sim::TransportOptions::dot_handshake_rtts round trips of
  /// real stream bytes) plus a setup delay before the first DNS byte, so
  /// connection-reuse amortization is measurable in the scan-cost tables.
  bool dot_sessions = false;

  // --- sharding (core/parallel.h) -------------------------------------------
  /// Number of AS-partitioned shards the target list is split into. Each
  /// shard runs its own world, event loop, prober and collector; results
  /// merge in shard order. The merged campaign evidence is identical for
  /// any shard count (see results_digest in core/parallel.h).
  std::size_t num_shards = 1;
  /// Worker threads the sharded runner spreads shards over. Purely an
  /// execution knob: results are bit-identical for any thread count.
  std::size_t num_threads = 1;
  /// Which shard this Experiment instance probes (set by the runner).
  std::size_t shard_index = 0;
  /// Build each shard's world lazily from its slice of the target stream
  /// (ditl::generate_world(spec, shard, num_shards)) instead of
  /// materializing the full world per shard. Memory per shard becomes
  /// O(shard), not O(world); evidence is bit-identical either way
  /// (tests/test_campaign_stream.cpp), so this stays on. The off switch
  /// exists for the differential tests and for bisecting.
  bool stream_worlds = true;
  /// When non-empty, each shard's results are spilled to
  /// `<spill_dir>/shard_<N>.cdsp` (core/spill.h) as the shard finishes and
  /// streamed back in shard order during the merge, bounding peak memory by
  /// the largest single shard instead of the sum of all shards. The files
  /// are deleted after merging.
  std::string spill_dir;
};

struct ExperimentResults {
  cd::analysis::Records records;
  cd::scanner::CollectorStats collector_stats;
  std::set<cd::sim::Asn> qmin_asns;
  std::set<cd::net::IpAddr> lifetime_excluded_targets;
  cd::sim::NetworkStats network_stats;
  /// Canonically ordered wire capture (empty unless the config enabled it).
  cd::pcap::Capture capture;
  std::uint64_t queries_sent = 0;
  std::uint64_t followup_batteries = 0;
  std::uint64_t analyst_replays = 0;
  /// Cross-check plane (empty/zero unless the config enabled it). Prefixes
  /// partition by AS exactly like targets, so per-shard record maps are
  /// disjoint and merge by insertion.
  cd::scanner::PrefixRecords crosscheck_records;
  std::uint64_t crosscheck_probes = 0;
  /// Attacker plane (empty/zero unless the config enabled it). Victims
  /// partition by AS exactly like targets, so per-shard record maps are
  /// disjoint and merge by insertion.
  cd::attack::PoisonRecords poison_records;
  std::uint64_t poison_triggers = 0;
  std::uint64_t poison_forged = 0;
  /// Transport plane: connection-economics counters summed over every host
  /// in this shard's world (client dials, server accepts, session reuses,
  /// pipelined messages, idle closes, DoT handshake bytes). Deliberately
  /// outside results_digest — like network_stats, these are wire economics,
  /// not per-target evidence; the transport differential tests compare them
  /// directly.
  cd::sim::TransportCounters transport;
  /// Per-target digests of the framed TCP replies the scanner's transport
  /// battery received (empty unless followup.transport is kTcp). Targets
  /// partition by AS, so per-shard maps are disjoint and merge by
  /// insertion; the differential tests assert the map is identical across
  /// one-shot/persistent transports and every shard/stream/spill layout.
  std::map<cd::net::IpAddr, std::uint64_t> transport_replies;
};

/// Merges per-shard results in shard order: counters are summed, evidence
/// sets are unioned, and target records — whose key sets are disjoint
/// because shards partition targets by AS — are inserted shard by shard.
[[nodiscard]] ExperimentResults merge_results(
    std::vector<ExperimentResults> parts);

/// Incremental one-part step of merge_results: folds `part` into `acc`
/// without needing every part in memory at once (the spill-merge path
/// streams parts through this). `first` marks the first part (it donates the
/// capture's snaplen/linktype; later parts must agree). Capture records are
/// appended un-canonicalized — call cd::pcap::canonicalize(acc.capture) once
/// after the last part, which is exactly what merge_results does, so the
/// streamed fold is bit-identical to the all-at-once merge.
void merge_into(ExperimentResults& acc, ExperimentResults part, bool first);

/// Wires scanner components onto a World and runs the campaign to
/// completion. The world must outlive the experiment.
class Experiment {
 public:
  Experiment(cd::ditl::World& world, ExperimentConfig config);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Schedules the campaign and drains the event loop. Idempotent: a second
  /// call returns the cached results.
  const ExperimentResults& run();

  [[nodiscard]] cd::scanner::Prober& prober() { return *prober_; }
  [[nodiscard]] cd::scanner::Collector& collector() { return *collector_; }
  /// Null unless the config enabled the cross-check plane.
  [[nodiscard]] cd::scanner::CrossCheckProber* crosscheck_prober() {
    return crosscheck_prober_.get();
  }
  /// Null unless the config enabled the attacker plane.
  [[nodiscard]] cd::attack::SpoofInjector* injector() {
    return injector_.get();
  }

 private:
  /// Grafts the anycast poison subzone, its site hosts/auths and the
  /// attacker onto the world, and swaps weak txid sources into legacy
  /// resolver profiles (config_.poison is set).
  void build_attack_plane();
  cd::ditl::World& world_;
  ExperimentConfig config_;
  std::unique_ptr<cd::scanner::SourceSelector> selector_;
  std::unique_ptr<cd::scanner::Prober> prober_;
  std::unique_ptr<cd::scanner::Collector> collector_;
  std::unique_ptr<cd::scanner::CrossCheckProber> crosscheck_prober_;
  std::unique_ptr<cd::scanner::CrossCheckCollector> crosscheck_collector_;
  std::unique_ptr<cd::scanner::FollowupEngine> followup_;
  std::unique_ptr<cd::scanner::AnalystSimulator> analyst_;
  /// Attack plane (null/empty unless enabled): anycast site hosts need
  /// stable storage (deque: no moves) because the network holds pointers.
  std::deque<cd::sim::Host> attack_hosts_;
  std::vector<std::unique_ptr<cd::resolver::AuthServer>> attack_auths_;
  std::unique_ptr<cd::attack::SpoofInjector> injector_;
  std::optional<ExperimentResults> results_;
};

}  // namespace cd::core
