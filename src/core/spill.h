// On-disk spill codec for per-shard experiment results ("CDSP" v4).
//
// The sharded runner can run far more shards than fit in memory at once:
// each shard's ExperimentResults is serialized to a compact binary file the
// moment the shard finishes, freed, and streamed back in shard order during
// the merge. The codec is a strict ByteReader/ByteWriter round-trip —
// parse(serialize(r)) == r field-for-field — so spilling cannot change
// results_digest or capture_digest: the merged evidence is bit-identical to
// the all-in-memory path (tests/test_campaign_stream.cpp).
//
// v2 appends the cross-check plane (per-/24 prefix records and the
// probes-sent counter, scanner/crosscheck.h) after the scanner counters.
// v3 appends the attacker plane (per-victim poisoning records and the
// trigger/forgery counters, attack/poison.h) after the cross-check plane.
// v4 appends the transport plane (connection-lifecycle counters and the
// per-target reply digests, sim/network.h + core/experiment.h) after the
// attacker plane. Older files no longer parse — spills are transient per-run artifacts, not
// an archival format, so there is no cross-version reader.
//
// Safety property: *every* strict byte prefix of a valid spill file fails to
// parse with cd::ParseError, and so does trailing garbage (the reader
// requires exact consumption). A truncated spill can therefore never merge
// silently as partial results. The same strictness covers in-place
// corruption: enums, flag bytes and range-limited fields reject values the
// writer can never emit, so a flipped bit either throws or produces a
// decoded value whose re-serialization no longer matches the file
// (tests/test_campaign_stream.cpp's bit-flip fuzz).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace cd::core {

inline constexpr std::uint32_t kSpillMagic = 0x50534443;  // "CDSP" LE
inline constexpr std::uint32_t kSpillVersion = 4;

/// Serializes `results` into the CDSP v4 byte format.
[[nodiscard]] std::vector<std::uint8_t> serialize_results(
    const ExperimentResults& results);

/// Strict inverse of serialize_results(): throws cd::ParseError on bad
/// magic/version, any truncation, or trailing bytes.
[[nodiscard]] ExperimentResults parse_results(
    std::span<const std::uint8_t> bytes);

/// serialize_results() to a file (cd::Error on I/O failure).
void write_results(const ExperimentResults& results, const std::string& path);

/// Reads and parses a spill file written by write_results().
[[nodiscard]] ExperimentResults read_results(const std::string& path);

}  // namespace cd::core
