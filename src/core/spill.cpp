#include "core/spill.h"

#include "net/packet.h"
#include "util/bytes.h"
#include "util/pcap.h"

namespace cd::core {

namespace {

using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::U128;
using cd::scanner::SourceCategory;
using cd::scanner::TargetRecord;

void put_addr(cd::ByteWriter& w, const IpAddr& a) {
  w.u8(a.is_v6() ? 6 : 4);
  w.u64le(a.bits().hi);
  w.u64le(a.bits().lo);
}

IpAddr get_addr(cd::ByteReader& r) {
  const std::uint8_t family = r.u8();
  if (family != 4 && family != 6) r.fail("bad address family");
  const std::uint64_t hi = r.u64le();
  const std::uint64_t lo = r.u64le();
  return IpAddr::from_bits(family == 6 ? IpFamily::kV6 : IpFamily::kV4,
                           U128{hi, lo});
}

void put_blob(cd::ByteWriter& w, std::span<const std::uint8_t> bytes) {
  w.u64le(bytes.size());
  w.bytes(bytes);
}

std::vector<std::uint8_t> get_blob(cd::ByteReader& r) {
  const std::uint64_t n = r.u64le();
  if (n > r.remaining()) r.fail("truncated blob");
  const auto s = r.bytes(static_cast<std::size_t>(n));
  return {s.begin(), s.end()};
}

void put_record(cd::ByteWriter& w, const TargetRecord& rec) {
  put_addr(w, rec.target);
  w.u64le(rec.asn);
  w.u64le(rec.sources_hit.size());
  for (const IpAddr& src : rec.sources_hit) put_addr(w, src);
  w.u64le(rec.categories_hit.size());
  for (const SourceCategory cat : rec.categories_hit) {
    w.u8(static_cast<std::uint8_t>(cat));
  }
  w.u64le(static_cast<std::uint64_t>(rec.first_hit_time));
  put_addr(w, rec.first_hit_source);
  w.u8(static_cast<std::uint8_t>(
      (rec.direct_seen ? 1 : 0) | (rec.forwarded_seen ? 2 : 0) |
      (rec.client_in_target_as ? 4 : 0) | (rec.open_hit ? 8 : 0) |
      (rec.tcp_hit ? 16 : 0) | (rec.tcp_syn ? 32 : 0)));
  w.u64le(rec.forwarders_seen.size());
  for (const IpAddr& fwd : rec.forwarders_seen) put_addr(w, fwd);
  w.u64le(rec.ports_v4.size());
  for (const std::uint16_t p : rec.ports_v4) w.u16le(p);
  w.u64le(rec.ports_v6.size());
  for (const std::uint16_t p : rec.ports_v6) w.u16le(p);
  if (rec.tcp_syn) put_blob(w, rec.tcp_syn->serialize());
}

std::uint32_t get_asn(cd::ByteReader& r) {
  const std::uint64_t asn = r.u64le();
  if (asn > UINT32_MAX) r.fail("ASN out of range");
  return static_cast<std::uint32_t>(asn);
}

TargetRecord get_record(cd::ByteReader& r) {
  TargetRecord rec;
  rec.target = get_addr(r);
  rec.asn = static_cast<cd::sim::Asn>(get_asn(r));
  const std::uint64_t n_sources = r.u64le();
  for (std::uint64_t i = 0; i < n_sources; ++i) {
    rec.sources_hit.insert(get_addr(r));
  }
  const std::uint64_t n_cats = r.u64le();
  for (std::uint64_t i = 0; i < n_cats; ++i) {
    const std::uint8_t cat = r.u8();
    if (cat >= cd::scanner::kSourceCategoryCount) {
      r.fail("bad source category");
    }
    rec.categories_hit.insert(static_cast<SourceCategory>(cat));
  }
  rec.first_hit_time = static_cast<cd::sim::SimTime>(r.u64le());
  rec.first_hit_source = get_addr(r);
  const std::uint8_t flags = r.u8();
  if ((flags & ~std::uint8_t{63}) != 0) r.fail("unknown record flags");
  rec.direct_seen = (flags & 1) != 0;
  rec.forwarded_seen = (flags & 2) != 0;
  rec.client_in_target_as = (flags & 4) != 0;
  rec.open_hit = (flags & 8) != 0;
  rec.tcp_hit = (flags & 16) != 0;
  const std::uint64_t n_fwd = r.u64le();
  for (std::uint64_t i = 0; i < n_fwd; ++i) {
    rec.forwarders_seen.insert(get_addr(r));
  }
  const std::uint64_t n_p4 = r.u64le();
  for (std::uint64_t i = 0; i < n_p4; ++i) rec.ports_v4.push_back(r.u16le());
  const std::uint64_t n_p6 = r.u64le();
  for (std::uint64_t i = 0; i < n_p6; ++i) rec.ports_v6.push_back(r.u16le());
  if ((flags & 32) != 0) {
    rec.tcp_syn = cd::net::Packet::parse(get_blob(r));
  }
  return rec;
}

}  // namespace

std::vector<std::uint8_t> serialize_results(const ExperimentResults& results) {
  std::vector<std::uint8_t> out;
  cd::ByteWriter w(out);
  w.u32le(kSpillMagic);
  w.u32le(kSpillVersion);

  w.u64le(results.records.size());
  for (const auto& [addr, rec] : results.records) put_record(w, rec);

  w.u64le(results.collector_stats.entries_seen);
  w.u64le(results.collector_stats.foreign);
  w.u64le(results.collector_stats.excluded_lifetime);
  w.u64le(results.collector_stats.qmin_partial);

  w.u64le(results.qmin_asns.size());
  for (const cd::sim::Asn asn : results.qmin_asns) w.u64le(asn);
  w.u64le(results.lifetime_excluded_targets.size());
  for (const IpAddr& addr : results.lifetime_excluded_targets) {
    put_addr(w, addr);
  }

  const cd::sim::NetworkStats& ns = results.network_stats;
  w.u64le(ns.sent);
  w.u64le(ns.delivered);
  w.u64le(ns.delivery_batches);
  w.u64le(ns.dropped_osav);
  w.u64le(ns.dropped_dsav);
  w.u64le(ns.dropped_martian);
  w.u64le(ns.dropped_urpf);
  w.u64le(ns.dropped_unrouted);
  w.u64le(ns.dropped_no_host);
  w.u64le(ns.dropped_stack);

  w.u64le(results.queries_sent);
  w.u64le(results.followup_batteries);
  w.u64le(results.analyst_replays);

  // Cross-check plane (v2).
  w.u64le(results.crosscheck_probes);
  w.u64le(results.crosscheck_records.size());
  for (const auto& [base, rec] : results.crosscheck_records) {
    put_addr(w, base);
    w.u64le(rec.asn);
    w.u64le(rec.hits);
    w.u8(static_cast<std::uint8_t>((rec.direct_seen ? 1 : 0) |
                                   (rec.forwarded_seen ? 2 : 0)));
    w.u64le(rec.responding.size());
    for (const IpAddr& addr : rec.responding) put_addr(w, addr);
  }

  // Attacker plane (v3).
  w.u64le(results.poison_triggers);
  w.u64le(results.poison_forged);
  w.u64le(results.poison_records.size());
  for (const auto& [addr, rec] : results.poison_records) {
    put_addr(w, rec.victim);
    w.u64le(rec.asn);
    w.u8(static_cast<std::uint8_t>(rec.software));
    w.u8(static_cast<std::uint8_t>(rec.os));
    w.u8(static_cast<std::uint8_t>((rec.open ? 1 : 0) |
                                   (rec.reachable ? 2 : 0) |
                                   (rec.success ? 4 : 0)));
    w.u32le(rec.rounds);
    w.u32le(rec.success_round);
    w.u32le(rec.poisoned_ttl);
    w.u64le(rec.triggers);
    w.u64le(rec.forged);
    w.u64le(rec.observed_ports.size());
    for (const std::uint16_t p : rec.observed_ports) w.u16le(p);
  }

  // Transport plane (v4).
  const cd::sim::TransportCounters& tc = results.transport;
  w.u64le(tc.dials);
  w.u64le(tc.accepts);
  w.u64le(tc.session_reuses);
  w.u64le(tc.session_messages);
  w.u64le(tc.idle_closes);
  w.u64le(tc.handshake_bytes);
  w.u64le(results.transport_replies.size());
  for (const auto& [addr, digest] : results.transport_replies) {
    put_addr(w, addr);
    w.u64le(digest);
  }

  // Capture records travel raw (time/annotation/bytes), not as a rendered
  // pcap: merge re-canonicalizes, so rendering per shard would be waste.
  w.u32le(results.capture.snaplen);
  w.u32le(results.capture.linktype);
  w.u64le(results.capture.records.size());
  for (const cd::pcap::PcapRecord& rec : results.capture.records) {
    w.u64le(static_cast<std::uint64_t>(rec.time_us));
    w.u32le(rec.orig_len);
    w.u8(rec.annotation);
    put_blob(w, rec.bytes);
  }
  return out;
}

ExperimentResults parse_results(std::span<const std::uint8_t> bytes) {
  cd::ByteReader r(bytes, "spill");
  if (r.u32le() != kSpillMagic) r.fail("bad magic");
  if (r.u32le() != kSpillVersion) r.fail("unsupported version");

  ExperimentResults results;
  const std::uint64_t n_records = r.u64le();
  for (std::uint64_t i = 0; i < n_records; ++i) {
    TargetRecord rec = get_record(r);
    const IpAddr addr = rec.target;
    if (!results.records.emplace(addr, std::move(rec)).second) {
      r.fail("duplicate target record");
    }
  }

  results.collector_stats.entries_seen = r.u64le();
  results.collector_stats.foreign = r.u64le();
  results.collector_stats.excluded_lifetime = r.u64le();
  results.collector_stats.qmin_partial = r.u64le();

  const std::uint64_t n_qmin = r.u64le();
  for (std::uint64_t i = 0; i < n_qmin; ++i) {
    results.qmin_asns.insert(static_cast<cd::sim::Asn>(get_asn(r)));
  }
  const std::uint64_t n_excl = r.u64le();
  for (std::uint64_t i = 0; i < n_excl; ++i) {
    results.lifetime_excluded_targets.insert(get_addr(r));
  }

  cd::sim::NetworkStats& ns = results.network_stats;
  ns.sent = r.u64le();
  ns.delivered = r.u64le();
  ns.delivery_batches = r.u64le();
  ns.dropped_osav = r.u64le();
  ns.dropped_dsav = r.u64le();
  ns.dropped_martian = r.u64le();
  ns.dropped_urpf = r.u64le();
  ns.dropped_unrouted = r.u64le();
  ns.dropped_no_host = r.u64le();
  ns.dropped_stack = r.u64le();

  results.queries_sent = r.u64le();
  results.followup_batteries = r.u64le();
  results.analyst_replays = r.u64le();

  results.crosscheck_probes = r.u64le();
  const std::uint64_t n_prefixes = r.u64le();
  for (std::uint64_t i = 0; i < n_prefixes; ++i) {
    cd::scanner::PrefixRecord rec;
    rec.prefix = get_addr(r);
    rec.asn = static_cast<cd::sim::Asn>(get_asn(r));
    rec.hits = r.u64le();
    const std::uint8_t flags = r.u8();
    if ((flags & ~std::uint8_t{3}) != 0) r.fail("unknown prefix flags");
    rec.direct_seen = (flags & 1) != 0;
    rec.forwarded_seen = (flags & 2) != 0;
    const std::uint64_t n_resp = r.u64le();
    for (std::uint64_t j = 0; j < n_resp; ++j) {
      rec.responding.insert(get_addr(r));
    }
    const IpAddr base = rec.prefix;
    if (!results.crosscheck_records.emplace(base, std::move(rec)).second) {
      r.fail("duplicate prefix record");
    }
  }

  results.poison_triggers = r.u64le();
  results.poison_forged = r.u64le();
  const std::uint64_t n_victims = r.u64le();
  for (std::uint64_t i = 0; i < n_victims; ++i) {
    cd::attack::PoisonRecord rec;
    rec.victim = get_addr(r);
    rec.asn = static_cast<cd::sim::Asn>(get_asn(r));
    const std::uint8_t software = r.u8();
    if (software >= cd::resolver::kDnsSoftwareCount) {
      r.fail("bad victim software");
    }
    rec.software = static_cast<cd::resolver::DnsSoftware>(software);
    const std::uint8_t os = r.u8();
    if (os >= cd::sim::kOsIdCount) r.fail("bad victim OS");
    rec.os = static_cast<cd::sim::OsId>(os);
    const std::uint8_t flags = r.u8();
    if ((flags & ~std::uint8_t{7}) != 0) r.fail("unknown victim flags");
    rec.open = (flags & 1) != 0;
    rec.reachable = (flags & 2) != 0;
    rec.success = (flags & 4) != 0;
    rec.rounds = r.u32le();
    rec.success_round = r.u32le();
    rec.poisoned_ttl = r.u32le();
    rec.triggers = r.u64le();
    rec.forged = r.u64le();
    const std::uint64_t n_ports = r.u64le();
    if (n_ports * 2 > r.remaining()) r.fail("truncated port list");
    for (std::uint64_t j = 0; j < n_ports; ++j) {
      rec.observed_ports.push_back(r.u16le());
    }
    const IpAddr victim = rec.victim;
    if (!results.poison_records.emplace(victim, std::move(rec)).second) {
      r.fail("duplicate victim record");
    }
  }

  cd::sim::TransportCounters& tc = results.transport;
  tc.dials = r.u64le();
  tc.accepts = r.u64le();
  tc.session_reuses = r.u64le();
  tc.session_messages = r.u64le();
  tc.idle_closes = r.u64le();
  tc.handshake_bytes = r.u64le();
  const std::uint64_t n_digests = r.u64le();
  for (std::uint64_t i = 0; i < n_digests; ++i) {
    const IpAddr addr = get_addr(r);
    const std::uint64_t digest = r.u64le();
    if (!results.transport_replies.emplace(addr, digest).second) {
      r.fail("duplicate transport digest");
    }
  }

  results.capture.snaplen = r.u32le();
  results.capture.linktype = r.u32le();
  const std::uint64_t n_pkts = r.u64le();
  for (std::uint64_t i = 0; i < n_pkts; ++i) {
    cd::pcap::PcapRecord rec;
    rec.time_us = static_cast<std::int64_t>(r.u64le());
    rec.orig_len = r.u32le();
    rec.annotation = r.u8();
    rec.bytes = get_blob(r);
    results.capture.records.push_back(std::move(rec));
  }

  if (!r.done()) r.fail("trailing bytes");
  return results;
}

void write_results(const ExperimentResults& results, const std::string& path) {
  cd::pcap::write_file(path, serialize_results(results));
}

ExperimentResults read_results(const std::string& path) {
  return parse_results(cd::pcap::read_file(path));
}

}  // namespace cd::core
