#include "core/experiment.h"

#include "ditl/plan.h"
#include "util/error.h"

namespace cd::core {

using cd::scanner::Collector;
using cd::scanner::FollowupEngine;
using cd::scanner::Prober;
using cd::scanner::QnameCodec;
using cd::scanner::SourceSelector;

Experiment::Experiment(cd::ditl::World& world, ExperimentConfig config)
    : world_(world), config_(config) {
  CD_ENSURE(world_.vantage != nullptr, "Experiment: world has no vantage");
  CD_ENSURE(!world_.experiment_auths.empty(),
            "Experiment: world has no experiment auth servers");

  cd::Rng rng(world_.spec.seed ^ 0xE9C0DE5EEDULL);

  QnameCodec codec(world_.base_zone, world_.keyword);
  selector_ = std::make_unique<SourceSelector>(
      world_.topology, world_.hitlist_v6, cd::scanner::SourceSelectConfig{},
      rng.split("select"));
  prober_ = std::make_unique<Prober>(*world_.vantage, codec, *selector_,
                                     config_.probe, rng.split("probe"));
  collector_ = std::make_unique<Collector>(codec, config_.collector,
                                           &world_.topology);
  for (cd::resolver::AuthServer* auth : world_.experiment_auths) {
    collector_->attach(*auth);
  }
  if (config_.crosscheck) {
    crosscheck_prober_ = std::make_unique<cd::scanner::CrossCheckProber>(
        *world_.vantage, codec, *config_.crosscheck, rng.split("crosscheck"));
    crosscheck_collector_ = std::make_unique<cd::scanner::CrossCheckCollector>(
        codec, config_.crosscheck->lifetime_threshold);
    for (cd::resolver::AuthServer* auth : world_.experiment_auths) {
      crosscheck_collector_->attach(*auth);
    }
  }
  if (config_.followups) {
    followup_ = std::make_unique<FollowupEngine>(*prober_, *collector_,
                                                 config_.followup);
  }
  if (config_.analyst && !world_.public_dns_addrs.empty()) {
    analyst_ = std::make_unique<cd::scanner::AnalystSimulator>(
        *world_.network, world_.ids_asns, world_.public_dns_addrs.front(),
        *config_.analyst, rng.split("analyst"));
  }
}

void merge_into(ExperimentResults& acc, ExperimentResults part, bool first) {
  for (auto& [addr, record] : part.records) {
    const bool inserted = acc.records.emplace(addr, std::move(record)).second;
    CD_ENSURE(inserted, "merge_results: target present in two shards");
  }
  acc.collector_stats += part.collector_stats;
  acc.qmin_asns.insert(part.qmin_asns.begin(), part.qmin_asns.end());
  acc.lifetime_excluded_targets.insert(part.lifetime_excluded_targets.begin(),
                                       part.lifetime_excluded_targets.end());
  acc.network_stats += part.network_stats;
  acc.queries_sent += part.queries_sent;
  acc.followup_batteries += part.followup_batteries;
  acc.analyst_replays += part.analyst_replays;
  for (auto& [base, record] : part.crosscheck_records) {
    const bool inserted =
        acc.crosscheck_records.emplace(base, std::move(record)).second;
    CD_ENSURE(inserted, "merge_results: /24 present in two shards");
  }
  acc.crosscheck_probes += part.crosscheck_probes;

  if (first) {
    acc.capture = std::move(part.capture);
  } else {
    CD_ENSURE(part.capture.snaplen == acc.capture.snaplen &&
                  part.capture.linktype == acc.capture.linktype,
              "merge_results: mismatched capture parameters");
    acc.capture.records.insert(
        acc.capture.records.end(),
        std::make_move_iterator(part.capture.records.begin()),
        std::make_move_iterator(part.capture.records.end()));
  }
}

ExperimentResults merge_results(std::vector<ExperimentResults> parts) {
  ExperimentResults merged;
  bool first = true;
  for (ExperimentResults& part : parts) {
    merge_into(merged, std::move(part), first);
    first = false;
  }
  cd::pcap::canonicalize(merged.capture);
  return merged;
}

const ExperimentResults& Experiment::run() {
  if (results_) return *results_;

  // Delivery mode must be set before any traffic is scheduled: packets keep
  // the mode they were sent under.
  world_.network->set_batched_delivery(config_.batched_delivery);
  world_.network->set_tcp_single_buffer(!config_.tcp_segmentation);
  world_.loop.set_engine(config_.wheel_event_core
                             ? cd::sim::EventEngine::kWheel
                             : cd::sim::EventEngine::kPriorityQueue);

  cd::pcap::Capture capture;
  std::optional<cd::sim::Network::TapId> capture_tap;
  if (config_.capture) {
    capture.snaplen = config_.capture->snaplen;
    cd::sim::Network::CaptureOptions options;
    options.include_drops = config_.capture->include_drops;
    if (config_.capture->probes_only) {
      const cd::sim::Asn vantage_asn = world_.vantage->asn();
      options.filter = [vantage_asn](const cd::net::Packet&,
                                     cd::sim::DropReason,
                                     cd::sim::Asn origin) {
        return origin == vantage_asn;
      };
    }
    capture_tap = world_.network->attach_capture(capture, std::move(options));
  }

  prober_->schedule_campaign(world_.targets, config_.shard_index,
                             config_.num_shards);
  if (crosscheck_prober_) {
    // The cross-check plane enumerates its /24 universe from the campaign
    // plan, not from the (possibly shard-sliced) materialized world, so a
    // streamed shard schedules exactly the serial campaign's prefixes.
    const auto plan = cd::ditl::build_campaign_plan(world_.spec);
    std::vector<cd::scanner::PrefixTarget> prefixes;
    prefixes.reserve(cd::ditl::count_prefix24(*plan, config_.shard_index,
                                              config_.num_shards));
    cd::ditl::for_each_prefix24(
        *plan, config_.shard_index, config_.num_shards,
        [&prefixes](cd::sim::Asn asn, const cd::net::Prefix& p24) {
          prefixes.push_back({p24, asn});
        });
    crosscheck_prober_->schedule_campaign(std::move(prefixes));
  }
  world_.loop.run(config_.max_events);

  if (capture_tap) {
    world_.network->remove_tap(*capture_tap);
    // Canonical order, not delivery order: per-shard captures must merge to
    // the same bytes a serial capture canonicalizes to (see util/pcap.h).
    cd::pcap::canonicalize(capture);
  }

  ExperimentResults results;
  results.capture = std::move(capture);
  results.records = collector_->records();
  results.collector_stats = collector_->stats();
  results.qmin_asns = collector_->qmin_asns();
  results.lifetime_excluded_targets = collector_->lifetime_excluded_targets();
  results.network_stats = world_.network->stats();
  results.queries_sent = prober_->queries_sent();
  results.followup_batteries = followup_ ? followup_->batteries_sent() : 0;
  results.analyst_replays = analyst_ ? analyst_->replays() : 0;
  if (crosscheck_collector_) {
    results.crosscheck_records = crosscheck_collector_->records();
    results.crosscheck_probes = crosscheck_prober_->probes_sent();
  }
  results_ = std::move(results);
  return *results_;
}

}  // namespace cd::core
