#include "core/experiment.h"

#include <unordered_map>

#include "ditl/plan.h"
#include "sim/os_model.h"
#include "util/error.h"

namespace cd::core {

using cd::scanner::Collector;
using cd::scanner::FollowupEngine;
using cd::scanner::Prober;
using cd::scanner::QnameCodec;
using cd::scanner::SourceSelector;

Experiment::Experiment(cd::ditl::World& world, ExperimentConfig config)
    : world_(world), config_(config) {
  CD_ENSURE(world_.vantage != nullptr, "Experiment: world has no vantage");
  CD_ENSURE(!world_.experiment_auths.empty(),
            "Experiment: world has no experiment auth servers");

  cd::Rng rng(world_.spec.seed ^ 0xE9C0DE5EEDULL);

  QnameCodec codec(world_.base_zone, world_.keyword);
  selector_ = std::make_unique<SourceSelector>(
      world_.topology, world_.hitlist_v6, cd::scanner::SourceSelectConfig{},
      rng.split("select"));
  prober_ = std::make_unique<Prober>(*world_.vantage, codec, *selector_,
                                     config_.probe, rng.split("probe"));
  collector_ = std::make_unique<Collector>(codec, config_.collector,
                                           &world_.topology);
  for (cd::resolver::AuthServer* auth : world_.experiment_auths) {
    collector_->attach(*auth);
  }
  if (config_.crosscheck) {
    crosscheck_prober_ = std::make_unique<cd::scanner::CrossCheckProber>(
        *world_.vantage, codec, *config_.crosscheck, rng.split("crosscheck"));
    crosscheck_collector_ = std::make_unique<cd::scanner::CrossCheckCollector>(
        codec, config_.crosscheck->lifetime_threshold);
    for (cd::resolver::AuthServer* auth : world_.experiment_auths) {
      crosscheck_collector_->attach(*auth);
    }
  }
  if (config_.followups) {
    followup_ = std::make_unique<FollowupEngine>(*prober_, *collector_,
                                                 config_.followup);
  }
  if (config_.analyst && !world_.public_dns_addrs.empty()) {
    analyst_ = std::make_unique<cd::scanner::AnalystSimulator>(
        *world_.network, world_.ids_asns, world_.public_dns_addrs.front(),
        *config_.analyst, rng.split("analyst"));
  }
  if (config_.poison) build_attack_plane();
}

namespace {

/// Attack-plane infrastructure lives in 11/8 (deliberately never announced
/// by generated worlds, so nothing here perturbs unicast routing or target
/// filtering) under ASNs far above both the edge range and the reserved
/// infra block.
constexpr cd::sim::Asn kPoisonSiteAsnBase = 4'200'000'000u;
constexpr cd::sim::Asn kPoisonAttackerAsn = 4'200'001'000u;

}  // namespace

void Experiment::build_attack_plane() {
  const cd::attack::PoisonConfig& pc = *config_.poison;
  CD_ENSURE(pc.sites >= 1, "Experiment: poison plane needs at least one site");

  const auto service = cd::net::IpAddr::must_parse("11.3.0.53");
  const auto attacker = cd::net::IpAddr::must_parse("11.66.6.6");
  const auto poisoned = cd::net::IpAddr::must_parse("11.66.0.66");

  // Graft the poison subzone's delegation (with in-cut glue) onto the
  // existing base zone, and build the subzone every anycast site serves:
  // self NS plus a wildcard A so every per-round query name answers.
  QnameCodec codec(world_.base_zone, world_.keyword);
  const cd::dns::DnsName apex =
      codec.zone_apex(cd::scanner::QueryMode::kPoison);
  const cd::dns::DnsName ns_name = apex.prepend("ns");
  for (auto& zone : world_.zones) {
    if (zone->origin() == world_.base_zone) {
      zone->add(cd::dns::make_ns(apex, ns_name));
      zone->add(cd::dns::make_a(ns_name, service));
      break;
    }
  }
  cd::dns::SoaRdata soa;
  soa.mname = world_.base_zone.prepend("www");
  soa.rname = world_.base_zone.prepend("research");
  soa.serial = 2019110601;
  soa.minimum = 300;
  auto poison_zone = std::make_shared<cd::dns::Zone>(apex, soa);
  poison_zone->add(cd::dns::make_ns(apex, ns_name));
  poison_zone->add(cd::dns::make_a(ns_name, service));
  poison_zone->add(cd::dns::make_a(apex.prepend("*"), service));
  world_.zones.push_back(poison_zone);

  // The injector seed depends only on the world seed: every shard's
  // attacker plays the identical per-victim schedule.
  injector_ = std::make_unique<cd::attack::SpoofInjector>(
      *world_.network, kPoisonAttackerAsn, attacker, service, poisoned,
      codec, pc, world_.spec.seed ^ 0xA17AC4DEED5ULL);

  // Anycast sites: one service address, one host per site AS. None of the
  // attack ASes announce prefixes — the service is reachable only through
  // the anycast table, and the attacker needs no return path.
  const cd::sim::OsProfile& site_os =
      cd::sim::os_profile(cd::sim::OsId::kUbuntu1904);
  for (int i = 0; i < pc.sites; ++i) {
    const cd::sim::Asn asn = kPoisonSiteAsnBase + static_cast<cd::sim::Asn>(i);
    world_.topology.add_as(asn, cd::sim::FilterPolicy{});
    cd::sim::Host& host = attack_hosts_.emplace_back(
        *world_.network, asn, site_os, std::vector<cd::net::IpAddr>{service},
        cd::Rng::substream(world_.spec.seed ^ 0xA77AC5175ULL,
                           static_cast<std::uint64_t>(i)),
        "poison-site-" + std::to_string(i));
    world_.network->add_anycast_site(service, &host);
    auto auth = std::make_unique<cd::resolver::AuthServer>(
        host, cd::resolver::AuthConfig{});
    auth->add_zone(poison_zone);
    auth->add_observer([this](const cd::resolver::AuthLogEntry& entry) {
      injector_->observe_auth(entry);
    });
    attack_auths_.push_back(std::move(auth));
  }
  world_.topology.add_as(kPoisonAttackerAsn, cd::sim::FilterPolicy{});

  // Legacy profiles predate randomized transaction ids: swap in sequential
  // sources, seeded per address so the stream is a pure function of stable
  // identity (layout-invariant). Applies to every materialized resolver —
  // a shard world holds exactly its shard's fleet — so serial and sharded
  // runs agree on every resolver's wire behaviour.
  for (auto& res : world_.resolvers) {
    for (const cd::net::IpAddr& addr : res->host().addresses()) {
      const auto it = world_.truth_resolvers.find(addr);
      if (it == world_.truth_resolvers.end()) continue;
      if (cd::resolver::weak_txid(it->second.software)) {
        res->set_txid_source(
            std::make_unique<cd::resolver::SequentialTxidSource>(
                static_cast<std::uint16_t>(
                    cd::Rng::substream(world_.spec.seed ^ 0x5E97A1DULL,
                                       cd::net::IpAddrHash{}(addr))
                        .u64())));
      }
      break;
    }
  }
}

void merge_into(ExperimentResults& acc, ExperimentResults part, bool first) {
  for (auto& [addr, record] : part.records) {
    const bool inserted = acc.records.emplace(addr, std::move(record)).second;
    CD_ENSURE(inserted, "merge_results: target present in two shards");
  }
  acc.collector_stats += part.collector_stats;
  acc.qmin_asns.insert(part.qmin_asns.begin(), part.qmin_asns.end());
  acc.lifetime_excluded_targets.insert(part.lifetime_excluded_targets.begin(),
                                       part.lifetime_excluded_targets.end());
  acc.network_stats += part.network_stats;
  acc.queries_sent += part.queries_sent;
  acc.followup_batteries += part.followup_batteries;
  acc.analyst_replays += part.analyst_replays;
  for (auto& [base, record] : part.crosscheck_records) {
    const bool inserted =
        acc.crosscheck_records.emplace(base, std::move(record)).second;
    CD_ENSURE(inserted, "merge_results: /24 present in two shards");
  }
  acc.crosscheck_probes += part.crosscheck_probes;
  for (auto& [addr, record] : part.poison_records) {
    const bool inserted =
        acc.poison_records.emplace(addr, std::move(record)).second;
    CD_ENSURE(inserted, "merge_results: victim present in two shards");
  }
  acc.poison_triggers += part.poison_triggers;
  acc.poison_forged += part.poison_forged;
  acc.transport += part.transport;
  for (const auto& [addr, digest] : part.transport_replies) {
    const bool inserted = acc.transport_replies.emplace(addr, digest).second;
    CD_ENSURE(inserted, "merge_results: transport target in two shards");
  }

  if (first) {
    acc.capture = std::move(part.capture);
  } else {
    CD_ENSURE(part.capture.snaplen == acc.capture.snaplen &&
                  part.capture.linktype == acc.capture.linktype,
              "merge_results: mismatched capture parameters");
    acc.capture.records.insert(
        acc.capture.records.end(),
        std::make_move_iterator(part.capture.records.begin()),
        std::make_move_iterator(part.capture.records.end()));
  }
}

ExperimentResults merge_results(std::vector<ExperimentResults> parts) {
  ExperimentResults merged;
  bool first = true;
  for (ExperimentResults& part : parts) {
    merge_into(merged, std::move(part), first);
    first = false;
  }
  cd::pcap::canonicalize(merged.capture);
  return merged;
}

const ExperimentResults& Experiment::run() {
  if (results_) return *results_;

  // Delivery mode must be set before any traffic is scheduled: packets keep
  // the mode they were sent under.
  world_.network->set_batched_delivery(config_.batched_delivery);
  world_.network->set_tcp_single_buffer(!config_.tcp_segmentation);
  {
    cd::sim::TransportOptions transport;
    transport.persistent = config_.persistent_tcp;
    transport.max_pipeline = config_.max_pipeline;
    transport.idle_timeout = config_.idle_timeout;
    transport.dot = config_.dot_sessions;
    world_.network->set_transport(transport);
  }
  world_.loop.set_engine(config_.wheel_event_core
                             ? cd::sim::EventEngine::kWheel
                             : cd::sim::EventEngine::kPriorityQueue);

  cd::pcap::Capture capture;
  std::optional<cd::sim::Network::TapId> capture_tap;
  if (config_.capture) {
    capture.snaplen = config_.capture->snaplen;
    cd::sim::Network::CaptureOptions options;
    options.include_drops = config_.capture->include_drops;
    if (config_.capture->probes_only) {
      const cd::sim::Asn vantage_asn = world_.vantage->asn();
      options.filter = [vantage_asn](const cd::net::Packet&,
                                     cd::sim::DropReason,
                                     cd::sim::Asn origin) {
        return origin == vantage_asn;
      };
    }
    capture_tap = world_.network->attach_capture(capture, std::move(options));
  }

  prober_->schedule_campaign(world_.targets, config_.shard_index,
                             config_.num_shards);
  if (crosscheck_prober_) {
    // The cross-check plane enumerates its /24 universe from the campaign
    // plan, not from the (possibly shard-sliced) materialized world, so a
    // streamed shard schedules exactly the serial campaign's prefixes.
    const auto plan = cd::ditl::build_campaign_plan(world_.spec);
    std::vector<cd::scanner::PrefixTarget> prefixes;
    prefixes.reserve(cd::ditl::count_prefix24(*plan, config_.shard_index,
                                              config_.num_shards));
    cd::ditl::for_each_prefix24(
        *plan, config_.shard_index, config_.num_shards,
        [&prefixes](cd::sim::Asn asn, const cd::net::Prefix& p24) {
          prefixes.push_back({p24, asn});
        });
    crosscheck_prober_->schedule_campaign(std::move(prefixes));
  }
  if (injector_) {
    // Victims come from the same shard-sliced target list the prober uses:
    // v4, non-forwarding recursive resolvers. Per-victim schedules are pure
    // functions of (seed, address), so any layout attacks the same set the
    // same way.
    for (const cd::scanner::TargetInfo& t : world_.targets) {
      if (cd::scanner::shard_of(t.asn, config_.num_shards) !=
          config_.shard_index) {
        continue;
      }
      if (!t.addr.is_v4()) continue;
      const auto it = world_.truth_resolvers.find(t.addr);
      if (it == world_.truth_resolvers.end()) continue;
      const cd::ditl::ResolverTruth truth = it->second;
      if (truth.forwards) continue;
      injector_->add_victim(
          {t.addr, t.asn, truth.software, truth.os, truth.open});
    }
  }
  world_.loop.run(config_.max_events);

  if (capture_tap) {
    world_.network->remove_tap(*capture_tap);
    // Canonical order, not delivery order: per-shard captures must merge to
    // the same bytes a serial capture canonicalizes to (see util/pcap.h).
    cd::pcap::canonicalize(capture);
  }

  ExperimentResults results;
  results.capture = std::move(capture);
  results.records = collector_->records();
  results.collector_stats = collector_->stats();
  results.qmin_asns = collector_->qmin_asns();
  results.lifetime_excluded_targets = collector_->lifetime_excluded_targets();
  results.network_stats = world_.network->stats();
  results.queries_sent = prober_->queries_sent();
  results.transport = world_.network->transport_counters();
  results.transport_replies = prober_->transport_replies();
  // Deterministic teardown: with the loop fully drained, every connection on
  // every host has completed, timed out, or been idle-closed — a leaked
  // entry means a stray timer or session index entry.
  if (world_.loop.pending() == 0) {
    CD_ENSURE(world_.network->open_tcp_connections() == 0,
              "Experiment: TCP connections leaked past the drained loop");
  }
  results.followup_batteries = followup_ ? followup_->batteries_sent() : 0;
  results.analyst_replays = analyst_ ? analyst_->replays() : 0;
  if (crosscheck_collector_) {
    results.crosscheck_records = crosscheck_collector_->records();
    results.crosscheck_probes = crosscheck_prober_->probes_sent();
  }
  if (injector_) {
    std::unordered_map<cd::net::IpAddr, cd::resolver::RecursiveResolver*,
                       cd::net::IpAddrHash>
        resolver_by_addr;
    for (auto& res : world_.resolvers) {
      for (const cd::net::IpAddr& addr : res->host().addresses()) {
        resolver_by_addr.emplace(addr, res.get());
      }
    }
    injector_->finalize(
        [&resolver_by_addr](const cd::net::IpAddr& addr)
            -> cd::resolver::RecursiveResolver* {
          const auto it = resolver_by_addr.find(addr);
          return it == resolver_by_addr.end() ? nullptr : it->second;
        });
    results.poison_records = injector_->records();
    results.poison_triggers = injector_->triggers_sent();
    results.poison_forged = injector_->forged_sent();
  }
  results_ = std::move(results);
  return *results_;
}

}  // namespace cd::core
