// Sharded parallel campaign runner.
//
// The target list is partitioned into `config.num_shards` shards by
// destination AS (shard_of in scanner/prober.h), and each shard runs a
// complete, independently generated world — its own event loop, prober,
// collector and follow-up engine — on a small std::thread pool. World
// generation is deterministic and cheap relative to the campaign (tens of
// milliseconds vs seconds at paper scale), so duplicating it per shard
// buys full isolation: no shared mutable state, no locks on the hot path.
//
// Determinism contract: for a fixed spec and config, the merged results
// are identical for ANY (num_shards, num_threads) combination — shards
// merge in shard order, and every random decision a shard makes is derived
// from stable identities (shard index, target address, packet content),
// never from thread or arrival order. The contract is also independent of
// ExperimentConfig::batched_delivery: each shard's event loop delivers
// same-tick packets batched per destination host (or per packet with the
// flag off) with identical observable order, so sharded campaigns get the
// batching speedup for free. `results_digest` captures exactly
// the shard-count-invariant portion of the results; see its comment for
// the two documented exclusions.
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "ditl/world_spec.h"

namespace cd::core {

/// Wall-clock accounting for one shard, split by phase.
struct ShardTiming {
  std::size_t shard = 0;
  std::size_t targets = 0;   // targets assigned to this shard
  double gen_ms = 0.0;       // world generation
  double run_ms = 0.0;       // campaign (schedule + event loop drain)
  double spill_ms = 0.0;     // serialize + write of the shard spill (if any)
  /// Process-wide peak RSS (VmHWM, util/rss.h) sampled as the shard
  /// finished. The watermark is monotonic over the process lifetime, so
  /// per-shard values record when memory peaked, not independent footprints.
  std::size_t peak_rss_kb = 0;
};

struct ShardedResults {
  ExperimentResults merged;
  std::vector<ShardTiming> shards;  // indexed by shard
  double wall_ms = 0.0;             // end-to-end, including merge
  double merge_ms = 0.0;            // merge phase (spill read-back included)
  /// Process-wide peak RSS (VmHWM) after the merge — the campaign's
  /// high-water memory mark, the number the campaign-scale bench budgets.
  std::size_t peak_rss_kb = 0;
  /// Sum of per-shard gen+run time: what a 1-thread execution of the same
  /// sharding costs, so aggregate/wall estimates the parallel speedup even
  /// on machines where the pool cannot actually run concurrently.
  [[nodiscard]] double aggregate_ms() const;
};

/// Runs the campaign described by (spec, config) across
/// `config.num_shards` shards on `config.num_threads` worker threads and
/// merges the per-shard results in shard order. `config.shard_index` is
/// ignored (the runner sets it per shard). Exceptions thrown inside a
/// shard are rethrown on the calling thread after the pool joins.
[[nodiscard]] ShardedResults run_sharded_experiment(
    const cd::ditl::WorldSpec& spec, const ExperimentConfig& config);

/// Order-independent digest of the shard-count-invariant evidence: records
/// (sorted by target address, all fields except `first_hit_time`),
/// QNAME-minimization ASes, lifetime exclusions, the scanner-side counters
/// (queries sent, follow-up batteries, analyst replays), and the
/// cross-check plane's per-/24 evidence (prefix, AS and responding-address
/// sets, plus the probes-sent counter).
///
/// Excluded by design — the traffic-volume/timing artifacts of shared
/// public-resolver cache warmness, the one thing sharding legitimately
/// perturbs: per-record `first_hit_time`, the world's `network_stats`,
/// `collector_stats` (a forwarded target resolving against a cold
/// per-shard cache takes longer, which can add retransmitted — duplicate —
/// auth log entries; every evidence *set* stays exact because the records
/// deduplicate), and the cross-check records' `hits` /
/// `direct_seen`/`forwarded_seen` (duplicate counts plus the
/// forward-failover resolver's sequential direct-vs-forward draw).
[[nodiscard]] std::uint64_t results_digest(const ExperimentResults& results);

/// Digest of a capture's full serialized form (pcap bytes then sidecar
/// index bytes). Because Experiment/merge_results canonicalize record
/// order, a probe-plane capture's digest is invariant across
/// (num_shards, num_threads) — the wire-level analogue of results_digest,
/// checked by tests/test_core_parallel.cpp and regenerable externally from
/// the exported files themselves.
[[nodiscard]] std::uint64_t capture_digest(const cd::pcap::Capture& capture);

}  // namespace cd::core
