#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>

#include "core/spill.h"
#include "ditl/world.h"
#include "scanner/prober.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/rss.h"

namespace cd::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Incremental FNV-1a over a canonical little-endian serialization.
class Digest {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void addr(const cd::net::IpAddr& a) {
    u64(a.is_v6() ? 6 : 4);
    u64(a.bits().hi);
    u64(a.bits().lo);
  }
  void bytes(const std::vector<std::uint8_t>& data) {
    u64(data.size());
    for (std::uint8_t b : data) byte(b);
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  void byte(std::uint8_t b) {
    h_ ^= b;
    h_ *= 0x00000100000001B3ULL;
  }
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

struct ShardOutcome {
  std::optional<ExperimentResults> results;
  std::string spill_path;  // non-empty: results live on disk, not in memory
  ShardTiming timing;
  std::exception_ptr error;
};

ShardOutcome run_one_shard(const cd::ditl::WorldSpec& spec,
                           ExperimentConfig config, std::size_t shard) {
  ShardOutcome out;
  out.timing.shard = shard;
  try {
    const auto gen_start = Clock::now();
    // Streamed mode builds only this shard's slice of the world from the
    // target stream — O(shard) memory; the materialized fallback builds the
    // full world and lets the prober's shard filter skip foreign targets.
    auto world = config.stream_worlds
                     ? cd::ditl::generate_world(spec, shard, config.num_shards)
                     : cd::ditl::generate_world(spec);
    out.timing.gen_ms = ms_since(gen_start);

    if (config.stream_worlds) {
      // A streamed world's target list is exactly this shard's slice.
      out.timing.targets = world->targets.size();
    } else {
      for (const cd::scanner::TargetInfo& target : world->targets) {
        if (cd::scanner::shard_of(target.asn, config.num_shards) == shard) {
          ++out.timing.targets;
        }
      }
    }

    config.shard_index = shard;
    const auto run_start = Clock::now();
    Experiment experiment(*world, config);
    out.results = experiment.run();
    out.timing.run_ms = ms_since(run_start);

    if (!config.spill_dir.empty()) {
      const auto spill_start = Clock::now();
      out.spill_path = (std::filesystem::path(config.spill_dir) /
                        ("shard_" + std::to_string(shard) + ".cdsp"))
                           .string();
      write_results(*out.results, out.spill_path);
      out.results.reset();  // the whole point: free the shard's memory now
      out.timing.spill_ms = ms_since(spill_start);
    }
    out.timing.peak_rss_kb = cd::peak_rss_kb();
  } catch (...) {
    out.error = std::current_exception();
  }
  return out;
}

}  // namespace

double ShardedResults::aggregate_ms() const {
  double total = 0.0;
  for (const ShardTiming& t : shards) total += t.gen_ms + t.run_ms;
  return total;
}

ShardedResults run_sharded_experiment(const cd::ditl::WorldSpec& spec,
                                      const ExperimentConfig& config) {
  const std::size_t n_shards = std::max<std::size_t>(1, config.num_shards);
  const std::size_t n_threads =
      std::min(std::max<std::size_t>(1, config.num_threads), n_shards);

  ExperimentConfig shard_config = config;
  shard_config.num_shards = n_shards;
  if (!shard_config.spill_dir.empty()) {
    std::filesystem::create_directories(shard_config.spill_dir);
  }

  const auto wall_start = Clock::now();
  std::vector<ShardOutcome> outcomes(n_shards);

  if (n_threads == 1) {
    for (std::size_t shard = 0; shard < n_shards; ++shard) {
      outcomes[shard] = run_one_shard(spec, shard_config, shard);
    }
  } else {
    // Work pickup by atomic counter: threads claim the next unstarted
    // shard, so an uneven shard mix still balances across the pool.
    std::atomic<std::size_t> next_shard{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t shard =
            next_shard.fetch_add(1, std::memory_order_relaxed);
        if (shard >= n_shards) return;
        outcomes[shard] = run_one_shard(spec, shard_config, shard);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  ShardedResults sharded;
  // Incremental fold in shard order: spilled shards are read back one at a
  // time, so the merge phase holds the accumulator plus one part — never all
  // parts — and produces bytes identical to the all-in-memory merge_results
  // (merge_into appends raw; one canonicalize pass at the end).
  const auto merge_start = Clock::now();
  bool first = true;
  for (ShardOutcome& out : outcomes) {
    if (out.error) std::rethrow_exception(out.error);
    ExperimentResults part;
    if (!out.spill_path.empty()) {
      part = read_results(out.spill_path);
      std::remove(out.spill_path.c_str());
    } else {
      CD_ENSURE(out.results.has_value(),
                "run_sharded_experiment: missing shard");
      part = std::move(*out.results);
    }
    merge_into(sharded.merged, std::move(part), first);
    first = false;
    sharded.shards.push_back(out.timing);
  }
  cd::pcap::canonicalize(sharded.merged.capture);
  sharded.merge_ms = ms_since(merge_start);
  sharded.peak_rss_kb = cd::peak_rss_kb();
  sharded.wall_ms = ms_since(wall_start);
  return sharded;
}

std::uint64_t results_digest(const ExperimentResults& results) {
  Digest d;

  std::vector<const cd::scanner::TargetRecord*> records;
  records.reserve(results.records.size());
  for (const auto& [addr, record] : results.records) records.push_back(&record);
  std::sort(records.begin(), records.end(),
            [](const auto* a, const auto* b) { return a->target < b->target; });

  d.u64(records.size());
  for (const cd::scanner::TargetRecord* r : records) {
    d.addr(r->target);
    d.u64(r->asn);
    d.u64(r->sources_hit.size());
    for (const auto& src : r->sources_hit) d.addr(src);
    d.u64(r->categories_hit.size());
    for (const auto cat : r->categories_hit) {
      d.u64(static_cast<std::uint64_t>(cat));
    }
    // first_hit_time deliberately omitted (see header); the source that
    // produced the first hit is stable because probes are seconds apart.
    d.addr(r->first_hit_source);
    d.u64(static_cast<std::uint64_t>(r->direct_seen));
    d.u64(static_cast<std::uint64_t>(r->forwarded_seen));
    d.u64(r->forwarders_seen.size());
    for (const auto& fwd : r->forwarders_seen) d.addr(fwd);
    d.u64(static_cast<std::uint64_t>(r->client_in_target_as));
    d.u64(r->ports_v4.size());
    for (const std::uint16_t p : r->ports_v4) d.u64(p);
    d.u64(r->ports_v6.size());
    for (const std::uint16_t p : r->ports_v6) d.u64(p);
    d.u64(static_cast<std::uint64_t>(r->open_hit));
    d.u64(static_cast<std::uint64_t>(r->tcp_hit));
    d.u64(static_cast<std::uint64_t>(r->tcp_syn.has_value()));
    if (r->tcp_syn) d.bytes(r->tcp_syn->serialize());
  }

  // collector_stats deliberately omitted (see header): auth-side traffic
  // volume, not per-target evidence.
  d.u64(results.qmin_asns.size());
  for (const auto asn : results.qmin_asns) d.u64(asn);
  d.u64(results.lifetime_excluded_targets.size());
  for (const auto& addr : results.lifetime_excluded_targets) d.addr(addr);

  // network_stats deliberately omitted (see header).
  d.u64(results.queries_sent);
  d.u64(results.followup_batteries);
  d.u64(results.analyst_replays);

  // Cross-check plane: the per-/24 verdict evidence. hits / direct_seen /
  // forwarded_seen are deliberately omitted — retransmit duplicate counts
  // depend on shared-cache warmness, and a forward-failover resolver's
  // direct-vs-forwarded choice is drawn from its own sequential stream, so
  // both legitimately vary with shard layout (like first_hit_time above).
  d.u64(results.crosscheck_records.size());
  for (const auto& [base, rec] : results.crosscheck_records) {
    d.addr(base);
    d.u64(rec.asn);
    d.u64(rec.responding.size());
    for (const auto& addr : rec.responding) d.addr(addr);
  }
  d.u64(results.crosscheck_probes);

  // Attacker plane: per-victim realized outcomes. The block is strictly
  // conditional on evidence being present so attacker-off digests are
  // bit-identical to digests computed before the plane existed.
  if (!results.poison_records.empty() || results.poison_triggers != 0 ||
      results.poison_forged != 0) {
    d.u64(results.poison_records.size());
    for (const auto& [addr, rec] : results.poison_records) {
      d.addr(rec.victim);
      d.u64(rec.asn);
      d.u64(static_cast<std::uint64_t>(rec.software));
      d.u64(static_cast<std::uint64_t>(rec.os));
      d.u64(static_cast<std::uint64_t>(rec.open));
      d.u64(static_cast<std::uint64_t>(rec.reachable));
      d.u64(static_cast<std::uint64_t>(rec.success));
      d.u64(rec.rounds);
      d.u64(rec.success_round);
      d.u64(rec.poisoned_ttl);
      d.u64(rec.triggers);
      d.u64(rec.forged);
      d.u64(rec.observed_ports.size());
      for (const std::uint16_t p : rec.observed_ports) d.u64(p);
    }
    d.u64(results.poison_triggers);
    d.u64(results.poison_forged);
  }
  return d.value();
}

std::uint64_t capture_digest(const cd::pcap::Capture& capture) {
  Digest d;
  d.bytes(capture.to_pcap());
  d.bytes(capture.to_index());
  return d.value();
}

}  // namespace cd::core
