#include "analysis/geo.h"

namespace cd::analysis {

using cd::net::IpAddr;
using cd::net::Prefix;
using cd::net::U128;

void GeoDb::add(const Prefix& prefix, std::string country) {
  LengthMap& table = prefix.family() == cd::net::IpFamily::kV4 ? v4_ : v6_;
  auto [it, inserted] =
      table[prefix.length()].emplace(prefix.base().bits(), std::move(country));
  if (inserted) {
    ++count_;
  }
}

std::optional<std::string> GeoDb::country_of(const IpAddr& addr) const {
  const LengthMap& table = addr.is_v4() ? v4_ : v6_;
  const int width = addr.width();
  for (const auto& [length, entries] : table) {
    const int shift = width - length;
    U128 key = addr.bits();
    if (shift > 0) key = (key >> shift) << shift;
    const auto it = entries.find(key);
    if (it != entries.end()) return it->second;
  }
  return std::nullopt;
}

}  // namespace cd::analysis
