// Aggregations over collected target records: everything needed to
// regenerate the paper's Tables 1-4 and the §4/§5 headline statistics.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/geo.h"
#include "analysis/p0f.h"
#include "analysis/port_range.h"
#include "scanner/collector.h"
#include "scanner/prober.h"

namespace cd::analysis {

using Records = std::unordered_map<cd::net::IpAddr, cd::scanner::TargetRecord,
                                   cd::net::IpAddrHash>;

// --- §4 headline: DSAV prevalence ------------------------------------------

struct FamilyDsav {
  std::uint64_t targets_total = 0;
  std::uint64_t targets_reachable = 0;
  std::uint64_t asns_total = 0;
  std::uint64_t asns_reachable = 0;
};

struct DsavSummary {
  FamilyDsav v4;
  FamilyDsav v6;
};

[[nodiscard]] DsavSummary summarize_dsav(
    const Records& records, std::span<const cd::scanner::TargetInfo> targets);

// --- Table 3: spoofed-source category effectiveness -------------------------

struct CategoryCell {
  std::uint64_t addrs = 0;
  std::uint64_t asns = 0;
};

struct CategoryTable {
  // Indexed [category][family] with family 0 = IPv4, 1 = IPv6.
  CategoryCell inclusive[cd::scanner::kSourceCategoryCount][2];
  CategoryCell exclusive[cd::scanner::kSourceCategoryCount][2];
  CategoryCell queried[2];
  CategoryCell reachable[2];
};

[[nodiscard]] CategoryTable build_category_table(
    const Records& records, std::span<const cd::scanner::TargetInfo> targets);

// --- Tables 1-2: DSAV by country ---------------------------------------------

struct CountryRow {
  std::string country;
  std::uint64_t ases_total = 0;
  std::uint64_t ases_reachable = 0;
  std::uint64_t targets_total = 0;
  std::uint64_t targets_reachable = 0;
};

/// One row per country (v4+v6 combined, as in the paper). An AS is counted
/// in every country its constituent targets geolocate to.
[[nodiscard]] std::vector<CountryRow> dsav_by_country(
    const Records& records, std::span<const cd::scanner::TargetInfo> targets,
    const GeoDb& geo);

// --- §5.1: open vs. closed resolvers -----------------------------------------

struct OpenClosedStats {
  std::uint64_t open = 0;
  std::uint64_t closed = 0;
  std::uint64_t reachable_asns = 0;
  /// ASes lacking DSAV in which at least one *closed* resolver was reached
  /// (the paper's "nearly 9 out of 10 networks" statistic).
  std::uint64_t asns_with_closed = 0;
};

[[nodiscard]] OpenClosedStats open_closed_stats(const Records& records);

// --- §5.4: forwarding behaviour ----------------------------------------------

struct ForwardingStats {
  struct Family {
    std::uint64_t resolved = 0;  // targets with any follow-up evidence
    std::uint64_t direct = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t both = 0;
  };
  Family v4;
  Family v6;
};

[[nodiscard]] ForwardingStats forwarding_stats(const Records& records);

// --- §3.6.1: middlebox consideration -----------------------------------------

struct MiddleboxStats {
  struct Family {
    std::uint64_t reachable_asns = 0;
    /// ASes where >= 1 recursive-to-auth query came from an address inside
    /// the AS itself (direct evidence the AS border was crossed).
    std::uint64_t with_in_as_client = 0;
    /// Of the remainder, ASes whose queries arrived via major public DNS
    /// services (forwarding, not middlebox interception).
    std::uint64_t remainder_via_public_dns = 0;
    /// ASes with neither signal (possible middlebox ambiguity).
    std::uint64_t unexplained = 0;
  };
  Family v4;
  Family v6;
};

/// The paper's §3.6.1 argument that middleboxes do not confound the per-AS
/// DSAV results: 86%/95% of ASes show in-AS clients; public-DNS forwarding
/// explains most of the rest; ~2%/1% remain ambiguous.
[[nodiscard]] MiddleboxStats middlebox_stats(
    const Records& records,
    const std::vector<cd::net::IpAddr>& public_dns_addrs);

// --- Table 4: port ranges x status x p0f --------------------------------------

struct Table4Row {
  RangeBand band;
  std::uint64_t total = 0;
  std::uint64_t open = 0;
  std::uint64_t closed = 0;
  std::uint64_t p0f_windows = 0;
  std::uint64_t p0f_linux = 0;
};

struct Table4Result {
  std::vector<Table4Row> rows;
  std::uint64_t classified_targets = 0;  // targets with enough port samples
};

/// Minimum direct port samples required to estimate a resolver's range.
inline constexpr std::size_t kMinPortSamples = 8;

[[nodiscard]] Table4Result build_table4(const Records& records,
                                        const P0fDatabase& p0f);

// --- §5.2.1: zero source-port randomization ----------------------------------

struct ZeroRangeStats {
  std::uint64_t total = 0;
  std::uint64_t open = 0;
  std::uint64_t closed = 0;
  std::uint64_t asns = 0;
  std::uint64_t asns_with_closed = 0;
  std::map<std::uint16_t, std::uint64_t> port_counts;  // which fixed port
};

[[nodiscard]] ZeroRangeStats zero_range_stats(const Records& records);

// --- §5.2.3: ineffective allocation (range 1-200) -----------------------------

struct LowRangeStats {
  std::uint64_t total = 0;
  std::uint64_t asns = 0;
  std::uint64_t strictly_increasing = 0;
  std::uint64_t wrapped = 0;
  /// Resolvers showing <= 7 unique ports out of 10 samples.
  std::uint64_t few_unique = 0;
};

[[nodiscard]] LowRangeStats low_range_stats(const Records& records);

// --- Figure 2 / 3b raw series --------------------------------------------------

struct RangeSample {
  int range = 0;  // Windows-wrap-adjusted when p0f identifies Windows
  bool open = false;
  P0fClass p0f = P0fClass::kUnknown;
};

[[nodiscard]] std::vector<RangeSample> range_samples(const Records& records,
                                                     const P0fDatabase& p0f);

/// Helper shared by Table 4 / Fig 2 / Fig 3b: a target's combined direct
/// port samples (v4 then v6 follow-ups).
[[nodiscard]] std::vector<std::uint16_t> combined_ports(
    const cd::scanner::TargetRecord& record);

}  // namespace cd::analysis
