#include "analysis/beta.h"

#include <cmath>
#include <vector>

#include "util/error.h"

namespace cd::analysis {
namespace {

// Continued-fraction evaluation for the incomplete beta function
// (Lentz's algorithm, as in Numerical Recipes' betacf).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double ln_beta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

}  // namespace

double beta_cdf(double x, double a, double b) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front =
      a * std::log(x) + b * std::log(1.0 - x) - ln_beta(a, b);
  const double front = std::exp(ln_front);
  // Use the symmetry that keeps the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double beta_pdf(double x, double a, double b) {
  if (x <= 0.0 || x >= 1.0) return 0.0;
  return std::exp((a - 1.0) * std::log(x) + (b - 1.0) * std::log(1.0 - x) -
                  ln_beta(a, b));
}

double beta_quantile(double p, double a, double b) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (beta_cdf(mid, a, b) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double range_pdf(double range, double pool) {
  CD_ENSURE(pool > 1.0, "range_pdf: pool too small");
  const double scale = pool - 1.0;
  return beta_pdf(range / scale, kRangeSamples - 1, 2) / scale;
}

double range_cdf(double range, double pool) {
  CD_ENSURE(pool > 1.0, "range_cdf: pool too small");
  return beta_cdf(range / (pool - 1.0), kRangeSamples - 1, 2);
}

double range_quantile(double accuracy, double pool) {
  return beta_quantile(accuracy, kRangeSamples - 1, 2) * (pool - 1.0);
}

CutoffResult optimal_cutoff(double small_pool, double large_pool) {
  CD_ENSURE(small_pool < large_pool, "optimal_cutoff: pools out of order");
  CutoffResult best;
  double best_total = 2.0;
  const int hi = static_cast<int>(large_pool);
  for (int r = 0; r <= hi; ++r) {
    // Samples from the small pool above r are misclassified as large; samples
    // from the large pool at or below r are misclassified as small.
    const double err_small = 1.0 - range_cdf(r, small_pool);
    const double err_large = range_cdf(r, large_pool);
    const double total = err_small + err_large;
    if (total < best_total) {
      best_total = total;
      best = CutoffResult{r, err_small, err_large};
    }
  }
  return best;
}

double small_pool_probability(int pool_size, int n, int max_unique) {
  CD_ENSURE(pool_size > 0 && n > 0, "small_pool_probability: bad arguments");
  // dp[u] = P(u distinct values seen so far). Each draw either repeats one of
  // the u seen values (prob u/pool) or introduces a new one.
  std::vector<double> dp(static_cast<std::size_t>(n) + 1, 0.0);
  dp[0] = 1.0;
  const double pool = pool_size;
  for (int draw = 0; draw < n; ++draw) {
    for (int u = std::min(draw, pool_size); u >= 0; --u) {
      const double p = dp[static_cast<std::size_t>(u)];
      if (p == 0.0) continue;
      dp[static_cast<std::size_t>(u)] = p * (u / pool);
      if (u + 1 <= n) dp[static_cast<std::size_t>(u) + 1] += p * (1.0 - u / pool);
    }
  }
  double total = 0.0;
  for (int u = 0; u <= std::min(max_unique, n); ++u) {
    total += dp[static_cast<std::size_t>(u)];
  }
  return total;
}

}  // namespace cd::analysis
