#include "analysis/classify.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace cd::analysis {

using cd::net::IpAddr;
using cd::scanner::SourceCategory;
using cd::scanner::TargetInfo;
using cd::scanner::TargetRecord;
using cd::sim::Asn;

namespace {

int family_index(const IpAddr& addr) {
  return addr.is_v4() ? 0 : 1;
}

const TargetRecord* reachable_record(const Records& records,
                                     const IpAddr& addr) {
  const auto it = records.find(addr);
  if (it == records.end() || !it->second.reachable()) return nullptr;
  return &it->second;
}

}  // namespace

DsavSummary summarize_dsav(const Records& records,
                           std::span<const TargetInfo> targets) {
  DsavSummary out;
  std::set<Asn> total_asns[2];
  std::set<Asn> reach_asns[2];

  for (const TargetInfo& t : targets) {
    const int f = family_index(t.addr);
    FamilyDsav& fam = f == 0 ? out.v4 : out.v6;
    ++fam.targets_total;
    total_asns[f].insert(t.asn);
    if (reachable_record(records, t.addr)) {
      ++fam.targets_reachable;
      reach_asns[f].insert(t.asn);
    }
  }
  out.v4.asns_total = total_asns[0].size();
  out.v6.asns_total = total_asns[1].size();
  out.v4.asns_reachable = reach_asns[0].size();
  out.v6.asns_reachable = reach_asns[1].size();
  return out;
}

CategoryTable build_category_table(const Records& records,
                                   std::span<const TargetInfo> targets) {
  CategoryTable out;
  // Per (family, category): ASes where *some* target was hit by the category
  // (inclusive), and ASes where *every* reachable target depends solely on
  // the category (exclusive).
  std::set<Asn> incl_asns[cd::scanner::kSourceCategoryCount][2];
  std::set<Asn> queried_asns[2];
  std::set<Asn> reach_asns[2];

  for (const TargetInfo& t : targets) {
    const int f = family_index(t.addr);
    ++out.queried[f].addrs;
    queried_asns[f].insert(t.asn);

    const TargetRecord* rec = reachable_record(records, t.addr);
    if (!rec) continue;
    ++out.reachable[f].addrs;
    reach_asns[f].insert(t.asn);

    for (const SourceCategory cat : rec->categories_hit) {
      const auto c = static_cast<std::size_t>(cat);
      ++out.inclusive[c][f].addrs;
      incl_asns[c][f].insert(t.asn);
    }
    // Address-level exclusivity: only one category ever reached this target.
    if (rec->categories_hit.size() == 1) {
      const auto c = static_cast<std::size_t>(*rec->categories_hit.begin());
      ++out.exclusive[c][f].addrs;
    }
  }

  for (int f = 0; f < 2; ++f) {
    out.queried[f].asns = queried_asns[f].size();
    out.reachable[f].asns = reach_asns[f].size();
    for (int c = 0; c < cd::scanner::kSourceCategoryCount; ++c) {
      out.inclusive[c][f].asns = incl_asns[c][f].size();
    }
  }

  // AS-level exclusivity: recompute by asking, for each AS and category,
  // whether the AS would still have any reachable target with that category
  // removed.
  std::map<std::pair<Asn, int>, std::set<SourceCategory>> per_as_union;
  std::map<std::pair<Asn, int>, std::set<SourceCategory>> per_as_multi;
  for (const TargetInfo& t : targets) {
    const TargetRecord* rec = reachable_record(records, t.addr);
    if (!rec) continue;
    const int f = family_index(t.addr);
    auto& uni = per_as_union[{t.asn, f}];
    uni.insert(rec->categories_hit.begin(), rec->categories_hit.end());
    if (rec->categories_hit.size() > 1) {
      auto& multi = per_as_multi[{t.asn, f}];
      multi.insert(rec->categories_hit.begin(), rec->categories_hit.end());
    }
  }
  for (const auto& [key, uni] : per_as_union) {
    const auto& [asn, f] = key;
    for (const SourceCategory cat : uni) {
      // Removing `cat`: a target still counts if it was hit by any other
      // category. The AS survives if the union of other-category hits is
      // non-empty.
      bool survives = false;
      const auto mit = per_as_multi.find(key);
      if (mit != per_as_multi.end()) {
        // Some target was hit by >1 category; unless that set is exactly
        // {cat}, which cannot happen (size > 1), the AS survives.
        survives = true;
      }
      if (!survives) {
        // All targets were single-category; survives iff another category
        // appears in the union.
        survives = uni.size() > 1;
      }
      if (!survives) {
        ++out.exclusive[static_cast<std::size_t>(cat)][f].asns;
      }
    }
  }
  return out;
}

std::vector<CountryRow> dsav_by_country(const Records& records,
                                        std::span<const TargetInfo> targets,
                                        const GeoDb& geo) {
  struct Acc {
    std::set<Asn> ases_total;
    std::set<Asn> ases_reachable;
    std::uint64_t targets_total = 0;
    std::uint64_t targets_reachable = 0;
  };
  std::map<std::string, Acc> by_country;

  for (const TargetInfo& t : targets) {
    const auto country = geo.country_of(t.addr);
    if (!country) continue;
    Acc& acc = by_country[*country];
    acc.ases_total.insert(t.asn);
    ++acc.targets_total;
    if (reachable_record(records, t.addr)) {
      acc.ases_reachable.insert(t.asn);
      ++acc.targets_reachable;
    }
  }

  std::vector<CountryRow> out;
  out.reserve(by_country.size());
  for (const auto& [country, acc] : by_country) {
    out.push_back(CountryRow{country, acc.ases_total.size(),
                             acc.ases_reachable.size(), acc.targets_total,
                             acc.targets_reachable});
  }
  return out;
}

OpenClosedStats open_closed_stats(const Records& records) {
  OpenClosedStats out;
  std::set<Asn> reach_asns;
  std::set<Asn> closed_asns;
  for (const auto& [addr, rec] : records) {
    if (!rec.reachable()) continue;
    reach_asns.insert(rec.asn);
    if (rec.open_hit) {
      ++out.open;
    } else {
      ++out.closed;
      closed_asns.insert(rec.asn);
    }
  }
  out.reachable_asns = reach_asns.size();
  out.asns_with_closed = closed_asns.size();
  return out;
}

ForwardingStats forwarding_stats(const Records& records) {
  ForwardingStats out;
  for (const auto& [addr, rec] : records) {
    if (!rec.reachable()) continue;
    if (!rec.direct_seen && !rec.forwarded_seen) continue;
    ForwardingStats::Family& fam = addr.is_v4() ? out.v4 : out.v6;
    ++fam.resolved;
    if (rec.direct_seen) ++fam.direct;
    if (rec.forwarded_seen) ++fam.forwarded;
    if (rec.direct_seen && rec.forwarded_seen) ++fam.both;
  }
  return out;
}

MiddleboxStats middlebox_stats(
    const Records& records,
    const std::vector<IpAddr>& public_dns_addrs) {
  MiddleboxStats out;
  struct AsEvidence {
    bool in_as = false;
    bool via_public = false;
  };
  std::map<std::pair<Asn, int>, AsEvidence> per_as;

  for (const auto& [addr, rec] : records) {
    if (!rec.reachable()) continue;
    const int f = family_index(addr);
    AsEvidence& ev = per_as[{rec.asn, f}];
    // The target answering directly, or any client inside the target AS,
    // proves the AS border was crossed.
    if (rec.direct_seen || rec.client_in_target_as) ev.in_as = true;
    for (const IpAddr& fwd : rec.forwarders_seen) {
      if (std::find(public_dns_addrs.begin(), public_dns_addrs.end(), fwd) !=
          public_dns_addrs.end()) {
        ev.via_public = true;
      }
    }
  }

  for (const auto& [key, ev] : per_as) {
    MiddleboxStats::Family& fam = key.second == 0 ? out.v4 : out.v6;
    ++fam.reachable_asns;
    if (ev.in_as) {
      ++fam.with_in_as_client;
    } else if (ev.via_public) {
      ++fam.remainder_via_public_dns;
    } else {
      ++fam.unexplained;
    }
  }
  return out;
}

std::vector<std::uint16_t> combined_ports(const TargetRecord& record) {
  std::vector<std::uint16_t> ports = record.ports_v4;
  ports.insert(ports.end(), record.ports_v6.begin(), record.ports_v6.end());
  return ports;
}

Table4Result build_table4(const Records& records, const P0fDatabase& p0f) {
  Table4Result out;
  out.rows.reserve(table4_bands().size());
  for (const RangeBand& band : table4_bands()) {
    out.rows.push_back(Table4Row{band, 0, 0, 0, 0, 0});
  }

  for (const auto& [addr, rec] : records) {
    if (!rec.reachable()) continue;
    const std::vector<std::uint16_t> ports = combined_ports(rec);
    if (ports.size() < kMinPortSamples) continue;
    ++out.classified_targets;

    P0fClass cls = P0fClass::kUnknown;
    if (rec.tcp_syn) cls = p0f.classify(*rec.tcp_syn);

    // The paper adjusts ports for resolvers p0f identified as Windows.
    int range;
    if (cls == P0fClass::kWindows) {
      range = adjusted_range(ports);
    } else {
      const PortStats stats = compute_port_stats(ports);
      range = stats.range;
    }

    Table4Row& row = out.rows[classify_range(range)];
    ++row.total;
    if (rec.open_hit) {
      ++row.open;
    } else {
      ++row.closed;
    }
    if (cls == P0fClass::kWindows) ++row.p0f_windows;
    if (cls == P0fClass::kLinux) ++row.p0f_linux;
  }
  return out;
}

ZeroRangeStats zero_range_stats(const Records& records) {
  ZeroRangeStats out;
  std::set<Asn> asns;
  std::set<Asn> closed_asns;
  for (const auto& [addr, rec] : records) {
    if (!rec.reachable()) continue;
    const std::vector<std::uint16_t> ports = combined_ports(rec);
    if (ports.size() < kMinPortSamples) continue;
    const PortStats stats = compute_port_stats(ports);
    if (stats.range != 0) continue;
    ++out.total;
    ++out.port_counts[ports.front()];
    asns.insert(rec.asn);
    if (rec.open_hit) {
      ++out.open;
    } else {
      ++out.closed;
      closed_asns.insert(rec.asn);
    }
  }
  out.asns = asns.size();
  out.asns_with_closed = closed_asns.size();
  return out;
}

LowRangeStats low_range_stats(const Records& records) {
  LowRangeStats out;
  std::set<Asn> asns;
  for (const auto& [addr, rec] : records) {
    if (!rec.reachable()) continue;
    const std::vector<std::uint16_t> ports = combined_ports(rec);
    if (ports.size() < kMinPortSamples) continue;
    const PortStats stats = compute_port_stats(ports);
    if (stats.range < 1 || stats.range > 200) continue;
    ++out.total;
    asns.insert(rec.asn);
    if (stats.strictly_increasing) {
      ++out.strictly_increasing;
      if (stats.wrapped) ++out.wrapped;
    }
    if (stats.unique_count <= 7) ++out.few_unique;
  }
  out.asns = asns.size();
  return out;
}

std::vector<RangeSample> range_samples(const Records& records,
                                       const P0fDatabase& p0f) {
  std::vector<RangeSample> out;
  for (const auto& [addr, rec] : records) {
    if (!rec.reachable()) continue;
    const std::vector<std::uint16_t> ports = combined_ports(rec);
    if (ports.size() < kMinPortSamples) continue;

    RangeSample sample;
    if (rec.tcp_syn) sample.p0f = p0f.classify(*rec.tcp_syn);
    if (sample.p0f == P0fClass::kWindows) {
      sample.range = adjusted_range(ports);
    } else {
      sample.range = compute_port_stats(ports).range;
    }
    sample.open = rec.open_hit;
    out.push_back(sample);
  }
  return out;
}

}  // namespace cd::analysis
