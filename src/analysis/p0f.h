// Passive TCP/IP OS fingerprinting in the style of p0f (paper §5.3.1).
//
// Classifies a captured SYN by matching its TTL, window size, MSS, and TCP
// option layout against a small signature database. Like the real tool, most
// stacks in the wild match nothing and come back unknown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"

namespace cd::analysis {

enum class P0fClass : std::uint8_t {
  kUnknown = 0,
  kLinux,
  kWindows,
  kFreeBsd,
  kBaiduSpider,
};

[[nodiscard]] std::string p0f_class_name(P0fClass cls);

struct P0fSignature {
  P0fClass cls = P0fClass::kUnknown;
  std::string label;
  std::uint8_t initial_ttl = 64;
  std::uint16_t window = 0;
  std::uint16_t mss = 0;
  std::vector<cd::net::TcpOptionKind> options;  // layout, in order
};

class P0fDatabase {
 public:
  /// The built-in signature set (Linux / Windows / FreeBSD / BaiduSpider).
  [[nodiscard]] static const P0fDatabase& standard();

  void add(P0fSignature signature);

  /// Classifies a SYN packet; kUnknown when nothing matches. The observed
  /// TTL must be at or below the signature's initial TTL by fewer than 32
  /// hops (distance tolerance), and window/MSS/option layout must match
  /// exactly.
  [[nodiscard]] P0fClass classify(const cd::net::Packet& syn) const;

  [[nodiscard]] const std::vector<P0fSignature>& signatures() const {
    return signatures_;
  }

 private:
  std::vector<P0fSignature> signatures_;
};

}  // namespace cd::analysis
