#include "analysis/passive.h"

#include <algorithm>

#include "analysis/port_range.h"

namespace cd::analysis {

PassiveComparison compare_with_passive(const Records& records,
                                       const PassiveCapture& capture) {
  PassiveComparison out;
  for (const auto& [addr, rec] : records) {
    if (!rec.reachable()) continue;
    const std::vector<std::uint16_t> ports = combined_ports(rec);
    if (ports.size() < kMinPortSamples) continue;
    const PortStats active = compute_port_stats(ports);
    if (active.range != 0) continue;
    ++out.zero_now;
    const std::uint16_t fixed_port = ports.front();

    const auto it = capture.find(addr);
    if (it == capture.end() || it->second.empty()) {
      ++out.insufficient;
      continue;
    }
    const std::vector<std::uint16_t>& old_ports = it->second;
    const bool enough_queries = old_ports.size() >= kPassiveMinSamples;
    const bool all_same_fixed =
        std::all_of(old_ports.begin(), old_ports.end(),
                    [&](std::uint16_t p) { return p == fixed_port; });
    if (!enough_queries && !all_same_fixed) {
      ++out.insufficient;
      continue;
    }

    const PortStats old_stats = compute_port_stats(old_ports);
    if (old_stats.range == 0) {
      ++out.zero_then;  // "similarly showed no variance in 2018"
    } else {
      ++out.varied_then;  // randomization existed and was later lost
    }
  }
  return out;
}

}  // namespace cd::analysis
