// Methodology-agreement join: this paper's per-resolver inbound-SAV verdicts
// against the Closed Resolver Project's per-/24 verdicts, over the same
// world.
//
// The two studies measure the same phenomenon from opposite directions. The
// paper spoofs *external* sources at known resolvers and reports the share
// of networks whose borders let them through; Korczyński et al. spoof each
// network's *internal* resolver address across every announced /24 and
// report ~49% of IPv4 networks vulnerable. Joining both modalities per AS
// yields four outcomes:
//
//   agree-vulnerable  both scanners got spoofed traffic in
//   agree-filtered    neither did
//   resolver-only     the paper's external-source probes landed but the
//                     prefix scanner's did not — the signature of a border
//                     that drops inbound packets claiming *its own* subnet
//                     (FilterPolicy::drop_inbound_same_subnet) while still
//                     admitting arbitrary external sources
//   prefix-only       the prefix scanner found a listening resolver the
//                     per-resolver campaign never probed (its /24 walk
//                     covers hosts outside the DITL-derived target list)
//
// The disagreement rows are the point: neither methodology dominates, and
// the aggregate share each one reports depends on which borders deploy
// which filter — exactly why the two papers' headline numbers differ.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/classify.h"
#include "scanner/crosscheck.h"

namespace cd::analysis {

enum class MethodAgreement : std::uint8_t {
  kAgreeVulnerable = 0,
  kAgreeFiltered = 1,
  kResolverOnly = 2,  // method-disagrees: only the per-resolver scanner hit
  kPrefixOnly = 3,    // method-disagrees: only the prefix scanner hit
};

[[nodiscard]] std::string method_agreement_name(MethodAgreement verdict);

/// One AS's joined verdict.
struct AsAgreement {
  cd::sim::Asn asn = 0;
  std::uint64_t resolvers_probed = 0;
  std::uint64_t resolvers_reachable = 0;  // paper modality: spoof got in
  std::uint64_t prefixes_probed = 0;
  std::uint64_t prefixes_vulnerable = 0;  // prefix modality: query escaped
  MethodAgreement verdict = MethodAgreement::kAgreeFiltered;
};

struct AgreementReport {
  /// One row per AS in either modality's universe, sorted by ASN.
  std::vector<AsAgreement> rows;
  std::uint64_t ases = 0;
  std::uint64_t agree_vulnerable = 0;
  std::uint64_t agree_filtered = 0;
  std::uint64_t resolver_only = 0;
  std::uint64_t prefix_only = 0;
  /// The Closed Resolver headline aggregate (~49% in the study): share of
  /// probed /24s that admitted the in-prefix-spoofed probe.
  std::uint64_t prefixes_probed = 0;
  std::uint64_t prefixes_vulnerable = 0;
  double prefix_vulnerable_share = 0.0;
  /// This paper's analogous per-AS aggregate: share of probed ASes with at
  /// least one externally-spoofable resolver.
  std::uint64_t resolver_ases_probed = 0;
  std::uint64_t resolver_ases_vulnerable = 0;
};

/// Joins the per-resolver campaign evidence (`records` over `targets`)
/// against the prefix scanner's verdicts (`prefix_records` over `probed`).
/// Pure function of its inputs; both scanners must have run over the same
/// world for the join to be meaningful.
[[nodiscard]] AgreementReport methodology_agreement(
    const Records& records, std::span<const cd::scanner::TargetInfo> targets,
    const cd::scanner::PrefixRecords& prefix_records,
    std::span<const cd::scanner::PrefixTarget> probed);

/// Renders the agreement aggregates plus the first `max_rows` per-AS rows as
/// a text table (report.h idiom).
[[nodiscard]] std::string render_agreement(const AgreementReport& report,
                                           std::size_t max_rows = 20);

}  // namespace cd::analysis
