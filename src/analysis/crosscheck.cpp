#include "analysis/crosscheck.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace cd::analysis {

std::string method_agreement_name(MethodAgreement verdict) {
  switch (verdict) {
    case MethodAgreement::kAgreeVulnerable: return "agree-vulnerable";
    case MethodAgreement::kAgreeFiltered: return "agree-filtered";
    case MethodAgreement::kResolverOnly: return "resolver-only";
    case MethodAgreement::kPrefixOnly: return "prefix-only";
  }
  return "?";
}

AgreementReport methodology_agreement(
    const Records& records, std::span<const cd::scanner::TargetInfo> targets,
    const cd::scanner::PrefixRecords& prefix_records,
    std::span<const cd::scanner::PrefixTarget> probed) {
  // std::map: rows come out sorted by ASN, and the row set is independent of
  // the (unordered) iteration order of the inputs.
  std::map<cd::sim::Asn, AsAgreement> by_as;

  for (const cd::scanner::TargetInfo& target : targets) {
    AsAgreement& row = by_as[target.asn];
    row.asn = target.asn;
    ++row.resolvers_probed;
    const auto it = records.find(target.addr);
    if (it != records.end() && it->second.reachable()) {
      ++row.resolvers_reachable;
    }
  }

  for (const cd::scanner::PrefixTarget& pt : probed) {
    AsAgreement& row = by_as[pt.asn];
    row.asn = pt.asn;
    ++row.prefixes_probed;
  }
  for (const auto& [base, rec] : prefix_records) {
    if (!rec.vulnerable()) continue;
    AsAgreement& row = by_as[rec.asn];
    row.asn = rec.asn;
    ++row.prefixes_vulnerable;
  }

  AgreementReport report;
  report.rows.reserve(by_as.size());
  for (auto& [asn, row] : by_as) {
    const bool resolver_hit = row.resolvers_reachable > 0;
    const bool prefix_hit = row.prefixes_vulnerable > 0;
    row.verdict = resolver_hit
                      ? (prefix_hit ? MethodAgreement::kAgreeVulnerable
                                    : MethodAgreement::kResolverOnly)
                      : (prefix_hit ? MethodAgreement::kPrefixOnly
                                    : MethodAgreement::kAgreeFiltered);
    switch (row.verdict) {
      case MethodAgreement::kAgreeVulnerable: ++report.agree_vulnerable; break;
      case MethodAgreement::kAgreeFiltered: ++report.agree_filtered; break;
      case MethodAgreement::kResolverOnly: ++report.resolver_only; break;
      case MethodAgreement::kPrefixOnly: ++report.prefix_only; break;
    }
    report.prefixes_probed += row.prefixes_probed;
    report.prefixes_vulnerable += row.prefixes_vulnerable;
    if (row.resolvers_probed > 0) {
      ++report.resolver_ases_probed;
      if (resolver_hit) ++report.resolver_ases_vulnerable;
    }
    report.rows.push_back(row);
  }
  report.ases = report.rows.size();
  report.prefix_vulnerable_share =
      report.prefixes_probed == 0
          ? 0.0
          : static_cast<double>(report.prefixes_vulnerable) /
                static_cast<double>(report.prefixes_probed);
  return report;
}

std::string render_agreement(const AgreementReport& report,
                             std::size_t max_rows) {
  std::ostringstream out;
  out << "== Methodology cross-check (per-resolver vs per-/24) ==\n";
  out << "ASes joined:        " << report.ases << "\n";
  out << "  agree-vulnerable: " << report.agree_vulnerable << "\n";
  out << "  agree-filtered:   " << report.agree_filtered << "\n";
  out << "  resolver-only:    " << report.resolver_only << "\n";
  out << "  prefix-only:      " << report.prefix_only << "\n";
  out << "Prefix modality:    " << report.prefixes_vulnerable << "/"
      << report.prefixes_probed << " /24s vulnerable ("
      << static_cast<int>(report.prefix_vulnerable_share * 100.0 + 0.5)
      << "%)\n";
  out << "Resolver modality:  " << report.resolver_ases_vulnerable << "/"
      << report.resolver_ases_probed << " probed ASes vulnerable\n";
  out << "ASN      resolvers  reachable  /24s   vuln   verdict\n";
  const std::size_t n = std::min(max_rows, report.rows.size());
  for (std::size_t i = 0; i < n; ++i) {
    const AsAgreement& row = report.rows[i];
    out << row.asn << "  " << row.resolvers_probed << "  "
        << row.resolvers_reachable << "  " << row.prefixes_probed << "  "
        << row.prefixes_vulnerable << "  "
        << method_agreement_name(row.verdict) << "\n";
  }
  if (report.rows.size() > n) {
    out << "... (" << (report.rows.size() - n) << " more ASes)\n";
  }
  return out.str();
}

}  // namespace cd::analysis
