// One-call experiment report: renders every §4/§5 aggregate from a
// completed run as a human-readable text document (the library's equivalent
// of the paper's evaluation section).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/classify.h"
#include "analysis/passive.h"

namespace cd::analysis {

struct ReportOptions {
  /// Include the per-country Table 1/2 sections (needs a populated GeoDb).
  bool countries = true;
  /// Rows per country table.
  std::size_t country_rows = 10;
  /// Include the §5.2.2 section (needs a passive capture).
  bool passive = true;
};

/// Renders the full measurement report: DSAV prevalence, category
/// effectiveness, open/closed, forwarding, port-range bands, zero-range and
/// low-range drill-downs, and (optionally) country tables and the passive
/// cross-check. Pure function of its inputs; safe to call repeatedly.
[[nodiscard]] std::string render_report(
    const Records& records, std::span<const cd::scanner::TargetInfo> targets,
    const GeoDb& geo, const PassiveCapture& passive,
    const std::vector<cd::net::IpAddr>& public_dns_addrs,
    const ReportOptions& options = {});

}  // namespace cd::analysis
