#include "analysis/report.h"

#include <algorithm>

#include "util/str.h"
#include "util/table.h"

namespace cd::analysis {

namespace {

std::string pct_cell(std::uint64_t part, std::uint64_t whole) {
  return cd::with_commas(part) + " (" +
         cd::percent(static_cast<double>(part), static_cast<double>(whole)) +
         ")";
}

void render_dsav(std::string& out, const DsavSummary& s) {
  cd::TextTable t({"", "targets", "reachable", "ASes", "infiltrated"});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, cd::Align::kRight);
  t.add_row({"IPv4", cd::with_commas(s.v4.targets_total),
             pct_cell(s.v4.targets_reachable, s.v4.targets_total),
             cd::with_commas(s.v4.asns_total),
             pct_cell(s.v4.asns_reachable, s.v4.asns_total)});
  t.add_row({"IPv6", cd::with_commas(s.v6.targets_total),
             pct_cell(s.v6.targets_reachable, s.v6.targets_total),
             cd::with_commas(s.v6.asns_total),
             pct_cell(s.v6.asns_reachable, s.v6.asns_total)});
  out += "== DSAV prevalence ==\n" + t.to_string() + "\n";
}

void render_categories(std::string& out, const CategoryTable& table) {
  cd::TextTable t({"category", "v4 addrs", "v4 ASNs", "v6 addrs", "v6 ASNs",
                   "v4 excl", "v6 excl"});
  for (std::size_t c = 1; c < 7; ++c) t.set_align(c, cd::Align::kRight);
  for (int c = 0; c < cd::scanner::kSourceCategoryCount; ++c) {
    const auto cat = static_cast<cd::scanner::SourceCategory>(c);
    t.add_row({cd::scanner::source_category_name(cat),
               pct_cell(table.inclusive[c][0].addrs, table.reachable[0].addrs),
               pct_cell(table.inclusive[c][0].asns, table.reachable[0].asns),
               pct_cell(table.inclusive[c][1].addrs, table.reachable[1].addrs),
               pct_cell(table.inclusive[c][1].asns, table.reachable[1].asns),
               cd::with_commas(table.exclusive[c][0].addrs),
               cd::with_commas(table.exclusive[c][1].addrs)});
  }
  out += "== Spoofed-source categories (of reachable) ==\n" + t.to_string() +
         "\n";
}

void render_bands(std::string& out, const Table4Result& result) {
  cd::TextTable t({"source port range (OS)", "total", "open", "closed",
                   "p0f Win", "p0f Lin"});
  for (std::size_t c = 1; c < 6; ++c) t.set_align(c, cd::Align::kRight);
  for (const Table4Row& row : result.rows) {
    std::string label = row.band.label;
    if (!row.band.os.empty()) label += " (" + row.band.os + ")";
    t.add_row({label, cd::with_commas(row.total), cd::with_commas(row.open),
               cd::with_commas(row.closed), cd::with_commas(row.p0f_windows),
               cd::with_commas(row.p0f_linux)});
  }
  out += "== Source-port ranges (" +
         cd::with_commas(result.classified_targets) +
         " classified resolvers) ==\n" + t.to_string() + "\n";
}

void render_countries(std::string& out, std::vector<CountryRow> rows,
                      std::size_t limit) {
  std::sort(rows.begin(), rows.end(),
            [](const CountryRow& a, const CountryRow& b) {
              return a.ases_total > b.ases_total;
            });
  cd::TextTable t({"country", "ASes", "reachable", "targets", "reachable "});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, cd::Align::kRight);
  std::size_t shown = 0;
  for (const CountryRow& row : rows) {
    if (row.country == "Other") continue;
    if (shown++ >= limit) break;
    t.add_row({row.country, cd::with_commas(row.ases_total),
               pct_cell(row.ases_reachable, row.ases_total),
               cd::with_commas(row.targets_total),
               pct_cell(row.targets_reachable, row.targets_total)});
  }
  out += "== DSAV by country (top " + std::to_string(limit) +
         " by AS count) ==\n" + t.to_string() + "\n";
}

}  // namespace

std::string render_report(const Records& records,
                          std::span<const cd::scanner::TargetInfo> targets,
                          const GeoDb& geo, const PassiveCapture& passive,
                          const std::vector<cd::net::IpAddr>& public_dns_addrs,
                          const ReportOptions& options) {
  std::string out;
  out += "================ closeddoors measurement report ================\n\n";

  render_dsav(out, summarize_dsav(records, targets));

  if (options.countries && geo.size() > 0) {
    render_countries(out, dsav_by_country(records, targets, geo),
                     options.country_rows);
  }

  render_categories(out, build_category_table(records, targets));

  const auto oc = open_closed_stats(records);
  out += "== Open vs. closed ==\n";
  out += "open " + pct_cell(oc.open, oc.open + oc.closed) + ", closed " +
         pct_cell(oc.closed, oc.open + oc.closed) +
         "; infiltrated ASes with a closed resolver reached: " +
         pct_cell(oc.asns_with_closed, oc.reachable_asns) + "\n\n";

  const auto fwd = forwarding_stats(records);
  out += "== Forwarding ==\n";
  out += "IPv4: direct " + pct_cell(fwd.v4.direct, fwd.v4.resolved) +
         ", forwarded " + pct_cell(fwd.v4.forwarded, fwd.v4.resolved) +
         ", both " + cd::with_commas(fwd.v4.both) + "\n";
  out += "IPv6: direct " + pct_cell(fwd.v6.direct, fwd.v6.resolved) +
         ", forwarded " + pct_cell(fwd.v6.forwarded, fwd.v6.resolved) +
         ", both " + cd::with_commas(fwd.v6.both) + "\n\n";

  const auto mb = middlebox_stats(records, public_dns_addrs);
  out += "== Middlebox check ==\n";
  out += "IPv4 infiltrated ASes with in-AS client: " +
         pct_cell(mb.v4.with_in_as_client, mb.v4.reachable_asns) +
         "; via public DNS: " +
         cd::with_commas(mb.v4.remainder_via_public_dns) + "; unexplained: " +
         pct_cell(mb.v4.unexplained, mb.v4.reachable_asns) + "\n\n";

  render_bands(out, build_table4(records, P0fDatabase::standard()));

  const auto zero = zero_range_stats(records);
  out += "== Zero source-port randomization ==\n";
  out += cd::with_commas(zero.total) + " resolvers (" +
         cd::with_commas(zero.open) + " open / " +
         cd::with_commas(zero.closed) + " closed) across " +
         cd::with_commas(zero.asns) + " ASes";
  std::uint64_t port53 = 0;
  const auto it53 = zero.port_counts.find(53);
  if (it53 != zero.port_counts.end()) port53 = it53->second;
  out += "; fixed port 53: " + pct_cell(port53, zero.total) + "\n\n";

  const auto low = low_range_stats(records);
  out += "== Ineffective allocation (range 1-200) ==\n";
  out += cd::with_commas(low.total) + " resolvers; strictly increasing: " +
         pct_cell(low.strictly_increasing, low.total) + " (wrapped " +
         cd::with_commas(low.wrapped) + "); <=7 unique of 10: " +
         pct_cell(low.few_unique, low.total) + "\n\n";

  if (options.passive && !passive.empty()) {
    const auto cmp = compare_with_passive(records, passive);
    out += "== Passive cross-check (18 months earlier) ==\n";
    out += "zero-range now: " + cd::with_commas(cmp.zero_now) +
           "; already fixed then: " + pct_cell(cmp.zero_then, cmp.zero_now) +
           "; regressed: " + pct_cell(cmp.varied_then, cmp.zero_now) +
           "; insufficient data: " +
           pct_cell(cmp.insufficient, cmp.zero_now) + "\n";
  }
  return out;
}

}  // namespace cd::analysis
