// Passive-measurement cross-check (paper §5.2.2).
//
// The paper validated its active zero-source-port findings against the 2018
// DITL capture: for each resolver currently using a single source port, did
// the same address already show zero port variance 18 months earlier?
// Findings: 51% already fixed, 25% *regressed* (had variance before), 24%
// lacked comparable passive data.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/classify.h"

namespace cd::analysis {

/// Historical source-port observations per resolver address (what a root
/// operator's packet capture yields after filtering to one client).
using PassiveCapture =
    std::unordered_map<cd::net::IpAddr, std::vector<std::uint16_t>,
                       cd::net::IpAddrHash>;

struct PassiveComparison {
  std::uint64_t zero_now = 0;      // actively measured zero-range resolvers
  std::uint64_t zero_then = 0;     // also zero-variance in the old capture
  std::uint64_t varied_then = 0;   // had variance before: security regressed
  std::uint64_t insufficient = 0;  // old capture lacks comparable data
};

/// Number of passive samples required for a fair comparison (the paper's
/// condition 1: "10 queries for unique query names").
inline constexpr std::size_t kPassiveMinSamples = 10;

/// Applies the paper's inclusion rules: a zero-range resolver is comparable
/// if the old capture holds >= kPassiveMinSamples queries from it, or if
/// every old query used exactly the port seen actively (condition 2).
[[nodiscard]] PassiveComparison compare_with_passive(
    const Records& records, const PassiveCapture& capture);

}  // namespace cd::analysis
