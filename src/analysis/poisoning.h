// Off-path poisoning outcomes joined against the port-entropy model.
//
// The attack plane (attack/poison.h) records, per victim resolver, whether a
// forged answer actually entered its cache. This module aggregates those
// realized outcomes per (DNS software, OS) profile and sets them beside what
// the paper's §5.3.2 port-range statistics predict: the same Beta(n-1, 2)
// range model that classifies a resolver's pool size also prices an off-path
// attacker's per-packet odds. A profile whose ports fit in a tiny pool — or
// walk sequentially, so the attacker tracks them in lockstep — must fall at
// a rate the model forecasts, while a full-range randomizer survives at the
// predicted (near-zero) rate. The join is the result: realized and predicted
// columns disagreeing would mean either the injector or the entropy
// classification is wrong.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/poison.h"
#include "resolver/software.h"
#include "sim/os_model.h"

namespace cd::analysis {

/// One (software, OS) profile's realized-vs-predicted row.
struct PoisonProfileRow {
  cd::resolver::DnsSoftware software = cd::resolver::DnsSoftware::kBind8;
  cd::sim::OsId os = cd::sim::OsId::kEmbeddedCpe;
  std::uint64_t victims = 0;    // raced resolvers with this profile
  std::uint64_t reachable = 0;  // victims whose queries reached the auth
  std::uint64_t successes = 0;  // victims with a poisoned cache entry
  double realized = 0.0;        // successes / reachable
  /// Beta-fit port-pool size: mean over victims of the §5.3.2 uniform-range
  /// estimator, range * (n+1)/(n-1), on the wrap-adjusted observed ports.
  double pool_estimate = 0.0;
  /// Ports walk a trackable pattern (fixed, or strictly increasing with at
  /// most one wrap): the attacker guesses next-in-window, not uniformly.
  bool tracked_ports = false;
  /// Profile ships predictable transaction ids (resolver::weak_txid).
  bool weak_txid = false;
  /// Model probability that at least one forged packet is accepted over the
  /// campaign, from the effective (port x txid) guess space and the
  /// configured packet budget.
  double predicted = 0.0;
};

struct PoisonReport {
  /// One row per (software, OS) profile seen among the victims, sorted
  /// worst-first: realized success rate descending, predicted rate breaking
  /// ties, then profile ids for determinism.
  std::vector<PoisonProfileRow> rows;
  std::uint64_t victims = 0;
  std::uint64_t reachable = 0;
  std::uint64_t successes = 0;
  std::uint64_t triggers = 0;
  std::uint64_t forged = 0;
};

/// Aggregates per-victim attack records into per-profile rows and computes
/// the model predictions for the packet budget in `config`. Pure function of
/// its inputs.
[[nodiscard]] PoisonReport summarize_poisoning(
    const cd::attack::PoisonRecords& records,
    const cd::attack::PoisonConfig& config, std::uint64_t triggers = 0,
    std::uint64_t forged = 0);

/// Renders the aggregate counters plus the per-profile table.
[[nodiscard]] std::string render_poisoning(const PoisonReport& report);

}  // namespace cd::analysis
