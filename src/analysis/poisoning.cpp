#include "analysis/poisoning.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "analysis/port_range.h"

namespace cd::analysis {

namespace {

/// Per-packet acceptance odds and campaign-level prediction for one profile
/// row. The attacker spends burst * rounds forged packets; each one hits iff
/// it guesses the (port, txid) pair, so the effective guess-space product is
/// the whole model.
void predict(PoisonProfileRow& row, const cd::attack::PoisonConfig& config) {
  double port_space;
  if (row.tracked_ports) {
    // Fixed or sequential: the scouting rounds pin the walk, and the burst
    // covers the next-in-window continuation, so the port guess is free.
    port_space = 1.0;
  } else if (row.pool_estimate >= 1.0) {
    port_space = row.pool_estimate;
  } else {
    // No usable port sample (victim never reachable): price it as a full
    // randomizer rather than predicting success off no evidence.
    port_space = 65536.0;
  }
  const double txid_space = row.weak_txid ? 1.0 : 65536.0;
  const double p = std::min(1.0, 1.0 / (port_space * txid_space));
  const double attempts =
      static_cast<double>(config.burst) * static_cast<double>(config.rounds);
  row.predicted = 1.0 - std::pow(1.0 - p, attempts);
}

}  // namespace

PoisonReport summarize_poisoning(const cd::attack::PoisonRecords& records,
                                 const cd::attack::PoisonConfig& config,
                                 std::uint64_t triggers,
                                 std::uint64_t forged) {
  struct Accum {
    PoisonProfileRow row;
    double pool_sum = 0.0;
    std::uint64_t pool_n = 0;
    std::uint64_t sampled = 0;  // victims with enough ports to judge
    std::uint64_t trackable = 0;
  };
  // std::map: rows come out sorted by profile id, independent of the
  // records' iteration order.
  std::map<std::pair<std::uint8_t, std::uint8_t>, Accum> by_profile;

  PoisonReport report;
  report.triggers = triggers;
  report.forged = forged;
  for (const auto& [addr, rec] : records) {
    Accum& acc = by_profile[{static_cast<std::uint8_t>(rec.software),
                             static_cast<std::uint8_t>(rec.os)}];
    acc.row.software = rec.software;
    acc.row.os = rec.os;
    ++acc.row.victims;
    ++report.victims;
    if (rec.reachable) {
      ++acc.row.reachable;
      ++report.reachable;
    }
    if (rec.success) {
      ++acc.row.successes;
      ++report.successes;
    }
    const PortStats stats = compute_port_stats(rec.observed_ports);
    if (stats.n >= 2) {
      ++acc.sampled;
      if (stats.unique_count == 1 || stats.strictly_increasing) {
        ++acc.trackable;
      }
      // Uniform-support estimator behind the Beta(n-1, 2) range model:
      // E[range] = N (n-1)/(n+1), so N-hat = range (n+1)/(n-1). The wrap
      // adjustment keeps a wrapped Windows pool comparable (§5.3.2).
      const double n = static_cast<double>(stats.n);
      const double est = static_cast<double>(adjusted_range(
                             rec.observed_ports)) *
                         (n + 1.0) / (n - 1.0);
      acc.pool_sum += std::max(est, 1.0);
      ++acc.pool_n;
    }
  }

  report.rows.reserve(by_profile.size());
  for (auto& [key, acc] : by_profile) {
    PoisonProfileRow& row = acc.row;
    row.realized = row.reachable == 0
                       ? 0.0
                       : static_cast<double>(row.successes) /
                             static_cast<double>(row.reachable);
    row.pool_estimate =
        acc.pool_n == 0 ? 0.0 : acc.pool_sum / static_cast<double>(acc.pool_n);
    row.tracked_ports = acc.sampled > 0 && acc.trackable == acc.sampled;
    row.weak_txid = cd::resolver::weak_txid(row.software);
    predict(row, config);
    report.rows.push_back(row);
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const PoisonProfileRow& a, const PoisonProfileRow& b) {
              if (a.realized != b.realized) return a.realized > b.realized;
              if (a.predicted != b.predicted) return a.predicted > b.predicted;
              if (a.software != b.software) return a.software < b.software;
              return a.os < b.os;
            });
  return report;
}

std::string render_poisoning(const PoisonReport& report) {
  std::ostringstream out;
  out << "== Off-path poisoning (realized vs port-entropy prediction) ==\n";
  out << "Victims raced:    " << report.victims << "\n";
  out << "  reachable:      " << report.reachable << "\n";
  out << "  poisoned:       " << report.successes << "\n";
  out << "Triggers sent:    " << report.triggers << "\n";
  out << "Forgeries sent:   " << report.forged << "\n";
  out << "software                       os                      victims"
         "  poisoned  realized  pool-est  txid    predicted\n";
  for (const PoisonProfileRow& row : report.rows) {
    std::ostringstream line;
    line << cd::resolver::software_profile(row.software).name << ' ';
    while (line.str().size() < 31) line << ' ';
    line << cd::sim::os_profile(row.os).name << ' ';
    while (line.str().size() < 55) line << ' ';
    line << row.victims << "  " << row.successes << "/" << row.reachable
         << "  " << static_cast<int>(row.realized * 100.0 + 0.5) << "%  ";
    if (row.tracked_ports) {
      line << "tracked";
    } else if (row.pool_estimate >= 1.0) {
      line << static_cast<std::uint64_t>(row.pool_estimate + 0.5);
    } else {
      line << "-";
    }
    line << "  " << (row.weak_txid ? "weak" : "random") << "  "
         << static_cast<int>(row.predicted * 100.0 + 0.5) << "%";
    out << line.str() << "\n";
  }
  return out.str();
}

}  // namespace cd::analysis
