#include "analysis/port_range.h"

#include <algorithm>
#include <set>

namespace cd::analysis {

PortStats compute_port_stats(std::span<const std::uint16_t> ports) {
  PortStats stats;
  stats.n = ports.size();
  if (ports.empty()) return stats;

  stats.min = *std::min_element(ports.begin(), ports.end());
  stats.max = *std::max_element(ports.begin(), ports.end());
  stats.range = static_cast<int>(stats.max) - static_cast<int>(stats.min);
  stats.unique_count = std::set<std::uint16_t>(ports.begin(), ports.end()).size();

  if (ports.size() >= 3) {
    int decreases = 0;
    bool equal_seen = false;
    for (std::size_t i = 1; i < ports.size(); ++i) {
      if (ports[i] == ports[i - 1]) equal_seen = true;
      if (ports[i] < ports[i - 1]) ++decreases;
    }
    stats.strictly_increasing = !equal_seen && decreases <= 1;
    stats.wrapped = stats.strictly_increasing && decreases == 1;
  }
  return stats;
}

namespace {

constexpr std::uint32_t kS = 2500;
constexpr std::uint32_t kIanaMin = 49152;
constexpr std::uint32_t kIanaMax = 65535;

bool in_low(std::uint16_t p) {
  return p >= kIanaMin && p <= kIanaMin + kS - 1;
}
bool in_high(std::uint16_t p) {
  return p > kIanaMax - (kS - 1) && p <= kIanaMax;
}

}  // namespace

bool windows_wrap_applies(std::span<const std::uint16_t> ports) {
  if (ports.empty()) return false;
  bool any_low = false, any_high = false;
  for (const std::uint16_t p : ports) {
    const bool low = in_low(p);
    const bool high = in_high(p);
    if (!low && !high) return false;  // condition 1: all ports in a region
    // A port can satisfy both region tests only if the regions overlap
    // (kS > range/2, which does not hold for s=2500); treat low as primary.
    if (low) any_low = true;
    if (high && !low) any_high = true;
  }
  return any_low && any_high;  // conditions 2 and 3
}

std::vector<std::uint32_t> adjust_windows_wrap(
    std::span<const std::uint16_t> ports) {
  std::vector<std::uint32_t> out(ports.begin(), ports.end());
  if (!windows_wrap_applies(ports)) return out;
  for (std::uint32_t& p : out) {
    if (in_low(static_cast<std::uint16_t>(p))) {
      p += kIanaMax - kIanaMin;
    }
  }
  return out;
}

int adjusted_range(std::span<const std::uint16_t> ports) {
  if (ports.empty()) return 0;
  const auto adjusted = adjust_windows_wrap(ports);
  const auto [mn, mx] = std::minmax_element(adjusted.begin(), adjusted.end());
  return static_cast<int>(*mx) - static_cast<int>(*mn);
}

const std::vector<RangeBand>& table4_bands() {
  static const std::vector<RangeBand> bands = {
      {0, 0, "0", ""},
      {1, 200, "1-200", ""},
      {201, 940, "201-940", ""},
      {941, 2488, "941-2,488", "Windows DNS"},
      {2489, 6124, "2,489-6,124", ""},
      {6125, 16331, "6,125-16,331", "FreeBSD"},
      {16332, 28222, "16,332-28,222", "Linux"},
      {28223, 65536, "28,223-65,536", "Full Port Range"},
  };
  return bands;
}

std::size_t classify_range(int range) {
  const auto& bands = table4_bands();
  for (std::size_t i = 0; i < bands.size(); ++i) {
    if (range >= bands[i].lo && range <= bands[i].hi) return i;
  }
  return bands.size() - 1;  // ranges beyond 65,536 cannot occur for u16 ports
}

}  // namespace cd::analysis
