// Beta-distribution model of source-port sample ranges (paper §5.3.2).
//
// If a resolver draws its source ports uniformly from a pool of size N, the
// range of a sample of n=10 ports, normalized by N, follows Beta(n-1, 2) =
// Beta(9, 2). Comparing an observed range against this model identifies the
// pool size — and hence the OS — behind the ports.
#pragma once

#include <cstddef>

namespace cd::analysis {

/// Regularized incomplete beta function I_x(a, b) for x in [0, 1].
[[nodiscard]] double beta_cdf(double x, double a, double b);

/// Beta(a, b) density at x.
[[nodiscard]] double beta_pdf(double x, double a, double b);

/// Inverse of beta_cdf in x (bisection; p in [0, 1]).
[[nodiscard]] double beta_quantile(double p, double a, double b);

/// Number of samples per range estimate used throughout the paper.
inline constexpr int kRangeSamples = 10;

/// Density of the observed port range `range` for a uniform pool of size
/// `pool` (Beta(9,2) scaled to [0, pool-1]).
[[nodiscard]] double range_pdf(double range, double pool);

/// P(sample range <= range) for a pool of size `pool`.
[[nodiscard]] double range_cdf(double range, double pool);

/// Range value below which a fraction `accuracy` of samples from `pool`
/// fall (e.g. 0.999 for the paper's 99.9% band edges).
[[nodiscard]] double range_quantile(double accuracy, double pool);

struct CutoffResult {
  int cutoff = 0;               // ranges <= cutoff classify as the small pool
  double small_pool_error = 0;  // P(small pool sample misclassified as large)
  double large_pool_error = 0;  // P(large pool sample misclassified as small)
};

/// The integer range cutoff between two pool sizes that minimizes total
/// misclassification probability (how the paper derived 16,331 and 28,222).
[[nodiscard]] CutoffResult optimal_cutoff(double small_pool, double large_pool);

/// P(a sample of `n` uniform draws from a pool of `pool_size` ports contains
/// at most `max_unique` distinct values) — the §5.2.3 "0.066%" computation.
[[nodiscard]] double small_pool_probability(int pool_size, int n,
                                            int max_unique);

}  // namespace cd::analysis
