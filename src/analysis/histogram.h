// Binned histograms with stacked series, for the paper's Figures 2 and 3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cd::analysis {

/// Fixed-width-bin histogram over [lo, hi] with one or more stacked series
/// (e.g. open vs. closed resolvers). Renders as ASCII for terminal output
/// and dumps as CSV rows for plotting.
class StackedHistogram {
 public:
  StackedHistogram(int lo, int hi, int bin_width,
                   std::vector<std::string> series_names);

  /// Adds one observation to `series`. Out-of-range values clamp to the
  /// first/last bin.
  void add(int value, std::size_t series = 0);

  [[nodiscard]] std::size_t bin_count() const { return bins_; }
  [[nodiscard]] int bin_lo(std::size_t bin) const;
  [[nodiscard]] int bin_hi(std::size_t bin) const;
  [[nodiscard]] std::uint64_t count(std::size_t bin, std::size_t series) const;
  [[nodiscard]] std::uint64_t total(std::size_t series) const;
  [[nodiscard]] std::uint64_t bin_total(std::size_t bin) const;

  /// Horizontal bar chart; one row per non-empty bin (plus an overlay column
  /// when `overlay` values are supplied via set_overlay()).
  [[nodiscard]] std::string render_ascii(std::size_t max_bar = 60,
                                         bool skip_empty = true) const;

  /// Model overlay (e.g. scaled Beta densities), one value per bin; rendered
  /// as a column in the ASCII output and included in CSV rows.
  void set_overlay(std::vector<double> overlay);

  /// Header + one row per bin: lo, hi, series counts..., overlay?
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;

 private:
  int lo_;
  int bin_width_;
  std::size_t bins_;
  std::vector<std::string> series_names_;
  std::vector<std::vector<std::uint64_t>> counts_;  // [series][bin]
  std::vector<double> overlay_;
};

}  // namespace cd::analysis
