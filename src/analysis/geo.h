// IP-to-country mapping (the paper's MaxMind GeoLite2 stand-in).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/ip.h"

namespace cd::analysis {

/// Longest-prefix-match country database. The world generator populates it;
/// the country tables (paper Tables 1-2) consume it.
class GeoDb {
 public:
  void add(const cd::net::Prefix& prefix, std::string country);

  [[nodiscard]] std::optional<std::string> country_of(
      const cd::net::IpAddr& addr) const;

  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  using LengthMap =
      std::map<int,
               std::unordered_map<cd::net::U128, std::string, cd::net::U128Hash>,
               std::greater<int>>;
  LengthMap v4_;
  LengthMap v6_;
  std::size_t count_ = 0;
};

}  // namespace cd::analysis
