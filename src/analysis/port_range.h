// Source-port range statistics and OS classification bands (paper §5.2-5.3).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cd::analysis {

/// Summary of one resolver's observed source ports.
struct PortStats {
  std::size_t n = 0;
  std::uint16_t min = 0;
  std::uint16_t max = 0;
  int range = 0;  // max - min
  std::size_t unique_count = 0;
  /// All consecutive deltas positive, allowing at most one wrap (the §5.2.3
  /// "strictly increasing" pattern).
  bool strictly_increasing = false;
  /// The increasing pattern wrapped from its maximum back to a lower value.
  bool wrapped = false;
};

[[nodiscard]] PortStats compute_port_stats(std::span<const std::uint16_t> ports);

/// The paper's §5.3.2 Windows wrap adjustment, verbatim:
/// with s = 2500, i_min = 49152, i_max = 65535, R_low = [i_min, i_min+s-1],
/// R_high = (i_max-(s-1), i_max]: if every port lies in R_low or R_high and
/// both regions are occupied, ports in R_low are increased by i_max - i_min,
/// making a wrapped pool's range comparable to a contiguous one's. Adjusted
/// values can exceed 65,535, hence the wider element type.
[[nodiscard]] std::vector<std::uint32_t> adjust_windows_wrap(
    std::span<const std::uint16_t> ports);

/// Range (max - min) of the ports after Windows wrap adjustment.
[[nodiscard]] int adjusted_range(std::span<const std::uint16_t> ports);

/// Whether adjust_windows_wrap() would modify these ports.
[[nodiscard]] bool windows_wrap_applies(std::span<const std::uint16_t> ports);

/// Table 4's range bands. `os` is empty for bands without an OS association.
struct RangeBand {
  int lo = 0;
  int hi = 0;
  std::string label;
  std::string os;
};

/// The eight bands of Table 4: 0; 1-200; 201-940; 941-2,488 (Windows DNS);
/// 2,489-6,124; 6,125-16,331 (FreeBSD); 16,332-28,222 (Linux);
/// 28,223-65,536 (Full Port Range).
[[nodiscard]] const std::vector<RangeBand>& table4_bands();

/// Index into table4_bands() for an adjusted range value.
[[nodiscard]] std::size_t classify_range(int range);

}  // namespace cd::analysis
