#include "analysis/p0f.h"

namespace cd::analysis {

using cd::net::TcpOptionKind;

std::string p0f_class_name(P0fClass cls) {
  switch (cls) {
    case P0fClass::kUnknown: return "unknown";
    case P0fClass::kLinux: return "Linux";
    case P0fClass::kWindows: return "Windows";
    case P0fClass::kFreeBsd: return "FreeBSD";
    case P0fClass::kBaiduSpider: return "BaiduSpider";
  }
  return "?";
}

void P0fDatabase::add(P0fSignature signature) {
  signatures_.push_back(std::move(signature));
}

const P0fDatabase& P0fDatabase::standard() {
  static const P0fDatabase db = [] {
    P0fDatabase d;
    d.add({P0fClass::kLinux,
           "Linux 3.x-5.x",
           64,
           29200,
           1460,
           {TcpOptionKind::kMss, TcpOptionKind::kSackPermitted,
            TcpOptionKind::kTimestamp, TcpOptionKind::kNop,
            TcpOptionKind::kWindowScale}});
    d.add({P0fClass::kWindows,
           "Windows NT 6.x+",
           128,
           8192,
           1460,
           {TcpOptionKind::kMss, TcpOptionKind::kNop,
            TcpOptionKind::kWindowScale, TcpOptionKind::kNop,
            TcpOptionKind::kNop, TcpOptionKind::kSackPermitted}});
    d.add({P0fClass::kFreeBsd,
           "FreeBSD 11-12",
           64,
           65535,
           1460,
           {TcpOptionKind::kMss, TcpOptionKind::kNop,
            TcpOptionKind::kWindowScale, TcpOptionKind::kSackPermitted,
            TcpOptionKind::kTimestamp}});
    d.add({P0fClass::kBaiduSpider,
           "BaiduSpider crawler stack",
           64,
           8190,
           1440,
           {TcpOptionKind::kMss, TcpOptionKind::kNop, TcpOptionKind::kNop,
            TcpOptionKind::kSackPermitted}});
    return d;
  }();
  return db;
}

P0fClass P0fDatabase::classify(const cd::net::Packet& syn) const {
  if (syn.proto != cd::net::IpProto::kTcp || !syn.tcp_flags.syn) {
    return P0fClass::kUnknown;
  }

  // Extract the SYN's MSS and option layout.
  std::uint16_t mss = 0;
  std::vector<TcpOptionKind> layout;
  layout.reserve(syn.tcp_options.size());
  for (const cd::net::TcpOption& opt : syn.tcp_options) {
    layout.push_back(opt.kind);
    if (opt.kind == TcpOptionKind::kMss) {
      mss = static_cast<std::uint16_t>(opt.value);
    }
  }

  for (const P0fSignature& sig : signatures_) {
    if (syn.ttl > sig.initial_ttl) continue;
    if (sig.initial_ttl - syn.ttl >= 32) continue;  // implausibly far away
    if (syn.tcp_window != sig.window) continue;
    if (mss != sig.mss) continue;
    if (layout != sig.options) continue;
    return sig.cls;
  }
  return P0fClass::kUnknown;
}

}  // namespace cd::analysis
