#include "analysis/histogram.h"

#include <algorithm>
#include <cstdio>

#include "util/error.h"
#include "util/str.h"

namespace cd::analysis {

StackedHistogram::StackedHistogram(int lo, int hi, int bin_width,
                                   std::vector<std::string> series_names)
    : lo_(lo), bin_width_(bin_width), series_names_(std::move(series_names)) {
  CD_ENSURE(hi > lo && bin_width > 0, "StackedHistogram: bad bounds");
  CD_ENSURE(!series_names_.empty(), "StackedHistogram: no series");
  bins_ = static_cast<std::size_t>((hi - lo) / bin_width) + 1;
  counts_.assign(series_names_.size(),
                 std::vector<std::uint64_t>(bins_, 0));
}

void StackedHistogram::add(int value, std::size_t series) {
  CD_ENSURE(series < counts_.size(), "StackedHistogram: bad series");
  long bin = (static_cast<long>(value) - lo_) / bin_width_;
  bin = std::clamp<long>(bin, 0, static_cast<long>(bins_) - 1);
  ++counts_[series][static_cast<std::size_t>(bin)];
}

int StackedHistogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<int>(bin) * bin_width_;
}

int StackedHistogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + bin_width_ - 1;
}

std::uint64_t StackedHistogram::count(std::size_t bin,
                                      std::size_t series) const {
  return counts_[series][bin];
}

std::uint64_t StackedHistogram::total(std::size_t series) const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts_[series]) sum += c;
  return sum;
}

std::uint64_t StackedHistogram::bin_total(std::size_t bin) const {
  std::uint64_t sum = 0;
  for (const auto& series : counts_) sum += series[bin];
  return sum;
}

void StackedHistogram::set_overlay(std::vector<double> overlay) {
  CD_ENSURE(overlay.size() == bins_, "StackedHistogram: overlay size");
  overlay_ = std::move(overlay);
}

std::string StackedHistogram::render_ascii(std::size_t max_bar,
                                           bool skip_empty) const {
  // Glyph per series, cycled if there are many.
  static const char kGlyphs[] = {'#', 'o', '+', '*', '.', '%'};

  std::uint64_t peak = 1;
  for (std::size_t b = 0; b < bins_; ++b) {
    peak = std::max(peak, bin_total(b));
  }

  std::string out;
  out += "legend:";
  for (std::size_t s = 0; s < series_names_.size(); ++s) {
    out += "  ";
    out += kGlyphs[s % sizeof(kGlyphs)];
    out += "=" + series_names_[s];
  }
  out += '\n';

  char label[64];
  for (std::size_t b = 0; b < bins_; ++b) {
    const std::uint64_t total_here = bin_total(b);
    if (skip_empty && total_here == 0) continue;
    std::snprintf(label, sizeof(label), "[%6d,%6d] %8llu |", bin_lo(b),
                  bin_hi(b), static_cast<unsigned long long>(total_here));
    out += label;
    for (std::size_t s = 0; s < counts_.size(); ++s) {
      const std::size_t width = static_cast<std::size_t>(
          static_cast<double>(counts_[s][b]) / static_cast<double>(peak) *
          static_cast<double>(max_bar));
      out.append(width, kGlyphs[s % sizeof(kGlyphs)]);
    }
    if (!overlay_.empty()) {
      std::snprintf(label, sizeof(label), "  (model %.4g)", overlay_[b]);
      out += label;
    }
    out += '\n';
  }
  return out;
}

std::vector<std::vector<std::string>> StackedHistogram::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"bin_lo", "bin_hi"};
  for (const std::string& name : series_names_) header.push_back(name);
  if (!overlay_.empty()) header.push_back("model");
  rows.push_back(std::move(header));

  for (std::size_t b = 0; b < bins_; ++b) {
    std::vector<std::string> row = {std::to_string(bin_lo(b)),
                                    std::to_string(bin_hi(b))};
    for (std::size_t s = 0; s < counts_.size(); ++s) {
      row.push_back(std::to_string(counts_[s][b]));
    }
    if (!overlay_.empty()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", overlay_[b]);
      row.emplace_back(buf);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace cd::analysis
