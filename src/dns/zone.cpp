#include "dns/zone.h"

#include "util/error.h"

namespace cd::dns {

Zone::Zone(DnsName origin, SoaRdata soa)
    : origin_(std::move(origin)), soa_(std::move(soa)) {
  existing_.insert(origin_);
}

DnsRr Zone::soa_rr() const {
  return make_soa(origin_, soa_, soa_.minimum);
}

void Zone::add(DnsRr rr) {
  CD_ENSURE(rr.name.is_subdomain_of(origin_),
            "Zone::add: " + rr.name.to_string() + " out of zone " +
                origin_.to_string());
  // Register the owner and every ancestor as existing (empty non-terminals
  // must yield NoData rather than NXDOMAIN).
  DnsName walk = rr.name;
  while (!(walk == origin_)) {
    existing_.insert(walk);
    walk = walk.parent();
  }
  nodes_[rr.name][rr.type].push_back(std::move(rr));
}

const Zone::TypeMap* Zone::find_node(const DnsName& name) const {
  const auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::optional<DnsName> Zone::find_cut(const DnsName& name) const {
  // Walk from just below the origin down toward `name`, looking for the
  // shallowest NS-bearing node (that is the authoritative cut).
  const std::size_t origin_n = origin_.label_count();
  for (std::size_t n = origin_n + 1; n <= name.label_count(); ++n) {
    const DnsName candidate = name.suffix(n);
    const TypeMap* node = find_node(candidate);
    if (node && node->count(RrType::kNs)) return candidate;
  }
  return std::nullopt;
}

void Zone::collect_glue(const std::vector<DnsRr>& ns_set,
                        std::vector<DnsRr>& glue) const {
  for (const DnsRr& ns : ns_set) {
    const auto* rd = std::get_if<NsRdata>(&ns.rdata);
    if (!rd) continue;
    const TypeMap* node = find_node(rd->nsdname);
    if (!node) continue;
    for (RrType t : {RrType::kA, RrType::kAaaa}) {
      const auto it = node->find(t);
      if (it != node->end()) {
        glue.insert(glue.end(), it->second.begin(), it->second.end());
      }
    }
  }
}

LookupResult Zone::lookup(const DnsName& qname, RrType qtype) const {
  LookupResult result;
  if (!qname.is_subdomain_of(origin_)) {
    result.kind = LookupKind::kNotInZone;
    return result;
  }

  // Delegation check: an NS set below the origin (not a query *for* NS at
  // exactly the cut, which is still a referral per RFC 1034 — the child is
  // authoritative, not us).
  if (const auto cut = find_cut(qname)) {
    const TypeMap* node = find_node(*cut);
    const auto ns_it = node->find(RrType::kNs);
    result.kind = LookupKind::kDelegation;
    result.records = ns_it->second;
    collect_glue(result.records, result.glue);
    return result;
  }

  if (const TypeMap* node = find_node(qname)) {
    const auto it = node->find(qtype);
    if (it != node->end()) {
      result.kind = LookupKind::kAnswer;
      result.records = it->second;
      return result;
    }
    const auto cname_it = node->find(RrType::kCname);
    if (cname_it != node->end()) {
      result.kind = LookupKind::kAnswer;
      result.records = cname_it->second;
      return result;
    }
    result.kind = LookupKind::kNoData;
    result.soa = soa_rr();
    return result;
  }

  if (existing_.count(qname)) {
    // Empty non-terminal: exists, holds nothing.
    result.kind = LookupKind::kNoData;
    result.soa = soa_rr();
    return result;
  }

  // Wildcard synthesis: find the closest encloser (deepest existing
  // ancestor), then look for "*" directly beneath it.
  DnsName encloser = qname.parent();
  while (!existing_.count(encloser)) encloser = encloser.parent();
  const DnsName wildcard = encloser.prepend("*");
  if (const TypeMap* node = find_node(wildcard)) {
    const auto it = node->find(qtype);
    if (it != node->end()) {
      result.kind = LookupKind::kAnswer;
      result.wildcard = true;
      for (DnsRr rr : it->second) {
        rr.name = qname;  // synthesis: owner becomes the query name
        result.records.push_back(std::move(rr));
      }
      return result;
    }
    result.kind = LookupKind::kNoData;
    result.wildcard = true;
    result.soa = soa_rr();
    return result;
  }

  result.kind = LookupKind::kNxDomain;
  result.soa = soa_rr();
  return result;
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [name, types] : nodes_) {
    for (const auto& [t, rrs] : types) n += rrs.size();
  }
  return n;
}

}  // namespace cd::dns
