// Authoritative zone data with delegation and wildcard support.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dns/message.h"

namespace cd::dns {

/// Outcome of a zone lookup, mirroring RFC 1034 §4.3.2.
enum class LookupKind {
  kAnswer,      // records of the requested type (or a CNAME) at qname
  kDelegation,  // qname is at/below a zone cut: referral NS set returned
  kNoData,      // name exists but not that type; SOA returned for negatives
  kNxDomain,    // name does not exist; SOA returned for negatives
  kNotInZone,   // qname is not within this zone's origin
};

struct LookupResult {
  LookupKind kind = LookupKind::kNotInZone;
  std::vector<DnsRr> records;    // answer RRset or delegation NS set
  std::vector<DnsRr> glue;       // A/AAAA for in-zone NS targets
  std::optional<DnsRr> soa;      // present for kNoData / kNxDomain
  bool wildcard = false;         // answer synthesized from a wildcard
};

/// One authoritative zone: an origin, an SOA, and a name->type->RRset map.
/// Supports zone cuts (NS below origin => referral + glue) and RFC 1034
/// wildcards ("*" leftmost label at the closest encloser).
class Zone {
 public:
  Zone(DnsName origin, SoaRdata soa);

  [[nodiscard]] const DnsName& origin() const { return origin_; }
  [[nodiscard]] const SoaRdata& soa() const { return soa_; }
  [[nodiscard]] DnsRr soa_rr() const;

  /// Adds one record. Throws InvariantError if the owner is out of zone.
  void add(DnsRr rr);

  [[nodiscard]] LookupResult lookup(const DnsName& qname, RrType qtype) const;

  /// Number of records (excluding the SOA).
  [[nodiscard]] std::size_t record_count() const;

 private:
  // Names are keyed in canonical (case-folded) order via DnsName::operator<.
  using TypeMap = std::map<RrType, std::vector<DnsRr>>;

  [[nodiscard]] const TypeMap* find_node(const DnsName& name) const;
  /// Deepest zone cut strictly between origin (exclusive) and name
  /// (inclusive), if any.
  [[nodiscard]] std::optional<DnsName> find_cut(const DnsName& name) const;
  void collect_glue(const std::vector<DnsRr>& ns_set,
                    std::vector<DnsRr>& glue) const;

  DnsName origin_;
  SoaRdata soa_;
  std::map<DnsName, TypeMap> nodes_;
  std::set<DnsName> existing_;  // owner names + empty non-terminals
};

}  // namespace cd::dns
