#include "dns/cache.h"

#include <algorithm>

#include "util/error.h"

namespace cd::dns {
namespace {

constexpr CacheTime kMicrosPerSecond = 1'000'000;

}  // namespace

Cache::Cache(CacheConfig config) : config_(config) {}

CacheResult Cache::lookup(const DnsName& name, RrType type,
                          CacheTime now) const {
  CacheResult result;

  // RFC 8020: an unexpired NXDOMAIN at the name or any ancestor proves the
  // name does not exist.
  DnsName walk = name;
  for (;;) {
    const auto it = nxdomain_.find(walk);
    if (it != nxdomain_.end() && it->second.expires > now) {
      if (walk == name || config_.rfc8020) {
        result.kind = CacheHitKind::kNegativeName;
        return result;
      }
    }
    if (walk.is_root() || !config_.rfc8020) break;
    walk = walk.parent();
  }

  const Key key{name, type};
  const auto pit = positive_.find(key);
  if (pit != positive_.end() && pit->second.expires > now) {
    result.kind = CacheHitKind::kPositive;
    result.records = pit->second.records;
    const std::uint32_t remaining = static_cast<std::uint32_t>(
        std::max<CacheTime>(0, (pit->second.expires - now) / kMicrosPerSecond));
    for (DnsRr& rr : result.records) rr.ttl = remaining;
    return result;
  }

  const auto nit = nodata_.find(key);
  if (nit != nodata_.end() && nit->second.expires > now) {
    result.kind = CacheHitKind::kNegativeType;
    return result;
  }
  return result;
}

void Cache::insert_positive(const std::vector<DnsRr>& rrset, CacheTime now) {
  if (rrset.empty()) return;
  const DnsName& name = rrset.front().name;
  const RrType type = rrset.front().type;
  std::uint32_t ttl = config_.max_ttl;
  for (const DnsRr& rr : rrset) {
    CD_ENSURE(rr.name == name && rr.type == type,
              "insert_positive: mixed rrset");
    ttl = std::min(ttl, rr.ttl);
  }
  if (positive_.size() >= config_.max_entries) purge(now);
  positive_[Key{name, type}] =
      PositiveEntry{rrset, now + static_cast<CacheTime>(ttl) * kMicrosPerSecond};
}

void Cache::insert_nxdomain(const DnsName& name, std::uint32_t ttl,
                            CacheTime now) {
  ttl = std::min(ttl, config_.max_ttl);
  nxdomain_[name] =
      NegativeEntry{now + static_cast<CacheTime>(ttl) * kMicrosPerSecond};
}

void Cache::insert_nodata(const DnsName& name, RrType type, std::uint32_t ttl,
                          CacheTime now) {
  ttl = std::min(ttl, config_.max_ttl);
  nodata_[Key{name, type}] =
      NegativeEntry{now + static_cast<CacheTime>(ttl) * kMicrosPerSecond};
}

std::size_t Cache::purge(CacheTime now) {
  std::size_t removed = 0;
  for (auto it = positive_.begin(); it != positive_.end();) {
    if (it->second.expires <= now) {
      it = positive_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = nxdomain_.begin(); it != nxdomain_.end();) {
    if (it->second.expires <= now) {
      it = nxdomain_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = nodata_.begin(); it != nodata_.end();) {
    if (it->second.expires <= now) {
      it = nodata_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t Cache::size() const {
  return positive_.size() + nxdomain_.size() + nodata_.size();
}

}  // namespace cd::dns
