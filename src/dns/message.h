// DNS messages: header, questions, resource records, wire codec.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "net/ip.h"

namespace cd::dns {

enum class RrType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kTxt = 16,
  kAaaa = 28,
  kOpt = 41,  // EDNS pseudo-RR
  kAny = 255,
};

[[nodiscard]] std::string rr_type_name(RrType type);

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

[[nodiscard]] std::string rcode_name(Rcode rcode);

enum class Opcode : std::uint8_t { kQuery = 0, kNotify = 4, kUpdate = 5 };

// --- rdata variants ---------------------------------------------------------

struct ARdata {
  cd::net::IpAddr addr;  // must be v4
  friend bool operator==(const ARdata&, const ARdata&) = default;
};
struct AaaaRdata {
  cd::net::IpAddr addr;  // must be v6
  friend bool operator==(const AaaaRdata&, const AaaaRdata&) = default;
};
struct NsRdata {
  DnsName nsdname;
  friend bool operator==(const NsRdata&, const NsRdata&) = default;
};
struct CnameRdata {
  DnsName target;
  friend bool operator==(const CnameRdata&, const CnameRdata&) = default;
};
struct PtrRdata {
  DnsName target;
  friend bool operator==(const PtrRdata&, const PtrRdata&) = default;
};
struct TxtRdata {
  std::string text;
  friend bool operator==(const TxtRdata&, const TxtRdata&) = default;
};
struct SoaRdata {
  DnsName mname;  // primary master; the paper points this at a project web host
  DnsName rname;  // responsible mailbox (contact / opt-out address)
  std::uint32_t serial = 0;
  std::uint32_t refresh = 7200;
  std::uint32_t retry = 3600;
  std::uint32_t expire = 1209600;
  std::uint32_t minimum = 300;  // negative-caching TTL
  friend bool operator==(const SoaRdata&, const SoaRdata&) = default;
};
/// Fallback for types we carry but do not interpret.
struct RawRdata {
  std::vector<std::uint8_t> bytes;
  friend bool operator==(const RawRdata&, const RawRdata&) = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, PtrRdata,
                           TxtRdata, SoaRdata, RawRdata>;

/// One resource record.
struct DnsRr {
  DnsName name;
  RrType type = RrType::kA;
  std::uint32_t ttl = 300;
  Rdata rdata;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const DnsRr&, const DnsRr&) = default;
};

[[nodiscard]] DnsRr make_a(const DnsName& name, const cd::net::IpAddr& addr,
                           std::uint32_t ttl = 300);
[[nodiscard]] DnsRr make_aaaa(const DnsName& name, const cd::net::IpAddr& addr,
                              std::uint32_t ttl = 300);
[[nodiscard]] DnsRr make_ns(const DnsName& name, const DnsName& nsdname,
                            std::uint32_t ttl = 300);
[[nodiscard]] DnsRr make_soa(const DnsName& name, const SoaRdata& soa,
                             std::uint32_t ttl = 300);
[[nodiscard]] DnsRr make_ptr(const DnsName& name, const DnsName& target,
                             std::uint32_t ttl = 300);
[[nodiscard]] DnsRr make_txt(const DnsName& name, std::string text,
                             std::uint32_t ttl = 300);
[[nodiscard]] DnsRr make_cname(const DnsName& name, const DnsName& target,
                               std::uint32_t ttl = 300);

struct DnsQuestion {
  DnsName qname;
  RrType qtype = RrType::kA;

  friend bool operator==(const DnsQuestion&, const DnsQuestion&) = default;
};

struct DnsHeader {
  std::uint16_t id = 0;
  bool qr = false;  // response?
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  Rcode rcode = Rcode::kNoError;

  friend bool operator==(const DnsHeader&, const DnsHeader&) = default;
};

/// A complete DNS message. encode()/decode() implement RFC 1035 wire format
/// with name compression in all sections.
struct DnsMessage {
  DnsHeader header;
  std::vector<DnsQuestion> questions;
  std::vector<DnsRr> answers;
  std::vector<DnsRr> authorities;
  std::vector<DnsRr> additionals;

  /// Appends the wire encoding through `w`. The writer's base must be the
  /// message start (compression offsets are writer-relative).
  void encode_into(cd::ByteWriter& w) const;
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Decodes from a reader spanning exactly one message; leaves the cursor
  /// after the last counted record.
  [[nodiscard]] static DnsMessage decode(cd::ByteReader& r);
  [[nodiscard]] static DnsMessage decode(std::span<const std::uint8_t> wire);

  /// First question's name, or root if none (convenience for logging).
  [[nodiscard]] const DnsName& qname() const;

  friend bool operator==(const DnsMessage&, const DnsMessage&) = default;
};

/// Encodes `m` into a buffer drawn from the thread-local cd::BufferPool, so
/// repeated encodes on one thread reuse capacity. Hand the result to a packet
/// payload (or release it back to the pool) instead of copying it.
[[nodiscard]] std::vector<std::uint8_t> encode_pooled(const DnsMessage& m);

/// Builds a recursion-desired query with the given id.
[[nodiscard]] DnsMessage make_query(std::uint16_t id, const DnsName& qname,
                                    RrType qtype, bool rd = true);

/// Builds a response skeleton matching `query` (id, question echoed).
[[nodiscard]] DnsMessage make_response(const DnsMessage& query, Rcode rcode);

}  // namespace cd::dns
