// Recursive-resolver cache with TTL expiry and negative caching.
//
// Negative caching implements RFC 2308 (NXDOMAIN / NoData entries bounded by
// the SOA minimum) and, optionally, RFC 8020: a cached NXDOMAIN for a name
// proves that nothing exists beneath it. RFC 8020 is what makes the paper's
// NXDOMAIN-returning authoritative setup halt QNAME-minimizing resolvers
// (§3.6.4), so its presence here is load-bearing for the reproduction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/message.h"

namespace cd::dns {

/// Simulated-time type (microseconds); mirrors cd::sim::SimTime without a
/// dependency cycle.
using CacheTime = std::int64_t;

enum class CacheHitKind {
  kMiss,
  kPositive,      // cached RRset returned
  kNegativeName,  // name known not to exist (possibly via RFC 8020 ancestor)
  kNegativeType,  // name exists, type known to be absent
};

struct CacheResult {
  CacheHitKind kind = CacheHitKind::kMiss;
  std::vector<DnsRr> records;  // for kPositive; TTLs decayed to remaining time
};

struct CacheConfig {
  bool rfc8020 = true;            // ancestor NXDOMAIN covers descendants
  std::uint32_t max_ttl = 86400;  // clamp stored TTLs
  std::size_t max_entries = 100000;
};

/// A per-resolver DNS cache. All operations take the current simulated time;
/// expired entries are treated as absent and lazily evicted.
class Cache {
 public:
  explicit Cache(CacheConfig config = {});

  [[nodiscard]] CacheResult lookup(const DnsName& name, RrType type,
                                   CacheTime now) const;

  /// Stores a positive RRset (all records must share name/type).
  void insert_positive(const std::vector<DnsRr>& rrset, CacheTime now);

  void insert_nxdomain(const DnsName& name, std::uint32_t ttl, CacheTime now);
  void insert_nodata(const DnsName& name, RrType type, std::uint32_t ttl,
                     CacheTime now);

  /// Drops expired entries; returns how many were removed.
  std::size_t purge(CacheTime now);

  [[nodiscard]] std::size_t size() const;

 private:
  struct PositiveEntry {
    std::vector<DnsRr> records;
    CacheTime expires;
  };
  struct NegativeEntry {
    CacheTime expires;
  };

  struct Key {
    DnsName name;
    RrType type;
    bool operator==(const Key& o) const {
      return type == o.type && name == o.name;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return DnsNameHash{}(k.name) * 31 +
             static_cast<std::size_t>(k.type);
    }
  };

  CacheConfig config_;
  std::unordered_map<Key, PositiveEntry, KeyHash> positive_;
  std::unordered_map<DnsName, NegativeEntry, DnsNameHash> nxdomain_;
  std::unordered_map<Key, NegativeEntry, KeyHash> nodata_;
};

}  // namespace cd::dns
