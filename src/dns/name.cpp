#include "dns/name.h"

#include <cctype>

#include "util/error.h"
#include "util/str.h"

namespace cd::dns {
namespace {

constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 255;

std::string lower(std::string_view s) {
  return cd::to_lower(s);
}

}  // namespace

DnsName::DnsName(std::vector<std::string> labels) : labels_(std::move(labels)) {
  for (const auto& l : labels_) {
    CD_ENSURE(!l.empty() && l.size() <= kMaxLabel, "bad DNS label");
  }
  CD_ENSURE(wire_length() <= kMaxName, "DNS name too long");
}

std::optional<DnsName> DnsName::parse(std::string_view s) {
  if (s.empty()) return std::nullopt;
  if (s == ".") return DnsName();
  if (s.back() == '.') s.remove_suffix(1);
  std::vector<std::string> labels = cd::split(s, '.');
  std::size_t wire = 1;
  for (const auto& l : labels) {
    if (l.empty() || l.size() > kMaxLabel) return std::nullopt;
    wire += 1 + l.size();
  }
  if (wire > kMaxName) return std::nullopt;
  return DnsName(std::move(labels));
}

DnsName DnsName::must_parse(std::string_view s) {
  const auto n = parse(s);
  if (!n) throw ParseError("bad DNS name: " + std::string(s));
  return *n;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& l : labels_) {
    out += l;
    out += '.';
  }
  return out;
}

DnsName DnsName::parent() const {
  if (labels_.empty()) return DnsName();
  return DnsName(std::vector<std::string>(labels_.begin() + 1, labels_.end()));
}

DnsName DnsName::prepend(std::string label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.push_back(std::move(label));
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return DnsName(std::move(labels));
}

bool DnsName::is_subdomain_of(const DnsName& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const std::size_t skip = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (!cd::iequals(labels_[skip + i], ancestor.labels_[i])) return false;
  }
  return true;
}

DnsName DnsName::suffix(std::size_t n) const {
  if (n >= labels_.size()) return *this;
  return DnsName(
      std::vector<std::string>(labels_.end() - static_cast<std::ptrdiff_t>(n),
                               labels_.end()));
}

std::size_t DnsName::wire_length() const {
  std::size_t len = 1;  // root byte
  for (const auto& l : labels_) len += 1 + l.size();
  return len;
}

bool DnsName::operator==(const DnsName& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!cd::iequals(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

bool DnsName::operator<(const DnsName& other) const {
  // Canonical DNS ordering: compare labels right to left.
  const std::size_t n = std::min(labels_.size(), other.labels_.size());
  for (std::size_t i = 1; i <= n; ++i) {
    const std::string a = lower(labels_[labels_.size() - i]);
    const std::string b = lower(other.labels_[other.labels_.size() - i]);
    if (a != b) return a < b;
  }
  return labels_.size() < other.labels_.size();
}

std::size_t DnsNameHash::operator()(const DnsName& n) const noexcept {
  std::size_t h = 0xCBF29CE484222325ULL;
  for (const auto& l : n.labels()) {
    for (char c : l) {
      h ^= static_cast<std::size_t>(
          std::tolower(static_cast<unsigned char>(c)));
      h *= 0x100000001B3ULL;
    }
    h ^= '.';
    h *= 0x100000001B3ULL;
  }
  return h;
}

void encode_name(const DnsName& name, cd::ByteWriter& w,
                 NameCompressor* comp) {
  const auto& labels = name.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (comp) {
      // Can we point at an already-encoded suffix starting here?
      std::string key;
      for (std::size_t j = i; j < labels.size(); ++j) {
        key += lower(labels[j]);
        key += '.';
      }
      const auto it = comp->offsets.find(key);
      if (it != comp->offsets.end()) {
        w.u16(static_cast<std::uint16_t>(0xC000 | it->second));
        return;
      }
      // Remember this suffix's offset if it is pointer-representable.
      if (w.size() <= 0x3FFF) {
        comp->offsets.emplace(std::move(key),
                              static_cast<std::uint16_t>(w.size()));
      }
    }
    w.u8(static_cast<std::uint8_t>(labels[i].size()));
    w.text(labels[i]);
  }
  w.u8(0);  // root
}

void encode_name(const DnsName& name, std::vector<std::uint8_t>& out,
                 NameCompressor* comp) {
  // Base the writer at offset 0: legacy callers treat `out` as the whole
  // message, so compression offsets must be absolute vector offsets.
  cd::ByteWriter w(out, 0);
  encode_name(name, w, comp);
}

DnsName decode_name(cd::ByteReader& r) {
  const std::span<const std::uint8_t> msg = r.whole();
  std::vector<std::string> labels;
  std::size_t pos = r.pos();
  bool jumped = false;
  std::size_t after_first_pointer = 0;
  int hops = 0;
  std::size_t total = 0;

  for (;;) {
    if (pos >= msg.size()) throw ParseError("decode_name: out of bounds");
    const std::uint8_t len = msg[pos];
    if ((len & 0xC0) == 0xC0) {
      if (pos + 1 >= msg.size()) throw ParseError("decode_name: bad pointer");
      if (++hops > 32) throw ParseError("decode_name: pointer loop");
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | msg[pos + 1];
      if (!jumped) {
        after_first_pointer = pos + 2;
        jumped = true;
      }
      if (target >= pos) throw ParseError("decode_name: forward pointer");
      pos = target;
      continue;
    }
    if ((len & 0xC0) != 0) throw ParseError("decode_name: bad label type");
    if (len == 0) {
      ++pos;
      break;
    }
    if (pos + 1 + len > msg.size()) {
      throw ParseError("decode_name: truncated label");
    }
    total += 1 + len;
    if (total > 255) throw ParseError("decode_name: name too long");
    labels.emplace_back(reinterpret_cast<const char*>(&msg[pos + 1]), len);
    pos += 1 + len;
  }

  r.seek(jumped ? after_first_pointer : pos);
  return DnsName(std::move(labels));
}

DnsName decode_name(std::span<const std::uint8_t> msg, std::size_t& offset) {
  cd::ByteReader r(msg, "decode_name");
  r.seek(offset);
  DnsName name = decode_name(r);
  offset = r.pos();
  return name;
}

}  // namespace cd::dns
