// DNS domain names: label sequences with RFC 1035 wire encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"

namespace cd::dns {

/// A fully-qualified DNS name as an ordered list of labels (root = empty
/// list). Comparison and hashing are case-insensitive per RFC 1035 §2.3.3;
/// the original case is preserved for display.
class DnsName {
 public:
  /// The root name ".".
  DnsName() = default;

  explicit DnsName(std::vector<std::string> labels);

  /// Parses dotted presentation form ("a.b.example.org", optional trailing
  /// dot; "." is the root). Returns nullopt for invalid names (empty labels,
  /// label > 63 octets, total > 255 octets).
  [[nodiscard]] static std::optional<DnsName> parse(std::string_view s);
  [[nodiscard]] static DnsName must_parse(std::string_view s);

  [[nodiscard]] const std::vector<std::string>& labels() const {
    return labels_;
  }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }
  [[nodiscard]] bool is_root() const { return labels_.empty(); }

  /// Presentation form with trailing dot ("a.example.org.", root is ".").
  [[nodiscard]] std::string to_string() const;

  /// The name with the leftmost label removed; parent of root is root.
  [[nodiscard]] DnsName parent() const;

  /// New name with `label` prepended on the left.
  [[nodiscard]] DnsName prepend(std::string label) const;

  /// True if this name equals `ancestor` or is underneath it.
  [[nodiscard]] bool is_subdomain_of(const DnsName& ancestor) const;

  /// The `n` rightmost labels as a name (n clamped to label_count()).
  [[nodiscard]] DnsName suffix(std::size_t n) const;

  /// Total wire length in octets (labels + length bytes + root byte).
  [[nodiscard]] std::size_t wire_length() const;

  bool operator==(const DnsName& other) const;
  bool operator!=(const DnsName& other) const { return !(*this == other); }
  /// Canonical ordering (case-insensitive, right-to-left by label).
  bool operator<(const DnsName& other) const;

 private:
  std::vector<std::string> labels_;
};

struct DnsNameHash {
  std::size_t operator()(const DnsName& n) const noexcept;
};

/// Compression context threaded through message encoding: maps already
/// emitted names to their offsets so later names can point at them.
struct NameCompressor {
  std::unordered_map<std::string, std::uint16_t> offsets;
};

/// Appends the wire encoding of `name` through `w`, compressing against
/// (and updating) `comp` when provided. Compression offsets are relative to
/// the writer's base, so `w` must have been constructed at the start of the
/// DNS message.
void encode_name(const DnsName& name, cd::ByteWriter& w, NameCompressor* comp);

/// Convenience shim over the ByteWriter form.
void encode_name(const DnsName& name, std::vector<std::uint8_t>& out,
                 NameCompressor* comp);

/// Decodes a (possibly compressed) name at the reader's cursor, leaving the
/// cursor past the name's in-place bytes. The reader must span the whole DNS
/// message (compression pointers are message-relative). Throws cd::ParseError
/// on malformed input, including pointer loops.
[[nodiscard]] DnsName decode_name(cd::ByteReader& r);

/// Convenience shim over the ByteReader form.
[[nodiscard]] DnsName decode_name(std::span<const std::uint8_t> msg,
                                  std::size_t& offset);

}  // namespace cd::dns
