#include "dns/message.h"

#include "util/error.h"

namespace cd::dns {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> d, std::size_t& off) {
  if (off + 2 > d.size()) throw ParseError("DnsMessage: truncated u16");
  const std::uint16_t v = static_cast<std::uint16_t>((d[off] << 8) | d[off + 1]);
  off += 2;
  return v;
}

std::uint32_t get_u32(std::span<const std::uint8_t> d, std::size_t& off) {
  const std::uint32_t hi = get_u16(d, off);
  const std::uint32_t lo = get_u16(d, off);
  return (hi << 16) | lo;
}

void encode_rdata(const DnsRr& rr, std::vector<std::uint8_t>& out,
                  NameCompressor* comp) {
  // Reserve the RDLENGTH slot, then backfill after encoding.
  const std::size_t len_pos = out.size();
  put_u16(out, 0);
  const std::size_t start = out.size();

  std::visit(
      [&](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          CD_ENSURE(rd.addr.is_v4(), "A rdata must be IPv4");
          const auto b = rd.addr.to_bytes();
          out.insert(out.end(), b.begin(), b.end());
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          CD_ENSURE(rd.addr.is_v6(), "AAAA rdata must be IPv6");
          const auto b = rd.addr.to_bytes();
          out.insert(out.end(), b.begin(), b.end());
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          encode_name(rd.nsdname, out, comp);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          encode_name(rd.target, out, comp);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          encode_name(rd.target, out, comp);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          // Character-strings of <= 255 bytes each.
          std::size_t pos = 0;
          while (pos < rd.text.size() || pos == 0) {
            const std::size_t chunk = std::min<std::size_t>(
                255, rd.text.size() - pos);
            out.push_back(static_cast<std::uint8_t>(chunk));
            out.insert(out.end(), rd.text.begin() + static_cast<std::ptrdiff_t>(pos),
                       rd.text.begin() + static_cast<std::ptrdiff_t>(pos + chunk));
            pos += chunk;
            if (pos >= rd.text.size()) break;
          }
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          encode_name(rd.mname, out, comp);
          encode_name(rd.rname, out, comp);
          put_u32(out, rd.serial);
          put_u32(out, rd.refresh);
          put_u32(out, rd.retry);
          put_u32(out, rd.expire);
          put_u32(out, rd.minimum);
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          out.insert(out.end(), rd.bytes.begin(), rd.bytes.end());
        }
      },
      rr.rdata);

  const std::size_t rdlen = out.size() - start;
  CD_ENSURE(rdlen <= 0xFFFF, "rdata too long");
  out[len_pos] = static_cast<std::uint8_t>(rdlen >> 8);
  out[len_pos + 1] = static_cast<std::uint8_t>(rdlen);
}

Rdata decode_rdata(RrType type, std::span<const std::uint8_t> msg,
                   std::size_t off, std::size_t rdlen) {
  const std::span<const std::uint8_t> rd = msg.subspan(off, rdlen);
  switch (type) {
    case RrType::kA: {
      if (rdlen != 4) throw ParseError("bad A rdlength");
      return ARdata{cd::net::IpAddr::v4(
          (static_cast<std::uint32_t>(rd[0]) << 24) |
          (static_cast<std::uint32_t>(rd[1]) << 16) |
          (static_cast<std::uint32_t>(rd[2]) << 8) | rd[3])};
    }
    case RrType::kAaaa: {
      if (rdlen != 16) throw ParseError("bad AAAA rdlength");
      std::uint64_t hi = 0, lo = 0;
      for (int i = 0; i < 8; ++i) hi = (hi << 8) | rd[static_cast<std::size_t>(i)];
      for (int i = 8; i < 16; ++i) lo = (lo << 8) | rd[static_cast<std::size_t>(i)];
      return AaaaRdata{cd::net::IpAddr::v6(hi, lo)};
    }
    case RrType::kNs: {
      std::size_t pos = off;
      return NsRdata{decode_name(msg, pos)};
    }
    case RrType::kCname: {
      std::size_t pos = off;
      return CnameRdata{decode_name(msg, pos)};
    }
    case RrType::kPtr: {
      std::size_t pos = off;
      return PtrRdata{decode_name(msg, pos)};
    }
    case RrType::kTxt: {
      std::string text;
      std::size_t pos = 0;
      while (pos < rdlen) {
        const std::size_t chunk = rd[pos];
        if (pos + 1 + chunk > rdlen) throw ParseError("bad TXT rdata");
        text.append(reinterpret_cast<const char*>(&rd[pos + 1]), chunk);
        pos += 1 + chunk;
      }
      return TxtRdata{std::move(text)};
    }
    case RrType::kSoa: {
      std::size_t pos = off;
      SoaRdata soa;
      soa.mname = decode_name(msg, pos);
      soa.rname = decode_name(msg, pos);
      soa.serial = get_u32(msg, pos);
      soa.refresh = get_u32(msg, pos);
      soa.retry = get_u32(msg, pos);
      soa.expire = get_u32(msg, pos);
      soa.minimum = get_u32(msg, pos);
      if (pos > off + rdlen) throw ParseError("bad SOA rdata");
      return soa;
    }
    default:
      return RawRdata{{rd.begin(), rd.end()}};
  }
}

void encode_rr(const DnsRr& rr, std::vector<std::uint8_t>& out,
               NameCompressor* comp) {
  encode_name(rr.name, out, comp);
  put_u16(out, static_cast<std::uint16_t>(rr.type));
  put_u16(out, 1);  // class IN
  put_u32(out, rr.ttl);
  encode_rdata(rr, out, comp);
}

DnsRr decode_rr(std::span<const std::uint8_t> msg, std::size_t& off) {
  DnsRr rr;
  rr.name = decode_name(msg, off);
  rr.type = static_cast<RrType>(get_u16(msg, off));
  const std::uint16_t klass = get_u16(msg, off);
  (void)klass;  // only IN supported; EDNS OPT reuses this field for UDP size
  rr.ttl = get_u32(msg, off);
  const std::uint16_t rdlen = get_u16(msg, off);
  if (off + rdlen > msg.size()) throw ParseError("DnsMessage: truncated rdata");
  rr.rdata = decode_rdata(rr.type, msg, off, rdlen);
  off += rdlen;
  return rr;
}

}  // namespace

std::string rr_type_name(RrType type) {
  switch (type) {
    case RrType::kA: return "A";
    case RrType::kNs: return "NS";
    case RrType::kCname: return "CNAME";
    case RrType::kSoa: return "SOA";
    case RrType::kPtr: return "PTR";
    case RrType::kTxt: return "TXT";
    case RrType::kAaaa: return "AAAA";
    case RrType::kOpt: return "OPT";
    case RrType::kAny: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<int>(type));
}

std::string rcode_name(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(rcode));
}

std::string DnsRr::to_string() const {
  std::string out = name.to_string() + " " + std::to_string(ttl) + " IN " +
                    rr_type_name(type) + " ";
  std::visit(
      [&](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          out += rd.addr.to_string();
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          out += rd.addr.to_string();
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          out += rd.nsdname.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          out += rd.target.to_string();
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          out += rd.target.to_string();
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          out += '"' + rd.text + '"';
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          out += rd.mname.to_string() + " " + rd.rname.to_string() + " " +
                 std::to_string(rd.serial);
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          out += "\\# " + std::to_string(rd.bytes.size());
        }
      },
      rdata);
  return out;
}

DnsRr make_a(const DnsName& name, const cd::net::IpAddr& addr,
             std::uint32_t ttl) {
  return DnsRr{name, RrType::kA, ttl, ARdata{addr}};
}
DnsRr make_aaaa(const DnsName& name, const cd::net::IpAddr& addr,
                std::uint32_t ttl) {
  return DnsRr{name, RrType::kAaaa, ttl, AaaaRdata{addr}};
}
DnsRr make_ns(const DnsName& name, const DnsName& nsdname, std::uint32_t ttl) {
  return DnsRr{name, RrType::kNs, ttl, NsRdata{nsdname}};
}
DnsRr make_soa(const DnsName& name, const SoaRdata& soa, std::uint32_t ttl) {
  return DnsRr{name, RrType::kSoa, ttl, soa};
}
DnsRr make_ptr(const DnsName& name, const DnsName& target, std::uint32_t ttl) {
  return DnsRr{name, RrType::kPtr, ttl, PtrRdata{target}};
}
DnsRr make_txt(const DnsName& name, std::string text, std::uint32_t ttl) {
  return DnsRr{name, RrType::kTxt, ttl, TxtRdata{std::move(text)}};
}
DnsRr make_cname(const DnsName& name, const DnsName& target,
                 std::uint32_t ttl) {
  return DnsRr{name, RrType::kCname, ttl, CnameRdata{target}};
}

std::vector<std::uint8_t> DnsMessage::encode() const {
  std::vector<std::uint8_t> out;
  NameCompressor comp;

  put_u16(out, header.id);
  std::uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(header.opcode) << 11;
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(header.rcode);
  put_u16(out, flags);
  put_u16(out, static_cast<std::uint16_t>(questions.size()));
  put_u16(out, static_cast<std::uint16_t>(answers.size()));
  put_u16(out, static_cast<std::uint16_t>(authorities.size()));
  put_u16(out, static_cast<std::uint16_t>(additionals.size()));

  for (const DnsQuestion& q : questions) {
    encode_name(q.qname, out, &comp);
    put_u16(out, static_cast<std::uint16_t>(q.qtype));
    put_u16(out, 1);  // class IN
  }
  for (const DnsRr& rr : answers) encode_rr(rr, out, &comp);
  for (const DnsRr& rr : authorities) encode_rr(rr, out, &comp);
  for (const DnsRr& rr : additionals) encode_rr(rr, out, &comp);
  return out;
}

DnsMessage DnsMessage::decode(std::span<const std::uint8_t> wire) {
  DnsMessage m;
  std::size_t off = 0;
  m.header.id = get_u16(wire, off);
  const std::uint16_t flags = get_u16(wire, off);
  m.header.qr = flags & 0x8000;
  m.header.opcode = static_cast<Opcode>((flags >> 11) & 0xF);
  m.header.aa = flags & 0x0400;
  m.header.tc = flags & 0x0200;
  m.header.rd = flags & 0x0100;
  m.header.ra = flags & 0x0080;
  m.header.rcode = static_cast<Rcode>(flags & 0xF);
  const std::uint16_t qd = get_u16(wire, off);
  const std::uint16_t an = get_u16(wire, off);
  const std::uint16_t ns = get_u16(wire, off);
  const std::uint16_t ar = get_u16(wire, off);

  for (int i = 0; i < qd; ++i) {
    DnsQuestion q;
    q.qname = decode_name(wire, off);
    q.qtype = static_cast<RrType>(get_u16(wire, off));
    get_u16(wire, off);  // class
    m.questions.push_back(std::move(q));
  }
  for (int i = 0; i < an; ++i) m.answers.push_back(decode_rr(wire, off));
  for (int i = 0; i < ns; ++i) m.authorities.push_back(decode_rr(wire, off));
  for (int i = 0; i < ar; ++i) m.additionals.push_back(decode_rr(wire, off));
  return m;
}

const DnsName& DnsMessage::qname() const {
  static const DnsName kRoot;
  return questions.empty() ? kRoot : questions.front().qname;
}

DnsMessage make_query(std::uint16_t id, const DnsName& qname, RrType qtype,
                      bool rd) {
  DnsMessage m;
  m.header.id = id;
  m.header.rd = rd;
  m.questions.push_back(DnsQuestion{qname, qtype});
  return m;
}

DnsMessage make_response(const DnsMessage& query, Rcode rcode) {
  DnsMessage m;
  m.header.id = query.header.id;
  m.header.qr = true;
  m.header.rd = query.header.rd;
  m.header.rcode = rcode;
  m.questions = query.questions;
  return m;
}

}  // namespace cd::dns
