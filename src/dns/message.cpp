#include "dns/message.h"

#include "util/error.h"

namespace cd::dns {
namespace {

void encode_rdata(const DnsRr& rr, cd::ByteWriter& w, NameCompressor* comp) {
  // Reserve the RDLENGTH slot, then backfill after encoding.
  const std::size_t len_pos = w.reserve_u16();
  const std::size_t start = w.size();

  std::visit(
      [&](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          CD_ENSURE(rd.addr.is_v4(), "A rdata must be IPv4");
          w.bytes(rd.addr.to_bytes());
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          CD_ENSURE(rd.addr.is_v6(), "AAAA rdata must be IPv6");
          w.bytes(rd.addr.to_bytes());
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          encode_name(rd.nsdname, w, comp);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          encode_name(rd.target, w, comp);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          encode_name(rd.target, w, comp);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          // Character-strings of <= 255 bytes each.
          std::size_t pos = 0;
          while (pos < rd.text.size() || pos == 0) {
            const std::size_t chunk =
                std::min<std::size_t>(255, rd.text.size() - pos);
            w.u8(static_cast<std::uint8_t>(chunk));
            w.text(std::string_view(rd.text).substr(pos, chunk));
            pos += chunk;
            if (pos >= rd.text.size()) break;
          }
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          encode_name(rd.mname, w, comp);
          encode_name(rd.rname, w, comp);
          w.u32(rd.serial);
          w.u32(rd.refresh);
          w.u32(rd.retry);
          w.u32(rd.expire);
          w.u32(rd.minimum);
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          w.bytes(rd.bytes);
        }
      },
      rr.rdata);

  const std::size_t rdlen = w.size() - start;
  CD_ENSURE(rdlen <= 0xFFFF, "rdata too long");
  w.patch_u16(len_pos, static_cast<std::uint16_t>(rdlen));
}

// `r` spans the whole message with the cursor at the rdata start; on return
// the cursor is at the rdata end. Name-bearing rdata must keep its in-place
// bytes inside RDLENGTH (compression targets may point anywhere earlier).
Rdata decode_rdata(RrType type, cd::ByteReader& r, std::size_t rdlen) {
  const std::size_t rd_end = r.pos() + rdlen;
  const auto check_in_bounds = [&] {
    if (r.pos() > rd_end) throw ParseError("rdata name overruns RDLENGTH");
  };
  switch (type) {
    case RrType::kA: {
      if (rdlen != 4) throw ParseError("bad A rdlength");
      return ARdata{cd::net::IpAddr::v4(r.u32())};
    }
    case RrType::kAaaa: {
      if (rdlen != 16) throw ParseError("bad AAAA rdlength");
      // Sequence the reads: chaining r.u32() calls inside one expression
      // would leave their order unspecified.
      const auto u64be = [&r] {
        const std::uint64_t hi = r.u32();
        const std::uint64_t lo = r.u32();
        return (hi << 32) | lo;
      };
      const std::uint64_t hi = u64be();
      const std::uint64_t lo = u64be();
      return AaaaRdata{cd::net::IpAddr::v6(hi, lo)};
    }
    case RrType::kNs: {
      NsRdata rd{decode_name(r)};
      check_in_bounds();
      return rd;
    }
    case RrType::kCname: {
      CnameRdata rd{decode_name(r)};
      check_in_bounds();
      return rd;
    }
    case RrType::kPtr: {
      PtrRdata rd{decode_name(r)};
      check_in_bounds();
      return rd;
    }
    case RrType::kTxt: {
      cd::ByteReader rd(r.bytes(rdlen), "TXT rdata");
      std::string text;
      while (!rd.done()) {
        const std::size_t chunk = rd.u8();
        if (rd.remaining() < chunk) throw ParseError("bad TXT rdata");
        const auto s = rd.bytes(chunk);
        text.append(reinterpret_cast<const char*>(s.data()), s.size());
      }
      return TxtRdata{std::move(text)};
    }
    case RrType::kSoa: {
      SoaRdata soa;
      soa.mname = decode_name(r);
      soa.rname = decode_name(r);
      soa.serial = r.u32();
      soa.refresh = r.u32();
      soa.retry = r.u32();
      soa.expire = r.u32();
      soa.minimum = r.u32();
      if (r.pos() > rd_end) throw ParseError("bad SOA rdata");
      return soa;
    }
    default: {
      const auto raw = r.bytes(rdlen);
      return RawRdata{{raw.begin(), raw.end()}};
    }
  }
}

void encode_rr(const DnsRr& rr, cd::ByteWriter& w, NameCompressor* comp) {
  encode_name(rr.name, w, comp);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(1);  // class IN
  w.u32(rr.ttl);
  encode_rdata(rr, w, comp);
}

DnsRr decode_rr(cd::ByteReader& r) {
  DnsRr rr;
  rr.name = decode_name(r);
  rr.type = static_cast<RrType>(r.u16());
  const std::uint16_t klass = r.u16();
  (void)klass;  // only IN supported; EDNS OPT reuses this field for UDP size
  rr.ttl = r.u32();
  const std::uint16_t rdlen = r.u16();
  if (r.remaining() < rdlen) throw ParseError("DnsMessage: truncated rdata");
  const std::size_t rd_end = r.pos() + rdlen;
  rr.rdata = decode_rdata(rr.type, r, rdlen);
  r.seek(rd_end);
  return rr;
}

}  // namespace

std::string rr_type_name(RrType type) {
  switch (type) {
    case RrType::kA: return "A";
    case RrType::kNs: return "NS";
    case RrType::kCname: return "CNAME";
    case RrType::kSoa: return "SOA";
    case RrType::kPtr: return "PTR";
    case RrType::kTxt: return "TXT";
    case RrType::kAaaa: return "AAAA";
    case RrType::kOpt: return "OPT";
    case RrType::kAny: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<int>(type));
}

std::string rcode_name(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(rcode));
}

std::string DnsRr::to_string() const {
  std::string out = name.to_string() + " " + std::to_string(ttl) + " IN " +
                    rr_type_name(type) + " ";
  std::visit(
      [&](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          out += rd.addr.to_string();
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          out += rd.addr.to_string();
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          out += rd.nsdname.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          out += rd.target.to_string();
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          out += rd.target.to_string();
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          out += '"' + rd.text + '"';
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          out += rd.mname.to_string() + " " + rd.rname.to_string() + " " +
                 std::to_string(rd.serial);
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          out += "\\# " + std::to_string(rd.bytes.size());
        }
      },
      rdata);
  return out;
}

DnsRr make_a(const DnsName& name, const cd::net::IpAddr& addr,
             std::uint32_t ttl) {
  return DnsRr{name, RrType::kA, ttl, ARdata{addr}};
}
DnsRr make_aaaa(const DnsName& name, const cd::net::IpAddr& addr,
                std::uint32_t ttl) {
  return DnsRr{name, RrType::kAaaa, ttl, AaaaRdata{addr}};
}
DnsRr make_ns(const DnsName& name, const DnsName& nsdname, std::uint32_t ttl) {
  return DnsRr{name, RrType::kNs, ttl, NsRdata{nsdname}};
}
DnsRr make_soa(const DnsName& name, const SoaRdata& soa, std::uint32_t ttl) {
  return DnsRr{name, RrType::kSoa, ttl, soa};
}
DnsRr make_ptr(const DnsName& name, const DnsName& target, std::uint32_t ttl) {
  return DnsRr{name, RrType::kPtr, ttl, PtrRdata{target}};
}
DnsRr make_txt(const DnsName& name, std::string text, std::uint32_t ttl) {
  return DnsRr{name, RrType::kTxt, ttl, TxtRdata{std::move(text)}};
}
DnsRr make_cname(const DnsName& name, const DnsName& target,
                 std::uint32_t ttl) {
  return DnsRr{name, RrType::kCname, ttl, CnameRdata{target}};
}

void DnsMessage::encode_into(cd::ByteWriter& w) const {
  NameCompressor comp;

  w.u16(header.id);
  std::uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(header.opcode) << 11;
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(header.rcode);
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size()));

  for (const DnsQuestion& q : questions) {
    encode_name(q.qname, w, &comp);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(1);  // class IN
  }
  for (const DnsRr& rr : answers) encode_rr(rr, w, &comp);
  for (const DnsRr& rr : authorities) encode_rr(rr, w, &comp);
  for (const DnsRr& rr : additionals) encode_rr(rr, w, &comp);
}

std::vector<std::uint8_t> DnsMessage::encode() const {
  std::vector<std::uint8_t> out;
  cd::ByteWriter w(out);
  encode_into(w);
  return out;
}

std::vector<std::uint8_t> encode_pooled(const DnsMessage& m) {
  std::vector<std::uint8_t> out = cd::BufferPool::acquire();
  cd::ByteWriter w(out);
  m.encode_into(w);
  return out;
}

DnsMessage DnsMessage::decode(cd::ByteReader& r) {
  DnsMessage m;
  m.header.id = r.u16();
  const std::uint16_t flags = r.u16();
  m.header.qr = flags & 0x8000;
  m.header.opcode = static_cast<Opcode>((flags >> 11) & 0xF);
  m.header.aa = flags & 0x0400;
  m.header.tc = flags & 0x0200;
  m.header.rd = flags & 0x0100;
  m.header.ra = flags & 0x0080;
  m.header.rcode = static_cast<Rcode>(flags & 0xF);
  const std::uint16_t qd = r.u16();
  const std::uint16_t an = r.u16();
  const std::uint16_t ns = r.u16();
  const std::uint16_t ar = r.u16();

  for (int i = 0; i < qd; ++i) {
    DnsQuestion q;
    q.qname = decode_name(r);
    q.qtype = static_cast<RrType>(r.u16());
    r.u16();  // class
    m.questions.push_back(std::move(q));
  }
  for (int i = 0; i < an; ++i) m.answers.push_back(decode_rr(r));
  for (int i = 0; i < ns; ++i) m.authorities.push_back(decode_rr(r));
  for (int i = 0; i < ar; ++i) m.additionals.push_back(decode_rr(r));
  return m;
}

DnsMessage DnsMessage::decode(std::span<const std::uint8_t> wire) {
  cd::ByteReader r(wire, "DnsMessage");
  return decode(r);
}

const DnsName& DnsMessage::qname() const {
  static const DnsName kRoot;
  return questions.empty() ? kRoot : questions.front().qname;
}

DnsMessage make_query(std::uint16_t id, const DnsName& qname, RrType qtype,
                      bool rd) {
  DnsMessage m;
  m.header.id = id;
  m.header.rd = rd;
  m.questions.push_back(DnsQuestion{qname, qtype});
  return m;
}

DnsMessage make_response(const DnsMessage& query, Rcode rcode) {
  DnsMessage m;
  m.header.id = query.header.id;
  m.header.qr = true;
  m.header.rd = query.header.rd;
  m.header.rcode = rcode;
  m.questions = query.questions;
  return m;
}

}  // namespace cd::dns
