// Simulated time: a signed microsecond count from experiment start.
#pragma once

#include <cstdint>

namespace cd::sim {

using SimTime = std::int64_t;  // microseconds

/// Largest schedulable instant (~146k simulated years). EventLoop clamps
/// schedule times here so sentinel-large delays saturate instead of wrapping
/// negative, and so timing-wheel slot arithmetic can never overflow SimTime.
constexpr SimTime kSimTimeMax = SimTime{1} << 62;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1'000;
constexpr SimTime kSecond = 1'000'000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;

constexpr SimTime sim_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace cd::sim
