// Operating-system network-stack models.
//
// Encodes the paper's lab findings as ground truth for the simulated fleet:
//   * Table 6 — which spoofed sources (destination-as-source, loopback) each
//     OS delivers to user space, per IP family;
//   * §5.3.2 — the ephemeral source-port range each OS hands to sockets;
//   * §5.3.1 — TCP SYN characteristics p0f keys on (TTL, window, MSS,
//     option layout).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/headers.h"

namespace cd::sim {

enum class OsFamily : std::uint8_t {
  kLinux,
  kFreeBsd,
  kWindows,
  kOther,  // embedded / middlebox-normalized stacks p0f cannot classify
};

/// Identifiers for the concrete OS versions studied in the paper, plus a few
/// synthetic stand-ins for the unclassifiable majority.
enum class OsId : std::uint8_t {
  kUbuntu1004,  // Linux 2.6
  kUbuntu1204,  // Linux 3.13
  kUbuntu1404,  // Linux 4.4
  kUbuntu1604,  // Linux 4.15
  kUbuntu1804,  // Linux 5.0 (paper's table lists 4.15/5.3/5.0 collectively)
  kUbuntu1904,  // Linux 5.3
  kFreeBsd113,
  kFreeBsd120,
  kFreeBsd121,
  kWin2003,
  kWin2003R2,
  kWin2008,
  kWin2008R2,
  kWin2012,
  kWin2012R2,
  kWin2016,
  kWin2019,
  kBaiduLike,         // crawler-farm stack whose signature p0f knows
  kEmbeddedCpe,       // CPE gear; generic fingerprint, unknown to p0f
  kMiddleboxFronted,  // traffic normalized by a middlebox; unknown to p0f
};
constexpr int kOsIdCount = 20;

/// TCP SYN characteristics a host stack stamps on outgoing connections.
struct TcpFingerprintSpec {
  std::uint8_t initial_ttl = 64;
  std::uint16_t window = 65535;
  std::uint16_t mss = 1460;
  std::vector<cd::net::TcpOption> syn_options;
};

struct OsProfile {
  OsId id = OsId::kEmbeddedCpe;
  OsFamily family = OsFamily::kOther;
  std::string name;
  std::string kernel;  // empty when not applicable

  // Table 6 acceptance matrix.
  bool accepts_dst_as_src_v4 = false;
  bool accepts_dst_as_src_v6 = false;
  bool accepts_loopback_v4 = false;
  bool accepts_loopback_v6 = false;

  // OS-designated ephemeral port range (inclusive).
  std::uint16_t ephemeral_lo = 49152;
  std::uint16_t ephemeral_hi = 65535;

  TcpFingerprintSpec fp;

  [[nodiscard]] std::uint32_t ephemeral_pool_size() const {
    return static_cast<std::uint32_t>(ephemeral_hi - ephemeral_lo) + 1;
  }
};

/// Immutable registry entry for `id`.
[[nodiscard]] const OsProfile& os_profile(OsId id);

/// All registry entries (for Table 6 reproduction and sweeps).
[[nodiscard]] const std::vector<OsProfile>& all_os_profiles();

[[nodiscard]] std::string os_family_name(OsFamily family);

}  // namespace cd::sim
