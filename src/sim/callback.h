// Small-buffer-optimized move-only callback for the event core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace cd::sim {

/// Move-only type-erased `void()` callable with inline storage sized for the
/// event core's hot capture lists (sim::Network's 16-byte drain closure,
/// sim::Host's [this, ConnKey] timeout lambdas). Callables that fit —
/// sizeof(F) <= kInlineSize and nothrow-move-constructible — live entirely
/// inside the node that carries them: scheduling one costs zero heap
/// allocations. Oversized or throwing-move callables (e.g. the per-packet
/// differential-baseline closure that captures a whole net::Packet) fall back
/// to one heap allocation, exactly like std::function would.
class SmallFn {
 public:
  /// Inline capacity. 48 bytes holds every steady-state closure in the tree
  /// with room for an IpAddr-keyed capture; the callable's address is
  /// max_align_t-aligned either way.
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule_* call site.
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = heap_ops<Fn>();
    }
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the stored callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Whether the stored callable lives in the inline buffer (introspection
  /// for the allocation-regression tests; empty reports true).
  [[nodiscard]] bool is_inline() const {
    return ops_ == nullptr || ops_->inline_storage;
  }

  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    /// Moves the callable from `from` into `to` and destroys the source.
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char*);
    bool inline_storage;
  };

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](unsigned char* b) { (*std::launder(reinterpret_cast<Fn*>(b)))(); },
        [](unsigned char* from, unsigned char* to) {
          Fn* f = std::launder(reinterpret_cast<Fn*>(from));
          ::new (static_cast<void*>(to)) Fn(std::move(*f));
          f->~Fn();
        },
        [](unsigned char* b) { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); },
        true};
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](unsigned char* b) { (**reinterpret_cast<Fn**>(b))(); },
        [](unsigned char* from, unsigned char* to) {
          *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
        },
        [](unsigned char* b) { delete *reinterpret_cast<Fn**>(b); }, false};
    return &ops;
  }

  void steal(SmallFn& other) {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.buf_, buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace cd::sim
