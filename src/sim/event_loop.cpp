#include "sim/event_loop.h"

#include <algorithm>

#include "util/error.h"

namespace cd::sim {

EventId EventLoop::schedule_at(SimTime at, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(at, now_), id, std::move(fn)});
  return id;
}

EventId EventLoop::schedule_in(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max<SimTime>(0, delay), std::move(fn));
}

EventId EventLoop::schedule_batched(SimTime at, BatchKey key,
                                    std::function<void()> fn) {
  const SimTime t = std::max(at, now_);
  const auto [slot, inserted] = open_batches_.try_emplace(Slot{t, key}, 0);
  if (!inserted) {
    batches_.at(slot->second).items.push_back(std::move(fn));
    return slot->second;
  }
  const EventId id = next_id_++;
  slot->second = id;
  Batch& batch = batches_[id];
  batch.at = t;
  batch.key = key;
  batch.items.push_back(std::move(fn));
  queue_.push(Event{t, id, {}});
  return id;
}

void EventLoop::close_batch(SimTime at, BatchKey key, EventId id) {
  const auto it = open_batches_.find(Slot{at, key});
  if (it != open_batches_.end() && it->second == id) open_batches_.erase(it);
}

void EventLoop::cancel(EventId id) {
  cancelled_.insert(id);
  // A cancelled batch must also stop accepting appends: a later
  // schedule_batched on the same slot opens a fresh, live batch.
  const auto it = batches_.find(id);
  if (it != batches_.end()) close_batch(it->second.at, it->second.key, id);
}

bool EventLoop::pop_one(std::uint64_t& n, std::uint64_t max_events,
                        const char* what) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    const auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      batches_.erase(ev.id);  // cancelled batch: drop its items
      continue;
    }
    now_ = ev.at;

    const auto bit = batches_.find(ev.id);
    if (bit == batches_.end()) {
      ++executed_;
      ev.fn();
      CD_ENSURE(++n <= max_events, what);
      return true;
    }

    // Batch entry: close the slot before running so same-tick appends made
    // by items (or after run_until) open a new batch, then drain in append
    // order. An item cancelling the running batch skips the remainder.
    Batch batch = std::move(bit->second);
    batches_.erase(bit);
    close_batch(batch.at, batch.key, ev.id);
    for (std::function<void()>& item : batch.items) {
      ++executed_;
      item();
      CD_ENSURE(++n <= max_events, what);
      if (cancelled_.erase(ev.id) > 0) break;
    }
    return true;
  }
  return false;
}

void EventLoop::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (pop_one(n, max_events, "EventLoop::run exceeded max_events")) {
  }
}

void EventLoop::run_until(SimTime until, std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    if (!pop_one(n, max_events, "EventLoop::run_until exceeded max_events")) {
      break;
    }
  }
  now_ = std::max(now_, until);
}

std::size_t EventLoop::pending() const {
  return queue_.size() - std::min(queue_.size(), cancelled_.size());
}

}  // namespace cd::sim
