#include "sim/event_loop.h"

#include <algorithm>

#include "util/error.h"

namespace cd::sim {

EventId EventLoop::schedule_at(SimTime at, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(at, now_), id, std::move(fn)});
  return id;
}

EventId EventLoop::schedule_in(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max<SimTime>(0, delay), std::move(fn));
}

void EventLoop::cancel(EventId id) {
  cancelled_.insert(id);
}

bool EventLoop::pop_one() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    const auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void EventLoop::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (pop_one()) {
    CD_ENSURE(++n <= max_events, "EventLoop::run exceeded max_events");
  }
}

void EventLoop::run_until(SimTime until, std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    if (!pop_one()) break;
    CD_ENSURE(++n <= max_events, "EventLoop::run_until exceeded max_events");
  }
  now_ = std::max(now_, until);
}

std::size_t EventLoop::pending() const {
  return queue_.size() - std::min(queue_.size(), cancelled_.size());
}

}  // namespace cd::sim
