#include "sim/event_loop.h"

#include <algorithm>
#include <bit>

#include "util/error.h"

namespace cd::sim {
namespace {

// --- 256-bit occupancy bitmap helpers (4 x u64 per wheel level) --------------

void bit_set(std::uint64_t bm[4], int i) { bm[i >> 6] |= 1ull << (i & 63); }
void bit_clear(std::uint64_t bm[4], int i) { bm[i >> 6] &= ~(1ull << (i & 63)); }
bool bit_test(const std::uint64_t bm[4], int i) {
  return (bm[i >> 6] >> (i & 63)) & 1u;
}

/// Lowest set bit with index >= `from` (from may be 256), or -1.
int next_bit(const std::uint64_t bm[4], int from) {
  for (int w = from >> 6; w < 4; ++w) {
    std::uint64_t word = bm[w];
    if (w == (from >> 6)) word &= ~std::uint64_t{0} << (from & 63);
    if (word != 0) return w * 64 + std::countr_zero(word);
  }
  return -1;
}

/// Any set bit with index <= `upto` (upto in [0, 255]).
bool any_bit_le(const std::uint64_t bm[4], int upto) {
  for (int w = 0; w <= (upto >> 6); ++w) {
    std::uint64_t word = bm[w];
    if (w == (upto >> 6) && (upto & 63) != 63) {
      word &= (std::uint64_t{1} << ((upto & 63) + 1)) - 1;
    }
    if (word != 0) return true;
  }
  return false;
}

/// Restores the running_ flag even when a callback or the max_events guard
/// throws out of run()/run_until().
struct RunningGuard {
  bool& flag;
  ~RunningGuard() { flag = false; }
};

}  // namespace

EventLoop::EventLoop(EventEngine engine) : engine_(engine) {}

EventLoop::~EventLoop() {
  for (Node* chunk : chunks_) delete[] chunk;
}

void EventLoop::set_engine(EventEngine engine) {
  CD_ENSURE(!running_ && pending() == 0 && open_batches_.empty() &&
                oracle_.open_batches.empty(),
            "EventLoop::set_engine: loop must be idle");
  engine_ = engine;
}

SimTime EventLoop::clamp_at(SimTime at) const {
  return std::min(std::max(at, now_), kSimTimeMax);
}

EventId EventLoop::schedule_at(SimTime at, Callback fn) {
  if (engine_ == EventEngine::kWheel) {
    return wheel_schedule_at(clamp_at(at), std::move(fn));
  }
  const EventId id = next_id_++;
  oracle_.queue.push(Event{clamp_at(at), id, std::move(fn)});
  return id;
}

EventId EventLoop::schedule_in(SimTime delay, Callback fn) {
  delay = std::max<SimTime>(0, delay);
  // Saturating add: a sentinel-large delay must pin to the far future, not
  // wrap SimTime negative and fire immediately.
  const SimTime at =
      delay > kSimTimeMax - now_ ? kSimTimeMax : now_ + delay;
  return schedule_at(at, std::move(fn));
}

EventId EventLoop::schedule_batched(SimTime at, BatchKey key, Callback fn) {
  if (engine_ == EventEngine::kWheel) {
    return wheel_schedule_batched(clamp_at(at), key, std::move(fn));
  }
  const SimTime t = clamp_at(at);
  const auto [slot, inserted] = oracle_.open_batches.try_emplace(Slot{t, key}, 0);
  if (!inserted) {
    oracle_.batches.at(slot->second).items.push_back(std::move(fn));
    return slot->second;
  }
  const EventId id = next_id_++;
  slot->second = id;
  Batch& batch = oracle_.batches[id];
  batch.at = t;
  batch.key = key;
  batch.items.push_back(std::move(fn));
  oracle_.queue.push(Event{t, id, {}});
  return id;
}

void EventLoop::cancel(EventId id) {
  if (engine_ == EventEngine::kWheel) {
    wheel_cancel(id);
    return;
  }
  oracle_.cancelled.insert(id);
  // A cancelled batch must also stop accepting appends: a later
  // schedule_batched on the same slot opens a fresh, live batch.
  const auto it = oracle_.batches.find(id);
  if (it != oracle_.batches.end()) {
    oracle_close_batch(it->second.at, it->second.key, id);
  }
}

void EventLoop::run(std::uint64_t max_events) {
  run_impl(kSimTimeMax, /*advance_to_until=*/false, max_events,
           "EventLoop::run exceeded max_events");
}

void EventLoop::run_until(SimTime until, std::uint64_t max_events) {
  run_impl(std::min(until, kSimTimeMax), /*advance_to_until=*/true, max_events,
           "EventLoop::run_until exceeded max_events");
}

void EventLoop::run_impl(SimTime until, bool advance_to_until,
                         std::uint64_t max_events, const char* what) {
  running_ = true;
  RunningGuard guard{running_};
  if (engine_ == EventEngine::kWheel) {
    wheel_run(until, advance_to_until, max_events, what);
    return;
  }
  std::uint64_t n = 0;
  if (!advance_to_until) {
    while (oracle_pop_one(n, max_events, what)) {
    }
    return;
  }
  while (!oracle_.queue.empty()) {
    // Prune cancelled tombstones BEFORE the time guard: the retired engine
    // historically tested `top().at <= until` against a tombstone and then
    // let pop_one execute the next real event however far past `until` it
    // lay. The wheel never had that defect, so the oracle carries the fix.
    const Event& top = oracle_.queue.top();
    const auto it = oracle_.cancelled.find(top.id);
    if (it != oracle_.cancelled.end()) {
      oracle_.cancelled.erase(it);
      oracle_.batches.erase(top.id);
      oracle_.queue.pop();
      continue;
    }
    if (top.at > until) break;
    if (!oracle_pop_one(n, max_events, what)) break;
  }
  now_ = std::max(now_, until);
}

std::size_t EventLoop::pending() const {
  if (engine_ == EventEngine::kWheel) return live_;
  return oracle_.queue.size() -
         std::min(oracle_.queue.size(), oracle_.cancelled.size());
}

// --- timing-wheel engine -----------------------------------------------------

EventLoop::Node* EventLoop::alloc_node() {
  if (free_nodes_ == nullptr) {
    Node* chunk = new Node[kNodesPerChunk];
    chunks_.push_back(chunk);
    const auto base =
        static_cast<std::uint32_t>((chunks_.size() - 1) * kNodesPerChunk);
    for (std::size_t i = kNodesPerChunk; i-- > 0;) {
      chunk[i].index = base + static_cast<std::uint32_t>(i);
      chunk[i].next = free_nodes_;
      free_nodes_ = &chunk[i];
    }
  }
  Node* n = free_nodes_;
  free_nodes_ = n->next;
  n->next = nullptr;
  return n;
}

void EventLoop::recycle_node(Node* n) {
  n->fn.reset();
  n->items.clear();  // destroys callbacks, keeps capacity for reuse
  n->queued = n->draining = n->cancelled = n->is_batch = false;
  ++n->gen;  // invalidates every EventId handed out for this incarnation
  n->next = free_nodes_;
  free_nodes_ = n;
}

EventLoop::Node* EventLoop::node_for(EventId id) {
  const std::uint64_t low = id & 0xFFFFFFFFull;
  if (low == 0) return nullptr;
  const std::size_t index = static_cast<std::size_t>(low - 1);
  if (index >= chunks_.size() * kNodesPerChunk) return nullptr;
  Node* n = &chunks_[index / kNodesPerChunk][index % kNodesPerChunk];
  if (n->gen != static_cast<std::uint32_t>(id >> 32)) return nullptr;
  return n;
}

void EventLoop::wheel_place(Node* n) {
  const auto at = static_cast<std::uint64_t>(n->at);
  const auto delta = static_cast<std::uint64_t>(n->at - now_);
  const int level =
      delta == 0 ? 0 : (63 - std::countl_zero(delta)) >> 3;
  const int slot = static_cast<int>((at >> (level * kSlotBits)) & 0xFF);
  WheelSlot& s = slots_[level][slot];
  n->next = nullptr;
  if (s.tail != nullptr) {
    s.tail->next = n;
  } else {
    s.head = n;
  }
  s.tail = n;
  bit_set(bitmap_[level], slot);
  n->queued = true;
  ++live_;
}

void EventLoop::wheel_cascade(int level, int slot) {
  WheelSlot& s = slots_[level][slot];
  if (s.head == nullptr) return;
  cascade_scratch_.clear();
  for (Node* n = s.head; n != nullptr; n = n->next) {
    cascade_scratch_.push_back(n);
  }
  s.head = s.tail = nullptr;
  bit_clear(bitmap_[level], slot);
  // Walk the (seq-ordered) slot list in REVERSE and prepend each node to its
  // target slot: the group keeps its internal order, and it lands ahead of
  // any same-`at` nodes already placed below — which were necessarily
  // scheduled later (reaching a lower level requires a smaller delta, i.e. a
  // later scheduling time for the same absolute time). That is exactly the
  // oracle's same-tick FIFO.
  for (auto it = cascade_scratch_.rbegin(); it != cascade_scratch_.rend();
       ++it) {
    Node* n = *it;
    const auto at = static_cast<std::uint64_t>(n->at);
    const auto delta = static_cast<std::uint64_t>(n->at - now_);
    const int lv = delta == 0 ? 0 : (63 - std::countl_zero(delta)) >> 3;
    const int sl = static_cast<int>((at >> (lv * kSlotBits)) & 0xFF);
    WheelSlot& target = slots_[lv][sl];
    n->next = target.head;
    target.head = n;
    if (target.tail == nullptr) target.tail = n;
    bit_set(bitmap_[lv], sl);
  }
}

bool EventLoop::wheel_advance(SimTime until) {
  for (;;) {
    const auto unow = static_cast<std::uint64_t>(now_);
    const int pos0 = static_cast<int>(unow & 0xFF);
    // Events due at exactly now_ (the current slot drains fully before the
    // cursor moves, so anything here is due, not stale).
    if (bit_test(bitmap_[0], pos0)) return true;

    // Ahead in the current level-0 rotation: jump straight to the slot (no
    // window boundary sits between, so nothing can cascade in front of it).
    const int s0 = next_bit(bitmap_[0], pos0 + 1);
    if (s0 >= 0) {
      const auto t = static_cast<SimTime>((unow & ~std::uint64_t{0xFF}) |
                                          static_cast<std::uint64_t>(s0));
      if (t > until) {
        now_ = until;  // same rotation: no boundary crossed, nothing to cascade
        return false;
      }
      now_ = t;
      return true;
    }

    // Earliest upcoming boundary that makes any occupied slot due: for each
    // level, either the entry of an occupied slot ahead in its current
    // rotation, or — for occupied slots at/behind the current position
    // (content wrapped into the next rotation) — the level's rotation wrap.
    SimTime best = INT64_MAX;
    for (int level = 0; level < kLevels; ++level) {
      const int shift = level * kSlotBits;
      const int pos = static_cast<int>((unow >> shift) & 0xFF);
      if (level >= 1) {
        const int s = next_bit(bitmap_[level], pos + 1);
        if (s >= 0) {
          // Preserve the bytes above this level; at the top level there are
          // none (a shift by shift+kSlotBits == 64 would be UB).
          const int up = shift + kSlotBits;
          const std::uint64_t high = up >= 64 ? 0 : (unow >> up) << up;
          const auto t = static_cast<SimTime>(
              high | (static_cast<std::uint64_t>(s) << shift));
          best = std::min(best, t);
        }
      }
      if (level + 1 < kLevels && any_bit_le(bitmap_[level], pos)) {
        const int up = (level + 1) * kSlotBits;
        const auto t = static_cast<SimTime>(((unow >> up) + 1) << up);
        best = std::min(best, t);
      }
      // level == kLevels-1 wrapped content is impossible: top-level slot
      // indices cover the full kSimTimeMax range without wrapping.
    }
    if (best == INT64_MAX) return false;  // wheel is empty; cursor untouched
    if (best > until) {
      // Every occupied slot becomes due past the bound. Jumping the cursor
      // to `until` crosses only content-free windows, so no cascades.
      now_ = until;
      return false;
    }
    const auto old = static_cast<std::uint64_t>(now_);
    now_ = best;
    // Cascade every slot the cursor just entered, top-down. "Entered" means
    // the position byte at that level (or any byte above it — a full wrap of
    // this level) changed.
    for (int level = kLevels - 1; level >= 1; --level) {
      if (((old ^ static_cast<std::uint64_t>(now_)) >>
           (level * kSlotBits)) != 0) {
        wheel_cascade(level, static_cast<int>(
                                 (static_cast<std::uint64_t>(now_) >>
                                  (level * kSlotBits)) &
                                 0xFF));
      }
    }
  }
}

void EventLoop::wheel_close_batch(SimTime at, BatchKey key, const Node* node) {
  const auto it = open_batches_.find(Slot{at, key});
  if (it != open_batches_.end() && it->second == node) {
    constexpr std::size_t kOpenPoolCap = 64;
    auto handle = open_batches_.extract(it);
    if (open_batch_pool_.size() < kOpenPoolCap) {
      open_batch_pool_.push_back(std::move(handle));
    }
  }
}

EventId EventLoop::wheel_schedule_at(SimTime at, Callback fn) {
  Node* n = alloc_node();
  n->at = at;
  n->seq = next_id_++;
  n->fn = std::move(fn);
  wheel_place(n);
  return node_id(n);
}

EventId EventLoop::wheel_schedule_batched(SimTime at, BatchKey key,
                                          Callback fn) {
  const auto it = open_batches_.find(Slot{at, key});
  if (it != open_batches_.end()) {
    it->second->items.push_back(std::move(fn));
    return node_id(it->second);
  }
  Node* n = alloc_node();
  n->at = at;
  n->seq = next_id_++;
  n->is_batch = true;
  n->key = key;
  n->items.push_back(std::move(fn));
  wheel_place(n);
  if (!open_batch_pool_.empty()) {
    auto handle = std::move(open_batch_pool_.back());
    open_batch_pool_.pop_back();
    handle.key() = Slot{at, key};
    handle.mapped() = n;
    open_batches_.insert(std::move(handle));
  } else {
    open_batches_.emplace(Slot{at, key}, n);
  }
  return node_id(n);
}

void EventLoop::wheel_cancel(EventId id) {
  Node* n = node_for(id);
  if (n == nullptr || n->cancelled) return;
  if (n->queued) {
    n->cancelled = true;
    --live_;
    if (n->is_batch) wheel_close_batch(n->at, n->key, n);
  } else if (n->draining) {
    // Cancel from inside the running batch: the drain loop checks the flag
    // after every item and skips the remainder. The open slot was already
    // closed when the drain started.
    n->cancelled = true;
  }
  // Neither queued nor draining: a free-list node whose generation happens
  // to match a guessed id — nothing to do (ids of executed events never
  // match again; recycle bumped the generation).
}

bool EventLoop::wheel_pop_one(std::uint64_t& n, std::uint64_t max_events,
                              const char* what, SimTime until,
                              SimTime& last_exec) {
  for (;;) {
    if (!wheel_advance(until)) return false;
    const int pos0 = static_cast<int>(static_cast<std::uint64_t>(now_) & 0xFF);
    WheelSlot& slot = slots_[0][pos0];
    Node* node = slot.head;
    CD_ENSURE(node != nullptr && node->at == now_,
              "EventLoop: wheel slot/time invariant violated");
    slot.head = node->next;
    if (slot.head == nullptr) {
      slot.tail = nullptr;
      bit_clear(bitmap_[0], pos0);
    }
    node->queued = false;
    if (node->cancelled) {
      // A cancelled node is pruned in place and — like the oracle, which
      // skips tombstones without touching now_ — does not advance the
      // observable clock (last_exec stays put; run_impl restores now_).
      recycle_node(node);
      continue;
    }
    --live_;
    last_exec = now_;
    if (!node->is_batch) {
      Callback fn = std::move(node->fn);
      // Recycle before invoking: the callback may schedule (reusing this
      // node) or cancel its own id (generation bumped -> safe no-op).
      recycle_node(node);
      ++executed_;
      fn();
      CD_ENSURE(++n <= max_events, what);
      return true;
    }
    // Batch entry: close the slot before running so same-tick appends made
    // by items (or after run_until) open a new batch, then drain in append
    // order. An item cancelling the running batch skips the remainder.
    node->draining = true;
    wheel_close_batch(node->at, node->key, node);
    for (std::size_t i = 0; i < node->items.size(); ++i) {
      ++executed_;
      node->items[i]();
      CD_ENSURE(++n <= max_events, what);
      if (node->cancelled) break;
    }
    node->draining = false;
    recycle_node(node);
    return true;
  }
}

void EventLoop::wheel_run(SimTime until, bool advance_to_until,
                          std::uint64_t max_events, const char* what) {
  SimTime last_exec = now_;
  std::uint64_t n = 0;
  if (until >= now_) {
    while (wheel_pop_one(n, max_events, what, until, last_exec)) {
    }
  }
  // The cursor may sit past the last *executed* event (it advanced through
  // cancelled husks or up to the bound while searching). The observable
  // clock matches the oracle: last executed event, or the run_until bound.
  now_ = advance_to_until ? std::max(last_exec, until) : last_exec;
}

// --- legacy priority-queue engine (the oracle) -------------------------------

void EventLoop::oracle_close_batch(SimTime at, BatchKey key, EventId id) {
  const auto it = oracle_.open_batches.find(Slot{at, key});
  if (it != oracle_.open_batches.end() && it->second == id) {
    oracle_.open_batches.erase(it);
  }
}

bool EventLoop::oracle_pop_one(std::uint64_t& n, std::uint64_t max_events,
                               const char* what) {
  while (!oracle_.queue.empty()) {
    // priority_queue::top() is const; moving out before pop is safe because
    // the element is removed immediately after.
    Event ev = std::move(const_cast<Event&>(oracle_.queue.top()));
    oracle_.queue.pop();
    const auto it = oracle_.cancelled.find(ev.id);
    if (it != oracle_.cancelled.end()) {
      oracle_.cancelled.erase(it);
      oracle_.batches.erase(ev.id);  // cancelled batch: drop its items
      continue;
    }
    now_ = ev.at;

    const auto bit = oracle_.batches.find(ev.id);
    if (bit == oracle_.batches.end()) {
      ++executed_;
      ev.fn();
      CD_ENSURE(++n <= max_events, what);
      return true;
    }

    // Batch entry: close the slot before running so same-tick appends made
    // by items (or after run_until) open a new batch, then drain in append
    // order. An item cancelling the running batch skips the remainder.
    Batch batch = std::move(bit->second);
    oracle_.batches.erase(bit);
    oracle_close_batch(batch.at, batch.key, ev.id);
    for (Callback& item : batch.items) {
      ++executed_;
      item();
      CD_ENSURE(++n <= max_events, what);
      if (oracle_.cancelled.erase(ev.id) > 0) break;
    }
    return true;
  }
  return false;
}

}  // namespace cd::sim
