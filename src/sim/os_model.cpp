#include "sim/os_model.h"

#include <unordered_map>

#include "util/error.h"

namespace cd::sim {
namespace {

using cd::net::TcpOption;
using cd::net::TcpOptionKind;

// Option layouts per stack. Ordering is part of the signature.
std::vector<TcpOption> linux_opts(std::uint16_t mss) {
  return {{TcpOptionKind::kMss, mss},
          {TcpOptionKind::kSackPermitted, 0},
          {TcpOptionKind::kTimestamp, 1},
          {TcpOptionKind::kNop, 0},
          {TcpOptionKind::kWindowScale, 7}};
}

std::vector<TcpOption> freebsd_opts(std::uint16_t mss) {
  return {{TcpOptionKind::kMss, mss},
          {TcpOptionKind::kNop, 0},
          {TcpOptionKind::kWindowScale, 6},
          {TcpOptionKind::kSackPermitted, 0},
          {TcpOptionKind::kTimestamp, 1}};
}

std::vector<TcpOption> windows_opts(std::uint16_t mss) {
  return {{TcpOptionKind::kMss, mss},
          {TcpOptionKind::kNop, 0},
          {TcpOptionKind::kWindowScale, 8},
          {TcpOptionKind::kNop, 0},
          {TcpOptionKind::kNop, 0},
          {TcpOptionKind::kSackPermitted, 0}};
}

std::vector<TcpOption> baidu_opts(std::uint16_t mss) {
  return {{TcpOptionKind::kMss, mss},
          {TcpOptionKind::kNop, 0},
          {TcpOptionKind::kNop, 0},
          {TcpOptionKind::kSackPermitted, 0}};
}

std::vector<TcpOption> generic_opts(std::uint16_t mss) {
  return {{TcpOptionKind::kMss, mss}};
}

OsProfile make_linux(OsId id, const char* name, const char* kernel,
                     bool old_kernel) {
  OsProfile p;
  p.id = id;
  p.family = OsFamily::kLinux;
  p.name = name;
  p.kernel = kernel;
  // Table 6: Linux drops v4 destination-as-source, passes the v6 variant to
  // user space; kernels <= 4.x additionally accept v6 loopback sources.
  p.accepts_dst_as_src_v4 = false;
  p.accepts_dst_as_src_v6 = true;
  p.accepts_loopback_v4 = false;
  p.accepts_loopback_v6 = old_kernel;
  // net.ipv4.ip_local_port_range default 32768..61000 (pool 28,233; the
  // paper reports the max observable *range*, 28,232).
  p.ephemeral_lo = 32768;
  p.ephemeral_hi = 61000;
  p.fp = {64, 29200, 1460, linux_opts(1460)};
  return p;
}

OsProfile make_freebsd(OsId id, const char* name) {
  OsProfile p;
  p.id = id;
  p.family = OsFamily::kFreeBsd;
  p.name = name;
  p.accepts_dst_as_src_v4 = true;
  p.accepts_dst_as_src_v6 = true;
  // IANA ephemeral range 49152..65535 (max range 16,383).
  p.ephemeral_lo = 49152;
  p.ephemeral_hi = 65535;
  p.fp = {64, 65535, 1460, freebsd_opts(1460)};
  return p;
}

OsProfile make_windows(OsId id, const char* name, bool is_2003) {
  OsProfile p;
  p.id = id;
  p.family = OsFamily::kWindows;
  p.name = name;
  p.accepts_dst_as_src_v4 = true;
  p.accepts_dst_as_src_v6 = true;
  p.accepts_loopback_v4 = is_2003;  // Table 6: only 2003/2003 R2
  p.ephemeral_lo = 49152;
  p.ephemeral_hi = 65535;
  p.fp = {128, 8192, 1460, windows_opts(1460)};
  return p;
}

std::vector<OsProfile> build_registry() {
  std::vector<OsProfile> out;
  out.push_back(make_linux(OsId::kUbuntu1004, "Ubuntu 10.04", "2.6", true));
  out.push_back(make_linux(OsId::kUbuntu1204, "Ubuntu 12.04", "3.13", true));
  out.push_back(make_linux(OsId::kUbuntu1404, "Ubuntu 14.04", "4.4", true));
  out.push_back(make_linux(OsId::kUbuntu1604, "Ubuntu 16.04", "4.15", false));
  out.push_back(make_linux(OsId::kUbuntu1804, "Ubuntu 18.04", "5.0", false));
  out.push_back(make_linux(OsId::kUbuntu1904, "Ubuntu 19.04", "5.3", false));
  out.push_back(make_freebsd(OsId::kFreeBsd113, "FreeBSD 11.3"));
  out.push_back(make_freebsd(OsId::kFreeBsd120, "FreeBSD 12.0"));
  out.push_back(make_freebsd(OsId::kFreeBsd121, "FreeBSD 12.1"));
  out.push_back(make_windows(OsId::kWin2003, "Windows Server 2003", true));
  out.push_back(make_windows(OsId::kWin2003R2, "Windows Server 2003 R2", true));
  out.push_back(make_windows(OsId::kWin2008, "Windows Server 2008", false));
  out.push_back(make_windows(OsId::kWin2008R2, "Windows Server 2008 R2", false));
  out.push_back(make_windows(OsId::kWin2012, "Windows Server 2012", false));
  out.push_back(make_windows(OsId::kWin2012R2, "Windows Server 2012 R2", false));
  out.push_back(make_windows(OsId::kWin2016, "Windows Server 2016", false));
  out.push_back(make_windows(OsId::kWin2019, "Windows Server 2019", false));

  {
    // Crawler-farm stack with a signature p0f recognizes as "BaiduSpider"
    // (§5.3.1 found 20% of zero-range resolvers matching it).
    OsProfile p;
    p.id = OsId::kBaiduLike;
    p.family = OsFamily::kOther;
    p.name = "BaiduSpider-like";
    p.accepts_dst_as_src_v4 = true;
    p.accepts_dst_as_src_v6 = true;
    p.ephemeral_lo = 32768;
    p.ephemeral_hi = 61000;
    p.fp = {64, 8190, 1440, baidu_opts(1440)};
    out.push_back(p);
  }
  {
    // Embedded CPE: Linux-derived behaviour, fingerprint absent from p0f's
    // database (contributes to the ~90% unclassified share).
    OsProfile p;
    p.id = OsId::kEmbeddedCpe;
    p.family = OsFamily::kOther;
    p.name = "Embedded CPE";
    // Linux-derived: the kernel drops v4 destination-as-source (Table 6).
    p.accepts_dst_as_src_v4 = false;
    p.accepts_dst_as_src_v6 = true;
    p.ephemeral_lo = 1024;
    p.ephemeral_hi = 65535;
    p.fp = {64, 5840, 1400, generic_opts(1400)};
    out.push_back(p);
  }
  {
    // Host behind a normalizing middlebox: rewritten TTL/window defeat p0f.
    OsProfile p;
    p.id = OsId::kMiddleboxFronted;
    p.family = OsFamily::kOther;
    p.name = "Middlebox-fronted";
    p.accepts_dst_as_src_v4 = true;
    p.accepts_dst_as_src_v6 = true;
    p.ephemeral_lo = 1024;
    p.ephemeral_hi = 65535;
    p.fp = {255, 16384, 1380, generic_opts(1380)};
    out.push_back(p);
  }
  return out;
}

}  // namespace

const std::vector<OsProfile>& all_os_profiles() {
  static const std::vector<OsProfile> registry = build_registry();
  return registry;
}

const OsProfile& os_profile(OsId id) {
  for (const OsProfile& p : all_os_profiles()) {
    if (p.id == id) return p;
  }
  throw cd::InvariantError("unknown OsId");
}

std::string os_family_name(OsFamily family) {
  switch (family) {
    case OsFamily::kLinux: return "Linux";
    case OsFamily::kFreeBsd: return "FreeBSD";
    case OsFamily::kWindows: return "Windows";
    case OsFamily::kOther: return "Other";
  }
  return "?";
}

}  // namespace cd::sim
