// AS-level Internet topology: prefix announcements, routing, border policy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.h"

namespace cd::sim {

using Asn = std::uint32_t;

/// Border filtering configuration of one AS.
struct FilterPolicy {
  /// BCP 38 / origin-side SAV: drop egress packets whose source is not one
  /// of this AS's own prefixes.
  bool osav = false;
  /// Destination-side SAV: drop ingress packets whose source claims to be
  /// inside this AS. This is the property the paper measures.
  bool dsav = false;
  /// Drop ingress packets with private/loopback/other special sources
  /// (martian filtering), independent of DSAV.
  bool drop_inbound_martians = false;
  /// Last-hop uRPF-style filtering: drop ingress packets whose source lies
  /// in the destination's own /24 (v4) or /64 (v6) — a subnet-local address
  /// cannot legitimately arrive from outside the border.
  bool drop_inbound_same_subnet = false;
};

struct AsInfo {
  Asn asn = 0;
  FilterPolicy policy;
  std::vector<cd::net::Prefix> prefixes_v4;
  std::vector<cd::net::Prefix> prefixes_v6;
};

/// Longest-prefix-match routing table mapping prefixes to origin ASes.
/// Implemented as per-length hash maps probed from the longest announced
/// length downward.
class RoutingTable {
 public:
  void add(const cd::net::Prefix& prefix, Asn asn);

  /// Origin AS of the most specific covering announcement, if any.
  [[nodiscard]] std::optional<Asn> lookup(const cd::net::IpAddr& addr) const;

  /// The matched announcement itself.
  [[nodiscard]] std::optional<cd::net::Prefix> lookup_prefix(
      const cd::net::IpAddr& addr) const;

  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  struct Match {
    cd::net::Prefix prefix;
    Asn asn;
  };
  [[nodiscard]] const Match* find(const cd::net::IpAddr& addr) const;

  // length -> (masked bits -> match), kept sorted by length so we can probe
  // from most- to least-specific. Separate tables per family.
  using LengthMap =
      std::map<int, std::unordered_map<cd::net::U128, Match, cd::net::U128Hash>,
               std::greater<int>>;
  LengthMap v4_;
  LengthMap v6_;
  std::size_t count_ = 0;
};

/// The set of ASes, their announced prefixes, and the global routing view.
class Topology {
 public:
  /// Registers an AS; re-adding an existing ASN returns the existing record.
  AsInfo& add_as(Asn asn, FilterPolicy policy = {});

  /// Announces `prefix` as originated by `asn` (which must exist).
  void announce(Asn asn, const cd::net::Prefix& prefix);

  [[nodiscard]] const AsInfo* find(Asn asn) const;
  [[nodiscard]] AsInfo* find(Asn asn);

  /// Origin AS of `addr` per longest-prefix match.
  [[nodiscard]] std::optional<Asn> asn_of(const cd::net::IpAddr& addr) const;

  /// True if `addr` falls within any prefix originated by `asn`.
  [[nodiscard]] bool is_internal(Asn asn, const cd::net::IpAddr& addr) const;

  [[nodiscard]] const std::vector<cd::net::Prefix>& prefixes_of(
      Asn asn, cd::net::IpFamily family) const;

  [[nodiscard]] const std::unordered_map<Asn, AsInfo>& ases() const {
    return ases_;
  }
  [[nodiscard]] std::size_t as_count() const { return ases_.size(); }
  [[nodiscard]] const RoutingTable& routes() const { return routes_; }

 private:
  std::unordered_map<Asn, AsInfo> ases_;
  RoutingTable routes_;
};

}  // namespace cd::sim
