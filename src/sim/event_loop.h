// Discrete-event simulation core: a hierarchical timing wheel of intrusive,
// pool-recycled event nodes (with the retired priority-queue engine kept as
// a differential oracle).
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace cd::sim {

using EventId = std::uint64_t;

/// Which scheduling engine an EventLoop runs on.
enum class EventEngine : std::uint8_t {
  /// Hierarchical timing wheel over discrete SimTime ticks: 8 levels x 256
  /// slots with per-level occupancy bitmaps, intrusive pooled event nodes,
  /// and small-buffer-optimized callbacks. Zero steady-state heap
  /// allocations per scheduled event. The default.
  kWheel,
  /// The retired std::priority_queue implementation, kept verbatim as the
  /// reference oracle for the wheel's differential tests
  /// (tests/test_sim_event_core.cpp) and for bisecting.
  kPriorityQueue,
};

/// Single-threaded discrete event loop. Events scheduled for the same time
/// run in scheduling order (stable). Cancellation is O(1).
///
/// Besides singleton events, the loop supports *batched* scheduling
/// (schedule_batched): every append to the same open (time, key) batch
/// shares one queue position, so a caller fanning N callbacks into one tick
/// pays one scheduling operation instead of N. Batch items run back-to-back,
/// in append order, at the queue position of the batch's first append; each
/// item counts as one executed event toward the max_events guard.
///
/// Both engines implement identical observable semantics — execution order,
/// same-tick FIFO, cancel-from-inside-batch, now()/executed() trajectories —
/// and the wheel is differentially tested against the oracle on randomized
/// interleavings and whole campaigns.
class EventLoop {
 public:
  /// Scheduling callback. Move-only; callables up to SmallFn::kInlineSize
  /// bytes are stored inline (no heap allocation on the scheduling path).
  using Callback = SmallFn;

  /// Caller-chosen grouping key for schedule_batched (e.g. a destination
  /// host identity). Only equality matters; the key never influences
  /// ordering between different batches.
  using BatchKey = std::uint64_t;

  explicit EventLoop(EventEngine engine = EventEngine::kWheel);
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  [[nodiscard]] SimTime now() const { return now_; }

  [[nodiscard]] EventEngine engine() const { return engine_; }

  /// Switches engines. Only legal while the loop is idle (nothing pending
  /// and not inside run()/run_until()); throws InvariantError otherwise.
  void set_engine(EventEngine engine);

  /// Schedule `fn` at absolute time `at` (clamped to [now, kSimTimeMax]).
  /// Returns an id usable with cancel().
  EventId schedule_at(SimTime at, Callback fn);

  /// Schedule `fn` after `delay` from now. Negative delays clamp to zero and
  /// sentinel-large delays saturate at kSimTimeMax instead of wrapping.
  EventId schedule_in(SimTime delay, Callback fn);

  /// Appends `fn` to the batch identified by (at, key), creating the batch
  /// — one queue position — on first use. `at` clamps like schedule_at. All
  /// appends to one batch return the same EventId; cancel(id) cancels the
  /// whole batch (from outside, or from inside a running batch, in which
  /// case the remaining items are skipped). A batch closes when it runs or
  /// is cancelled: later appends to the same (at, key) open a fresh batch
  /// that runs at its own (later) queue position, including appends made
  /// while the batch itself is draining.
  EventId schedule_batched(SimTime at, BatchKey key, Callback fn);

  /// Prevent a pending event (or whole batch) from running. Safe on
  /// already-run ids.
  void cancel(EventId id);

  /// Runs events until the queue drains. `max_events` guards against
  /// runaway self-scheduling loops (throws InvariantError when exceeded);
  /// every batch item counts individually.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= `until`; leaves later events queued and
  /// advances now() to `until`. Batches due by `until` drain completely;
  /// later batches stay open for further appends.
  void run_until(SimTime until, std::uint64_t max_events = UINT64_MAX);

  /// Pending queue entries (a batch counts once, whatever its size).
  [[nodiscard]] std::size_t pending() const;
  /// Events executed so far; each batch item counts as one.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  // --- shared ----------------------------------------------------------------

  struct Slot {
    SimTime at;
    BatchKey key;
    friend bool operator==(const Slot&, const Slot&) = default;
  };
  struct SlotHash {
    std::size_t operator()(const Slot& s) const {
      std::uint64_t h = static_cast<std::uint64_t>(s.at) * 0x9E3779B97F4A7C15ULL;
      h ^= s.key + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  [[nodiscard]] SimTime clamp_at(SimTime at) const;
  void run_impl(SimTime until, bool advance_to_until,
                std::uint64_t max_events, const char* what);

  // --- timing-wheel engine ---------------------------------------------------

  static constexpr int kLevels = 8;      // 8 x 8 bits covers every SimTime
  static constexpr int kSlotBits = 8;
  static constexpr int kSlotsPerLevel = 1 << kSlotBits;  // 256
  static constexpr std::size_t kNodesPerChunk = 64;

  /// Intrusive event node: wheel-slot linkage, FIFO sequence number, the SBO
  /// callback (singletons) or the pooled item vector (batches). Recycled
  /// through a free list; `gen` invalidates stale EventIds on reuse.
  struct Node {
    SimTime at = 0;
    std::uint64_t seq = 0;  // global scheduling order; FIFO tie-break
    Node* next = nullptr;
    std::uint32_t index = 0;  // position in the node pool (id encoding)
    std::uint32_t gen = 0;
    bool queued = false;     // linked into a wheel slot
    bool draining = false;   // batch currently executing its items
    bool cancelled = false;
    bool is_batch = false;
    BatchKey key = 0;
    Callback fn;
    std::vector<Callback> items;  // batch payload; capacity recycled
  };

  struct WheelSlot {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  [[nodiscard]] static EventId node_id(const Node* n) {
    return (static_cast<EventId>(n->gen) << 32) |
           static_cast<EventId>(n->index + 1);
  }

  Node* alloc_node();
  void recycle_node(Node* n);
  [[nodiscard]] Node* node_for(EventId id);

  void wheel_place(Node* n);
  void wheel_cascade(int level, int slot);
  /// Advances now_ to the next due (non-empty level-0) slot at time
  /// <= `until`, cascading along the way. Returns false when nothing is due
  /// by `until` (now_ is then left at min(until, its previous value) — the
  /// caller restores the observable clock).
  bool wheel_advance(SimTime until);
  bool wheel_pop_one(std::uint64_t& n, std::uint64_t max_events,
                     const char* what, SimTime until, SimTime& last_exec);
  void wheel_close_batch(SimTime at, BatchKey key, const Node* node);

  EventId wheel_schedule_at(SimTime at, Callback fn);
  EventId wheel_schedule_batched(SimTime at, BatchKey key, Callback fn);
  void wheel_cancel(EventId id);
  void wheel_run(SimTime until, bool advance_to_until,
                 std::uint64_t max_events, const char* what);

  // --- legacy priority-queue engine (the oracle) -----------------------------

  struct Event {
    SimTime at;
    EventId id;
    Callback fn;  // empty for batch entries (see Oracle::batches)
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };
  /// Out-of-line item storage for a batch entry (priority_queue elements
  /// are immutable, so appends land here, keyed by the entry's id).
  struct Batch {
    SimTime at = 0;
    BatchKey key = 0;
    std::vector<Callback> items;
  };
  struct Oracle {
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::unordered_set<EventId> cancelled;
    std::unordered_map<EventId, Batch> batches;
    std::unordered_map<Slot, EventId, SlotHash> open_batches;
  };

  bool oracle_pop_one(std::uint64_t& n, std::uint64_t max_events,
                      const char* what);
  void oracle_close_batch(SimTime at, BatchKey key, EventId id);

  // --- state -----------------------------------------------------------------

  EventEngine engine_;
  SimTime now_ = 0;
  EventId next_id_ = 1;        // oracle ids; the wheel's seq counter too
  std::uint64_t executed_ = 0;
  bool running_ = false;

  // Wheel state. The slot array is ~32 KiB; everything else is pooled and
  // reaches a steady state where scheduling allocates nothing.
  WheelSlot slots_[kLevels][kSlotsPerLevel] = {};
  std::uint64_t bitmap_[kLevels][kSlotsPerLevel / 64] = {};
  std::size_t live_ = 0;  // queued, non-cancelled nodes
  std::vector<Node*> chunks_;
  Node* free_nodes_ = nullptr;
  std::vector<Node*> cascade_scratch_;
  using OpenBatchMap = std::unordered_map<Slot, Node*, SlotHash>;
  OpenBatchMap open_batches_;
  std::vector<OpenBatchMap::node_type> open_batch_pool_;

  Oracle oracle_;
};

}  // namespace cd::sim
