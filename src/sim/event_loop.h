// Discrete-event simulation core: a time-ordered queue of callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace cd::sim {

using EventId = std::uint64_t;

/// Single-threaded discrete event loop. Events scheduled for the same time
/// run in scheduling order (stable). Cancellation is O(1) amortized via a
/// tombstone set.
///
/// Besides singleton events, the loop supports *batched* scheduling
/// (schedule_batched): every append to the same open (time, key) batch
/// shares one priority-queue entry, so a caller fanning N callbacks into
/// one tick pays one queue operation instead of N. Batch items run
/// back-to-back, in append order, at the queue position of the batch's
/// first append; each item counts as one executed event toward the
/// max_events guard.
class EventLoop {
 public:
  /// Caller-chosen grouping key for schedule_batched (e.g. a destination
  /// host identity). Only equality matters; the key never influences
  /// ordering between different batches.
  using BatchKey = std::uint64_t;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now). Returns an id
  /// usable with cancel().
  EventId schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` after `delay` from now.
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  /// Appends `fn` to the batch identified by (at, key), creating the batch
  /// — one priority-queue entry — on first use. `at` clamps to now like
  /// schedule_at. All appends to one batch return the same EventId;
  /// cancel(id) cancels the whole batch (from outside, or from inside a
  /// running batch, in which case the remaining items are skipped). A batch
  /// closes when it runs or is cancelled: later appends to the same
  /// (at, key) open a fresh batch that runs at its own (later) queue
  /// position, including appends made while the batch itself is draining.
  EventId schedule_batched(SimTime at, BatchKey key, std::function<void()> fn);

  /// Prevent a pending event (or whole batch) from running. Safe on
  /// already-run ids.
  void cancel(EventId id);

  /// Runs events until the queue drains. `max_events` guards against
  /// runaway self-scheduling loops (throws InvariantError when exceeded);
  /// every batch item counts individually.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= `until`; leaves later events queued and
  /// advances now() to `until`. Batches due by `until` drain completely;
  /// later batches stay open for further appends.
  void run_until(SimTime until, std::uint64_t max_events = UINT64_MAX);

  /// Pending queue entries (a batch counts once, whatever its size).
  [[nodiscard]] std::size_t pending() const;
  /// Events executed so far; each batch item counts as one.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    EventId id;
    std::function<void()> fn;  // empty for batch entries (see batches_)
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };
  /// Out-of-line item storage for a batch entry (priority_queue elements
  /// are immutable, so appends land here, keyed by the entry's id).
  struct Batch {
    SimTime at = 0;
    BatchKey key = 0;
    std::vector<std::function<void()>> items;
  };
  struct Slot {
    SimTime at;
    BatchKey key;
    friend bool operator==(const Slot&, const Slot&) = default;
  };
  struct SlotHash {
    std::size_t operator()(const Slot& s) const {
      std::uint64_t h = static_cast<std::uint64_t>(s.at) * 0x9E3779B97F4A7C15ULL;
      h ^= s.key + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  bool pop_one(std::uint64_t& n, std::uint64_t max_events, const char* what);
  /// Closes the open batch for (at, key) if it is `id` (stops appends).
  void close_batch(SimTime at, BatchKey key, EventId id);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, Batch> batches_;
  std::unordered_map<Slot, EventId, SlotHash> open_batches_;
};

}  // namespace cd::sim
