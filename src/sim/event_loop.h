// Discrete-event simulation core: a time-ordered queue of callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace cd::sim {

using EventId = std::uint64_t;

/// Single-threaded discrete event loop. Events scheduled for the same time
/// run in scheduling order (stable). Cancellation is O(1) amortized via a
/// tombstone set.
class EventLoop {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now). Returns an id
  /// usable with cancel().
  EventId schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` after `delay` from now.
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  /// Prevent a pending event from running. Safe on already-run ids.
  void cancel(EventId id);

  /// Runs events until the queue drains. `max_events` guards against
  /// runaway self-scheduling loops (throws InvariantError when exceeded).
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= `until`; leaves later events queued and
  /// advances now() to `until`.
  void run_until(SimTime until, std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  bool pop_one();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace cd::sim
