#include "sim/network.h"

#include <algorithm>

#include "net/special.h"
#include "sim/host.h"
#include "util/bytes.h"
#include "util/error.h"

namespace cd::sim {

using cd::net::IpAddr;
using cd::net::Packet;

std::string drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kNone: return "delivered";
    case DropReason::kOsav: return "osav";
    case DropReason::kDsav: return "dsav";
    case DropReason::kMartian: return "martian";
    case DropReason::kUrpfSubnet: return "urpf-subnet";
    case DropReason::kUnrouted: return "unrouted";
    case DropReason::kNoHost: return "no-host";
    case DropReason::kStackRejected: return "stack-rejected";
  }
  return "?";
}

Network::Network(Topology& topology, EventLoop& loop, cd::Rng rng)
    : topology_(topology), loop_(loop), jitter_seed_(rng.u64()) {}

void Network::attach(Host* host) {
  CD_ENSURE(host != nullptr, "attach: null host");
  for (const IpAddr& addr : host->addresses()) {
    hosts_[addr] = host;
  }
}

void Network::detach(Host* host) {
  for (const IpAddr& addr : host->addresses()) {
    const auto it = hosts_.find(addr);
    if (it != hosts_.end() && it->second == host) hosts_.erase(it);
  }
}

Host* Network::host_at(const IpAddr& addr) const {
  const auto it = hosts_.find(addr);
  return it == hosts_.end() ? nullptr : it->second;
}

std::size_t Network::open_tcp_connections() const {
  // A multi-address host appears once per address in hosts_; count each
  // host once (called at end-of-run, not on a hot path).
  std::size_t n = 0;
  std::unordered_map<const Host*, bool> seen;
  for (const auto& [addr, host] : hosts_) {
    if (seen.emplace(host, true).second) n += host->open_tcp_connections();
  }
  return n;
}

TransportCounters Network::transport_counters() const {
  TransportCounters sum;
  std::unordered_map<const Host*, bool> seen;
  for (const auto& [addr, host] : hosts_) {
    if (seen.emplace(host, true).second) sum += host->transport_counters();
  }
  return sum;
}

void Network::add_anycast_site(const IpAddr& service, Host* host) {
  CD_ENSURE(host != nullptr, "add_anycast_site: null host");
  anycast_[service].push_back(host);
}

Host* Network::anycast_catchment(const IpAddr& service, Asn origin_asn) const {
  const auto it = anycast_.find(service);
  if (it == anycast_.end() || it->second.empty()) return nullptr;
  Host* best = nullptr;
  SimTime best_dist = 0;
  for (Host* site : it->second) {
    const SimTime dist = pair_base_latency(origin_asn, site->asn());
    if (best == nullptr || dist < best_dist) {
      best = site;
      best_dist = dist;
    }
  }
  return best;
}

SimTime Network::pair_base_latency(Asn from, Asn to) {
  if (from == to) return 0;
  // Deterministic symmetric base latency per AS pair (the cross-AS term of
  // latency() below, shared so catchment agrees exactly with transit cost).
  const std::uint64_t a = std::min(from, to);
  const std::uint64_t b = std::max(from, to);
  std::uint64_t h = (a * 0x9E3779B97F4A7C15ULL) ^ (b + 0x517CC1B727220A95ULL);
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  return 5 * kMillisecond + static_cast<SimTime>(h % (45 * kMillisecond));
}

DropReason Network::classify(const Packet& packet, Asn origin_asn,
                             Host** out_host) {
  *out_host = nullptr;

  // Anycast service addresses resolve to a catchment site, not the routing
  // table: the origin's topology distance picks the site, and border policy
  // is evaluated against that site's AS.
  if (!anycast_.empty()) {
    if (Host* site = anycast_catchment(packet.dst, origin_asn)) {
      const Asn site_asn = site->asn();
      if (site_asn != origin_asn) {
        if (const AsInfo* origin = topology_.find(origin_asn)) {
          if (origin->policy.osav &&
              !topology_.is_internal(origin_asn, packet.src)) {
            return DropReason::kOsav;
          }
        }
        if (const AsInfo* dest = topology_.find(site_asn)) {
          if (dest->policy.dsav &&
              topology_.is_internal(site_asn, packet.src)) {
            return DropReason::kDsav;
          }
          if (dest->policy.drop_inbound_martians &&
              cd::net::is_special_purpose(packet.src)) {
            return DropReason::kMartian;
          }
          if (dest->policy.drop_inbound_same_subnet &&
              packet.src.family() == packet.dst.family()) {
            const int len = packet.dst.is_v4() ? 24 : 64;
            if (cd::net::Prefix(packet.dst, len).contains(packet.src)) {
              return DropReason::kUrpfSubnet;
            }
          }
        }
      }
      if (!site->stack_accepts(packet)) return DropReason::kStackRejected;
      *out_host = site;
      return DropReason::kNone;
    }
  }

  const auto dst_asn = topology_.asn_of(packet.dst);
  const bool crosses_border = !dst_asn || *dst_asn != origin_asn;

  if (crosses_border) {
    // Origin border, egress: BCP 38 / OSAV.
    if (const AsInfo* origin = topology_.find(origin_asn)) {
      if (origin->policy.osav &&
          !topology_.is_internal(origin_asn, packet.src)) {
        return DropReason::kOsav;
      }
    }
  }

  if (!dst_asn) return DropReason::kUnrouted;

  if (crosses_border) {
    // Destination border, ingress.
    const AsInfo* dest = topology_.find(*dst_asn);
    if (dest) {
      if (dest->policy.dsav && topology_.is_internal(*dst_asn, packet.src)) {
        return DropReason::kDsav;
      }
      if (dest->policy.drop_inbound_martians &&
          cd::net::is_special_purpose(packet.src)) {
        return DropReason::kMartian;
      }
      if (dest->policy.drop_inbound_same_subnet &&
          packet.src.family() == packet.dst.family()) {
        // Strict uRPF at the last hop: a subnet-local source (including the
        // destination itself) cannot legitimately arrive from outside.
        const int len = packet.dst.is_v4() ? 24 : 64;
        if (cd::net::Prefix(packet.dst, len).contains(packet.src)) {
          return DropReason::kUrpfSubnet;
        }
      }
    }
  }

  Host* host = host_at(packet.dst);
  if (!host) return DropReason::kNoHost;
  if (!host->stack_accepts(packet)) return DropReason::kStackRejected;
  *out_host = host;
  return DropReason::kNone;
}

SimTime Network::latency(Asn from, Asn to,
                         const cd::net::Packet& packet) const {
  // Jitter is a pure hash of (seed, packet identity), not a draw from a
  // shared stream: concurrent traffic cannot perturb a packet's transit
  // time, so per-packet latencies are identical in serial and sharded runs.
  std::uint64_t j = cd::hash_combine(jitter_seed_,
                                     cd::net::IpAddrHash{}(packet.src));
  j = cd::hash_combine(j, cd::net::IpAddrHash{}(packet.dst));
  j = cd::hash_combine(
      j, (static_cast<std::uint64_t>(packet.src_port) << 32) |
             (static_cast<std::uint64_t>(packet.dst_port) << 16) |
             static_cast<std::uint64_t>(packet.proto));
  if (!packet.payload.empty()) {
    j = cd::hash_combine(
        j, cd::stable_hash(std::string_view(
               reinterpret_cast<const char*>(packet.payload.data()),
               packet.payload.size())));
  }

  if (from == to) {
    return kMillisecond + static_cast<SimTime>(j % (2 * kMillisecond));
  }
  const SimTime base = pair_base_latency(from, to);
  const SimTime jitter = static_cast<SimTime>(j % 500);
  return base + jitter;
}

bool Network::capture_wants(const CaptureEntry& entry, const Packet& packet,
                            DropReason reason, Asn origin_asn) const {
  if (!entry.sink) return false;  // tombstoned
  if (reason != DropReason::kNone && !entry.options.include_drops) {
    return false;
  }
  if (entry.options.host &&
      !(packet.src == *entry.options.host ||
        packet.dst == *entry.options.host)) {
    return false;
  }
  if (entry.options.filter &&
      !entry.options.filter(packet, reason, origin_asn)) {
    return false;
  }
  return true;
}

void Network::record_capture(const Packet& packet, DropReason reason,
                             Asn origin_asn) {
  ++dispatch_depth_;
  std::vector<std::uint8_t> wire;  // serialized lazily, shared across sinks
  for (std::size_t i = 0; i < captures_.size(); ++i) {
    if (!capture_wants(captures_[i], packet, reason, origin_asn)) continue;
    if (wire.empty()) wire = packet.serialize();
    cd::pcap::PcapRecord rec;
    rec.time_us = loop_.now();
    rec.orig_len = static_cast<std::uint32_t>(wire.size());
    rec.annotation = static_cast<std::uint8_t>(reason);
    rec.bytes = wire;
    captures_[i].sink->records.push_back(std::move(rec));
  }
  --dispatch_depth_;
  if (dispatch_depth_ == 0 && pending_removal_) sweep_tombstones();
  if (!wire.empty()) cd::BufferPool::release(std::move(wire));
}

void Network::send(Packet packet, Asn origin_asn) {
  ++stats_.sent;
  Host* host = nullptr;
  const DropReason reason = classify(packet, origin_asn, &host);

  ++dispatch_depth_;
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    if (taps_[i].fn) taps_[i].fn(packet, reason, loop_.now());
  }
  --dispatch_depth_;
  if (dispatch_depth_ == 0 && pending_removal_) sweep_tombstones();

  switch (reason) {
    case DropReason::kOsav: ++stats_.dropped_osav; break;
    case DropReason::kDsav: ++stats_.dropped_dsav; break;
    case DropReason::kMartian: ++stats_.dropped_martian; break;
    case DropReason::kUrpfSubnet: ++stats_.dropped_urpf; break;
    case DropReason::kUnrouted: ++stats_.dropped_unrouted; break;
    case DropReason::kNoHost: ++stats_.dropped_no_host; break;
    case DropReason::kStackRejected: ++stats_.dropped_stack; break;
    case DropReason::kNone: {
      ++stats_.delivered;
      const SimTime delay = latency(origin_asn, host->asn(), packet);
      if (!batched_) {
        // Per-packet delivery: one closure per packet (the pre-batching
        // reference semantics the differential tests compare against).
        loop_.schedule_in(
            delay, [this, host, origin_asn, pkt = std::move(packet)]() mutable {
              // Capture at the wire in front of the destination: records land
              // in exact delivery order, stamped with the arrival time.
              if (!captures_.empty()) {
                record_capture(pkt, DropReason::kNone, origin_asn);
              }
              host->deliver(pkt);
              // The packet dies here; recycle its payload capacity for the
              // next encode on this shard's thread.
              cd::BufferPool::release(std::move(pkt.payload));
            });
        return;
      }
      // Batched delivery: coalesce into the (arrival time, host) slot. The
      // first packet schedules the slot's single drain event — at exactly
      // the queue position its per-packet closure would have had — and
      // later same-slot packets ride along for the cost of a vector push.
      const SimTime at = loop_.now() + delay;
      const PendingSlot key{at, host};
      if (last_slot_batch_ != nullptr && last_slot_key_ == key) {
        last_slot_batch_->push_back(Delivery{std::move(packet), origin_asn});
        return;
      }
      auto slot = pending_.find(key);
      if (slot == pending_.end()) {
        if (!slot_pool_.empty()) {
          // Reuse a retired node — map node and batch vector capacity both
          // recycled, so opening a slot allocates nothing in steady state.
          auto node = std::move(slot_pool_.back());
          slot_pool_.pop_back();
          node.key() = key;
          slot = pending_.insert(std::move(node)).position;
        } else {
          slot = pending_.try_emplace(key).first;
        }
        ++stats_.delivery_batches;
        // A plain schedule_at, not schedule_batched: this map already keys
        // batches by (time, host), so the loop-level slot bookkeeping would
        // only ever coalesce one drain per slot — pure overhead. The tiny
        // [this, host] capture also stays inside std::function's inline
        // storage (the per-packet closure above cannot: it carries the
        // packet). The drain fires exactly at `at`, so now() recovers the
        // slot key.
        loop_.schedule_at(
            at, [this, host] { drain_batch(loop_.now(), host); });
      }
      last_slot_key_ = key;
      last_slot_batch_ = &slot->second;
      slot->second.push_back(Delivery{std::move(packet), origin_asn});
      return;
    }
  }
  // Dropped at a border or the host stack: record for drop-captures, then
  // the payload buffer is dead — recycle it instead of freeing.
  if (!captures_.empty()) record_capture(packet, reason, origin_asn);
  cd::BufferPool::release(std::move(packet.payload));
}

void Network::drain_batch(SimTime at, Host* host) {
  const auto it = pending_.find(PendingSlot{at, host});
  if (it == pending_.end()) return;
  // Detach the whole map node before delivering: handlers that send new
  // traffic (always >= 1ms out) must open fresh slots, never append to a
  // running batch — and the extracted node goes back to the slot pool
  // afterwards instead of being freed.
  auto node = pending_.extract(it);
  last_slot_batch_ = nullptr;  // the memoized slot may be this node
  std::vector<Delivery>& batch = node.mapped();

  if (captures_.empty()) {
    // Hot path: hand the host the whole batch in one call.
    host->deliver_batch(batch);
    for (Delivery& d : batch) {
      cd::BufferPool::release(std::move(d.packet.payload));
    }
  } else {
    // Capture at the wire in front of the destination, packet by packet, so
    // records land in exact delivery order with the arrival timestamp.
    for (Delivery& d : batch) {
      record_capture(d.packet, DropReason::kNone, d.origin_asn);
      host->deliver(d.packet);
      cd::BufferPool::release(std::move(d.packet.payload));
    }
  }

  batch.clear();
  // Recycled vectors keep a small capacity floor so a steady-state slot
  // never grows mid-burst: hash-jittered arrivals give small same-tick
  // multiplicities, and node<->slot pairing shuffles between bursts, so
  // without the floor an under-sized vector keeps meeting a bigger batch.
  // The floor (not a high-water mark) keeps one giant batch from inflating
  // every pooled node.
  constexpr std::size_t kSlotReserveFloor = 16;
  if (batch.capacity() < kSlotReserveFloor) batch.reserve(kSlotReserveFloor);
  // Generous cap: a busy shard keeps hundreds of (tick, host) slots in
  // flight at once, and a pooled node is just a few dozen idle bytes.
  constexpr std::size_t kSlotPoolCap = 1024;
  if (slot_pool_.size() < kSlotPoolCap) {
    slot_pool_.push_back(std::move(node));
  }
}

Network::TapId Network::add_tap(Tap tap) {
  const TapId id = next_tap_id_++;
  taps_.push_back({id, std::move(tap)});
  return id;
}

Network::TapId Network::attach_capture(cd::pcap::Capture& sink,
                                       CaptureOptions options) {
  const TapId id = next_tap_id_++;
  captures_.push_back({id, &sink, std::move(options)});
  return id;
}

Network::TapId Network::attach_capture(cd::pcap::Capture& sink) {
  return attach_capture(sink, CaptureOptions{});
}

void Network::remove_tap(TapId id) {
  const auto tap = std::find_if(taps_.begin(), taps_.end(),
                                [id](const TapEntry& t) { return t.id == id; });
  const auto cap =
      std::find_if(captures_.begin(), captures_.end(),
                   [id](const CaptureEntry& c) { return c.id == id; });
  if (dispatch_depth_ > 0) {
    // Mid-dispatch (a tap removing itself or a sibling): tombstone now,
    // erase when the dispatch loop unwinds.
    if (tap != taps_.end()) tap->fn = nullptr;
    if (cap != captures_.end()) cap->sink = nullptr;
    pending_removal_ = tap != taps_.end() || cap != captures_.end() ||
                       pending_removal_;
    return;
  }
  if (tap != taps_.end()) taps_.erase(tap);
  if (cap != captures_.end()) captures_.erase(cap);
}

void Network::sweep_tombstones() {
  std::erase_if(taps_, [](const TapEntry& t) { return !t.fn; });
  std::erase_if(captures_, [](const CaptureEntry& c) { return !c.sink; });
  pending_removal_ = false;
}

}  // namespace cd::sim
