// A simulated end host: addresses, an OS stack model, UDP services, and a
// streaming TCP implementation (handshake + MSS-segmented request/response
// byte streams with in-order reassembly) that carries real fingerprintable
// SYN metadata.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/network.h"
#include "sim/os_model.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace cd::sim {

/// Connection metadata handed to TCP server handlers; `syn` is the client's
/// original SYN packet, preserving the fields p0f-style fingerprinting needs.
struct TcpConnInfo {
  cd::net::IpAddr peer;
  std::uint16_t peer_port = 0;
  cd::net::IpAddr local;
  std::uint16_t local_port = 0;
  cd::net::Packet syn;
};

/// Reassembles one direction of a TCP byte stream from (possibly reordered)
/// segments. Offsets are stream-relative: seq - (peer ISN + 1). The sender
/// marks its last segment with PSH, which fixes the stream's total length;
/// the stream is complete once [0, total) is covered. Backing storage is a
/// pooled buffer; received-range bookkeeping is a small inline array, so a
/// reassembly allocates nothing in steady state. Pathological interleavings
/// that exceed the inline range capacity (or a sanity cap on stream size)
/// drop the segment — the stream stalls into the connection-timeout path,
/// which is also how real stacks shed garbage.
class TcpReassembly {
 public:
  static constexpr std::size_t kMaxRanges = 8;
  static constexpr std::size_t kMaxStreamBytes = 1 << 20;

  /// Ingests a segment's payload at stream offset `offset`; `last` marks
  /// the sender's stream end at offset + data.size(). Returns false if the
  /// segment was dropped (range-table overflow, oversized, or inconsistent
  /// with an already-fixed total).
  bool add(std::size_t offset, std::span<const std::uint8_t> data, bool last);

  /// True once every byte of the PSH-fixed total has arrived.
  [[nodiscard]] bool complete() const;

  /// Total stream length; only meaningful once complete().
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Moves the assembled stream out (call once, when complete()).
  [[nodiscard]] std::vector<std::uint8_t> take();

  /// Returns the backing buffer to the pool (teardown without completion).
  void discard();

 private:
  static constexpr std::size_t kNoTotal = ~static_cast<std::size_t>(0);

  std::vector<std::uint8_t> buf_;
  // Disjoint received [begin, end) ranges, sorted, merged on insert.
  std::array<std::pair<std::size_t, std::size_t>, kMaxRanges> ranges_{};
  std::size_t n_ranges_ = 0;
  std::size_t total_ = kNoTotal;
};

class Host {
 public:
  using UdpHandler = std::function<void(const cd::net::Packet&)>;
  /// Serves one reassembled request stream; the returned payload (framing
  /// header + body, or a plain vector) is streamed back to the client in
  /// MSS-sized segments.
  using TcpServerHandler = std::function<cd::GatherBuf(
      const TcpConnInfo&, std::span<const std::uint8_t>)>;
  /// Receives the reassembled response stream, or nullopt on timeout.
  using TcpResponseHandler =
      std::function<void(std::optional<std::vector<std::uint8_t>>)>;

  /// MSS assumed for a peer that advertised none (RFC 1122 §4.2.2.6 / RFC
  /// 9293 default; every OsProfile in the fingerprint table does advertise).
  static constexpr std::uint16_t kDefaultMss = 536;

  /// The host registers itself with `network` and must outlive any packets
  /// in flight toward it (in practice: the whole simulation).
  Host(Network& network, Asn asn, const OsProfile& os,
       std::vector<cd::net::IpAddr> addresses, cd::Rng rng,
       std::string label = {});
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] Asn asn() const { return asn_; }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] const OsProfile& os() const { return os_; }
  [[nodiscard]] const std::vector<cd::net::IpAddr>& addresses() const {
    return addresses_;
  }
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] bool has_address(const cd::net::IpAddr& addr) const;
  /// First configured address of `family`, if any.
  [[nodiscard]] std::optional<cd::net::IpAddr> address(
      cd::net::IpFamily family) const;

  // --- UDP ---
  void bind_udp(std::uint16_t port, UdpHandler handler);
  void unbind_udp(std::uint16_t port);
  /// `src` must be one of this host's addresses (this host does not spoof).
  void send_udp(const cd::net::IpAddr& src, std::uint16_t src_port,
                const cd::net::IpAddr& dst, std::uint16_t dst_port,
                std::vector<std::uint8_t> payload);

  // --- TCP (one request/response stream exchange per connection) ---
  void tcp_listen(std::uint16_t port, TcpServerHandler handler);
  /// Opens a connection from `src` (one of this host's addresses), streams
  /// `request` once established (segmented at the peer's SYN-advertised
  /// MSS), and invokes `on_response` with the reassembled reply stream or
  /// with nullopt after `timeout`. Connection state — including the timeout
  /// event — is torn down as soon as the response completes.
  void tcp_connect(const cd::net::IpAddr& src, const cd::net::IpAddr& dst,
                   std::uint16_t dst_port, cd::GatherBuf request,
                   TcpResponseHandler on_response,
                   SimTime timeout = 5 * kSecond);

  /// Kernel-level acceptance of an arriving packet, implementing the paper's
  /// Table 6 rules for destination-as-source and loopback-source packets.
  [[nodiscard]] bool stack_accepts(const cd::net::Packet& packet) const;

  /// Entry point used by Network once a packet clears all filters.
  void deliver(const cd::net::Packet& packet);

  /// Batched entry point: all packets that arrived at this host on one
  /// simulated tick, in send order. Equivalent to calling deliver() per
  /// packet (which is exactly what the default implementation does); exists
  /// so the network hands a same-tick batch over in one call instead of
  /// scheduling one event-loop closure per packet.
  void deliver_batch(std::span<Delivery> batch);

  /// Draws an ephemeral port from the OS-designated range (used for TCP
  /// client connections; UDP query ports are the resolver's business).
  [[nodiscard]] std::uint16_t ephemeral_port();

  /// Live TCP connection-table entries (tests assert deterministic
  /// teardown: zero once every exchange has completed or timed out).
  [[nodiscard]] std::size_t open_tcp_connections() const {
    return connections_.size();
  }

 private:
  struct ConnKey {
    cd::net::IpAddr peer;
    std::uint16_t peer_port;
    std::uint16_t local_port;
    bool operator<(const ConnKey& o) const {
      if (!(peer == o.peer)) return peer < o.peer;
      if (peer_port != o.peer_port) return peer_port < o.peer_port;
      return local_port < o.local_port;
    }
  };
  enum class ConnState { kSynSent, kClientEstablished, kServerEstablished };
  struct Connection {
    ConnState state = ConnState::kSynSent;
    cd::net::IpAddr local;
    cd::GatherBuf request;               // client: stream to send on SYN-ACK
    TcpResponseHandler on_response;      // client side
    TcpConnInfo info;                    // server side (includes SYN)
    EventId timeout_event = 0;
    std::uint16_t peer_mss = kDefaultMss;  // from the peer's SYN / SYN-ACK
    std::uint32_t iss = 0;               // our initial send sequence number
    std::uint32_t irs = 0;               // peer's initial sequence number
    TcpReassembly rx;                    // the peer's inbound byte stream
  };

  void deliver_tcp(const cd::net::Packet& packet);
  [[nodiscard]] cd::net::Packet make_segment(
      const cd::net::IpAddr& src, std::uint16_t sport,
      const cd::net::IpAddr& dst, std::uint16_t dport, cd::net::TcpFlags flags,
      std::vector<std::uint8_t> payload) const;
  /// Streams `data` from local (src, sport) to (dst, dport) as ACK segments
  /// capped at `peer_mss` bytes of payload each (PSH marks the last), with
  /// seq advancing from `iss + 1` by actual payload bytes and `ack_no`
  /// acknowledging the peer's stream. Segment payloads are gather-copied
  /// straight from the span chain into pooled buffers.
  void send_stream(const cd::net::IpAddr& src, std::uint16_t sport,
                   const cd::net::IpAddr& dst, std::uint16_t dport,
                   std::uint32_t iss, std::uint32_t ack_no,
                   std::uint16_t peer_mss, const cd::GatherBuf& data);

  Network& network_;
  Asn asn_;
  const OsProfile& os_;
  std::vector<cd::net::IpAddr> addresses_;
  cd::Rng rng_;
  std::string label_;

  std::map<std::uint16_t, UdpHandler> udp_handlers_;
  std::map<std::uint16_t, TcpServerHandler> tcp_listeners_;
  std::map<ConnKey, Connection> connections_;
};

}  // namespace cd::sim
