// A simulated end host: addresses, an OS stack model, UDP services, and a
// streaming TCP transport (handshake + MSS-segmented byte streams with
// reordering-tolerant reassembly) that carries real fingerprintable SYN
// metadata. Two connection lifecycles share the state machine:
//
//  - one-shot (the PR-5 baseline, always available): tcp_connect() streams
//    one request, the listener answers one response, and the connection is
//    torn down — the wire shape every differential test pins.
//  - sessions (Network::transport().persistent): connections opened while
//    the knob is set survive completed exchanges and carry multiple RFC
//    1035 §4.2.2 length-prefixed DNS messages per stream. tcp_query()
//    reuses one connection per (src, dst, port), pipelines up to
//    max_pipeline in-flight messages, and matches responses to handlers by
//    DNS message ID (out-of-order replies supported). Servers close idle
//    sessions with a FIN after an idle window (RFC 7766 §6.1), driven
//    deterministically through the timing wheel. With transport().dot set,
//    each dial additionally pays a fixed hello handshake (real stream
//    bytes, real RTTs) plus a setup delay before the first DNS byte.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/network.h"
#include "sim/os_model.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace cd::sim {

/// Connection metadata handed to TCP server handlers; `syn` is the client's
/// original SYN packet, preserving the fields p0f-style fingerprinting needs.
struct TcpConnInfo {
  cd::net::IpAddr peer;
  std::uint16_t peer_port = 0;
  cd::net::IpAddr local;
  std::uint16_t local_port = 0;
  cd::net::Packet syn;
};

/// Reassembles one direction of a TCP byte stream from (possibly reordered)
/// segments. Offsets are stream-relative: seq - (peer ISN + 1). The sender
/// marks its last segment with PSH, which fixes the stream's total length;
/// the stream is complete once [0, total) is covered. Backing storage is a
/// pooled buffer; received-range bookkeeping is a small inline array, so a
/// reassembly allocates nothing in steady state. Pathological interleavings
/// that exceed the inline range capacity (or a sanity cap on stream size)
/// drop the segment — the stream stalls into the connection-timeout path,
/// which is also how real stacks shed garbage.
class TcpReassembly {
 public:
  static constexpr std::size_t kMaxRanges = 8;
  static constexpr std::size_t kMaxStreamBytes = 1 << 20;

  /// Ingests a segment's payload at stream offset `offset`; `last` marks
  /// the sender's stream end at offset + data.size(). Returns false if the
  /// segment was dropped (range-table overflow, oversized, or inconsistent
  /// with an already-fixed total).
  bool add(std::size_t offset, std::span<const std::uint8_t> data, bool last);

  /// True once every byte of the PSH-fixed total has arrived.
  [[nodiscard]] bool complete() const;

  /// Total stream length; only meaningful once complete().
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Moves the assembled stream out (call once, when complete()).
  [[nodiscard]] std::vector<std::uint8_t> take();

  /// Returns the backing buffer to the pool (teardown without completion).
  void discard();

  // --- session (message-mode) consumption -----------------------------------
  // Persistent connections never fix a stream total (PSH is not end-of-
  // stream when many messages share one stream); instead the receiver cuts
  // length-prefixed messages off the front with a consumption cursor.

  /// Contiguous bytes available at the cursor.
  [[nodiscard]] std::size_t available() const;
  /// Byte at cursor + i; requires i < available().
  [[nodiscard]] std::uint8_t peek(std::size_t i) const;
  /// Appends [cursor, cursor + n) to `out` and advances; requires
  /// n <= available().
  void read(std::size_t n, std::vector<std::uint8_t>& out);
  /// Advances the cursor without copying (DoT hello flights).
  void skip(std::size_t n);
  [[nodiscard]] std::size_t consumed() const { return consumed_; }
  /// Shifts the stream origin to the cursor, dropping consumed bytes so a
  /// long-lived session never outgrows kMaxStreamBytes. Returns the number
  /// of bytes dropped — the caller must add it to its stream-offset base.
  std::size_t rebase();

 private:
  static constexpr std::size_t kNoTotal = ~static_cast<std::size_t>(0);

  std::vector<std::uint8_t> buf_;
  // Disjoint received [begin, end) ranges, sorted, merged on insert.
  std::array<std::pair<std::size_t, std::size_t>, kMaxRanges> ranges_{};
  std::size_t n_ranges_ = 0;
  std::size_t total_ = kNoTotal;
  std::size_t consumed_ = 0;
};

class Host {
 public:
  using UdpHandler = std::function<void(const cd::net::Packet&)>;
  /// Serves one reassembled request stream; the returned payload (framing
  /// header + body, or a plain vector) is streamed back to the client in
  /// MSS-sized segments.
  using TcpServerHandler = std::function<cd::GatherBuf(
      const TcpConnInfo&, std::span<const std::uint8_t>)>;
  /// Receives the reassembled response stream, or nullopt on timeout.
  using TcpResponseHandler =
      std::function<void(std::optional<std::vector<std::uint8_t>>)>;
  /// Sends one framed response on a session connection (no-op once the
  /// connection is gone; an empty GatherBuf sends nothing). Copyable and
  /// deferrable — the serving application may reply asynchronously.
  using TcpSessionReply = std::function<void(cd::GatherBuf)>;
  /// Serves one length-prefixed message from a session stream. The message
  /// span is valid only for the duration of the call; reply via the
  /// callback, immediately or later (per-connection pending responses are
  /// tracked so idle-timeout teardown never races an unsent reply).
  using TcpSessionHandler = std::function<void(
      const TcpConnInfo&, std::span<const std::uint8_t>, TcpSessionReply)>;

  /// MSS assumed for a peer that advertised none (RFC 1122 §4.2.2.6 / RFC
  /// 9293 default; every OsProfile in the fingerprint table does advertise).
  static constexpr std::uint16_t kDefaultMss = 536;

  /// The host registers itself with `network` and must outlive any packets
  /// in flight toward it (in practice: the whole simulation).
  Host(Network& network, Asn asn, const OsProfile& os,
       std::vector<cd::net::IpAddr> addresses, cd::Rng rng,
       std::string label = {});
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] Asn asn() const { return asn_; }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] const OsProfile& os() const { return os_; }
  [[nodiscard]] const std::vector<cd::net::IpAddr>& addresses() const {
    return addresses_;
  }
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] bool has_address(const cd::net::IpAddr& addr) const;
  /// First configured address of `family`, if any.
  [[nodiscard]] std::optional<cd::net::IpAddr> address(
      cd::net::IpFamily family) const;

  // --- UDP ---
  void bind_udp(std::uint16_t port, UdpHandler handler);
  void unbind_udp(std::uint16_t port);
  /// `src` must be one of this host's addresses (this host does not spoof).
  void send_udp(const cd::net::IpAddr& src, std::uint16_t src_port,
                const cd::net::IpAddr& dst, std::uint16_t dst_port,
                std::vector<std::uint8_t> payload);

  // --- TCP ---
  /// Per-message session listener. With Network::transport().persistent off
  /// an accepted connection still carries exactly one exchange (the one-shot
  /// wire shape), the whole request stream arriving as the one message;
  /// with it on, the connection is a session: length-prefix framed,
  /// pipelined, idle-timed. `idle_timeout` overrides the network-wide
  /// server idle window for this port (0 = use transport().idle_timeout).
  void tcp_listen_session(std::uint16_t port, TcpSessionHandler handler,
                          SimTime idle_timeout = 0);
  /// One-exchange convenience listener: wraps `handler` (which returns its
  /// response synchronously) in a session handler that replies in place.
  void tcp_listen(std::uint16_t port, TcpServerHandler handler);
  /// Opens a connection from `src` (one of this host's addresses), streams
  /// `request` once established (segmented at the peer's SYN-advertised
  /// MSS), and invokes `on_response` with the reassembled reply stream or
  /// with nullopt after `timeout`. Connection state — including the timeout
  /// event — is torn down as soon as the response completes.
  void tcp_connect(const cd::net::IpAddr& src, const cd::net::IpAddr& dst,
                   std::uint16_t dst_port, cd::GatherBuf request,
                   TcpResponseHandler on_response,
                   SimTime timeout = 5 * kSecond);
  /// Sends one length-prefixed DNS message to (dst, dst_port). With
  /// transport().persistent off this is exactly tcp_connect — one dial per
  /// message, the differential baseline. With it on, the message rides the
  /// live session to (src, dst, dst_port) (dialing one if absent, redialing
  /// if the server idle-closed it), pipelined up to transport().max_pipeline
  /// in flight; `on_reply` receives the matching framed response (matched
  /// by DNS message ID, so out-of-order replies pair correctly) or nullopt
  /// after `timeout`.
  void tcp_query(const cd::net::IpAddr& src, const cd::net::IpAddr& dst,
                 std::uint16_t dst_port, cd::GatherBuf message,
                 TcpResponseHandler on_reply, SimTime timeout = 5 * kSecond);

  /// Kernel-level acceptance of an arriving packet, implementing the paper's
  /// Table 6 rules for destination-as-source and loopback-source packets.
  [[nodiscard]] bool stack_accepts(const cd::net::Packet& packet) const;

  /// Entry point used by Network once a packet clears all filters.
  void deliver(const cd::net::Packet& packet);

  /// Batched entry point: all packets that arrived at this host on one
  /// simulated tick, in send order. Equivalent to calling deliver() per
  /// packet (which is exactly what the default implementation does); exists
  /// so the network hands a same-tick batch over in one call instead of
  /// scheduling one event-loop closure per packet.
  void deliver_batch(std::span<Delivery> batch);

  /// Draws an ephemeral port from the OS-designated range (used for TCP
  /// client connections; UDP query ports are the resolver's business).
  [[nodiscard]] std::uint16_t ephemeral_port();

  /// Live TCP connection-table entries (tests assert deterministic
  /// teardown: zero once every exchange has completed, timed out, or been
  /// idle-closed).
  [[nodiscard]] std::size_t open_tcp_connections() const {
    return connections_.size();
  }

  /// Lifetime connection-economics counters (see sim::TransportCounters).
  [[nodiscard]] const TransportCounters& transport_counters() const {
    return counters_;
  }

  /// Bytes in one DoT hello flight (each handshake round trip carries one
  /// flight in each direction, as real stream bytes).
  static constexpr std::size_t kDotHelloBytes = 32;

 private:
  struct ConnKey {
    cd::net::IpAddr peer;
    std::uint16_t peer_port;
    std::uint16_t local_port;
    bool operator<(const ConnKey& o) const {
      if (!(peer == o.peer)) return peer < o.peer;
      if (peer_port != o.peer_port) return peer_port < o.peer_port;
      return local_port < o.local_port;
    }
  };
  /// Client-side session index: one live connection per (local address,
  /// server address, server port).
  struct SessionKey {
    cd::net::IpAddr local;
    cd::net::IpAddr peer;
    std::uint16_t peer_port;
    bool operator<(const SessionKey& o) const {
      if (!(local == o.local)) return local < o.local;
      if (!(peer == o.peer)) return peer < o.peer;
      return peer_port < o.peer_port;
    }
  };
  enum class ConnState {
    kSynSent,
    kClientEstablished,
    kServerEstablished,
    kClientSession,
    kServerSession,
  };
  struct Listener {
    TcpSessionHandler handler;
    SimTime idle_timeout = 0;  // 0 = network-wide transport().idle_timeout
  };
  /// A message accepted by tcp_query but not yet written to the stream
  /// (handshake still running, or the pipeline window is full).
  struct QueuedMsg {
    std::vector<std::uint8_t> bytes;  // framed: 2-byte prefix + DNS message
    std::uint16_t id = 0;
    TcpResponseHandler on_reply;
    EventId timeout_event = 0;
  };
  /// A written message awaiting its response, matched by DNS message ID.
  struct PendingReply {
    std::uint16_t id = 0;
    TcpResponseHandler on_reply;
    EventId timeout_event = 0;
  };
  struct Connection {
    ConnState state = ConnState::kSynSent;
    bool session = false;                // dialed/accepted in persistent mode
    cd::net::IpAddr local;
    cd::GatherBuf request;               // one-shot client: send on SYN-ACK
    TcpResponseHandler on_response;      // one-shot client side
    TcpConnInfo info;                    // server side (includes SYN)
    EventId timeout_event = 0;
    std::uint16_t peer_mss = kDefaultMss;  // from the peer's SYN / SYN-ACK
    std::uint32_t iss = 0;               // our initial send sequence number
    std::uint32_t irs = 0;               // peer's initial sequence number
    TcpReassembly rx;                    // the peer's inbound byte stream
    // --- session mode ---
    std::size_t tx_off = 0;         // stream bytes we have written (post-ISS)
    std::size_t rx_base = 0;        // stream offset of rx's origin (rebases)
    std::deque<QueuedMsg> queue;    // client: awaiting a pipeline slot
    std::vector<PendingReply> pending;  // client: in flight
    int server_outstanding = 0;     // server: replies promised, not yet sent
    bool tx_ready = false;          // client: handshake + setup cost done
    int hello_rounds_left = 0;      // DoT handshake round trips remaining
    SimTime last_activity = 0;      // server: for the idle window
    SimTime idle_window = 0;        // server: resolved idle timeout
    EventId idle_event = 0;         // server: pending idle check
    int idle_deferrals = 0;         // server: stale deadlines outstanding>0
  };

  void deliver_tcp(const cd::net::Packet& packet);
  // --- session machinery ---
  /// Writes `data` on a session stream at tx_off (advancing it) with the
  /// current ack for the peer's stream.
  void session_write(const ConnKey& key, Connection& conn,
                     const cd::ConstSpans& data);
  /// Writes one kDotHelloBytes flight on the session stream (either side).
  void send_hello(const ConnKey& key, Connection& conn);
  /// Promotes queued messages into the pipeline window and writes them.
  void flush_session(const ConnKey& key);
  /// Cuts complete length-prefixed messages (and hello flights) off the
  /// client-side rx stream, pairing responses with pending handlers.
  void process_client_session(const ConnKey& key);
  /// Server-side counterpart: answers hello flights, hands complete
  /// messages to the listener with a deferrable reply callback.
  void process_server_session(const ConnKey& key);
  void session_activity(Connection& conn);
  void idle_check(const ConnKey& key);
  /// Fails one queued/pending message by ID (its timeout fired), tearing
  /// down a never-established dial once nothing else references it.
  void on_message_timeout(const ConnKey& key, std::uint16_t id);
  /// Peer closed (FIN): fail every queued/pending message, drop the session
  /// index entry, and erase the connection.
  void on_fin(const ConnKey& key);
  [[nodiscard]] cd::net::Packet make_segment(
      const cd::net::IpAddr& src, std::uint16_t sport,
      const cd::net::IpAddr& dst, std::uint16_t dport, cd::net::TcpFlags flags,
      std::vector<std::uint8_t> payload) const;
  /// Streams `data` from local (src, sport) to (dst, dport) as ACK segments
  /// capped at `peer_mss` bytes of payload each (PSH marks the last), with
  /// seq advancing from `iss + 1` by actual payload bytes and `ack_no`
  /// acknowledging the peer's stream. Segment payloads are gather-copied
  /// straight from the span chain into pooled buffers.
  void send_stream(const cd::net::IpAddr& src, std::uint16_t sport,
                   const cd::net::IpAddr& dst, std::uint16_t dport,
                   std::uint32_t iss, std::uint32_t ack_no,
                   std::uint16_t peer_mss, const cd::ConstSpans& stream);

  Network& network_;
  Asn asn_;
  const OsProfile& os_;
  std::vector<cd::net::IpAddr> addresses_;
  cd::Rng rng_;
  std::string label_;

  std::map<std::uint16_t, UdpHandler> udp_handlers_;
  std::map<std::uint16_t, Listener> tcp_listeners_;
  std::map<ConnKey, Connection> connections_;
  std::map<SessionKey, ConnKey> sessions_;
  TransportCounters counters_;
};

}  // namespace cd::sim
