// A simulated end host: addresses, an OS stack model, UDP services, and a
// minimal TCP implementation (handshake + one request/response exchange) that
// carries real fingerprintable SYN metadata.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/network.h"
#include "sim/os_model.h"
#include "util/rng.h"

namespace cd::sim {

/// Connection metadata handed to TCP server handlers; `syn` is the client's
/// original SYN packet, preserving the fields p0f-style fingerprinting needs.
struct TcpConnInfo {
  cd::net::IpAddr peer;
  std::uint16_t peer_port = 0;
  cd::net::IpAddr local;
  std::uint16_t local_port = 0;
  cd::net::Packet syn;
};

class Host {
 public:
  using UdpHandler = std::function<void(const cd::net::Packet&)>;
  /// Serves one request; the returned bytes are written back to the client.
  using TcpServerHandler = std::function<std::vector<std::uint8_t>(
      const TcpConnInfo&, std::span<const std::uint8_t>)>;
  /// Receives the response bytes, or nullopt on connection timeout.
  using TcpResponseHandler =
      std::function<void(std::optional<std::vector<std::uint8_t>>)>;

  /// The host registers itself with `network` and must outlive any packets
  /// in flight toward it (in practice: the whole simulation).
  Host(Network& network, Asn asn, const OsProfile& os,
       std::vector<cd::net::IpAddr> addresses, cd::Rng rng,
       std::string label = {});
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] Asn asn() const { return asn_; }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] const OsProfile& os() const { return os_; }
  [[nodiscard]] const std::vector<cd::net::IpAddr>& addresses() const {
    return addresses_;
  }
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] bool has_address(const cd::net::IpAddr& addr) const;
  /// First configured address of `family`, if any.
  [[nodiscard]] std::optional<cd::net::IpAddr> address(
      cd::net::IpFamily family) const;

  // --- UDP ---
  void bind_udp(std::uint16_t port, UdpHandler handler);
  void unbind_udp(std::uint16_t port);
  /// `src` must be one of this host's addresses (this host does not spoof).
  void send_udp(const cd::net::IpAddr& src, std::uint16_t src_port,
                const cd::net::IpAddr& dst, std::uint16_t dst_port,
                std::vector<std::uint8_t> payload);

  // --- TCP (one request/response per connection) ---
  void tcp_listen(std::uint16_t port, TcpServerHandler handler);
  /// Opens a connection from `src` (one of this host's addresses), sends
  /// `request` once established, and invokes `on_response` with the reply or
  /// with nullopt after `timeout`.
  void tcp_connect(const cd::net::IpAddr& src, const cd::net::IpAddr& dst,
                   std::uint16_t dst_port, std::vector<std::uint8_t> request,
                   TcpResponseHandler on_response,
                   SimTime timeout = 5 * kSecond);

  /// Kernel-level acceptance of an arriving packet, implementing the paper's
  /// Table 6 rules for destination-as-source and loopback-source packets.
  [[nodiscard]] bool stack_accepts(const cd::net::Packet& packet) const;

  /// Entry point used by Network once a packet clears all filters.
  void deliver(const cd::net::Packet& packet);

  /// Batched entry point: all packets that arrived at this host on one
  /// simulated tick, in send order. Equivalent to calling deliver() per
  /// packet (which is exactly what the default implementation does); exists
  /// so the network hands a same-tick batch over in one call instead of
  /// scheduling one event-loop closure per packet.
  void deliver_batch(std::span<Delivery> batch);

  /// Draws an ephemeral port from the OS-designated range (used for TCP
  /// client connections; UDP query ports are the resolver's business).
  [[nodiscard]] std::uint16_t ephemeral_port();

 private:
  struct ConnKey {
    cd::net::IpAddr peer;
    std::uint16_t peer_port;
    std::uint16_t local_port;
    bool operator<(const ConnKey& o) const {
      if (!(peer == o.peer)) return peer < o.peer;
      if (peer_port != o.peer_port) return peer_port < o.peer_port;
      return local_port < o.local_port;
    }
  };
  enum class ConnState { kSynSent, kAwaitResponse, kServerEstablished };
  struct Connection {
    ConnState state = ConnState::kSynSent;
    cd::net::IpAddr local;
    std::vector<std::uint8_t> request;   // client: payload to send on SYN-ACK
    TcpResponseHandler on_response;      // client side
    TcpConnInfo info;                    // server side (includes SYN)
    EventId timeout_event = 0;
  };

  void deliver_tcp(const cd::net::Packet& packet);
  [[nodiscard]] cd::net::Packet make_segment(
      const cd::net::IpAddr& src, std::uint16_t sport,
      const cd::net::IpAddr& dst, std::uint16_t dport, cd::net::TcpFlags flags,
      std::vector<std::uint8_t> payload) const;

  Network& network_;
  Asn asn_;
  const OsProfile& os_;
  std::vector<cd::net::IpAddr> addresses_;
  cd::Rng rng_;
  std::string label_;

  std::map<std::uint16_t, UdpHandler> udp_handlers_;
  std::map<std::uint16_t, TcpServerHandler> tcp_listeners_;
  std::map<ConnKey, Connection> connections_;
};

}  // namespace cd::sim
