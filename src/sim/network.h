// The simulated Internet: moves packets between hosts, applying border
// filtering (OSAV at the origin AS, DSAV and martian filtering at the
// destination AS) and host-stack acceptance rules.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/topology.h"
#include "util/pcap.h"
#include "util/rng.h"

namespace cd::sim {

class Host;

/// One accepted packet waiting in a same-tick delivery batch, paired with
/// the AS it physically originated in (capture filters see the origin).
struct Delivery {
  cd::net::Packet packet;
  Asn origin_asn = 0;
};

/// Where (if anywhere) a packet was dropped.
enum class DropReason : std::uint8_t {
  kNone,           // delivered
  kOsav,           // origin border: egress source validation
  kDsav,           // destination border: spoofed-internal source
  kMartian,        // destination border: special-purpose source
  kUrpfSubnet,     // destination border: source inside the target's subnet
  kUnrouted,       // no announcement covers the destination
  kNoHost,         // routed, but nothing lives at the address
  kStackRejected,  // host kernel refused the spoofed source
};

[[nodiscard]] std::string drop_reason_name(DropReason reason);

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  /// Drain events scheduled by batched delivery: one per (arrival time,
  /// destination host) slot. delivered / delivery_batches is the mean batch
  /// size; equal counts mean every batch held a single packet.
  std::uint64_t delivery_batches = 0;
  std::uint64_t dropped_osav = 0;
  std::uint64_t dropped_dsav = 0;
  std::uint64_t dropped_martian = 0;
  std::uint64_t dropped_urpf = 0;
  std::uint64_t dropped_unrouted = 0;
  std::uint64_t dropped_no_host = 0;
  std::uint64_t dropped_stack = 0;

  /// Accumulates another network's counters (merging shard results).
  NetworkStats& operator+=(const NetworkStats& other) {
    sent += other.sent;
    delivered += other.delivered;
    delivery_batches += other.delivery_batches;
    dropped_osav += other.dropped_osav;
    dropped_dsav += other.dropped_dsav;
    dropped_martian += other.dropped_martian;
    dropped_urpf += other.dropped_urpf;
    dropped_unrouted += other.dropped_unrouted;
    dropped_no_host += other.dropped_no_host;
    dropped_stack += other.dropped_stack;
    return *this;
  }
};

/// Network-wide transport-layer policy (RFC 7766 persistence and DoT-style
/// sessions). Both endpoints of a connection read the same Network instance,
/// so no in-band negotiation is modeled: a SYN accepted while `persistent`
/// is set opens a session connection on both sides. Toggle before traffic is
/// in flight; connections already open keep the mode they were dialed under.
struct TransportOptions {
  /// RFC 7766 mode: client connections are keyed by (src, dst, port) and
  /// survive completed exchanges; streams carry length-prefixed DNS messages
  /// with pipelined requests and responses matched by message ID. Off (the
  /// default) preserves the one-exchange-per-connection PR-5 wire shape
  /// byte for byte — the differential baseline.
  bool persistent = false;
  /// Client-side cap on in-flight (sent, unanswered) messages per
  /// connection; further queries queue until a response frees a slot.
  int max_pipeline = 8;
  /// Server-side idle window: a session connection with no activity and no
  /// pending responses for this long is closed with a FIN through the
  /// timing wheel (RFC 7766 §6.1). Per-listener overrides take precedence.
  SimTime idle_timeout = 10 * kSecond;
  /// DoT-like sessions: each dial pays `dot_handshake_rtts` hello round
  /// trips (kDotHelloBytes of real stream bytes per flight, per direction)
  /// plus `dot_setup_cost` before the first DNS byte is sent.
  bool dot = false;
  int dot_handshake_rtts = 2;
  SimTime dot_setup_cost = kMillisecond;
};

/// Connection-economics counters a host accumulates across its lifetime
/// (never reset; excluded from results_digest like NetworkStats). These are
/// what the per-transport benches and the SYN-drop differential assert on.
struct TransportCounters {
  std::uint64_t dials = 0;            // client SYNs sent (connect + session)
  std::uint64_t accepts = 0;          // server-side connections accepted
  std::uint64_t session_reuses = 0;   // tcp_query served by a live session
  std::uint64_t session_messages = 0; // session messages written by clients
  std::uint64_t idle_closes = 0;      // server FINs after an idle window
  std::uint64_t handshake_bytes = 0;  // DoT hello bytes put on the wire

  TransportCounters& operator+=(const TransportCounters& other) {
    dials += other.dials;
    accepts += other.accepts;
    session_reuses += other.session_reuses;
    session_messages += other.session_messages;
    idle_closes += other.idle_closes;
    handshake_bytes += other.handshake_bytes;
    return *this;
  }
  friend bool operator==(const TransportCounters&,
                         const TransportCounters&) = default;
};

/// Packet transport over a Topology. Latency between AS pairs is a
/// deterministic function of the pair plus small per-packet jitter derived
/// by hashing the packet itself, so runs are reproducible but not
/// artificially synchronous. Because the jitter is a pure function of
/// (seed, packet), a packet's transit time does not depend on what else is
/// in flight — the property that lets sharded campaigns (core/parallel.h)
/// reproduce a serial run's per-packet timing.
class Network {
 public:
  using Tap = std::function<void(const cd::net::Packet&, DropReason, SimTime)>;
  using TapId = std::uint64_t;

  /// Selects the traffic a capture tap records. The predicate (when set)
  /// sees the packet, its filtering outcome, and the AS the packet
  /// physically originated in — enough to isolate e.g. the scanner's probe
  /// plane (origin == vantage AS).
  struct CaptureOptions {
    /// Record packets the network dropped (annotated with the DropReason in
    /// the capture's sidecar index), not just delivered ones.
    bool include_drops = false;
    /// When set, only packets to or from this address are recorded
    /// (per-host capture; unset = global).
    std::optional<cd::net::IpAddr> host;
    /// Extra predicate; a capture tap records a packet only if every
    /// configured filter accepts it.
    std::function<bool(const cd::net::Packet&, DropReason, Asn origin_asn)>
        filter;
  };

  Network(Topology& topology, EventLoop& loop, cd::Rng rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a host at all of its addresses. The host must outlive the
  /// network (or be detached first).
  void attach(Host* host);
  void detach(Host* host);

  /// Sends `packet` as if it physically originated inside `origin_asn`
  /// (spoofed sources are free to disagree with reality — that is the point).
  /// Filtering outcome is reported to taps; delivery is scheduled on the
  /// event loop.
  void send(cd::net::Packet packet, Asn origin_asn);

  /// Batched same-tick delivery (default on): accepted packets arriving at
  /// the same (SimTime, destination host) coalesce into one pending vector
  /// drained by a single event-loop entry, instead of one heap-allocated
  /// closure per packet. Semantics are unchanged — within a batch packets
  /// deliver in send order (exactly the per-packet schedule order), the
  /// batch runs at its first packet's queue position, and taps/captures
  /// observe packets one-by-one with their exact arrival timestamps — so
  /// results_digest, capture_digest and exported pcaps are byte-identical
  /// either way (pinned by tests/test_sim_batched.cpp). Toggle before
  /// traffic is in flight; packets already scheduled keep the mode they
  /// were sent under.
  void set_batched_delivery(bool on) { batched_ = on; }
  [[nodiscard]] bool batched_delivery() const { return batched_; }

  /// Differential baseline for the streaming TCP path (default off): when
  /// set, hosts send each TCP stream as one unsegmented payload instead of
  /// MSS-capped segments. Exists so tests can prove the segmented path
  /// reassembles byte-identical streams (and identical results_digest)
  /// against the single-buffer reference. Toggle before traffic is in
  /// flight.
  void set_tcp_single_buffer(bool on) { tcp_single_buffer_ = on; }
  [[nodiscard]] bool tcp_single_buffer() const { return tcp_single_buffer_; }

  /// Transport-layer policy all attached hosts consult (see
  /// TransportOptions). Like the toggles above: set before traffic flows.
  void set_transport(const TransportOptions& options) { transport_ = options; }
  [[nodiscard]] const TransportOptions& transport() const { return transport_; }

  /// Sum of live TCP connection-table entries across every attached host —
  /// the campaign-wide leak check (zero once the event loop has drained:
  /// every exchange completed, timed out, or idle-closed).
  [[nodiscard]] std::size_t open_tcp_connections() const;

  /// Aggregated TransportCounters across every attached host.
  [[nodiscard]] TransportCounters transport_counters() const;

  [[nodiscard]] Host* host_at(const cd::net::IpAddr& addr) const;

  /// Registers `host` as one site of the anycast service address `service`.
  /// Traffic to a registered service address bypasses the unicast routing
  /// table: each origin AS reaches exactly one site — its catchment — chosen
  /// by topology distance (minimum AS-pair base latency, registration order
  /// breaking ties), and destination-border policy is evaluated against that
  /// site's AS. Different origins therefore see different authoritative
  /// paths from the same service address, the property the off-path
  /// poisoning plane (attack/poison.h) races against.
  void add_anycast_site(const cd::net::IpAddr& service, Host* host);

  /// The site an origin AS's traffic to `service` lands at, or nullptr if
  /// `service` has no registered sites.
  [[nodiscard]] Host* anycast_catchment(const cd::net::IpAddr& service,
                                        Asn origin_asn) const;

  /// Deterministic symmetric base latency of an AS pair — the exact value
  /// latency() charges cross-AS transit before jitter (0 for a == b).
  /// Public so anycast catchment and attack-timing code share the network's
  /// distance metric instead of re-deriving it.
  [[nodiscard]] static SimTime pair_base_latency(Asn a, Asn b);

  [[nodiscard]] Topology& topology() { return topology_; }
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// Taps observe every send attempt with its filtering outcome, at send
  /// time (the IDS-at-the-border viewpoint). Returns an id for remove_tap.
  TapId add_tap(Tap tap);

  /// Installs a wire capture: delivered packets are recorded — full
  /// serialized wire bytes — when the event loop hands them to the
  /// destination host, so records land in exact delivery order with the
  /// arrival timestamp; drops (when enabled) are recorded at the border at
  /// send time, annotated with their DropReason. `sink` must outlive the
  /// tap (remove it first, or after the loop drains). Returns an id for
  /// remove_tap.
  TapId attach_capture(cd::pcap::Capture& sink, CaptureOptions options);
  TapId attach_capture(cd::pcap::Capture& sink);

  /// Uninstalls a tap or capture by id. Safe mid-campaign — packets already
  /// scheduled for delivery are simply no longer recorded — and safe from
  /// inside a tap callback (removal is deferred until dispatch finishes).
  /// Unknown ids are ignored.
  void remove_tap(TapId id);

 private:
  struct TapEntry {
    TapId id;
    Tap fn;  // empty = tombstoned during dispatch
  };
  struct CaptureEntry {
    TapId id;
    cd::pcap::Capture* sink;  // null = tombstoned during dispatch
    CaptureOptions options;
  };

  [[nodiscard]] DropReason classify(const cd::net::Packet& packet,
                                    Asn origin_asn, Host** out_host);
  [[nodiscard]] SimTime latency(Asn from, Asn to,
                                const cd::net::Packet& packet) const;
  struct PendingSlot {
    SimTime at;
    Host* host;
    friend bool operator==(const PendingSlot&, const PendingSlot&) = default;
  };
  struct PendingSlotHash {
    std::size_t operator()(const PendingSlot& s) const {
      std::uint64_t h =
          static_cast<std::uint64_t>(s.at) * 0x9E3779B97F4A7C15ULL;
      h ^= reinterpret_cast<std::uintptr_t>(s.host) + 0x9E3779B97F4A7C15ULL +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  [[nodiscard]] bool capture_wants(const CaptureEntry& entry,
                                   const cd::net::Packet& packet,
                                   DropReason reason, Asn origin_asn) const;
  /// Serializes `packet` once and appends it to every capture that wants
  /// it. `reason` is kNone at delivery time, the drop reason otherwise.
  void record_capture(const cd::net::Packet& packet, DropReason reason,
                      Asn origin_asn);
  void sweep_tombstones();
  /// Runs when the event loop reaches a (time, host) slot: hands the
  /// pending packets to the host in send order and recycles the vector.
  void drain_batch(SimTime at, Host* host);

  Topology& topology_;
  EventLoop& loop_;
  std::uint64_t jitter_seed_;
  std::unordered_map<cd::net::IpAddr, Host*, cd::net::IpAddrHash> hosts_;
  /// Anycast service address -> sites, in registration order.
  std::unordered_map<cd::net::IpAddr, std::vector<Host*>, cd::net::IpAddrHash>
      anycast_;
  TapId next_tap_id_ = 1;
  std::vector<TapEntry> taps_;
  std::vector<CaptureEntry> captures_;
  int dispatch_depth_ = 0;
  bool pending_removal_ = false;
  bool batched_ = true;
  bool tcp_single_buffer_ = false;
  TransportOptions transport_;
  /// Same-tick pending deliveries, one vector per (arrival time, host).
  using PendingMap =
      std::unordered_map<PendingSlot, std::vector<Delivery>, PendingSlotHash>;
  PendingMap pending_;
  /// Memo of the slot the previous send landed in: a same-tick burst to one
  /// host (the batched path's best case) resolves the slot once instead of
  /// hashing per packet. Safe because unordered_map never moves nodes on
  /// insert/rehash; drain_batch invalidates it when it extracts the node.
  PendingSlot last_slot_key_{};
  std::vector<Delivery>* last_slot_batch_ = nullptr;
  /// Retired slot nodes (map node + batch vector capacity) kept for reuse:
  /// a segmented TCP stream opens one slot per segment, so recycling whole
  /// nodes keeps the steady-state delivery path allocation-free (bounded
  /// free list).
  std::vector<PendingMap::node_type> slot_pool_;
  NetworkStats stats_;
};

}  // namespace cd::sim
