// The simulated Internet: moves packets between hosts, applying border
// filtering (OSAV at the origin AS, DSAV and martian filtering at the
// destination AS) and host-stack acceptance rules.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/topology.h"
#include "util/rng.h"

namespace cd::sim {

class Host;

/// Where (if anywhere) a packet was dropped.
enum class DropReason : std::uint8_t {
  kNone,           // delivered
  kOsav,           // origin border: egress source validation
  kDsav,           // destination border: spoofed-internal source
  kMartian,        // destination border: special-purpose source
  kUrpfSubnet,     // destination border: source inside the target's subnet
  kUnrouted,       // no announcement covers the destination
  kNoHost,         // routed, but nothing lives at the address
  kStackRejected,  // host kernel refused the spoofed source
};

[[nodiscard]] std::string drop_reason_name(DropReason reason);

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_osav = 0;
  std::uint64_t dropped_dsav = 0;
  std::uint64_t dropped_martian = 0;
  std::uint64_t dropped_urpf = 0;
  std::uint64_t dropped_unrouted = 0;
  std::uint64_t dropped_no_host = 0;
  std::uint64_t dropped_stack = 0;

  /// Accumulates another network's counters (merging shard results).
  NetworkStats& operator+=(const NetworkStats& other) {
    sent += other.sent;
    delivered += other.delivered;
    dropped_osav += other.dropped_osav;
    dropped_dsav += other.dropped_dsav;
    dropped_martian += other.dropped_martian;
    dropped_urpf += other.dropped_urpf;
    dropped_unrouted += other.dropped_unrouted;
    dropped_no_host += other.dropped_no_host;
    dropped_stack += other.dropped_stack;
    return *this;
  }
};

/// Packet transport over a Topology. Latency between AS pairs is a
/// deterministic function of the pair plus small per-packet jitter derived
/// by hashing the packet itself, so runs are reproducible but not
/// artificially synchronous. Because the jitter is a pure function of
/// (seed, packet), a packet's transit time does not depend on what else is
/// in flight — the property that lets sharded campaigns (core/parallel.h)
/// reproduce a serial run's per-packet timing.
class Network {
 public:
  using Tap = std::function<void(const cd::net::Packet&, DropReason, SimTime)>;

  Network(Topology& topology, EventLoop& loop, cd::Rng rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a host at all of its addresses. The host must outlive the
  /// network (or be detached first).
  void attach(Host* host);
  void detach(Host* host);

  /// Sends `packet` as if it physically originated inside `origin_asn`
  /// (spoofed sources are free to disagree with reality — that is the point).
  /// Filtering outcome is reported to taps; delivery is scheduled on the
  /// event loop.
  void send(cd::net::Packet packet, Asn origin_asn);

  [[nodiscard]] Host* host_at(const cd::net::IpAddr& addr) const;

  [[nodiscard]] Topology& topology() { return topology_; }
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// Taps observe every send attempt with its filtering outcome.
  void add_tap(Tap tap);

 private:
  [[nodiscard]] DropReason classify(const cd::net::Packet& packet,
                                    Asn origin_asn, Host** out_host);
  [[nodiscard]] SimTime latency(Asn from, Asn to,
                                const cd::net::Packet& packet) const;

  Topology& topology_;
  EventLoop& loop_;
  std::uint64_t jitter_seed_;
  std::unordered_map<cd::net::IpAddr, Host*, cd::net::IpAddrHash> hosts_;
  std::vector<Tap> taps_;
  NetworkStats stats_;
};

}  // namespace cd::sim
