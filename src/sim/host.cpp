#include "sim/host.h"

#include "net/special.h"
#include "util/error.h"

namespace cd::sim {

using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::IpProto;
using cd::net::Packet;
using cd::net::TcpFlags;

Host::Host(Network& network, Asn asn, const OsProfile& os,
           std::vector<IpAddr> addresses, cd::Rng rng, std::string label)
    : network_(network),
      asn_(asn),
      os_(os),
      addresses_(std::move(addresses)),
      rng_(rng),
      label_(std::move(label)) {
  CD_ENSURE(!addresses_.empty(), "Host: no addresses");
  network_.attach(this);
}

Host::~Host() {
  network_.detach(this);
}

bool Host::has_address(const IpAddr& addr) const {
  for (const IpAddr& a : addresses_) {
    if (a == addr) return true;
  }
  return false;
}

std::optional<IpAddr> Host::address(IpFamily family) const {
  for (const IpAddr& a : addresses_) {
    if (a.family() == family) return a;
  }
  return std::nullopt;
}

void Host::bind_udp(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::unbind_udp(std::uint16_t port) {
  udp_handlers_.erase(port);
}

void Host::send_udp(const IpAddr& src, std::uint16_t src_port,
                    const IpAddr& dst, std::uint16_t dst_port,
                    std::vector<std::uint8_t> payload) {
  CD_ENSURE(has_address(src), "send_udp: src is not ours");
  Packet pkt = cd::net::make_udp(src, src_port, dst, dst_port,
                                 std::move(payload), os_.fp.initial_ttl);
  network_.send(std::move(pkt), asn_);
}

void Host::tcp_listen(std::uint16_t port, TcpServerHandler handler) {
  tcp_listeners_[port] = std::move(handler);
}

std::uint16_t Host::ephemeral_port() {
  const std::uint32_t pool = os_.ephemeral_pool_size();
  return static_cast<std::uint16_t>(os_.ephemeral_lo +
                                    rng_.uniform(pool));
}

Packet Host::make_segment(const IpAddr& src, std::uint16_t sport,
                          const IpAddr& dst, std::uint16_t dport,
                          TcpFlags flags,
                          std::vector<std::uint8_t> payload) const {
  Packet pkt = cd::net::make_tcp(src, sport, dst, dport, flags,
                                 std::move(payload), os_.fp.initial_ttl);
  pkt.tcp_window = os_.fp.window;
  if (flags.syn) {
    pkt.tcp_options = os_.fp.syn_options;
  }
  return pkt;
}

void Host::tcp_connect(const IpAddr& src, const IpAddr& dst,
                       std::uint16_t dst_port,
                       std::vector<std::uint8_t> request,
                       TcpResponseHandler on_response, SimTime timeout) {
  CD_ENSURE(has_address(src), "tcp_connect: src is not ours");

  std::uint16_t sport = ephemeral_port();
  ConnKey key{dst, dst_port, sport};
  for (int attempts = 0; connections_.count(key) && attempts < 16; ++attempts) {
    sport = ephemeral_port();
    key.local_port = sport;
  }

  Connection conn;
  conn.state = ConnState::kSynSent;
  conn.local = src;
  conn.request = std::move(request);
  conn.on_response = std::move(on_response);
  conn.timeout_event = network_.loop().schedule_in(timeout, [this, key] {
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    TcpResponseHandler handler = std::move(it->second.on_response);
    connections_.erase(it);
    if (handler) handler(std::nullopt);
  });
  connections_.emplace(key, std::move(conn));

  Packet syn = make_segment(src, sport, dst, dst_port, TcpFlags{.syn = true}, {});
  syn.tcp_seq = static_cast<std::uint32_t>(rng_.u64());
  network_.send(std::move(syn), asn_);
}

bool Host::stack_accepts(const Packet& packet) const {
  if (!has_address(packet.dst)) return false;

  const bool v4 = packet.src.is_v4();
  if (packet.src == packet.dst) {
    return v4 ? os_.accepts_dst_as_src_v4 : os_.accepts_dst_as_src_v6;
  }
  if (cd::net::is_loopback(packet.src)) {
    return v4 ? os_.accepts_loopback_v4 : os_.accepts_loopback_v6;
  }
  return true;
}

void Host::deliver_batch(std::span<Delivery> batch) {
  for (const Delivery& d : batch) deliver(d.packet);
}

void Host::deliver(const Packet& packet) {
  if (packet.proto == IpProto::kUdp) {
    const auto it = udp_handlers_.find(packet.dst_port);
    if (it != udp_handlers_.end() && it->second) it->second(packet);
    return;
  }
  deliver_tcp(packet);
}

void Host::deliver_tcp(const Packet& packet) {
  const TcpFlags& f = packet.tcp_flags;

  if (f.syn && !f.ack) {
    // Inbound connection attempt.
    const auto lit = tcp_listeners_.find(packet.dst_port);
    if (lit == tcp_listeners_.end()) return;  // no RST modeling; just drop
    const ConnKey key{packet.src, packet.src_port, packet.dst_port};
    Connection conn;
    conn.state = ConnState::kServerEstablished;
    conn.local = packet.dst;
    conn.info = TcpConnInfo{packet.src, packet.src_port, packet.dst,
                            packet.dst_port, packet};
    // Reap abandoned half-open connections after a while.
    conn.timeout_event =
        network_.loop().schedule_in(30 * kSecond, [this, key] {
          connections_.erase(key);
        });
    connections_[key] = std::move(conn);

    Packet synack = make_segment(packet.dst, packet.dst_port, packet.src,
                                 packet.src_port, TcpFlags{.syn = true, .ack = true}, {});
    synack.tcp_seq = static_cast<std::uint32_t>(rng_.u64());
    synack.tcp_ack = packet.tcp_seq + 1;
    network_.send(std::move(synack), asn_);
    return;
  }

  if (f.syn && f.ack) {
    // Our SYN was answered: ship the request.
    const ConnKey key{packet.src, packet.src_port, packet.dst_port};
    const auto it = connections_.find(key);
    if (it == connections_.end() || it->second.state != ConnState::kSynSent) {
      return;
    }
    it->second.state = ConnState::kAwaitResponse;
    Packet data =
        make_segment(packet.dst, packet.dst_port, packet.src, packet.src_port,
                     TcpFlags{.ack = true, .psh = true},
                     std::move(it->second.request));
    data.tcp_ack = packet.tcp_seq + 1;
    network_.send(std::move(data), asn_);
    return;
  }

  if (f.psh && !packet.payload.empty()) {
    const ConnKey key{packet.src, packet.src_port, packet.dst_port};
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    Connection& conn = it->second;

    if (conn.state == ConnState::kServerEstablished) {
      // Request arrived: serve it and send the response back.
      const auto lit = tcp_listeners_.find(packet.dst_port);
      if (lit == tcp_listeners_.end()) return;
      std::vector<std::uint8_t> response =
          lit->second(conn.info, packet.payload);
      network_.loop().cancel(conn.timeout_event);
      TcpConnInfo info = std::move(conn.info);  // retiring the connection
      connections_.erase(it);
      Packet reply = make_segment(info.local, info.local_port, info.peer,
                                  info.peer_port,
                                  TcpFlags{.ack = true, .psh = true},
                                  std::move(response));
      network_.send(std::move(reply), asn_);
      return;
    }

    if (conn.state == ConnState::kAwaitResponse) {
      network_.loop().cancel(conn.timeout_event);
      TcpResponseHandler handler = std::move(conn.on_response);
      connections_.erase(it);
      if (handler) handler(packet.payload);
      return;
    }
  }
}

}  // namespace cd::sim
