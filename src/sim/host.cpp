#include "sim/host.h"

#include <algorithm>

#include "net/special.h"
#include "util/error.h"

namespace cd::sim {

using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::IpProto;
using cd::net::Packet;
using cd::net::TcpFlags;
using cd::net::TcpOption;
using cd::net::TcpOptionKind;

namespace {

/// The peer's advertised MSS from its SYN/SYN-ACK options, or the RFC 1122
/// default when absent (a zero advertisement is treated as absent).
std::uint16_t peer_mss_of(const Packet& packet) {
  for (const TcpOption& o : packet.tcp_options) {
    if (o.kind == TcpOptionKind::kMss && o.value != 0) {
      return static_cast<std::uint16_t>(o.value);
    }
  }
  return Host::kDefaultMss;
}

/// Once a session has consumed this much of its rx stream, shift the stream
/// origin down so a long-lived connection never hits
/// TcpReassembly::kMaxStreamBytes.
constexpr std::size_t kRebaseBytes = 256 * 1024;

/// An outstanding (promised, unsent) reply defers an idle close, but only
/// this many consecutive stale deadlines: a serving application that never
/// replies must not pin the connection — and the event loop — forever.
constexpr int kMaxIdleDeferrals = 4;

/// DNS message ID of a length-prefixed framed message (bytes 2..3), the key
/// that pairs pipelined responses with their requests (RFC 7766 §6.2.1).
std::uint16_t framed_message_id(std::span<const std::uint8_t> framed) {
  if (framed.size() < 4) return 0;
  return static_cast<std::uint16_t>((framed[2] << 8) | framed[3]);
}

}  // namespace

bool TcpReassembly::add(std::size_t offset, std::span<const std::uint8_t> data,
                        bool last) {
  const std::size_t end = offset + data.size();
  if (end > kMaxStreamBytes) return false;
  if (last) {
    if (total_ != kNoTotal && total_ != end) return false;
    total_ = end;
  }
  if (total_ != kNoTotal && end > total_) return false;
  if (data.empty()) return true;

  // Merge [offset, end) into the sorted disjoint range table first — if the
  // table would overflow, the segment is dropped before any bytes land.
  std::size_t i = 0;
  while (i < n_ranges_ && ranges_[i].second < offset) ++i;
  std::size_t begin = offset;
  std::size_t finish = end;
  std::size_t j = i;
  while (j < n_ranges_ && ranges_[j].first <= finish) {
    begin = std::min(begin, ranges_[j].first);
    finish = std::max(finish, ranges_[j].second);
    ++j;
  }
  if (i == j) {
    // No overlap with any existing range: insert at position i.
    if (n_ranges_ == kMaxRanges) return false;  // would overflow
    for (std::size_t k = n_ranges_; k > i; --k) ranges_[k] = ranges_[k - 1];
    ranges_[i] = {begin, finish};
    ++n_ranges_;
  } else {
    // Collapse the overlapped/adjacent ranges [i, j) into one.
    ranges_[i] = {begin, finish};
    for (std::size_t k = j; k < n_ranges_; ++k) {
      ranges_[i + 1 + (k - j)] = ranges_[k];
    }
    n_ranges_ -= (j - i - 1);
  }

  if (buf_.empty() && buf_.capacity() == 0) buf_ = cd::BufferPool::acquire();
  if (buf_.size() < end) buf_.resize(end);
  std::copy(data.begin(), data.end(),
            buf_.begin() + static_cast<std::ptrdiff_t>(offset));
  return true;
}

bool TcpReassembly::complete() const {
  return total_ != kNoTotal &&
         (total_ == 0 ||
          (n_ranges_ == 1 && ranges_[0].first == 0 &&
           ranges_[0].second == total_));
}

std::vector<std::uint8_t> TcpReassembly::take() {
  buf_.resize(total_ == kNoTotal ? 0 : total_);
  n_ranges_ = 0;
  total_ = kNoTotal;
  consumed_ = 0;
  return std::move(buf_);
}

void TcpReassembly::discard() {
  cd::BufferPool::release(std::move(buf_));
  buf_ = {};
  n_ranges_ = 0;
  total_ = kNoTotal;
  consumed_ = 0;
}

std::size_t TcpReassembly::available() const {
  for (std::size_t i = 0; i < n_ranges_; ++i) {
    if (ranges_[i].second <= consumed_) continue;
    return ranges_[i].first <= consumed_ ? ranges_[i].second - consumed_ : 0;
  }
  return 0;
}

std::uint8_t TcpReassembly::peek(std::size_t i) const {
  return buf_[consumed_ + i];
}

void TcpReassembly::read(std::size_t n, std::vector<std::uint8_t>& out) {
  out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_),
             buf_.begin() + static_cast<std::ptrdiff_t>(consumed_ + n));
  consumed_ += n;
}

void TcpReassembly::skip(std::size_t n) {
  consumed_ += n;
}

std::size_t TcpReassembly::rebase() {
  const std::size_t base = consumed_;
  if (base == 0) return 0;
  std::size_t write = 0;
  std::size_t top = 0;
  for (std::size_t i = 0; i < n_ranges_; ++i) {
    if (ranges_[i].second <= base) continue;  // fully consumed: drop
    ranges_[write] = {ranges_[i].first <= base ? 0 : ranges_[i].first - base,
                      ranges_[i].second - base};
    top = ranges_[write].second;
    ++write;
  }
  n_ranges_ = write;
  if (top > 0) {
    std::copy(buf_.begin() + static_cast<std::ptrdiff_t>(base),
              buf_.begin() + static_cast<std::ptrdiff_t>(base + top),
              buf_.begin());
  }
  consumed_ = 0;
  return base;
}

Host::Host(Network& network, Asn asn, const OsProfile& os,
           std::vector<IpAddr> addresses, cd::Rng rng, std::string label)
    : network_(network),
      asn_(asn),
      os_(os),
      addresses_(std::move(addresses)),
      rng_(rng),
      label_(std::move(label)) {
  CD_ENSURE(!addresses_.empty(), "Host: no addresses");
  network_.attach(this);
}

Host::~Host() {
  network_.detach(this);
}

bool Host::has_address(const IpAddr& addr) const {
  for (const IpAddr& a : addresses_) {
    if (a == addr) return true;
  }
  return false;
}

std::optional<IpAddr> Host::address(IpFamily family) const {
  for (const IpAddr& a : addresses_) {
    if (a.family() == family) return a;
  }
  return std::nullopt;
}

void Host::bind_udp(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::unbind_udp(std::uint16_t port) {
  udp_handlers_.erase(port);
}

void Host::send_udp(const IpAddr& src, std::uint16_t src_port,
                    const IpAddr& dst, std::uint16_t dst_port,
                    std::vector<std::uint8_t> payload) {
  CD_ENSURE(has_address(src), "send_udp: src is not ours");
  Packet pkt = cd::net::make_udp(src, src_port, dst, dst_port,
                                 std::move(payload), os_.fp.initial_ttl);
  network_.send(std::move(pkt), asn_);
}

void Host::tcp_listen_session(std::uint16_t port, TcpSessionHandler handler,
                              SimTime idle_timeout) {
  tcp_listeners_[port] = Listener{std::move(handler), idle_timeout};
}

void Host::tcp_listen(std::uint16_t port, TcpServerHandler handler) {
  tcp_listen_session(
      port,
      [h = std::move(handler)](const TcpConnInfo& info,
                               std::span<const std::uint8_t> message,
                               TcpSessionReply reply) {
        reply(h(info, message));
      });
}

std::uint16_t Host::ephemeral_port() {
  const std::uint32_t pool = os_.ephemeral_pool_size();
  return static_cast<std::uint16_t>(os_.ephemeral_lo +
                                    rng_.uniform(pool));
}

Packet Host::make_segment(const IpAddr& src, std::uint16_t sport,
                          const IpAddr& dst, std::uint16_t dport,
                          TcpFlags flags,
                          std::vector<std::uint8_t> payload) const {
  Packet pkt = cd::net::make_tcp(src, sport, dst, dport, flags,
                                 std::move(payload), os_.fp.initial_ttl);
  pkt.tcp_window = os_.fp.window;
  if (flags.syn) {
    pkt.tcp_options = os_.fp.syn_options;
  }
  return pkt;
}

void Host::tcp_connect(const IpAddr& src, const IpAddr& dst,
                       std::uint16_t dst_port, cd::GatherBuf request,
                       TcpResponseHandler on_response, SimTime timeout) {
  CD_ENSURE(has_address(src), "tcp_connect: src is not ours");

  std::uint16_t sport = ephemeral_port();
  ConnKey key{dst, dst_port, sport};
  for (int attempts = 0; connections_.count(key) && attempts < 16; ++attempts) {
    sport = ephemeral_port();
    key.local_port = sport;
  }

  Connection conn;
  conn.state = ConnState::kSynSent;
  conn.local = src;
  conn.request = std::move(request);
  conn.on_response = std::move(on_response);
  conn.timeout_event = network_.loop().schedule_in(timeout, [this, key] {
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    TcpResponseHandler handler = std::move(it->second.on_response);
    it->second.rx.discard();
    connections_.erase(it);
    if (handler) handler(std::nullopt);
  });

  Packet syn = make_segment(src, sport, dst, dst_port, TcpFlags{.syn = true}, {});
  syn.tcp_seq = static_cast<std::uint32_t>(rng_.u64());
  conn.iss = syn.tcp_seq;
  connections_.emplace(key, std::move(conn));
  ++counters_.dials;
  network_.send(std::move(syn), asn_);
}

void Host::tcp_query(const IpAddr& src, const IpAddr& dst,
                     std::uint16_t dst_port, cd::GatherBuf message,
                     TcpResponseHandler on_reply, SimTime timeout) {
  if (!network_.transport().persistent) {
    // Differential baseline: exactly the one-shot path, one dial per message.
    tcp_connect(src, dst, dst_port, std::move(message), std::move(on_reply),
                timeout);
    return;
  }
  CD_ENSURE(has_address(src), "tcp_query: src is not ours");

  const SessionKey skey{src, dst, dst_port};
  ConnKey key;
  const auto sit = sessions_.find(skey);
  if (sit != sessions_.end() && connections_.count(sit->second) != 0) {
    key = sit->second;
    ++counters_.session_reuses;
  } else {
    // No live session (never dialed, idle-closed, or dial timed out): dial.
    std::uint16_t sport = ephemeral_port();
    key = ConnKey{dst, dst_port, sport};
    for (int attempts = 0; connections_.count(key) && attempts < 16;
         ++attempts) {
      sport = ephemeral_port();
      key.local_port = sport;
    }
    Connection conn;
    conn.state = ConnState::kSynSent;
    conn.session = true;
    conn.local = src;
    Packet syn =
        make_segment(src, sport, dst, dst_port, TcpFlags{.syn = true}, {});
    syn.tcp_seq = static_cast<std::uint32_t>(rng_.u64());
    conn.iss = syn.tcp_seq;
    connections_.emplace(key, std::move(conn));
    sessions_[skey] = key;
    ++counters_.dials;
    network_.send(std::move(syn), asn_);
  }

  // Own the framed bytes (the caller's GatherBuf body goes back to the pool)
  // and queue them behind the pipeline window.
  QueuedMsg m;
  m.bytes = cd::BufferPool::acquire();
  message.spans().append_to(m.bytes);
  cd::BufferPool::release(std::move(message.body));
  m.id = framed_message_id(m.bytes);
  m.on_reply = std::move(on_reply);
  const std::uint16_t id = m.id;
  m.timeout_event = network_.loop().schedule_in(
      timeout, [this, key, id] { on_message_timeout(key, id); });
  connections_.find(key)->second.queue.push_back(std::move(m));
  flush_session(key);
}

void Host::send_stream(const IpAddr& src, std::uint16_t sport,
                       const IpAddr& dst, std::uint16_t dport,
                       std::uint32_t iss, std::uint32_t ack_no,
                       std::uint16_t peer_mss, const cd::ConstSpans& stream) {
  const std::size_t total = stream.size_bytes();
  // Differential baseline: one unsegmented "segment" carrying the whole
  // stream, the pre-streaming wire shape the byte-identity tests compare
  // against.
  const std::size_t cap = network_.tcp_single_buffer()
                              ? std::max<std::size_t>(total, 1)
                              : peer_mss;
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(cap, total - off);
    std::vector<std::uint8_t> payload = cd::BufferPool::acquire();
    stream.subchain(off, n).append_to(payload);
    const bool last = off + n == total;
    Packet seg = make_segment(src, sport, dst, dport,
                              TcpFlags{.ack = true, .psh = last},
                              std::move(payload));
    // SYN consumed one sequence number; data starts at iss + 1 and seq/ack
    // advance by actual payload bytes.
    seg.tcp_seq = iss + 1 + static_cast<std::uint32_t>(off);
    seg.tcp_ack = ack_no;
    network_.send(std::move(seg), asn_);
    off += n;
  } while (off < total);
}

void Host::session_write(const ConnKey& key, Connection& conn,
                         const cd::ConstSpans& data) {
  const std::uint32_t ack_no =
      conn.irs + 1 +
      static_cast<std::uint32_t>(conn.rx_base + conn.rx.consumed());
  // Shifting iss by tx_off makes send_stream's `iss + 1 + off` land each
  // segment at the session's current stream position.
  send_stream(conn.local, key.local_port, key.peer, key.peer_port,
              conn.iss + static_cast<std::uint32_t>(conn.tx_off), ack_no,
              conn.peer_mss, data);
  conn.tx_off += data.size_bytes();
}

void Host::send_hello(const ConnKey& key, Connection& conn) {
  std::vector<std::uint8_t> flight = cd::BufferPool::acquire();
  flight.resize(kDotHelloBytes, 0);
  // TLS-handshake-record-shaped filler so captures look plausible.
  flight[0] = 0x16;
  flight[1] = 0x03;
  flight[2] = 0x03;
  session_write(key, conn, cd::ConstSpans(flight));
  counters_.handshake_bytes += kDotHelloBytes;
  cd::BufferPool::release(std::move(flight));
}

void Host::flush_session(const ConnKey& key) {
  const auto it = connections_.find(key);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (conn.state != ConnState::kClientSession || !conn.tx_ready) return;
  const auto cap =
      static_cast<std::size_t>(std::max(1, network_.transport().max_pipeline));
  while (!conn.queue.empty() && conn.pending.size() < cap) {
    QueuedMsg m = std::move(conn.queue.front());
    conn.queue.pop_front();
    session_write(key, conn, cd::ConstSpans(m.bytes));
    cd::BufferPool::release(std::move(m.bytes));
    conn.pending.push_back(
        PendingReply{m.id, std::move(m.on_reply), m.timeout_event});
    ++counters_.session_messages;
  }
}

void Host::process_client_session(const ConnKey& key) {
  {
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    // DoT: each server hello flight completes one handshake round trip.
    while (conn.hello_rounds_left > 0 &&
           conn.rx.available() >= kDotHelloBytes) {
      conn.rx.skip(kDotHelloBytes);
      if (--conn.hello_rounds_left > 0) {
        send_hello(key, conn);
      } else {
        // Handshake done; session keys derive after a fixed setup cost,
        // then the queued messages flow.
        network_.loop().schedule_in(
            network_.transport().dot_setup_cost, [this, key] {
              const auto cit = connections_.find(key);
              if (cit == connections_.end()) return;
              cit->second.tx_ready = true;
              flush_session(key);
            });
      }
    }
    if (conn.hello_rounds_left > 0) return;
  }
  // Cut complete frames off the stream, pairing each with its pending
  // handler by DNS message ID (out-of-order replies match correctly).
  // Handlers may re-enter this host (tcp_query on this same session), so
  // re-find the entry each round.
  for (;;) {
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    if (conn.rx.available() < 2) break;
    const std::size_t len =
        (static_cast<std::size_t>(conn.rx.peek(0)) << 8) | conn.rx.peek(1);
    if (conn.rx.available() < 2 + len) break;
    std::vector<std::uint8_t> msg = cd::BufferPool::acquire();
    conn.rx.read(2 + len, msg);
    const std::uint16_t id = framed_message_id(msg);
    TcpResponseHandler handler;
    for (auto pit = conn.pending.begin(); pit != conn.pending.end(); ++pit) {
      if (pit->id == id) {
        if (pit->timeout_event != 0) {
          network_.loop().cancel(pit->timeout_event);
        }
        handler = std::move(pit->on_reply);
        conn.pending.erase(pit);
        break;
      }
    }
    if (handler) {
      handler(std::move(msg));
    } else {
      cd::BufferPool::release(std::move(msg));  // unsolicited: drop
    }
  }
  const auto it = connections_.find(key);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (conn.rx.consumed() >= kRebaseBytes) conn.rx_base += conn.rx.rebase();
  flush_session(key);  // responses freed pipeline slots
}

void Host::process_server_session(const ConnKey& key) {
  for (;;) {
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    if (conn.hello_rounds_left > 0) {
      // DoT: answer each client hello flight with ours.
      if (conn.rx.available() < kDotHelloBytes) return;
      conn.rx.skip(kDotHelloBytes);
      send_hello(key, conn);
      --conn.hello_rounds_left;
      continue;
    }
    if (conn.rx.available() < 2) break;
    const std::size_t len =
        (static_cast<std::size_t>(conn.rx.peek(0)) << 8) | conn.rx.peek(1);
    if (conn.rx.available() < 2 + len) break;
    const auto lit = tcp_listeners_.find(key.local_port);
    if (lit == tcp_listeners_.end()) return;
    std::vector<std::uint8_t> msg = cd::BufferPool::acquire();
    conn.rx.read(2 + len, msg);
    ++conn.server_outstanding;
    // The reply may come now or later; it holds the connection open against
    // the idle timer (bounded — see kMaxIdleDeferrals) and no-ops if the
    // connection is gone by the time it fires.
    TcpSessionReply reply = [this, key](cd::GatherBuf response) {
      const auto rit = connections_.find(key);
      if (rit == connections_.end()) {
        cd::BufferPool::release(std::move(response.body));
        return;
      }
      Connection& c = rit->second;
      --c.server_outstanding;
      session_activity(c);
      if (response.size() > 0) session_write(key, c, response.spans());
      cd::BufferPool::release(std::move(response.body));
    };
    lit->second.handler(conn.info, msg, std::move(reply));
    cd::BufferPool::release(std::move(msg));
  }
  const auto it = connections_.find(key);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (conn.rx.consumed() >= kRebaseBytes) conn.rx_base += conn.rx.rebase();
}

void Host::session_activity(Connection& conn) {
  conn.last_activity = network_.loop().now();
}

void Host::idle_check(const ConnKey& key) {
  const auto it = connections_.find(key);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  const SimTime now = network_.loop().now();
  const SimTime deadline = conn.last_activity + conn.idle_window;
  if (deadline > now) {
    // Activity since this check was scheduled: re-arm at the new deadline.
    conn.idle_deferrals = 0;
    conn.idle_event = network_.loop().schedule_in(
        deadline - now, [this, key] { idle_check(key); });
    return;
  }
  if (conn.server_outstanding > 0 &&
      ++conn.idle_deferrals < kMaxIdleDeferrals) {
    conn.idle_event = network_.loop().schedule_in(
        conn.idle_window, [this, key] { idle_check(key); });
    return;
  }
  // A full idle window with no traffic (a deadline landing exactly on the
  // last activity's window edge counts as idle): close with a FIN, RFC 7766
  // §6.1 style.
  ++counters_.idle_closes;
  Packet fin = make_segment(conn.local, key.local_port, key.peer,
                            key.peer_port, TcpFlags{.ack = true, .fin = true},
                            {});
  fin.tcp_seq = conn.iss + 1 + static_cast<std::uint32_t>(conn.tx_off);
  fin.tcp_ack =
      conn.irs + 1 +
      static_cast<std::uint32_t>(conn.rx_base + conn.rx.consumed());
  conn.rx.discard();
  connections_.erase(it);
  network_.send(std::move(fin), asn_);
}

void Host::on_message_timeout(const ConnKey& key, std::uint16_t id) {
  const auto it = connections_.find(key);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  TcpResponseHandler handler;
  for (auto qit = conn.queue.begin(); qit != conn.queue.end(); ++qit) {
    if (qit->id == id) {
      handler = std::move(qit->on_reply);
      cd::BufferPool::release(std::move(qit->bytes));
      conn.queue.erase(qit);
      break;
    }
  }
  if (!handler) {
    for (auto pit = conn.pending.begin(); pit != conn.pending.end(); ++pit) {
      if (pit->id == id) {
        handler = std::move(pit->on_reply);
        conn.pending.erase(pit);
        break;
      }
    }
  }
  // A dial that never established with nothing left waiting is dead; drop
  // it so the next tcp_query redials instead of queueing forever.
  if (conn.state == ConnState::kSynSent && conn.queue.empty() &&
      conn.pending.empty()) {
    const auto sit =
        sessions_.find(SessionKey{conn.local, key.peer, key.peer_port});
    if (sit != sessions_.end() && sit->second.local_port == key.local_port) {
      sessions_.erase(sit);
    }
    conn.rx.discard();
    connections_.erase(it);
  }
  if (handler) handler(std::nullopt);
}

void Host::on_fin(const ConnKey& key) {
  const auto it = connections_.find(key);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (!conn.session) return;  // one-shot lifecycles never see a FIN
  std::vector<TcpResponseHandler> failed;
  for (QueuedMsg& m : conn.queue) {
    if (m.timeout_event != 0) network_.loop().cancel(m.timeout_event);
    cd::BufferPool::release(std::move(m.bytes));
    if (m.on_reply) failed.push_back(std::move(m.on_reply));
  }
  for (PendingReply& p : conn.pending) {
    if (p.timeout_event != 0) network_.loop().cancel(p.timeout_event);
    if (p.on_reply) failed.push_back(std::move(p.on_reply));
  }
  if (conn.idle_event != 0) network_.loop().cancel(conn.idle_event);
  if (conn.timeout_event != 0) network_.loop().cancel(conn.timeout_event);
  const auto sit =
      sessions_.find(SessionKey{conn.local, key.peer, key.peer_port});
  if (sit != sessions_.end() && sit->second.local_port == key.local_port) {
    sessions_.erase(sit);
  }
  conn.rx.discard();
  connections_.erase(it);
  // The next tcp_query to this server falls back to a fresh dial; in-flight
  // messages fail now rather than dangling until their timeouts.
  for (TcpResponseHandler& h : failed) h(std::nullopt);
}

bool Host::stack_accepts(const Packet& packet) const {
  if (!has_address(packet.dst)) return false;

  const bool v4 = packet.src.is_v4();
  if (packet.src == packet.dst) {
    return v4 ? os_.accepts_dst_as_src_v4 : os_.accepts_dst_as_src_v6;
  }
  if (cd::net::is_loopback(packet.src)) {
    return v4 ? os_.accepts_loopback_v4 : os_.accepts_loopback_v6;
  }
  return true;
}

void Host::deliver_batch(std::span<Delivery> batch) {
  for (const Delivery& d : batch) deliver(d.packet);
}

void Host::deliver(const Packet& packet) {
  if (packet.proto == IpProto::kUdp) {
    const auto it = udp_handlers_.find(packet.dst_port);
    if (it != udp_handlers_.end() && it->second) it->second(packet);
    return;
  }
  deliver_tcp(packet);
}

void Host::deliver_tcp(const Packet& packet) {
  const TcpFlags& f = packet.tcp_flags;

  if (f.fin) {
    on_fin(ConnKey{packet.src, packet.src_port, packet.dst_port});
    return;
  }

  if (f.syn && !f.ack) {
    // Inbound connection attempt.
    const auto lit = tcp_listeners_.find(packet.dst_port);
    if (lit == tcp_listeners_.end()) return;  // no RST modeling; just drop
    const ConnKey key{packet.src, packet.src_port, packet.dst_port};
    Connection conn;
    conn.local = packet.dst;
    conn.peer_mss = peer_mss_of(packet);
    conn.irs = packet.tcp_seq;
    conn.info = TcpConnInfo{packet.src, packet.src_port, packet.dst,
                            packet.dst_port, packet};
    if (network_.transport().persistent) {
      conn.state = ConnState::kServerSession;
      conn.session = true;
      conn.idle_window = lit->second.idle_timeout > 0
                             ? lit->second.idle_timeout
                             : network_.transport().idle_timeout;
      conn.last_activity = network_.loop().now();
      conn.idle_event = network_.loop().schedule_in(
          conn.idle_window, [this, key] { idle_check(key); });
      if (network_.transport().dot) {
        conn.hello_rounds_left =
            std::max(1, network_.transport().dot_handshake_rtts);
      }
    } else {
      conn.state = ConnState::kServerEstablished;
      // Reap abandoned half-open connections after a while.
      conn.timeout_event =
          network_.loop().schedule_in(30 * kSecond, [this, key] {
            const auto it = connections_.find(key);
            if (it == connections_.end()) return;
            it->second.rx.discard();
            connections_.erase(it);
          });
    }
    ++counters_.accepts;

    Packet synack = make_segment(packet.dst, packet.dst_port, packet.src,
                                 packet.src_port, TcpFlags{.syn = true, .ack = true}, {});
    synack.tcp_seq = static_cast<std::uint32_t>(rng_.u64());
    synack.tcp_ack = packet.tcp_seq + 1;
    conn.iss = synack.tcp_seq;
    connections_[key] = std::move(conn);
    network_.send(std::move(synack), asn_);
    return;
  }

  if (f.syn && f.ack) {
    // Our SYN was answered.
    const ConnKey key{packet.src, packet.src_port, packet.dst_port};
    const auto it = connections_.find(key);
    if (it == connections_.end() || it->second.state != ConnState::kSynSent) {
      return;
    }
    Connection& conn = it->second;
    conn.peer_mss = peer_mss_of(packet);
    conn.irs = packet.tcp_seq;
    if (conn.session) {
      conn.state = ConnState::kClientSession;
      if (network_.transport().dot) {
        // Pay the handshake before any DNS bytes: hello flights are real
        // stream bytes, one flight each way per round trip.
        conn.hello_rounds_left =
            std::max(1, network_.transport().dot_handshake_rtts);
        send_hello(key, conn);
      } else {
        conn.tx_ready = true;
        flush_session(key);
      }
      return;
    }
    // One-shot client: stream the request at the server's MSS.
    conn.state = ConnState::kClientEstablished;
    send_stream(conn.local, key.local_port, key.peer, key.peer_port, conn.iss,
                conn.irs + 1, conn.peer_mss, conn.request.spans());
    // The request stream is on the wire; recycle its body now.
    cd::BufferPool::release(std::move(conn.request.body));
    conn.request = {};
    return;
  }

  if (!f.syn && !packet.payload.empty()) {
    // Data segment: feed the reassembly for this direction. Segments may
    // arrive in any order.
    const ConnKey key{packet.src, packet.src_port, packet.dst_port};
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    if (conn.state == ConnState::kSynSent) return;  // no stream basis yet

    // Stream offset relative to the peer's ISN + 1 (u32 wraparound safe).
    const std::uint32_t rel = packet.tcp_seq - (conn.irs + 1);

    if (conn.session) {
      // Session streams have no end-of-stream PSH semantics: frames are cut
      // by length prefix, and the stream origin rebases as bytes are
      // consumed.
      if (rel < conn.rx_base) return;  // behind the rebased origin: stale
      conn.rx.add(rel - conn.rx_base, packet.payload, /*last=*/false);
      if (conn.state == ConnState::kServerSession) {
        session_activity(conn);
        process_server_session(key);
      } else {
        process_client_session(key);
      }
      return;
    }

    // One-shot lifecycle: PSH marks the sender's end of stream.
    conn.rx.add(rel, packet.payload, f.psh);
    if (!conn.rx.complete()) return;

    if (conn.state == ConnState::kServerEstablished) {
      // Full request stream arrived: serve it. The reply retires the
      // connection — deterministic teardown (timeout cancelled, entry
      // erased) happens inside it, so the synchronous tcp_listen wrap and a
      // deferred session handler fold into the same wire shape.
      const auto lit = tcp_listeners_.find(packet.dst_port);
      if (lit == tcp_listeners_.end()) return;
      std::vector<std::uint8_t> request_bytes = conn.rx.take();
      const std::size_t req_len = request_bytes.size();
      TcpSessionReply reply = [this, key, req_len](cd::GatherBuf response) {
        const auto rit = connections_.find(key);
        if (rit == connections_.end()) {
          cd::BufferPool::release(std::move(response.body));
          return;
        }
        Connection& c = rit->second;
        network_.loop().cancel(c.timeout_event);
        const std::uint32_t iss = c.iss;
        const std::uint32_t ack_no =
            c.irs + 1 + static_cast<std::uint32_t>(req_len);
        const std::uint16_t peer_mss = c.peer_mss;
        TcpConnInfo info = std::move(c.info);  // retiring the connection
        connections_.erase(rit);
        send_stream(info.local, info.local_port, info.peer, info.peer_port,
                    iss, ack_no, peer_mss, response.spans());
        cd::BufferPool::release(std::move(response.body));
      };
      lit->second.handler(conn.info, request_bytes, std::move(reply));
      cd::BufferPool::release(std::move(request_bytes));
      return;
    }

    // Client side: the response stream is complete — deterministic
    // teardown (timeout cancelled, entry erased) before the handler runs.
    network_.loop().cancel(conn.timeout_event);
    TcpResponseHandler handler = std::move(conn.on_response);
    std::vector<std::uint8_t> response_bytes = conn.rx.take();
    connections_.erase(it);
    if (handler) handler(std::move(response_bytes));
  }
}

}  // namespace cd::sim
