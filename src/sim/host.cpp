#include "sim/host.h"

#include "net/special.h"
#include "util/error.h"

namespace cd::sim {

using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::IpProto;
using cd::net::Packet;
using cd::net::TcpFlags;
using cd::net::TcpOption;
using cd::net::TcpOptionKind;

namespace {

/// The peer's advertised MSS from its SYN/SYN-ACK options, or the RFC 1122
/// default when absent (a zero advertisement is treated as absent).
std::uint16_t peer_mss_of(const Packet& packet) {
  for (const TcpOption& o : packet.tcp_options) {
    if (o.kind == TcpOptionKind::kMss && o.value != 0) {
      return static_cast<std::uint16_t>(o.value);
    }
  }
  return Host::kDefaultMss;
}

}  // namespace

bool TcpReassembly::add(std::size_t offset, std::span<const std::uint8_t> data,
                        bool last) {
  const std::size_t end = offset + data.size();
  if (end > kMaxStreamBytes) return false;
  if (last) {
    if (total_ != kNoTotal && total_ != end) return false;
    total_ = end;
  }
  if (total_ != kNoTotal && end > total_) return false;
  if (data.empty()) return true;

  // Merge [offset, end) into the sorted disjoint range table first — if the
  // table would overflow, the segment is dropped before any bytes land.
  std::size_t i = 0;
  while (i < n_ranges_ && ranges_[i].second < offset) ++i;
  std::size_t begin = offset;
  std::size_t finish = end;
  std::size_t j = i;
  while (j < n_ranges_ && ranges_[j].first <= finish) {
    begin = std::min(begin, ranges_[j].first);
    finish = std::max(finish, ranges_[j].second);
    ++j;
  }
  if (i == j) {
    // No overlap with any existing range: insert at position i.
    if (n_ranges_ == kMaxRanges) return false;  // would overflow
    for (std::size_t k = n_ranges_; k > i; --k) ranges_[k] = ranges_[k - 1];
    ranges_[i] = {begin, finish};
    ++n_ranges_;
  } else {
    // Collapse the overlapped/adjacent ranges [i, j) into one.
    ranges_[i] = {begin, finish};
    for (std::size_t k = j; k < n_ranges_; ++k) {
      ranges_[i + 1 + (k - j)] = ranges_[k];
    }
    n_ranges_ -= (j - i - 1);
  }

  if (buf_.empty() && buf_.capacity() == 0) buf_ = cd::BufferPool::acquire();
  if (buf_.size() < end) buf_.resize(end);
  std::copy(data.begin(), data.end(),
            buf_.begin() + static_cast<std::ptrdiff_t>(offset));
  return true;
}

bool TcpReassembly::complete() const {
  return total_ != kNoTotal &&
         (total_ == 0 ||
          (n_ranges_ == 1 && ranges_[0].first == 0 &&
           ranges_[0].second == total_));
}

std::vector<std::uint8_t> TcpReassembly::take() {
  buf_.resize(total_ == kNoTotal ? 0 : total_);
  n_ranges_ = 0;
  total_ = kNoTotal;
  return std::move(buf_);
}

void TcpReassembly::discard() {
  cd::BufferPool::release(std::move(buf_));
  buf_ = {};
  n_ranges_ = 0;
  total_ = kNoTotal;
}

Host::Host(Network& network, Asn asn, const OsProfile& os,
           std::vector<IpAddr> addresses, cd::Rng rng, std::string label)
    : network_(network),
      asn_(asn),
      os_(os),
      addresses_(std::move(addresses)),
      rng_(rng),
      label_(std::move(label)) {
  CD_ENSURE(!addresses_.empty(), "Host: no addresses");
  network_.attach(this);
}

Host::~Host() {
  network_.detach(this);
}

bool Host::has_address(const IpAddr& addr) const {
  for (const IpAddr& a : addresses_) {
    if (a == addr) return true;
  }
  return false;
}

std::optional<IpAddr> Host::address(IpFamily family) const {
  for (const IpAddr& a : addresses_) {
    if (a.family() == family) return a;
  }
  return std::nullopt;
}

void Host::bind_udp(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::unbind_udp(std::uint16_t port) {
  udp_handlers_.erase(port);
}

void Host::send_udp(const IpAddr& src, std::uint16_t src_port,
                    const IpAddr& dst, std::uint16_t dst_port,
                    std::vector<std::uint8_t> payload) {
  CD_ENSURE(has_address(src), "send_udp: src is not ours");
  Packet pkt = cd::net::make_udp(src, src_port, dst, dst_port,
                                 std::move(payload), os_.fp.initial_ttl);
  network_.send(std::move(pkt), asn_);
}

void Host::tcp_listen(std::uint16_t port, TcpServerHandler handler) {
  tcp_listeners_[port] = std::move(handler);
}

std::uint16_t Host::ephemeral_port() {
  const std::uint32_t pool = os_.ephemeral_pool_size();
  return static_cast<std::uint16_t>(os_.ephemeral_lo +
                                    rng_.uniform(pool));
}

Packet Host::make_segment(const IpAddr& src, std::uint16_t sport,
                          const IpAddr& dst, std::uint16_t dport,
                          TcpFlags flags,
                          std::vector<std::uint8_t> payload) const {
  Packet pkt = cd::net::make_tcp(src, sport, dst, dport, flags,
                                 std::move(payload), os_.fp.initial_ttl);
  pkt.tcp_window = os_.fp.window;
  if (flags.syn) {
    pkt.tcp_options = os_.fp.syn_options;
  }
  return pkt;
}

void Host::tcp_connect(const IpAddr& src, const IpAddr& dst,
                       std::uint16_t dst_port, cd::GatherBuf request,
                       TcpResponseHandler on_response, SimTime timeout) {
  CD_ENSURE(has_address(src), "tcp_connect: src is not ours");

  std::uint16_t sport = ephemeral_port();
  ConnKey key{dst, dst_port, sport};
  for (int attempts = 0; connections_.count(key) && attempts < 16; ++attempts) {
    sport = ephemeral_port();
    key.local_port = sport;
  }

  Connection conn;
  conn.state = ConnState::kSynSent;
  conn.local = src;
  conn.request = std::move(request);
  conn.on_response = std::move(on_response);
  conn.timeout_event = network_.loop().schedule_in(timeout, [this, key] {
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    TcpResponseHandler handler = std::move(it->second.on_response);
    it->second.rx.discard();
    connections_.erase(it);
    if (handler) handler(std::nullopt);
  });

  Packet syn = make_segment(src, sport, dst, dst_port, TcpFlags{.syn = true}, {});
  syn.tcp_seq = static_cast<std::uint32_t>(rng_.u64());
  conn.iss = syn.tcp_seq;
  connections_.emplace(key, std::move(conn));
  network_.send(std::move(syn), asn_);
}

void Host::send_stream(const IpAddr& src, std::uint16_t sport,
                       const IpAddr& dst, std::uint16_t dport,
                       std::uint32_t iss, std::uint32_t ack_no,
                       std::uint16_t peer_mss, const cd::GatherBuf& data) {
  const cd::ConstSpans stream = data.spans();
  const std::size_t total = stream.size_bytes();
  // Differential baseline: one unsegmented "segment" carrying the whole
  // stream, the pre-streaming wire shape the byte-identity tests compare
  // against.
  const std::size_t cap = network_.tcp_single_buffer()
                              ? std::max<std::size_t>(total, 1)
                              : peer_mss;
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(cap, total - off);
    std::vector<std::uint8_t> payload = cd::BufferPool::acquire();
    stream.subchain(off, n).append_to(payload);
    const bool last = off + n == total;
    Packet seg = make_segment(src, sport, dst, dport,
                              TcpFlags{.ack = true, .psh = last},
                              std::move(payload));
    // SYN consumed one sequence number; data starts at iss + 1 and seq/ack
    // advance by actual payload bytes.
    seg.tcp_seq = iss + 1 + static_cast<std::uint32_t>(off);
    seg.tcp_ack = ack_no;
    network_.send(std::move(seg), asn_);
    off += n;
  } while (off < total);
}

bool Host::stack_accepts(const Packet& packet) const {
  if (!has_address(packet.dst)) return false;

  const bool v4 = packet.src.is_v4();
  if (packet.src == packet.dst) {
    return v4 ? os_.accepts_dst_as_src_v4 : os_.accepts_dst_as_src_v6;
  }
  if (cd::net::is_loopback(packet.src)) {
    return v4 ? os_.accepts_loopback_v4 : os_.accepts_loopback_v6;
  }
  return true;
}

void Host::deliver_batch(std::span<Delivery> batch) {
  for (const Delivery& d : batch) deliver(d.packet);
}

void Host::deliver(const Packet& packet) {
  if (packet.proto == IpProto::kUdp) {
    const auto it = udp_handlers_.find(packet.dst_port);
    if (it != udp_handlers_.end() && it->second) it->second(packet);
    return;
  }
  deliver_tcp(packet);
}

void Host::deliver_tcp(const Packet& packet) {
  const TcpFlags& f = packet.tcp_flags;

  if (f.syn && !f.ack) {
    // Inbound connection attempt.
    const auto lit = tcp_listeners_.find(packet.dst_port);
    if (lit == tcp_listeners_.end()) return;  // no RST modeling; just drop
    const ConnKey key{packet.src, packet.src_port, packet.dst_port};
    Connection conn;
    conn.state = ConnState::kServerEstablished;
    conn.local = packet.dst;
    conn.peer_mss = peer_mss_of(packet);
    conn.irs = packet.tcp_seq;
    conn.info = TcpConnInfo{packet.src, packet.src_port, packet.dst,
                            packet.dst_port, packet};
    // Reap abandoned half-open connections after a while.
    conn.timeout_event =
        network_.loop().schedule_in(30 * kSecond, [this, key] {
          const auto it = connections_.find(key);
          if (it == connections_.end()) return;
          it->second.rx.discard();
          connections_.erase(it);
        });

    Packet synack = make_segment(packet.dst, packet.dst_port, packet.src,
                                 packet.src_port, TcpFlags{.syn = true, .ack = true}, {});
    synack.tcp_seq = static_cast<std::uint32_t>(rng_.u64());
    synack.tcp_ack = packet.tcp_seq + 1;
    conn.iss = synack.tcp_seq;
    connections_[key] = std::move(conn);
    network_.send(std::move(synack), asn_);
    return;
  }

  if (f.syn && f.ack) {
    // Our SYN was answered: stream the request at the server's MSS.
    const ConnKey key{packet.src, packet.src_port, packet.dst_port};
    const auto it = connections_.find(key);
    if (it == connections_.end() || it->second.state != ConnState::kSynSent) {
      return;
    }
    Connection& conn = it->second;
    conn.state = ConnState::kClientEstablished;
    conn.peer_mss = peer_mss_of(packet);
    conn.irs = packet.tcp_seq;
    send_stream(conn.local, key.local_port, key.peer, key.peer_port, conn.iss,
                conn.irs + 1, conn.peer_mss, conn.request);
    // The request stream is on the wire; recycle its body now.
    cd::BufferPool::release(std::move(conn.request.body));
    conn.request = {};
    return;
  }

  if (!f.syn && !packet.payload.empty()) {
    // Data segment: feed the reassembly for this direction. PSH marks the
    // sender's end of stream; segments may arrive in any order.
    const ConnKey key{packet.src, packet.src_port, packet.dst_port};
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    if (conn.state == ConnState::kSynSent) return;  // no stream basis yet

    // Stream offset relative to the peer's ISN + 1 (u32 wraparound safe).
    const std::uint32_t rel = packet.tcp_seq - (conn.irs + 1);
    conn.rx.add(rel, packet.payload, f.psh);
    if (!conn.rx.complete()) return;

    if (conn.state == ConnState::kServerEstablished) {
      // Full request stream arrived: serve it, tear the connection down,
      // and stream the response back at the client's MSS.
      const auto lit = tcp_listeners_.find(packet.dst_port);
      if (lit == tcp_listeners_.end()) return;
      std::vector<std::uint8_t> request_bytes = conn.rx.take();
      cd::GatherBuf response = lit->second(conn.info, request_bytes);
      network_.loop().cancel(conn.timeout_event);
      const std::uint32_t iss = conn.iss;
      const std::uint32_t ack_no =
          conn.irs + 1 + static_cast<std::uint32_t>(request_bytes.size());
      const std::uint16_t peer_mss = conn.peer_mss;
      TcpConnInfo info = std::move(conn.info);  // retiring the connection
      connections_.erase(it);
      send_stream(info.local, info.local_port, info.peer, info.peer_port, iss,
                  ack_no, peer_mss, response);
      cd::BufferPool::release(std::move(request_bytes));
      cd::BufferPool::release(std::move(response.body));
      return;
    }

    // Client side: the response stream is complete — deterministic
    // teardown (timeout cancelled, entry erased) before the handler runs.
    network_.loop().cancel(conn.timeout_event);
    TcpResponseHandler handler = std::move(conn.on_response);
    std::vector<std::uint8_t> response_bytes = conn.rx.take();
    connections_.erase(it);
    if (handler) handler(std::move(response_bytes));
  }
}

}  // namespace cd::sim
