#include "sim/topology.h"

#include "util/error.h"

namespace cd::sim {

using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::Prefix;
using cd::net::U128;

void RoutingTable::add(const Prefix& prefix, Asn asn) {
  LengthMap& table = prefix.family() == IpFamily::kV4 ? v4_ : v6_;
  auto [it, inserted] =
      table[prefix.length()].emplace(prefix.base().bits(), Match{prefix, asn});
  if (inserted) {
    ++count_;
  } else {
    it->second = Match{prefix, asn};  // later announcement wins
  }
}

const RoutingTable::Match* RoutingTable::find(const IpAddr& addr) const {
  const LengthMap& table = addr.is_v4() ? v4_ : v6_;
  const int width = addr.width();
  for (const auto& [length, entries] : table) {
    const int shift = width - length;
    U128 key = addr.bits();
    if (shift > 0) key = (key >> shift) << shift;
    const auto it = entries.find(key);
    if (it != entries.end()) return &it->second;
  }
  return nullptr;
}

std::optional<Asn> RoutingTable::lookup(const IpAddr& addr) const {
  const Match* m = find(addr);
  if (!m) return std::nullopt;
  return m->asn;
}

std::optional<Prefix> RoutingTable::lookup_prefix(const IpAddr& addr) const {
  const Match* m = find(addr);
  if (!m) return std::nullopt;
  return m->prefix;
}

AsInfo& Topology::add_as(Asn asn, FilterPolicy policy) {
  auto [it, inserted] = ases_.try_emplace(asn);
  if (inserted) {
    it->second.asn = asn;
    it->second.policy = policy;
  }
  return it->second;
}

void Topology::announce(Asn asn, const Prefix& prefix) {
  AsInfo* info = find(asn);
  CD_ENSURE(info != nullptr, "announce: unknown ASN");
  if (prefix.family() == IpFamily::kV4) {
    info->prefixes_v4.push_back(prefix);
  } else {
    info->prefixes_v6.push_back(prefix);
  }
  routes_.add(prefix, asn);
}

const AsInfo* Topology::find(Asn asn) const {
  const auto it = ases_.find(asn);
  return it == ases_.end() ? nullptr : &it->second;
}

AsInfo* Topology::find(Asn asn) {
  const auto it = ases_.find(asn);
  return it == ases_.end() ? nullptr : &it->second;
}

std::optional<Asn> Topology::asn_of(const IpAddr& addr) const {
  return routes_.lookup(addr);
}

bool Topology::is_internal(Asn asn, const IpAddr& addr) const {
  // Routing-table view: the covering announcement originates from `asn`.
  // This matches what a border router can actually check.
  const auto origin = routes_.lookup(addr);
  return origin && *origin == asn;
}

const std::vector<Prefix>& Topology::prefixes_of(Asn asn,
                                                 IpFamily family) const {
  static const std::vector<Prefix> kEmpty;
  const AsInfo* info = find(asn);
  if (!info) return kEmpty;
  return family == IpFamily::kV4 ? info->prefixes_v4 : info->prefixes_v6;
}

}  // namespace cd::sim
