// Human-intervention simulation (paper §3.6.3).
//
// Networks running intrusion detection log our spoofed probes; a curious
// analyst later resolves the logged query name to see what it is. Those
// resolutions reach our authoritative servers hours after the embedded
// timestamp and must be filtered by the collector's lifetime threshold.
// This component injects exactly that behaviour as failure-injection.
//
// Replay decisions (and the replay's delay, port and id) are derived by
// hashing each observed packet against the constructor seed, not drawn from
// a stream consumed in arrival order, so whether a given probe is replayed
// does not depend on what other traffic the tap saw first. A sharded
// campaign (core/parallel.h) therefore replays exactly the probes a serial
// campaign would — except that `max_replays` caps each shard's analyst
// separately, so merged totals can exceed a serial run's when the cap binds.
#pragma once

#include <cstdint>
#include <set>

#include "dns/message.h"
#include "sim/network.h"
#include "util/rng.h"

namespace cd::scanner {

struct AnalystConfig {
  /// Probability that a logged probe gets replayed by a human.
  double replay_probability = 0.001;
  cd::sim::SimTime min_delay = cd::sim::kHour;
  cd::sim::SimTime max_delay = 48 * cd::sim::kHour;
  /// Upper bound on total replays (humans get bored).
  std::uint64_t max_replays = 1000;
};

class AnalystSimulator {
 public:
  /// Watches `network` for UDP port-53 probes destined to ASes in
  /// `ids_asns`; replays a sample of their query names later from a
  /// workstation address inside the logging AS, resolved via
  /// `public_resolver`.
  AnalystSimulator(cd::sim::Network& network, std::set<cd::sim::Asn> ids_asns,
                   cd::net::IpAddr public_resolver, AnalystConfig config,
                   cd::Rng rng);

  AnalystSimulator(const AnalystSimulator&) = delete;
  AnalystSimulator& operator=(const AnalystSimulator&) = delete;

  [[nodiscard]] std::uint64_t replays() const { return replays_; }

 private:
  void maybe_replay(const cd::net::Packet& packet);

  cd::sim::Network& network_;
  std::set<cd::sim::Asn> ids_asns_;
  cd::net::IpAddr public_resolver_;
  AnalystConfig config_;
  std::uint64_t seed_;  // per-probe decision streams derive from this
  std::uint64_t replays_ = 0;
};

}  // namespace cd::scanner
