// The Closed Resolver Project cross-check modality: a second, per-/24
// inbound-SAV scanner over the same simulated world.
//
// Korczyński et al. ("Don't Forget to Lock the Front Door!", "The Closed
// Resolver Project") measure the phenomenon this paper measures per
// resolver — inbound source-address validation — per *network* instead: for
// every announced /24, send DNS probes whose spoofed source is the prefix's
// conventional local-resolver address and whose destination walks the
// prefix's hosts. A border without inbound SAV admits the forged "local"
// packet; any resolver it lands on trusts the in-prefix source (every ACL
// shape admits the resolver's own /24) and resolves the embedded name,
// which escapes to our authoritative sink — evidence the whole /24 can be
// spoofed into. Networks filtering same-subnet sources at the border
// (FilterPolicy::drop_inbound_same_subnet) blind this modality but not the
// paper's external-source one — the genuine driver of per-AS methodology
// disagreement that analysis/crosscheck.h reports.
//
// Determinism mirrors the probe plane (scanner/prober.h): every per-prefix
// decision — start stagger, source ports, DNS ids — is drawn from
// Rng::substream(seed, prefix base) and carried through the prefix's own
// probe chain, so a /24's traffic is a pure function of (seed, prefix),
// independent of shard layout and list order. Evidence the collector keeps
// in the digestable record (responding-address sets) is additionally
// independent of shared-cache warmness; see core/parallel.h.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "resolver/auth.h"
#include "scanner/qname.h"
#include "sim/host.h"

namespace cd::scanner {

/// One probed /24 — the Closed Resolver Project's measurement unit.
struct PrefixTarget {
  cd::net::Prefix prefix;  // always a /24
  cd::sim::Asn asn = 0;

  friend bool operator==(const PrefixTarget&, const PrefixTarget&) = default;
};

struct CrossCheckConfig {
  /// Window over which per-prefix chain starts are staggered.
  cd::sim::SimTime duration = 2 * cd::sim::kHour;
  /// Spacing between consecutive host probes within one /24.
  cd::sim::SimTime per_query_spacing = cd::sim::kSecond;
  cd::sim::SimTime start_delay = cd::sim::kSecond;
  /// Probed host offsets within each /24: [host_lo, host_hi). The default
  /// walks every host address (1..254); tests and the bench narrow it to
  /// the offsets the world's resolver addressing can occupy.
  std::uint32_t host_lo = 1;
  std::uint32_t host_hi = 255;
  /// Offset of the forged "local resolver" source (.1 by convention). When
  /// the probed host *is* that address the source shifts one up, so it
  /// never equals the destination (the OS model rejects dst-as-src).
  std::uint32_t resolver_offset = 1;
  /// Human-analyst replay filter, as in the probe plane (§3.6.3).
  cd::sim::SimTime lifetime_threshold = 10 * cd::sim::kSecond;
};

/// Walks every prefix's host window with spoofed in-prefix sources. Packets
/// are injected at the vantage AS exactly like the probe plane's spoofed
/// queries: they physically leave our (OSAV-free) network.
class CrossCheckProber {
 public:
  CrossCheckProber(cd::sim::Host& vantage, QnameCodec codec,
                   CrossCheckConfig config, cd::Rng rng);

  CrossCheckProber(const CrossCheckProber&) = delete;
  CrossCheckProber& operator=(const CrossCheckProber&) = delete;

  /// Schedules one probe chain per prefix, staggered over the window. The
  /// list must already be this shard's slice (ditl::for_each_prefix24
  /// filters by shard); each chain's timing derives from the prefix base,
  /// not the list position. Call once; then run the event loop.
  void schedule_campaign(std::vector<PrefixTarget> prefixes);

  [[nodiscard]] std::uint64_t probes_sent() const { return sent_; }
  [[nodiscard]] const std::vector<PrefixTarget>& prefixes() const {
    return prefixes_;
  }

 private:
  void probe_step(std::size_t idx, std::uint32_t offset, cd::Rng rng);
  void send_probe(const PrefixTarget& pt, std::uint32_t offset, cd::Rng& rng);

  cd::sim::Host& vantage_;
  QnameCodec codec_;
  CrossCheckConfig config_;
  std::uint64_t seed_;  // per-prefix substreams derive from this
  std::vector<PrefixTarget> prefixes_;
  std::uint64_t sent_ = 0;
};

/// Everything learned about one probed /24.
struct PrefixRecord {
  cd::net::IpAddr prefix;  // /24 base address
  cd::sim::Asn asn = 0;
  /// Probed destinations whose resolution escaped to our sink. Dedup'd, so
  /// the value is independent of retry/cache timing (digest-safe).
  std::set<cd::net::IpAddr> responding;
  /// Raw attributed auth-log entries (includes retransmit duplicates whose
  /// count depends on shared-cache warmness — excluded from results_digest).
  std::uint64_t hits = 0;
  /// How the evidence arrived: from the probed host itself, or forwarded by
  /// another client. A forward-failover resolver's choice is drawn from its
  /// own sequential stream, so these bits are excluded from results_digest
  /// (kept for reporting, like first_hit_time on the probe plane).
  bool direct_seen = false;
  bool forwarded_seen = false;

  /// The modality's verdict: the prefix admitted an in-prefix-spoofed
  /// packet (no inbound SAV on the path to a live resolver).
  [[nodiscard]] bool vulnerable() const { return !responding.empty(); }
};

/// Keyed and iterated by /24 base address; std::map so per-shard merge and
/// digest walk a canonical order.
using PrefixRecords = std::map<cd::net::IpAddr, PrefixRecord>;

struct CrossCheckStats {
  std::uint64_t entries_seen = 0;
  std::uint64_t foreign = 0;            // not our experiment's names
  std::uint64_t partial = 0;            // QNAME-minimized, unattributable
  std::uint64_t excluded_lifetime = 0;  // over the human threshold
};

/// Authoritative-side observation for the cross-check plane. Attaches next
/// to the main Collector (which skips kCrossCheck names) and keeps per-/24
/// evidence instead of per-target records.
class CrossCheckCollector {
 public:
  CrossCheckCollector(QnameCodec codec, cd::sim::SimTime lifetime_threshold);

  void attach(cd::resolver::AuthServer& server);

  [[nodiscard]] const PrefixRecords& records() const { return records_; }
  [[nodiscard]] const CrossCheckStats& stats() const { return stats_; }

  /// Exposed for testing: process one log entry.
  void observe(const cd::resolver::AuthLogEntry& entry);

 private:
  QnameCodec codec_;
  cd::sim::SimTime lifetime_threshold_;
  PrefixRecords records_;
  CrossCheckStats stats_;
};

}  // namespace cd::scanner
