// Experiment query-name codec.
//
// Implements the paper's §3.3 template `ts.src.dst.asn.kw.dns-lab.org`,
// extended with a mode label and per-mode subzones:
//
//   <ts>.<src>.<dst>.<asn>.<mode>.<kw>[.<v4|v6|tcp>].<base>
//
// where ts is the send time in decimal microseconds, src/dst are hex-encoded
// IP addresses (8 digits v4, 32 digits v6), asn is decimal, mode is `m<N>`,
// and the optional subzone selects IPv4-only / IPv6-only delegations or the
// TC-forcing zone used to elicit DNS-over-TCP. Decoding is tolerant of
// partial names so that QNAME-minimized queries (which only reveal a suffix)
// still yield whatever fields they carry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dns/name.h"
#include "net/ip.h"
#include "sim/time.h"
#include "sim/topology.h"

namespace cd::scanner {

enum class QueryMode : std::uint8_t {
  kInitial = 0,     // reachability probe (base zone)
  kV4Only = 1,      // follow-up via the v4-only-delegated subzone
  kV6Only = 2,      // follow-up via the v6-only-delegated subzone
  kTcp = 3,         // follow-up via the TC-forcing subzone
  kOpen = 4,        // non-spoofed open-resolver check (base zone)
  kCrossCheck = 5,  // per-/24 prefix-scanner probe (base zone;
                    // scanner/crosscheck.h — the Closed Resolver modality)
  kPoison = 6,      // attacker trigger query via the anycast-delegated
                    // poison subzone (attack/poison.h)
};

[[nodiscard]] std::string query_mode_name(QueryMode mode);

struct QnameInfo {
  cd::sim::SimTime ts = 0;
  cd::net::IpAddr src;
  cd::net::IpAddr dst;
  cd::sim::Asn asn = 0;
  QueryMode mode = QueryMode::kInitial;
};

class QnameCodec {
 public:
  /// `base` is the experiment apex (e.g. dns-lab.org); `kw` is the
  /// per-experiment keyword label and must not collide with the subzone tags
  /// ("v4", "v6", "tcp", "poison").
  QnameCodec(cd::dns::DnsName base, std::string kw);

  [[nodiscard]] const cd::dns::DnsName& base() const { return base_; }
  [[nodiscard]] const std::string& keyword() const { return kw_; }

  /// The zone apex a mode's queries resolve under (base, or a subzone).
  [[nodiscard]] cd::dns::DnsName zone_apex(QueryMode mode) const;

  [[nodiscard]] cd::dns::DnsName encode(const QnameInfo& info) const;

  /// What decode() could recover. Fields appear right-to-left as labels are
  /// present; `full()` means the whole template parsed (src attribution is
  /// possible).
  struct Decoded {
    bool in_experiment = false;  // name is under base and carries our kw
    std::optional<QueryMode> mode;
    std::optional<cd::sim::Asn> asn;
    std::optional<cd::net::IpAddr> dst;
    std::optional<cd::net::IpAddr> src;
    std::optional<cd::sim::SimTime> ts;

    [[nodiscard]] bool full() const { return ts.has_value(); }
  };

  [[nodiscard]] Decoded decode(const cd::dns::DnsName& qname) const;

  /// Hex-encodes an address for use as a label (exposed for tests).
  [[nodiscard]] static std::string encode_addr(const cd::net::IpAddr& addr);
  [[nodiscard]] static std::optional<cd::net::IpAddr> decode_addr(
      const std::string& label);

 private:
  cd::dns::DnsName base_;
  std::string kw_;
};

}  // namespace cd::scanner
