// Follow-up query engine (paper §3.5).
//
// When the collector first sees a target answer a spoofed probe, this engine
// sends the follow-up battery using the same spoofed source: 10 queries that
// resolve via an IPv4-only delegation, 10 via an IPv6-only delegation (source
// port and forwarding evidence), one non-spoofed query (open/closed status),
// and one query whose UDP answer is truncated (eliciting DNS-over-TCP for
// fingerprinting). Each target gets exactly one battery.
#pragma once

#include <unordered_set>

#include "scanner/collector.h"
#include "scanner/prober.h"

namespace cd::scanner {

/// Which transport carries the follow-up battery.
enum class FollowupTransport : std::uint8_t {
  /// The paper's shape: spoofed-source UDP queries (plus the TC-forcing
  /// query that elicits the target's own DNS-over-TCP retry).
  kUdp = 0,
  /// DNS-over-TCP from the vantage's real address (spoofed sources cannot
  /// complete a handshake): the same 10+10+open+TC battery as framed
  /// messages via Host::tcp_query — 22 dials per target on the one-shot
  /// baseline, one reused pipelined session per target with the
  /// persistent-transport knob on. The scan-cost axis of the tables.
  kTcp = 1,
};

struct FollowupConfig {
  int port_samples = 10;  // queries per family for the port-range estimate
  cd::sim::SimTime spacing = cd::sim::kSecond;
  FollowupTransport transport = FollowupTransport::kUdp;
};

class FollowupEngine {
 public:
  /// Registers itself as `collector`'s first-hit handler.
  FollowupEngine(Prober& prober, Collector& collector, FollowupConfig config);

  FollowupEngine(const FollowupEngine&) = delete;
  FollowupEngine& operator=(const FollowupEngine&) = delete;

  [[nodiscard]] std::uint64_t batteries_sent() const { return batteries_; }

 private:
  void on_first_hit(const TargetRecord& record, const cd::net::IpAddr& source);

  Prober& prober_;
  FollowupConfig config_;
  std::unordered_set<cd::net::IpAddr, cd::net::IpAddrHash> dispatched_;
  std::uint64_t batteries_ = 0;
};

}  // namespace cd::scanner
