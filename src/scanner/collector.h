// Authoritative-side observation: decodes experiment query names arriving at
// our authoritative servers, applies the human-intervention lifetime filter
// (§3.6.3), tracks QNAME-minimization gaps (§3.6.4), and accumulates the
// per-target evidence all later analysis consumes.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "resolver/auth.h"
#include "scanner/qname.h"
#include "scanner/source_select.h"
#include "sim/topology.h"

namespace cd::scanner {

struct CollectorConfig {
  /// Queries whose embedded timestamp is older than this on arrival are
  /// attributed to human analysts poking at logs, not to our probes.
  cd::sim::SimTime lifetime_threshold = 10 * cd::sim::kSecond;
};

/// Everything learned about one target IP address.
struct TargetRecord {
  cd::net::IpAddr target;
  cd::sim::Asn asn = 0;

  // Reachability evidence from initial probes.
  std::set<cd::net::IpAddr> sources_hit;
  std::set<SourceCategory> categories_hit;
  cd::sim::SimTime first_hit_time = -1;
  cd::net::IpAddr first_hit_source;

  // Which client addresses contacted our auth servers on this target's
  // behalf (direct == the target itself; §5.4 forwarding analysis).
  bool direct_seen = false;
  bool forwarded_seen = false;
  std::set<cd::net::IpAddr> forwarders_seen;
  bool client_in_target_as = false;  // §3.6.1 middlebox consideration

  // Follow-up evidence.
  std::vector<std::uint16_t> ports_v4;  // direct source ports, arrival order
  std::vector<std::uint16_t> ports_v6;
  bool open_hit = false;
  bool tcp_hit = false;
  std::optional<cd::net::Packet> tcp_syn;  // for p0f

  [[nodiscard]] bool reachable() const { return first_hit_time >= 0; }
};

struct CollectorStats {
  std::uint64_t entries_seen = 0;
  std::uint64_t foreign = 0;            // not our experiment's names
  std::uint64_t excluded_lifetime = 0;  // over the human threshold
  std::uint64_t qmin_partial = 0;       // names missing the src/dst labels

  /// Accumulates another collector's counters (merging shard results).
  CollectorStats& operator+=(const CollectorStats& other) {
    entries_seen += other.entries_seen;
    foreign += other.foreign;
    excluded_lifetime += other.excluded_lifetime;
    qmin_partial += other.qmin_partial;
    return *this;
  }
};

/// Derives the spoof category of `src` relative to `dst` (the collector sees
/// only query names, so the category is reconstructed, not carried).
[[nodiscard]] SourceCategory categorize_source(const cd::net::IpAddr& src,
                                               const cd::net::IpAddr& dst);

class Collector {
 public:
  using FirstHitHandler =
      std::function<void(const TargetRecord&, const cd::net::IpAddr& source)>;

  /// `topology` is used to attribute client addresses to ASes (may be null;
  /// QNAME-minimization AS evidence is then skipped).
  Collector(QnameCodec codec, CollectorConfig config,
            const cd::sim::Topology* topology);

  /// Registers this collector on an authoritative server's query log.
  void attach(cd::resolver::AuthServer& server);

  /// Invoked once per target, on its first qualifying reachability hit.
  void set_first_hit_handler(FirstHitHandler handler);

  [[nodiscard]] const std::unordered_map<cd::net::IpAddr, TargetRecord,
                                         cd::net::IpAddrHash>&
  records() const {
    return records_;
  }
  [[nodiscard]] const CollectorStats& stats() const { return stats_; }

  /// ASes whose resolvers sent QNAME-minimized (unattributable) queries.
  [[nodiscard]] const std::set<cd::sim::Asn>& qmin_asns() const {
    return qmin_asns_;
  }
  /// Targets excluded by the lifetime threshold (distinct addresses).
  [[nodiscard]] const std::set<cd::net::IpAddr>& lifetime_excluded_targets()
      const {
    return lifetime_excluded_;
  }

  /// Exposed for testing: process one log entry.
  void observe(const cd::resolver::AuthLogEntry& entry);

 private:
  QnameCodec codec_;
  CollectorConfig config_;
  const cd::sim::Topology* topology_;
  FirstHitHandler first_hit_;
  std::unordered_map<cd::net::IpAddr, TargetRecord, cd::net::IpAddrHash>
      records_;
  CollectorStats stats_;
  std::set<cd::sim::Asn> qmin_asns_;
  std::set<cd::net::IpAddr> lifetime_excluded_;
};

}  // namespace cd::scanner
