#include "scanner/followup.h"

namespace cd::scanner {

FollowupEngine::FollowupEngine(Prober& prober, Collector& collector,
                               FollowupConfig config)
    : prober_(prober), config_(config) {
  collector.set_first_hit_handler(
      [this](const TargetRecord& record, const cd::net::IpAddr& source) {
        on_first_hit(record, source);
      });
}

void FollowupEngine::on_first_hit(const TargetRecord& record,
                                  const cd::net::IpAddr& source) {
  if (!dispatched_.insert(record.target).second) return;
  ++batteries_;

  auto& loop = prober_.vantage().network().loop();
  const TargetInfo target{record.target, record.asn};
  const cd::net::IpAddr spoofed = source;

  cd::sim::SimTime at = config_.spacing;
  if (config_.transport == FollowupTransport::kTcp) {
    // Same battery shape, carried as RFC 7766 framed messages from the
    // vantage's real address (spoofed sources cannot complete a TCP
    // handshake). With the persistent transport on, all 22 messages ride
    // one pipelined session per target instead of 22 dials.
    for (int i = 0; i < config_.port_samples; ++i, at += config_.spacing) {
      loop.schedule_in(at, [this, target] {
        prober_.send_transport(target, QueryMode::kV4Only);
      });
    }
    for (int i = 0; i < config_.port_samples; ++i, at += config_.spacing) {
      loop.schedule_in(at, [this, target] {
        prober_.send_transport(target, QueryMode::kV6Only);
      });
    }
    loop.schedule_in(at,
                     [this, target] { prober_.send_transport(target, QueryMode::kOpen); });
    at += config_.spacing;
    loop.schedule_in(at, [this, target] {
      prober_.send_transport(target, QueryMode::kTcp);
    });
    return;
  }
  for (int i = 0; i < config_.port_samples; ++i, at += config_.spacing) {
    loop.schedule_in(at, [this, target, spoofed] {
      prober_.send_spoofed(target, spoofed, QueryMode::kV4Only);
    });
  }
  for (int i = 0; i < config_.port_samples; ++i, at += config_.spacing) {
    loop.schedule_in(at, [this, target, spoofed] {
      prober_.send_spoofed(target, spoofed, QueryMode::kV6Only);
    });
  }
  loop.schedule_in(at, [this, target] { prober_.send_open(target); });
  at += config_.spacing;
  loop.schedule_in(at, [this, target, spoofed] {
    prober_.send_spoofed(target, spoofed, QueryMode::kTcp);
  });
}

}  // namespace cd::scanner
