#include "scanner/prober.h"

#include "dns/message.h"
#include "net/packet.h"
#include "resolver/auth.h"  // tcp_frame_pooled
#include "util/error.h"

namespace cd::scanner {

using cd::net::IpAddr;
using cd::net::Packet;

namespace {

/// FNV-1a over a byte span; mixed before folding so structurally similar
/// replies land far apart in the per-target digest.
std::uint64_t reply_hash(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return cd::mix64(h);
}

}  // namespace

std::size_t shard_of(cd::sim::Asn asn, std::size_t num_shards) {
  if (num_shards <= 1) return 0;
  // Mix before reducing: raw ASNs are clustered, mixed ones spread evenly.
  return static_cast<std::size_t>(cd::mix64(asn) % num_shards);
}

Prober::Prober(cd::sim::Host& vantage, QnameCodec codec,
               SourceSelector& selector, ProbeConfig config, cd::Rng rng)
    : vantage_(vantage),
      codec_(std::move(codec)),
      selector_(selector),
      config_(config),
      seed_(rng.u64()) {}

cd::Rng& Prober::target_rng(const IpAddr& addr) {
  const auto it = target_rngs_.find(addr);
  if (it != target_rngs_.end()) return it->second;
  return target_rngs_
      .emplace(addr, cd::Rng::substream(seed_, cd::net::IpAddrHash{}(addr)))
      .first->second;
}

void Prober::send_query(const IpAddr& src, std::uint16_t sport,
                        const TargetInfo& target, QueryMode mode) {
  QnameInfo info;
  info.ts = vantage_.network().loop().now();
  info.src = src;
  info.dst = target.addr;
  info.asn = target.asn;
  info.mode = mode;

  const cd::dns::DnsMessage query = cd::dns::make_query(
      static_cast<std::uint16_t>(target_rng(target.addr).u64()),
      codec_.encode(info), cd::dns::RrType::kA,
      /*rd=*/true);

  Packet pkt = cd::net::make_udp(src, sport, target.addr, 53,
                                 cd::dns::encode_pooled(query));
  // Injected at the vantage's AS: a spoofed packet still physically leaves
  // our network, so our border's (absent) OSAV is what matters.
  vantage_.network().send(std::move(pkt), vantage_.asn());
  ++sent_;
}

void Prober::send_spoofed(const TargetInfo& target, const IpAddr& spoofed,
                          QueryMode mode) {
  const std::uint16_t sport = static_cast<std::uint16_t>(
      1024 + target_rng(target.addr).uniform(64512));
  send_query(spoofed, sport, target, mode);
}

void Prober::send_open(const TargetInfo& target) {
  const auto src = vantage_.address(target.addr.family());
  if (!src) return;
  const std::uint16_t sport = static_cast<std::uint16_t>(
      1024 + target_rng(target.addr).uniform(64512));
  send_query(*src, sport, target, QueryMode::kOpen);
}

void Prober::send_transport(const TargetInfo& target, QueryMode mode) {
  const auto src = vantage_.address(target.addr.family());
  if (!src) return;

  QnameInfo info;
  info.ts = vantage_.network().loop().now();
  info.src = *src;
  info.dst = target.addr;
  info.asn = target.asn;
  info.mode = mode;

  const cd::dns::DnsMessage query = cd::dns::make_query(
      static_cast<std::uint16_t>(target_rng(target.addr).u64()),
      codec_.encode(info), cd::dns::RrType::kA,
      /*rd=*/true);

  const IpAddr dst = target.addr;
  // A generous timeout keeps slow-but-completing recursions from straddling
  // the deadline: a reply either folds into the digest under every shard
  // layout or under none.
  vantage_.tcp_query(
      *src, dst, 53, resolver::tcp_frame_pooled(query),
      [this, dst](std::optional<std::vector<std::uint8_t>> reply) {
        if (reply && !reply->empty()) {
          transport_replies_[dst] += reply_hash(*reply);
          cd::BufferPool::release(std::move(*reply));
        }
      },
      30 * cd::sim::kSecond);
  ++sent_;
}

void Prober::schedule_campaign(std::vector<TargetInfo> targets,
                               std::size_t shard_index,
                               std::size_t num_shards) {
  CD_ENSURE(num_shards > 0 && shard_index < num_shards,
            "schedule_campaign: bad shard spec");
  targets_ = std::move(targets);
  if (targets_.empty()) return;

  auto& loop = vantage_.network().loop();
  const std::size_t n = targets_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (shard_of(targets_[i].asn, num_shards) != shard_index) continue;
    // Stagger target start times uniformly across the window. The draw is
    // the first from the target's own address-keyed substream, making the
    // start time a pure function of (seed, address) — a streamed shard world
    // that never sees the rest of the campaign list schedules its targets at
    // exactly the times the serial campaign would.
    const cd::sim::SimTime start =
        config_.start_delay +
        static_cast<cd::sim::SimTime>(target_rng(targets_[i].addr)
                                          .uniform(static_cast<std::uint64_t>(
                                              config_.duration)));
    loop.schedule_at(start, [this, i] { probe_step(i, 0, nullptr); });
  }
}

void Prober::probe_step(std::size_t target_idx, std::size_t source_idx,
                        SourceListPtr sources) {
  const TargetInfo& target = targets_[target_idx];
  if (!sources) {
    // Computed once per target at its first step; carried through the chain
    // so only in-flight targets hold their lists in memory.
    sources = std::make_shared<const std::vector<SpoofedSource>>(
        selector_.sources_for(target.addr, target.asn));
  }
  if (source_idx >= sources->size()) return;

  send_spoofed(target, (*sources)[source_idx].addr, QueryMode::kInitial);

  if (source_idx + 1 < sources->size()) {
    vantage_.network().loop().schedule_in(
        config_.per_query_spacing, [this, target_idx, source_idx, sources] {
          probe_step(target_idx, source_idx + 1, sources);
        });
  }
}

}  // namespace cd::scanner
