// Spoofed-source address selection (paper §3.2).
//
// For each target the scanner probes with up to 101 spoofed sources across
// five categories: other-prefix (<=97 addresses, one per other /24 or /64 of
// the target's AS, IPv6 biased toward hitlist-active /64s), same-prefix,
// private/unique-local, destination-as-source, and loopback.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ip.h"
#include "sim/topology.h"
#include "util/rng.h"

namespace cd::scanner {

enum class SourceCategory : std::uint8_t {
  kOtherPrefix = 0,
  kSamePrefix = 1,
  kPrivate = 2,
  kDstAsSrc = 3,
  kLoopback = 4,
};
constexpr int kSourceCategoryCount = 5;

[[nodiscard]] std::string source_category_name(SourceCategory category);

struct SpoofedSource {
  cd::net::IpAddr addr;
  SourceCategory category = SourceCategory::kOtherPrefix;

  friend bool operator==(const SpoofedSource&, const SpoofedSource&) = default;
};

struct SourceSelectConfig {
  std::size_t max_other_prefixes = 97;
  /// IPv6 in-prefix host selection: first `v6_window` addresses of the /64,
  /// excluding the first `v6_skip` (router addresses).
  std::uint64_t v6_window = 100;
  std::uint64_t v6_skip = 2;
  bool prefer_hitlist = true;
};

class SourceSelector {
 public:
  /// `hitlist_v6` may be empty; entries bias v6 other-prefix selection
  /// toward /64s with observed activity.
  SourceSelector(const cd::sim::Topology& topology,
                 std::vector<cd::net::IpAddr> hitlist_v6,
                 SourceSelectConfig config, cd::Rng rng);

  /// Spoofed sources for one target, in probe order. `asn` must be the
  /// target's origin AS. Deterministic given the constructor seed and
  /// arguments.
  [[nodiscard]] std::vector<SpoofedSource> sources_for(
      const cd::net::IpAddr& target, cd::sim::Asn asn);

 private:
  [[nodiscard]] std::vector<cd::net::IpAddr> other_prefix_v4(
      const cd::net::IpAddr& target, cd::sim::Asn asn, cd::Rng& rng);
  [[nodiscard]] std::vector<cd::net::IpAddr> other_prefix_v6(
      const cd::net::IpAddr& target, cd::sim::Asn asn, cd::Rng& rng);
  [[nodiscard]] cd::net::IpAddr pick_v4_host(const cd::net::Prefix& p24,
                                             cd::Rng& rng) const;
  [[nodiscard]] cd::net::IpAddr pick_v6_host(const cd::net::Prefix& p64,
                                             cd::Rng& rng) const;

  const cd::sim::Topology& topology_;
  SourceSelectConfig config_;
  std::uint64_t seed_;  // per-target generators derive from this, stateless
  // hitlist /64 bases grouped by ASN for fast preference lookup
  std::unordered_map<cd::sim::Asn, std::vector<cd::net::Prefix>> hitlist_by_asn_;
};

}  // namespace cd::scanner
