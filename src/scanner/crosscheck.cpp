#include "scanner/crosscheck.h"

#include "dns/message.h"
#include "net/packet.h"
#include "util/error.h"

namespace cd::scanner {

using cd::net::IpAddr;
using cd::net::Packet;
using cd::net::Prefix;

CrossCheckProber::CrossCheckProber(cd::sim::Host& vantage, QnameCodec codec,
                                   CrossCheckConfig config, cd::Rng rng)
    : vantage_(vantage),
      codec_(std::move(codec)),
      config_(config),
      seed_(rng.u64()) {
  CD_ENSURE(config_.host_lo >= 1 && config_.host_lo < config_.host_hi &&
                config_.host_hi <= 255,
            "CrossCheckProber: host window must lie within [1, 255)");
  CD_ENSURE(config_.resolver_offset >= 1 && config_.resolver_offset < 254,
            "CrossCheckProber: resolver offset outside the /24 host range");
}

void CrossCheckProber::schedule_campaign(std::vector<PrefixTarget> prefixes) {
  prefixes_ = std::move(prefixes);
  auto& loop = vantage_.network().loop();
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    CD_ENSURE(prefixes_[i].prefix.length() == 24 &&
                  prefixes_[i].prefix.base().is_v4(),
              "CrossCheckProber: prefix targets must be IPv4 /24s");
    // The chain's whole random budget — start stagger, then one (sport, id)
    // pair per probe — comes from a substream keyed on the prefix base and
    // rides inside the chain's closures: a pure function of (seed, prefix)
    // with no shared per-prefix state left behind.
    cd::Rng rng = cd::Rng::substream(
        seed_, cd::net::IpAddrHash{}(prefixes_[i].prefix.base()));
    const cd::sim::SimTime start =
        config_.start_delay +
        static_cast<cd::sim::SimTime>(
            rng.uniform(static_cast<std::uint64_t>(config_.duration)));
    loop.schedule_at(start, [this, i, rng]() mutable {
      probe_step(i, config_.host_lo, rng);
    });
  }
}

void CrossCheckProber::probe_step(std::size_t idx, std::uint32_t offset,
                                  cd::Rng rng) {
  send_probe(prefixes_[idx], offset, rng);
  if (offset + 1 < config_.host_hi) {
    vantage_.network().loop().schedule_in(
        config_.per_query_spacing, [this, idx, offset, rng]() mutable {
          probe_step(idx, offset + 1, rng);
        });
  }
}

void CrossCheckProber::send_probe(const PrefixTarget& pt, std::uint32_t offset,
                                  cd::Rng& rng) {
  const IpAddr dst = pt.prefix.nth(offset);
  const std::uint32_t src_offset = offset == config_.resolver_offset
                                       ? config_.resolver_offset + 1
                                       : config_.resolver_offset;
  const IpAddr src = pt.prefix.nth(src_offset);

  QnameInfo info;
  info.ts = vantage_.network().loop().now();
  info.src = src;
  info.dst = dst;
  info.asn = pt.asn;
  info.mode = QueryMode::kCrossCheck;

  const std::uint16_t sport =
      static_cast<std::uint16_t>(1024 + rng.uniform(64512));
  const cd::dns::DnsMessage query =
      cd::dns::make_query(static_cast<std::uint16_t>(rng.u64()),
                         codec_.encode(info), cd::dns::RrType::kA,
                         /*rd=*/true);

  Packet pkt =
      cd::net::make_udp(src, sport, dst, 53, cd::dns::encode_pooled(query));
  // Injected at the vantage's AS, like every spoofed probe: the forged
  // packet still physically leaves our network, and only the *target*
  // border's inbound filtering decides its fate.
  vantage_.network().send(std::move(pkt), vantage_.asn());
  ++sent_;
}

CrossCheckCollector::CrossCheckCollector(QnameCodec codec,
                                         cd::sim::SimTime lifetime_threshold)
    : codec_(std::move(codec)), lifetime_threshold_(lifetime_threshold) {}

void CrossCheckCollector::attach(cd::resolver::AuthServer& server) {
  server.add_observer(
      [this](const cd::resolver::AuthLogEntry& entry) { observe(entry); });
}

void CrossCheckCollector::observe(const cd::resolver::AuthLogEntry& entry) {
  ++stats_.entries_seen;

  const QnameCodec::Decoded decoded = codec_.decode(entry.qname);
  if (!decoded.in_experiment) {
    ++stats_.foreign;
    return;
  }
  // Everything that is not provably cross-check plane belongs to the main
  // Collector: probe-plane modes, and minimized names whose mode label was
  // stripped (those still feed the main collector's qmin evidence).
  if (decoded.mode != QueryMode::kCrossCheck) return;

  if (!decoded.full()) {
    // Minimization stripped the dst/src labels below the mode label: the
    // escape is real but unattributable to a /24.
    ++stats_.partial;
    return;
  }
  if (!decoded.dst->is_v4()) return;  // the modality only probes v4 /24s

  if (entry.time - *decoded.ts > lifetime_threshold_) {
    // A human analyst replaying a logged cross-check name hours later
    // (§3.6.3) — not inbound-SAV evidence.
    ++stats_.excluded_lifetime;
    return;
  }

  const IpAddr base = Prefix(*decoded.dst, 24).base();
  PrefixRecord& rec = records_[base];
  rec.prefix = base;
  rec.asn = *decoded.asn;
  rec.responding.insert(*decoded.dst);
  ++rec.hits;
  if (entry.client == *decoded.dst) {
    rec.direct_seen = true;
  } else {
    rec.forwarded_seen = true;
  }
}

}  // namespace cd::scanner
