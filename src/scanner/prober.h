// The measurement client: sends spoofed-source DNS queries from a vantage
// host in a network without OSAV (the paper's §3.4 requirement).
//
// All probe randomness (schedule jitter, spoofed source ports, DNS ids) is
// drawn from per-target substreams derived from the constructor seed and the
// target address, consumed in the target's own event order. A target's
// probe traffic is therefore a pure function of (seed, target), independent
// of which other targets run alongside it — the property the sharded
// campaign runner (core/parallel.h) relies on for serial/parallel
// equivalence.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "scanner/qname.h"
#include "scanner/source_select.h"
#include "sim/host.h"

namespace cd::scanner {

struct TargetInfo {
  cd::net::IpAddr addr;
  cd::sim::Asn asn = 0;

  friend bool operator==(const TargetInfo&, const TargetInfo&) = default;
};

/// Deterministic shard assignment for a campaign split `num_shards` ways:
/// partitioning is by origin AS, so an AS's whole resolver fleet (including
/// its shared in-AS forwarding upstream) always lands in a single shard.
[[nodiscard]] std::size_t shard_of(cd::sim::Asn asn, std::size_t num_shards);

struct ProbeConfig {
  /// Campaign window over which target start times are staggered.
  cd::sim::SimTime duration = 2 * cd::sim::kHour;
  /// Spacing between consecutive queries to the same target. The paper used
  /// multi-hour spacing to stay polite; in simulation politeness is free, so
  /// the default keeps per-target probes ordered without stretching the run.
  cd::sim::SimTime per_query_spacing = 10 * cd::sim::kSecond;
  cd::sim::SimTime start_delay = cd::sim::kSecond;
};

/// Issues the probe campaign and one-off queries. Spoofed packets are
/// injected directly into the network (the vantage host cannot "own" the
/// forged sources); non-spoofed queries go through the host normally.
class Prober {
 public:
  Prober(cd::sim::Host& vantage, QnameCodec codec, SourceSelector& selector,
         ProbeConfig config, cd::Rng rng);

  Prober(const Prober&) = delete;
  Prober& operator=(const Prober&) = delete;

  /// Schedules spoofed reachability queries for the targets of one shard,
  /// staggered over the campaign window. Each target's start time is drawn
  /// from its own address-keyed substream — a pure function of (seed,
  /// address), independent of the target's index, the list's length, and the
  /// shard layout — so a target probes at the same simulated time whether
  /// `targets` is the full campaign list or just one shard's slice of it.
  /// The default arguments schedule everything (the serial campaign). Call
  /// once; then run the event loop.
  void schedule_campaign(std::vector<TargetInfo> targets,
                         std::size_t shard_index = 0,
                         std::size_t num_shards = 1);

  /// Sends one spoofed-source query to `target` immediately.
  void send_spoofed(const TargetInfo& target, const cd::net::IpAddr& spoofed,
                    QueryMode mode);

  /// Sends one query with the vantage's real source address (the paper's
  /// open-resolver check). No-op if the vantage lacks an address in the
  /// target's family.
  void send_open(const TargetInfo& target);

  /// Sends one DNS-over-TCP query (RFC 7766 framed) from the vantage's real
  /// address via Host::tcp_query — one dial per message on the one-shot
  /// baseline, a reused pipelined session per target with the persistent
  /// transport on. The framed reply folds into the per-target digest map
  /// below (timeouts and empty replies fold nothing, identically on both
  /// paths). No-op if the vantage lacks an address in the target's family.
  void send_transport(const TargetInfo& target, QueryMode mode);

  /// Per-target commutative digest of every framed TCP reply received by
  /// send_transport: sum of mixed hashes, so it is independent of arrival
  /// interleaving but counts duplicates. The transport differential tests
  /// compare these maps across one-shot/persistent and shard layouts.
  [[nodiscard]] const std::map<cd::net::IpAddr, std::uint64_t>&
  transport_replies() const {
    return transport_replies_;
  }

  [[nodiscard]] std::uint64_t queries_sent() const { return sent_; }
  [[nodiscard]] cd::sim::Host& vantage() { return vantage_; }
  [[nodiscard]] const QnameCodec& codec() const { return codec_; }

 private:
  using SourceListPtr = std::shared_ptr<const std::vector<SpoofedSource>>;
  void probe_step(std::size_t target_idx, std::size_t source_idx,
                  SourceListPtr sources);
  void send_query(const cd::net::IpAddr& src, std::uint16_t sport,
                  const TargetInfo& target, QueryMode mode);
  /// The target's private random substream (created on first use).
  [[nodiscard]] cd::Rng& target_rng(const cd::net::IpAddr& addr);

  cd::sim::Host& vantage_;
  QnameCodec codec_;
  SourceSelector& selector_;
  ProbeConfig config_;
  std::uint64_t seed_;  // per-target substreams derive from this
  std::unordered_map<cd::net::IpAddr, cd::Rng, cd::net::IpAddrHash>
      target_rngs_;
  std::vector<TargetInfo> targets_;
  std::uint64_t sent_ = 0;
  std::map<cd::net::IpAddr, std::uint64_t> transport_replies_;
};

}  // namespace cd::scanner
