#include "scanner/analyst.h"

#include "net/packet.h"
#include "util/error.h"

namespace cd::scanner {

using cd::net::IpAddr;
using cd::net::Packet;

AnalystSimulator::AnalystSimulator(cd::sim::Network& network,
                                   std::set<cd::sim::Asn> ids_asns,
                                   IpAddr public_resolver,
                                   AnalystConfig config, cd::Rng rng)
    : network_(network),
      ids_asns_(std::move(ids_asns)),
      public_resolver_(public_resolver),
      config_(config),
      seed_(rng.u64()) {
  network_.add_tap([this](const Packet& pkt, cd::sim::DropReason,
                          cd::sim::SimTime) { maybe_replay(pkt); });
}

void AnalystSimulator::maybe_replay(const Packet& packet) {
  if (replays_ >= config_.max_replays) return;
  if (packet.proto != cd::net::IpProto::kUdp || packet.dst_port != 53) return;

  // The IDS sits at the border: it sees the probe whether or not the border
  // later drops it, as long as it is destined into a monitored AS.
  const auto dst_asn = network_.topology().asn_of(packet.dst);
  if (!dst_asn || !ids_asns_.count(*dst_asn)) return;

  // The analyst's curiosity about one logged probe is a pure function of
  // (seed, packet): src/dst discriminate a probe from its own replay (same
  // qname, different addresses), the payload hash discriminates probes
  // between the same endpoints (each embeds a distinct timestamped qname).
  std::uint64_t h = cd::hash_combine(seed_,
                                     cd::net::IpAddrHash{}(packet.src));
  h = cd::hash_combine(h, cd::net::IpAddrHash{}(packet.dst));
  if (!packet.payload.empty()) {
    h = cd::hash_combine(
        h, cd::stable_hash(std::string_view(
               reinterpret_cast<const char*>(packet.payload.data()),
               packet.payload.size())));
  }
  cd::Rng decision = cd::Rng::substream(seed_, h);
  if (!decision.chance(config_.replay_probability)) return;

  cd::dns::DnsMessage query;
  try {
    query = cd::dns::DnsMessage::decode(packet.payload);
  } catch (const cd::ParseError&) {
    return;
  }
  if (query.header.qr || query.questions.empty()) return;

  ++replays_;
  const cd::sim::SimTime delay =
      config_.min_delay +
      static_cast<cd::sim::SimTime>(
          decision.uniform(static_cast<std::uint64_t>(
              config_.max_delay - config_.min_delay)));

  // The analyst's workstation: some address inside the logging AS, same
  // family as the public resolver it queries.
  const auto* as_info = network_.topology().find(*dst_asn);
  if (!as_info) return;
  const auto& prefixes = public_resolver_.is_v4() ? as_info->prefixes_v4
                                                  : as_info->prefixes_v6;
  if (prefixes.empty()) return;
  const IpAddr workstation = prefixes.front().nth(200);

  const cd::dns::DnsName qname = query.qname();
  const cd::sim::Asn asn = *dst_asn;
  const auto txid = static_cast<std::uint16_t>(decision.u64());
  const auto sport =
      static_cast<std::uint16_t>(1024 + decision.uniform(64512));
  network_.loop().schedule_in(
      delay, [this, qname, workstation, asn, txid, sport] {
        const cd::dns::DnsMessage q =
            cd::dns::make_query(txid, qname, cd::dns::RrType::kA, /*rd=*/true);
        Packet pkt = cd::net::make_udp(workstation, sport, public_resolver_,
                                       53, cd::dns::encode_pooled(q));
        network_.send(std::move(pkt), asn);
      });
}

}  // namespace cd::scanner
