#include "scanner/analyst.h"

#include "net/packet.h"
#include "util/error.h"

namespace cd::scanner {

using cd::net::IpAddr;
using cd::net::Packet;

AnalystSimulator::AnalystSimulator(cd::sim::Network& network,
                                   std::set<cd::sim::Asn> ids_asns,
                                   IpAddr public_resolver,
                                   AnalystConfig config, cd::Rng rng)
    : network_(network),
      ids_asns_(std::move(ids_asns)),
      public_resolver_(public_resolver),
      config_(config),
      rng_(rng) {
  network_.add_tap([this](const Packet& pkt, cd::sim::DropReason,
                          cd::sim::SimTime) { maybe_replay(pkt); });
}

void AnalystSimulator::maybe_replay(const Packet& packet) {
  if (replays_ >= config_.max_replays) return;
  if (packet.proto != cd::net::IpProto::kUdp || packet.dst_port != 53) return;

  // The IDS sits at the border: it sees the probe whether or not the border
  // later drops it, as long as it is destined into a monitored AS.
  const auto dst_asn = network_.topology().asn_of(packet.dst);
  if (!dst_asn || !ids_asns_.count(*dst_asn)) return;
  if (!rng_.chance(config_.replay_probability)) return;

  cd::dns::DnsMessage query;
  try {
    query = cd::dns::DnsMessage::decode(packet.payload);
  } catch (const cd::ParseError&) {
    return;
  }
  if (query.header.qr || query.questions.empty()) return;

  ++replays_;
  const cd::sim::SimTime delay =
      config_.min_delay +
      static_cast<cd::sim::SimTime>(
          rng_.uniform(static_cast<std::uint64_t>(
              config_.max_delay - config_.min_delay)));

  // The analyst's workstation: some address inside the logging AS, same
  // family as the public resolver it queries.
  const auto* as_info = network_.topology().find(*dst_asn);
  if (!as_info) return;
  const auto& prefixes = public_resolver_.is_v4() ? as_info->prefixes_v4
                                                  : as_info->prefixes_v6;
  if (prefixes.empty()) return;
  const IpAddr workstation = prefixes.front().nth(200);

  const cd::dns::DnsName qname = query.qname();
  const cd::sim::Asn asn = *dst_asn;
  network_.loop().schedule_in(delay, [this, qname, workstation, asn] {
    const cd::dns::DnsMessage q = cd::dns::make_query(
        static_cast<std::uint16_t>(rng_.u64()), qname, cd::dns::RrType::kA,
        /*rd=*/true);
    Packet pkt = cd::net::make_udp(
        workstation, static_cast<std::uint16_t>(1024 + rng_.uniform(64512)),
        public_resolver_, 53, q.encode());
    network_.send(std::move(pkt), asn);
  });
}

}  // namespace cd::scanner
