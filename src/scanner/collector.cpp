#include "scanner/collector.h"

#include "net/special.h"

namespace cd::scanner {

using cd::net::IpAddr;
using cd::net::Prefix;

SourceCategory categorize_source(const IpAddr& src, const IpAddr& dst) {
  if (src == dst) return SourceCategory::kDstAsSrc;
  if (cd::net::is_loopback(src)) return SourceCategory::kLoopback;
  if (cd::net::is_private_v4(src) || cd::net::is_unique_local_v6(src)) {
    return SourceCategory::kPrivate;
  }
  if (src.family() == dst.family()) {
    const int len = src.is_v4() ? 24 : 64;
    if (Prefix(dst, len).contains(src)) return SourceCategory::kSamePrefix;
  }
  return SourceCategory::kOtherPrefix;
}

Collector::Collector(QnameCodec codec, CollectorConfig config,
                     const cd::sim::Topology* topology)
    : codec_(std::move(codec)), config_(config), topology_(topology) {}

void Collector::attach(cd::resolver::AuthServer& server) {
  server.add_observer(
      [this](const cd::resolver::AuthLogEntry& entry) { observe(entry); });
}

void Collector::set_first_hit_handler(FirstHitHandler handler) {
  first_hit_ = std::move(handler);
}

void Collector::observe(const cd::resolver::AuthLogEntry& entry) {
  ++stats_.entries_seen;

  const QnameCodec::Decoded decoded = codec_.decode(entry.qname);
  if (!decoded.in_experiment) {
    ++stats_.foreign;
    return;
  }

  if (decoded.mode == QueryMode::kCrossCheck) {
    // Prefix-scanner plane (scanner/crosscheck.h): CrossCheckCollector owns
    // it. Skipped before the lifetime filter so replayed cross-check names
    // cannot pollute lifetime_excluded_targets. Minimized cross-check names
    // lack the mode label and correctly fall through to the qmin path.
    return;
  }
  if (decoded.mode == QueryMode::kPoison) {
    // Attacker plane (attack/poison.h): the SpoofInjector observes its own
    // trigger traffic at the anycast sites; the measurement collector must
    // not count it as probe evidence. The "poison" subzone tag survives
    // QNAME minimization, so even minimized names carry the mode and are
    // excluded here.
    return;
  }

  if (!decoded.full()) {
    // QNAME minimization stripped the attribution labels (§3.6.4): we cannot
    // tell which target or spoofed source induced this, but the client's AS
    // is still evidence that our spoofed packet penetrated *some* border.
    ++stats_.qmin_partial;
    if (topology_) {
      if (const auto asn = topology_->asn_of(entry.client)) {
        qmin_asns_.insert(*asn);
      }
    }
    return;
  }

  const cd::sim::SimTime lifetime = entry.time - *decoded.ts;
  if (lifetime > config_.lifetime_threshold) {
    // Too old to be machine resolution: a human analyst replaying a logged
    // name (§3.6.3). Not trustworthy DSAV evidence.
    ++stats_.excluded_lifetime;
    lifetime_excluded_.insert(*decoded.dst);
    return;
  }

  TargetRecord& rec = records_[*decoded.dst];
  if (rec.first_hit_time < 0 && rec.sources_hit.empty()) {
    rec.target = *decoded.dst;
    rec.asn = *decoded.asn;
  }

  const bool direct = entry.client == *decoded.dst;
  const QueryMode mode = decoded.mode.value_or(QueryMode::kInitial);

  // §5.4 forwarding comparison: only the family-forced follow-ups are
  // conclusive. A dual-stack resolver legitimately answers a v6 target's
  // query from its v4 address — that is transport choice, not forwarding —
  // so the v4-only (v6-only) queries are compared only for v4 (v6) targets.
  const bool family_conclusive =
      ((mode == QueryMode::kV4Only && decoded.dst->is_v4()) ||
       (mode == QueryMode::kV6Only && decoded.dst->is_v6())) &&
      entry.client.family() == decoded.dst->family();
  if (family_conclusive) {
    if (direct) {
      rec.direct_seen = true;
    } else {
      rec.forwarded_seen = true;
      rec.forwarders_seen.insert(entry.client);
    }
  }
  if (topology_) {
    const auto client_asn = topology_->asn_of(entry.client);
    if (client_asn && *client_asn == rec.asn) rec.client_in_target_as = true;
  }

  switch (mode) {
    case QueryMode::kInitial: {
      rec.sources_hit.insert(*decoded.src);
      rec.categories_hit.insert(categorize_source(*decoded.src, *decoded.dst));
      if (rec.first_hit_time < 0) {
        rec.first_hit_time = entry.time;
        rec.first_hit_source = *decoded.src;
        if (first_hit_) first_hit_(rec, *decoded.src);
      }
      break;
    }
    case QueryMode::kV4Only:
      if (direct && !entry.tcp) rec.ports_v4.push_back(entry.client_port);
      break;
    case QueryMode::kV6Only:
      if (direct && !entry.tcp) rec.ports_v6.push_back(entry.client_port);
      break;
    case QueryMode::kTcp:
      if (entry.tcp && direct) {
        rec.tcp_hit = true;
        if (!rec.tcp_syn) rec.tcp_syn = entry.syn;
      }
      break;
    case QueryMode::kOpen:
      rec.open_hit = true;
      break;
    case QueryMode::kCrossCheck:
      break;  // unreachable: filtered out above
  }
}

}  // namespace cd::scanner
