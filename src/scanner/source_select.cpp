#include "scanner/source_select.h"

#include <algorithm>

#include "util/error.h"

namespace cd::scanner {

using cd::net::IpAddr;
using cd::net::IpFamily;
using cd::net::Prefix;

std::string source_category_name(SourceCategory category) {
  switch (category) {
    case SourceCategory::kOtherPrefix: return "Other Prefix";
    case SourceCategory::kSamePrefix: return "Same Prefix";
    case SourceCategory::kPrivate: return "Private";
    case SourceCategory::kDstAsSrc: return "Dst-as-Src";
    case SourceCategory::kLoopback: return "Loopback";
  }
  return "?";
}

SourceSelector::SourceSelector(const cd::sim::Topology& topology,
                               std::vector<IpAddr> hitlist_v6,
                               SourceSelectConfig config, cd::Rng rng)
    : topology_(topology), config_(config), seed_(rng.u64()) {
  for (const IpAddr& addr : hitlist_v6) {
    if (!addr.is_v6()) continue;
    const auto asn = topology_.asn_of(addr);
    if (!asn) continue;
    const Prefix p64(addr, 64);
    auto& list = hitlist_by_asn_[*asn];
    if (std::find(list.begin(), list.end(), p64) == list.end()) {
      list.push_back(p64);
    }
  }
}

IpAddr SourceSelector::pick_v4_host(const Prefix& p24, cd::Rng& rng) const {
  // Skip network (.0) and broadcast (.255).
  const std::uint64_t offset = 1 + rng.uniform(254);
  return p24.nth(offset);
}

IpAddr SourceSelector::pick_v6_host(const Prefix& p64, cd::Rng& rng) const {
  const std::uint64_t window = config_.v6_window - config_.v6_skip;
  const std::uint64_t offset = config_.v6_skip + rng.uniform(window);
  return p64.nth(offset);
}

std::vector<IpAddr> SourceSelector::other_prefix_v4(const IpAddr& target,
                                                    cd::sim::Asn asn,
                                                    cd::Rng& rng) {
  const auto& prefixes = topology_.prefixes_of(asn, IpFamily::kV4);
  const Prefix target_p24(target, 24);

  // Total /24 population across announcements.
  std::uint64_t total = 0;
  std::vector<std::uint64_t> counts;
  counts.reserve(prefixes.size());
  for (const Prefix& p : prefixes) {
    const std::uint64_t c = p.length() <= 24 ? p.count_subprefixes(24) : 1;
    counts.push_back(c);
    total += c;
  }
  if (total == 0) return {};

  std::vector<IpAddr> out;
  std::unordered_set<cd::net::U128, cd::net::U128Hash> seen_bases;

  if (total <= 4 * config_.max_other_prefixes) {
    // Small AS: enumerate every /24, drop the target's own, sample.
    std::vector<Prefix> all;
    for (const Prefix& p : prefixes) {
      if (p.length() <= 24) {
        const auto subs = p.subdivide(24, static_cast<std::size_t>(total));
        all.insert(all.end(), subs.begin(), subs.end());
      } else {
        all.emplace_back(p.base(), 24);
      }
    }
    std::erase_if(all, [&](const Prefix& p) {
      return p.contains(target) || seen_bases.count(p.base().bits()) ||
             (seen_bases.insert(p.base().bits()), false);
    });
    rng.shuffle(all);
    if (all.size() > config_.max_other_prefixes) {
      all.resize(config_.max_other_prefixes);
    }
    for (const Prefix& p : all) out.push_back(pick_v4_host(p, rng));
    return out;
  }

  // Large AS: weighted random /24 draws with rejection of duplicates and of
  // the target's own /24.
  const std::size_t want = config_.max_other_prefixes;
  const std::size_t max_attempts = want * 8;
  for (std::size_t attempt = 0; attempt < max_attempts && out.size() < want;
       ++attempt) {
    std::uint64_t pick = rng.uniform(total);
    std::size_t i = 0;
    while (pick >= counts[i]) {
      pick -= counts[i];
      ++i;
    }
    const Prefix& announced = prefixes[i];
    // pick-th /24 inside the announcement (a /24 spans 256 addresses).
    const Prefix p24 = announced.length() <= 24
                           ? Prefix(announced.base().offset_by(pick << 8), 24)
                           : Prefix(announced.base(), 24);
    if (p24.contains(target)) continue;
    if (!seen_bases.insert(p24.base().bits()).second) continue;
    out.push_back(pick_v4_host(p24, rng));
  }
  return out;
}

std::vector<IpAddr> SourceSelector::other_prefix_v6(const IpAddr& target,
                                                    cd::sim::Asn asn,
                                                    cd::Rng& rng) {
  const auto& prefixes = topology_.prefixes_of(asn, IpFamily::kV6);
  const Prefix target_p64(target, 64);

  std::vector<IpAddr> out;
  std::unordered_set<cd::net::U128, cd::net::U128Hash> seen_bases;
  const std::size_t want = config_.max_other_prefixes;

  // Preference pass: hitlist-active /64s in this AS (observed activity).
  if (config_.prefer_hitlist) {
    const auto it = hitlist_by_asn_.find(asn);
    if (it != hitlist_by_asn_.end()) {
      std::vector<Prefix> active = it->second;
      rng.shuffle(active);
      for (const Prefix& p64 : active) {
        if (out.size() >= want) break;
        if (p64 == target_p64) continue;
        if (!seen_bases.insert(p64.base().bits()).second) continue;
        out.push_back(pick_v6_host(p64, rng));
      }
    }
  }

  // Fill the remainder with random /64s from the AS's announcements.
  if (prefixes.empty()) return out;
  const std::size_t max_attempts = want * 8;
  for (std::size_t attempt = 0; attempt < max_attempts && out.size() < want;
       ++attempt) {
    const Prefix& announced =
        prefixes[static_cast<std::size_t>(rng.uniform(prefixes.size()))];
    Prefix p64 = Prefix(announced.base(), 64);
    if (announced.length() < 64) {
      // pick-th /64 inside the announcement: the /64 index occupies the
      // high half of the 128-bit address.
      const std::uint64_t count = announced.count_subprefixes(64);
      const std::uint64_t pick = rng.uniform(count);
      const cd::net::U128 step = cd::net::U128{pick} << 64;
      p64 = Prefix(cd::net::IpAddr::from_bits(announced.base().family(),
                                              announced.base().bits() + step),
                   64);
    }
    if (p64 == target_p64) continue;
    if (!seen_bases.insert(p64.base().bits()).second) continue;
    out.push_back(pick_v6_host(p64, rng));
  }
  return out;
}

std::vector<SpoofedSource> SourceSelector::sources_for(const IpAddr& target,
                                                       cd::sim::Asn asn) {
  // Derive a per-target generator from the fixed seed so selection is a
  // pure function of (seed, target), independent of call order.
  std::uint64_t mix = seed_ ^ (0x9E3779B97F4A7C15ULL *
                               static_cast<std::uint64_t>(
                                   cd::net::IpAddrHash{}(target)));
  cd::Rng rng(mix);

  std::vector<SpoofedSource> out;
  const bool v4 = target.is_v4();

  // Other-prefix (up to 97).
  const auto others =
      v4 ? other_prefix_v4(target, asn, rng) : other_prefix_v6(target, asn, rng);
  for (const IpAddr& addr : others) {
    out.push_back({addr, SourceCategory::kOtherPrefix});
  }

  // Same-prefix: an address in the target's own /24 or /64, distinct from
  // the target.
  {
    const Prefix same = v4 ? Prefix(target, 24) : Prefix(target, 64);
    for (int attempt = 0; attempt < 16; ++attempt) {
      const IpAddr candidate =
          v4 ? pick_v4_host(same, rng) : pick_v6_host(same, rng);
      if (!(candidate == target)) {
        out.push_back({candidate, SourceCategory::kSamePrefix});
        break;
      }
    }
  }

  // Private / unique-local.
  out.push_back({v4 ? IpAddr::must_parse("192.168.0.10")
                    : IpAddr::must_parse("fc00::10"),
                 SourceCategory::kPrivate});

  // Destination-as-source.
  out.push_back({target, SourceCategory::kDstAsSrc});

  // Loopback.
  out.push_back({v4 ? IpAddr::must_parse("127.0.0.1")
                    : IpAddr::must_parse("::1"),
                 SourceCategory::kLoopback});

  return out;
}

}  // namespace cd::scanner
