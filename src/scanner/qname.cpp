#include "scanner/qname.h"

#include "util/error.h"
#include "util/str.h"

namespace cd::scanner {

using cd::dns::DnsName;
using cd::net::IpAddr;

std::string query_mode_name(QueryMode mode) {
  switch (mode) {
    case QueryMode::kInitial: return "initial";
    case QueryMode::kV4Only: return "v4-only";
    case QueryMode::kV6Only: return "v6-only";
    case QueryMode::kTcp: return "tcp";
    case QueryMode::kOpen: return "open";
    case QueryMode::kCrossCheck: return "crosscheck";
    case QueryMode::kPoison: return "poison";
  }
  return "?";
}

namespace {

std::optional<std::string> subzone_tag(QueryMode mode) {
  switch (mode) {
    case QueryMode::kV4Only: return "v4";
    case QueryMode::kV6Only: return "v6";
    case QueryMode::kTcp: return "tcp";
    case QueryMode::kPoison: return "poison";
    case QueryMode::kInitial:
    case QueryMode::kOpen:
    case QueryMode::kCrossCheck: return std::nullopt;
  }
  return std::nullopt;
}

std::optional<QueryMode> parse_mode_label(const std::string& label) {
  if (label.size() != 2 || label[0] != 'm') return std::nullopt;
  switch (label[1]) {
    case '0': return QueryMode::kInitial;
    case '1': return QueryMode::kV4Only;
    case '2': return QueryMode::kV6Only;
    case '3': return QueryMode::kTcp;
    case '4': return QueryMode::kOpen;
    case '5': return QueryMode::kCrossCheck;
    case '6': return QueryMode::kPoison;
    default: return std::nullopt;
  }
}

}  // namespace

QnameCodec::QnameCodec(DnsName base, std::string kw)
    : base_(std::move(base)), kw_(cd::to_lower(kw)) {
  CD_ENSURE(!kw_.empty(), "QnameCodec: empty keyword");
  CD_ENSURE(kw_ != "v4" && kw_ != "v6" && kw_ != "tcp" && kw_ != "poison",
            "QnameCodec: keyword collides with subzone tag");
}

DnsName QnameCodec::zone_apex(QueryMode mode) const {
  const auto tag = subzone_tag(mode);
  return tag ? base_.prepend(*tag) : base_;
}

std::string QnameCodec::encode_addr(const IpAddr& addr) {
  if (addr.is_v4()) return cd::to_hex(addr.v4_bits(), 8);
  return cd::to_hex(addr.bits().hi, 16) + cd::to_hex(addr.bits().lo, 16);
}

std::optional<IpAddr> QnameCodec::decode_addr(const std::string& label) {
  if (label.size() == 8) {
    const auto bits = cd::parse_hex_u64(label);
    if (!bits) return std::nullopt;
    return IpAddr::v4(static_cast<std::uint32_t>(*bits));
  }
  if (label.size() == 32) {
    const auto hi = cd::parse_hex_u64(label.substr(0, 16));
    const auto lo = cd::parse_hex_u64(label.substr(16));
    if (!hi || !lo) return std::nullopt;
    return IpAddr::v6(*hi, *lo);
  }
  return std::nullopt;
}

DnsName QnameCodec::encode(const QnameInfo& info) const {
  DnsName name = zone_apex(info.mode)
                     .prepend(kw_)
                     .prepend("m" + std::to_string(static_cast<int>(info.mode)))
                     .prepend(std::to_string(info.asn))
                     .prepend(encode_addr(info.dst))
                     .prepend(encode_addr(info.src))
                     .prepend(std::to_string(info.ts));
  return name;
}

QnameCodec::Decoded QnameCodec::decode(const DnsName& qname) const {
  Decoded out;
  if (!qname.is_subdomain_of(base_)) return out;

  // Peel labels right-to-left above the base.
  const auto& labels = qname.labels();
  std::size_t remaining = labels.size() - base_.label_count();
  auto peek = [&](std::size_t from_right) -> const std::string* {
    if (from_right >= remaining) return nullptr;
    return &labels[remaining - 1 - from_right];
  };

  std::size_t idx = 0;

  // Optional subzone tag.
  std::optional<QueryMode> zone_mode;
  if (const std::string* l = peek(idx)) {
    if (cd::iequals(*l, "v4")) zone_mode = QueryMode::kV4Only;
    if (cd::iequals(*l, "v6")) zone_mode = QueryMode::kV6Only;
    if (cd::iequals(*l, "tcp")) zone_mode = QueryMode::kTcp;
    if (cd::iequals(*l, "poison")) zone_mode = QueryMode::kPoison;
    if (zone_mode) ++idx;
  }

  // Keyword.
  const std::string* kw = peek(idx);
  if (!kw || !cd::iequals(*kw, kw_)) return out;
  out.in_experiment = true;
  out.mode = zone_mode;
  ++idx;

  // Mode label.
  if (const std::string* l = peek(idx)) {
    const auto mode = parse_mode_label(*l);
    if (!mode) return out;
    if (zone_mode && *zone_mode != *mode) return out;  // inconsistent name
    out.mode = mode;
    ++idx;
  } else {
    return out;
  }

  // ASN.
  if (const std::string* l = peek(idx)) {
    const auto asn = cd::parse_u64(*l);
    if (!asn || *asn > UINT32_MAX) return out;
    out.asn = static_cast<cd::sim::Asn>(*asn);
    ++idx;
  } else {
    return out;
  }

  // dst, then src.
  if (const std::string* l = peek(idx)) {
    out.dst = decode_addr(*l);
    if (!out.dst) return out;
    ++idx;
  } else {
    return out;
  }
  if (const std::string* l = peek(idx)) {
    out.src = decode_addr(*l);
    if (!out.src) return out;
    ++idx;
  } else {
    return out;
  }

  // Timestamp.
  if (const std::string* l = peek(idx)) {
    const auto ts = cd::parse_u64(*l);
    if (!ts) return out;
    out.ts = static_cast<cd::sim::SimTime>(*ts);
  }
  return out;
}

}  // namespace cd::scanner
