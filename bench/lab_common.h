// Controlled-lab harness (paper §5.3.2/§5.3.3): a minimal simulated network
// with one authoritative server acting as the root, plus resolver instances
// under test. Issues unique queries and returns the source ports observed at
// the authoritative side — the paper's lab procedure.
#pragma once

#include <memory>
#include <vector>

#include "dns/zone.h"
#include "resolver/auth.h"
#include "resolver/recursive.h"
#include "sim/host.h"

namespace cd::bench {

/// Runs `n_instances` resolvers of the given software/OS combination, each
/// issuing `queries_per_instance` uniquely-named resolutions, and returns
/// the per-instance source-port sequences observed at the lab authoritative
/// server.
inline std::vector<std::vector<std::uint16_t>> lab_collect_ports(
    cd::resolver::DnsSoftware software, cd::sim::OsId os_id, int n_instances,
    int queries_per_instance, std::uint64_t seed) {
  using namespace cd;

  sim::EventLoop loop;
  sim::Topology topology;
  Rng rng(seed);
  sim::Network network(topology, loop, rng.split("net"));

  topology.add_as(1, sim::FilterPolicy{});
  topology.announce(1, net::Prefix::must_parse("50.0.0.0/16"));
  topology.announce(1, net::Prefix::must_parse("2620:50::/32"));

  const auto auth_v4 = net::IpAddr::must_parse("50.0.0.1");
  const auto auth_v6 = net::IpAddr::must_parse("2620:50::1");
  sim::Host auth_host(network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
                      {auth_v4, auth_v6}, rng.split("auth"), "lab-auth");

  // One zone at the root with a wildcard so every unique query resolves.
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("lab");
  soa.rname = dns::DnsName::must_parse("lab");
  auto zone = std::make_shared<dns::Zone>(dns::DnsName(), soa);
  zone->add(dns::make_a(dns::DnsName::must_parse("*.lab"), auth_v4, 1));
  resolver::AuthServer auth(auth_host);
  auth.add_zone(zone);

  resolver::RootHints hints;
  hints.servers = {auth_v4, auth_v6};

  const sim::OsProfile& os = sim::os_profile(os_id);
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<resolver::RecursiveResolver>> resolvers;
  std::vector<net::IpAddr> addrs;
  for (int i = 0; i < n_instances; ++i) {
    const auto addr = net::IpAddr::v4(0x32000100u + static_cast<unsigned>(i));
    addrs.push_back(addr);
    hosts.push_back(std::make_unique<sim::Host>(
        network, 1, os, std::vector<net::IpAddr>{addr},
        rng.split("host" + std::to_string(i)), "lab-r" + std::to_string(i)));
    resolver::ResolverConfig config;
    config.open = true;
    config.cache.max_ttl = 1;  // the wildcard answer must not mask queries
    resolvers.push_back(std::make_unique<resolver::RecursiveResolver>(
        *hosts.back(), config, hints,
        resolver::make_default_allocator(software, os,
                                         rng.split("alloc" + std::to_string(i))),
        rng.split("res" + std::to_string(i))));
  }

  // Collect ports at the auth, per resolver address.
  std::vector<std::vector<std::uint16_t>> ports(
      static_cast<std::size_t>(n_instances));
  auth.add_observer([&](const resolver::AuthLogEntry& entry) {
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      if (entry.client == addrs[i]) {
        ports[i].push_back(entry.client_port);
        return;
      }
    }
  });

  // Issue uniquely-named queries, spaced so only a handful are in flight.
  for (int i = 0; i < n_instances; ++i) {
    auto* res = resolvers[static_cast<std::size_t>(i)].get();
    for (int q = 0; q < queries_per_instance; ++q) {
      loop.schedule_at(
          static_cast<sim::SimTime>(q) * 20 * sim::kMillisecond,
          [res, i, q] {
            const auto qname = dns::DnsName::must_parse(
                "q" + std::to_string(q) + ".r" + std::to_string(i) + ".lab");
            res->resolve(qname, dns::RrType::kA,
                         [](dns::Rcode, const std::vector<dns::DnsRr>&) {});
          });
    }
  }
  loop.run(200'000'000);
  return ports;
}

}  // namespace cd::bench
