// Microbenchmarks: wire codecs (DNS messages, names, packets, query-name
// encoding) — the per-packet cost floor of the simulator.
//
// Beyond wall-clock time, every codec benchmark reports:
//   bytes_per_second  — wire throughput (set via SetBytesProcessed)
//   allocs/op         — heap allocations per operation, counted by a global
//                       operator new hook; the pooled variants show what the
//                       thread-local BufferPool saves over fresh vectors.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "dns/message.h"
#include "net/packet.h"
#include "scanner/qname.h"
#include "util/bytes.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace

// Global allocation hook: counts every operator-new call in the process.
// Benchmark loops measure the delta across their iterations, so framework
// setup allocations outside the loop do not pollute allocs/op.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace cd;

dns::DnsMessage sample_response() {
  dns::DnsMessage query = dns::make_query(
      0x1234,
      dns::DnsName::must_parse("1699999999.c0a8000a.c0a80001.64512.m0.x1.dns-lab.org"),
      dns::RrType::kA);
  dns::DnsMessage resp = dns::make_response(query, dns::Rcode::kNxDomain);
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("www.dns-lab.org");
  soa.rname = dns::DnsName::must_parse("research.dns-lab.org");
  resp.authorities.push_back(
      dns::make_soa(dns::DnsName::must_parse("dns-lab.org"), soa));
  return resp;
}

void report_allocs(benchmark::State& state, std::uint64_t since) {
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(alloc_count() - since) /
      static_cast<double>(state.iterations()));
}

void BM_DnsMessageEncode(benchmark::State& state) {
  const dns::DnsMessage msg = sample_response();
  const std::size_t wire_size = msg.encode().size();
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.encode());
  }
  report_allocs(state, a0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire_size));
}
BENCHMARK(BM_DnsMessageEncode);

void BM_DnsMessageEncodePooled(benchmark::State& state) {
  // Steady-state simulator pattern: encode into a pooled buffer, hand it to
  // the network, get the capacity back when the packet dies.
  const dns::DnsMessage msg = sample_response();
  const std::size_t wire_size = dns::encode_pooled(msg).size();
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    std::vector<std::uint8_t> wire = dns::encode_pooled(msg);
    benchmark::DoNotOptimize(wire.data());
    BufferPool::release(std::move(wire));
  }
  report_allocs(state, a0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire_size));
}
BENCHMARK(BM_DnsMessageEncodePooled);

void BM_DnsMessageDecode(benchmark::State& state) {
  const auto wire = sample_response().encode();
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::DnsMessage::decode(wire));
  }
  report_allocs(state, a0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DnsMessageDecode);

void BM_DnsNameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dns::DnsName::parse("a.long.query.name.example.dns-lab.org"));
  }
}
BENCHMARK(BM_DnsNameParse);

void BM_PacketSerializeUdp(benchmark::State& state) {
  const auto payload = sample_response().encode();
  const net::Packet pkt = net::make_udp(
      net::IpAddr::must_parse("192.0.2.1"), 5353,
      net::IpAddr::must_parse("198.51.100.2"), 53, payload);
  const std::size_t wire_size = pkt.serialize().size();
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt.serialize());
  }
  report_allocs(state, a0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire_size));
}
BENCHMARK(BM_PacketSerializeUdp);

void BM_PacketSerializeUdpPooled(benchmark::State& state) {
  const auto payload = sample_response().encode();
  const net::Packet pkt = net::make_udp(
      net::IpAddr::must_parse("192.0.2.1"), 5353,
      net::IpAddr::must_parse("198.51.100.2"), 53, payload);
  const std::size_t wire_size = pkt.serialize().size();
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    std::vector<std::uint8_t> wire = pkt.serialize();
    benchmark::DoNotOptimize(wire.data());
    BufferPool::release(std::move(wire));
  }
  report_allocs(state, a0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire_size));
}
BENCHMARK(BM_PacketSerializeUdpPooled);

void BM_PacketRoundTripTcpSyn(benchmark::State& state) {
  net::Packet pkt = net::make_tcp(net::IpAddr::must_parse("2001:db8::1"),
                                  40000, net::IpAddr::must_parse("2001:db8::2"),
                                  53, net::TcpFlags{.syn = true});
  pkt.tcp_window = 29200;
  pkt.tcp_options = {{net::TcpOptionKind::kMss, 1460},
                     {net::TcpOptionKind::kSackPermitted, 0},
                     {net::TcpOptionKind::kTimestamp, 1},
                     {net::TcpOptionKind::kNop, 0},
                     {net::TcpOptionKind::kWindowScale, 7}};
  const std::size_t wire_size = pkt.serialize().size();
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    std::vector<std::uint8_t> wire = pkt.serialize();
    benchmark::DoNotOptimize(net::Packet::parse(wire));
    BufferPool::release(std::move(wire));
  }
  report_allocs(state, a0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire_size));
}
BENCHMARK(BM_PacketRoundTripTcpSyn);

void BM_QnameEncodeDecode(benchmark::State& state) {
  const scanner::QnameCodec codec(dns::DnsName::must_parse("dns-lab.org"),
                                  "x1");
  scanner::QnameInfo info;
  info.ts = 123456789;
  info.src = net::IpAddr::must_parse("192.0.2.10");
  info.dst = net::IpAddr::must_parse("198.51.100.20");
  info.asn = 64512;
  info.mode = scanner::QueryMode::kV4Only;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(codec.encode(info)));
  }
}
BENCHMARK(BM_QnameEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
