// Microbenchmarks: wire codecs (DNS messages, names, packets, query-name
// encoding) — the per-packet cost floor of the simulator.
#include <benchmark/benchmark.h>

#include "dns/message.h"
#include "net/packet.h"
#include "scanner/qname.h"

namespace {

using namespace cd;

dns::DnsMessage sample_response() {
  dns::DnsMessage query = dns::make_query(
      0x1234,
      dns::DnsName::must_parse("1699999999.c0a8000a.c0a80001.64512.m0.x1.dns-lab.org"),
      dns::RrType::kA);
  dns::DnsMessage resp = dns::make_response(query, dns::Rcode::kNxDomain);
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("www.dns-lab.org");
  soa.rname = dns::DnsName::must_parse("research.dns-lab.org");
  resp.authorities.push_back(
      dns::make_soa(dns::DnsName::must_parse("dns-lab.org"), soa));
  return resp;
}

void BM_DnsMessageEncode(benchmark::State& state) {
  const dns::DnsMessage msg = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.encode());
  }
}
BENCHMARK(BM_DnsMessageEncode);

void BM_DnsMessageDecode(benchmark::State& state) {
  const auto wire = sample_response().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::DnsMessage::decode(wire));
  }
}
BENCHMARK(BM_DnsMessageDecode);

void BM_DnsNameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dns::DnsName::parse("a.long.query.name.example.dns-lab.org"));
  }
}
BENCHMARK(BM_DnsNameParse);

void BM_PacketSerializeUdp(benchmark::State& state) {
  const auto payload = sample_response().encode();
  const net::Packet pkt = net::make_udp(
      net::IpAddr::must_parse("192.0.2.1"), 5353,
      net::IpAddr::must_parse("198.51.100.2"), 53, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt.serialize());
  }
}
BENCHMARK(BM_PacketSerializeUdp);

void BM_PacketRoundTripTcpSyn(benchmark::State& state) {
  net::Packet pkt = net::make_tcp(net::IpAddr::must_parse("2001:db8::1"),
                                  40000, net::IpAddr::must_parse("2001:db8::2"),
                                  53, net::TcpFlags{.syn = true});
  pkt.tcp_window = 29200;
  pkt.tcp_options = {{net::TcpOptionKind::kMss, 1460},
                     {net::TcpOptionKind::kSackPermitted, 0},
                     {net::TcpOptionKind::kTimestamp, 1},
                     {net::TcpOptionKind::kNop, 0},
                     {net::TcpOptionKind::kWindowScale, 7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Packet::parse(pkt.serialize()));
  }
}
BENCHMARK(BM_PacketRoundTripTcpSyn);

void BM_QnameEncodeDecode(benchmark::State& state) {
  const scanner::QnameCodec codec(dns::DnsName::must_parse("dns-lab.org"),
                                  "x1");
  scanner::QnameInfo info;
  info.ts = 123456789;
  info.src = net::IpAddr::must_parse("192.0.2.10");
  info.dst = net::IpAddr::must_parse("198.51.100.20");
  info.asn = 64512;
  info.mode = scanner::QueryMode::kV4Only;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(codec.encode(info)));
  }
}
BENCHMARK(BM_QnameEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
