// Reproduces the paper's §4 headline numbers and the §5.1/§5.4/§3.6.x
// auxiliary statistics:
//   - 4.6% of IPv4 / 6.2% of IPv6 targets reachable; 49% / 50% of ASes
//   - §5.1: 60% closed / 40% open; closed resolver reached in 88% of
//     no-DSAV ASes
//   - §5.4: 53% v4 / 85% v6 direct vs. forwarded
//   - §3.6.4 QNAME-minimization gaps; §3.6.3 lifetime exclusions
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cd;
  std::printf("== headline_dsav: paper §4, §5.1, §5.4, §3.6 ==\n");
  auto run = bench::run_standard_experiment(bench::parse_run_options(argc, argv));
  const auto& results = *run.results;
  const auto& targets = run.world->targets;

  const auto summary = analysis::summarize_dsav(results.records, targets);

  TextTable t({"Metric", "Measured", "Paper"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kRight);
  auto row = [&](const std::string& name, const std::string& measured,
                 const std::string& paper) {
    t.add_row({name, measured, paper});
  };

  row("IPv4 targets queried", with_commas(summary.v4.targets_total),
      "11,204,889");
  row("IPv4 targets reachable",
      bench::count_pct(summary.v4.targets_reachable, summary.v4.targets_total),
      "519,447 (4.6%)");
  row("IPv6 targets queried", with_commas(summary.v6.targets_total), "784,777");
  row("IPv6 targets reachable",
      bench::count_pct(summary.v6.targets_reachable, summary.v6.targets_total),
      "49,008 (6.2%)");
  row("IPv4 ASes", with_commas(summary.v4.asns_total), "53,922");
  row("IPv4 ASes reachable",
      bench::count_pct(summary.v4.asns_reachable, summary.v4.asns_total),
      "26,206 (49%)");
  row("IPv6 ASes", with_commas(summary.v6.asns_total), "7,904");
  row("IPv6 ASes reachable",
      bench::count_pct(summary.v6.asns_reachable, summary.v6.asns_total),
      "3,952 (50%)");
  t.add_rule();

  const auto oc = analysis::open_closed_stats(results.records);
  row("Resolvers classified open",
      bench::count_pct(oc.open, oc.open + oc.closed), "228,208 (40%)");
  row("Resolvers classified closed",
      bench::count_pct(oc.closed, oc.open + oc.closed), "340,247 (60%)");
  row("No-DSAV ASes w/ closed resolver reached",
      bench::count_pct(oc.asns_with_closed, oc.reachable_asns), "88%");
  t.add_rule();

  const auto fwd = analysis::forwarding_stats(results.records);
  row("IPv4 direct", bench::count_pct(fwd.v4.direct, fwd.v4.resolved),
      "269,509 (53%)");
  row("IPv4 forwarded", bench::count_pct(fwd.v4.forwarded, fwd.v4.resolved),
      "240,491 (47%)");
  row("IPv4 both", with_commas(fwd.v4.both), "3,178");
  row("IPv6 direct", bench::count_pct(fwd.v6.direct, fwd.v6.resolved),
      "40,631 (85%)");
  row("IPv6 forwarded", bench::count_pct(fwd.v6.forwarded, fwd.v6.resolved),
      "7,566 (16%)");
  row("IPv6 both", with_commas(fwd.v6.both), "219");
  t.add_rule();

  const auto mb = analysis::middlebox_stats(results.records,
                                            run.world->public_dns_addrs);
  row("IPv4 ASes w/ in-AS client (anti-middlebox)",
      bench::count_pct(mb.v4.with_in_as_client, mb.v4.reachable_asns, 0),
      "86%");
  row("IPv4 remainder via public DNS",
      with_commas(mb.v4.remainder_via_public_dns), "89% of remainder");
  row("IPv4 ASes unexplained",
      bench::count_pct(mb.v4.unexplained, mb.v4.reachable_asns, 0), "2%");
  row("IPv6 ASes w/ in-AS client",
      bench::count_pct(mb.v6.with_in_as_client, mb.v6.reachable_asns, 0),
      "95%");
  t.add_rule();

  row("QNAME-minimized partial queries",
      with_commas(results.collector_stats.qmin_partial), "(see §3.6.4)");
  row("ASNs seen via QNAME-minimized queries",
      with_commas(results.qmin_asns.size()), "2,081");
  row("Queries excluded by 10s lifetime threshold",
      with_commas(results.collector_stats.excluded_lifetime),
      "3,514 addresses affected");
  row("Analyst replays injected", with_commas(results.analyst_replays), "n/a");

  std::printf("%s\n", t.to_string().c_str());

  // Ground-truth validation: measured reachable-AS set vs. planted DSAV.
  std::uint64_t truth_lacking = 0;
  for (const auto& [asn, dsav] : run.world->truth_dsav) {
    if (!dsav) ++truth_lacking;
  }
  std::printf("ground truth: %s of %s edge ASes lack DSAV\n",
              with_commas(truth_lacking).c_str(),
              with_commas(run.world->truth_dsav.size()).c_str());
  return 0;
}
