// Table 6: which OSes deliver destination-as-source and loopback-source
// packets to user space, per IP family — probed directly against each
// simulated network stack, exactly as the paper's lab did.
#include "bench_common.h"
#include "net/packet.h"
#include "sim/host.h"

namespace {

struct Probe {
  bool delivered = false;
};

}  // namespace

int main() {
  using namespace cd;
  std::printf("== table6_os_acceptance: paper Table 6 ==\n");

  TextTable t({"OS", "Kernel", "DS v4", "LB v4", "DS v6", "LB v6",
               "paper row"});

  auto mark = [](bool accepted) { return accepted ? std::string("*") : std::string(""); };

  for (const sim::OsProfile& os : sim::all_os_profiles()) {
    if (os.id == sim::OsId::kBaiduLike || os.id == sim::OsId::kEmbeddedCpe ||
        os.id == sim::OsId::kMiddleboxFronted) {
      continue;  // synthetic stand-ins, not part of the paper's table
    }

    // A fresh single-host network per OS.
    sim::EventLoop loop;
    sim::Topology topology;
    Rng rng(7);
    sim::Network network(topology, loop, rng.split("n"));
    topology.add_as(1, sim::FilterPolicy{});  // no border filtering: pure stack
    topology.announce(1, net::Prefix::must_parse("60.0.0.0/16"));
    topology.announce(1, net::Prefix::must_parse("2620:60::/32"));
    const auto v4 = net::IpAddr::must_parse("60.0.0.1");
    const auto v6 = net::IpAddr::must_parse("2620:60::1");
    sim::Host host(network, 1, os, {v4, v6}, rng.split("h"), "dut");

    bool got[4] = {false, false, false, false};
    host.bind_udp(53, [&](const net::Packet& pkt) {
      if (pkt.src == pkt.dst) {
        got[pkt.src.is_v4() ? 0 : 2] = true;
      } else {
        got[pkt.src.is_v4() ? 1 : 3] = true;
      }
    });

    // Inject the four spoofed probes from outside the AS boundary model
    // (origin AS 1 as well: the stack decision is what is under test).
    network.send(net::make_udp(v4, 1000, v4, 53, {0}), 1);
    network.send(net::make_udp(net::IpAddr::must_parse("127.0.0.1"), 1000, v4,
                               53, {0}),
                 1);
    network.send(net::make_udp(v6, 1000, v6, 53, {0}), 1);
    network.send(net::make_udp(net::IpAddr::must_parse("::1"), 1000, v6, 53,
                               {0}),
                 1);
    loop.run(1000);

    std::string paper;
    switch (os.family) {
      case sim::OsFamily::kLinux:
        paper = (os.accepts_loopback_v6) ? "DS v6 + LB v6" : "DS v6 only";
        break;
      case sim::OsFamily::kFreeBsd:
        paper = "DS v4 + DS v6";
        break;
      case sim::OsFamily::kWindows:
        paper = os.accepts_loopback_v4 ? "DS v4 + LB v4 + DS v6"
                                       : "DS v4 + DS v6";
        break;
      default:
        paper = "-";
    }
    t.add_row({os.name, os.kernel, mark(got[0]), mark(got[1]), mark(got[2]),
               mark(got[3]), paper});
  }
  std::printf("%s\n(* = spoofed packet delivered to the bound UDP service; "
              "probes pass no border filter, isolating the kernel rule)\n",
              t.to_string().c_str());
  return 0;
}
