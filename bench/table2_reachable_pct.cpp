// Table 2: the 10 countries with the highest percentage of target IPs
// reachable by spoofed-source packets.
#include <algorithm>

#include "bench_common.h"
#include "util/csv.h"

int main() {
  using namespace cd;
  std::printf("== table2_reachable_pct: paper Table 2 ==\n");
  auto run = bench::run_standard_experiment();

  auto rows = analysis::dsav_by_country(run.results->records,
                                        run.world->targets, run.world->geo);
  // Rank by reachable-IP percentage, requiring a minimal population so a
  // single lucky resolver cannot top the list.
  std::erase_if(rows, [](const analysis::CountryRow& r) {
    return r.targets_total < 10 || r.country == "Other";
  });
  std::sort(rows.begin(), rows.end(),
            [](const analysis::CountryRow& a, const analysis::CountryRow& b) {
              const double pa = static_cast<double>(a.targets_reachable) /
                                static_cast<double>(a.targets_total);
              const double pb = static_cast<double>(b.targets_reachable) /
                                static_cast<double>(b.targets_total);
              return pa > pb;
            });

  TextTable t({"Country", "ASes total", "ASes reachable", "IP targets",
               "IPs reachable"});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, Align::kRight);

  CsvWriter csv("table2_reachable_pct.csv");
  csv.write_row({"country", "ases_total", "ases_reachable", "targets_total",
                 "targets_reachable"});

  std::size_t shown = 0;
  for (const analysis::CountryRow& row : rows) {
    if (shown++ >= 10) break;
    t.add_row({row.country, with_commas(row.ases_total),
               bench::count_pct(row.ases_reachable, row.ases_total, 0),
               with_commas(row.targets_total),
               bench::count_pct(row.targets_reachable, row.targets_total, 0)});
    csv.write_row({row.country, std::to_string(row.ases_total),
                   std::to_string(row.ases_reachable),
                   std::to_string(row.targets_total),
                   std::to_string(row.targets_reachable)});
  }
  std::printf(
      "%s\n(paper's top rows: Algeria 73%%, Morocco 53%%, Eswatini 44%% of "
      "IPs reachable —\n small, dense, lightly-filtered countries lead; CSV: "
      "table2_reachable_pct.csv)\n",
      t.to_string().c_str());

  // Appendix: per-transport scan cost for the TCP follow-up battery —
  // RFC 7766 one-shot dialing vs persistent pipelined sessions vs DoT-style
  // sessions with a fixed per-connection handshake. Run at a quarter of the
  // table scale: the point is the connection economics, not the rankings.
  std::printf("\n== per-transport scan cost (TCP follow-up battery) ==\n");
  ditl::WorldSpec tspec = ditl::bench_world_spec();
  tspec.n_asns /= 4;

  TextTable tt({"Transport", "Probes", "Dials", "Reuses", "Handshake bytes",
                "Probes/s"});
  for (std::size_t c = 1; c < 6; ++c) tt.set_align(c, Align::kRight);

  struct TransportMode {
    const char* label;
    bool persistent;
    bool dot;
  };
  constexpr TransportMode kModes[] = {{"one-shot", false, false},
                                      {"persistent", true, false},
                                      {"DoT session", true, true}};
  for (const TransportMode& mode : kModes) {
    core::ExperimentConfig tconfig;
    tconfig.analyst = scanner::AnalystConfig{};
    tconfig.followup.transport = scanner::FollowupTransport::kTcp;
    tconfig.persistent_tcp = mode.persistent;
    tconfig.dot_sessions = mode.dot;
    core::ShardedResults out = core::run_sharded_experiment(tspec, tconfig);
    const sim::TransportCounters& tc = out.merged.transport;
    const double pps =
        out.wall_ms > 0 ? 1000.0 * (double)out.merged.queries_sent / out.wall_ms
                        : 0.0;
    tt.add_row({mode.label, with_commas(out.merged.queries_sent),
                with_commas(tc.dials), with_commas(tc.session_reuses),
                with_commas(tc.handshake_bytes),
                std::to_string((long long)pps)});
  }
  std::printf(
      "%s\n(one TCP session per target carries the whole 22-message battery "
      "when\n persistent transports are on — dials collapse while probe "
      "throughput holds;\n DoT pays its handshake bytes up front and reuses "
      "them across the battery)\n",
      tt.to_string().c_str());
  return 0;
}
