// §5.2.2: passive-measurement cross-check of the zero-source-port findings.
// Of the resolvers actively measured with a single fixed port, how many
// already looked that way in the 18-months-earlier capture, how many
// regressed from randomized ports, and how many cannot be compared?
#include "analysis/passive.h"
#include "bench_common.h"

int main() {
  using namespace cd;
  std::printf("== passive_comparison: paper §5.2.2 ==\n");
  auto run = bench::run_standard_experiment();

  const auto cmp = analysis::compare_with_passive(run.results->records,
                                                  run.world->passive_capture);

  TextTable t({"Metric", "Measured", "Paper"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kRight);
  t.add_row({"Zero-range resolvers (active)", with_commas(cmp.zero_now),
             "3,810"});
  t.add_row({"  already zero-variance in old capture",
             bench::count_pct(cmp.zero_then, cmp.zero_now, 0),
             "1,954 (51%)"});
  t.add_row({"  had variance before (regressed)",
             bench::count_pct(cmp.varied_then, cmp.zero_now, 0),
             "959 (25%)"});
  t.add_row({"  insufficient passive data",
             bench::count_pct(cmp.insufficient, cmp.zero_now, 0),
             "897 (24%)"});
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "the alarming row is the middle one: a quarter of today's fixed-port\n"
      "resolvers *used to randomize* — their security decreased years after\n"
      "the Kaminsky disclosure.\n");
  return 0;
}
