// §5.2.2: passive-measurement cross-check of the zero-source-port findings.
// Of the resolvers actively measured with a single fixed port, how many
// already looked that way in the 18-months-earlier capture, how many
// regressed from randomized ports, and how many cannot be compared?
//
// By default the "old capture" is the world's synthesized passive_capture.
// With --pcap=PATH the old capture is instead reconstructed from a wire
// capture on disk (e.g. one exported by bench/pcap_export): every UDP
// packet to port 53 contributes its source address and source port, exactly
// what a root operator's tap yields after filtering to DNS — the
// export-replay loop scripts/pcap_replay.sh exercises end to end.
#include <cstring>
#include <string>

#include "analysis/passive.h"
#include "bench_common.h"
#include "net/packet.h"
#include "util/error.h"
#include "util/pcap.h"

namespace {

/// Rebuilds a PassiveCapture from raw wire bytes: src -> source ports of
/// its port-53 UDP queries, in capture (delivery) order.
cd::analysis::PassiveCapture passive_from_pcap(const std::string& path) {
  const auto bytes = cd::pcap::read_file(path);
  const cd::pcap::Capture capture = cd::pcap::parse_pcap(bytes);
  cd::analysis::PassiveCapture passive;
  std::size_t skipped = 0;
  for (const cd::pcap::PcapRecord& rec : capture.records) {
    if (rec.bytes.size() < rec.orig_len) {
      ++skipped;  // snapped record: headers may be incomplete
      continue;
    }
    cd::net::Packet pkt;
    try {
      pkt = cd::net::Packet::parse(rec.bytes);
    } catch (const cd::ParseError&) {
      ++skipped;  // non-IP linktype or mangled record
      continue;
    }
    if (pkt.proto != cd::net::IpProto::kUdp || pkt.dst_port != 53) continue;
    passive[pkt.src].push_back(pkt.src_port);
  }
  std::printf("# pcap replay: %zu records, %zu resolvers, %zu skipped\n",
              capture.records.size(), passive.size(), skipped);
  return passive;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cd;
  std::printf("== passive_comparison: paper §5.2.2 ==\n");

  std::string pcap_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pcap=", 7) == 0) pcap_path = argv[i] + 7;
  }

  auto run = bench::run_standard_experiment(bench::parse_run_options(argc, argv));

  const analysis::PassiveCapture replayed =
      pcap_path.empty() ? analysis::PassiveCapture{}
                        : passive_from_pcap(pcap_path);
  const analysis::PassiveCapture& old_capture =
      pcap_path.empty() ? run.world->passive_capture : replayed;

  const auto cmp =
      analysis::compare_with_passive(run.results->records, old_capture);

  TextTable t({"Metric", "Measured", "Paper"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kRight);
  t.add_row({"Zero-range resolvers (active)", with_commas(cmp.zero_now),
             "3,810"});
  t.add_row({"  already zero-variance in old capture",
             bench::count_pct(cmp.zero_then, cmp.zero_now, 0),
             "1,954 (51%)"});
  t.add_row({"  had variance before (regressed)",
             bench::count_pct(cmp.varied_then, cmp.zero_now, 0),
             "959 (25%)"});
  t.add_row({"  insufficient passive data",
             bench::count_pct(cmp.insufficient, cmp.zero_now, 0),
             "897 (24%)"});
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "the alarming row is the middle one: a quarter of today's fixed-port\n"
      "resolvers *used to randomize* — their security decreased years after\n"
      "the Kaminsky disclosure.\n");
  return 0;
}
