// Table 3: spoofed-source category effectiveness — targets/ASNs reached by
// each category (inclusive) and reached by that category alone (exclusive).
#include "bench_common.h"
#include "util/csv.h"

int main() {
  using namespace cd;
  std::printf("== table3_categories: paper Table 3 ==\n");
  auto run = bench::run_standard_experiment();

  const auto table = analysis::build_category_table(run.results->records,
                                                    run.world->targets);

  // Paper values: {category} -> {v4 incl addr%, v6 incl addr%, v4 excl
  // addr%, v6 excl addr%} of reachable targets.
  struct PaperRow {
    const char* incl_v4;
    const char* incl_v6;
    const char* excl_v4;
    const char* excl_v6;
  };
  static const PaperRow kPaper[scanner::kSourceCategoryCount] = {
      {"78%", "45%", "33%", "4.9%"},    // other prefix
      {"63%", "84%", "17%", "8.1%"},    // same prefix
      {"3.4%", "4.3%", "0.5%", "0.5%"}, // private
      {"17%", "70%", "2.6%", "9.9%"},   // dst-as-src
      {"0.0%", "0.2%", "0.0%", "0.0%"}, // loopback
  };

  TextTable t({"Source category", "v4 addrs (incl)", "v4 ASNs (incl)",
               "v6 addrs (incl)", "v6 ASNs (incl)", "v4 addrs (excl)",
               "v6 addrs (excl)", "paper incl v4/v6"});
  for (std::size_t c = 1; c < 7; ++c) t.set_align(c, Align::kRight);

  const std::uint64_t reach4 = table.reachable[0].addrs;
  const std::uint64_t reach6 = table.reachable[1].addrs;
  const std::uint64_t reach_asn4 = table.reachable[0].asns;
  const std::uint64_t reach_asn6 = table.reachable[1].asns;

  t.add_row({"All queried", with_commas(table.queried[0].addrs),
             with_commas(table.queried[0].asns),
             with_commas(table.queried[1].addrs),
             with_commas(table.queried[1].asns), "-", "-", "-"});
  t.add_row({"All reachable", bench::count_pct(reach4, table.queried[0].addrs),
             bench::count_pct(reach_asn4, table.queried[0].asns, 0),
             bench::count_pct(reach6, table.queried[1].addrs),
             bench::count_pct(reach_asn6, table.queried[1].asns, 0), "-", "-",
             "4.6% / 6.2% addrs; 49% / 50% ASNs"});
  t.add_rule();

  CsvWriter csv("table3_categories.csv");
  csv.write_row({"category", "incl_v4_addrs", "incl_v4_asns", "incl_v6_addrs",
                 "incl_v6_asns", "excl_v4_addrs", "excl_v4_asns",
                 "excl_v6_addrs", "excl_v6_asns"});

  for (int c = 0; c < scanner::kSourceCategoryCount; ++c) {
    const auto cat = static_cast<scanner::SourceCategory>(c);
    t.add_row({scanner::source_category_name(cat),
               bench::count_pct(table.inclusive[c][0].addrs, reach4, 0),
               bench::count_pct(table.inclusive[c][0].asns, reach_asn4, 0),
               bench::count_pct(table.inclusive[c][1].addrs, reach6, 0),
               bench::count_pct(table.inclusive[c][1].asns, reach_asn6, 0),
               bench::count_pct(table.exclusive[c][0].addrs, reach4),
               bench::count_pct(table.exclusive[c][1].addrs, reach6),
               std::string(kPaper[c].incl_v4) + " / " + kPaper[c].incl_v6});
    csv.write_row({scanner::source_category_name(cat),
                   std::to_string(table.inclusive[c][0].addrs),
                   std::to_string(table.inclusive[c][0].asns),
                   std::to_string(table.inclusive[c][1].addrs),
                   std::to_string(table.inclusive[c][1].asns),
                   std::to_string(table.exclusive[c][0].addrs),
                   std::to_string(table.exclusive[c][0].asns),
                   std::to_string(table.exclusive[c][1].addrs),
                   std::to_string(table.exclusive[c][1].asns)});
  }
  std::printf("%s\n(percentages of reachable targets, as in the paper; "
              "CSV: table3_categories.csv)\n",
              t.to_string().c_str());
  return 0;
}
