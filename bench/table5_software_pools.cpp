// Table 5: default source-port allocation behaviour by DNS software,
// measured the paper's way — run each implementation in the lab, issue
// queries, and characterize the ports observed at the authoritative server.
#include <algorithm>
#include <set>

#include "analysis/port_range.h"
#include "bench_common.h"
#include "lab_common.h"

namespace {

struct Row {
  cd::resolver::DnsSoftware software;
  cd::sim::OsId os;
  const char* paper;
};

}  // namespace

int main() {
  using namespace cd;
  std::printf("== table5_software_pools: paper Table 5 ==\n");

  static const Row kRows[] = {
      {resolver::DnsSoftware::kBind950, sim::OsId::kUbuntu1904,
       "8 ports, selected at startup"},
      {resolver::DnsSoftware::kBind952To988, sim::OsId::kUbuntu1904,
       "1024-65535"},
      {resolver::DnsSoftware::kBind9913To9160, sim::OsId::kUbuntu1904,
       "OS defaults"},
      {resolver::DnsSoftware::kBind9913To9160, sim::OsId::kFreeBsd121,
       "OS defaults"},
      {resolver::DnsSoftware::kKnot321, sim::OsId::kUbuntu1904,
       "OS defaults"},
      {resolver::DnsSoftware::kUnbound190, sim::OsId::kUbuntu1904,
       "1024-65535"},
      {resolver::DnsSoftware::kPowerDns420, sim::OsId::kUbuntu1904,
       "1024-65535"},
      {resolver::DnsSoftware::kWindowsDns2003, sim::OsId::kWin2003,
       "1 port, > 1023, selected at startup"},
      {resolver::DnsSoftware::kWindowsDns2008R2, sim::OsId::kWin2012,
       "2,500 contiguous ports (with wrapping), selected at startup"},
      {resolver::DnsSoftware::kBind8, sim::OsId::kUbuntu1004,
       "port 53 (pre-8.1 default)"},
  };

  TextTable t({"Software (on OS)", "unique", "min", "max", "range",
               "observed behaviour", "paper"});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, Align::kRight);

  for (const Row& row : kRows) {
    const auto per_instance = bench::lab_collect_ports(
        row.software, row.os, /*n_instances=*/1, /*queries=*/2000, 97);
    const auto& ports = per_instance.front();
    const auto stats = analysis::compute_port_stats(ports);
    const std::set<std::uint16_t> unique(ports.begin(), ports.end());

    std::string behaviour;
    if (unique.size() == 1) {
      behaviour = "single port " + std::to_string(*unique.begin());
    } else if (unique.size() <= 16) {
      behaviour = std::to_string(unique.size()) + "-port pool";
    } else if (stats.min >= 49152 && stats.range <= 2499) {
      behaviour = "2,500-port windowed pool in IANA range";
    } else if (stats.min >= 32768 && stats.max <= 61000) {
      behaviour = "Linux default pool (32768-61000)";
    } else if (stats.min >= 49152) {
      behaviour = "IANA range (49152-65535)";
    } else {
      behaviour = "full unprivileged range";
    }

    const std::string name =
        resolver::software_profile(row.software).name + " / " +
        sim::os_profile(row.os).name;
    t.add_row({name, std::to_string(unique.size()),
               std::to_string(stats.min), std::to_string(stats.max),
               std::to_string(stats.range), behaviour, row.paper});
  }
  std::printf("%s\n(each row: 2,000 lab queries through a live resolver "
              "instance)\n",
              t.to_string().c_str());
  return 0;
}
