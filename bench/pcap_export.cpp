// Wire-capture export: runs the standard campaign with the network tap
// installed and writes the traffic as a classic pcap (LINKTYPE_RAW, readable
// by tcpdump/wireshark) plus the ".idx" sidecar carrying the record count
// and per-packet drop annotations.
//
//   pcap_export --scale=0.05 --seed=42 --out=campaign.pcap [--probes-only]
//               [--no-drops] [--shards=N --threads=N]
//
// Sharded runs merge per-shard captures into canonical order; for the probe
// plane (--probes-only) the merged file is byte-identical to a serial run's
// — the same guarantee tests/test_core_parallel.cpp pins, available from
// the command line for quick cross-machine comparison via capture digest.
#include <cstring>
#include <map>
#include <string>

#include "bench_common.h"
#include "sim/network.h"
#include "util/pcap.h"

int main(int argc, char** argv) {
  using namespace cd;
  std::printf("== pcap_export: campaign wire capture ==\n");

  std::string out = "campaign.pcap";
  core::CaptureSpec capture;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--probes-only") == 0) {
      capture.probes_only = true;
    } else if (std::strcmp(argv[i], "--no-drops") == 0) {
      capture.include_drops = false;
    }
  }

  bench::RunOptions options = bench::parse_run_options(argc, argv);
  options.capture = capture;
  const bench::Run run = bench::run_standard_experiment(options);

  const pcap::Capture& cap = run.results->capture;
  pcap::write_capture(cap, out);

  std::map<std::uint8_t, std::uint64_t> by_fate;
  std::uint64_t wire_bytes = 0;
  for (const pcap::PcapRecord& rec : cap.records) {
    ++by_fate[rec.annotation];
    wire_bytes += rec.orig_len;
  }
  std::printf("# wrote %s (+.idx): %zu records, %llu wire bytes\n", out.c_str(),
              cap.records.size(), (unsigned long long)wire_bytes);
  for (const auto& [fate, count] : by_fate) {
    std::printf("#   %-14s %llu\n",
                sim::drop_reason_name(static_cast<sim::DropReason>(fate)).c_str(),
                (unsigned long long)count);
  }
  std::printf("# capture digest %016llx\n",
              (unsigned long long)core::capture_digest(cap));
  return 0;
}
