// Figure 3a: controlled-lab frequency distribution of 10-query source-port
// sample ranges for FreeBSD, Linux, Windows DNS, and full-port-range
// configurations, with the theoretical Beta(9,2) overlays.
#include "analysis/beta.h"
#include "analysis/histogram.h"
#include "analysis/port_range.h"
#include "bench_common.h"
#include "lab_common.h"
#include "util/csv.h"

int main() {
  using namespace cd;
  std::printf("== fig3a_lab_hist: paper Figure 3a ==\n");

  struct Config {
    const char* label;
    resolver::DnsSoftware software;
    sim::OsId os;
    int instances;
    double pool;  // model pool size
  };
  static const Config kConfigs[] = {
      {"Windows DNS", resolver::DnsSoftware::kWindowsDns2008R2,
       sim::OsId::kWin2012, 10, 2500},
      {"FreeBSD", resolver::DnsSoftware::kBind9913To9160,
       sim::OsId::kFreeBsd121, 1, 16384},
      {"Linux", resolver::DnsSoftware::kBind9913To9160, sim::OsId::kUbuntu1904,
       1, 28233},
      {"Full Port Range", resolver::DnsSoftware::kUnbound190,
       sim::OsId::kUbuntu1904, 1, 64512},
  };

  analysis::StackedHistogram hist(0, 65535, 500,
                                  {"Windows DNS", "FreeBSD", "Linux",
                                   "Full Port Range"});
  CsvWriter csv("fig3a_lab_samples.csv");
  csv.write_row({"config", "sample_range"});

  for (std::size_t c = 0; c < 4; ++c) {
    const Config& config = kConfigs[c];
    const int queries = 10000 / config.instances;
    const auto per_instance = bench::lab_collect_ports(
        config.software, config.os, config.instances, queries, 1234 + c);

    std::size_t samples = 0;
    for (const auto& ports : per_instance) {
      // The paper's procedure: consecutive samples of 10, range of each,
      // with the Windows wrap adjustment applied.
      for (std::size_t i = 0; i + 10 <= ports.size(); i += 10) {
        const std::span<const std::uint16_t> sample(&ports[i], 10);
        const int range = analysis::adjusted_range(sample);
        hist.add(range, c);
        csv.write_row({config.label, std::to_string(range)});
        ++samples;
      }
    }
    // Model check: where should the distribution peak? (mode of Beta(9,2)
    // is 8/9 of the pool.)
    std::printf("%-16s %5zu samples; model peak at range %.0f, q99.9 = %.0f\n",
                config.label, samples, (config.pool - 1) * 8.0 / 9.0,
                analysis::range_quantile(0.999, config.pool));
  }

  std::printf("\n%s\n", hist.render_ascii().c_str());
  std::printf(
      "paper's shape: four humps, one per pool, each peaked near 8/9 of its\n"
      "pool size (Beta(9,2) mode): ~2,2xx / ~14,5xx / ~25,1xx / ~57,3xx.\n"
      "CSV: fig3a_lab_samples.csv\n");
  return 0;
}
