// Figure 2: frequency distribution of source-port ranges of reachable
// resolvers, stacked by open/closed status — full scale (0-65,535) plus the
// 0-3,000 zoom, as in the paper.
#include "analysis/histogram.h"
#include "bench_common.h"
#include "util/csv.h"

int main() {
  using namespace cd;
  std::printf("== fig2_port_range_hist: paper Figure 2 ==\n");
  auto run = bench::run_standard_experiment();

  const auto samples = analysis::range_samples(
      run.results->records, analysis::P0fDatabase::standard());

  analysis::StackedHistogram full(0, 65535, 1000, {"closed", "open"});
  analysis::StackedHistogram zoom(0, 3000, 50, {"closed", "open"});
  for (const analysis::RangeSample& s : samples) {
    full.add(s.range, s.open ? 1 : 0);
    if (s.range <= 3000) zoom.add(s.range, s.open ? 1 : 0);
  }

  std::printf("upper plot: ranges 0-65,535 (bin 1,000)\n%s\n",
              full.render_ascii().c_str());
  std::printf("lower plot (zoom): ranges 0-3,000 (bin 50)\n%s\n",
              zoom.render_ascii().c_str());

  CsvWriter csv("fig2_port_range_hist.csv");
  for (const auto& row : full.csv_rows()) csv.write_row(row);
  CsvWriter csv_zoom("fig2_port_range_hist_zoom.csv");
  for (const auto& row : zoom.csv_rows()) csv_zoom.write_row(row);

  std::printf(
      "paper's shape: a spike at 0 (fixed ports, majority closed), peaks at\n"
      "~2,4xx (Windows, mostly open), ~16,0xx (FreeBSD, mostly closed),\n"
      "~28,0xx (Linux, mostly closed) and a broad mass toward 64,5xx (full\n"
      "range). CSVs: fig2_port_range_hist{,_zoom}.csv\n");
  return 0;
}
