// Campaign-scale bench: paper-magnitude campaigns in bounded memory.
//
// Three timed phases:
//   plan     — build_campaign_plan: the O(n_asns) SoA shape pass (arena
//              bytes reported; a paper-scale plan is a few MB, not a world)
//   stream   — one full TargetStream sweep with nothing materialized: the
//              pure per-AS generation rate a shard world pays
//   campaign — run_sharded_experiment with streamed shard worlds and
//              (by default) disk-spilled shard results; probes/s and
//              peak RSS (VmHWM) are the headline numbers
//
// Appends one JSON line per run to BENCH_campaign.json (--out=... to
// redirect), so repeated runs accumulate a trajectory. The default shape
// (7000 ASes, mean fleet 14) crosses one million DITL targets locally;
// --paper sets the paper's magnitude (62k ASes, mean 17.6 → ~12M targets),
// which is practical for plan+stream on any machine and for the campaign
// phase on a long-running one (--no-campaign skips it).
//
//   ./campaign_scale                         # ≥1M-target spilled campaign
//   ./campaign_scale --paper --no-campaign   # 12M-target plan+stream sweep
//   ./campaign_scale --shards=64 --threads=8 --spill-dir=/tmp/cdsp
//
// --crosscheck-window=N additionally runs the Closed Resolver cross-check
// plane (scanner/crosscheck.h) over every announced /24, probing host
// offsets [10, 10+N) — the window the world's resolver addressing occupies —
// and reports the per-AS methodology-agreement aggregates
// (analysis/crosscheck.h). The world is materialized once for the join's
// target list, so pick a shape that fits in memory when enabling this.
//
// --poison-window=N additionally runs the off-path cache-poisoning attacker
// plane (attack/poison.h) with N burst rounds per victim, and reports the
// realized per-profile success rates joined against the port-entropy
// predictions (analysis/poisoning.h).
//
// --transport-window=N additionally reruns the campaign three times with the
// follow-up battery switched to TCP (scanner::FollowupTransport::kTcp) to
// price the transports against each other: one-shot dial-per-exchange
// (RFC 7766 §5 legacy behavior), persistent sessions pipelined N deep
// (§6.2.1.1), and persistent DoT-style sessions that pay a fixed handshake
// per connection. Each pass reports connection counts (dials/accepts/
// reuses), handshake overhead bytes, and probes/s; all three land in the
// JSON row.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/crosscheck.h"
#include "analysis/poisoning.h"
#include "core/parallel.h"
#include "ditl/plan.h"
#include "ditl/target_stream.h"
#include "ditl/world.h"
#include "util/rss.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Options {
  int asns = 7000;
  double mean = 14.0;
  std::size_t shards = 64;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency() / 2);
  std::uint64_t seed = 42;
  bool campaign = true;
  bool spill = true;
  std::uint32_t crosscheck_window = 0;  // 0 = cross-check plane off
  std::uint32_t poison_window = 0;      // 0 = attacker plane off
  std::uint32_t transport_window = 0;   // 0 = transport sweep off; else the
                                        // persistent-session pipeline depth
  std::string spill_dir = "campaign_spill";
  std::string out = "BENCH_campaign.json";
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--asns=", 7) == 0) {
      opt.asns = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--mean=", 7) == 0) {
      opt.mean = std::atof(arg + 7);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      opt.shards = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt.threads = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--crosscheck-window=", 20) == 0) {
      opt.crosscheck_window =
          static_cast<std::uint32_t>(std::strtoul(arg + 20, nullptr, 10));
    } else if (std::strncmp(arg, "--poison-window=", 16) == 0) {
      opt.poison_window =
          static_cast<std::uint32_t>(std::strtoul(arg + 16, nullptr, 10));
    } else if (std::strncmp(arg, "--transport-window=", 19) == 0) {
      opt.transport_window =
          static_cast<std::uint32_t>(std::strtoul(arg + 19, nullptr, 10));
    } else if (std::strncmp(arg, "--spill-dir=", 12) == 0) {
      opt.spill_dir = arg + 12;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt.out = arg + 6;
    } else if (std::strcmp(arg, "--paper") == 0) {
      opt.asns = 62000;   // §3.1: ~62k ASes behind the 13.6M scanned addrs
      opt.mean = 17.6;    // → ~12M DITL targets after exclusions
    } else if (std::strcmp(arg, "--no-campaign") == 0) {
      opt.campaign = false;
    } else if (std::strcmp(arg, "--no-spill") == 0) {
      opt.spill = false;
    }
  }
  if (opt.shards == 0) opt.shards = 1;
  if (opt.threads == 0) opt.threads = 1;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  cd::ditl::WorldSpec spec = cd::ditl::bench_world_spec();
  spec.n_asns = opt.asns;
  spec.resolvers_per_as_mean = opt.mean;
  spec.seed = opt.seed;

  std::printf("# campaign_scale: %d ASes, mean fleet %.1f, seed %llu\n",
              opt.asns, opt.mean, (unsigned long long)opt.seed);

  // --- phase 1: plan --------------------------------------------------------
  const auto plan_start = Clock::now();
  const auto plan = cd::ditl::build_campaign_plan(spec);
  const double plan_ms = ms_since(plan_start);
  std::printf("# plan: %zu ASes in %.1fms (%zu KiB arena)\n", plan->size(),
              plan_ms, plan->bytes() / 1024);

  // --- phase 2: stream sweep ------------------------------------------------
  const auto stream_start = Clock::now();
  const cd::ditl::StreamCounts counts = cd::ditl::count_stream(*plan);
  const double stream_ms = ms_since(stream_start);
  std::printf(
      "# stream: %llu resolvers, %llu live addrs, %llu targets "
      "(%llu captured live + %llu stale) in %.0fms (%.0fk targets/s)\n",
      (unsigned long long)counts.resolvers,
      (unsigned long long)counts.live_addrs, (unsigned long long)counts.targets,
      (unsigned long long)counts.captured_live,
      (unsigned long long)counts.stale, stream_ms,
      stream_ms > 0 ? (double)counts.targets / stream_ms : 0.0);

  // --- phase 3: sharded streamed campaign -----------------------------------
  double campaign_ms = 0.0, merge_ms = 0.0, probes_per_s = 0.0;
  double max_shard_gen_ms = 0.0, max_shard_run_ms = 0.0;
  unsigned long long probes = 0, records = 0;
  unsigned long long digest = 0;
  unsigned long long cc_probes = 0, cc_prefixes = 0, cc_vulnerable = 0;
  cd::analysis::AgreementReport agreement;
  cd::analysis::PoisonReport poison;
  cd::attack::PoisonConfig poison_config;
  // Per-transport pricing rows (--transport-window): one-shot baseline,
  // persistent pipelined sessions, persistent DoT-style sessions.
  struct TransportRow {
    double wall_ms = 0.0;
    double probes_per_s = 0.0;
    unsigned long long probes = 0;
    cd::sim::TransportCounters tc;
  };
  TransportRow t_rows[3];
  static constexpr const char* kTransportLabels[3] = {"oneshot", "persistent",
                                                      "dot"};
  if (opt.campaign) {
    cd::core::ExperimentConfig config;
    config.num_shards = opt.shards;
    config.num_threads = opt.threads;
    config.stream_worlds = true;
    if (opt.spill) config.spill_dir = opt.spill_dir;
    if (opt.crosscheck_window > 0) {
      cd::scanner::CrossCheckConfig cc;
      cc.host_lo = 10;  // resolver v4 addressing starts at offset 10
      cc.host_hi = 10 + opt.crosscheck_window;
      config.crosscheck = cc;
    }
    if (opt.poison_window > 0) {
      poison_config.rounds = static_cast<int>(opt.poison_window);
      config.poison = poison_config;
    }

    const auto run_start = Clock::now();
    const cd::core::ShardedResults out =
        cd::core::run_sharded_experiment(spec, config);
    campaign_ms = out.wall_ms;
    merge_ms = out.merge_ms;
    probes = out.merged.queries_sent;
    records = out.merged.records.size();
    digest = cd::core::results_digest(out.merged);
    probes_per_s = campaign_ms > 0 ? 1000.0 * (double)probes / campaign_ms : 0;
    for (const cd::core::ShardTiming& s : out.shards) {
      if (s.gen_ms > max_shard_gen_ms) max_shard_gen_ms = s.gen_ms;
      if (s.run_ms > max_shard_run_ms) max_shard_run_ms = s.run_ms;
    }
    std::printf(
        "# campaign: %llu probes over %zu shards on %zu threads in %.0fms "
        "(%.0f probes/s, merge %.0fms, slowest shard gen %.0fms run %.0fms)\n"
        "# records %llu, digest %016llx, wall total %.0fms\n",
        probes, opt.shards, opt.threads, campaign_ms, probes_per_s, merge_ms,
        max_shard_gen_ms, max_shard_run_ms, records, digest,
        ms_since(run_start));

    if (opt.crosscheck_window > 0) {
      cc_probes = out.merged.crosscheck_probes;
      std::vector<cd::scanner::PrefixTarget> probed;
      probed.reserve(cd::ditl::count_prefix24(*plan));
      cd::ditl::for_each_prefix24(
          *plan, 0, 1,
          [&probed](cd::sim::Asn asn, const cd::net::Prefix& p24) {
            probed.push_back({p24, asn});
          });
      cc_prefixes = probed.size();
      for (const auto& [base, rec] : out.merged.crosscheck_records) {
        if (rec.vulnerable()) ++cc_vulnerable;
      }
      // The join needs the per-resolver target list, which the streamed
      // campaign never materializes — build the world once for it.
      const auto world = cd::ditl::generate_world(spec);
      agreement = cd::analysis::methodology_agreement(
          out.merged.records, world->targets, out.merged.crosscheck_records,
          probed);
      std::printf(
          "# crosscheck: %llu probes over %llu /24s, %llu vulnerable "
          "(%.0f%%); agreement over %llu ASes: %llu agree-vuln, "
          "%llu agree-filtered, %llu resolver-only, %llu prefix-only\n",
          cc_probes, cc_prefixes, cc_vulnerable,
          100.0 * agreement.prefix_vulnerable_share,
          (unsigned long long)agreement.ases,
          (unsigned long long)agreement.agree_vulnerable,
          (unsigned long long)agreement.agree_filtered,
          (unsigned long long)agreement.resolver_only,
          (unsigned long long)agreement.prefix_only);
    }

    if (opt.poison_window > 0) {
      poison = cd::analysis::summarize_poisoning(
          out.merged.poison_records, poison_config, out.merged.poison_triggers,
          out.merged.poison_forged);
      std::printf(
          "# poison: %llu victims raced over %u rounds, %llu reachable, "
          "%llu poisoned (%llu triggers, %llu forgeries, %zu profiles)\n",
          (unsigned long long)poison.victims, opt.poison_window,
          (unsigned long long)poison.reachable,
          (unsigned long long)poison.successes,
          (unsigned long long)poison.triggers,
          (unsigned long long)poison.forged, poison.rows.size());
    }

    if (opt.transport_window > 0) {
      for (int mode = 0; mode < 3; ++mode) {
        cd::core::ExperimentConfig tconfig = config;
        tconfig.followup.transport = cd::scanner::FollowupTransport::kTcp;
        tconfig.persistent_tcp = mode > 0;
        tconfig.max_pipeline = static_cast<int>(opt.transport_window);
        tconfig.dot_sessions = mode == 2;
        const auto t_start = Clock::now();
        const cd::core::ShardedResults t_out =
            cd::core::run_sharded_experiment(spec, tconfig);
        TransportRow& row = t_rows[mode];
        row.wall_ms = ms_since(t_start);
        row.probes = t_out.merged.queries_sent;
        row.probes_per_s =
            row.wall_ms > 0 ? 1000.0 * (double)row.probes / row.wall_ms : 0;
        row.tc = t_out.merged.transport;
        std::printf(
            "# transport[%s]: %llu probes in %.0fms (%.0f probes/s); "
            "dials %llu, accepts %llu, reuses %llu, messages %llu, "
            "idle closes %llu, handshake bytes %llu\n",
            kTransportLabels[mode], row.probes, row.wall_ms, row.probes_per_s,
            (unsigned long long)row.tc.dials,
            (unsigned long long)row.tc.accepts,
            (unsigned long long)row.tc.session_reuses,
            (unsigned long long)row.tc.session_messages,
            (unsigned long long)row.tc.idle_closes,
            (unsigned long long)row.tc.handshake_bytes);
      }
    }
  }

  const std::size_t peak_kb = cd::peak_rss_kb();
  std::printf("# peak RSS %zu KiB (%.1f MiB); %.1f bytes/target\n", peak_kb,
              peak_kb / 1024.0,
              counts.targets ? 1024.0 * (double)peak_kb / counts.targets : 0.0);

  if (std::FILE* f = std::fopen(opt.out.c_str(), "a")) {
    std::fprintf(
        f,
        "{\"bench\":\"campaign_scale\",\"asns\":%d,\"mean\":%.2f,"
        "\"shards\":%zu,\"threads\":%zu,\"seed\":%llu,\"spill\":%s,"
        "\"targets\":%llu,\"resolvers\":%llu,"
        "\"plan_ms\":%.1f,\"plan_kib\":%zu,\"stream_ms\":%.0f,"
        "\"campaign_ms\":%.0f,\"merge_ms\":%.0f,\"probes\":%llu,"
        "\"probes_per_s\":%.0f,\"records\":%llu,\"digest\":\"%016llx\","
        "\"crosscheck_window\":%u,\"crosscheck_probes\":%llu,"
        "\"crosscheck_prefixes\":%llu,\"crosscheck_vulnerable\":%llu,"
        "\"agree_vulnerable\":%llu,\"agree_filtered\":%llu,"
        "\"resolver_only\":%llu,\"prefix_only\":%llu,"
        "\"poison_window\":%u,\"poison_victims\":%llu,"
        "\"poison_reachable\":%llu,\"poison_successes\":%llu,"
        "\"poison_triggers\":%llu,\"poison_forged\":%llu,"
        "\"transport_window\":%u,"
        "\"t_oneshot_dials\":%llu,\"t_oneshot_handshake_bytes\":%llu,"
        "\"t_oneshot_probes_per_s\":%.0f,"
        "\"t_persistent_dials\":%llu,\"t_persistent_reuses\":%llu,"
        "\"t_persistent_handshake_bytes\":%llu,"
        "\"t_persistent_probes_per_s\":%.0f,"
        "\"t_dot_dials\":%llu,\"t_dot_reuses\":%llu,"
        "\"t_dot_handshake_bytes\":%llu,\"t_dot_probes_per_s\":%.0f,"
        "\"peak_rss_kib\":%zu}\n",
        opt.asns, opt.mean, opt.shards, opt.threads,
        (unsigned long long)opt.seed, opt.spill ? "true" : "false",
        (unsigned long long)counts.targets,
        (unsigned long long)counts.resolvers, plan_ms, plan->bytes() / 1024,
        stream_ms, campaign_ms, merge_ms, probes, probes_per_s, records,
        digest, opt.crosscheck_window, cc_probes, cc_prefixes, cc_vulnerable,
        (unsigned long long)agreement.agree_vulnerable,
        (unsigned long long)agreement.agree_filtered,
        (unsigned long long)agreement.resolver_only,
        (unsigned long long)agreement.prefix_only, opt.poison_window,
        (unsigned long long)poison.victims,
        (unsigned long long)poison.reachable,
        (unsigned long long)poison.successes,
        (unsigned long long)poison.triggers,
        (unsigned long long)poison.forged, opt.transport_window,
        (unsigned long long)t_rows[0].tc.dials,
        (unsigned long long)t_rows[0].tc.handshake_bytes,
        t_rows[0].probes_per_s, (unsigned long long)t_rows[1].tc.dials,
        (unsigned long long)t_rows[1].tc.session_reuses,
        (unsigned long long)t_rows[1].tc.handshake_bytes,
        t_rows[1].probes_per_s, (unsigned long long)t_rows[2].tc.dials,
        (unsigned long long)t_rows[2].tc.session_reuses,
        (unsigned long long)t_rows[2].tc.handshake_bytes,
        t_rows[2].probes_per_s, peak_kb);
    std::fclose(f);
    std::printf("# appended to %s\n", opt.out.c_str());
  } else {
    std::fprintf(stderr, "campaign_scale: cannot append to %s\n",
                 opt.out.c_str());
    return 1;
  }
  return 0;
}
