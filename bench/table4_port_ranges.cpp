// Table 4: reachable targets by observed source-port range band, crossed
// with open/closed status and p0f OS classification; plus the §5.2.1
// zero-randomization and §5.2.3 ineffective-allocation drill-downs.
#include "analysis/beta.h"
#include "bench_common.h"
#include "util/csv.h"

int main() {
  using namespace cd;
  std::printf("== table4_port_ranges: paper Table 4, §5.2.1, §5.2.3 ==\n");
  auto run = bench::run_standard_experiment();
  const auto& records = run.results->records;
  const auto& p0f = analysis::P0fDatabase::standard();

  const auto table = analysis::build_table4(records, p0f);

  // Paper Table 4 totals per band, for the shape column.
  static const char* kPaperTotals[] = {"3,810",  "244",    "144",
                                       "13,692", "366",    "11,462",
                                       "89,495", "178,773"};

  TextTable t({"Source port range (OS)", "Total", "Open", "Closed", "p0f Win",
               "p0f Lin", "paper total"});
  for (std::size_t c = 1; c < 6; ++c) t.set_align(c, Align::kRight);

  CsvWriter csv("table4_port_ranges.csv");
  csv.write_row({"band", "total", "open", "closed", "p0f_windows",
                 "p0f_linux"});

  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const analysis::Table4Row& row = table.rows[i];
    std::string label = row.band.label;
    if (!row.band.os.empty()) label += " (" + row.band.os + ")";
    t.add_row({label, with_commas(row.total), with_commas(row.open),
               with_commas(row.closed), with_commas(row.p0f_windows),
               with_commas(row.p0f_linux), kPaperTotals[i]});
    csv.write_row({row.band.label, std::to_string(row.total),
                   std::to_string(row.open), std::to_string(row.closed),
                   std::to_string(row.p0f_windows),
                   std::to_string(row.p0f_linux)});
  }
  std::printf("%s\nclassified targets (>=%zu direct port samples): %s\n\n",
              t.to_string().c_str(), analysis::kMinPortSamples,
              with_commas(table.classified_targets).c_str());

  // §5.2.1: zero source-port randomization.
  const auto zero = analysis::zero_range_stats(records);
  TextTable z({"Zero-range metric", "Measured", "Paper"});
  z.set_align(1, Align::kRight);
  z.set_align(2, Align::kRight);
  z.add_row({"Resolvers with zero port range", with_commas(zero.total),
             "3,810"});
  z.add_row({"  open / closed",
             with_commas(zero.open) + " / " + with_commas(zero.closed),
             "1,566 / 2,244 (59% closed)"});
  z.add_row({"ASes affected", with_commas(zero.asns), "1,802 (6%)"});
  z.add_row({"  of which with a closed resolver",
             bench::count_pct(zero.asns_with_closed, zero.asns, 0), "95%"});
  std::uint64_t port53 = 0, port32768 = 0, port32769 = 0;
  for (const auto& [port, count] : zero.port_counts) {
    if (port == 53) port53 = count;
    if (port == 32768) port32768 = count;
    if (port == 32769) port32769 = count;
  }
  z.add_row({"  fixed port 53", bench::count_pct(port53, zero.total, 0),
             "1,308 (34%)"});
  z.add_row({"  fixed port 32768", bench::count_pct(port32768, zero.total, 0),
             "12%"});
  z.add_row({"  fixed port 32769", bench::count_pct(port32769, zero.total, 0),
             "3.8%"});
  std::printf("%s\n", z.to_string().c_str());

  // §5.2.3: ineffective allocation (range 1-200).
  const auto low = analysis::low_range_stats(records);
  TextTable l({"Range 1-200 metric", "Measured", "Paper"});
  l.set_align(1, Align::kRight);
  l.set_align(2, Align::kRight);
  l.add_row({"Resolvers", with_commas(low.total), "244"});
  l.add_row({"ASNs", with_commas(low.asns), "142"});
  l.add_row({"Strictly increasing pattern",
             bench::count_pct(low.strictly_increasing, low.total, 0),
             "159 (65%)"});
  l.add_row({"  of which wrapped", with_commas(low.wrapped), "130"});
  l.add_row({"<=7 unique ports of 10",
             bench::count_pct(low.few_unique, low.total, 0), "34 (14%)"});
  std::printf("%s\n", l.to_string().c_str());

  // The paper's aside: seeing <=7 unique values in 10 draws from a true
  // 200-port pool happens ~0.066% of the time — so these are small pools.
  std::printf(
      "model check: P(<=7 unique in 10 draws from a 200-port pool) = %.4f%% "
      "(paper: 0.066%%)\n",
      100.0 * analysis::small_pool_probability(200, 10, 7));
  return 0;
}
