// Microbenchmarks: simulator hot paths — longest-prefix routing, the event
// loop, resolver cache, port allocators, the Beta range model, and the
// packet-delivery path batched vs per-packet (events/s + allocs/packet).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>

#include "analysis/beta.h"
#include "dns/cache.h"
#include "net/packet.h"
#include "resolver/port_alloc.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/os_model.h"
#include "sim/topology.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// Count every heap allocation so the delivery benchmarks can report
// allocs/packet. Relaxed atomic: benchmark threads only ever read deltas
// they produced themselves.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace cd;

sim::Topology make_topology(int n_asns) {
  sim::Topology topo;
  for (int i = 0; i < n_asns; ++i) {
    const auto asn = static_cast<sim::Asn>(100 + i);
    topo.add_as(asn);
    const std::uint32_t base = ((20u + static_cast<unsigned>(i) / 256) << 24) |
                               ((static_cast<unsigned>(i) % 256) << 16);
    topo.announce(asn, net::Prefix(net::IpAddr::v4(base), 16));
    topo.announce(
        asn, net::Prefix(net::IpAddr::v6(
                             (0x2400000000000000ULL) |
                                 (static_cast<std::uint64_t>(i) << 32),
                             0),
                         32));
  }
  return topo;
}

void BM_RoutingLookupV4(benchmark::State& state) {
  const auto topo = make_topology(static_cast<int>(state.range(0)));
  Rng rng(1);
  std::vector<net::IpAddr> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(net::IpAddr::v4(
        static_cast<std::uint32_t>((20u << 24) + rng.u64())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.asn_of(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_RoutingLookupV4)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    std::uint64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(i * 10, [&sum] { ++sum; });
    }
    loop.run();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

/// Engine head-to-head on a persistent loop (the pools reach steady state,
/// unlike BM_EventLoopScheduleRun's cold loop-per-iteration): a jittered
/// 4096-event schedule/run cycle, reporting events/s and allocs/event.
/// Arg 0 = retired priority-queue oracle, arg 1 = timing wheel.
void BM_EventLoopEngine(benchmark::State& state) {
  sim::EventLoop loop(state.range(0) != 0 ? sim::EventEngine::kWheel
                                          : sim::EventEngine::kPriorityQueue);
  constexpr int kEvents = 4096;
  Rng rng(42);
  std::vector<sim::SimTime> delays;
  for (int i = 0; i < kEvents; ++i) {
    delays.push_back(static_cast<sim::SimTime>(rng.u64() % 100'000));
  }
  std::uint64_t sum = 0;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < kEvents; ++i) {
      loop.schedule_in(delays[static_cast<std::size_t>(i)], [&sum] { ++sum; });
    }
    loop.run();
    allocs += g_allocs.load(std::memory_order_relaxed) - before;
    events += kEvents;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs/event"] =
      benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(events));
}
BENCHMARK(BM_EventLoopEngine)->Arg(0)->Arg(1);

void BM_CacheInsertLookup(benchmark::State& state) {
  dns::Cache cache;
  const auto name = dns::DnsName::must_parse("host.example.org");
  cache.insert_positive({dns::make_a(name, net::IpAddr::v4(0x01020304))}, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(name, dns::RrType::kA, 1000));
  }
}
BENCHMARK(BM_CacheInsertLookup);

void BM_Rfc8020AncestorWalk(benchmark::State& state) {
  dns::Cache cache;
  cache.insert_nxdomain(dns::DnsName::must_parse("x1.dns-lab.org"), 300, 0);
  const auto deep = dns::DnsName::must_parse(
      "123.abcd.ef01.64512.m0.x1.dns-lab.org");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(deep, dns::RrType::kA, 1000));
  }
}
BENCHMARK(BM_Rfc8020AncestorWalk);

void BM_PortAllocators(benchmark::State& state) {
  Rng rng(7);
  resolver::UniformRangeAllocator uniform(1024, 65535, rng.split(1));
  resolver::WindowsPoolAllocator windows(rng.split(2));
  resolver::SequentialAllocator seq(1024, 1224, 1100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(uniform.next());
    benchmark::DoNotOptimize(windows.next());
    benchmark::DoNotOptimize(seq.next());
  }
}
BENCHMARK(BM_PortAllocators);

// --- delivery path: batched vs per-packet ------------------------------------

/// Two-AS world with one bound UDP host; the sender injects straight into
/// the network (no source host needed).
struct DeliveryFixture {
  sim::EventLoop loop;
  sim::Topology topo;
  sim::Network network{topo, loop, Rng(7)};
  std::optional<sim::Host> host;
  std::uint64_t received = 0;

  DeliveryFixture() {
    topo.add_as(1);
    topo.add_as(2);
    topo.announce(1, net::Prefix::must_parse("21.0.0.0/16"));
    topo.announce(2, net::Prefix::must_parse("22.0.0.0/16"));
    host.emplace(network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
                 std::vector<net::IpAddr>{net::IpAddr::must_parse("22.0.0.1")},
                 Rng(1));
    host->bind_udp(53, [this](const net::Packet&) { ++received; });
  }
};

/// Shared body: send `kBurst` packets, drain, report events/s (delivered
/// packets) and allocs/packet. `vary_payload` breaks the content-hash tie so
/// packets spread over distinct arrival ticks (singleton batches).
void delivery_bench(benchmark::State& state, bool vary_payload) {
  // arg 0: 0 = per-packet, 1 = batched (wheel engine, the default),
  //        2 = batched on the retired priority-queue oracle — the PR 5
  //        event core, isolating the wheel's contribution end-to-end.
  const bool batched = state.range(0) != 0;
  constexpr int kBurst = 256;
  DeliveryFixture f;
  if (state.range(0) == 2) {
    f.loop.set_engine(sim::EventEngine::kPriorityQueue);
  }
  f.network.set_batched_delivery(batched);
  const auto src = net::IpAddr::must_parse("21.0.0.5");
  const auto dst = net::IpAddr::must_parse("22.0.0.1");
  std::uint64_t packets = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < kBurst; ++i) {
      const std::uint8_t lo = vary_payload ? static_cast<std::uint8_t>(i) : 0;
      const std::uint8_t hi =
          vary_payload ? static_cast<std::uint8_t>(i >> 8) : 0;
      // Pool-recycled payload: the delivery path releases it on receipt, so
      // in steady state the whole send->deliver cycle allocates nothing.
      auto payload = cd::BufferPool::acquire();
      payload.assign({lo, hi, 3, 4});
      f.network.send(net::make_udp(src, 1000, dst, 53, std::move(payload)), 1);
    }
    f.loop.run();
    allocs += g_allocs.load(std::memory_order_relaxed) - before;
    packets += kBurst;
  }
  benchmark::DoNotOptimize(f.received);
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  state.counters["allocs/pkt"] =
      benchmark::Counter(static_cast<double>(allocs) / packets);
}

/// Identical packets get identical content-hashed latency, so the whole
/// burst lands on one tick: the batched path's best case (arg 1 = batched).
void BM_DeliverySameTickBurst(benchmark::State& state) {
  delivery_bench(state, /*vary_payload=*/false);
}
BENCHMARK(BM_DeliverySameTickBurst)->Arg(0)->Arg(1)->Arg(2);

/// Distinct payloads spread arrivals over distinct ticks — batches are
/// almost all singletons, pinning the no-regression side of the ledger.
void BM_DeliveryJitteredSingletons(benchmark::State& state) {
  delivery_bench(state, /*vary_payload=*/true);
}
BENCHMARK(BM_DeliveryJitteredSingletons)->Arg(0)->Arg(1)->Arg(2);

// --- TCP response path: bytes/s + allocs/response ---------------------------

/// Client in AS1, DNS-over-TCP-style server in AS2 answering every request
/// with a fixed response body of `resp_size` bytes.
struct TcpFixture {
  sim::EventLoop loop;
  sim::Topology topo;
  sim::Network network{topo, loop, Rng(7)};
  std::optional<sim::Host> client;
  std::optional<sim::Host> server;
  std::vector<std::uint8_t> body;

  explicit TcpFixture(std::size_t resp_size) : body(resp_size, 0xAB) {
    topo.add_as(1);
    topo.add_as(2);
    topo.announce(1, net::Prefix::must_parse("21.0.0.0/16"));
    topo.announce(2, net::Prefix::must_parse("22.0.0.0/16"));
    client.emplace(network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
                   std::vector<net::IpAddr>{net::IpAddr::must_parse("21.0.0.5")},
                   Rng(1));
    server.emplace(network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
                   std::vector<net::IpAddr>{net::IpAddr::must_parse("22.0.0.1")},
                   Rng(2));
    server->tcp_listen(
        53, [this](const sim::TcpConnInfo&, std::span<const std::uint8_t>) {
          return body;
        });
  }
};

/// One full connect/request/response exchange per iteration; reports
/// response bytes/s and heap allocs per response via the operator-new
/// counter. Arg: response size in bytes.
void BM_TcpResponse(benchmark::State& state) {
  const auto resp_size = static_cast<std::size_t>(state.range(0));
  TcpFixture f(resp_size);
  const auto src = net::IpAddr::must_parse("21.0.0.5");
  const auto dst = net::IpAddr::must_parse("22.0.0.1");
  std::uint64_t responses = 0;
  std::uint64_t allocs = 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    f.client->tcp_connect(src, dst, 53,
                          std::vector<std::uint8_t>{0x00, 0x02, 0xde, 0xad},
                          [&delivered](std::optional<std::vector<std::uint8_t>> r) {
                            if (r) {
                              delivered += r->size();
                              // Consume, then recycle — what the resolver's
                              // TCP-retry path does with its reply buffer.
                              cd::BufferPool::release(std::move(*r));
                            }
                          });
    f.loop.run();
    allocs += g_allocs.load(std::memory_order_relaxed) - before;
    ++responses;
  }
  benchmark::DoNotOptimize(delivered);
  state.SetBytesProcessed(static_cast<std::int64_t>(responses * resp_size));
  state.counters["allocs/resp"] =
      benchmark::Counter(static_cast<double>(allocs) / responses);
}
BENCHMARK(BM_TcpResponse)->Arg(512)->Arg(1400)->Arg(16 * 1024);

void BM_BetaRangeCdf(benchmark::State& state) {
  double x = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::range_cdf(x, 28233));
    x = (x < 28000) ? x + 1 : 100;
  }
}
BENCHMARK(BM_BetaRangeCdf);

}  // namespace

BENCHMARK_MAIN();
