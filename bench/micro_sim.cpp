// Microbenchmarks: simulator hot paths — longest-prefix routing, the event
// loop, resolver cache, port allocators, and the Beta range model.
#include <benchmark/benchmark.h>

#include "analysis/beta.h"
#include "dns/cache.h"
#include "resolver/port_alloc.h"
#include "sim/event_loop.h"
#include "sim/topology.h"
#include "util/rng.h"

namespace {

using namespace cd;

sim::Topology make_topology(int n_asns) {
  sim::Topology topo;
  for (int i = 0; i < n_asns; ++i) {
    const auto asn = static_cast<sim::Asn>(100 + i);
    topo.add_as(asn);
    const std::uint32_t base = ((20u + static_cast<unsigned>(i) / 256) << 24) |
                               ((static_cast<unsigned>(i) % 256) << 16);
    topo.announce(asn, net::Prefix(net::IpAddr::v4(base), 16));
    topo.announce(
        asn, net::Prefix(net::IpAddr::v6(
                             (0x2400000000000000ULL) |
                                 (static_cast<std::uint64_t>(i) << 32),
                             0),
                         32));
  }
  return topo;
}

void BM_RoutingLookupV4(benchmark::State& state) {
  const auto topo = make_topology(static_cast<int>(state.range(0)));
  Rng rng(1);
  std::vector<net::IpAddr> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(net::IpAddr::v4(
        static_cast<std::uint32_t>((20u << 24) + rng.u64())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.asn_of(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_RoutingLookupV4)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    std::uint64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(i * 10, [&sum] { ++sum; });
    }
    loop.run();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_CacheInsertLookup(benchmark::State& state) {
  dns::Cache cache;
  const auto name = dns::DnsName::must_parse("host.example.org");
  cache.insert_positive({dns::make_a(name, net::IpAddr::v4(0x01020304))}, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(name, dns::RrType::kA, 1000));
  }
}
BENCHMARK(BM_CacheInsertLookup);

void BM_Rfc8020AncestorWalk(benchmark::State& state) {
  dns::Cache cache;
  cache.insert_nxdomain(dns::DnsName::must_parse("x1.dns-lab.org"), 300, 0);
  const auto deep = dns::DnsName::must_parse(
      "123.abcd.ef01.64512.m0.x1.dns-lab.org");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(deep, dns::RrType::kA, 1000));
  }
}
BENCHMARK(BM_Rfc8020AncestorWalk);

void BM_PortAllocators(benchmark::State& state) {
  Rng rng(7);
  resolver::UniformRangeAllocator uniform(1024, 65535, rng.split(1));
  resolver::WindowsPoolAllocator windows(rng.split(2));
  resolver::SequentialAllocator seq(1024, 1224, 1100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(uniform.next());
    benchmark::DoNotOptimize(windows.next());
    benchmark::DoNotOptimize(seq.next());
  }
}
BENCHMARK(BM_PortAllocators);

void BM_BetaRangeCdf(benchmark::State& state) {
  double x = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::range_cdf(x, 28233));
    x = (x < 28000) ? x + 1 : 100;
  }
}
BENCHMARK(BM_BetaRangeCdf);

}  // namespace

BENCHMARK_MAIN();
