// Derives Table 4's band edges from the Beta(9,2) range model, the way the
// paper did: minimum-misclassification cutoffs between adjacent OS pools and
// 99.9%-accuracy edges elsewhere.
#include "analysis/beta.h"
#include "bench_common.h"

int main() {
  using namespace cd;
  std::printf("== model_cutoffs: paper §5.3.2 band derivation ==\n\n");

  // Pool sizes: Windows DNS 2,500; FreeBSD IANA range 16,384; Linux
  // 32768-61000 = 28,233; full unprivileged range 64,512.
  const double kWindows = 2500, kFreeBsd = 16384, kLinux = 28233,
               kFull = 64512;

  TextTable t({"Boundary", "Derived", "Paper", "Misclassification"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kRight);

  {
    const auto c = analysis::optimal_cutoff(kFreeBsd, kLinux);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f%% BSD / %.2f%% Linux",
                  100 * c.small_pool_error, 100 * c.large_pool_error);
    t.add_row({"FreeBSD / Linux", std::to_string(c.cutoff), "16,331", buf});
  }
  {
    const auto c = analysis::optimal_cutoff(kLinux, kFull);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f%% combined",
                  100 * (c.small_pool_error + c.large_pool_error) / 2);
    t.add_row({"Linux / Full range", std::to_string(c.cutoff), "28,222", buf});
  }
  {
    // 99.9%-accuracy edges for the Windows pool.
    const double hi = analysis::range_quantile(0.999, kWindows);
    t.add_row({"Windows upper edge (q99.9)",
               std::to_string(static_cast<int>(hi)), "2,488", "0.1% missed"});
    const double lo = analysis::range_quantile(0.001, kWindows);
    t.add_row({"Windows lower edge (q0.1)",
               std::to_string(static_cast<int>(lo)), "941", "0.1% missed"});
  }
  {
    const double lo_bsd = analysis::range_quantile(0.001, kFreeBsd);
    t.add_row({"FreeBSD lower edge (q0.1)",
               std::to_string(static_cast<int>(lo_bsd)), "6,125",
               "0.1% missed"});
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf("paper cross-checks:\n"
              "  misclassified FreeBSD at 16,331: paper 0.05%% | model %.3f%%\n"
              "  misclassified Linux at 16,331:   paper 3.5%%  | model %.3f%%\n"
              "  P(<=7 unique of 10 from 200 ports): paper 0.066%% | model %.3f%%\n",
              100 * (1.0 - analysis::range_cdf(16331, kFreeBsd)),
              100 * analysis::range_cdf(16331, kLinux),
              100 * analysis::small_pool_probability(200, 10, 7));
  return 0;
}
