// Table 1: DSAV results for the 10 countries with the most ASes in the
// target set (total vs. reachable ASes and target IPs per country).
#include <algorithm>

#include "bench_common.h"
#include "util/csv.h"

int main() {
  using namespace cd;
  std::printf("== table1_countries: paper Table 1 ==\n");
  auto run = bench::run_standard_experiment();

  auto rows = analysis::dsav_by_country(run.results->records,
                                        run.world->targets, run.world->geo);
  std::sort(rows.begin(), rows.end(),
            [](const analysis::CountryRow& a, const analysis::CountryRow& b) {
              return a.ases_total > b.ases_total;
            });

  // The paper's Table 1 values for shape comparison.
  struct PaperRow {
    const char* country;
    const char* ases;
    const char* ips;
  };
  static const PaperRow kPaper[] = {
      {"United States", "28%", "3.2%"}, {"Brazil", "59%", "4.8%"},
      {"Russia", "59%", "11.6%"},       {"Germany", "36%", "3.8%"},
      {"United Kingdom", "33%", "4.5%"}, {"Poland", "52%", "6.0%"},
      {"Ukraine", "63%", "15.4%"},      {"India", "41%", "11.6%"},
      {"Australia", "32%", "4.6%"},     {"Canada", "36%", "2.8%"},
  };
  auto paper_for = [&](const std::string& c) -> const PaperRow* {
    for (const PaperRow& p : kPaper) {
      if (c == p.country) return &p;
    }
    return nullptr;
  };

  TextTable t({"Country", "ASes total", "ASes reachable", "IP targets",
               "IPs reachable", "paper (AS%, IP%)"});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, Align::kRight);

  CsvWriter csv("table1_countries.csv");
  csv.write_row({"country", "ases_total", "ases_reachable", "targets_total",
                 "targets_reachable"});

  std::size_t shown = 0;
  for (const analysis::CountryRow& row : rows) {
    if (row.country == "Other") continue;
    if (shown++ >= 10) break;
    const PaperRow* paper = paper_for(row.country);
    t.add_row({row.country, with_commas(row.ases_total),
               bench::count_pct(row.ases_reachable, row.ases_total, 0),
               with_commas(row.targets_total),
               bench::count_pct(row.targets_reachable, row.targets_total),
               paper ? (std::string(paper->ases) + ", " + paper->ips)
                     : std::string("-")});
    csv.write_row({row.country, std::to_string(row.ases_total),
                   std::to_string(row.ases_reachable),
                   std::to_string(row.targets_total),
                   std::to_string(row.targets_reachable)});
  }
  std::printf("%s\n(top-10 by AS count; CSV: table1_countries.csv)\n",
              t.to_string().c_str());
  return 0;
}
