// Shared scaffolding for the reproduction benches: world/experiment setup,
// paper-vs-measured row helpers, CSV output.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "analysis/classify.h"
#include "core/experiment.h"
#include "core/parallel.h"
#include "ditl/world.h"
#include "util/str.h"
#include "util/table.h"

namespace cd::bench {

/// Command-line knobs shared by the table/figure benches.
struct RunOptions {
  double scale = 1.0;  // multiplies the AS count
  bool wildcard_answers = false;
  std::uint64_t seed = 42;
  std::size_t shards = 1;   // AS-partitioned campaign shards
  std::size_t threads = 1;  // worker threads for the sharded runner
  /// When set, the campaign records its wire traffic (results->capture).
  std::optional<cd::core::CaptureSpec> capture;
};

/// Parses --scale=X --seed=N --threads=N --shards=N (unknown args ignored,
/// so benches keep working under tooling that appends its own flags).
/// --threads alone implies one shard per thread.
inline RunOptions parse_run_options(int argc, char** argv) {
  RunOptions opt;
  bool shards_given = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt.threads = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      opt.shards = std::strtoull(arg + 9, nullptr, 10);
      shards_given = true;
    } else if (std::strcmp(arg, "--wildcard") == 0) {
      opt.wildcard_answers = true;
    }
  }
  if (opt.threads == 0) opt.threads = 1;
  if (!shards_given) opt.shards = opt.threads;
  if (opt.shards == 0) opt.shards = 1;
  return opt;
}

/// A generated world plus completed experiment results. In sharded mode
/// (`options.threads > 1` or `options.shards > 1`) the campaign runs via
/// core::run_sharded_experiment; `world` is then the reference world —
/// identical to every shard's, used for target lists, geo and ground truth —
/// and `experiment` is null.
struct Run {
  std::unique_ptr<cd::ditl::World> world;
  std::unique_ptr<cd::core::Experiment> experiment;
  const cd::core::ExperimentResults* results = nullptr;
  cd::core::ExperimentResults merged;  // storage for the sharded path
};

inline Run run_standard_experiment(const RunOptions& options) {
  using clock = std::chrono::steady_clock;

  cd::ditl::WorldSpec spec = cd::ditl::bench_world_spec();
  spec.n_asns = static_cast<int>(spec.n_asns * options.scale);
  spec.wildcard_answers = options.wildcard_answers;
  spec.seed = options.seed;

  cd::core::ExperimentConfig config;
  config.analyst = cd::scanner::AnalystConfig{};
  config.capture = options.capture;

  const auto t0 = clock::now();
  Run run;
  run.world = cd::ditl::generate_world(spec);
  const auto t1 = clock::now();

  const auto ms = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
  };

  const bool sharded = options.threads > 1 || options.shards > 1;
  long long campaign_ms = 0;
  if (sharded) {
    config.num_shards = options.shards;
    config.num_threads = options.threads;
    cd::core::ShardedResults out = cd::core::run_sharded_experiment(spec, config);
    campaign_ms = static_cast<long long>(out.wall_ms);
    std::printf("# shards: %zu on %zu threads\n", options.shards,
                options.threads);
    for (const cd::core::ShardTiming& s : out.shards) {
      std::printf("#   shard %zu: %zu targets, gen %.0fms, run %.0fms",
                  s.shard, s.targets, s.gen_ms, s.run_ms);
      if (s.spill_ms > 0) std::printf(", spill %.0fms", s.spill_ms);
      std::printf(", peak RSS %zu KiB\n", s.peak_rss_kb);
    }
    std::printf("# wall %.0fms, merge %.0fms, aggregate shard time %.0fms "
                "(parallel speedup est. %.2fx), peak RSS %zu KiB\n",
                out.wall_ms, out.merge_ms, out.aggregate_ms(),
                out.wall_ms > 0 ? out.aggregate_ms() / out.wall_ms : 0.0,
                out.peak_rss_kb);
    run.merged = std::move(out.merged);
    run.results = &run.merged;
  } else {
    run.experiment = std::make_unique<cd::core::Experiment>(*run.world, config);
    run.results = &run.experiment->run();
    campaign_ms = ms(t1, clock::now());
  }

  std::printf(
      "# world: %zu ASes, %zu resolvers, %zu targets (gen %lldms)\n"
      "# campaign: %llu probes, %llu auth log entries (run %lldms), "
      "digest %016llx\n\n",
      run.world->topology.as_count(), run.world->resolvers.size(),
      run.world->targets.size(), static_cast<long long>(ms(t0, t1)),
      static_cast<unsigned long long>(run.results->queries_sent),
      static_cast<unsigned long long>(run.results->collector_stats.entries_seen),
      campaign_ms,
      static_cast<unsigned long long>(cd::core::results_digest(*run.results)));
  return run;
}

/// Legacy entry point used by benches without campaign-shaping flags.
inline Run run_standard_experiment(double scale = 1.0,
                                   bool wildcard_answers = false,
                                   std::uint64_t seed = 42) {
  RunOptions options;
  options.scale = scale;
  options.wildcard_answers = wildcard_answers;
  options.seed = seed;
  return run_standard_experiment(options);
}

/// "measured (paper: X)" cell helper.
inline std::string vs_paper(const std::string& measured,
                            const std::string& paper) {
  return measured + "  (paper: " + paper + ")";
}

inline std::string count_pct(std::uint64_t part, std::uint64_t whole,
                             int digits = 1) {
  return cd::with_commas(part) + " (" +
         cd::percent(static_cast<double>(part), static_cast<double>(whole),
                     digits) +
         ")";
}

}  // namespace cd::bench
