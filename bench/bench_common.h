// Shared scaffolding for the reproduction benches: world/experiment setup,
// paper-vs-measured row helpers, CSV output.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/classify.h"
#include "core/experiment.h"
#include "ditl/world.h"
#include "util/str.h"
#include "util/table.h"

namespace cd::bench {

/// A generated world plus completed experiment results.
struct Run {
  std::unique_ptr<cd::ditl::World> world;
  std::unique_ptr<cd::core::Experiment> experiment;
  const cd::core::ExperimentResults* results = nullptr;
};

/// Generates the bench world and runs the full campaign (the expensive part
/// every table/figure bench shares). `scale` multiplies the AS count.
inline Run run_standard_experiment(double scale = 1.0,
                                   bool wildcard_answers = false,
                                   std::uint64_t seed = 42) {
  using clock = std::chrono::steady_clock;

  cd::ditl::WorldSpec spec = cd::ditl::bench_world_spec();
  spec.n_asns = static_cast<int>(spec.n_asns * scale);
  spec.wildcard_answers = wildcard_answers;
  spec.seed = seed;

  const auto t0 = clock::now();
  Run run;
  run.world = cd::ditl::generate_world(spec);
  const auto t1 = clock::now();

  cd::core::ExperimentConfig config;
  config.analyst = cd::scanner::AnalystConfig{};
  run.experiment =
      std::make_unique<cd::core::Experiment>(*run.world, config);
  run.results = &run.experiment->run();
  const auto t2 = clock::now();

  const auto ms = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
  };
  std::printf(
      "# world: %zu ASes, %zu resolvers, %zu targets (gen %lldms)\n"
      "# campaign: %llu probes, %llu auth log entries, %llu events "
      "(run %lldms)\n\n",
      run.world->topology.as_count(), run.world->resolvers.size(),
      run.world->targets.size(), static_cast<long long>(ms(t0, t1)),
      static_cast<unsigned long long>(run.results->queries_sent),
      static_cast<unsigned long long>(run.results->collector_stats.entries_seen),
      static_cast<unsigned long long>(run.world->loop.executed()),
      static_cast<long long>(ms(t1, t2)));
  return run;
}

/// "measured (paper: X)" cell helper.
inline std::string vs_paper(const std::string& measured,
                            const std::string& paper) {
  return measured + "  (paper: " + paper + ")";
}

inline std::string count_pct(std::uint64_t part, std::uint64_t whole,
                             int digits = 1) {
  return cd::with_commas(part) + " (" +
         cd::percent(static_cast<double>(part), static_cast<double>(whole),
                     digits) +
         ")";
}

}  // namespace cd::bench
