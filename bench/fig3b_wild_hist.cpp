// Figure 3b: in-the-wild frequency distribution of source-port ranges with
// Beta(9,2) model overlays and p0f composition per bar; includes the
// windows-wrap-adjustment ablation the DESIGN.md calls out.
#include "analysis/beta.h"
#include "analysis/histogram.h"
#include "analysis/port_range.h"
#include "bench_common.h"
#include "util/csv.h"

int main() {
  using namespace cd;
  std::printf("== fig3b_wild_hist: paper Figure 3b ==\n");
  auto run = bench::run_standard_experiment();
  const auto& p0f = analysis::P0fDatabase::standard();
  const auto samples = analysis::range_samples(run.results->records, p0f);

  constexpr int kBin = 500;
  analysis::StackedHistogram hist(0, 65535, kBin,
                                  {"p0f unknown", "p0f Windows", "p0f Linux",
                                   "p0f other"});
  for (const analysis::RangeSample& s : samples) {
    std::size_t series = 0;
    if (s.p0f == analysis::P0fClass::kWindows) series = 1;
    else if (s.p0f == analysis::P0fClass::kLinux) series = 2;
    else if (s.p0f != analysis::P0fClass::kUnknown) series = 3;
    hist.add(s.range, series);
  }

  // Model overlay: per-pool Beta densities scaled to the planted population
  // share of each band, integrated per bin.
  struct Pool {
    double size;
    double weight;
  };
  const Pool kPools[] = {{2500, 0.046}, {16384, 0.038}, {28233, 0.30},
                         {64512, 0.60}};
  std::vector<double> overlay(hist.bin_count(), 0.0);
  const double n = static_cast<double>(samples.size());
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    const double mid = hist.bin_lo(b) + kBin / 2.0;
    double density = 0;
    for (const Pool& pool : kPools) {
      density += pool.weight * analysis::range_pdf(mid, pool.size);
    }
    overlay[b] = density * kBin * n;  // expected count in this bin
  }
  hist.set_overlay(overlay);

  std::printf("%s\n", hist.render_ascii().c_str());

  CsvWriter csv("fig3b_wild_hist.csv");
  for (const auto& row : hist.csv_rows()) csv.write_row(row);

  // Ablation: how many Windows-fingerprinted resolvers land in the Windows
  // band with vs. without the §5.3.2 wrap adjustment.
  std::uint64_t windows_band_adjusted = 0;
  std::uint64_t windows_band_raw = 0;
  std::uint64_t wrap_applied = 0;
  for (const auto& [addr, rec] : run.results->records) {
    if (!rec.reachable() || !rec.tcp_syn) continue;
    if (p0f.classify(*rec.tcp_syn) != analysis::P0fClass::kWindows) continue;
    const auto ports = analysis::combined_ports(rec);
    if (ports.size() < analysis::kMinPortSamples) continue;
    const int raw = analysis::compute_port_stats(ports).range;
    const int adjusted = analysis::adjusted_range(ports);
    if (analysis::windows_wrap_applies(ports)) ++wrap_applied;
    if (analysis::classify_range(adjusted) == 3) ++windows_band_adjusted;
    if (analysis::classify_range(raw) == 3) ++windows_band_raw;
  }
  std::printf(
      "ablation (wrap adjustment): Windows-fingerprinted resolvers in the\n"
      "941-2,488 band: %llu with adjustment vs %llu without (%llu wrapped\n"
      "pools rescued; unadjusted wrapped pools misread as ~14,000-range).\n"
      "CSV: fig3b_wild_hist.csv\n",
      static_cast<unsigned long long>(windows_band_adjusted),
      static_cast<unsigned long long>(windows_band_raw),
      static_cast<unsigned long long>(wrap_applied));
  return 0;
}
