// Ablation for §3.6.4: NXDOMAIN-answering authoritative servers lose the
// full query name for strictly QNAME-minimizing resolvers; the paper's
// proposed fix (wildcard-synthesized answers) recovers it. Runs the same
// world both ways and compares attribution coverage.
#include "bench_common.h"

namespace {

struct Outcome {
  std::uint64_t qmin_partial = 0;
  std::uint64_t qmin_asns = 0;
  std::uint64_t reachable_targets = 0;
  std::uint64_t planted_qmin_reached = 0;
};

Outcome run_variant(bool wildcard) {
  using namespace cd;
  auto run = cd::bench::run_standard_experiment(/*scale=*/0.5, wildcard);
  Outcome out;
  out.qmin_partial = run.results->collector_stats.qmin_partial;
  out.qmin_asns = run.results->qmin_asns.size();
  for (const auto& [addr, rec] : run.results->records) {
    if (!rec.reachable()) continue;
    ++out.reachable_targets;
    const auto it = run.world->truth_resolvers.find(addr);
    if (it != run.world->truth_resolvers.end() && it->second.qmin) {
      ++out.planted_qmin_reached;
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace cd;
  std::printf("== ablation_wildcard: §3.6.4 NXDOMAIN vs wildcard answers ==\n");

  std::printf("--- variant A: NXDOMAIN responses (the paper's setup) ---\n");
  const Outcome nx = run_variant(false);
  std::printf("--- variant B: wildcard-synthesized answers (proposed fix) ---\n");
  const Outcome wc = run_variant(true);

  TextTable t({"Metric", "NXDOMAIN", "Wildcard"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kRight);
  t.add_row({"QNAME-minimized partial queries (unattributable)",
             with_commas(nx.qmin_partial), with_commas(wc.qmin_partial)});
  t.add_row({"ASNs only seen via partial names", with_commas(nx.qmin_asns),
             with_commas(wc.qmin_asns)});
  t.add_row({"Reachable targets attributed", with_commas(nx.reachable_targets),
             with_commas(wc.reachable_targets)});
  t.add_row({"QNAME-minimizing resolvers attributed",
             with_commas(nx.planted_qmin_reached),
             with_commas(wc.planted_qmin_reached)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "expected shape: wildcard answers eliminate the partial-name gap — the\n"
      "strictly-minimizing resolvers never hit NXDOMAIN mid-walk, so their\n"
      "full query names (and hence src/dst attribution) reach our servers.\n");
  return 0;
}
