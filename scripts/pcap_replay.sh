#!/usr/bin/env bash
# Export-replay round trip for the wire capture subsystem: run a campaign
# with the packet tap installed, write the traffic to a standard pcap, then
# feed that file back through the bounds-checked reader into the passive
# analysis (§5.2.2) — proving the on-disk artifact carries everything the
# analysis needs, with no simulator state on the side.
#
# Usage: scripts/pcap_replay.sh [--scale=X] [--seed=N] [build-dir]
#   --scale / --seed are forwarded to both benches (defaults 0.05 / 42);
#   build-dir defaults to build-replay.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="--scale=0.05"
SEED="--seed=42"
BUILD="build-replay"
for arg in "$@"; do
  case "$arg" in
    --scale=*) SCALE="$arg" ;;
    --seed=*) SEED="$arg" ;;
    *) BUILD="$arg" ;;
  esac
done

OUT="${BUILD}/replay.pcap"

echo "=== build ==="
cmake -B "${BUILD}" -S . >/dev/null
cmake --build "${BUILD}" -j --target pcap_export passive_comparison

echo "=== export: campaign -> ${OUT} (+.idx) ==="
# Delivered packets only: a passive tap never sees traffic the borders
# dropped, so the replay semantics match a real root-server capture.
"${BUILD}/bench/pcap_export" "${SCALE}" "${SEED}" --no-drops --out="${OUT}"

if command -v tcpdump >/dev/null 2>&1; then
  echo "=== independent reader: tcpdump -r ==="
  tcpdump -r "${OUT}" -c 5
else
  echo "=== tcpdump not installed; skipping independent read-back ==="
fi

echo "=== replay: ${OUT} -> passive comparison ==="
"${BUILD}/bench/passive_comparison" "${SCALE}" "${SEED}" --pcap="${OUT}"

echo "=== pcap_replay.sh: round trip complete ==="
