#!/usr/bin/env bash
# CI entry point: plain build + full test suite, then three sanitizer
# builds — ThreadSanitizer over the sharded-runner tests (label
# "parallel") to catch data races the deterministic-equivalence tests
# cannot, AddressSanitizer over the wire-codec round-trip/fuzz tests
# (truncation fuzzing only proves "throws, never over-reads" when the
# reads are instrumented), and UndefinedBehaviorSanitizer over the full
# unit suite (shift/overflow/alignment UB in the byte codecs).
#
# Usage: scripts/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build-ci}"

echo "=== plain build + ctest ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j
ctest --test-dir "${PREFIX}" --output-on-failure -j

echo "=== TSan build + parallel-label ctest ==="
cmake -B "${PREFIX}-tsan" -S . -DCD_SANITIZE=thread >/dev/null
cmake --build "${PREFIX}-tsan" -j --target test_core_parallel
ctest --test-dir "${PREFIX}-tsan" -L parallel --output-on-failure

echo "=== ASan build + codec/pcap round-trip/fuzz tests ==="
cmake -B "${PREFIX}-asan" -S . -DCD_SANITIZE=address >/dev/null
cmake --build "${PREFIX}-asan" -j --target test_util_bytes test_util_pcap test_golden_pcap
ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir "${PREFIX}-asan" -R test_util_bytes --output-on-failure
ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir "${PREFIX}-asan" -L pcap --output-on-failure

echo "=== UBSan build + unit/pcap-label ctest ==="
cmake -B "${PREFIX}-ubsan" -S . -DCD_SANITIZE=undefined >/dev/null
cmake --build "${PREFIX}-ubsan" -j
ctest --test-dir "${PREFIX}-ubsan" -L "unit|pcap" --output-on-failure -j

echo "=== golden capture readable by stock tooling ==="
# The fixture claims to be a standard pcap; let an independent reader vouch
# for it when one is installed (CI images without tcpdump skip gracefully).
if command -v tcpdump >/dev/null 2>&1; then
  tcpdump -r tests/fixtures/quickstart.pcap -c 5 >/dev/null
  echo "tcpdump read the golden fixture"
else
  echo "tcpdump not installed; skipping read-back check"
fi

echo "=== ci.sh: all green ==="
