#!/usr/bin/env bash
# CI entry point: plain build + full test suite, then a ThreadSanitizer
# build that reruns the sharded-runner tests (label "parallel") to catch
# data races the deterministic-equivalence tests cannot.
#
# Usage: scripts/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build-ci}"

echo "=== plain build + ctest ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j
ctest --test-dir "${PREFIX}" --output-on-failure -j

echo "=== TSan build + parallel-label ctest ==="
cmake -B "${PREFIX}-tsan" -S . -DCD_SANITIZE=thread >/dev/null
cmake --build "${PREFIX}-tsan" -j --target test_core_parallel
ctest --test-dir "${PREFIX}-tsan" -L parallel --output-on-failure

echo "=== ci.sh: all green ==="
