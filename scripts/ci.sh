#!/usr/bin/env bash
# CI entry point: plain build + full test suite, then three sanitizer
# builds — ThreadSanitizer over the sharded-runner tests (label
# "parallel") plus the streaming-TCP suite (label "tcp", whose
# segmentation differential runs campaigns through the sharded runner)
# and the persistent-transport suite (label "transport", whose campaign
# differential does the same with pipelined sessions), AddressSanitizer
# over the fuzz + pcap + batched-delivery + tcp + transport + campaign +
# crosscheck + poison labels (bit-flip/truncation fuzzing only proves
# "throws, never over-reads" when the reads are instrumented, and the TCP
# reassembly/segment/session paths exercise the pooled-buffer recycling
# hardest), and UndefinedBehaviorSanitizer over the same labels plus the
# full unit suite (shift/overflow/alignment UB in the byte codecs). A
# final label audit fails the run if a tests/test_*.cpp is unregistered
# or a registered test carries no label.
#
# Usage: scripts/ci.sh [build-dir-prefix]   (default: build-ci)
# Env:   CD_COVERAGE=1 adds a gcov-instrumented run reporting
#        per-directory line coverage for src/ (skipped unless gcovr is
#        installed).
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build-ci}"

echo "=== plain build + ctest ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j
ctest --test-dir "${PREFIX}" --output-on-failure -j

echo "=== TSan build + parallel/tcp/transport/eventcore-label ctest ==="
# The eventcore label covers the sharded wheel-vs-oracle campaign: each
# worker thread drives its own timing wheel, so the node pools and slot
# arrays must be provably unshared under TSan. The transport label runs
# its persistent-session campaigns through the same threaded runner.
cmake -B "${PREFIX}-tsan" -S . -DCD_SANITIZE=thread >/dev/null
cmake --build "${PREFIX}-tsan" -j --target test_core_parallel test_sim_tcp \
  test_sim_event_core test_transport
ctest --test-dir "${PREFIX}-tsan" -L "parallel|tcp|transport|eventcore" \
  --output-on-failure

echo "=== ASan build + fuzz/pcap/batched/tcp/transport/campaign/crosscheck/poison ctest ==="
# The campaign label covers the streamed-world + disk-spill battery: the
# spill truncation/bit-flip fuzz only proves "throws, never over-reads" when
# the reads are instrumented, and its RSS-budget test asserts the
# bounded-memory claim under a sanitizer-scaled budget that stays fixed as
# targets grow. The crosscheck label runs the Closed Resolver differential
# battery (second scanner plane) under the same instrumentation, and the
# poison label the off-path attack plane (forged packets are exactly the
# adversarial inputs the decoder paths must over-read-proof).
cmake -B "${PREFIX}-asan" -S . -DCD_SANITIZE=address >/dev/null
cmake --build "${PREFIX}-asan" -j --target \
  test_util_bytes test_dns_message test_util_pcap test_golden_pcap \
  test_sim_batched test_sim_tcp test_net_checksum test_campaign_stream \
  test_crosscheck test_attack_poisoning test_transport
ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir "${PREFIX}-asan" \
  -L "fuzz|pcap|batched|tcp|transport|campaign|crosscheck|poison" \
  --output-on-failure

echo "=== UBSan build + unit/pcap/batched/tcp/transport/campaign/crosscheck/poison ctest ==="
cmake -B "${PREFIX}-ubsan" -S . -DCD_SANITIZE=undefined >/dev/null
cmake --build "${PREFIX}-ubsan" -j
ctest --test-dir "${PREFIX}-ubsan" \
  -L "unit|pcap|batched|fuzz|tcp|transport|campaign|crosscheck|poison" \
  --output-on-failure -j

echo "=== ctest label audit ==="
# Two invariants keep the sanitizer lanes honest as tests are added:
# every tests/test_*.cpp must be registered with cd_test (an unregistered
# file silently never runs), and every registered test must carry at least
# one label (ctest -L unions select everything, so a test added with a
# novel unlisted label still runs in the plain suite and shows up here).
for f in tests/test_*.cpp; do
  name="$(basename "${f}" .cpp)"
  if ! grep -Eq "cd_test\(${name}( |\))" tests/CMakeLists.txt; then
    echo "label audit: ${f} is not registered in tests/CMakeLists.txt" >&2
    exit 1
  fi
done
labels="$(ctest --test-dir "${PREFIX}" --print-labels \
  | sed -n 's/^  *//p' | grep -v 'Labels' | paste -sd'|' -)"
total="$(ctest --test-dir "${PREFIX}" -N | sed -n 's/^Total Tests: //p')"
labeled="$(ctest --test-dir "${PREFIX}" -N -L "${labels}" \
  | sed -n 's/^Total Tests: //p')"
if [[ -z "${total}" || "${total}" != "${labeled}" ]]; then
  echo "label audit: ${labeled:-0}/${total:-?} tests carry a label" >&2
  echo "             (union tried: ${labels})" >&2
  exit 1
fi
echo "label audit: all ${total} tests registered and labeled"

if [[ "${CD_COVERAGE:-0}" == "1" ]]; then
  if command -v gcovr >/dev/null 2>&1; then
    echo "=== coverage build + per-directory report for src/ ==="
    cmake -B "${PREFIX}-cov" -S . -DCD_COVERAGE=ON >/dev/null
    cmake --build "${PREFIX}-cov" -j
    ctest --test-dir "${PREFIX}-cov" --output-on-failure -j
    # Default txt report (one row per file), folded into one line per src/
    # subsystem (net, dns, sim, ...) plus gcovr's own TOTAL row.
    gcovr --root . --filter 'src/' --object-directory "${PREFIX}-cov" \
      | tee "${PREFIX}-cov/coverage.txt" \
      | awk '
          /^TOTAL/ { print; next }
          match($1, /^src\/[^/]+\//) {
            dir = substr($1, RSTART, RLENGTH)
            lines[dir] += $2; cov[dir] += $3
          }
          END {
            for (d in lines)
              printf "%-16s %6d lines %6.1f%% covered\n",
                     d, lines[d], lines[d] ? 100 * cov[d] / lines[d] : 0
          }' | sort
  else
    echo "CD_COVERAGE=1 set but gcovr not installed; skipping coverage"
  fi
fi

echo "=== golden capture readable by stock tooling ==="
# The fixture claims to be a standard pcap; let an independent reader vouch
# for it when one is installed (CI images without tcpdump skip gracefully).
if command -v tcpdump >/dev/null 2>&1; then
  tcpdump -r tests/fixtures/quickstart.pcap -c 5 >/dev/null
  echo "tcpdump read the golden fixture"
else
  echo "tcpdump not installed; skipping read-back check"
fi

echo "=== ci.sh: all green ==="
