// poisoning_demo: the full attack chain the paper warns about, end to end.
//
//   1. INFILTRATE  — the victim network lacks DSAV, so spoofed queries that
//                    claim an internal source reach its *closed* resolver.
//   2. FINGERPRINT — the attacker triggers lookups in a domain they control
//                    and reads the resolver's source ports off their own
//                    authoritative server (the paper's §5.2 technique).
//   3. POISON      — Kaminsky-style race: trigger a lookup for a fresh name
//                    in the victim domain, then flood forged responses
//                    spoofed from the legitimate nameserver, guessing
//                    (source port, txid). A fixed source port reduces the
//                    search space from 2^32 to 2^16 (paper §5.2.1).
//
// The demo runs the race against a fixed-port resolver and a randomizing
// one, and reports the contrast. (A real Kaminsky attack escalates from one
// poisoned name to the whole zone via forged NS records; the race mechanics
// — the part source-port randomization defends — are identical.)
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "dns/zone.h"
#include "resolver/auth.h"
#include "resolver/recursive.h"
#include "sim/host.h"
#include "util/str.h"

using namespace cd;

namespace {

struct RaceOutcome {
  bool poisoned = false;
  int rounds = 0;
  std::uint64_t forged_packets = 0;
};

class PoisoningLab {
 public:
  explicit PoisoningLab(resolver::DnsSoftware software, std::uint64_t seed)
      : rng_(seed), network_(topology_, loop_, rng_.split("net")) {
    // Victim AS: no DSAV (half the Internet, per the paper).
    topology_.add_as(kVictimAsn, sim::FilterPolicy{});
    topology_.announce(kVictimAsn, net::Prefix::must_parse("20.20.0.0/16"));
    // Legitimate DNS infrastructure.
    topology_.add_as(64500, sim::FilterPolicy{.osav = true, .dsav = true});
    topology_.announce(64500, net::Prefix::must_parse("199.7.0.0/16"));
    // Attacker AS: no OSAV, so it can spoof.
    topology_.add_as(64666, sim::FilterPolicy{});
    topology_.announce(64666, net::Prefix::must_parse("66.66.0.0/16"));

    const auto& os = sim::os_profile(sim::OsId::kUbuntu1904);

    // Legit auth: root + bank.test zone.
    auth_host_ = std::make_unique<sim::Host>(
        network_, 64500, os, std::vector<net::IpAddr>{kLegitAuth},
        rng_.split("auth"), "legit-auth");
    dns::SoaRdata soa;
    soa.mname = dns::DnsName::must_parse("ns.bank.test");
    soa.rname = dns::DnsName::must_parse("hostmaster.bank.test");
    auto zone = std::make_shared<dns::Zone>(dns::DnsName(), soa);
    zone->add(dns::make_a(dns::DnsName::must_parse("*.bank.test"),
                          net::IpAddr::must_parse("199.7.0.80"), 3600));
    auth_ = std::make_unique<resolver::AuthServer>(*auth_host_);
    auth_->add_zone(zone);

    // Attacker-controlled auth for evil.test (port reconnaissance).
    evil_auth_host_ = std::make_unique<sim::Host>(
        network_, 64666, os, std::vector<net::IpAddr>{kEvilAuth},
        rng_.split("evil"), "evil-auth");
    auto evil_zone = std::make_shared<dns::Zone>(
        dns::DnsName::must_parse("evil.test"), soa);
    evil_zone->add(dns::make_a(dns::DnsName::must_parse("*.evil.test"),
                               kEvilAuth, 1));
    evil_auth_ = std::make_unique<resolver::AuthServer>(*evil_auth_host_);
    evil_auth_->add_zone(evil_zone);
    // The root knows about evil.test (the attacker registered a domain).
    zone->add(dns::make_ns(dns::DnsName::must_parse("evil.test"),
                           dns::DnsName::must_parse("ns.evil.test")));
    zone->add(dns::make_a(dns::DnsName::must_parse("ns.evil.test"),
                          kEvilAuth));

    // The victim's *closed* resolver: ACL admits only the victim AS.
    resolver_host_ = std::make_unique<sim::Host>(
        network_, kVictimAsn, os, std::vector<net::IpAddr>{kResolver},
        rng_.split("res"), "victim-resolver");
    resolver::ResolverConfig config;
    config.acl = {net::Prefix::must_parse("20.20.0.0/16")};
    resolver_ = std::make_unique<resolver::RecursiveResolver>(
        *resolver_host_, config, resolver::RootHints{{kLegitAuth}},
        resolver::make_default_allocator(software, os, rng_.split("alloc")),
        rng_.split("resolver"));

    // A legitimate stub client inside the victim network (for verification).
    client_host_ = std::make_unique<sim::Host>(
        network_, kVictimAsn, os, std::vector<net::IpAddr>{kClient},
        rng_.split("client"), "victim-client");
  }

  /// Step 1+2: spoofed-source queries for names under evil.test; the
  /// attacker's own auth logs the resolver's source ports.
  std::vector<std::uint16_t> reconnaissance(int n) {
    std::vector<std::uint16_t> ports;
    evil_auth_->add_observer([&](const resolver::AuthLogEntry& entry) {
      if (entry.client == kResolver) ports.push_back(entry.client_port);
    });
    for (int i = 0; i < n; ++i) {
      loop_.schedule_at(loop_.now() +
                            static_cast<sim::SimTime>(i) * sim::kSecond,
                        [this, i] {
                          // Spoofed "internal" client: crosses the DSAV-less
                          // border and passes the resolver's ACL.
                          send_spoofed_client_query(
                              "r" + std::to_string(i) + ".evil.test");
                        });
    }
    loop_.run(50'000'000);
    return ports;
  }

  /// Step 3: one race round. Returns true if the poison took.
  bool race_round(int round, std::uint16_t guessed_port, int forged_per_round) {
    const std::string name = "w" + std::to_string(round) + ".bank.test";
    send_spoofed_client_query(name);

    // The flood: forged responses "from" the legit auth, racing the real one.
    loop_.schedule_in(2 * sim::kMillisecond, [this, name, guessed_port,
                                              forged_per_round] {
      for (int i = 0; i < forged_per_round; ++i) {
        dns::DnsMessage forged = dns::make_response(
            dns::make_query(static_cast<std::uint16_t>(rng_.u64()),
                            dns::DnsName::must_parse(name), dns::RrType::kA),
            dns::Rcode::kNoError);
        forged.header.aa = true;
        forged.answers.push_back(dns::make_a(dns::DnsName::must_parse(name),
                                             kAttackerIp, 3600));
        network_.send(net::make_udp(kLegitAuth, 53, kResolver, guessed_port,
                                    forged.encode()),
                      64666);  // spoofed egress through the attacker's AS
        ++forged_sent_;
      }
    });
    loop_.run(50'000'000);

    // Verification: what does a real victim client now get for the name?
    std::optional<net::IpAddr> answer;
    client_host_->bind_udp(5353, [&](const net::Packet& pkt) {
      const auto resp = dns::DnsMessage::decode(pkt.payload);
      for (const auto& rr : resp.answers) {
        if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
          answer = a->addr;
        }
      }
    });
    client_host_->send_udp(
        kClient, 5353, kResolver, 53,
        dns::make_query(1, dns::DnsName::must_parse(name), dns::RrType::kA)
            .encode());
    loop_.run(50'000'000);
    client_host_->unbind_udp(5353);
    return answer == kAttackerIp;
  }

  RaceOutcome attack(std::uint16_t guessed_port, int max_rounds,
                     int forged_per_round) {
    RaceOutcome outcome;
    for (int round = 0; round < max_rounds; ++round) {
      ++outcome.rounds;
      if (race_round(round, guessed_port, forged_per_round)) {
        outcome.poisoned = true;
        break;
      }
    }
    outcome.forged_packets = forged_sent_;
    return outcome;
  }

 private:
  void send_spoofed_client_query(const std::string& qname) {
    const dns::DnsMessage query = dns::make_query(
        static_cast<std::uint16_t>(rng_.u64()),
        dns::DnsName::must_parse(qname), dns::RrType::kA);
    // Source: a fabricated internal host; port: anything.
    network_.send(net::make_udp(kSpoofedClient,
                                static_cast<std::uint16_t>(1024 + rng_.uniform(60000)),
                                kResolver, 53, query.encode()),
                  64666);
  }

  static constexpr sim::Asn kVictimAsn = 64497;
  const net::IpAddr kLegitAuth = net::IpAddr::must_parse("199.7.0.1");
  const net::IpAddr kEvilAuth = net::IpAddr::must_parse("66.66.0.1");
  const net::IpAddr kResolver = net::IpAddr::must_parse("20.20.1.10");
  const net::IpAddr kClient = net::IpAddr::must_parse("20.20.2.20");
  const net::IpAddr kSpoofedClient = net::IpAddr::must_parse("20.20.3.30");
  const net::IpAddr kAttackerIp = net::IpAddr::must_parse("66.66.6.6");

  Rng rng_;
  sim::EventLoop loop_;
  sim::Topology topology_;
  sim::Network network_;
  std::unique_ptr<sim::Host> auth_host_, evil_auth_host_, resolver_host_,
      client_host_;
  std::unique_ptr<resolver::AuthServer> auth_, evil_auth_;
  std::unique_ptr<resolver::RecursiveResolver> resolver_;
  std::uint64_t forged_sent_ = 0;
};

void run_scenario(const char* label, resolver::DnsSoftware software,
                  int max_rounds) {
  PoisoningLab lab(software, 42);

  const auto ports = lab.reconnaissance(10);
  const std::set<std::uint16_t> unique(ports.begin(), ports.end());
  std::printf("\n--- %s ---\n", label);
  std::printf("reconnaissance: %zu queries observed, %zu distinct source "
              "ports%s\n",
              ports.size(), unique.size(),
              unique.size() == 1 ? " -> PORT IS KNOWN" : "");

  // Guess: the observed port (correct for fixed-port resolvers; a stab in
  // the dark otherwise).
  const std::uint16_t guess = ports.empty() ? 1024 : ports.back();
  const auto outcome = lab.attack(guess, max_rounds, 512);
  if (outcome.poisoned) {
    std::printf("POISONED after %d rounds (%s forged packets): the victim "
                "client now resolves the bank to the attacker's address\n",
                outcome.rounds, with_commas(outcome.forged_packets).c_str());
  } else {
    std::printf("not poisoned in %d rounds (%s forged packets): the "
                "randomized port pool held\n",
                outcome.rounds, with_commas(outcome.forged_packets).c_str());
  }
}

}  // namespace

int main() {
  std::printf(
      "Kaminsky-style poisoning race against a CLOSED resolver reachable\n"
      "only because its network lacks DSAV (paper §5.1-§5.2). Each round\n"
      "races 512 forged responses against the genuine answer.\n");

  // The §5.2.1 population: a single fixed source port. 2^16 search space.
  run_scenario("fixed source port (BIND 8 era)", resolver::DnsSoftware::kBind8,
               400);
  // A modern randomizing resolver: 2^16 x pool-size search space.
  run_scenario("randomized source ports (BIND 9.11 on Linux)",
               resolver::DnsSoftware::kBind9913To9160, 100);

  std::printf(
      "\nthe contrast is the paper's point: same resolver software stack,\n"
      "same network exposure — the only difference is source-port entropy.\n");
  return 0;
}
