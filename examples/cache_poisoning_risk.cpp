// cache_poisoning_risk: quantify a resolver's exposure to Kaminsky-style
// cache poisoning from its observable source-port behaviour (paper §5.2).
//
// For several DNS software configurations, runs a live resolver in the lab,
// samples the source ports of its outgoing queries (as an on-path-adjacent
// attacker could), and computes the effective guessing space an off-path
// attacker faces: ~ (# plausible ports) x 2^16 transaction IDs.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "analysis/port_range.h"
#include "dns/zone.h"
#include "resolver/auth.h"
#include "resolver/recursive.h"
#include "sim/host.h"
#include "util/str.h"

using namespace cd;

namespace {

// Sample `n` outgoing-query source ports from a fresh resolver instance.
std::vector<std::uint16_t> sample_ports(resolver::DnsSoftware software,
                                        sim::OsId os_id, int n,
                                        std::uint64_t seed) {
  sim::EventLoop loop;
  sim::Topology topology;
  Rng rng(seed);
  sim::Network network(topology, loop, rng.split("net"));
  topology.add_as(1, sim::FilterPolicy{});
  topology.announce(1, net::Prefix::must_parse("50.0.0.0/16"));

  const auto auth_addr = net::IpAddr::must_parse("50.0.0.1");
  sim::Host auth_host(network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
                      {auth_addr}, rng.split("ah"), "auth");
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("lab");
  soa.rname = dns::DnsName::must_parse("lab");
  auto zone = std::make_shared<dns::Zone>(dns::DnsName(), soa);
  zone->add(dns::make_a(dns::DnsName::must_parse("*.lab"), auth_addr, 1));
  resolver::AuthServer auth(auth_host);
  auth.add_zone(zone);

  const auto res_addr = net::IpAddr::must_parse("50.0.1.1");
  const auto& os = sim::os_profile(os_id);
  sim::Host res_host(network, 1, os, {res_addr}, rng.split("rh"), "res");
  resolver::ResolverConfig config;
  config.open = true;
  config.cache.max_ttl = 1;
  resolver::RecursiveResolver res(
      res_host, config, resolver::RootHints{{auth_addr}},
      resolver::make_default_allocator(software, os, rng.split("alloc")),
      rng.split("res"));

  std::vector<std::uint16_t> ports;
  auth.add_observer([&](const resolver::AuthLogEntry& entry) {
    if (entry.client == res_addr) ports.push_back(entry.client_port);
  });
  for (int i = 0; i < n; ++i) {
    loop.schedule_at(static_cast<sim::SimTime>(i) * 20 * sim::kMillisecond,
                     [&res, i] {
                       res.resolve(dns::DnsName::must_parse(
                                       "q" + std::to_string(i) + ".lab"),
                                   dns::RrType::kA,
                                   [](dns::Rcode,
                                      const std::vector<dns::DnsRr>&) {});
                     });
  }
  loop.run(10'000'000);
  return ports;
}

}  // namespace

int main() {
  std::printf(
      "Cache-poisoning risk assessment from observed source ports\n"
      "(an off-path attacker must guess source port x 16-bit txid; RFC 5452\n"
      "demands the port pool be 'as large as possible and practicable')\n\n");

  struct Config {
    const char* label;
    resolver::DnsSoftware software;
    sim::OsId os;
  };
  const Config configs[] = {
      {"BIND 8 era / `query-source port 53`", resolver::DnsSoftware::kBind8,
       sim::OsId::kUbuntu1004},
      {"Windows DNS pre-2008 R2", resolver::DnsSoftware::kWindowsDns2003,
       sim::OsId::kWin2003},
      {"legacy sequential allocator",
       resolver::DnsSoftware::kLegacySequential, sim::OsId::kEmbeddedCpe},
      {"Windows DNS 2008 R2+", resolver::DnsSoftware::kWindowsDns2008R2,
       sim::OsId::kWin2012},
      {"BIND 9.11 on Linux", resolver::DnsSoftware::kBind9913To9160,
       sim::OsId::kUbuntu1904},
      {"Unbound 1.9 (full range)", resolver::DnsSoftware::kUnbound190,
       sim::OsId::kUbuntu1904},
  };

  std::printf("%-38s %8s %9s %14s  %s\n", "configuration", "range",
              "est.pool", "search space", "verdict");
  for (const Config& config : configs) {
    const auto ports = sample_ports(config.software, config.os, 200, 99);
    const auto stats = analysis::compute_port_stats(ports);
    const std::set<std::uint16_t> unique(ports.begin(), ports.end());

    // Effective pool: observed distinct ports for tiny pools, otherwise the
    // adjusted range (a sample range understates the pool only slightly).
    const int adjusted = analysis::adjusted_range(ports);
    const double pool = unique.size() <= 16
                            ? static_cast<double>(unique.size())
                            : static_cast<double>(adjusted) + 1;
    const double space = pool * 65536.0;
    const double bits = std::log2(space);

    const char* verdict;
    if (stats.strictly_increasing || unique.size() == 1) {
      verdict = "TRIVIAL to poison (port known/predictable)";
    } else if (pool < 4096) {
      verdict = "WEAK (violates RFC 5452)";
    } else {
      verdict = "ok";
    }
    std::printf("%-38s %8d %9.0f %9.0f (2^%.1f)  %s\n", config.label,
                adjusted, pool, space, bits, verdict);
  }

  std::printf(
      "\nthe paper found 3,810 resolvers in the 'TRIVIAL' rows twelve years\n"
      "after the Kaminsky disclosure — 59%% of them behind ACLs their\n"
      "operators believed made the configuration safe.\n");
  return 0;
}
