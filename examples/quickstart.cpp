// Quickstart: generate a synthetic Internet, run the paper's measurement
// end-to-end, and print the headline DSAV findings.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "analysis/classify.h"
#include "analysis/report.h"
#include "core/experiment.h"
#include "ditl/world.h"
#include "util/str.h"

int main() {
  using namespace cd;

  // 1. A world: ASes announcing prefixes, resolver fleets with realistic
  //    software/OS behaviour, border filtering policies, and a DITL-style
  //    target capture. small_world_spec() keeps this instant.
  ditl::WorldSpec spec = ditl::small_world_spec();
  spec.seed = 2026;
  auto world = ditl::generate_world(spec);
  std::printf("world: %zu ASes, %zu resolvers, %zu scan targets\n",
              world->topology.as_count(), world->resolvers.size(),
              world->targets.size());

  // 2. The experiment: spoofed-source probes from the vantage, follow-up
  //    batteries on first hit, collection at our authoritative servers.
  core::Experiment experiment(*world, core::ExperimentConfig{});
  const core::ExperimentResults& results = experiment.run();
  std::printf("campaign: %s spoofed queries sent, %s auth-side log entries\n",
              with_commas(results.queries_sent).c_str(),
              with_commas(results.collector_stats.entries_seen).c_str());

  // 3. Analysis: who let our spoofed packets in?
  const auto summary = analysis::summarize_dsav(results.records,
                                                world->targets);
  std::printf(
      "\nDSAV findings:\n"
      "  IPv4: %s of %s targets reachable; %s of %s ASes infiltrated (%s)\n"
      "  IPv6: %s of %s targets reachable; %s of %s ASes infiltrated (%s)\n",
      with_commas(summary.v4.targets_reachable).c_str(),
      with_commas(summary.v4.targets_total).c_str(),
      with_commas(summary.v4.asns_reachable).c_str(),
      with_commas(summary.v4.asns_total).c_str(),
      percent(static_cast<double>(summary.v4.asns_reachable),
              static_cast<double>(summary.v4.asns_total))
          .c_str(),
      with_commas(summary.v6.targets_reachable).c_str(),
      with_commas(summary.v6.targets_total).c_str(),
      with_commas(summary.v6.asns_reachable).c_str(),
      with_commas(summary.v6.asns_total).c_str(),
      percent(static_cast<double>(summary.v6.asns_reachable),
              static_cast<double>(summary.v6.asns_total))
          .c_str());

  const auto oc = analysis::open_closed_stats(results.records);
  std::printf(
      "  resolvers reached: %s open, %s closed — the closed ones believed "
      "their ACLs protected them\n",
      with_commas(oc.open).c_str(), with_commas(oc.closed).c_str());

  // 4. Against ground truth: the blind measurement vs. what was planted.
  std::size_t truth_lacking = 0;
  for (const auto& [asn, dsav] : world->truth_dsav) {
    if (!dsav) ++truth_lacking;
  }
  std::printf("  ground truth: %s of %s ASes actually lack DSAV\n",
              with_commas(truth_lacking).c_str(),
              with_commas(world->truth_dsav.size()).c_str());

  // 5. Or let the library write the whole evaluation section for you:
  std::printf("\n%s", analysis::render_report(
                          results.records, world->targets, world->geo,
                          world->passive_capture, world->public_dns_addrs)
                          .c_str());
  return 0;
}
