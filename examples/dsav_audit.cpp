// dsav_audit: audit one network's exposure to spoofed-source infiltration —
// the per-network version of the paper's methodology, in the spirit of the
// "Web interface for testing your own network" the authors planned (§6).
//
// Builds a topology containing "your" AS with a configurable border policy
// and resolver fleet, probes every resolver with all five spoofed-source
// categories, and reports exactly which spoofs penetrate and why.
#include <cstdio>
#include <deque>
#include <memory>

#include "dns/zone.h"
#include "resolver/auth.h"
#include "resolver/recursive.h"
#include "scanner/collector.h"
#include "scanner/followup.h"
#include "scanner/prober.h"
#include "scanner/source_select.h"
#include "sim/host.h"

using namespace cd;

int main() {
  // --- the world: your AS + the measurement infrastructure -------------------
  sim::EventLoop loop;
  sim::Topology topology;
  sim::Network network(topology, loop, Rng(1));

  // Your network: tweak this policy to see the audit outcome change.
  constexpr sim::Asn kYourAsn = 64496;
  sim::FilterPolicy your_policy;
  your_policy.dsav = false;                  // <- the paper's finding: ~half
  your_policy.drop_inbound_martians = false; //    of networks look like this
  topology.add_as(kYourAsn, your_policy);
  topology.announce(kYourAsn, net::Prefix::must_parse("20.10.0.0/16"));

  // Measurement side: an authoritative server and a spoofing-capable vantage.
  topology.add_as(64500, sim::FilterPolicy{.osav = true, .dsav = true});
  topology.announce(64500, net::Prefix::must_parse("199.7.0.0/16"));
  topology.add_as(64501, sim::FilterPolicy{});  // vantage: no OSAV
  topology.announce(64501, net::Prefix::must_parse("203.98.0.0/16"));

  const auto& os = sim::os_profile(sim::OsId::kUbuntu1904);
  sim::Host auth_host(network, 64500, os,
                      {net::IpAddr::must_parse("199.7.0.1")}, Rng(2), "auth");
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("www.audit.example");
  soa.rname = dns::DnsName::must_parse("ops.audit.example");
  auto zone = std::make_shared<dns::Zone>(
      dns::DnsName::must_parse("audit.example"), soa);
  resolver::AuthServer auth(auth_host);
  auth.add_zone(zone);

  sim::Host vantage(network, 64501, os,
                    {net::IpAddr::must_parse("203.98.0.10")}, Rng(3),
                    "vantage");

  resolver::RootHints hints;
  hints.servers = {net::IpAddr::must_parse("199.7.0.1")};

  // Your resolver fleet: one open, one closed-AS-wide, one closed-subnet,
  // spread across OSes — the configurations §5.1/§5.2 found in the wild.
  struct FleetEntry {
    const char* addr;
    const char* label;
    bool open;
    bool subnet_acl;
    sim::OsId os_id;
  };
  const FleetEntry fleet[] = {
      {"20.10.1.10", "open resolver (Linux)", true, false,
       sim::OsId::kUbuntu1904},
      {"20.10.2.10", "closed, AS-wide ACL (FreeBSD)", false, false,
       sim::OsId::kFreeBsd121},
      {"20.10.3.10", "closed, /24-only ACL (Windows)", false, true,
       sim::OsId::kWin2016},
  };

  std::deque<sim::Host> hosts;
  std::vector<std::unique_ptr<resolver::RecursiveResolver>> resolvers;
  std::uint64_t fleet_seed = 100;
  for (const FleetEntry& entry : fleet) {
    const auto addr = net::IpAddr::must_parse(entry.addr);
    auto& host = hosts.emplace_back(network, kYourAsn,
                                    sim::os_profile(entry.os_id),
                                    std::vector<net::IpAddr>{addr},
                                    Rng(++fleet_seed), entry.label);
    resolver::ResolverConfig config;
    config.open = entry.open;
    if (!entry.open) {
      config.acl = entry.subnet_acl
                       ? std::vector<net::Prefix>{net::Prefix(addr, 24)}
                       : std::vector<net::Prefix>{
                             net::Prefix::must_parse("20.10.0.0/16")};
    }
    resolvers.push_back(std::make_unique<resolver::RecursiveResolver>(
        host, config, hints,
        resolver::make_default_allocator(
            resolver::DnsSoftware::kBind9913To9160, host.os(),
            Rng(++fleet_seed)),
        Rng(++fleet_seed)));
  }

  // --- the audit --------------------------------------------------------------
  scanner::QnameCodec codec(dns::DnsName::must_parse("audit.example"),
                            "audit");
  scanner::SourceSelector selector(topology, {}, {}, Rng(4));
  scanner::Collector collector(codec, {}, &topology);
  collector.attach(auth);

  std::vector<scanner::TargetInfo> targets;
  for (const FleetEntry& entry : fleet) {
    targets.push_back({net::IpAddr::must_parse(entry.addr), kYourAsn});
  }
  scanner::ProbeConfig probe_config;
  probe_config.duration = 5 * sim::kMinute;
  probe_config.per_query_spacing = sim::kSecond;
  scanner::Prober campaign(vantage, codec, selector, probe_config, Rng(6));
  campaign.schedule_campaign(targets);
  loop.run(10'000'000);

  // --- the report ---------------------------------------------------------------
  std::printf("DSAV audit of AS%u (dsav=%s, martian-filter=%s)\n\n", kYourAsn,
              your_policy.dsav ? "yes" : "no",
              your_policy.drop_inbound_martians ? "yes" : "no");
  for (const FleetEntry& entry : fleet) {
    const auto addr = net::IpAddr::must_parse(entry.addr);
    std::printf("%-34s %s\n", entry.label, entry.addr);
    const auto it = collector.records().find(addr);
    if (it == collector.records().end() || !it->second.reachable()) {
      std::printf("    NOT penetrated by any spoofed source\n");
      continue;
    }
    for (const scanner::SourceCategory cat : it->second.categories_hit) {
      std::printf("    PENETRATED via %s spoof\n",
                  scanner::source_category_name(cat).c_str());
    }
  }
  std::printf(
      "\ninterpretation: every line above is a packet that crossed your\n"
      "border claiming to be someone it was not. Enable DSAV (and martian\n"
      "filtering) at the border, and re-run to verify the lines disappear.\n");
  return 0;
}
