// os_fingerprint: identify the operating system behind a DNS resolver from
// the outside, combining the paper's two §5.3 techniques:
//   1. p0f-style TCP SYN fingerprinting (elicited via a TC=1 truncation), and
//   2. the Beta(9,2) source-port-range model over 10 UDP queries.
//
// Sets up resolvers on a spread of OSes, probes each like the measurement
// would, and prints the blind identification next to the truth.
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "analysis/beta.h"
#include "analysis/p0f.h"
#include "analysis/port_range.h"
#include "dns/zone.h"
#include "resolver/auth.h"
#include "resolver/recursive.h"
#include "sim/host.h"

using namespace cd;

int main() {
  sim::EventLoop loop;
  sim::Topology topology;
  Rng rng(7);
  sim::Network network(topology, loop, rng.split("net"));
  topology.add_as(1, sim::FilterPolicy{});
  topology.announce(1, net::Prefix::must_parse("50.0.0.0/16"));

  // Lab root/auth: answers everything via wildcard, truncates `tcp.` names
  // over UDP to force the resolvers onto TCP (SYN capture for p0f).
  const auto auth_addr = net::IpAddr::must_parse("50.0.0.1");
  sim::Host auth_host(network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
                      {auth_addr}, rng.split("auth"), "auth");
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("lab");
  soa.rname = dns::DnsName::must_parse("lab");
  auto zone = std::make_shared<dns::Zone>(dns::DnsName(), soa);
  zone->add(dns::make_a(dns::DnsName::must_parse("*.lab"), auth_addr, 1));
  zone->add(dns::make_a(dns::DnsName::must_parse("*.tcp.lab"), auth_addr, 1));
  resolver::AuthConfig auth_config;
  auth_config.truncate_suffixes.push_back(dns::DnsName::must_parse("tcp.lab"));
  resolver::AuthServer auth(auth_host, auth_config);
  auth.add_zone(zone);

  struct Subject {
    const char* addr;
    sim::OsId os;
    resolver::DnsSoftware software;
  };
  const Subject subjects[] = {
      {"50.0.1.1", sim::OsId::kUbuntu1904,
       resolver::DnsSoftware::kBind9913To9160},
      {"50.0.1.2", sim::OsId::kFreeBsd121,
       resolver::DnsSoftware::kBind9913To9160},
      {"50.0.1.3", sim::OsId::kWin2016,
       resolver::DnsSoftware::kWindowsDns2008R2},
      {"50.0.1.4", sim::OsId::kWin2003,
       resolver::DnsSoftware::kWindowsDns2003},
      {"50.0.1.5", sim::OsId::kEmbeddedCpe,
       resolver::DnsSoftware::kUnbound190},
  };

  std::deque<sim::Host> hosts;
  std::vector<std::unique_ptr<resolver::RecursiveResolver>> resolvers;
  for (const Subject& s : subjects) {
    auto& host = hosts.emplace_back(
        network, 1, sim::os_profile(s.os),
        std::vector<net::IpAddr>{net::IpAddr::must_parse(s.addr)},
        rng.split(s.addr), s.addr);
    resolver::ResolverConfig config;
    config.open = true;
    config.cache.max_ttl = 1;
    resolvers.push_back(std::make_unique<resolver::RecursiveResolver>(
        host, config, resolver::RootHints{{auth_addr}},
        resolver::make_default_allocator(s.software, host.os(),
                                         rng.split(std::string(s.addr) + "a")),
        rng.split(std::string(s.addr) + "r")));
  }

  // Evidence collection at the auth: UDP source ports + TCP SYNs.
  struct Evidence {
    std::vector<std::uint16_t> ports;
    std::optional<net::Packet> syn;
  };
  std::map<std::string, Evidence> evidence;
  auth.add_observer([&](const resolver::AuthLogEntry& entry) {
    Evidence& ev = evidence[entry.client.to_string()];
    if (entry.tcp) {
      if (!ev.syn) ev.syn = entry.syn;
    } else if (ev.ports.size() < 10) {
      ev.ports.push_back(entry.client_port);
    }
  });

  // Probe: 10 unique UDP queries + 1 truncation-forcing query per subject.
  for (std::size_t i = 0; i < resolvers.size(); ++i) {
    auto* res = resolvers[i].get();
    for (int q = 0; q <= 10; ++q) {
      const std::string qname =
          q < 10 ? "q" + std::to_string(q) + ".r" + std::to_string(i) + ".lab"
                 : "t.r" + std::to_string(i) + ".tcp.lab";
      loop.schedule_at(static_cast<sim::SimTime>(q) * sim::kSecond +
                           static_cast<sim::SimTime>(i),
                       [res, qname] {
                         res->resolve(dns::DnsName::must_parse(qname),
                                      dns::RrType::kA,
                                      [](dns::Rcode,
                                         const std::vector<dns::DnsRr>&) {});
                       });
    }
  }
  loop.run(10'000'000);

  // Identification: p0f on the SYN; Beta-model band on the port range.
  const auto& p0f = analysis::P0fDatabase::standard();
  std::printf("%-12s %-28s %-14s %-22s %s\n", "resolver", "truth (planted)",
              "p0f verdict", "port-range verdict", "range");
  for (const Subject& s : subjects) {
    const Evidence& ev = evidence[s.addr];
    const auto cls = ev.syn ? p0f.classify(*ev.syn)
                            : analysis::P0fClass::kUnknown;
    const int range = analysis::adjusted_range(ev.ports);
    const auto& band = analysis::table4_bands()[analysis::classify_range(range)];
    std::printf("%-12s %-28s %-14s %-22s %d\n", s.addr,
                sim::os_profile(s.os).name.c_str(),
                analysis::p0f_class_name(cls).c_str(),
                band.os.empty() ? band.label.c_str() : band.os.c_str(), range);
  }
  std::printf(
      "\nnote the pre-2008 Windows row: a single source port (range 0) — the\n"
      "configuration that reduces a poisoning attack to guessing one txid.\n");
  return 0;
}
