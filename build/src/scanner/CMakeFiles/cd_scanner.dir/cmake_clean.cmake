file(REMOVE_RECURSE
  "CMakeFiles/cd_scanner.dir/analyst.cpp.o"
  "CMakeFiles/cd_scanner.dir/analyst.cpp.o.d"
  "CMakeFiles/cd_scanner.dir/collector.cpp.o"
  "CMakeFiles/cd_scanner.dir/collector.cpp.o.d"
  "CMakeFiles/cd_scanner.dir/followup.cpp.o"
  "CMakeFiles/cd_scanner.dir/followup.cpp.o.d"
  "CMakeFiles/cd_scanner.dir/prober.cpp.o"
  "CMakeFiles/cd_scanner.dir/prober.cpp.o.d"
  "CMakeFiles/cd_scanner.dir/qname.cpp.o"
  "CMakeFiles/cd_scanner.dir/qname.cpp.o.d"
  "CMakeFiles/cd_scanner.dir/source_select.cpp.o"
  "CMakeFiles/cd_scanner.dir/source_select.cpp.o.d"
  "libcd_scanner.a"
  "libcd_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
