# Empty dependencies file for cd_scanner.
# This may be replaced when dependencies are built.
