
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scanner/analyst.cpp" "src/scanner/CMakeFiles/cd_scanner.dir/analyst.cpp.o" "gcc" "src/scanner/CMakeFiles/cd_scanner.dir/analyst.cpp.o.d"
  "/root/repo/src/scanner/collector.cpp" "src/scanner/CMakeFiles/cd_scanner.dir/collector.cpp.o" "gcc" "src/scanner/CMakeFiles/cd_scanner.dir/collector.cpp.o.d"
  "/root/repo/src/scanner/followup.cpp" "src/scanner/CMakeFiles/cd_scanner.dir/followup.cpp.o" "gcc" "src/scanner/CMakeFiles/cd_scanner.dir/followup.cpp.o.d"
  "/root/repo/src/scanner/prober.cpp" "src/scanner/CMakeFiles/cd_scanner.dir/prober.cpp.o" "gcc" "src/scanner/CMakeFiles/cd_scanner.dir/prober.cpp.o.d"
  "/root/repo/src/scanner/qname.cpp" "src/scanner/CMakeFiles/cd_scanner.dir/qname.cpp.o" "gcc" "src/scanner/CMakeFiles/cd_scanner.dir/qname.cpp.o.d"
  "/root/repo/src/scanner/source_select.cpp" "src/scanner/CMakeFiles/cd_scanner.dir/source_select.cpp.o" "gcc" "src/scanner/CMakeFiles/cd_scanner.dir/source_select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resolver/CMakeFiles/cd_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/cd_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
