file(REMOVE_RECURSE
  "libcd_scanner.a"
)
