file(REMOVE_RECURSE
  "CMakeFiles/cd_core.dir/experiment.cpp.o"
  "CMakeFiles/cd_core.dir/experiment.cpp.o.d"
  "libcd_core.a"
  "libcd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
