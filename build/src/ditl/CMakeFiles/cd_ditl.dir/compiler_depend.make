# Empty compiler generated dependencies file for cd_ditl.
# This may be replaced when dependencies are built.
