file(REMOVE_RECURSE
  "CMakeFiles/cd_ditl.dir/ditl.cpp.o"
  "CMakeFiles/cd_ditl.dir/ditl.cpp.o.d"
  "CMakeFiles/cd_ditl.dir/world_gen.cpp.o"
  "CMakeFiles/cd_ditl.dir/world_gen.cpp.o.d"
  "libcd_ditl.a"
  "libcd_ditl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_ditl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
