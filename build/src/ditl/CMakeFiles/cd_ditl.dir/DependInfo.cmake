
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ditl/ditl.cpp" "src/ditl/CMakeFiles/cd_ditl.dir/ditl.cpp.o" "gcc" "src/ditl/CMakeFiles/cd_ditl.dir/ditl.cpp.o.d"
  "/root/repo/src/ditl/world_gen.cpp" "src/ditl/CMakeFiles/cd_ditl.dir/world_gen.cpp.o" "gcc" "src/ditl/CMakeFiles/cd_ditl.dir/world_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/cd_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/cd_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/cd_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
