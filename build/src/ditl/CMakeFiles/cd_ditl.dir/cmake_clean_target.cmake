file(REMOVE_RECURSE
  "libcd_ditl.a"
)
