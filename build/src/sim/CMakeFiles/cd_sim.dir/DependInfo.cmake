
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_loop.cpp" "src/sim/CMakeFiles/cd_sim.dir/event_loop.cpp.o" "gcc" "src/sim/CMakeFiles/cd_sim.dir/event_loop.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/cd_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/cd_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/cd_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/cd_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/os_model.cpp" "src/sim/CMakeFiles/cd_sim.dir/os_model.cpp.o" "gcc" "src/sim/CMakeFiles/cd_sim.dir/os_model.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/cd_sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/cd_sim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
