file(REMOVE_RECURSE
  "CMakeFiles/cd_sim.dir/event_loop.cpp.o"
  "CMakeFiles/cd_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/cd_sim.dir/host.cpp.o"
  "CMakeFiles/cd_sim.dir/host.cpp.o.d"
  "CMakeFiles/cd_sim.dir/network.cpp.o"
  "CMakeFiles/cd_sim.dir/network.cpp.o.d"
  "CMakeFiles/cd_sim.dir/os_model.cpp.o"
  "CMakeFiles/cd_sim.dir/os_model.cpp.o.d"
  "CMakeFiles/cd_sim.dir/topology.cpp.o"
  "CMakeFiles/cd_sim.dir/topology.cpp.o.d"
  "libcd_sim.a"
  "libcd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
