file(REMOVE_RECURSE
  "libcd_net.a"
)
