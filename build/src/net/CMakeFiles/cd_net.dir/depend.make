# Empty dependencies file for cd_net.
# This may be replaced when dependencies are built.
