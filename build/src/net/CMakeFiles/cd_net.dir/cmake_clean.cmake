file(REMOVE_RECURSE
  "CMakeFiles/cd_net.dir/checksum.cpp.o"
  "CMakeFiles/cd_net.dir/checksum.cpp.o.d"
  "CMakeFiles/cd_net.dir/headers.cpp.o"
  "CMakeFiles/cd_net.dir/headers.cpp.o.d"
  "CMakeFiles/cd_net.dir/ip.cpp.o"
  "CMakeFiles/cd_net.dir/ip.cpp.o.d"
  "CMakeFiles/cd_net.dir/packet.cpp.o"
  "CMakeFiles/cd_net.dir/packet.cpp.o.d"
  "CMakeFiles/cd_net.dir/special.cpp.o"
  "CMakeFiles/cd_net.dir/special.cpp.o.d"
  "libcd_net.a"
  "libcd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
