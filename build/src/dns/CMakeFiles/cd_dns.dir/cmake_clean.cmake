file(REMOVE_RECURSE
  "CMakeFiles/cd_dns.dir/cache.cpp.o"
  "CMakeFiles/cd_dns.dir/cache.cpp.o.d"
  "CMakeFiles/cd_dns.dir/message.cpp.o"
  "CMakeFiles/cd_dns.dir/message.cpp.o.d"
  "CMakeFiles/cd_dns.dir/name.cpp.o"
  "CMakeFiles/cd_dns.dir/name.cpp.o.d"
  "CMakeFiles/cd_dns.dir/zone.cpp.o"
  "CMakeFiles/cd_dns.dir/zone.cpp.o.d"
  "libcd_dns.a"
  "libcd_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
