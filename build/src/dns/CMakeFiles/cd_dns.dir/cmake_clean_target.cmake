file(REMOVE_RECURSE
  "libcd_dns.a"
)
