# Empty compiler generated dependencies file for cd_dns.
# This may be replaced when dependencies are built.
