file(REMOVE_RECURSE
  "libcd_util.a"
)
