# Empty dependencies file for cd_util.
# This may be replaced when dependencies are built.
