file(REMOVE_RECURSE
  "CMakeFiles/cd_util.dir/csv.cpp.o"
  "CMakeFiles/cd_util.dir/csv.cpp.o.d"
  "CMakeFiles/cd_util.dir/rng.cpp.o"
  "CMakeFiles/cd_util.dir/rng.cpp.o.d"
  "CMakeFiles/cd_util.dir/str.cpp.o"
  "CMakeFiles/cd_util.dir/str.cpp.o.d"
  "CMakeFiles/cd_util.dir/table.cpp.o"
  "CMakeFiles/cd_util.dir/table.cpp.o.d"
  "libcd_util.a"
  "libcd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
