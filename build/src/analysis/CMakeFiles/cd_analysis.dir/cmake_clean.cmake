file(REMOVE_RECURSE
  "CMakeFiles/cd_analysis.dir/beta.cpp.o"
  "CMakeFiles/cd_analysis.dir/beta.cpp.o.d"
  "CMakeFiles/cd_analysis.dir/classify.cpp.o"
  "CMakeFiles/cd_analysis.dir/classify.cpp.o.d"
  "CMakeFiles/cd_analysis.dir/geo.cpp.o"
  "CMakeFiles/cd_analysis.dir/geo.cpp.o.d"
  "CMakeFiles/cd_analysis.dir/histogram.cpp.o"
  "CMakeFiles/cd_analysis.dir/histogram.cpp.o.d"
  "CMakeFiles/cd_analysis.dir/p0f.cpp.o"
  "CMakeFiles/cd_analysis.dir/p0f.cpp.o.d"
  "CMakeFiles/cd_analysis.dir/passive.cpp.o"
  "CMakeFiles/cd_analysis.dir/passive.cpp.o.d"
  "CMakeFiles/cd_analysis.dir/port_range.cpp.o"
  "CMakeFiles/cd_analysis.dir/port_range.cpp.o.d"
  "CMakeFiles/cd_analysis.dir/report.cpp.o"
  "CMakeFiles/cd_analysis.dir/report.cpp.o.d"
  "libcd_analysis.a"
  "libcd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
