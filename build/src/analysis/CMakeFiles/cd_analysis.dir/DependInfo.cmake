
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/beta.cpp" "src/analysis/CMakeFiles/cd_analysis.dir/beta.cpp.o" "gcc" "src/analysis/CMakeFiles/cd_analysis.dir/beta.cpp.o.d"
  "/root/repo/src/analysis/classify.cpp" "src/analysis/CMakeFiles/cd_analysis.dir/classify.cpp.o" "gcc" "src/analysis/CMakeFiles/cd_analysis.dir/classify.cpp.o.d"
  "/root/repo/src/analysis/geo.cpp" "src/analysis/CMakeFiles/cd_analysis.dir/geo.cpp.o" "gcc" "src/analysis/CMakeFiles/cd_analysis.dir/geo.cpp.o.d"
  "/root/repo/src/analysis/histogram.cpp" "src/analysis/CMakeFiles/cd_analysis.dir/histogram.cpp.o" "gcc" "src/analysis/CMakeFiles/cd_analysis.dir/histogram.cpp.o.d"
  "/root/repo/src/analysis/p0f.cpp" "src/analysis/CMakeFiles/cd_analysis.dir/p0f.cpp.o" "gcc" "src/analysis/CMakeFiles/cd_analysis.dir/p0f.cpp.o.d"
  "/root/repo/src/analysis/passive.cpp" "src/analysis/CMakeFiles/cd_analysis.dir/passive.cpp.o" "gcc" "src/analysis/CMakeFiles/cd_analysis.dir/passive.cpp.o.d"
  "/root/repo/src/analysis/port_range.cpp" "src/analysis/CMakeFiles/cd_analysis.dir/port_range.cpp.o" "gcc" "src/analysis/CMakeFiles/cd_analysis.dir/port_range.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/cd_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/cd_analysis.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scanner/CMakeFiles/cd_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/cd_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/cd_dns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
