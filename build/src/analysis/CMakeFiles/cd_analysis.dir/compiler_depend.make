# Empty compiler generated dependencies file for cd_analysis.
# This may be replaced when dependencies are built.
