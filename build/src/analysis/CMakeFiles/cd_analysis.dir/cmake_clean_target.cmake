file(REMOVE_RECURSE
  "libcd_analysis.a"
)
