file(REMOVE_RECURSE
  "CMakeFiles/cd_resolver.dir/auth.cpp.o"
  "CMakeFiles/cd_resolver.dir/auth.cpp.o.d"
  "CMakeFiles/cd_resolver.dir/port_alloc.cpp.o"
  "CMakeFiles/cd_resolver.dir/port_alloc.cpp.o.d"
  "CMakeFiles/cd_resolver.dir/recursive.cpp.o"
  "CMakeFiles/cd_resolver.dir/recursive.cpp.o.d"
  "CMakeFiles/cd_resolver.dir/software.cpp.o"
  "CMakeFiles/cd_resolver.dir/software.cpp.o.d"
  "libcd_resolver.a"
  "libcd_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
