file(REMOVE_RECURSE
  "libcd_resolver.a"
)
