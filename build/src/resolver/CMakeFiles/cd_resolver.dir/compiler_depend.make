# Empty compiler generated dependencies file for cd_resolver.
# This may be replaced when dependencies are built.
