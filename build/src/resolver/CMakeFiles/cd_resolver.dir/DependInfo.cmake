
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/auth.cpp" "src/resolver/CMakeFiles/cd_resolver.dir/auth.cpp.o" "gcc" "src/resolver/CMakeFiles/cd_resolver.dir/auth.cpp.o.d"
  "/root/repo/src/resolver/port_alloc.cpp" "src/resolver/CMakeFiles/cd_resolver.dir/port_alloc.cpp.o" "gcc" "src/resolver/CMakeFiles/cd_resolver.dir/port_alloc.cpp.o.d"
  "/root/repo/src/resolver/recursive.cpp" "src/resolver/CMakeFiles/cd_resolver.dir/recursive.cpp.o" "gcc" "src/resolver/CMakeFiles/cd_resolver.dir/recursive.cpp.o.d"
  "/root/repo/src/resolver/software.cpp" "src/resolver/CMakeFiles/cd_resolver.dir/software.cpp.o" "gcc" "src/resolver/CMakeFiles/cd_resolver.dir/software.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/cd_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
