# Empty compiler generated dependencies file for passive_comparison.
# This may be replaced when dependencies are built.
