file(REMOVE_RECURSE
  "CMakeFiles/passive_comparison.dir/passive_comparison.cpp.o"
  "CMakeFiles/passive_comparison.dir/passive_comparison.cpp.o.d"
  "passive_comparison"
  "passive_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passive_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
