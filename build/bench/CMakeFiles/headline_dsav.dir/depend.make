# Empty dependencies file for headline_dsav.
# This may be replaced when dependencies are built.
