file(REMOVE_RECURSE
  "CMakeFiles/headline_dsav.dir/headline_dsav.cpp.o"
  "CMakeFiles/headline_dsav.dir/headline_dsav.cpp.o.d"
  "headline_dsav"
  "headline_dsav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_dsav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
