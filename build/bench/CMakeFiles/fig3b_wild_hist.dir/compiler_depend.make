# Empty compiler generated dependencies file for fig3b_wild_hist.
# This may be replaced when dependencies are built.
