
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3b_wild_hist.cpp" "bench/CMakeFiles/fig3b_wild_hist.dir/fig3b_wild_hist.cpp.o" "gcc" "bench/CMakeFiles/fig3b_wild_hist.dir/fig3b_wild_hist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ditl/CMakeFiles/cd_ditl.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/cd_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/cd_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/cd_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
