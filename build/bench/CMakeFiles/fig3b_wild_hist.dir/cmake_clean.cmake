file(REMOVE_RECURSE
  "CMakeFiles/fig3b_wild_hist.dir/fig3b_wild_hist.cpp.o"
  "CMakeFiles/fig3b_wild_hist.dir/fig3b_wild_hist.cpp.o.d"
  "fig3b_wild_hist"
  "fig3b_wild_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_wild_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
