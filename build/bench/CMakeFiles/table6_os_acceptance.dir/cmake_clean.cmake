file(REMOVE_RECURSE
  "CMakeFiles/table6_os_acceptance.dir/table6_os_acceptance.cpp.o"
  "CMakeFiles/table6_os_acceptance.dir/table6_os_acceptance.cpp.o.d"
  "table6_os_acceptance"
  "table6_os_acceptance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_os_acceptance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
