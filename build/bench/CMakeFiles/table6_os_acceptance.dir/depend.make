# Empty dependencies file for table6_os_acceptance.
# This may be replaced when dependencies are built.
