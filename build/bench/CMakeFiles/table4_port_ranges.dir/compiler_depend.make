# Empty compiler generated dependencies file for table4_port_ranges.
# This may be replaced when dependencies are built.
