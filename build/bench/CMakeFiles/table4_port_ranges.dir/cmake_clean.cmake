file(REMOVE_RECURSE
  "CMakeFiles/table4_port_ranges.dir/table4_port_ranges.cpp.o"
  "CMakeFiles/table4_port_ranges.dir/table4_port_ranges.cpp.o.d"
  "table4_port_ranges"
  "table4_port_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_port_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
