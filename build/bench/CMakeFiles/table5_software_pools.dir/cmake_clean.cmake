file(REMOVE_RECURSE
  "CMakeFiles/table5_software_pools.dir/table5_software_pools.cpp.o"
  "CMakeFiles/table5_software_pools.dir/table5_software_pools.cpp.o.d"
  "table5_software_pools"
  "table5_software_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_software_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
