# Empty dependencies file for table5_software_pools.
# This may be replaced when dependencies are built.
