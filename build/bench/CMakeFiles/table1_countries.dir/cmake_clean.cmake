file(REMOVE_RECURSE
  "CMakeFiles/table1_countries.dir/table1_countries.cpp.o"
  "CMakeFiles/table1_countries.dir/table1_countries.cpp.o.d"
  "table1_countries"
  "table1_countries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
