# Empty dependencies file for table1_countries.
# This may be replaced when dependencies are built.
