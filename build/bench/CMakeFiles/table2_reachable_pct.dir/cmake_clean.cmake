file(REMOVE_RECURSE
  "CMakeFiles/table2_reachable_pct.dir/table2_reachable_pct.cpp.o"
  "CMakeFiles/table2_reachable_pct.dir/table2_reachable_pct.cpp.o.d"
  "table2_reachable_pct"
  "table2_reachable_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_reachable_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
