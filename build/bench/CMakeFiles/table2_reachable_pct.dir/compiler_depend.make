# Empty compiler generated dependencies file for table2_reachable_pct.
# This may be replaced when dependencies are built.
