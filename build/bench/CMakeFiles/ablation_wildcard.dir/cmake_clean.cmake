file(REMOVE_RECURSE
  "CMakeFiles/ablation_wildcard.dir/ablation_wildcard.cpp.o"
  "CMakeFiles/ablation_wildcard.dir/ablation_wildcard.cpp.o.d"
  "ablation_wildcard"
  "ablation_wildcard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wildcard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
