# Empty compiler generated dependencies file for ablation_wildcard.
# This may be replaced when dependencies are built.
