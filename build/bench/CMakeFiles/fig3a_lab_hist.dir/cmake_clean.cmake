file(REMOVE_RECURSE
  "CMakeFiles/fig3a_lab_hist.dir/fig3a_lab_hist.cpp.o"
  "CMakeFiles/fig3a_lab_hist.dir/fig3a_lab_hist.cpp.o.d"
  "fig3a_lab_hist"
  "fig3a_lab_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_lab_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
