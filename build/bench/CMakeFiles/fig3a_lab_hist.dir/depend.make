# Empty dependencies file for fig3a_lab_hist.
# This may be replaced when dependencies are built.
