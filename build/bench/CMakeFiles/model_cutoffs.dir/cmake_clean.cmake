file(REMOVE_RECURSE
  "CMakeFiles/model_cutoffs.dir/model_cutoffs.cpp.o"
  "CMakeFiles/model_cutoffs.dir/model_cutoffs.cpp.o.d"
  "model_cutoffs"
  "model_cutoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_cutoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
