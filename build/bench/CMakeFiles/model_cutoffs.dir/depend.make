# Empty dependencies file for model_cutoffs.
# This may be replaced when dependencies are built.
