# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig2_port_range_hist.
