file(REMOVE_RECURSE
  "CMakeFiles/fig2_port_range_hist.dir/fig2_port_range_hist.cpp.o"
  "CMakeFiles/fig2_port_range_hist.dir/fig2_port_range_hist.cpp.o.d"
  "fig2_port_range_hist"
  "fig2_port_range_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_port_range_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
