# Empty compiler generated dependencies file for fig2_port_range_hist.
# This may be replaced when dependencies are built.
