file(REMOVE_RECURSE
  "CMakeFiles/os_fingerprint.dir/os_fingerprint.cpp.o"
  "CMakeFiles/os_fingerprint.dir/os_fingerprint.cpp.o.d"
  "os_fingerprint"
  "os_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
