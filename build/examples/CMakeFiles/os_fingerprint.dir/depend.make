# Empty dependencies file for os_fingerprint.
# This may be replaced when dependencies are built.
