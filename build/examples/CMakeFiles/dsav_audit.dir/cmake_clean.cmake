file(REMOVE_RECURSE
  "CMakeFiles/dsav_audit.dir/dsav_audit.cpp.o"
  "CMakeFiles/dsav_audit.dir/dsav_audit.cpp.o.d"
  "dsav_audit"
  "dsav_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsav_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
