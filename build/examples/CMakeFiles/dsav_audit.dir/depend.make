# Empty dependencies file for dsav_audit.
# This may be replaced when dependencies are built.
