file(REMOVE_RECURSE
  "CMakeFiles/cache_poisoning_risk.dir/cache_poisoning_risk.cpp.o"
  "CMakeFiles/cache_poisoning_risk.dir/cache_poisoning_risk.cpp.o.d"
  "cache_poisoning_risk"
  "cache_poisoning_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_poisoning_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
