# Empty compiler generated dependencies file for cache_poisoning_risk.
# This may be replaced when dependencies are built.
