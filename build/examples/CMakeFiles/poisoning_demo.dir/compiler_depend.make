# Empty compiler generated dependencies file for poisoning_demo.
# This may be replaced when dependencies are built.
