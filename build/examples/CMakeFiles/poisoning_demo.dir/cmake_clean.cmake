file(REMOVE_RECURSE
  "CMakeFiles/poisoning_demo.dir/poisoning_demo.cpp.o"
  "CMakeFiles/poisoning_demo.dir/poisoning_demo.cpp.o.d"
  "poisoning_demo"
  "poisoning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisoning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
