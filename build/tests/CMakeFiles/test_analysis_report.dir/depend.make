# Empty dependencies file for test_analysis_report.
# This may be replaced when dependencies are built.
