file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_report.dir/test_analysis_report.cpp.o"
  "CMakeFiles/test_analysis_report.dir/test_analysis_report.cpp.o.d"
  "test_analysis_report"
  "test_analysis_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
