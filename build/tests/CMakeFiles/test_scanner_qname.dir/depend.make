# Empty dependencies file for test_scanner_qname.
# This may be replaced when dependencies are built.
