file(REMOVE_RECURSE
  "CMakeFiles/test_scanner_qname.dir/test_scanner_qname.cpp.o"
  "CMakeFiles/test_scanner_qname.dir/test_scanner_qname.cpp.o.d"
  "test_scanner_qname"
  "test_scanner_qname.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scanner_qname.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
