# Empty compiler generated dependencies file for test_analysis_p0f.
# This may be replaced when dependencies are built.
