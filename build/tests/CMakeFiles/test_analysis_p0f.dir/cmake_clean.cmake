file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_p0f.dir/test_analysis_p0f.cpp.o"
  "CMakeFiles/test_analysis_p0f.dir/test_analysis_p0f.cpp.o.d"
  "test_analysis_p0f"
  "test_analysis_p0f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_p0f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
