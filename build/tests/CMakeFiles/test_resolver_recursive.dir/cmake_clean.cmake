file(REMOVE_RECURSE
  "CMakeFiles/test_resolver_recursive.dir/test_resolver_recursive.cpp.o"
  "CMakeFiles/test_resolver_recursive.dir/test_resolver_recursive.cpp.o.d"
  "test_resolver_recursive"
  "test_resolver_recursive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
