# Empty dependencies file for test_resolver_recursive.
# This may be replaced when dependencies are built.
