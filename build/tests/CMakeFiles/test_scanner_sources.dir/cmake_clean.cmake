file(REMOVE_RECURSE
  "CMakeFiles/test_scanner_sources.dir/test_scanner_sources.cpp.o"
  "CMakeFiles/test_scanner_sources.dir/test_scanner_sources.cpp.o.d"
  "test_scanner_sources"
  "test_scanner_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scanner_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
