# Empty dependencies file for test_scanner_sources.
# This may be replaced when dependencies are built.
