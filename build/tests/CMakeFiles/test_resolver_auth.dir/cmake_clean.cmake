file(REMOVE_RECURSE
  "CMakeFiles/test_resolver_auth.dir/test_resolver_auth.cpp.o"
  "CMakeFiles/test_resolver_auth.dir/test_resolver_auth.cpp.o.d"
  "test_resolver_auth"
  "test_resolver_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
