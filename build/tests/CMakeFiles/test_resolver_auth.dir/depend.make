# Empty dependencies file for test_resolver_auth.
# This may be replaced when dependencies are built.
