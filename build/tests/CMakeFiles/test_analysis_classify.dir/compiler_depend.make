# Empty compiler generated dependencies file for test_analysis_classify.
# This may be replaced when dependencies are built.
