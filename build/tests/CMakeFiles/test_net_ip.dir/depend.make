# Empty dependencies file for test_net_ip.
# This may be replaced when dependencies are built.
