file(REMOVE_RECURSE
  "CMakeFiles/test_net_ip.dir/test_net_ip.cpp.o"
  "CMakeFiles/test_net_ip.dir/test_net_ip.cpp.o.d"
  "test_net_ip"
  "test_net_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
