file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_port_range.dir/test_analysis_port_range.cpp.o"
  "CMakeFiles/test_analysis_port_range.dir/test_analysis_port_range.cpp.o.d"
  "test_analysis_port_range"
  "test_analysis_port_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_port_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
