# Empty compiler generated dependencies file for test_analysis_port_range.
# This may be replaced when dependencies are built.
