file(REMOVE_RECURSE
  "CMakeFiles/test_dns_cache.dir/test_dns_cache.cpp.o"
  "CMakeFiles/test_dns_cache.dir/test_dns_cache.cpp.o.d"
  "test_dns_cache"
  "test_dns_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
