# Empty dependencies file for test_analysis_passive.
# This may be replaced when dependencies are built.
