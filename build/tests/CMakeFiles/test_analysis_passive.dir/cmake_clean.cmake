file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_passive.dir/test_analysis_passive.cpp.o"
  "CMakeFiles/test_analysis_passive.dir/test_analysis_passive.cpp.o.d"
  "test_analysis_passive"
  "test_analysis_passive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_passive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
