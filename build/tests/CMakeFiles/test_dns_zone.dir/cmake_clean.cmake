file(REMOVE_RECURSE
  "CMakeFiles/test_dns_zone.dir/test_dns_zone.cpp.o"
  "CMakeFiles/test_dns_zone.dir/test_dns_zone.cpp.o.d"
  "test_dns_zone"
  "test_dns_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
