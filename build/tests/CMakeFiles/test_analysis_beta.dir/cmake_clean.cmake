file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_beta.dir/test_analysis_beta.cpp.o"
  "CMakeFiles/test_analysis_beta.dir/test_analysis_beta.cpp.o.d"
  "test_analysis_beta"
  "test_analysis_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
