file(REMOVE_RECURSE
  "CMakeFiles/test_resolver_port_alloc.dir/test_resolver_port_alloc.cpp.o"
  "CMakeFiles/test_resolver_port_alloc.dir/test_resolver_port_alloc.cpp.o.d"
  "test_resolver_port_alloc"
  "test_resolver_port_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver_port_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
