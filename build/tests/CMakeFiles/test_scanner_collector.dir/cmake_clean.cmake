file(REMOVE_RECURSE
  "CMakeFiles/test_scanner_collector.dir/test_scanner_collector.cpp.o"
  "CMakeFiles/test_scanner_collector.dir/test_scanner_collector.cpp.o.d"
  "test_scanner_collector"
  "test_scanner_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scanner_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
