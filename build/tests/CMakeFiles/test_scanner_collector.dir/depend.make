# Empty dependencies file for test_scanner_collector.
# This may be replaced when dependencies are built.
