# Empty compiler generated dependencies file for test_ditl_world.
# This may be replaced when dependencies are built.
