file(REMOVE_RECURSE
  "CMakeFiles/test_ditl_world.dir/test_ditl_world.cpp.o"
  "CMakeFiles/test_ditl_world.dir/test_ditl_world.cpp.o.d"
  "test_ditl_world"
  "test_ditl_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ditl_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
