file(REMOVE_RECURSE
  "CMakeFiles/test_resolver_software.dir/test_resolver_software.cpp.o"
  "CMakeFiles/test_resolver_software.dir/test_resolver_software.cpp.o.d"
  "test_resolver_software"
  "test_resolver_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
