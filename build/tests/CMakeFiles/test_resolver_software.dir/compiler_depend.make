# Empty compiler generated dependencies file for test_resolver_software.
# This may be replaced when dependencies are built.
