# Empty dependencies file for test_sim_topology.
# This may be replaced when dependencies are built.
