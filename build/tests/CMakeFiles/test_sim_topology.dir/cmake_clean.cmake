file(REMOVE_RECURSE
  "CMakeFiles/test_sim_topology.dir/test_sim_topology.cpp.o"
  "CMakeFiles/test_sim_topology.dir/test_sim_topology.cpp.o.d"
  "test_sim_topology"
  "test_sim_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
