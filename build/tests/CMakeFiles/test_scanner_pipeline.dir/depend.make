# Empty dependencies file for test_scanner_pipeline.
# This may be replaced when dependencies are built.
