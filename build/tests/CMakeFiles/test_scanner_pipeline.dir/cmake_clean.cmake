file(REMOVE_RECURSE
  "CMakeFiles/test_scanner_pipeline.dir/test_scanner_pipeline.cpp.o"
  "CMakeFiles/test_scanner_pipeline.dir/test_scanner_pipeline.cpp.o.d"
  "test_scanner_pipeline"
  "test_scanner_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scanner_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
