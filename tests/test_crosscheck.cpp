// The Closed Resolver cross-check plane (scanner/crosscheck.h): the per-/24
// prefix scanner must produce bit-identical evidence across shard counts,
// streamed and materialized worlds, and spilled and in-memory merges; its
// verdicts may never contradict the world's planted SAV ground truth; and
// the per-AS methodology-agreement join must be a pure function of the two
// scanners' evidence.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/crosscheck.h"
#include "core/parallel.h"
#include "ditl/plan.h"
#include "ditl/world.h"
#include "scanner/crosscheck.h"
#include "scanner/prober.h"
#include "util/error.h"

namespace {

using cd::core::ExperimentConfig;
using cd::core::results_digest;
using cd::core::run_sharded_experiment;
using cd::core::ShardedResults;
using cd::net::IpAddr;
using cd::net::Prefix;
using cd::scanner::CrossCheckCollector;
using cd::scanner::CrossCheckConfig;
using cd::scanner::PrefixRecord;
using cd::scanner::PrefixRecords;
using cd::scanner::PrefixTarget;
using cd::scanner::QnameCodec;
using cd::scanner::QnameInfo;
using cd::scanner::QueryMode;

/// Resolver v4 host offsets are drawn from [10, 210) (ditl/target_stream.cpp),
/// so a [10, 10+width) window probes the first `width` populated offsets.
CrossCheckConfig test_crosscheck(std::uint32_t width) {
  CrossCheckConfig cc;
  cc.host_lo = 10;
  cc.host_hi = 10 + width;
  return cc;
}

cd::ditl::WorldSpec test_spec(std::uint64_t seed, int n_asns) {
  cd::ditl::WorldSpec spec = cd::ditl::small_world_spec();
  spec.seed = seed;
  spec.n_asns = n_asns;
  return spec;
}

ExperimentConfig test_config(std::size_t shards, bool stream,
                             const std::string& spill_dir = {}) {
  ExperimentConfig config;
  config.analyst = cd::scanner::AnalystConfig{};  // exercise replay exclusion
  config.crosscheck = test_crosscheck(64);
  config.num_shards = shards;
  config.num_threads = shards > 1 ? 2 : 1;
  config.stream_worlds = stream;
  config.spill_dir = spill_dir;
  return config;
}

// --- differential battery ---------------------------------------------------

TEST(CrossCheckDifferential, DigestInvariantAcrossShardsStreamAndSpill) {
  const auto dir =
      std::filesystem::temp_directory_path() / "cd_crosscheck_diff";
  std::filesystem::remove_all(dir);
  for (const std::uint64_t seed :
       {std::uint64_t{42}, std::uint64_t{1337}, std::uint64_t{9001}}) {
    // 14 ASes is the smallest world where all three seeds plant at least
    // one attributable in-window resolver behind an open border (seed 1337
    // puts every one of its behind DSAV/uRPF below that).
    const auto spec = test_spec(seed, 14);
    const ShardedResults baseline =
        run_sharded_experiment(spec, test_config(1, /*stream=*/false));
    ASSERT_GT(baseline.merged.crosscheck_probes, 0u) << "seed=" << seed;
    ASSERT_GT(baseline.merged.crosscheck_records.size(), 0u)
        << "seed=" << seed << ": no /24 collected any evidence";
    const std::uint64_t want = results_digest(baseline.merged);

    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      for (const bool stream : {false, true}) {
        for (const bool spill : {false, true}) {
          if (shards == 1 && !stream && !spill) continue;  // the baseline
          const std::string spill_dir =
              spill ? (dir / ("s" + std::to_string(seed))).string()
                    : std::string{};
          const ShardedResults run = run_sharded_experiment(
              spec, test_config(shards, stream, spill_dir));
          EXPECT_EQ(results_digest(run.merged), want)
              << "seed=" << seed << " shards=" << shards
              << " stream=" << stream << " spill=" << spill;
          EXPECT_EQ(run.merged.crosscheck_probes,
                    baseline.merged.crosscheck_probes);
          EXPECT_EQ(run.merged.crosscheck_records.size(),
                    baseline.merged.crosscheck_records.size());
        }
      }
    }
  }
  std::filesystem::remove_all(dir);
}

// --- plan-side /24 enumeration ----------------------------------------------

TEST(CrossCheckEnumeration, ShardsPartitionTheSerialPrefixWalk) {
  const auto spec = test_spec(42, 30);
  const auto plan = cd::ditl::build_campaign_plan(spec);

  std::vector<PrefixTarget> serial;
  cd::ditl::for_each_prefix24(*plan, 0, 1,
                              [&serial](cd::sim::Asn asn, const Prefix& p) {
                                serial.push_back({p, asn});
                              });
  ASSERT_EQ(serial.size(), cd::ditl::count_prefix24(*plan));
  ASSERT_GT(serial.size(), 0u);

  std::map<IpAddr, cd::sim::Asn> serial_by_base;
  for (const PrefixTarget& pt : serial) {
    EXPECT_EQ(pt.prefix.length(), 24);
    EXPECT_TRUE(pt.prefix.base().is_v4());
    // Every /24 lies inside one of its AS's announced prefixes.
    const std::size_t id = pt.asn - cd::ditl::kEdgeAsnBase;
    bool contained = false;
    for (std::size_t p = 0; p < plan->v4_count(id); ++p) {
      contained |= plan->v4_prefix(id, p).contains(pt.prefix.base());
    }
    EXPECT_TRUE(contained) << pt.prefix.to_string();
    const bool inserted =
        serial_by_base.emplace(pt.prefix.base(), pt.asn).second;
    EXPECT_TRUE(inserted) << "duplicate /24 " << pt.prefix.to_string();
  }

  const std::size_t n_shards = 4;
  std::map<IpAddr, cd::sim::Asn> union_by_base;
  std::uint64_t count_sum = 0;
  for (std::size_t shard = 0; shard < n_shards; ++shard) {
    count_sum += cd::ditl::count_prefix24(*plan, shard, n_shards);
    cd::ditl::for_each_prefix24(
        *plan, shard, n_shards,
        [&](cd::sim::Asn asn, const Prefix& p) {
          EXPECT_EQ(cd::scanner::shard_of(asn, n_shards), shard);
          const bool inserted = union_by_base.emplace(p.base(), asn).second;
          EXPECT_TRUE(inserted) << "/24 in two shards: " << p.to_string();
        });
  }
  EXPECT_EQ(count_sum, serial.size());
  EXPECT_EQ(union_by_base, serial_by_base);
}

// --- verdict-vs-truth property ----------------------------------------------

// A prefix verdict may never contradict the planted ground truth:
//  - soundness: a /24 marked vulnerable must belong to an AS whose border
//    admits in-prefix-spoofed packets (no DSAV, no same-subnet uRPF), and
//    every responding address must be a real deployed resolver;
//  - completeness: a probed /24 holding a directly-resolving resolver
//    (neither forwarding nor QNAME-minimizing — the attribution-safe kind)
//    behind such a border must be marked vulnerable.
TEST(CrossCheckTruth, VerdictNeverContradictsTruthTable) {
  for (const std::uint64_t seed :
       {std::uint64_t{7}, std::uint64_t{99}, std::uint64_t{2024}}) {
    const auto spec = test_spec(seed, 14);
    const auto world = cd::ditl::generate_world(spec);
    const auto plan = cd::ditl::build_campaign_plan(spec);

    const std::uint32_t width = 64;
    ExperimentConfig config;
    config.crosscheck = test_crosscheck(width);
    cd::ditl::World& w = *world;
    cd::core::Experiment experiment(w, config);
    const cd::core::ExperimentResults& results = experiment.run();
    ASSERT_GT(results.crosscheck_probes, 0u);

    const auto policy_of_asn = [&](cd::sim::Asn asn) {
      return plan->policy_of(asn - cd::ditl::kEdgeAsnBase);
    };

    // Soundness.
    std::uint64_t vulnerable = 0;
    for (const auto& [base, rec] : results.crosscheck_records) {
      if (!rec.vulnerable()) continue;
      ++vulnerable;
      const cd::sim::FilterPolicy policy = policy_of_asn(rec.asn);
      EXPECT_FALSE(policy.dsav)
          << "seed=" << seed << ": DSAV AS " << rec.asn
          << " marked vulnerable at " << base.to_string();
      EXPECT_FALSE(policy.drop_inbound_same_subnet)
          << "seed=" << seed << ": uRPF-subnet AS " << rec.asn
          << " marked vulnerable at " << base.to_string();
      for (const IpAddr& addr : rec.responding) {
        EXPECT_TRUE(Prefix(base, 24).contains(addr));
        EXPECT_NE(world->truth_resolvers.find(addr),
                  world->truth_resolvers.end())
            << "seed=" << seed << ": responding address "
            << addr.to_string() << " is not a deployed resolver";
      }
    }

    // Completeness, restricted to the probed window and to resolvers whose
    // resolution path cannot lose the attribution labels.
    std::uint64_t expected_hits = 0;
    for (const auto& [addr, truth] : world->truth_resolvers) {
      if (!addr.is_v4()) continue;
      const std::uint64_t offset = addr.bits().lo & 0xff;
      if (offset < 10 || offset >= 10 + width) continue;
      if (truth.forwards || truth.qmin) continue;
      const auto asn = world->topology.asn_of(addr);
      ASSERT_TRUE(asn.has_value()) << addr.to_string();
      if (*asn < cd::ditl::kEdgeAsnBase ||
          *asn >= cd::ditl::kEdgeAsnBase + static_cast<cd::sim::Asn>(
                                               plan->size())) {
        continue;  // infra/public resolvers are not in the /24 walk
      }
      const cd::sim::FilterPolicy policy = policy_of_asn(*asn);
      if (policy.dsav || policy.drop_inbound_same_subnet) continue;
      ++expected_hits;
      const IpAddr base = Prefix(addr, 24).base();
      const auto it = results.crosscheck_records.find(base);
      ASSERT_NE(it, results.crosscheck_records.end())
          << "seed=" << seed << ": reachable resolver " << addr.to_string()
          << " produced no /24 record";
      EXPECT_TRUE(it->second.responding.count(addr))
          << "seed=" << seed << ": reachable resolver " << addr.to_string()
          << " missing from its /24's responding set";
    }
    ASSERT_GT(expected_hits, 0u)
        << "seed=" << seed << ": world planted no attributable resolver in "
        << "the probed window — widen it";
    ASSERT_GT(vulnerable, 0u);
  }
}

// --- collector unit behaviour -----------------------------------------------

QnameCodec unit_codec() {
  return QnameCodec(cd::dns::DnsName::must_parse("dns-lab.org"), "x1");
}

cd::resolver::AuthLogEntry entry_for(const QnameCodec& codec,
                                     const QnameInfo& info,
                                     const IpAddr& client,
                                     cd::sim::SimTime at) {
  cd::resolver::AuthLogEntry entry;
  entry.time = at;
  entry.client = client;
  entry.qname = codec.encode(info);
  return entry;
}

TEST(CrossCheckCollectorTest, AttributesDirectAndForwardedEvidence) {
  const QnameCodec codec = unit_codec();
  CrossCheckCollector collector(codec, 10 * cd::sim::kSecond);

  QnameInfo info;
  info.ts = 1000;
  info.src = IpAddr::v4(20, 0, 1, 1);
  info.dst = IpAddr::v4(20, 0, 1, 50);
  info.asn = 100;
  info.mode = QueryMode::kCrossCheck;
  collector.observe(entry_for(codec, info, info.dst, 2000));  // direct

  info.dst = IpAddr::v4(20, 0, 1, 51);
  collector.observe(
      entry_for(codec, info, IpAddr::v4(9, 9, 9, 9), 2000));  // forwarded

  ASSERT_EQ(collector.records().size(), 1u);
  const PrefixRecord& rec = collector.records().begin()->second;
  EXPECT_EQ(rec.prefix, IpAddr::v4(20, 0, 1, 0));
  EXPECT_EQ(rec.asn, 100u);
  EXPECT_EQ(rec.hits, 2u);
  EXPECT_TRUE(rec.direct_seen);
  EXPECT_TRUE(rec.forwarded_seen);
  EXPECT_TRUE(rec.vulnerable());
  EXPECT_EQ(rec.responding,
            (std::set<IpAddr>{IpAddr::v4(20, 0, 1, 50),
                              IpAddr::v4(20, 0, 1, 51)}));
  EXPECT_EQ(collector.stats().entries_seen, 2u);
  EXPECT_EQ(collector.stats().foreign, 0u);
}

TEST(CrossCheckCollectorTest, FiltersForeignPartialLifetimeAndOtherModes) {
  const QnameCodec codec = unit_codec();
  CrossCheckCollector collector(codec, 10 * cd::sim::kSecond);

  cd::resolver::AuthLogEntry foreign;
  foreign.time = 100;
  foreign.qname = cd::dns::DnsName::must_parse("www.example.com");
  collector.observe(foreign);
  EXPECT_EQ(collector.stats().foreign, 1u);

  QnameInfo info;
  info.ts = 1000;
  info.src = IpAddr::v4(20, 0, 1, 1);
  info.dst = IpAddr::v4(20, 0, 1, 50);
  info.asn = 100;
  info.mode = QueryMode::kInitial;  // probe plane: not ours
  collector.observe(entry_for(codec, info, info.dst, 2000));
  EXPECT_TRUE(collector.records().empty());

  info.mode = QueryMode::kCrossCheck;  // replayed hours later: excluded
  collector.observe(
      entry_for(codec, info, info.dst, 1000 + 11 * cd::sim::kSecond));
  EXPECT_TRUE(collector.records().empty());
  EXPECT_EQ(collector.stats().excluded_lifetime, 1u);

  // QNAME-minimized remnant: mode label present, attribution labels gone.
  cd::resolver::AuthLogEntry partial;
  partial.time = 2000;
  partial.client = info.dst;
  partial.qname = codec.base().prepend(codec.keyword()).prepend("m5");
  collector.observe(partial);
  EXPECT_TRUE(collector.records().empty());
  EXPECT_EQ(collector.stats().partial, 1u);
}

// --- methodology-agreement join ---------------------------------------------

TEST(MethodologyAgreement, ClassifiesEveryQuadrant) {
  // AS 100: both modalities hit. AS 101: neither. AS 102: resolver only
  // (the uRPF-subnet signature). AS 103: prefix only (a resolver the
  // per-resolver campaign never probed).
  cd::analysis::Records records;
  std::vector<cd::scanner::TargetInfo> targets;
  const auto add_target = [&](cd::sim::Asn asn, const IpAddr& addr,
                              bool reachable) {
    targets.push_back({addr, asn});
    cd::scanner::TargetRecord rec;
    rec.target = addr;
    rec.asn = asn;
    if (reachable) {
      rec.first_hit_time = 5;
      rec.sources_hit.insert(IpAddr::v4(60, 0, 0, 1));
    }
    records.emplace(addr, rec);
  };
  add_target(100, IpAddr::v4(20, 0, 1, 50), true);
  add_target(101, IpAddr::v4(20, 1, 1, 50), false);
  add_target(102, IpAddr::v4(20, 2, 1, 50), true);

  PrefixRecords prefix_records;
  std::vector<PrefixTarget> probed;
  const auto add_prefix = [&](cd::sim::Asn asn, const IpAddr& base,
                              bool vulnerable) {
    probed.push_back({Prefix(base, 24), asn});
    if (vulnerable) {
      PrefixRecord rec;
      rec.prefix = base;
      rec.asn = asn;
      rec.responding.insert(base.offset_by(50));
      prefix_records.emplace(base, rec);
    }
  };
  add_prefix(100, IpAddr::v4(20, 0, 1, 0), true);
  add_prefix(100, IpAddr::v4(20, 0, 2, 0), false);
  add_prefix(101, IpAddr::v4(20, 1, 1, 0), false);
  add_prefix(102, IpAddr::v4(20, 2, 1, 0), false);
  add_prefix(103, IpAddr::v4(20, 3, 1, 0), true);

  const cd::analysis::AgreementReport report =
      cd::analysis::methodology_agreement(records, targets, prefix_records,
                                          probed);
  ASSERT_EQ(report.ases, 4u);
  EXPECT_EQ(report.agree_vulnerable, 1u);
  EXPECT_EQ(report.agree_filtered, 1u);
  EXPECT_EQ(report.resolver_only, 1u);
  EXPECT_EQ(report.prefix_only, 1u);
  EXPECT_EQ(report.prefixes_probed, 5u);
  EXPECT_EQ(report.prefixes_vulnerable, 2u);
  EXPECT_DOUBLE_EQ(report.prefix_vulnerable_share, 0.4);
  EXPECT_EQ(report.resolver_ases_probed, 3u);
  EXPECT_EQ(report.resolver_ases_vulnerable, 2u);

  ASSERT_EQ(report.rows.size(), 4u);
  using cd::analysis::MethodAgreement;
  EXPECT_EQ(report.rows[0].asn, 100u);
  EXPECT_EQ(report.rows[0].verdict, MethodAgreement::kAgreeVulnerable);
  EXPECT_EQ(report.rows[1].verdict, MethodAgreement::kAgreeFiltered);
  EXPECT_EQ(report.rows[2].verdict, MethodAgreement::kResolverOnly);
  EXPECT_EQ(report.rows[3].verdict, MethodAgreement::kPrefixOnly);
  EXPECT_EQ(report.rows[3].resolvers_probed, 0u);

  const std::string rendered = cd::analysis::render_agreement(report);
  EXPECT_NE(rendered.find("agree-vulnerable: 1"), std::string::npos);
  EXPECT_NE(rendered.find("prefix-only"), std::string::npos);
}

// The agreement classification tracks the truth table's border flags
// wherever both modalities had coverage: a DSAV or uRPF-subnet AS can never
// show a vulnerable prefix, and an open-border AS holding an attributable
// resolver *inside the probed window* can never be classified resolver-only
// (outside the window — or behind qmin/forwarding attribution loss — a
// resolver-only verdict is legitimate coverage asymmetry, not a bug).
TEST(MethodologyAgreement, VerdictsTrackTruthOverRandomizedWorlds) {
  for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{777}}) {
    const auto spec = test_spec(seed, 12);
    const auto world = cd::ditl::generate_world(spec);
    const auto plan = cd::ditl::build_campaign_plan(spec);

    const std::uint32_t width = 64;
    ExperimentConfig config;
    config.crosscheck = test_crosscheck(width);
    cd::core::Experiment experiment(*world, config);
    const cd::core::ExperimentResults& results = experiment.run();

    // ASes with at least one directly-resolving (non-forwarding, non-qmin)
    // v4 resolver at a probed host offset: the prefix scanner is guaranteed
    // evidence there if — and only if — the border is open.
    std::set<cd::sim::Asn> attributable;
    for (const auto& [addr, truth] : world->truth_resolvers) {
      if (!addr.is_v4() || truth.forwards || truth.qmin) continue;
      const std::uint64_t offset = addr.bits().lo & 0xff;
      if (offset < 10 || offset >= 10 + width) continue;
      const auto asn = world->topology.asn_of(addr);
      if (asn) attributable.insert(*asn);
    }

    std::vector<PrefixTarget> probed;
    cd::ditl::for_each_prefix24(*plan, 0, 1,
                                [&probed](cd::sim::Asn asn, const Prefix& p) {
                                  probed.push_back({p, asn});
                                });
    const cd::analysis::AgreementReport report =
        cd::analysis::methodology_agreement(results.records, world->targets,
                                            results.crosscheck_records,
                                            probed);
    ASSERT_GT(report.ases, 0u);

    for (const cd::analysis::AsAgreement& row : report.rows) {
      if (row.asn < cd::ditl::kEdgeAsnBase) continue;
      const cd::sim::FilterPolicy policy =
          plan->policy_of(row.asn - cd::ditl::kEdgeAsnBase);
      const bool blocks_prefix_scan =
          policy.dsav || policy.drop_inbound_same_subnet;
      if (blocks_prefix_scan) {
        EXPECT_EQ(row.prefixes_vulnerable, 0u)
            << "seed=" << seed << " AS " << row.asn
            << ": prefix scanner crossed a filtering border";
      } else if (attributable.count(row.asn)) {
        EXPECT_NE(row.verdict, cd::analysis::MethodAgreement::kResolverOnly)
            << "seed=" << seed << " AS " << row.asn
            << ": open border with an attributable in-window resolver, yet "
            << "the prefix modality missed — contradicts the truth table";
      }
    }
  }
}

}  // namespace
