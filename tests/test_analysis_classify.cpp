// Unit tests: analysis aggregations over hand-built target records, plus the
// GeoDb and histograms.
#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "analysis/histogram.h"

namespace {

using namespace cd;
using analysis::GeoDb;
using analysis::Records;
using net::IpAddr;
using scanner::SourceCategory;
using scanner::TargetInfo;
using scanner::TargetRecord;

TargetRecord reached(const char* addr, sim::Asn asn,
                     std::initializer_list<SourceCategory> cats) {
  TargetRecord rec;
  rec.target = IpAddr::must_parse(addr);
  rec.asn = asn;
  rec.first_hit_time = 1000;
  rec.categories_hit = cats;
  rec.sources_hit.insert(rec.target);  // placeholder
  return rec;
}

TEST(Dsav, SummaryCounts) {
  Records records;
  records.emplace(IpAddr::must_parse("20.0.0.1"),
                  reached("20.0.0.1", 1, {SourceCategory::kOtherPrefix}));
  records.emplace(IpAddr::must_parse("2400:1::1"),
                  reached("2400:1::1", 1, {SourceCategory::kSamePrefix}));

  const std::vector<TargetInfo> targets = {
      {IpAddr::must_parse("20.0.0.1"), 1},
      {IpAddr::must_parse("20.0.0.2"), 1},   // unreached
      {IpAddr::must_parse("21.0.0.1"), 2},   // unreached, other AS
      {IpAddr::must_parse("2400:1::1"), 1},
  };
  const auto s = analysis::summarize_dsav(records, targets);
  EXPECT_EQ(s.v4.targets_total, 3u);
  EXPECT_EQ(s.v4.targets_reachable, 1u);
  EXPECT_EQ(s.v4.asns_total, 2u);
  EXPECT_EQ(s.v4.asns_reachable, 1u);
  EXPECT_EQ(s.v6.targets_total, 1u);
  EXPECT_EQ(s.v6.targets_reachable, 1u);
  EXPECT_EQ(s.v6.asns_total, 1u);
}

TEST(CategoryTable, InclusiveAndExclusive) {
  Records records;
  // Target A: hit by other-prefix only -> exclusive to other-prefix.
  records.emplace(IpAddr::must_parse("20.0.0.1"),
                  reached("20.0.0.1", 1, {SourceCategory::kOtherPrefix}));
  // Target B: hit by both same-prefix and dst-as-src -> exclusive to none.
  records.emplace(IpAddr::must_parse("20.0.0.2"),
                  reached("20.0.0.2", 1,
                          {SourceCategory::kSamePrefix,
                           SourceCategory::kDstAsSrc}));
  // Target C in AS 2: loopback only.
  records.emplace(IpAddr::must_parse("21.0.0.1"),
                  reached("21.0.0.1", 2, {SourceCategory::kLoopback}));

  const std::vector<TargetInfo> targets = {
      {IpAddr::must_parse("20.0.0.1"), 1},
      {IpAddr::must_parse("20.0.0.2"), 1},
      {IpAddr::must_parse("21.0.0.1"), 2},
      {IpAddr::must_parse("21.0.0.9"), 2},  // unreached
  };
  const auto t = analysis::build_category_table(records, targets);

  const auto other = static_cast<std::size_t>(SourceCategory::kOtherPrefix);
  const auto same = static_cast<std::size_t>(SourceCategory::kSamePrefix);
  const auto ds = static_cast<std::size_t>(SourceCategory::kDstAsSrc);
  const auto lb = static_cast<std::size_t>(SourceCategory::kLoopback);

  EXPECT_EQ(t.queried[0].addrs, 4u);
  EXPECT_EQ(t.reachable[0].addrs, 3u);
  EXPECT_EQ(t.inclusive[other][0].addrs, 1u);
  EXPECT_EQ(t.inclusive[same][0].addrs, 1u);
  EXPECT_EQ(t.inclusive[ds][0].addrs, 1u);
  EXPECT_EQ(t.inclusive[lb][0].addrs, 1u);
  EXPECT_EQ(t.inclusive[other][0].asns, 1u);
  EXPECT_EQ(t.inclusive[lb][0].asns, 1u);

  // Address exclusivity: A (other) and C (loopback); B is not exclusive.
  EXPECT_EQ(t.exclusive[other][0].addrs, 1u);
  EXPECT_EQ(t.exclusive[same][0].addrs, 0u);
  EXPECT_EQ(t.exclusive[ds][0].addrs, 0u);
  EXPECT_EQ(t.exclusive[lb][0].addrs, 1u);

  // AS exclusivity: AS 1 has target B reachable via two categories, so
  // removing other-prefix still leaves it discovered -> not exclusive.
  EXPECT_EQ(t.exclusive[other][0].asns, 0u);
  // AS 2 is only discoverable via loopback.
  EXPECT_EQ(t.exclusive[lb][0].asns, 1u);
}

TEST(OpenClosed, Stats) {
  Records records;
  auto a = reached("20.0.0.1", 1, {SourceCategory::kOtherPrefix});
  a.open_hit = true;
  records.emplace(a.target, a);
  auto b = reached("20.0.0.2", 1, {SourceCategory::kOtherPrefix});
  records.emplace(b.target, b);
  auto c = reached("21.0.0.1", 2, {SourceCategory::kOtherPrefix});
  c.open_hit = true;
  records.emplace(c.target, c);

  const auto s = analysis::open_closed_stats(records);
  EXPECT_EQ(s.open, 2u);
  EXPECT_EQ(s.closed, 1u);
  EXPECT_EQ(s.reachable_asns, 2u);
  EXPECT_EQ(s.asns_with_closed, 1u);  // only AS 1 has a closed one
}

TEST(Forwarding, Stats) {
  Records records;
  auto a = reached("20.0.0.1", 1, {SourceCategory::kOtherPrefix});
  a.direct_seen = true;
  records.emplace(a.target, a);
  auto b = reached("20.0.0.2", 1, {SourceCategory::kOtherPrefix});
  b.forwarded_seen = true;
  records.emplace(b.target, b);
  auto c = reached("2400:1::1", 1, {SourceCategory::kOtherPrefix});
  c.direct_seen = true;
  c.forwarded_seen = true;
  records.emplace(c.target, c);
  // No evidence at all: excluded from "resolved".
  auto d = reached("20.0.0.3", 1, {SourceCategory::kOtherPrefix});
  records.emplace(d.target, d);

  const auto s = analysis::forwarding_stats(records);
  EXPECT_EQ(s.v4.resolved, 2u);
  EXPECT_EQ(s.v4.direct, 1u);
  EXPECT_EQ(s.v4.forwarded, 1u);
  EXPECT_EQ(s.v4.both, 0u);
  EXPECT_EQ(s.v6.resolved, 1u);
  EXPECT_EQ(s.v6.both, 1u);
}

TEST(Table4, ClassifiesByAdjustedRange) {
  Records records;
  // Zero-range resolver (closed).
  auto zero = reached("20.0.0.1", 1, {SourceCategory::kOtherPrefix});
  zero.ports_v4 = std::vector<std::uint16_t>(10, 53);
  records.emplace(zero.target, zero);
  // Linux-range resolver (open).
  auto linux = reached("20.0.0.2", 1, {SourceCategory::kOtherPrefix});
  linux.open_hit = true;
  linux.ports_v4 = {32768, 40000, 45000, 50000, 52000, 55000, 58000, 60000,
                    60500, 60001};
  records.emplace(linux.target, linux);
  // Too few samples: unclassified.
  auto thin = reached("20.0.0.3", 1, {SourceCategory::kOtherPrefix});
  thin.ports_v4 = {1, 2, 3};
  records.emplace(thin.target, thin);

  const auto result =
      analysis::build_table4(records, analysis::P0fDatabase::standard());
  EXPECT_EQ(result.classified_targets, 2u);
  EXPECT_EQ(result.rows[0].total, 1u);  // zero band
  EXPECT_EQ(result.rows[0].closed, 1u);
  EXPECT_EQ(result.rows[6].total, 1u);  // Linux band (range 27,733)
  EXPECT_EQ(result.rows[6].open, 1u);
}

TEST(Table4, WindowsWrapAdjustedWhenP0fSaysWindows) {
  // Wrapped Windows pool: raw range ~16k (FreeBSD band), adjusted ~2.2k
  // (Windows band). The record carries a Windows SYN.
  auto rec = reached("20.0.0.9", 3, {SourceCategory::kOtherPrefix});
  rec.ports_v4 = {65300, 65400, 65500, 65535, 49152, 49300,
                  49500, 50000, 50500, 51000};
  const auto& win = sim::os_profile(sim::OsId::kWin2012);
  net::Packet syn = net::make_tcp(rec.target, 40000,
                                  IpAddr::must_parse("199.7.2.1"), 53,
                                  net::TcpFlags{.syn = true});
  syn.ttl = static_cast<std::uint8_t>(win.fp.initial_ttl - 5);
  syn.tcp_window = win.fp.window;
  syn.tcp_options = win.fp.syn_options;
  rec.tcp_syn = syn;

  Records records;
  records.emplace(rec.target, rec);
  const auto result =
      analysis::build_table4(records, analysis::P0fDatabase::standard());
  EXPECT_EQ(result.rows[3].total, 1u);  // Windows band
  EXPECT_EQ(result.rows[3].p0f_windows, 1u);
  EXPECT_EQ(result.rows[5].total, 0u);  // not misfiled as FreeBSD

  // Without the SYN the raw range is 16,383, which misfiles the resolver
  // into the Linux band: the ablation the paper's adjustment exists to fix.
  rec.tcp_syn.reset();
  Records no_fp;
  no_fp.emplace(rec.target, rec);
  const auto raw =
      analysis::build_table4(no_fp, analysis::P0fDatabase::standard());
  EXPECT_EQ(raw.rows[6].total, 1u);
  EXPECT_EQ(raw.rows[3].total, 0u);
}

TEST(ZeroRange, PortBreakdown) {
  Records records;
  for (int i = 0; i < 3; ++i) {
    auto rec = reached(("20.0.1." + std::to_string(i + 1)).c_str(), 1,
                       {SourceCategory::kOtherPrefix});
    rec.ports_v4 = std::vector<std::uint16_t>(10, i < 2 ? 53 : 32768);
    rec.open_hit = i == 0;
    records.emplace(rec.target, rec);
  }
  const auto s = analysis::zero_range_stats(records);
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.open, 1u);
  EXPECT_EQ(s.closed, 2u);
  EXPECT_EQ(s.port_counts.at(53), 2u);
  EXPECT_EQ(s.port_counts.at(32768), 1u);
  EXPECT_EQ(s.asns, 1u);
  EXPECT_EQ(s.asns_with_closed, 1u);
}

TEST(LowRange, PatternDetection) {
  Records records;
  // Sequential walker.
  auto seq = reached("20.0.2.1", 1, {SourceCategory::kOtherPrefix});
  seq.ports_v4 = {1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007, 1008, 1009};
  records.emplace(seq.target, seq);
  // Sequential with wrap.
  auto wrap = reached("20.0.2.2", 1, {SourceCategory::kOtherPrefix});
  wrap.ports_v4 = {1095, 1097, 1099, 1000, 1004, 1010, 1020, 1030, 1040, 1050};
  records.emplace(wrap.target, wrap);
  // Small random pool (few unique).
  auto pool = reached("20.0.2.3", 2, {SourceCategory::kOtherPrefix});
  pool.ports_v4 = {1000, 1003, 1000, 1003, 1007, 1000, 1003, 1007, 1000, 1003};
  records.emplace(pool.target, pool);

  const auto s = analysis::low_range_stats(records);
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.asns, 2u);
  EXPECT_EQ(s.strictly_increasing, 2u);
  EXPECT_EQ(s.wrapped, 1u);
  EXPECT_EQ(s.few_unique, 1u);
}

TEST(Geo, LongestPrefixCountry) {
  GeoDb geo;
  geo.add(net::Prefix::must_parse("20.0.0.0/8"), "Brazil");
  geo.add(net::Prefix::must_parse("20.5.0.0/16"), "Chile");
  geo.add(net::Prefix::must_parse("2400:1::/32"), "Japan");
  EXPECT_EQ(geo.country_of(IpAddr::must_parse("20.1.2.3")), "Brazil");
  EXPECT_EQ(geo.country_of(IpAddr::must_parse("20.5.9.9")), "Chile");
  EXPECT_EQ(geo.country_of(IpAddr::must_parse("2400:1::77")), "Japan");
  EXPECT_FALSE(geo.country_of(IpAddr::must_parse("21.0.0.1")));
  EXPECT_EQ(geo.size(), 3u);
}

TEST(CountryRows, AsCountedPerCountry) {
  GeoDb geo;
  geo.add(net::Prefix::must_parse("20.0.0.0/16"), "Brazil");
  geo.add(net::Prefix::must_parse("20.1.0.0/16"), "Chile");

  Records records;
  records.emplace(IpAddr::must_parse("20.0.0.1"),
                  reached("20.0.0.1", 1, {SourceCategory::kOtherPrefix}));

  // AS 1 has targets in two countries: counted in both (paper's method).
  const std::vector<TargetInfo> targets = {
      {IpAddr::must_parse("20.0.0.1"), 1},
      {IpAddr::must_parse("20.1.0.1"), 1},
  };
  const auto rows = analysis::dsav_by_country(records, targets, geo);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.ases_total, 1u);
    if (row.country == "Brazil") {
      EXPECT_EQ(row.targets_reachable, 1u);
      EXPECT_EQ(row.ases_reachable, 1u);
    } else {
      EXPECT_EQ(row.targets_reachable, 0u);
      EXPECT_EQ(row.ases_reachable, 0u);
    }
  }
}

TEST(Histogram, BinningAndClamping) {
  analysis::StackedHistogram hist(0, 100, 10, {"a", "b"});
  EXPECT_EQ(hist.bin_count(), 11u);
  hist.add(0, 0);
  hist.add(9, 0);
  hist.add(10, 1);
  hist.add(-5, 0);   // clamps to first bin
  hist.add(999, 1);  // clamps to last bin
  EXPECT_EQ(hist.count(0, 0), 3u);
  EXPECT_EQ(hist.count(1, 1), 1u);
  EXPECT_EQ(hist.count(10, 1), 1u);
  EXPECT_EQ(hist.total(0), 3u);
  EXPECT_EQ(hist.total(1), 2u);
  EXPECT_EQ(hist.bin_total(0), 3u);
  EXPECT_EQ(hist.bin_lo(1), 10);
  EXPECT_EQ(hist.bin_hi(1), 19);
}

TEST(Histogram, CsvAndAscii) {
  analysis::StackedHistogram hist(0, 10, 5, {"x"});
  hist.add(1);
  hist.add(7);
  hist.set_overlay({1.5, 2.5, 0.0});
  const auto rows = hist.csv_rows();
  ASSERT_EQ(rows.size(), 4u);  // header + 3 bins
  EXPECT_EQ(rows[0], (std::vector<std::string>{"bin_lo", "bin_hi", "x",
                                               "model"}));
  EXPECT_EQ(rows[1][2], "1");
  const std::string ascii = hist.render_ascii();
  EXPECT_NE(ascii.find("legend"), std::string::npos);
  EXPECT_NE(ascii.find("model"), std::string::npos);
}

}  // namespace
