// Integration tests: the recursive resolver against a miniature DNS
// hierarchy (root -> tld -> leaf) — iteration, caching, negatives, QNAME
// minimization, CNAME chasing, forwarding, ACLs, TCP fallback, retries.
#include <gtest/gtest.h>

#include "dns/cache.h"
#include "dns/message.h"
#include "net/packet.h"
#include "resolver/auth.h"
#include "resolver/recursive.h"
#include "resolver/software.h"
#include "sim/network.h"

namespace {

using namespace cd;
using dns::DnsMessage;
using dns::DnsName;
using dns::DnsRr;
using dns::Rcode;
using dns::RrType;
using net::IpAddr;
using resolver::QminMode;
using resolver::RecursiveResolver;
using resolver::ResolverConfig;

struct MiniLab {
  sim::EventLoop loop;
  sim::Topology topology;
  sim::Network network{topology, loop, Rng(31)};

  std::unique_ptr<sim::Host> root_host;
  std::unique_ptr<sim::Host> leaf_host;    // authoritative for example.test
  std::unique_ptr<sim::Host> v6only_host;  // authoritative for six.test
  std::unique_ptr<sim::Host> res_host;
  std::unique_ptr<resolver::AuthServer> root_auth;
  std::unique_ptr<resolver::AuthServer> leaf_auth;
  std::unique_ptr<resolver::AuthServer> v6_auth;
  std::unique_ptr<RecursiveResolver> res;

  const IpAddr root4 = IpAddr::must_parse("40.0.0.1");
  const IpAddr leaf4 = IpAddr::must_parse("40.0.1.1");
  const IpAddr v66 = IpAddr::must_parse("2400:40::66");
  const IpAddr res4 = IpAddr::must_parse("41.0.0.1");

  explicit MiniLab(ResolverConfig config = {}, bool give_resolver_v6 = false,
                   bool wildcard = false) {
    topology.add_as(1);
    topology.announce(1, net::Prefix::must_parse("40.0.0.0/16"));
    topology.announce(1, net::Prefix::must_parse("2400:40::/32"));
    topology.add_as(2);
    topology.announce(2, net::Prefix::must_parse("41.0.0.0/16"));
    topology.announce(2, net::Prefix::must_parse("2400:41::/32"));

    const auto& os = sim::os_profile(sim::OsId::kUbuntu1904);
    root_host = std::make_unique<sim::Host>(network, 1, os,
                                            std::vector<IpAddr>{root4}, Rng(1),
                                            "root");
    leaf_host = std::make_unique<sim::Host>(network, 1, os,
                                            std::vector<IpAddr>{leaf4}, Rng(2),
                                            "leaf");
    v6only_host = std::make_unique<sim::Host>(
        network, 1, os, std::vector<IpAddr>{v66}, Rng(3), "v6only");

    dns::SoaRdata soa;
    soa.mname = DnsName::must_parse("ns.root");
    soa.rname = DnsName::must_parse("admin.root");
    soa.minimum = 60;

    // Root zone: delegations to example.test (v4 glue) and six.test (v6-only
    // glue).
    auto root_zone = std::make_shared<dns::Zone>(DnsName(), soa);
    root_zone->add(dns::make_ns(DnsName::must_parse("example.test"),
                                DnsName::must_parse("ns.example.test")));
    root_zone->add(dns::make_a(DnsName::must_parse("ns.example.test"), leaf4));
    root_zone->add(dns::make_ns(DnsName::must_parse("six.test"),
                                DnsName::must_parse("ns.six.test")));
    root_zone->add(dns::make_aaaa(DnsName::must_parse("ns.six.test"), v66));
    // A glue-less delegation (NS target resolvable via example.test).
    root_zone->add(dns::make_ns(DnsName::must_parse("glueless.test"),
                                DnsName::must_parse("ns2.example.test")));

    auto leaf_zone =
        std::make_shared<dns::Zone>(DnsName::must_parse("example.test"), soa);
    leaf_zone->add(dns::make_a(DnsName::must_parse("www.example.test"),
                               IpAddr::must_parse("40.0.9.9")));
    leaf_zone->add(dns::make_a(DnsName::must_parse("ns2.example.test"),
                               leaf4));
    leaf_zone->add(
        dns::make_cname(DnsName::must_parse("alias.example.test"),
                        DnsName::must_parse("www.example.test")));
    leaf_zone->add(
        dns::make_cname(DnsName::must_parse("loop1.example.test"),
                        DnsName::must_parse("loop2.example.test")));
    leaf_zone->add(
        dns::make_cname(DnsName::must_parse("loop2.example.test"),
                        DnsName::must_parse("loop1.example.test")));
    if (wildcard) {
      leaf_zone->add(dns::make_a(
          DnsName::must_parse("*.kw.example.test"), leaf4));
    }

    auto v6_zone =
        std::make_shared<dns::Zone>(DnsName::must_parse("six.test"), soa);
    v6_zone->add(dns::make_a(DnsName::must_parse("host.six.test"),
                             IpAddr::must_parse("40.0.7.7")));

    root_auth = std::make_unique<resolver::AuthServer>(*root_host);
    root_auth->add_zone(root_zone);
    resolver::AuthConfig leaf_config;
    leaf_config.truncate_suffixes.push_back(
        DnsName::must_parse("tcp.example.test"));
    leaf_auth = std::make_unique<resolver::AuthServer>(*leaf_host,
                                                       leaf_config);
    leaf_auth->add_zone(leaf_zone);
    v6_auth = std::make_unique<resolver::AuthServer>(*v6only_host);
    v6_auth->add_zone(v6_zone);

    std::vector<IpAddr> res_addrs{res4};
    if (give_resolver_v6) res_addrs.push_back(IpAddr::must_parse("2400:41::1"));
    res_host = std::make_unique<sim::Host>(network, 2, os, res_addrs, Rng(4),
                                           "resolver");
    resolver::RootHints hints;
    hints.servers = {root4};
    res = std::make_unique<RecursiveResolver>(
        *res_host, std::move(config), hints,
        std::make_unique<resolver::UniformRangeAllocator>(32768, 61000,
                                                          Rng(5)),
        Rng(6));
  }

  struct Outcome {
    bool done = false;
    Rcode rcode = Rcode::kServFail;
    std::vector<DnsRr> records;
  };

  Outcome resolve(const char* qname, RrType type = RrType::kA) {
    Outcome out;
    res->resolve(DnsName::must_parse(qname), type,
                 [&](Rcode rcode, const std::vector<DnsRr>& records) {
                   out.done = true;
                   out.rcode = rcode;
                   out.records = records;
                 });
    loop.run(1'000'000);
    return out;
  }
};

TEST(Recursive, IterativeResolutionThroughDelegation) {
  MiniLab lab;
  const auto out = lab.resolve("www.example.test");
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.rcode, Rcode::kNoError);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(out.records[0].rdata).addr,
            IpAddr::must_parse("40.0.9.9"));
  EXPECT_GE(lab.res->stats().upstream_queries, 2u);  // root + leaf
}

TEST(Recursive, NxDomainPropagates) {
  MiniLab lab;
  EXPECT_EQ(lab.resolve("nope.example.test").rcode, Rcode::kNxDomain);
}

TEST(Recursive, NoDataIsEmptyNoError) {
  MiniLab lab;
  const auto out = lab.resolve("www.example.test", RrType::kAaaa);
  EXPECT_EQ(out.rcode, Rcode::kNoError);
  EXPECT_TRUE(out.records.empty());
}

TEST(Recursive, SecondLookupServedFromCache) {
  MiniLab lab;
  (void)lab.resolve("www.example.test");
  const auto before = lab.res->stats().upstream_queries;
  const auto out = lab.resolve("www.example.test");
  EXPECT_EQ(out.rcode, Rcode::kNoError);
  EXPECT_EQ(lab.res->stats().upstream_queries, before);  // no new traffic
  EXPECT_GE(lab.res->stats().cache_hits, 1u);
}

TEST(Recursive, NegativeCacheSuppressesRequery) {
  MiniLab lab;
  (void)lab.resolve("gone.example.test");
  const auto before = lab.res->stats().upstream_queries;
  EXPECT_EQ(lab.resolve("gone.example.test").rcode, Rcode::kNxDomain);
  EXPECT_EQ(lab.res->stats().upstream_queries, before);
}

TEST(Recursive, DelegationNsCacheReused) {
  MiniLab lab;
  (void)lab.resolve("www.example.test");
  const auto before = lab.res->stats().upstream_queries;
  (void)lab.resolve("alias.example.test");
  // Second resolution skips the root: delegation + glue were cached.
  EXPECT_LE(lab.res->stats().upstream_queries - before, 3u);
  EXPECT_EQ(lab.root_auth->queries_served(), 1u);
}

TEST(Recursive, CnameChased) {
  MiniLab lab;
  const auto out = lab.resolve("alias.example.test");
  EXPECT_EQ(out.rcode, Rcode::kNoError);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0].type, RrType::kCname);
  EXPECT_EQ(out.records[1].type, RrType::kA);
}

TEST(Recursive, CnameLoopGivesUp) {
  MiniLab lab;
  const auto out = lab.resolve("loop1.example.test");
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.rcode, Rcode::kServFail);
}

TEST(Recursive, GluelessDelegationResolvedOutOfBand) {
  MiniLab lab;
  const auto out = lab.resolve("anything.glueless.test");
  ASSERT_TRUE(out.done);
  // ns2.example.test resolves via example.test, then the query proceeds —
  // and the name does not exist in the (unconfigured) child, so SERVFAIL is
  // also acceptable once the NS itself resolves. What matters: no hang and
  // the NS fetch happened.
  EXPECT_GE(lab.leaf_auth->queries_served(), 1u);
}

TEST(Recursive, V6OnlyZoneUnreachableWithoutV6) {
  MiniLab lab;  // resolver is v4-only
  const auto out = lab.resolve("host.six.test");
  EXPECT_EQ(out.rcode, Rcode::kServFail);
  EXPECT_EQ(lab.v6_auth->queries_served(), 0u);
}

TEST(Recursive, V6OnlyZoneReachableWithV6) {
  MiniLab lab({}, /*give_resolver_v6=*/true);
  const auto out = lab.resolve("host.six.test");
  EXPECT_EQ(out.rcode, Rcode::kNoError);
  EXPECT_GE(lab.v6_auth->queries_served(), 1u);
}

TEST(Recursive, StrictQminHaltsOnNxDomain) {
  ResolverConfig config;
  config.qmin = QminMode::kStrict;
  MiniLab lab(config);
  const auto out = lab.resolve("a.b.kw.example.test");
  EXPECT_EQ(out.rcode, Rcode::kNxDomain);
  // The leaf auth saw only the minimized name, never the full one: the
  // paper's §3.6.4 attribution gap.
  bool saw_full = false;
  for (const auto& entry : lab.leaf_auth->log()) {
    if (entry.qname == DnsName::must_parse("a.b.kw.example.test")) {
      saw_full = true;
    }
  }
  EXPECT_FALSE(saw_full);
  EXPECT_GE(lab.leaf_auth->queries_served(), 1u);
}

TEST(Recursive, RelaxedQminFallsBackToFullName) {
  ResolverConfig config;
  config.qmin = QminMode::kRelaxed;
  MiniLab lab(config);
  const auto out = lab.resolve("a.b.kw.example.test");
  EXPECT_EQ(out.rcode, Rcode::kNxDomain);
  bool saw_full = false;
  for (const auto& entry : lab.leaf_auth->log()) {
    if (entry.qname == DnsName::must_parse("a.b.kw.example.test")) {
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_full);
}

TEST(Recursive, StrictQminTraversesWildcardZone) {
  ResolverConfig config;
  config.qmin = QminMode::kStrict;
  MiniLab lab(config, false, /*wildcard=*/true);
  const auto out = lab.resolve("a.b.kw.example.test");
  // The wildcard prevents mid-walk NXDOMAIN, so minimization walks to the
  // full name and gets the synthesized answer — the paper's proposed fix.
  EXPECT_EQ(out.rcode, Rcode::kNoError);
  ASSERT_FALSE(out.records.empty());
  bool saw_full = false;
  for (const auto& entry : lab.leaf_auth->log()) {
    if (entry.qname == DnsName::must_parse("a.b.kw.example.test")) {
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_full);
}

TEST(Recursive, TcpFallbackOnTruncation) {
  MiniLab lab;
  const auto out = lab.resolve("probe.tcp.example.test");
  EXPECT_EQ(out.rcode, Rcode::kNxDomain);  // served over TCP
  EXPECT_GE(lab.res->stats().tcp_retries, 1u);
  bool saw_tcp = false;
  for (const auto& entry : lab.leaf_auth->log()) {
    if (entry.tcp) {
      saw_tcp = true;
      EXPECT_TRUE(entry.syn.has_value());
    }
  }
  EXPECT_TRUE(saw_tcp);
}

TEST(Recursive, ForwardingModeUsesUpstream) {
  // Upstream: a second resolver (open) at 41.0.0.2; forwarder points at it.
  MiniLab lab;
  sim::Host upstream_host(lab.network, 2,
                          sim::os_profile(sim::OsId::kUbuntu1904),
                          {IpAddr::must_parse("41.0.0.2")}, Rng(8), "up");
  resolver::RootHints hints;
  hints.servers = {lab.root4};
  ResolverConfig up_config;
  up_config.open = true;
  RecursiveResolver upstream(
      upstream_host, up_config, hints,
      std::make_unique<resolver::UniformRangeAllocator>(1024, 65535, Rng(9)),
      Rng(10));

  sim::Host fwd_host(lab.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
                     {IpAddr::must_parse("41.0.0.3")}, Rng(11), "fwd");
  ResolverConfig fwd_config;
  fwd_config.open = true;
  fwd_config.forwarders = {IpAddr::must_parse("41.0.0.2")};
  RecursiveResolver forwarder(
      fwd_host, fwd_config, resolver::RootHints{},  // no hints needed
      std::make_unique<resolver::UniformRangeAllocator>(1024, 65535, Rng(12)),
      Rng(13));

  bool done = false;
  Rcode rcode = Rcode::kServFail;
  forwarder.resolve(DnsName::must_parse("www.example.test"), RrType::kA,
                    [&](Rcode r, const std::vector<DnsRr>&) {
                      done = true;
                      rcode = r;
                    });
  lab.loop.run(1'000'000);
  ASSERT_TRUE(done);
  EXPECT_EQ(rcode, Rcode::kNoError);
  // The authoritative side saw the upstream, not the forwarder.
  for (const auto& entry : lab.leaf_auth->log()) {
    EXPECT_EQ(entry.client, IpAddr::must_parse("41.0.0.2"));
  }
  EXPECT_GE(upstream.stats().client_queries, 1u);
}

TEST(Recursive, AclRefusesOutsideClients) {
  ResolverConfig config;
  config.open = false;
  config.acl = {net::Prefix::must_parse("41.0.0.0/16")};
  MiniLab lab(config);
  EXPECT_TRUE(lab.res->acl_allows(IpAddr::must_parse("41.0.5.5")));
  EXPECT_FALSE(lab.res->acl_allows(IpAddr::must_parse("40.0.5.5")));
  // Self and loopback are always allowed.
  EXPECT_TRUE(lab.res->acl_allows(lab.res4));
  EXPECT_TRUE(lab.res->acl_allows(IpAddr::must_parse("127.0.0.1")));
}

TEST(Recursive, ClientQueryOverUdpAnsweredAndRefused) {
  ResolverConfig config;
  config.acl = {net::Prefix::must_parse("41.0.0.0/16")};
  MiniLab lab(config);

  // An allowed client host, capturing the response.
  sim::Host client(lab.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
                   {IpAddr::must_parse("41.0.0.200")}, Rng(14), "client");
  std::optional<DnsMessage> response;
  client.bind_udp(5555, [&](const net::Packet& pkt) {
    response = DnsMessage::decode(pkt.payload);
  });
  const auto query = dns::make_query(
      77, DnsName::must_parse("www.example.test"), RrType::kA);
  client.send_udp(IpAddr::must_parse("41.0.0.200"), 5555, lab.res4, 53,
                  query.encode());
  lab.loop.run(1'000'000);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.id, 77);
  EXPECT_TRUE(response->header.ra);
  EXPECT_EQ(response->header.rcode, Rcode::kNoError);
  ASSERT_EQ(response->answers.size(), 1u);

  // A denied client (different AS) gets REFUSED.
  sim::Host outsider(lab.network, 1, sim::os_profile(sim::OsId::kUbuntu1904),
                     {IpAddr::must_parse("40.0.0.200")}, Rng(15), "outsider");
  std::optional<DnsMessage> refused;
  outsider.bind_udp(5556, [&](const net::Packet& pkt) {
    refused = DnsMessage::decode(pkt.payload);
  });
  outsider.send_udp(IpAddr::must_parse("40.0.0.200"), 5556, lab.res4, 53,
                    query.encode());
  lab.loop.run(1'000'000);
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->header.rcode, Rcode::kRefused);
  EXPECT_EQ(lab.res->stats().refused, 1u);
}

TEST(Recursive, RetriesThenServfailWhenServerDead) {
  ResolverConfig config;
  config.query_timeout = sim::kSecond;
  config.max_retries = 1;
  MiniLab lab(config);
  lab.root_host.reset();  // the root goes dark
  const auto out = lab.resolve("www.example.test");
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.rcode, Rcode::kServFail);
  // 1 + 1 retry for the single root server.
  EXPECT_EQ(lab.res->stats().upstream_queries, 2u);
}

TEST(Recursive, SourcePortsComeFromAllocator) {
  // Fixed-port allocator: every upstream query must use port 4053.
  MiniLab lab;
  sim::Host host2(lab.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
                  {IpAddr::must_parse("41.0.0.9")}, Rng(16), "fixedres");
  resolver::RootHints hints;
  hints.servers = {lab.root4};
  RecursiveResolver fixed_res(
      host2, ResolverConfig{.open = true}, hints,
      std::make_unique<resolver::FixedPortAllocator>(4053), Rng(17));
  bool done = false;
  fixed_res.resolve(DnsName::must_parse("www.example.test"), RrType::kA,
                    [&](Rcode, const std::vector<DnsRr>&) { done = true; });
  lab.loop.run(1'000'000);
  ASSERT_TRUE(done);
  for (const auto& entry : lab.leaf_auth->log()) {
    if (entry.client == IpAddr::must_parse("41.0.0.9")) {
      EXPECT_EQ(entry.client_port, 4053);
    }
  }
}

// --- upstream response validation (RFC 5452) ---------------------------------
//
// A resolver with a fixed source port and a sequential txid source is the
// easiest possible off-path target: the forger below knows the port (4053)
// and the txid (100 for the first upstream query). Each test forges a
// response that is correct in every dimension except one, injects it ahead
// of the genuine answer, and asserts the resolution still completes with
// the authoritative data — the forgery must be ignored, not merely lose.

struct ForgeLab {
  const IpAddr res_addr = IpAddr::must_parse("41.0.0.9");
  const IpAddr forged_target = IpAddr::must_parse("6.6.6.6");
  MiniLab lab;
  sim::Host host;
  RecursiveResolver res;

  ForgeLab()
      : host(lab.network, 2, sim::os_profile(sim::OsId::kUbuntu1904),
             {res_addr}, Rng(16), "target"),
        res(host, ResolverConfig{.open = true},
            resolver::RootHints{.servers = {lab.root4}},
            std::make_unique<resolver::FixedPortAllocator>(4053), Rng(17)) {
    res.set_txid_source(std::make_unique<resolver::SequentialTxidSource>(100));
  }

  /// Forged response claiming `src`:`src_port` answered our pending query
  /// for `qname` with an attacker-chosen A record.
  void forge(const IpAddr& src, std::uint16_t src_port, std::uint16_t dst_port,
             std::uint16_t txid, const char* qname) {
    DnsMessage fake = dns::make_response(
        dns::make_query(txid, DnsName::must_parse(qname), RrType::kA,
                        /*rd=*/false),
        Rcode::kNoError);
    fake.header.aa = true;
    fake.answers.push_back(
        dns::make_a(DnsName::must_parse(qname), forged_target, 600));
    lab.network.send(net::make_udp(src, src_port, res_addr, dst_port,
                                   dns::encode_pooled(fake)),
                     /*origin_asn=*/1);
  }

  MiniLab::Outcome resolve(const char* qname) {
    MiniLab::Outcome out;
    res.resolve(DnsName::must_parse(qname), RrType::kA,
                [&](Rcode rcode, const std::vector<DnsRr>& records) {
                  out.done = true;
                  out.rcode = rcode;
                  out.records = records;
                });
    lab.loop.run(1'000'000);
    return out;
  }

  void expect_legit(const MiniLab::Outcome& out) {
    ASSERT_TRUE(out.done);
    EXPECT_EQ(out.rcode, Rcode::kNoError);
    ASSERT_EQ(out.records.size(), 1u);
    EXPECT_EQ(std::get<dns::ARdata>(out.records[0].rdata).addr,
              IpAddr::must_parse("40.0.9.9"));
    const auto hit =
        res.cache().lookup(DnsName::must_parse("www.example.test"), RrType::kA,
                           lab.loop.now());
    ASSERT_EQ(hit.kind, dns::CacheHitKind::kPositive);
    EXPECT_EQ(std::get<dns::ARdata>(hit.records[0].rdata).addr,
              IpAddr::must_parse("40.0.9.9"));
  }
};

TEST(RecursiveValidation, TxidMismatchIsIgnored) {
  ForgeLab f;
  // Correct source, port, and question; txid off by one. Lands before the
  // root's genuine answer (cross-AS latency is >= 5ms).
  f.lab.loop.schedule_in(sim::kMillisecond, [&] {
    f.forge(f.lab.root4, 53, 4053, 101, "www.example.test");
  });
  f.expect_legit(f.resolve("www.example.test"));
}

TEST(RecursiveValidation, WrongSourceAddressIsIgnored) {
  ForgeLab f;
  // Exact port and txid, but from an address we never queried.
  f.lab.loop.schedule_in(sim::kMillisecond, [&] {
    f.forge(IpAddr::must_parse("40.0.0.99"), 53, 4053, 100,
            "www.example.test");
  });
  // A matching tuple from the right address but a non-53 source port is an
  // unsolicited datagram, not an answer.
  f.lab.loop.schedule_in(2 * sim::kMillisecond, [&] {
    f.forge(f.lab.root4, 5353, 4053, 100, "www.example.test");
  });
  f.expect_legit(f.resolve("www.example.test"));
}

TEST(RecursiveValidation, WrongQuestionSectionIsIgnored) {
  ForgeLab f;
  // Exact source, port, and txid — the classic pre-RFC 5452 hole — but the
  // echoed question names a different owner the attacker wants planted.
  f.lab.loop.schedule_in(sim::kMillisecond, [&] {
    f.forge(f.lab.root4, 53, 4053, 100, "evil.example.test");
  });
  f.expect_legit(f.resolve("www.example.test"));
  // The off-question name must not have leaked into the cache.
  EXPECT_EQ(f.res.cache()
                .lookup(DnsName::must_parse("evil.example.test"), RrType::kA,
                        f.lab.loop.now())
                .kind,
            dns::CacheHitKind::kMiss);
}

TEST(RecursiveValidation, LateAnswerAfterCacheFillIsDropped) {
  ForgeLab f;
  f.expect_legit(f.resolve("www.example.test"));
  const auto queries_before = f.res.stats().upstream_queries;
  // Replay a perfectly matching forgery after the pending entry is gone:
  // the race is over, the tuple is dead, the cache must keep the
  // authoritative answer.
  f.forge(f.lab.root4, 53, 4053, 100, "www.example.test");
  f.lab.loop.run(1'000'000);
  const auto hit = f.res.cache().lookup(
      DnsName::must_parse("www.example.test"), RrType::kA, f.lab.loop.now());
  ASSERT_EQ(hit.kind, dns::CacheHitKind::kPositive);
  EXPECT_EQ(std::get<dns::ARdata>(hit.records[0].rdata).addr,
            IpAddr::must_parse("40.0.9.9"));
  EXPECT_EQ(f.res.stats().upstream_queries, queries_before);
}

}  // namespace
