// Unit tests: collector (auth-side observation) semantics.
#include <gtest/gtest.h>

#include "scanner/collector.h"

namespace {

using namespace cd;
using net::IpAddr;
using scanner::Collector;
using scanner::CollectorConfig;
using scanner::QnameCodec;
using scanner::QnameInfo;
using scanner::QueryMode;
using scanner::SourceCategory;

QnameCodec codec() {
  return QnameCodec(dns::DnsName::must_parse("dns-lab.org"), "x1");
}

resolver::AuthLogEntry entry_for(const QnameInfo& info, IpAddr client,
                                 sim::SimTime at,
                                 std::uint16_t client_port = 4242,
                                 bool tcp = false) {
  resolver::AuthLogEntry entry;
  entry.time = at;
  entry.client = client;
  entry.client_port = client_port;
  entry.server = IpAddr::must_parse("199.7.2.1");
  entry.qname = codec().encode(info);
  entry.qtype = dns::RrType::kA;
  entry.tcp = tcp;
  if (tcp) {
    entry.syn = net::make_tcp(client, 40000, entry.server, 53,
                              net::TcpFlags{.syn = true});
  }
  return entry;
}

QnameInfo probe(const char* src, const char* dst, sim::SimTime ts,
                QueryMode mode = QueryMode::kInitial) {
  QnameInfo info;
  info.ts = ts;
  info.src = IpAddr::must_parse(src);
  info.dst = IpAddr::must_parse(dst);
  info.asn = 100;
  info.mode = mode;
  return info;
}

TEST(CategorizeSource, AllCategories) {
  const auto dst4 = IpAddr::must_parse("20.0.1.10");
  EXPECT_EQ(scanner::categorize_source(dst4, dst4), SourceCategory::kDstAsSrc);
  EXPECT_EQ(scanner::categorize_source(IpAddr::must_parse("127.0.0.1"), dst4),
            SourceCategory::kLoopback);
  EXPECT_EQ(
      scanner::categorize_source(IpAddr::must_parse("192.168.0.10"), dst4),
      SourceCategory::kPrivate);
  EXPECT_EQ(scanner::categorize_source(IpAddr::must_parse("20.0.1.99"), dst4),
            SourceCategory::kSamePrefix);
  EXPECT_EQ(scanner::categorize_source(IpAddr::must_parse("20.0.2.99"), dst4),
            SourceCategory::kOtherPrefix);

  const auto dst6 = IpAddr::must_parse("2400:1:0:5::10");
  EXPECT_EQ(scanner::categorize_source(IpAddr::must_parse("::1"), dst6),
            SourceCategory::kLoopback);
  EXPECT_EQ(scanner::categorize_source(IpAddr::must_parse("fc00::10"), dst6),
            SourceCategory::kPrivate);
  EXPECT_EQ(
      scanner::categorize_source(IpAddr::must_parse("2400:1:0:5::99"), dst6),
      SourceCategory::kSamePrefix);
  EXPECT_EQ(
      scanner::categorize_source(IpAddr::must_parse("2400:1:0:6::99"), dst6),
      SourceCategory::kOtherPrefix);
}

TEST(Collector, RecordsInitialHitAndFiresFirstHitOnce) {
  Collector collector(codec(), {}, nullptr);
  int fired = 0;
  collector.set_first_hit_handler(
      [&](const scanner::TargetRecord& rec, const IpAddr& src) {
        ++fired;
        EXPECT_EQ(rec.target, IpAddr::must_parse("20.0.1.10"));
        EXPECT_EQ(src, IpAddr::must_parse("20.0.2.99"));
      });

  const auto dst = IpAddr::must_parse("20.0.1.10");
  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 1000),
                              dst, 2000));
  collector.observe(entry_for(probe("20.0.1.77", "20.0.1.10", 3000),
                              dst, 4000));
  EXPECT_EQ(fired, 1);

  const auto& rec = collector.records().at(dst);
  EXPECT_TRUE(rec.reachable());
  EXPECT_EQ(rec.first_hit_time, 2000);
  EXPECT_EQ(rec.sources_hit.size(), 2u);
  EXPECT_TRUE(rec.categories_hit.count(SourceCategory::kOtherPrefix));
  EXPECT_TRUE(rec.categories_hit.count(SourceCategory::kSamePrefix));
  EXPECT_EQ(rec.asn, 100u);
}

TEST(Collector, LifetimeThresholdExcludes) {
  CollectorConfig config;
  config.lifetime_threshold = 10 * sim::kSecond;
  Collector collector(codec(), config, nullptr);
  // 11 seconds between probe send and auth arrival: a human replay.
  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0),
                              IpAddr::must_parse("20.0.1.10"),
                              11 * sim::kSecond));
  EXPECT_TRUE(collector.records().empty());
  EXPECT_EQ(collector.stats().excluded_lifetime, 1u);
  EXPECT_EQ(collector.lifetime_excluded_targets().size(), 1u);

  // Just inside the threshold is accepted.
  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0),
                              IpAddr::must_parse("20.0.1.10"),
                              10 * sim::kSecond));
  EXPECT_EQ(collector.records().size(), 1u);
}

TEST(Collector, QminPartialTrackedByAsn) {
  sim::Topology topo;
  topo.add_as(77);
  topo.announce(77, net::Prefix::must_parse("20.0.0.0/16"));
  Collector collector(codec(), {}, &topo);

  resolver::AuthLogEntry entry;
  entry.time = 100;
  entry.client = IpAddr::must_parse("20.0.1.10");
  entry.qname = dns::DnsName::must_parse("x1.dns-lab.org");
  collector.observe(entry);

  EXPECT_EQ(collector.stats().qmin_partial, 1u);
  EXPECT_TRUE(collector.qmin_asns().count(77));
  EXPECT_TRUE(collector.records().empty());
}

TEST(Collector, ForeignNamesIgnored) {
  Collector collector(codec(), {}, nullptr);
  resolver::AuthLogEntry entry;
  entry.qname = dns::DnsName::must_parse("www.example.com");
  collector.observe(entry);
  EXPECT_EQ(collector.stats().foreign, 1u);
  EXPECT_TRUE(collector.records().empty());
}

TEST(Collector, PortSamplesOnlyDirectSameFamilyFollowups) {
  Collector collector(codec(), {}, nullptr);
  const auto dst = IpAddr::must_parse("20.0.1.10");
  // Direct v4-only follow-up: port recorded.
  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0,
                                    QueryMode::kV4Only),
                              dst, 1000, 5001));
  // Forwarded (different client): not recorded.
  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0,
                                    QueryMode::kV4Only),
                              IpAddr::must_parse("8.8.8.8"), 1000, 5002));
  // Initial-mode direct query: not a port sample.
  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0),
                              dst, 1000, 5003));
  const auto& rec = collector.records().at(dst);
  EXPECT_EQ(rec.ports_v4, (std::vector<std::uint16_t>{5001}));
  EXPECT_TRUE(rec.ports_v6.empty());
}

TEST(Collector, ForwardingFlagsUseFamilyForcedFollowupsOnly) {
  Collector collector(codec(), {}, nullptr);
  const auto dst = IpAddr::must_parse("20.0.1.10");
  // Initial query via another client must NOT set forwarded.
  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0),
                              IpAddr::must_parse("8.8.8.8"), 1000));
  EXPECT_FALSE(collector.records().at(dst).forwarded_seen);
  // v4-only follow-up via another v4 client: forwarded.
  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0,
                                    QueryMode::kV4Only),
                              IpAddr::must_parse("8.8.8.8"), 1000));
  EXPECT_TRUE(collector.records().at(dst).forwarded_seen);
  EXPECT_TRUE(collector.records().at(dst).forwarders_seen.count(
      IpAddr::must_parse("8.8.8.8")));
  // v6-only follow-up answered from the host's *v4* address: family
  // mismatch, inconclusive, must not mark anything.
  Collector c2(codec(), {}, nullptr);
  c2.observe(entry_for(probe("2400:1::9", "2400:1::10", 0,
                             QueryMode::kV6Only),
                       IpAddr::must_parse("20.0.1.10"), 1000));
  EXPECT_FALSE(c2.records().at(IpAddr::must_parse("2400:1::10")).direct_seen);
  EXPECT_FALSE(
      c2.records().at(IpAddr::must_parse("2400:1::10")).forwarded_seen);
}

TEST(Collector, OpenHitAndTcpSyn) {
  Collector collector(codec(), {}, nullptr);
  const auto dst = IpAddr::must_parse("20.0.1.10");
  collector.observe(entry_for(probe("203.98.0.10", "20.0.1.10", 0,
                                    QueryMode::kOpen),
                              dst, 1000));
  EXPECT_TRUE(collector.records().at(dst).open_hit);

  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0,
                                    QueryMode::kTcp),
                              dst, 1000, 4242, /*tcp=*/true));
  const auto& rec = collector.records().at(dst);
  EXPECT_TRUE(rec.tcp_hit);
  ASSERT_TRUE(rec.tcp_syn.has_value());
  EXPECT_TRUE(rec.tcp_syn->tcp_flags.syn);

  // A forwarded TCP query must not override attribution.
  Collector c2(codec(), {}, nullptr);
  c2.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0, QueryMode::kTcp),
                       IpAddr::must_parse("8.8.8.8"), 1000, 4242, true));
  EXPECT_FALSE(c2.records().at(dst).tcp_hit);
}

TEST(Collector, ClientInTargetAsFlag) {
  sim::Topology topo;
  topo.add_as(100);
  topo.announce(100, net::Prefix::must_parse("20.0.0.0/16"));
  topo.add_as(200);
  topo.announce(200, net::Prefix::must_parse("8.8.8.0/24"));
  Collector collector(codec(), {}, &topo);
  const auto dst = IpAddr::must_parse("20.0.1.10");
  // Query from a *different* host in the same AS (middlebox §3.6.1 case).
  collector.observe(entry_for(probe("20.0.2.99", "20.0.1.10", 0),
                              IpAddr::must_parse("20.0.3.3"), 1000));
  EXPECT_TRUE(collector.records().at(dst).client_in_target_as);
}

}  // namespace
