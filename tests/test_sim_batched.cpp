// The batched-delivery equivalence guarantee: coalescing same-tick packet
// deliveries per destination host (sim::Network batched mode, the default)
// must be observably invisible. The differential harness runs the quickstart
// campaign batched vs unbatched across seeds and shard counts and demands
// identical results_digest and capture_digest — full captures, drops
// included, follow-ups and analyst replays on — and re-verifies the golden
// fixture (tests/fixtures/quickstart.pcap + .idx) byte-for-byte with
// batching enabled AND disabled, so neither path can drift from the other
// or from the checked-in wire surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "ditl/world.h"
#include "util/pcap.h"

namespace {

using cd::core::CaptureSpec;
using cd::core::ExperimentConfig;
using cd::core::ShardedResults;
using cd::core::capture_digest;
using cd::core::results_digest;
using cd::core::run_sharded_experiment;

cd::ditl::WorldSpec spec_for(std::uint64_t seed) {
  cd::ditl::WorldSpec spec = cd::ditl::small_world_spec();
  spec.seed = seed;
  return spec;
}

/// Full-fat campaign config: capture with drop annotations, follow-up
/// batteries, IDS analyst replays — every delivery consumer in the tree.
ExperimentConfig campaign_config(bool batched, std::size_t shards) {
  ExperimentConfig config;
  config.batched_delivery = batched;
  config.num_shards = shards;
  config.num_threads = shards > 1 ? 2 : 1;
  config.analyst = cd::scanner::AnalystConfig{};
  CaptureSpec capture;
  capture.include_drops = true;
  config.capture = capture;
  return config;
}

TEST(BatchedDifferential, DigestsMatchUnbatchedAcrossSeedsAndShards) {
  const std::vector<std::uint64_t> seeds{7, 42, 99, 1337, 2020};
  for (const std::uint64_t seed : seeds) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const ShardedResults batched = run_sharded_experiment(
          spec_for(seed), campaign_config(true, shards));
      const ShardedResults unbatched = run_sharded_experiment(
          spec_for(seed), campaign_config(false, shards));

      ASSERT_GT(batched.merged.records.size(), 0u)
          << "seed=" << seed << ": campaign saw no targets";
      EXPECT_EQ(results_digest(batched.merged),
                results_digest(unbatched.merged))
          << "seed=" << seed << " shards=" << shards;
      ASSERT_FALSE(batched.merged.capture.records.empty())
          << "seed=" << seed << ": campaign captured nothing";
      EXPECT_EQ(capture_digest(batched.merged.capture),
                capture_digest(unbatched.merged.capture))
          << "seed=" << seed << " shards=" << shards;
      // Digest collisions are astronomically unlikely, but the full byte
      // comparison is nearly free on top of the runs themselves.
      EXPECT_EQ(batched.merged.capture.to_pcap(),
                unbatched.merged.capture.to_pcap())
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(batched.merged.capture.to_index(),
                unbatched.merged.capture.to_index())
          << "seed=" << seed << " shards=" << shards;

      // Same campaign either way, and batching actually coalesced: fewer
      // drain events than delivered packets, none with batching off.
      EXPECT_EQ(batched.merged.queries_sent, unbatched.merged.queries_sent);
      EXPECT_EQ(batched.merged.followup_batteries,
                unbatched.merged.followup_batteries);
      EXPECT_EQ(batched.merged.analyst_replays,
                unbatched.merged.analyst_replays);
      EXPECT_EQ(batched.merged.network_stats.delivered,
                unbatched.merged.network_stats.delivered);
      EXPECT_GT(batched.merged.network_stats.delivery_batches, 0u);
      EXPECT_LE(batched.merged.network_stats.delivery_batches,
                batched.merged.network_stats.delivered);
      EXPECT_EQ(unbatched.merged.network_stats.delivery_batches, 0u);
    }
  }
}

TEST(BatchedDifferential, RecordsMatchFieldByFieldOnOneSeed) {
  const ShardedResults batched =
      run_sharded_experiment(spec_for(42), campaign_config(true, 4));
  const ShardedResults unbatched =
      run_sharded_experiment(spec_for(42), campaign_config(false, 4));
  ASSERT_EQ(batched.merged.records.size(), unbatched.merged.records.size());
  for (const auto& [addr, expect] : unbatched.merged.records) {
    const auto it = batched.merged.records.find(addr);
    ASSERT_NE(it, batched.merged.records.end()) << addr.to_string();
    const auto& got = it->second;
    EXPECT_EQ(got.sources_hit, expect.sources_hit) << addr.to_string();
    EXPECT_EQ(got.categories_hit, expect.categories_hit) << addr.to_string();
    // Batching preserves even the timing artifacts sharding is allowed to
    // perturb: arrival times are identical per packet, not just per digest.
    EXPECT_EQ(got.first_hit_time, expect.first_hit_time) << addr.to_string();
    EXPECT_EQ(got.first_hit_source, expect.first_hit_source);
    EXPECT_EQ(got.ports_v4, expect.ports_v4) << addr.to_string();
    EXPECT_EQ(got.ports_v6, expect.ports_v6) << addr.to_string();
    EXPECT_EQ(got.open_hit, expect.open_hit);
    EXPECT_EQ(got.tcp_hit, expect.tcp_hit);
  }
  EXPECT_EQ(batched.merged.qmin_asns, unbatched.merged.qmin_asns);
  EXPECT_EQ(batched.merged.lifetime_excluded_targets,
            unbatched.merged.lifetime_excluded_targets);
}

TEST(BatchedDifferential, DigestsMatchOracleEventEngineAcrossSeedsAndShards) {
  // The wheel-vs-oracle axis on the same full-fat harness: with batching on
  // (the production configuration), the timing-wheel event core must be
  // indistinguishable from the retired priority-queue engine — evidence,
  // capture digests, and exported wire bytes — across seeds and shard
  // counts.
  for (const std::uint64_t seed : {7ULL, 42ULL, 99ULL, 1337ULL, 2020ULL}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      ExperimentConfig oracle_config = campaign_config(true, shards);
      oracle_config.wheel_event_core = false;
      const ShardedResults wheel = run_sharded_experiment(
          spec_for(seed), campaign_config(true, shards));
      const ShardedResults oracle =
          run_sharded_experiment(spec_for(seed), oracle_config);

      ASSERT_GT(wheel.merged.records.size(), 0u)
          << "seed=" << seed << ": campaign saw no targets";
      EXPECT_EQ(results_digest(wheel.merged), results_digest(oracle.merged))
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(capture_digest(wheel.merged.capture),
                capture_digest(oracle.merged.capture))
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(wheel.merged.capture.to_pcap(),
                oracle.merged.capture.to_pcap())
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(wheel.merged.capture.to_index(),
                oracle.merged.capture.to_index())
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(wheel.merged.network_stats.delivered,
                oracle.merged.network_stats.delivered);
    }
  }
}

// --- golden fixture re-verification ------------------------------------------

std::string fixture_path(const char* name) {
  return std::string(CD_FIXTURE_DIR) + "/" + name;
}

/// The exact campaign test_golden_pcap.cpp pins, parameterized by delivery
/// mode (the fixture itself predates batching: it was generated by the
/// per-packet path).
cd::pcap::Capture golden_campaign(bool batched) {
  cd::ditl::WorldSpec spec = cd::ditl::small_world_spec();
  spec.n_asns = 6;
  spec.seed = 42;
  ExperimentConfig config;
  config.batched_delivery = batched;
  CaptureSpec capture;
  capture.include_drops = true;
  config.capture = capture;
  return run_sharded_experiment(spec, config).merged.capture;
}

TEST(BatchedGoldenPcap, FixtureBytesIdenticalWithBatchingOnAndOff) {
  if (std::getenv("CD_GOLDEN_WRITE") != nullptr) {
    GTEST_SKIP() << "fixture being regenerated";
  }
  const auto golden_pcap = cd::pcap::read_file(fixture_path("quickstart.pcap"));
  const auto golden_index =
      cd::pcap::read_file(fixture_path("quickstart.pcap.idx"));

  for (const bool batched : {true, false}) {
    const cd::pcap::Capture capture = golden_campaign(batched);
    ASSERT_FALSE(capture.records.empty());
    const auto pcap_bytes = capture.to_pcap();
    const auto index_bytes = capture.to_index();
    ASSERT_EQ(pcap_bytes.size(), golden_pcap.size())
        << "batched=" << batched;
    ASSERT_EQ(index_bytes.size(), golden_index.size())
        << "batched=" << batched;
    for (std::size_t i = 0; i < pcap_bytes.size(); ++i) {
      ASSERT_EQ(pcap_bytes[i], golden_pcap[i])
          << "batched=" << batched << ": pcap differs at offset " << i;
    }
    for (std::size_t i = 0; i < index_bytes.size(); ++i) {
      ASSERT_EQ(index_bytes[i], golden_index[i])
          << "batched=" << batched << ": index differs at offset " << i;
    }
  }
}

}  // namespace
