// Unit + property tests: IP addresses, prefixes, U128 arithmetic.
#include <gtest/gtest.h>

#include "net/ip.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace cd;
using net::IpAddr;
using net::IpFamily;
using net::Prefix;
using net::U128;

// --- U128 ----------------------------------------------------------------------

TEST(U128, AdditionCarries) {
  const U128 a{0, UINT64_MAX};
  const U128 b{0, 1};
  EXPECT_EQ(a + b, (U128{1, 0}));
}

TEST(U128, SubtractionBorrows) {
  const U128 a{1, 0};
  const U128 b{0, 1};
  EXPECT_EQ(a - b, (U128{0, UINT64_MAX}));
}

TEST(U128, ShiftsAcrossHalves) {
  const U128 one{0, 1};
  EXPECT_EQ(one << 64, (U128{1, 0}));
  EXPECT_EQ((U128{1, 0}) >> 64, one);
  EXPECT_EQ(one << 128, U128{});
  EXPECT_EQ((one << 65) >> 65, one);
}

TEST(U128, Comparisons) {
  EXPECT_LT((U128{0, 5}), (U128{1, 0}));
  EXPECT_LT((U128{1, 1}), (U128{1, 2}));
  EXPECT_GE((U128{2, 0}), (U128{1, UINT64_MAX}));
}

TEST(U128, Mask128) {
  EXPECT_EQ(net::mask128(0), U128{});
  EXPECT_EQ(net::mask128(128), (U128{~0ULL, ~0ULL}));
  EXPECT_EQ(net::mask128(64), (U128{~0ULL, 0}));
  EXPECT_EQ(net::mask128(1), (U128{1ULL << 63, 0}));
}

TEST(U128, AddSubRoundTripProperty) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const U128 a{rng.u64(), rng.u64()};
    const U128 b{rng.u64(), rng.u64()};
    EXPECT_EQ((a + b) - b, a);
  }
}

// --- IpAddr parse/format ---------------------------------------------------------

TEST(IpAddr, ParseV4) {
  const auto a = IpAddr::parse("192.168.0.1");
  ASSERT_TRUE(a);
  EXPECT_TRUE(a->is_v4());
  EXPECT_EQ(a->v4_bits(), 0xC0A80001u);
}

TEST(IpAddr, ParseV4Invalid) {
  EXPECT_FALSE(IpAddr::parse("192.168.0"));
  EXPECT_FALSE(IpAddr::parse("192.168.0.256"));
  EXPECT_FALSE(IpAddr::parse("192.168.0.1.5"));
  EXPECT_FALSE(IpAddr::parse("192.168.00.1"));  // ambiguous leading zero
  EXPECT_FALSE(IpAddr::parse("a.b.c.d"));
  EXPECT_FALSE(IpAddr::parse(""));
}

struct V6Case {
  const char* input;
  const char* canonical;
};

class V6ParseFormat : public ::testing::TestWithParam<V6Case> {};

TEST_P(V6ParseFormat, RoundTripsToCanonical) {
  const auto a = IpAddr::parse(GetParam().input);
  ASSERT_TRUE(a) << GetParam().input;
  EXPECT_TRUE(a->is_v6());
  EXPECT_EQ(a->to_string(), GetParam().canonical);
  // Canonical form re-parses to the same address.
  EXPECT_EQ(IpAddr::parse(a->to_string()), *a);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, V6ParseFormat,
    ::testing::Values(
        V6Case{"::", "::"}, V6Case{"::1", "::1"}, V6Case{"1::", "1::"},
        V6Case{"2001:db8::1", "2001:db8::1"},
        V6Case{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
        V6Case{"fe80::1:2:3:4", "fe80::1:2:3:4"},
        V6Case{"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
        V6Case{"::ffff:192.0.2.1", "::ffff:c000:201"},
        V6Case{"a::B:0:0:c", "a::b:0:0:c"},
        V6Case{"0:0:1:0:0:0:1:0", "0:0:1::1:0"},
        V6Case{"1:0:0:2:0:0:0:3", "1:0:0:2::3"}));

TEST(IpAddr, ParseV6Invalid) {
  EXPECT_FALSE(IpAddr::parse(":::"));
  EXPECT_FALSE(IpAddr::parse("1::2::3"));
  EXPECT_FALSE(IpAddr::parse("1:2:3:4:5:6:7"));
  EXPECT_FALSE(IpAddr::parse("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(IpAddr::parse("12345::"));
  EXPECT_FALSE(IpAddr::parse("1:2:3:4:5:6:7:8::"));
  EXPECT_FALSE(IpAddr::parse("::1.2.3"));
}

TEST(IpAddr, MustParseThrows) {
  EXPECT_THROW((void)IpAddr::must_parse("bogus"), ParseError);
}

TEST(IpAddr, V4NeverEqualsV6Mapped) {
  const auto v4 = IpAddr::must_parse("192.0.2.1");
  const auto mapped = IpAddr::must_parse("::ffff:192.0.2.1");
  EXPECT_NE(v4, mapped);
}

TEST(IpAddr, RoundTripPropertyV4) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto a = IpAddr::v4(static_cast<std::uint32_t>(rng.u64()));
    EXPECT_EQ(IpAddr::parse(a.to_string()), a);
  }
}

TEST(IpAddr, RoundTripPropertyV6) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    // Mix in sparse values so "::" compression paths are exercised.
    std::uint64_t hi = rng.u64(), lo = rng.u64();
    if (rng.chance(0.5)) hi &= 0xFFFF00000000FFFFULL;
    if (rng.chance(0.5)) lo &= 0x0000FFFF00000000ULL;
    const auto a = IpAddr::v6(hi, lo);
    ASSERT_EQ(IpAddr::parse(a.to_string()), a) << a.to_string();
  }
}

TEST(IpAddr, ToBytesNetworkOrder) {
  EXPECT_EQ(IpAddr::must_parse("1.2.3.4").to_bytes(),
            (std::vector<std::uint8_t>{1, 2, 3, 4}));
  const auto b6 = IpAddr::must_parse("2001:db8::ff").to_bytes();
  ASSERT_EQ(b6.size(), 16u);
  EXPECT_EQ(b6[0], 0x20);
  EXPECT_EQ(b6[1], 0x01);
  EXPECT_EQ(b6[15], 0xFF);
}

TEST(IpAddr, OffsetBy) {
  EXPECT_EQ(IpAddr::must_parse("10.0.0.255").offset_by(1),
            IpAddr::must_parse("10.0.1.0"));
  EXPECT_EQ(IpAddr::must_parse("2001:db8::ffff:ffff:ffff:ffff").offset_by(1),
            IpAddr::must_parse("2001:db8:0:1::"));
}

// --- Prefix -----------------------------------------------------------------------

TEST(Prefix, ParseAndMask) {
  const auto p = Prefix::must_parse("10.1.2.3/8");
  EXPECT_EQ(p.base(), IpAddr::must_parse("10.0.0.0"));
  EXPECT_EQ(p.length(), 8);
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
}

TEST(Prefix, ParseInvalid) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Prefix::parse("2001:db8::/129"));
  EXPECT_FALSE(Prefix::parse("bogus/8"));
}

TEST(Prefix, Contains) {
  const auto p = Prefix::must_parse("192.168.0.0/16");
  EXPECT_TRUE(p.contains(IpAddr::must_parse("192.168.255.255")));
  EXPECT_FALSE(p.contains(IpAddr::must_parse("192.169.0.0")));
  EXPECT_FALSE(p.contains(IpAddr::must_parse("2001:db8::1")));  // family
}

TEST(Prefix, ContainsPrefix) {
  const auto outer = Prefix::must_parse("10.0.0.0/8");
  EXPECT_TRUE(outer.contains(Prefix::must_parse("10.5.0.0/16")));
  EXPECT_FALSE(outer.contains(Prefix::must_parse("11.0.0.0/16")));
  EXPECT_FALSE(Prefix::must_parse("10.5.0.0/16").contains(outer));
}

TEST(Prefix, FirstLastNth) {
  const auto p = Prefix::must_parse("10.0.0.0/24");
  EXPECT_EQ(p.first(), IpAddr::must_parse("10.0.0.0"));
  EXPECT_EQ(p.last(), IpAddr::must_parse("10.0.0.255"));
  EXPECT_EQ(p.nth(37), IpAddr::must_parse("10.0.0.37"));
}

TEST(Prefix, LastV6) {
  EXPECT_EQ(Prefix::must_parse("2001:db8::/64").last(),
            IpAddr::must_parse("2001:db8::ffff:ffff:ffff:ffff"));
  EXPECT_EQ(Prefix::must_parse("::/0").last(),
            IpAddr::must_parse("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"));
}

TEST(Prefix, SizeClamped) {
  EXPECT_EQ(Prefix::must_parse("10.0.0.0/24").size_clamped(), 256u);
  EXPECT_EQ(Prefix::must_parse("10.0.0.0/32").size_clamped(), 1u);
  EXPECT_EQ(Prefix::must_parse("2001:db8::/32").size_clamped(), UINT64_MAX);
}

TEST(Prefix, Subdivide) {
  const auto p = Prefix::must_parse("10.0.0.0/22");
  const auto subs = p.subdivide(24, 100);
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_EQ(subs[0], Prefix::must_parse("10.0.0.0/24"));
  EXPECT_EQ(subs[3], Prefix::must_parse("10.0.3.0/24"));
}

TEST(Prefix, SubdivideRespectsCap) {
  const auto p = Prefix::must_parse("10.0.0.0/8");
  EXPECT_EQ(p.subdivide(24, 10).size(), 10u);
}

TEST(Prefix, CountSubprefixes) {
  EXPECT_EQ(Prefix::must_parse("10.0.0.0/16").count_subprefixes(24), 256u);
  EXPECT_EQ(Prefix::must_parse("2001:db8::/32").count_subprefixes(64),
            1ULL << 32);
  EXPECT_EQ(Prefix::must_parse("::/0").count_subprefixes(64), UINT64_MAX);
}

TEST(Prefix, ContainmentConsistentWithSubdivision) {
  Rng rng(4);
  const auto p = Prefix::must_parse("172.20.0.0/14");
  for (const auto& sub : p.subdivide(24, 64)) {
    EXPECT_TRUE(p.contains(sub));
    EXPECT_TRUE(p.contains(sub.nth(rng.uniform(256))));
  }
}

}  // namespace
