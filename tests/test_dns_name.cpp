// Unit tests: DNS names and wire encoding (compression, pointers, limits).
#include <gtest/gtest.h>

#include "dns/name.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace cd;
using dns::DnsName;

TEST(DnsName, ParseAndFormat) {
  const auto n = DnsName::must_parse("a.b.Example.ORG");
  EXPECT_EQ(n.label_count(), 4u);
  EXPECT_EQ(n.to_string(), "a.b.Example.ORG.");
  EXPECT_EQ(DnsName::must_parse("a.b.example.org.").to_string(),
            "a.b.example.org.");
}

TEST(DnsName, Root) {
  const DnsName root;
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(DnsName::must_parse(".").label_count(), 0u);
  EXPECT_EQ(root.wire_length(), 1u);
}

TEST(DnsName, ParseInvalid) {
  EXPECT_FALSE(DnsName::parse(""));
  EXPECT_FALSE(DnsName::parse("a..b"));
  EXPECT_FALSE(DnsName::parse(std::string(64, 'x') + ".org"));  // label > 63
  // Total name too long: 5 labels of 63 = 320 > 255.
  std::string huge;
  for (int i = 0; i < 5; ++i) huge += std::string(63, 'a') + ".";
  EXPECT_FALSE(DnsName::parse(huge));
}

TEST(DnsName, CaseInsensitiveEquality) {
  EXPECT_EQ(DnsName::must_parse("DNS-Lab.Org"),
            DnsName::must_parse("dns-lab.org"));
  dns::DnsNameHash hash;
  EXPECT_EQ(hash(DnsName::must_parse("A.B.c")),
            hash(DnsName::must_parse("a.b.C")));
}

TEST(DnsName, Subdomain) {
  const auto apex = DnsName::must_parse("dns-lab.org");
  EXPECT_TRUE(DnsName::must_parse("x.dns-lab.org").is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(DnsName()));  // everything under root
  EXPECT_FALSE(DnsName::must_parse("dns-lab.com").is_subdomain_of(apex));
  EXPECT_FALSE(DnsName::must_parse("xdns-lab.org").is_subdomain_of(apex));
  EXPECT_FALSE(DnsName::must_parse("org").is_subdomain_of(apex));
}

TEST(DnsName, ParentPrependSuffix) {
  const auto n = DnsName::must_parse("a.b.c");
  EXPECT_EQ(n.parent(), DnsName::must_parse("b.c"));
  EXPECT_EQ(DnsName().parent(), DnsName());
  EXPECT_EQ(n.prepend("x"), DnsName::must_parse("x.a.b.c"));
  EXPECT_EQ(n.suffix(1), DnsName::must_parse("c"));
  EXPECT_EQ(n.suffix(3), n);
  EXPECT_EQ(n.suffix(9), n);
  EXPECT_EQ(n.suffix(0), DnsName());
}

TEST(DnsName, CanonicalOrdering) {
  // Right-to-left label comparison.
  EXPECT_LT(DnsName::must_parse("z.a.org"), DnsName::must_parse("a.b.org"));
  EXPECT_LT(DnsName::must_parse("org"), DnsName::must_parse("a.org"));
  EXPECT_LT(DnsName(), DnsName::must_parse("com"));
}

TEST(NameWire, EncodeDecodeNoCompression) {
  std::vector<std::uint8_t> wire;
  dns::encode_name(DnsName::must_parse("www.example.org"), wire, nullptr);
  EXPECT_EQ(wire.size(), 1 + 3 + 1 + 7 + 1 + 3 + 1);
  std::size_t off = 0;
  EXPECT_EQ(dns::decode_name(wire, off), DnsName::must_parse("www.example.org"));
  EXPECT_EQ(off, wire.size());
}

TEST(NameWire, CompressionShrinksRepeats) {
  std::vector<std::uint8_t> plain, compressed;
  dns::NameCompressor comp;
  const auto n1 = DnsName::must_parse("a.example.org");
  const auto n2 = DnsName::must_parse("b.example.org");
  dns::encode_name(n1, plain, nullptr);
  dns::encode_name(n2, plain, nullptr);
  dns::encode_name(n1, compressed, &comp);
  dns::encode_name(n2, compressed, &comp);
  EXPECT_LT(compressed.size(), plain.size());

  std::size_t off = 0;
  EXPECT_EQ(dns::decode_name(compressed, off), n1);
  EXPECT_EQ(dns::decode_name(compressed, off), n2);
  EXPECT_EQ(off, compressed.size());
}

TEST(NameWire, FullPointerReuse) {
  dns::NameCompressor comp;
  std::vector<std::uint8_t> wire;
  const auto n = DnsName::must_parse("repeat.example.org");
  dns::encode_name(n, wire, &comp);
  const std::size_t first = wire.size();
  dns::encode_name(n, wire, &comp);
  EXPECT_EQ(wire.size(), first + 2);  // exactly one pointer
  std::size_t off = first;
  EXPECT_EQ(dns::decode_name(wire, off), n);
}

TEST(NameWire, RejectsPointerLoop) {
  // A pointer that points at itself.
  const std::vector<std::uint8_t> wire = {0xC0, 0x00};
  std::size_t off = 0;
  EXPECT_THROW((void)dns::decode_name(wire, off), ParseError);
}

TEST(NameWire, RejectsForwardPointer) {
  const std::vector<std::uint8_t> wire = {0xC0, 0x04, 0x00, 0x00, 0x00};
  std::size_t off = 0;
  EXPECT_THROW((void)dns::decode_name(wire, off), ParseError);
}

TEST(NameWire, RejectsTruncation) {
  std::vector<std::uint8_t> wire;
  dns::encode_name(DnsName::must_parse("abcdef.org"), wire, nullptr);
  wire.resize(wire.size() - 3);
  std::size_t off = 0;
  EXPECT_THROW((void)dns::decode_name(wire, off), ParseError);
}

TEST(NameWire, RandomRoundTripProperty) {
  Rng rng(6);
  static const char* kLabels[] = {"a", "bb", "ccc", "example", "x1",
                                  "0123456789abcdef", "v4", "org"};
  for (int i = 0; i < 500; ++i) {
    std::vector<std::string> labels;
    const std::size_t n = 1 + rng.uniform(6);
    for (std::size_t j = 0; j < n; ++j) {
      labels.push_back(kLabels[rng.uniform(8)]);
    }
    const DnsName name(labels);
    std::vector<std::uint8_t> wire;
    dns::NameCompressor comp;
    dns::encode_name(name, wire, &comp);
    std::size_t off = 0;
    ASSERT_EQ(dns::decode_name(wire, off), name);
  }
}

}  // namespace
